// Command tbql executes hand-written TBQL queries against an audit log —
// the proactive threat hunting workflow when no OSCTI report is available.
//
// Usage:
//
//	tbql -log audit.log 'proc p read file f["%/etc/passwd%"] return distinct p'
//	tbql -demo password_crack 'proc p read file f["%shadow%"] return p'
//	echo 'proc p read file f return distinct p' | tbql -log audit.log
//	tbql -log audit.log -explain '...'   # show the IR and compiled plans
//	tbql -demo data_leak -i              # interactive hunting session
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"threatraptor"
	"threatraptor/internal/cases"
)

func main() {
	logPath := flag.String("log", "", "audit log file (newline-delimited raw records)")
	demo := flag.String("demo", "", "use a built-in benchmark case's log")
	scale := flag.Float64("scale", 1.0, "benign noise scale for -demo")
	explain := flag.Bool("explain", false, "print the compiled logical-plan IR, physical plans, and equivalent SQL/Cypher")
	useFuzzy := flag.Bool("fuzzy", false, "execute in fuzzy search mode")
	interactive := flag.Bool("i", false, "interactive session: one query per line, blank line executes")
	flag.Parse()

	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" && !*interactive {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		query = string(data)
	}

	sys := threatraptor.New(threatraptor.DefaultOptions())
	switch {
	case *demo != "":
		c := cases.ByID(*demo)
		if c == nil {
			log.Fatalf("unknown case %q", *demo)
		}
		gen, err := c.Generate(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadLog(gen.Log); err != nil {
			log.Fatal(err)
		}
	case *logPath != "":
		f, err := os.Open(*logPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := sys.LoadAuditLog(f); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -log or -demo is required")
	}

	if *interactive {
		repl(sys)
		return
	}

	if *explain {
		report, err := sys.Explain(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
		return
	}

	if *useFuzzy {
		als, err := sys.FuzzyHunt(nil, query, true)
		if err != nil {
			log.Fatal(err)
		}
		for _, al := range als {
			fmt.Printf("score %.2f: %v (%d events)\n", al.Score, al.Entities, len(al.Events))
		}
		return
	}

	res, stats, err := sys.Hunt(nil, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(res.Set.Columns, "\t"))
	for _, row := range res.Set.Strings() {
		fmt.Println(strings.Join(row, "\t"))
	}
	fmt.Printf("-- %d rows, %d matched events, %d data queries\n",
		res.Set.Len(), len(res.MatchedEvents), stats.DataQueries)
	if stats.EmptyPatternID != "" {
		fmt.Printf("-- note: pattern %s matched no events (conjunction emptied)\n", stats.EmptyPatternID)
	}
}

// repl reads TBQL queries from stdin (terminated by a blank line or EOF)
// and executes each — the iterative query-editing loop of the paper's
// human-in-the-loop analysis.
func repl(sys *threatraptor.System) {
	fmt.Println("tbql> enter a query; finish it with a blank line; ctrl-d exits")
	scanner := bufio.NewScanner(os.Stdin)
	var buf []string
	run := func() {
		query := strings.TrimSpace(strings.Join(buf, "\n"))
		buf = buf[:0]
		if query == "" {
			return
		}
		res, stats, err := sys.Hunt(nil, query)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(res.Set.Columns, "\t"))
		for _, row := range res.Set.Strings() {
			fmt.Println(strings.Join(row, "\t"))
		}
		fmt.Printf("-- %d rows, %d matched events, %d data queries\n",
			res.Set.Len(), len(res.MatchedEvents), stats.DataQueries)
	}
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			run()
			continue
		}
		buf = append(buf, line)
	}
	run()
}
