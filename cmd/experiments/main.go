// Command experiments regenerates the tables of the ThreatRaptor paper's
// evaluation section.
//
// Usage:
//
//	experiments table5                 # extraction accuracy
//	experiments -scale 1 table6        # hunting accuracy per case
//	experiments table7                 # extraction stage timing
//	experiments -scale 1 -rounds 5 table8
//	experiments -scale 0.5 table9
//	experiments table10                # conciseness
//	experiments all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"threatraptor/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "benign noise scale")
	rounds := flag.Int("rounds", 5, "timing rounds for table8 (the paper used 20)")
	flag.Parse()
	which := flag.Arg(0)
	if which == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string) {
		switch name {
		case "table5":
			table5()
		case "table6":
			table6(*scale)
		case "table7":
			table7()
		case "table8":
			table8(*scale, *rounds)
		case "table9":
			table9(*scale)
		case "table10":
			table10()
		case "ablation":
			ablation(*scale, *rounds)
		default:
			log.Fatalf("unknown table %q (table5..table10, ablation, all)", name)
		}
	}
	if which == "all" {
		for _, name := range []string{"table5", "table6", "table7", "table8", "table9", "table10"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(which)
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

func table5() {
	fmt.Println("== Table V: IOC entity and relation extraction accuracy (aggregated over 18 cases) ==")
	fmt.Printf("%-36s %10s %10s %10s %10s %10s %10s\n",
		"Approach", "Ent-P", "Ent-R", "Ent-F1", "Rel-P", "Rel-R", "Rel-F1")
	for _, row := range experiments.Table5() {
		fmt.Printf("%-36s %10s %10s %10s %10s %10s %10s\n",
			row.Approach,
			pct(row.Entity.Precision), pct(row.Entity.Recall), pct(row.Entity.F1),
			pct(row.Relation.Precision), pct(row.Relation.Recall), pct(row.Relation.F1))
	}
}

func table6(scale float64) {
	fmt.Println("== Table VI: precision and recall of finding malicious system events ==")
	rows, err := experiments.Table6(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %14s %14s\n", "Case", "Precision", "Recall")
	var tp, fp, fn int
	for _, r := range rows {
		fmt.Printf("%-24s %8d/%-6d %8d/%-6d\n", r.CaseID, r.TP, r.TP+r.FP, r.TP, r.TP+r.FN)
		tp += r.TP
		fp += r.FP
		fn += r.FN
	}
	p, rcl := 0.0, 0.0
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rcl = float64(tp) / float64(tp+fn)
	}
	f1 := 0.0
	if p+rcl > 0 {
		f1 = 2 * p * rcl / (p + rcl)
	}
	fmt.Printf("%-24s %8d/%-6d %8d/%-6d  (P=%s R=%s F1=%s)\n",
		"Total", tp, tp+fp, tp, tp+fn, pct(p), pct(rcl), pct(f1))
}

func table7() {
	fmt.Println("== Table VII: execution time (seconds) of extraction stages ==")
	rows := experiments.Table7()
	names := []string{
		"ThreatRaptor - IOC Protection", "Stanford Open IE",
		"Stanford Open IE + IOC Protection", "Open IE 5",
		"Open IE 5 + IOC Protection",
	}
	fmt.Printf("%-24s %9s %9s %9s | %9s %9s %9s %9s %9s\n",
		"Case", "text->E&R", "E&R->grph", "grph->TBQL",
		"-IOCProt", "StanfordIE", "Stnfrd+P", "OpenIE5", "OpenIE5+P")
	var sums [8]float64
	for _, r := range rows {
		vals := []float64{r.Extract, r.Graph, r.Synth}
		for _, n := range names {
			vals = append(vals, r.Baselines[n])
		}
		fmt.Printf("%-24s %9.4f %9.4f %9.4f | %9.4f %9.4f %9.4f %9.4f %9.4f\n",
			r.CaseID, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7])
		for i, v := range vals {
			sums[i] += v
		}
	}
	n := float64(len(rows))
	fmt.Printf("%-24s %9.4f %9.4f %9.4f | %9.4f %9.4f %9.4f %9.4f %9.4f  (averages)\n",
		"Average", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n, sums[5]/n, sums[6]/n, sums[7]/n)
}

func table8(scale float64, rounds int) {
	fmt.Printf("== Table VIII: query execution time (seconds, mean over %d rounds) ==\n", rounds)
	rows, err := experiments.Table8(scale, rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %5s %18s %18s %18s %18s\n",
		"Case", "#patt", "TBQL", "SQL", "TBQL(len-1 path)", "Cypher")
	var sums [4]float64
	for _, r := range rows {
		fmt.Printf("%-24s %5d %10.4f±%.4f %10.4f±%.4f %10.4f±%.4f %10.4f±%.4f\n",
			r.CaseID, r.Patterns,
			r.TBQL.Mean, r.TBQL.Std, r.SQL.Mean, r.SQL.Std,
			r.TBQLPath.Mean, r.TBQLPath.Std, r.Cypher.Mean, r.Cypher.Std)
		sums[0] += r.TBQL.Mean
		sums[1] += r.SQL.Mean
		sums[2] += r.TBQLPath.Mean
		sums[3] += r.Cypher.Mean
	}
	fmt.Printf("%-24s %5s %11.4f %18.4f %18.4f %18.4f  (totals)\n",
		"Total", "", sums[0], sums[1], sums[2], sums[3])
	if sums[0] > 0 && sums[2] > 0 {
		fmt.Printf("speedup: SQL/TBQL = %.1fx, Cypher/TBQL(path) = %.1fx\n",
			sums[1]/sums[0], sums[3]/sums[2])
	}
}

func table9(scale float64) {
	fmt.Println("== Table IX: fuzzy search mode vs Poirot (seconds) ==")
	rows, err := experiments.Table9(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s | %9s %9s %9s %9s | %9s %9s %9s\n",
		"Case", "F-load", "F-prep", "F-search", "aligns", "P-load", "P-prep", "P-search")
	for _, r := range rows {
		fmt.Printf("%-24s | %9.4f %9.4f %9.4f %9d | %9.4f %9.4f %9.4f\n",
			r.CaseID, r.Fuzzy.Loading, r.Fuzzy.Preprocessing, r.Fuzzy.Searching,
			r.Alignments, r.Poirot.Loading, r.Poirot.Preprocessing, r.Poirot.Searching)
	}
}

func table10() {
	fmt.Println("== Table X: conciseness of the four query forms ==")
	rows, err := experiments.Table10()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %5s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"Case", "#patt", "TBQL-ch", "TBQL-w", "SQL-ch", "SQL-w", "Path-ch", "Path-w", "Cyp-ch", "Cyp-w")
	var sums [8]int
	patt := 0
	for _, r := range rows {
		fmt.Printf("%-24s %5d %8d %8d %8d %8d %8d %8d %8d %8d\n",
			r.CaseID, r.Patterns, r.TBQLChars, r.TBQLWords, r.SQLChars, r.SQLWords,
			r.TBQLPathChars, r.TBQLPathWords, r.CypherChars, r.CypherWords)
		patt += r.Patterns
		for i, v := range []int{r.TBQLChars, r.TBQLWords, r.SQLChars, r.SQLWords,
			r.TBQLPathChars, r.TBQLPathWords, r.CypherChars, r.CypherWords} {
			sums[i] += v
		}
	}
	fmt.Printf("%-24s %5d %8d %8d %8d %8d %8d %8d %8d %8d  (totals)\n",
		"Total", patt, sums[0], sums[1], sums[2], sums[3], sums[4], sums[5], sums[6], sums[7])
	fmt.Printf("conciseness: SQL/TBQL chars = %.1fx, words = %.1fx; Cypher/TBQL chars = %.1fx, words = %.1fx\n",
		float64(sums[2])/float64(sums[0]), float64(sums[3])/float64(sums[1]),
		float64(sums[6])/float64(sums[0]), float64(sums[7])/float64(sums[1]))
}

func ablation(scale float64, rounds int) {
	fmt.Println("== Ablation A: data reduction threshold sweep (data_leak workload) ==")
	red, err := experiments.ReductionAblation(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s %10s %10s %8s %10s\n", "threshold", "before", "after", "factor", "attack-ok")
	for _, r := range red {
		fmt.Printf("%10dms %10d %10d %7.2fx %10v\n",
			r.ThresholdMS, r.Before, r.After, r.Factor, r.AttackEventsPreserved)
	}
	fmt.Println()
	fmt.Println("== Ablation B: pruning-score scheduler on/off (seconds) ==")
	sch, err := experiments.SchedulerAblation(scale, rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %12s %12s %10s %10s\n", "Case", "scheduled", "unscheduled", "rows-sch", "rows-unsch")
	var sSum, uSum float64
	for _, r := range sch {
		fmt.Printf("%-24s %12.4f %12.4f %10d %10d\n",
			r.CaseID, r.Scheduled.Mean, r.Unscheduled.Mean, r.ScheduledRows, r.UnscheduledRows)
		sSum += r.Scheduled.Mean
		uSum += r.Unscheduled.Mean
	}
	fmt.Printf("%-24s %12.4f %12.4f  (totals; speedup %.1fx)\n", "Total", sSum, uSum, uSum/sSum)
	fmt.Println()
	fmt.Println("== Ablation C: IOC merge similarity threshold (data_leak report) ==")
	fmt.Printf("%10s %8s %8s %10s\n", "threshold", "nodes", "edges", "seconds")
	for _, r := range experiments.MergeAblation() {
		fmt.Printf("%10.2f %8d %8d %10.4f\n", r.Threshold, r.Nodes, r.Edges, r.Seconds)
	}
}
