// Command genlog emits a benchmark case's raw audit log (newline-delimited
// records, before data reduction) to stdout, for feeding into the
// threatraptor and tbql tools' -log flag or into external tooling.
//
// Usage:
//
//	genlog -case data_leak -scale 1 > audit.log
//	genlog -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
)

func main() {
	caseID := flag.String("case", "data_leak", "benchmark case ID")
	scale := flag.Float64("scale", 1.0, "benign noise scale")
	list := flag.Bool("list", false, "list available cases")
	flag.Parse()

	if *list {
		for _, c := range cases.All() {
			fmt.Printf("%-24s %s\n", c.ID, c.Name)
		}
		for _, c := range cases.Extras() {
			fmt.Printf("%-24s %s (extra, not in Table IV)\n", c.ID, c.Name)
		}
		return
	}
	c := cases.ByID(*caseID)
	if c == nil {
		log.Fatalf("unknown case %q (try -list)", *caseID)
	}
	// Re-simulate to obtain the raw record stream (GenerateRaw parses; here
	// the wire lines themselves are wanted).
	records, _, _ := c.Simulate(*scale)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := audit.WriteRecords(w, records); err != nil {
		log.Fatal(err)
	}
}
