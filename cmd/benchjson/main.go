// Command benchjson runs the engine benchmarks and writes their ns/op,
// B/op, and allocs/op to a JSON file, establishing the performance
// trajectory that future changes are measured against.
//
// Usage:
//
//	go run ./cmd/benchjson [-o BENCH_engine.json] [-benchtime 2s]
//
// It shells out to `go test -bench` so the numbers are exactly what the
// standard tooling reports, then parses the benchmark lines into JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"time"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the emitted document.
type File struct {
	GoVersion string            `json:"go_version"`
	Package   string            `json:"package"`
	Date      string            `json:"date"`
	Results   []Result          `json:"results"`
	Baseline  map[string]Result `json:"baseline,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime value")
	pattern := flag.String("bench", "BenchmarkExecuteScheduled|BenchmarkExecuteParallel|BenchmarkExecuteUnscheduled|BenchmarkStoreLoadEngine", "benchmark regexp")
	flag.Parse()

	cmd := exec.Command("go", "test", "./internal/engine",
		"-run", "NONE", "-bench", *pattern, "-benchmem", "-benchtime", *benchtime)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n", err)
		os.Exit(1)
	}

	doc := File{
		Package: "threatraptor/internal/engine",
		Date:    time.Now().UTC().Format("2006-01-02"),
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		doc.GoVersion = string(v[:len(v)-1])
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bytes, _ := strconv.ParseInt(m[4], 10, 64)
		allocs, _ := strconv.ParseInt(m[5], 10, 64)
		doc.Results = append(doc.Results, Result{
			Name: m[1], Iterations: iters, NsPerOp: ns,
			BytesPerOp: bytes, AllocsPerOp: allocs,
		})
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	// Preserve a previously recorded baseline block so before/after
	// numbers travel together.
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil && old.Baseline != nil {
			doc.Baseline = old.Baseline
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(doc.Results))
}
