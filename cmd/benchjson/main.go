// Command benchjson runs the engine and stream benchmarks and writes
// their ns/op, B/op, and allocs/op to a JSON file, establishing the
// performance trajectory that future changes are measured against.
//
// Usage:
//
//	go run ./cmd/benchjson [-o BENCH_engine.json] [-benchtime 2s]
//	go run ./cmd/benchjson -gate [-gate-threshold 0.25] [-gate-bench BenchmarkExecuteScheduled]
//
// It shells out to `go test -bench` so the numbers are exactly what the
// standard tooling reports, then parses the benchmark lines into JSON.
//
// With -gate it becomes the CI regression guard: instead of overwriting
// the baseline file it re-runs the gated benchmarks, compares their ns/op
// and allocs/op against the committed file, and exits non-zero when either
// regresses by more than the threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the emitted document.
type File struct {
	GoVersion string            `json:"go_version"`
	Package   string            `json:"package"`
	Date      string            `json:"date"`
	Results   []Result          `json:"results"`
	Baseline  map[string]Result `json:"baseline,omitempty"`
}

// benchLine parses one `go test -bench` result line. Custom metrics from
// b.ReportMetric (e.g. BenchmarkTacticalRound's alerts/op) print between
// ns/op and B/op; the optional middle group skips them.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+[\d.]+ [^\s]+)*?\s+(\d+) B/op\s+(\d+) allocs/op`)

// gomaxprocsSuffix is the "-N" go test appends to benchmark names when
// GOMAXPROCS > 1; it is stripped so names are stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (in -gate mode: the committed baseline to compare against)")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime value")
	pattern := flag.String("bench", "BenchmarkExecuteScheduled|BenchmarkExecuteParallel|BenchmarkExecuteUnscheduled|BenchmarkStoreLoadEngine|BenchmarkStoreOpenSegment|BenchmarkStreamIngest|BenchmarkStandingQuery|BenchmarkStandingQueryScale|BenchmarkConcurrentHunts|BenchmarkTacticalRound|BenchmarkCompile|BenchmarkShardedHunt", "benchmark regexp")
	gate := flag.Bool("gate", false, "compare against the committed baseline instead of rewriting it; exit 1 on regression")
	gateThreshold := flag.Float64("gate-threshold", 0.25, "fractional regression tolerated by -gate (0.25 = 25%)")
	gateBench := flag.String("gate-bench", "BenchmarkExecuteScheduled,BenchmarkStreamIngest,BenchmarkStandingQuery,BenchmarkStandingQueryScale/8x,BenchmarkConcurrentHunts,BenchmarkTacticalRound,BenchmarkCompile/cold,BenchmarkCompile/hit,BenchmarkShardedHunt/shards4,BenchmarkStoreOpenSegment", "comma-separated benchmarks checked by -gate")
	flag.Parse()

	if *gate {
		*pattern = strings.Join(strings.Split(*gateBench, ","), "|")
	}
	cmd := exec.Command("go", "test", "./internal/engine", "./internal/stream", "./internal/shard",
		"-run", "NONE", "-bench", *pattern, "-benchmem", "-benchtime", *benchtime)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n", err)
		os.Exit(1)
	}

	doc := File{
		Package: "threatraptor/internal/engine threatraptor/internal/stream threatraptor/internal/shard",
		Date:    time.Now().UTC().Format("2006-01-02"),
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		doc.GoVersion = string(v[:len(v)-1])
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bytes, _ := strconv.ParseInt(m[4], 10, 64)
		allocs, _ := strconv.ParseInt(m[5], 10, 64)
		doc.Results = append(doc.Results, Result{
			Name:       gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters, NsPerOp: ns,
			BytesPerOp: bytes, AllocsPerOp: allocs,
		})
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	if *gate {
		os.Exit(runGate(*out, doc.Results, *gateBench, *gateThreshold))
	}

	// Preserve a previously recorded baseline block so before/after
	// numbers travel together.
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil && old.Baseline != nil {
			doc.Baseline = old.Baseline
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(doc.Results))
}

// runGate compares fresh measurements against the committed baseline file
// and returns the process exit code: 0 when every gated benchmark's ns/op
// and allocs/op are within (1+threshold) of the committed numbers.
func runGate(baselinePath string, fresh []Result, gateBench string, threshold float64) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: cannot read baseline %s: %v\n", baselinePath, err)
		return 1
	}
	var committed File
	if err := json.Unmarshal(raw, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: cannot parse baseline %s: %v\n", baselinePath, err)
		return 1
	}
	byName := make(map[string]Result, len(committed.Results))
	for _, r := range committed.Results {
		byName[r.Name] = r
	}
	freshByName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		freshByName[r.Name] = r
	}

	code := 0
	check := func(name, metric string, old, new float64) {
		limit := old * (1 + threshold)
		status := "ok"
		if new > limit {
			status = "REGRESSION"
			code = 1
		}
		fmt.Printf("%-28s %-10s %14.0f -> %10.0f (limit %.0f) %s\n",
			name, metric, old, new, limit, status)
	}
	for _, name := range strings.Split(gateBench, ",") {
		name = strings.TrimSpace(name)
		base, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s has no entry for %s\n", baselinePath, name)
			return 1
		}
		cur, ok := freshByName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: fresh run produced no result for %s\n", name)
			return 1
		}
		check(name, "ns/op", base.NsPerOp, cur.NsPerOp)
		check(name, "allocs/op", float64(base.AllocsPerOp), float64(cur.AllocsPerOp))
	}
	if code != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: benchmark regression beyond %.0f%% — if intended, refresh %s with `go run ./cmd/benchjson`\n",
			threshold*100, baselinePath)
	}
	return code
}
