package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"threatraptor"
	"threatraptor/internal/audit"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/stream"
)

// readLine renders one read-syscall record as a wire line.
func readLine(ts int64, pid int, exe, path string) string {
	r := audit.Record{Time: ts, Call: audit.SysRead, PID: pid, Exe: exe,
		User: "root", FD: audit.FDFile, Path: path, Bytes: 10}
	return r.Format() + "\n"
}

// TestWatchExitsNonzeroOnQuarantine is the regression test for the watch
// loop swallowing a quarantined standing query: the subscription channel
// closed, printMatches treated it as "no more matches", and the tailer
// kept polling a watch that could never fire again until the idle limit
// exited it silently (exit code 0). runWatch must instead return the
// quarantine cause so main exits nonzero with the reason printed.
func TestWatchExitsNonzeroOnQuarantine(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "audit.log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Fail three consecutive standing-query evaluations — the default
	// quarantine threshold.
	faultinject.Arm(faultinject.Plan{
		stream.FaultDeliver: {Hits: []int{1, 2, 3}, Mode: faultinject.ModeError},
	})
	t.Cleanup(faultinject.Disarm)

	// Grow the log while runWatch tails it; each appended line seals the
	// previous one on the next poll, driving one evaluation per batch.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < 10; i++ {
			line := readLine(int64(i+1)*2_000_000, 100+i, "/bin/cat", fmt.Sprintf("/data/f%d", i))
			if _, err := f.WriteString(line); err != nil {
				t.Errorf("append line %d: %v", i, err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	sys := threatraptor.New(threatraptor.DefaultOptions())
	err = runWatch(sys, logPath, `proc p read file f return p, f`,
		2*time.Millisecond, 100, false, false)
	<-writerDone
	if err == nil {
		t.Fatal("runWatch returned nil after its standing query was quarantined")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("error %q does not name the quarantine", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v does not wrap the quarantine cause", err)
	}
}
