// Command threatraptor runs the end-to-end OSCTI-driven threat hunting
// pipeline: it loads system audit logs, extracts a threat behavior graph
// from an OSCTI report, synthesizes a TBQL query, and executes it. In
// watch mode it instead tails a growing audit log and fires registered
// standing queries as matching behaviors appear.
//
// Usage:
//
//	threatraptor -log audit.log -report attack.txt          # full pipeline
//	threatraptor -log audit.log -report attack.txt -fuzzy   # fuzzy mode
//	threatraptor -report attack.txt -synthesize-only        # no execution
//	threatraptor -demo data_leak                            # built-in case
//	threatraptor -watch -log audit.log -query hunt.tbql     # live hunting
//	threatraptor -watch -log audit.log -report attack.txt   # live, synthesized
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"threatraptor"
	"threatraptor/internal/cases"
	"threatraptor/internal/stream"
)

func main() {
	logPath := flag.String("log", "", "audit log file (newline-delimited raw records)")
	reportPath := flag.String("report", "", "OSCTI report text file")
	synthOnly := flag.Bool("synthesize-only", false, "stop after query synthesis")
	graphJSON := flag.Bool("graph-json", false, "print the threat behavior graph as JSON")
	useFuzzy := flag.Bool("fuzzy", false, "execute in fuzzy search mode")
	demo := flag.String("demo", "", "run a built-in benchmark case (e.g. data_leak)")
	scale := flag.Float64("scale", 1.0, "benign noise scale for -demo")
	explain := flag.Bool("explain", false, "print the compiled logical-plan IR and physical plans before executing")
	watch := flag.Bool("watch", false, "tail -log continuously, firing the query as behaviors appear")
	queryPath := flag.String("query", "", "TBQL query file (watch mode; skips report synthesis)")
	poll := flag.Duration("poll", 500*time.Millisecond, "watch mode poll interval")
	watchIdle := flag.Int("watch-idle", 0, "exit watch mode after N consecutive polls without new data (0 = run until interrupted)")
	flag.Parse()

	sys := threatraptor.New(threatraptor.DefaultOptions())

	if *watch {
		if *logPath == "" {
			log.Fatal("-watch requires -log (the file to tail)")
		}
		query, err := watchQuery(sys, *queryPath, *reportPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- standing query ---")
		fmt.Println(query)
		if err := runWatch(sys, *logPath, query, *poll, *watchIdle); err != nil {
			log.Fatal(err)
		}
		return
	}

	var report string

	switch {
	case *demo != "":
		c := cases.ByID(*demo)
		if c == nil {
			var ids []string
			for _, cc := range cases.All() {
				ids = append(ids, cc.ID)
			}
			log.Fatalf("unknown case %q; available: %v", *demo, ids)
		}
		gen, err := c.Generate(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadLog(gen.Log); err != nil {
			log.Fatal(err)
		}
		report = c.Report
		fmt.Printf("case %s: %d entities, %d events (%d attack)\n",
			c.ID, gen.Log.Stats().Entities, gen.Log.Stats().Events, len(gen.AttackEventIDs))
	default:
		if *reportPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		data, err := os.ReadFile(*reportPath)
		if err != nil {
			log.Fatal(err)
		}
		report = string(data)
		if *logPath != "" {
			f, err := os.Open(*logPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := sys.LoadAuditLog(f); err != nil {
				log.Fatal(err)
			}
		} else if !*synthOnly {
			log.Fatal("-log is required unless -synthesize-only is set")
		}
	}

	res := sys.ExtractBehaviorGraph(report)
	if *graphJSON {
		data, err := json.MarshalIndent(res.Graph, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		if *synthOnly {
			return
		}
	} else {
		fmt.Println("--- threat behavior graph ---")
		fmt.Print(res.Graph)
	}

	query, err := sys.SynthesizeQuery(res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- synthesized TBQL query ---")
	fmt.Println(query)
	if *synthOnly {
		return
	}

	if *explain {
		report, err := sys.Explain(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
	}

	if *useFuzzy {
		als, err := sys.FuzzyHunt(query, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- fuzzy alignments ---")
		for _, al := range als {
			fmt.Printf("score %.2f: %v (%d events)\n", al.Score, al.Entities, len(al.Events))
		}
		return
	}

	hits, stats, err := sys.Hunt(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- results ---")
	fmt.Println(hits.Set.Columns)
	for _, row := range hits.Set.Strings() {
		fmt.Println(row)
	}
	fmt.Printf("(%d matched events, %d data queries)\n", len(hits.MatchedEvents), stats.DataQueries)
	if stats.EmptyPatternID != "" {
		fmt.Printf("note: pattern %s matched no events and emptied the conjunction;\n", stats.EmptyPatternID)
		fmt.Println("      revise the query (remove/relax the pattern) or try -fuzzy")
	}
}

// watchQuery resolves the standing query: an explicit TBQL file wins,
// otherwise the report is extracted and a query synthesized (no store is
// needed for synthesis).
func watchQuery(sys *threatraptor.System, queryPath, reportPath string) (string, error) {
	if queryPath != "" {
		data, err := os.ReadFile(queryPath)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	if reportPath == "" {
		return "", fmt.Errorf("watch mode needs -query or -report")
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		return "", err
	}
	res := sys.ExtractBehaviorGraph(string(data))
	return sys.SynthesizeQuery(res.Graph)
}

// runWatch tails the log file: each poll ingests whatever bytes were
// appended since the last one (the open file keeps its offset, and a
// half-written final line stays buffered inside the parser), then prints
// any standing-query firings.
func runWatch(sys *threatraptor.System, logPath, query string, poll time.Duration, idleLimit int) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer f.Close()

	sub, err := sys.Watch(query)
	if err != nil {
		return err
	}
	printMatches := func() int {
		n := 0
		for {
			select {
			case m, ok := <-sub.C:
				if !ok {
					return n
				}
				fmt.Printf("MATCH batch=%d", m.Batch)
				for i, col := range m.Columns {
					fmt.Printf(" %s=%s", col, m.Row[i].String())
				}
				fmt.Println()
				n++
			default:
				return n
			}
		}
	}

	fmt.Printf("watching %s (poll %s)\n", logPath, poll)
	idle := 0
	lastPartial := 0
	for {
		st, err := sys.Ingest(f)
		var pe *stream.ParseError
		if errors.As(err, &pe) {
			// One corrupt record must not kill a live watch: the valid
			// lines around it were ingested; warn and keep tailing.
			fmt.Fprintf(os.Stderr, "watch: %v\n", pe)
		} else if err != nil {
			return err
		}
		fired := printMatches()
		// A grown partial line is progress too: the producer is
		// mid-write, not idle.
		if st.EventsParsed > 0 || st.EventsSealed > 0 || fired > 0 || st.PartialBuffered != lastPartial {
			idle = 0
		} else {
			idle++
			if idleLimit > 0 && idle >= idleLimit {
				if st.PartialBuffered > 0 {
					fmt.Printf("watch: warning: flushing a %d-byte unterminated trailing line\n", st.PartialBuffered)
				}
				if _, err := sys.FlushStream(); err != nil {
					return err
				}
				printMatches()
				fmt.Println("watch: idle limit reached; flushed and exiting")
				return nil
			}
		}
		lastPartial = st.PartialBuffered
		time.Sleep(poll)
	}
}
