// Command threatraptor runs the end-to-end OSCTI-driven threat hunting
// pipeline: it loads system audit logs, extracts a threat behavior graph
// from an OSCTI report, synthesizes a TBQL query, and executes it.
//
// Usage:
//
//	threatraptor -log audit.log -report attack.txt          # full pipeline
//	threatraptor -log audit.log -report attack.txt -fuzzy   # fuzzy mode
//	threatraptor -report attack.txt -synthesize-only        # no execution
//	threatraptor -demo data_leak                            # built-in case
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"threatraptor"
	"threatraptor/internal/cases"
)

func main() {
	logPath := flag.String("log", "", "audit log file (newline-delimited raw records)")
	reportPath := flag.String("report", "", "OSCTI report text file")
	synthOnly := flag.Bool("synthesize-only", false, "stop after query synthesis")
	graphJSON := flag.Bool("graph-json", false, "print the threat behavior graph as JSON")
	useFuzzy := flag.Bool("fuzzy", false, "execute in fuzzy search mode")
	demo := flag.String("demo", "", "run a built-in benchmark case (e.g. data_leak)")
	scale := flag.Float64("scale", 1.0, "benign noise scale for -demo")
	flag.Parse()

	sys := threatraptor.New(threatraptor.DefaultOptions())
	var report string

	switch {
	case *demo != "":
		c := cases.ByID(*demo)
		if c == nil {
			var ids []string
			for _, cc := range cases.All() {
				ids = append(ids, cc.ID)
			}
			log.Fatalf("unknown case %q; available: %v", *demo, ids)
		}
		gen, err := c.Generate(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadLog(gen.Log); err != nil {
			log.Fatal(err)
		}
		report = c.Report
		fmt.Printf("case %s: %d entities, %d events (%d attack)\n",
			c.ID, gen.Log.Stats().Entities, gen.Log.Stats().Events, len(gen.AttackEventIDs))
	default:
		if *reportPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		data, err := os.ReadFile(*reportPath)
		if err != nil {
			log.Fatal(err)
		}
		report = string(data)
		if *logPath != "" {
			f, err := os.Open(*logPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := sys.LoadAuditLog(f); err != nil {
				log.Fatal(err)
			}
		} else if !*synthOnly {
			log.Fatal("-log is required unless -synthesize-only is set")
		}
	}

	res := sys.ExtractBehaviorGraph(report)
	if *graphJSON {
		data, err := json.MarshalIndent(res.Graph, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		if *synthOnly {
			return
		}
	} else {
		fmt.Println("--- threat behavior graph ---")
		fmt.Print(res.Graph)
	}

	query, err := sys.SynthesizeQuery(res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- synthesized TBQL query ---")
	fmt.Println(query)
	if *synthOnly {
		return
	}

	if *useFuzzy {
		als, err := sys.FuzzyHunt(query, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- fuzzy alignments ---")
		for _, al := range als {
			fmt.Printf("score %.2f: %v (%d events)\n", al.Score, al.Entities, len(al.Events))
		}
		return
	}

	hits, stats, err := sys.Hunt(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- results ---")
	fmt.Println(hits.Set.Columns)
	for _, row := range hits.Set.Strings() {
		fmt.Println(row)
	}
	fmt.Printf("(%d matched events, %d data queries)\n", len(hits.MatchedEvents), stats.DataQueries)
	if stats.EmptyPatternID != "" {
		fmt.Printf("note: pattern %s matched no events and emptied the conjunction;\n", stats.EmptyPatternID)
		fmt.Println("      revise the query (remove/relax the pattern) or try -fuzzy")
	}
}
