// Command threatraptor runs the end-to-end OSCTI-driven threat hunting
// pipeline: it loads system audit logs, extracts a threat behavior graph
// from an OSCTI report, synthesizes a TBQL query, and executes it. In
// watch mode it instead tails a growing audit log and fires registered
// standing queries as matching behaviors appear.
//
// Usage:
//
//	threatraptor -log audit.log -report attack.txt          # full pipeline
//	threatraptor -log audit.log -report attack.txt -fuzzy   # fuzzy mode
//	threatraptor -report attack.txt -synthesize-only        # no execution
//	threatraptor -demo data_leak                            # built-in case
//	threatraptor -watch -log audit.log -query hunt.tbql     # live hunting
//	threatraptor -watch -log audit.log -report attack.txt   # live, synthesized
//	threatraptor -log audit.log -rules rules.json -incidents  # tactical ranking
//	threatraptor -watch -log audit.log -query hunt.tbql -rules rules.json -incidents
//	threatraptor -data-dir dir -report attack.txt           # hunt a recovered store
//	threatraptor -watch -log new.log -query h.tbql -data-dir dir  # durable live hunt
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"threatraptor"
	"threatraptor/internal/cases"
	"threatraptor/internal/rules"
	"threatraptor/internal/segment"
	"threatraptor/internal/stream"
	"threatraptor/internal/tactical"
)

func main() {
	logPath := flag.String("log", "", "audit log file (newline-delimited raw records)")
	reportPath := flag.String("report", "", "OSCTI report text file")
	synthOnly := flag.Bool("synthesize-only", false, "stop after query synthesis")
	graphJSON := flag.Bool("graph-json", false, "print the threat behavior graph as JSON")
	useFuzzy := flag.Bool("fuzzy", false, "execute in fuzzy search mode")
	demo := flag.String("demo", "", "run a built-in benchmark case (e.g. data_leak)")
	scale := flag.Float64("scale", 1.0, "benign noise scale for -demo")
	explain := flag.Bool("explain", false, "print the compiled logical-plan IR and physical plans before executing")
	watch := flag.Bool("watch", false, "tail -log continuously, firing the query as behaviors appear")
	queryPath := flag.String("query", "", "TBQL query file (watch mode; skips report synthesis)")
	poll := flag.Duration("poll", 500*time.Millisecond, "watch mode poll interval")
	watchIdle := flag.Int("watch-idle", 0, "exit watch mode after N consecutive polls without new data (0 = run until interrupted)")
	huntTimeout := flag.Duration("hunt-timeout", 0, "cancel the hunt after this long (0 = no limit)")
	maxHunts := flag.Int("max-hunts", 0, "max concurrent hunts before load shedding (0 = unlimited)")
	huntQueueTimeout := flag.Duration("hunt-queue-timeout", 0, "how long a hunt queues for a slot when -max-hunts is reached")
	rulesPath := flag.String("rules", "", "detection rule file (JSON) enabling the tactical layer")
	showIncidents := flag.Bool("incidents", false, "print ranked tactical incidents (requires -rules)")
	shards := flag.Int("shards", 0, "partition the store into N shards with scatter-gather hunts (0/1 = single store)")
	partitionBy := flag.String("partition-by", "host", "shard key: host, time, or hash (with -shards)")
	dataDir := flag.String("data-dir", "", "durable data directory: recover persisted state on start (warm-start hunts need no -log) and persist live ingest")
	flag.Parse()

	var ruleSet *rules.Set
	if *rulesPath != "" {
		set, err := rules.LoadFile(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		ruleSet = set
	}
	if *showIncidents && ruleSet == nil {
		log.Fatal("-incidents requires -rules")
	}

	opts := threatraptor.DefaultOptions()
	opts.MaxConcurrentHunts = *maxHunts
	opts.HuntQueueTimeout = *huntQueueTimeout
	opts.Rules = ruleSet
	opts.Shards = *shards
	opts.PartitionBy = *partitionBy
	opts.DataDir = *dataDir

	// A data dir with persisted state is the store: recover it instead of
	// preloading over it (warm start). Watch mode keeps -log — that is the
	// file to tail, not a preload.
	warm := *dataDir != "" && segment.Exists(*dataDir)
	if warm && !*watch && (*demo != "" || *logPath != "") {
		log.Printf("data dir %s holds persisted state; ignoring -demo/-log and recovering it", *dataDir)
		*demo, *logPath = "", ""
	}
	sys := threatraptor.New(opts)

	ctx := context.Background()
	if *huntTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *huntTimeout)
		defer cancel()
	}

	if *watch {
		if *logPath == "" {
			log.Fatal("-watch requires -log (the file to tail)")
		}
		query, err := watchQuery(sys, *queryPath, *reportPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- standing query ---")
		fmt.Println(query)
		if err := runWatch(sys, *logPath, query, *poll, *watchIdle, ruleSet != nil, *showIncidents); err != nil {
			log.Fatal(err)
		}
		// A durable session writes its final segment generation here; the
		// next -data-dir run warm-starts from it.
		if err := sys.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	var report string

	switch {
	case *demo != "":
		c := cases.ByID(*demo)
		if c == nil {
			var ids []string
			for _, cc := range cases.All() {
				ids = append(ids, cc.ID)
			}
			log.Fatalf("unknown case %q; available: %v", *demo, ids)
		}
		gen, err := c.Generate(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadLog(gen.Log); err != nil {
			log.Fatal(err)
		}
		report = c.Report
		fmt.Printf("case %s: %d entities, %d events (%d attack)\n",
			c.ID, gen.Log.Stats().Entities, gen.Log.Stats().Events, len(gen.AttackEventIDs))
	default:
		if *reportPath == "" && !(*showIncidents && (*logPath != "" || warm)) {
			flag.Usage()
			os.Exit(2)
		}
		if *reportPath != "" {
			data, err := os.ReadFile(*reportPath)
			if err != nil {
				log.Fatal(err)
			}
			report = string(data)
		}
		switch {
		case *logPath != "":
			f, err := os.Open(*logPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := sys.LoadAuditLog(f); err != nil {
				log.Fatal(err)
			}
		case warm:
			// Warm start: the hunt runs over the recovered store.
			if _, err := sys.Live(); err != nil {
				log.Fatal(err)
			}
			rs := sys.RecoveryStats()
			fmt.Printf("recovered %s: generation %d (%d segments), %d WAL records replayed\n",
				*dataDir, rs.ManifestSeq, rs.Segments, rs.ReplayedRecords)
		default:
			if !*synthOnly {
				log.Fatal("-log is required unless -synthesize-only is set or -data-dir holds persisted state")
			}
		}
	}

	if *dataDir != "" && !warm && !*synthOnly {
		// Fresh data dir under a loaded store: open the durable session so
		// the Close at exit persists it, seeding future warm starts.
		if _, err := sys.Live(); err != nil {
			log.Fatal(err)
		}
	}

	if *showIncidents {
		incs, err := sys.Analyze(ruleSet)
		if err != nil {
			log.Fatal(err)
		}
		data, err := tactical.MarshalIncidents(incs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- ranked incidents ---")
		fmt.Println(string(data))
		if report == "" {
			return
		}
	}

	res := sys.ExtractBehaviorGraph(report)
	if *graphJSON {
		data, err := json.MarshalIndent(res.Graph, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		if *synthOnly {
			return
		}
	} else {
		fmt.Println("--- threat behavior graph ---")
		fmt.Print(res.Graph)
	}

	query, err := sys.SynthesizeQuery(res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- synthesized TBQL query ---")
	fmt.Println(query)
	if *synthOnly {
		return
	}

	if *explain {
		report, err := sys.Explain(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
	}

	if *useFuzzy {
		als, err := sys.FuzzyHunt(ctx, query, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- fuzzy alignments ---")
		for _, al := range als {
			fmt.Printf("score %.2f: %v (%d events)\n", al.Score, al.Entities, len(al.Events))
		}
		if err := sys.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	hits, stats, err := sys.Hunt(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- results ---")
	fmt.Println(hits.Set.Columns)
	for _, row := range hits.Set.Strings() {
		fmt.Println(row)
	}
	fmt.Printf("(%d matched events, %d data queries)\n", len(hits.MatchedEvents), stats.DataQueries)
	if stats.EmptyPatternID != "" {
		fmt.Printf("note: pattern %s matched no events and emptied the conjunction;\n", stats.EmptyPatternID)
		fmt.Println("      revise the query (remove/relax the pattern) or try -fuzzy")
	}
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}

// watchQuery resolves the standing query: an explicit TBQL file wins,
// otherwise the report is extracted and a query synthesized (no store is
// needed for synthesis).
func watchQuery(sys *threatraptor.System, queryPath, reportPath string) (string, error) {
	if queryPath != "" {
		data, err := os.ReadFile(queryPath)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	if reportPath == "" {
		return "", fmt.Errorf("watch mode needs -query or -report")
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		return "", err
	}
	res := sys.ExtractBehaviorGraph(string(data))
	return sys.SynthesizeQuery(res.Graph)
}

// runWatch tails the log file: each poll ingests whatever bytes were
// appended since the last one (the open file keeps its offset, and a
// half-written final line stays buffered inside the parser), then prints
// any standing-query firings. The tailer survives log rotation (the path
// points at a new inode: the old file is drained once more, then the new
// one is opened from the start) and truncation (the inode shrank below
// the read offset: rewind to 0), retries transient read errors with
// jittered exponential backoff, and on SIGINT/SIGTERM drains a final
// ingest+flush before exiting so buffered events still fire. A
// quarantined standing query (or an unexpectedly closed subscription) is
// fatal: the watch can never fire again, so runWatch returns the cause
// and the process exits nonzero.
func runWatch(sys *threatraptor.System, logPath, query string, poll time.Duration, idleLimit int, withTactical, showIncidents bool) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	sub, err := sys.Watch(query)
	if err != nil {
		return err
	}
	var isub *stream.IncidentSub
	if withTactical {
		isub, err = sys.WatchIncidents(0)
		if err != nil {
			return err
		}
	}
	printMatches := func() (int, error) {
		n := 0
		for {
			select {
			case m, ok := <-sub.C:
				if !ok || m.Terminal {
					// The terminal marker is delivered best-effort before
					// the close; either way the query is gone for good.
					if cause := sub.Err(); cause != nil {
						return n, fmt.Errorf("standing query quarantined: %w", cause)
					}
					return n, fmt.Errorf("standing query subscription closed")
				}
				fmt.Printf("MATCH batch=%d", m.Batch)
				for i, col := range m.Columns {
					fmt.Printf(" %s=%s", col, m.Row[i].String())
				}
				fmt.Println()
				n++
			default:
				return n, nil
			}
		}
	}
	printIncidents := func() {
		if isub == nil {
			return
		}
		for {
			select {
			case u, ok := <-isub.C:
				if !ok {
					isub = nil
					return
				}
				fmt.Printf("INCIDENTS batch=%d alerts=%d new=%d open=%d\n",
					u.Batch, u.Alerts, u.NewIncidents, len(u.Incidents))
				if len(u.Incidents) > 0 {
					top := u.Incidents[0]
					fmt.Printf("  top: #%d root=%s chain=%d score=%d alerts=%d\n",
						top.ID, top.RootEntity, top.ChainLen, top.ChainScore, top.AlertCount)
				}
			default:
				return
			}
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	// finish drains whatever is still readable plus everything buffered
	// (partial line, arrival buffer, pending merges) so a shutdown loses
	// nothing that was already on disk.
	finish := func(reason string) error {
		if f != nil {
			if _, err := sys.Ingest(f); err != nil {
				var pe *stream.ParseError
				if !errors.As(err, &pe) {
					fmt.Fprintf(os.Stderr, "watch: final ingest: %v\n", err)
				}
			}
		}
		if _, err := sys.FlushStream(); err != nil {
			return err
		}
		_, merr := printMatches()
		printIncidents()
		if showIncidents {
			incs, err := sys.Incidents()
			if err != nil {
				return err
			}
			data, err := tactical.MarshalIncidents(incs)
			if err != nil {
				return err
			}
			fmt.Println("--- ranked incidents ---")
			fmt.Println(string(data))
		}
		if merr != nil {
			return merr
		}
		fmt.Printf("watch: %s; flushed and exiting\n", reason)
		return nil
	}

	// sleep waits d or returns false on SIGINT/SIGTERM.
	sleep := func(d time.Duration) bool {
		select {
		case <-sigc:
			return false
		case <-time.After(d):
			return true
		}
	}

	const maxBackoff = 10 * time.Second
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := time.Duration(0)
	// fail sleeps one jittered exponential-backoff step; transient errors
	// (a rotated-away file mid-reopen, an NFS hiccup) must not kill a
	// long-lived watch, but hot-looping on them would burn the CPU.
	fail := func(op string, err error) bool {
		if backoff == 0 {
			backoff = poll
		} else if backoff < maxBackoff {
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		d := backoff + time.Duration(rng.Int63n(int64(backoff/2)+1))
		fmt.Fprintf(os.Stderr, "watch: %s: %v (retrying in %s)\n", op, err, d.Round(time.Millisecond))
		return sleep(d)
	}

	fmt.Printf("watching %s (poll %s)\n", logPath, poll)
	idle := 0
	lastPartial := 0
	for {
		if f == nil {
			nf, err := os.Open(logPath)
			if err != nil {
				if !fail("reopen", err) {
					return finish("interrupted")
				}
				continue
			}
			f = nf
		}
		// Rotation: the path now names a different file. Drain the old
		// inode below one last time, then reopen next iteration.
		rotated := false
		if cur, err := f.Stat(); err == nil {
			if onDisk, err := os.Stat(logPath); err == nil {
				rotated = !os.SameFile(cur, onDisk)
			}
			// Truncation in place: the inode shrank below our offset;
			// start over from the top of the file.
			if off, err := f.Seek(0, io.SeekCurrent); err == nil && cur.Size() < off {
				fmt.Fprintf(os.Stderr, "watch: %s truncated (%d < %d); rewinding\n", logPath, cur.Size(), off)
				if _, err := f.Seek(0, io.SeekStart); err != nil {
					f.Close()
					f = nil
					if !fail("rewind", err) {
						return finish("interrupted")
					}
					continue
				}
			}
		}
		st, err := sys.Ingest(f)
		var pe *stream.ParseError
		if errors.As(err, &pe) {
			// One corrupt record must not kill a live watch: the valid
			// lines around it were ingested; warn and keep tailing.
			fmt.Fprintf(os.Stderr, "watch: %v\n", pe)
		} else if err != nil {
			if errors.Is(err, stream.ErrSessionClosed) {
				return err
			}
			if !fail("ingest", err) {
				return finish("interrupted")
			}
			continue
		}
		backoff = 0
		if rotated {
			fmt.Fprintf(os.Stderr, "watch: %s rotated; reopening\n", logPath)
			f.Close()
			f = nil
			continue
		}
		fired, merr := printMatches()
		if merr != nil {
			return merr
		}
		printIncidents()
		// A grown partial line is progress too: the producer is
		// mid-write, not idle.
		if st.EventsParsed > 0 || st.EventsSealed > 0 || fired > 0 || st.PartialBuffered != lastPartial {
			idle = 0
		} else {
			idle++
			if idleLimit > 0 && idle >= idleLimit {
				if st.PartialBuffered > 0 {
					fmt.Printf("watch: warning: flushing a %d-byte unterminated trailing line\n", st.PartialBuffered)
				}
				return finish("idle limit reached")
			}
		}
		lastPartial = st.PartialBuffered
		if !sleep(poll) {
			return finish("interrupted")
		}
	}
}
