package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"threatraptor"
	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/rules"
	"threatraptor/internal/stream"
	"threatraptor/internal/tactical"
)

// testServer starts the daemon's handler on an httptest server over an
// empty live store.
func testServer(t *testing.T, opts threatraptor.Options) (*httptest.Server, *threatraptor.System) {
	t.Helper()
	sys := threatraptor.New(opts)
	if _, err := sys.Live(); err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, sys
}

func readLine(ts int64, pid int, exe, path string) string {
	r := audit.Record{Time: ts, Call: audit.SysRead, PID: pid, Exe: exe,
		User: "root", FD: audit.FDFile, Path: path, Bytes: 10}
	return r.Format() + "\n"
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestHTTPSmoke drives the daemon end to end over real HTTP: health and
// readiness, raw-record ingest + flush, a hunt whose JSON rows reflect
// the ingested events, EXPLAIN, and the metrics exposition.
func TestHTTPSmoke(t *testing.T) {
	ts, _ := testServer(t, threatraptor.DefaultOptions())

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz = %d, want 200", code)
	}

	lines := readLine(1_000_000, 100, "/bin/cat", "/etc/secret") +
		readLine(2_000_000, 101, "/usr/bin/scp", "/etc/secret")
	if code, body := post(t, ts.URL+"/v1/ingest", lines); code != 200 {
		t.Fatalf("ingest = %d %q", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush = %d %q", code, body)
	}

	code, body := post(t, ts.URL+"/v1/hunt", `proc p read file f return p, f`)
	if code != 200 {
		t.Fatalf("hunt = %d %q", code, body)
	}
	var hr huntResponse
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("hunt response not JSON: %v\n%s", err, body)
	}
	if len(hr.Rows) != 2 {
		t.Fatalf("hunt rows = %v, want 2 rows", hr.Rows)
	}
	joined := fmt.Sprint(hr.Rows)
	for _, want := range []string{"/bin/cat", "/usr/bin/scp", "/etc/secret"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("hunt rows %v missing %q", hr.Rows, want)
		}
	}

	// A malformed query is a client error, not a 500.
	if code, _ := post(t, ts.URL+"/v1/hunt", `this is not tbql`); code != 400 {
		t.Fatalf("bad hunt = %d, want 400", code)
	}

	code, body = post(t, ts.URL+"/v1/explain", `proc p read file f return p, f`)
	if code != 200 || !strings.Contains(body, "pattern") {
		t.Fatalf("explain = %d %q", code, body)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE threatraptor_hunt_duration_seconds histogram",
		"threatraptor_hunt_duration_seconds_count 2",
		"threatraptor_events_sealed_total 2",
		"threatraptor_hunt_errors_total 1",
		"threatraptor_snapshot_age_seconds",
		"threatraptor_store_events 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestWatchStreamsSSE subscribes a standing query over HTTP with
// Accept: text/event-stream, ingests a matching event, and reads the
// firing back as a server-sent event; closing the response body must
// deregister the subscription.
func TestWatchStreamsSSE(t *testing.T) {
	ts, sys := testServer(t, threatraptor.DefaultOptions())
	live, err := sys.Live()
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/watch",
		strings.NewReader(`proc p read file f return p, f`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("watch = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	waitFor(t, "subscription registered", func() bool { return live.Subscriptions() == 1 })

	if code, body := post(t, ts.URL+"/v1/ingest", readLine(1_000_000, 100, "/bin/cat", "/etc/secret")); code != 200 {
		t.Fatalf("ingest = %d %q", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush = %d %q", code, body)
	}

	sc := bufio.NewScanner(resp.Body)
	var event, data string
	deadline := time.Now().Add(10 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no SSE event before deadline")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if event != "match" {
		t.Fatalf("event = %q, want match", event)
	}
	var ev watchEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("SSE data not JSON: %v\n%s", err, data)
	}
	if len(ev.Row) != 2 || ev.Row[0] != "/bin/cat" || ev.Row[1] != "/etc/secret" {
		t.Fatalf("firing row = %v", ev.Row)
	}

	// Disconnecting must unwatch: the handler sees the context cancel and
	// deregisters the subscription.
	resp.Body.Close()
	waitFor(t, "subscription removed on disconnect", func() bool { return live.Subscriptions() == 0 })
}

// TestWatchStreamsNDJSON covers the non-SSE content type: without the
// event-stream Accept header firings arrive as newline-delimited JSON.
func TestWatchStreamsNDJSON(t *testing.T) {
	ts, sys := testServer(t, threatraptor.DefaultOptions())
	live, err := sys.Live()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/watch", "text/plain",
		strings.NewReader(`proc p read file f return p, f`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	waitFor(t, "subscription registered", func() bool { return live.Subscriptions() == 1 })
	post(t, ts.URL+"/v1/ingest", readLine(1_000_000, 100, "/bin/cat", "/etc/secret"))
	post(t, ts.URL+"/v1/flush", "")

	var ev watchEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Row) != 2 || ev.Row[0] != "/bin/cat" {
		t.Fatalf("firing row = %v", ev.Row)
	}
}

// overloadedSystem wraps the real facade but sheds every hunt, the way
// a saturated admission semaphore would (overlap is timing-dependent on
// the real thing; the mapping must not be).
type overloadedSystem struct {
	system
}

func (o overloadedSystem) Hunt(ctx context.Context, src string) (*engine.Result, engine.Stats, error) {
	return nil, engine.Stats{}, fmt.Errorf("hunt: %w", &engine.OverloadedError{Limit: 1})
}

// TestHuntOverloadMaps429 checks the admission-control surface of the
// API: a shed hunt maps to 429 with a Retry-After header and counts as
// a rejection, not an error, in the metrics.
func TestHuntOverloadMaps429(t *testing.T) {
	sys := threatraptor.New(threatraptor.DefaultOptions())
	if _, err := sys.Live(); err != nil {
		t.Fatal(err)
	}
	srv := newServer(overloadedSystem{sys}, 0)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/hunt", "text/plain",
		strings.NewReader(`proc p read file f return p, f`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed hunt = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code, body := get(t, ts.URL+"/metrics"); code != 200 ||
		!strings.Contains(body, "threatraptor_hunt_rejections_total 1") ||
		!strings.Contains(body, "threatraptor_hunt_errors_total 0") {
		t.Fatalf("rejection not counted:\n%s", body)
	}
}

// TestIncidentsDisabledMaps404: without a configured rule set the
// tactical layer is off, and both incident endpoints say so with 404
// rather than an empty 200 (the operator forgot -rules, not "no attacks").
func TestIncidentsDisabledMaps404(t *testing.T) {
	ts, _ := testServer(t, threatraptor.DefaultOptions())
	if code, body := get(t, ts.URL+"/v1/incidents"); code != 404 {
		t.Fatalf("incidents without rules = %d %q, want 404", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/incidents/watch"); code != 404 {
		t.Fatalf("incidents watch without rules = %d %q, want 404", code, body)
	}
}

// tacticalServer starts the daemon with a rule set, wiring the tactical
// round observer into the metrics the way main does.
func tacticalServer(t *testing.T) (*httptest.Server, *threatraptor.System) {
	t.Helper()
	set, err := rules.Compile([]rules.Rule{
		{Name: "etc-read", Tactic: "credential-access", Severity: 8,
			Ops: []string{"read"}, Where: map[string]string{"object.kind": "file", "object.name": "/etc/*"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := threatraptor.DefaultOptions()
	opts.Rules = set
	var srv *server
	opts.OnTacticalRound = func(d time.Duration, rs tactical.RoundStats) {
		if srv != nil {
			srv.observeTacticalRound(d, rs)
		}
	}
	sys := threatraptor.New(opts)
	if _, err := sys.Live(); err != nil {
		t.Fatal(err)
	}
	srv = newServer(sys, 0)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, sys
}

// TestIncidentsEndpoint drives the tactical path over HTTP: rule-matching
// ingest produces a ranked incident on GET /v1/incidents and moves the
// tactical metrics.
func TestIncidentsEndpoint(t *testing.T) {
	ts, _ := tacticalServer(t)

	if code, _ := post(t, ts.URL+"/v1/incidents", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/incidents = %d, want 405", code)
	}
	// Before any ingest: enabled, empty, 200.
	code, body := get(t, ts.URL+"/v1/incidents")
	if code != 200 {
		t.Fatalf("incidents = %d %q", code, body)
	}
	var ir incidentsResponse
	if err := json.Unmarshal([]byte(body), &ir); err != nil {
		t.Fatalf("incidents response not JSON: %v\n%s", err, body)
	}
	if len(ir.Incidents) != 0 {
		t.Fatalf("incidents before ingest = %+v, want none", ir.Incidents)
	}

	lines := readLine(1_000_000, 100, "/bin/cat", "/etc/secret") +
		readLine(2_000_000, 101, "/usr/bin/scp", "/etc/passwd")
	if code, body := post(t, ts.URL+"/v1/ingest", lines); code != 200 {
		t.Fatalf("ingest = %d %q", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush = %d %q", code, body)
	}

	code, body = get(t, ts.URL+"/v1/incidents")
	if code != 200 {
		t.Fatalf("incidents = %d %q", code, body)
	}
	ir = incidentsResponse{}
	if err := json.Unmarshal([]byte(body), &ir); err != nil {
		t.Fatalf("incidents response not JSON: %v\n%s", err, body)
	}
	if ir.Stats.AlertsTagged != 2 {
		t.Fatalf("stats = %+v, want 2 alerts tagged", ir.Stats)
	}
	if len(ir.Incidents) == 0 || ir.Incidents[0].AlertCount == 0 {
		t.Fatalf("incidents = %+v, want a ranked incident with alerts", ir.Incidents)
	}
	if ir.Incidents[0].Alerts[0].Rule != "etc-read" {
		t.Fatalf("top alert = %+v, want rule etc-read", ir.Incidents[0].Alerts[0])
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"threatraptor_alerts_tagged_total 2",
		"threatraptor_incidents_open",
		"# TYPE threatraptor_tactical_round_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestIncidentsWatchStreamsSSE subscribes to incident updates over SSE
// and reads one alert-producing round's update back.
func TestIncidentsWatchStreamsSSE(t *testing.T) {
	ts, _ := tacticalServer(t)

	req, err := http.NewRequest("GET", ts.URL+"/v1/incidents/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("incidents watch = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("incidents watch Content-Type = %q", ct)
	}

	post(t, ts.URL+"/v1/ingest", readLine(1_000_000, 100, "/bin/cat", "/etc/secret"))
	post(t, ts.URL+"/v1/flush", "")

	sc := bufio.NewScanner(resp.Body)
	var event, data string
	deadline := time.Now().Add(10 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no SSE event before deadline")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if event != "incidents" {
		t.Fatalf("event = %q, want incidents", event)
	}
	var upd struct {
		Alerts    int                 `json:"alerts"`
		Incidents []tactical.Incident `json:"incidents"`
	}
	if err := json.Unmarshal([]byte(data), &upd); err != nil {
		t.Fatalf("SSE data not JSON: %v\n%s", err, data)
	}
	if upd.Alerts != 1 || len(upd.Incidents) != 1 {
		t.Fatalf("update = %+v, want 1 alert, 1 incident", upd)
	}
	if upd.Incidents[0].Alerts[0].Object != "/etc/secret" {
		t.Fatalf("incident alert = %+v, want object /etc/secret", upd.Incidents[0].Alerts[0])
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShardedDaemonMetrics runs the daemon over a sharded store: ingest
// and hunts work unchanged through the backend abstraction, and /metrics
// exposes the per-shard families registered for the coordinator.
func TestShardedDaemonMetrics(t *testing.T) {
	opts := threatraptor.DefaultOptions()
	opts.Shards = 4
	opts.PartitionBy = "hash"
	sys := threatraptor.New(opts)
	if _, err := sys.Live(); err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	sh := sys.ShardStore()
	if sh == nil {
		t.Fatal("Options.Shards = 4 did not build a sharded store")
	}
	srv.registerShardMetrics(sh)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	lines := readLine(1_000_000, 100, "/bin/cat", "/etc/secret") +
		readLine(2_000_000, 101, "/usr/bin/scp", "/etc/secret")
	if code, body := post(t, ts.URL+"/v1/ingest", lines); code != 200 {
		t.Fatalf("ingest = %d %q", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush = %d %q", code, body)
	}
	code, body := post(t, ts.URL+"/v1/hunt", `proc p read file f return p, f`)
	if code != 200 {
		t.Fatalf("hunt = %d %q", code, body)
	}
	var hr huntResponse
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("hunt response not JSON: %v\n%s", err, body)
	}
	if len(hr.Rows) != 2 {
		t.Fatalf("hunt rows = %v, want 2 rows", hr.Rows)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE threatraptor_shard_events gauge",
		`threatraptor_shard_events{shard="0"}`,
		`threatraptor_shard_events{shard="3"}`,
		`threatraptor_shard_snapshot_age_seconds{shard="0"}`,
		`threatraptor_hunt_fanout_total{shards="`,
		"threatraptor_shard_global_routed_total 0",
		"threatraptor_shard_rollbacks_total 0",
		"threatraptor_store_events 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestIngestBodyTooLargeMaps413: an oversized /v1/ingest body is cut off
// at the cap and reported as 413 instead of being slurped unbounded; the
// daemon keeps serving and a smaller retry succeeds.
func TestIngestBodyTooLargeMaps413(t *testing.T) {
	sys := threatraptor.New(threatraptor.DefaultOptions())
	if _, err := sys.Live(); err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	srv.maxIngestBytes = 1 << 10
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	var big strings.Builder
	for i := int64(1); big.Len() < 4<<10; i++ {
		big.WriteString(readLine(i*1_000_000, 100, "/bin/cat", "/etc/secret"))
	}
	code, body := post(t, ts.URL+"/v1/ingest", big.String())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d %q, want 413", code, body)
	}
	if !strings.Contains(body, "split the stream") {
		t.Fatalf("413 body %q does not tell the client how to recover", body)
	}

	// The daemon survives the rejection: a small post still ingests and
	// the store seals its events on flush.
	if code, body := post(t, ts.URL+"/v1/ingest", readLine(9_000_000, 101, "/usr/bin/scp", "/etc/passwd")); code != 200 {
		t.Fatalf("ingest after 413 = %d %q", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush after 413 = %d %q", code, body)
	}
	code, body = post(t, ts.URL+"/v1/hunt", `proc p read file f return p, f`)
	if code != 200 || !strings.Contains(body, "/usr/bin/scp") {
		t.Fatalf("hunt after 413 = %d %q, want the retried record", code, body)
	}
}

// TestRecoveringHandler pins the pre-swap surface main serves while a
// durable data dir replays its WAL: liveness green, readiness and every
// API endpoint an honest 503 "recovering".
func TestRecoveringHandler(t *testing.T) {
	ts := httptest.NewServer(recoveringHandler())
	defer ts.Close()
	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz while recovering = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != 503 || !strings.Contains(body, "recovering") {
		t.Fatalf("readyz while recovering = %d %q, want 503 recovering", code, body)
	}
	if code, _ := post(t, ts.URL+"/v1/hunt", `proc p read file f return p, f`); code != 503 {
		t.Fatalf("hunt while recovering = %d, want 503", code)
	}
}

// durableServer builds the daemon over a durable data dir the way main
// does: observers late-bound, recovery stats folded into the metrics.
func durableServer(t *testing.T, dir string) (*httptest.Server, *threatraptor.System) {
	t.Helper()
	opts := threatraptor.DefaultOptions()
	opts.DataDir = dir
	opts.SegmentEvery = 1
	var srv *server
	opts.OnWALFsync = func(d time.Duration) {
		if srv != nil {
			srv.observeWALFsync(d)
		}
	}
	opts.OnSegmentFlush = func(fs stream.FlushStats) {
		if srv != nil {
			srv.observeSegmentFlush(fs)
		}
	}
	sys := threatraptor.New(opts)
	if _, err := sys.Live(); err != nil {
		t.Fatal(err)
	}
	srv = newServer(sys, 0)
	srv.observeRecovery(sys.RecoveryStats())
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, sys
}

// TestDurableDaemonWarmRestart drives the durable daemon over HTTP:
// ingest moves the durability metrics, a clean close writes the final
// generation, and a second daemon over the same dir recovers the store
// and serves identical hunts — then keeps ingesting.
func TestDurableDaemonWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ts, sys := durableServer(t, dir)

	lines := readLine(1_000_000, 100, "/bin/cat", "/etc/secret") +
		readLine(2_000_000, 101, "/usr/bin/scp", "/etc/secret")
	if code, body := post(t, ts.URL+"/v1/ingest", lines); code != 200 {
		t.Fatalf("ingest = %d %q", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush = %d %q", code, body)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE threatraptor_wal_fsync_seconds histogram",
		"# TYPE threatraptor_segments_total counter",
		"threatraptor_last_segment_flush_seconds",
		"threatraptor_recovery_truncated_frames_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "threatraptor_segments_total 0") {
		t.Fatalf("segments_total still 0 after a flush:\n%s", body)
	}
	if strings.Contains(body, "threatraptor_wal_fsync_seconds_count 0") {
		t.Fatalf("no WAL fsyncs observed under the always policy:\n%s", body)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, sys2 := durableServer(t, dir)
	rs := sys2.RecoveryStats()
	if !rs.Recovered {
		t.Fatalf("recovery stats = %+v, want a recovered generation", rs)
	}
	if rs.ReplayedRecords != 0 {
		t.Fatalf("clean shutdown replayed %d WAL records, want 0", rs.ReplayedRecords)
	}
	if code, _ := get(t, ts2.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz after recovery = %d, want 200", code)
	}
	code, body = post(t, ts2.URL+"/v1/hunt", `proc p read file f return p, f`)
	if code != 200 {
		t.Fatalf("hunt after restart = %d %q", code, body)
	}
	var hr huntResponse
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("hunt response not JSON: %v\n%s", err, body)
	}
	if len(hr.Rows) != 2 {
		t.Fatalf("hunt rows after restart = %v, want the 2 pre-crash rows", hr.Rows)
	}

	// The recovered store is warm, not read-only: more ingest lands on top.
	if code, body := post(t, ts2.URL+"/v1/ingest", readLine(3_000_000, 102, "/bin/nc", "/etc/passwd")); code != 200 {
		t.Fatalf("ingest after restart = %d %q", code, body)
	}
	if code, body := post(t, ts2.URL+"/v1/flush", ""); code != 200 {
		t.Fatalf("flush after restart = %d %q", code, body)
	}
	code, body = post(t, ts2.URL+"/v1/hunt", `proc p read file f return p, f`)
	if code != 200 {
		t.Fatalf("hunt = %d %q", code, body)
	}
	hr = huntResponse{}
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Rows) != 3 {
		t.Fatalf("hunt rows = %v, want 3 after post-restart ingest", hr.Rows)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}
