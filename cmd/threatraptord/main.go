// Command threatraptord serves the threat hunting engine over HTTP: it
// loads (or live-ingests) audit logs into one store and exposes TBQL
// hunts, EXPLAIN, standing-query subscriptions with firings streamed
// over the response, raw-record ingestion, health/readiness probes, and
// Prometheus-style metrics.
//
// Usage:
//
//	threatraptord -addr :7834 -log audit.log     # serve a loaded log
//	threatraptord -addr :7834 -demo data_leak    # serve a built-in case
//	threatraptord -addr :7834                    # start empty; POST /v1/ingest
//	threatraptord -addr :7834 -rules rules.json  # + tactical detection layer
//	threatraptord -addr :7834 -data-dir /var/lib/threatraptor  # durable store:
//	                           WAL + segments, crash recovery on restart
//
// Endpoints:
//
//	POST /v1/hunt      TBQL in the body; JSON results. 429 + Retry-After
//	                   when admission control sheds the hunt.
//	POST /v1/explain   TBQL in the body; the compilation report as text.
//	POST /v1/watch     TBQL in the body; firings stream back as
//	                   Server-Sent Events (Accept: text/event-stream) or
//	                   newline-delimited JSON until the client disconnects.
//	POST /v1/ingest    raw audit records in the body; ingest stats as JSON.
//	POST /v1/flush     force-seal everything buffered on the live stream
//	                   (the end-of-stream barrier); stats as JSON.
//	GET  /v1/incidents        ranked tactical incidents as JSON (-rules).
//	GET  /v1/incidents/watch  per-round incident updates streamed as SSE
//	                          or newline-delimited JSON (-rules).
//	GET  /healthz      liveness (process up).
//	GET  /readyz       readiness (store loaded and serving; 503 "recovering"
//	                   while a durable data dir is still replaying its WAL).
//	GET  /metrics      Prometheus text exposition.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"threatraptor"
	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/metrics"
	"threatraptor/internal/rules"
	"threatraptor/internal/segment"
	"threatraptor/internal/shard"
	"threatraptor/internal/stream"
	"threatraptor/internal/tactical"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7834", "HTTP listen address")
	logPath := flag.String("log", "", "audit log file to batch-load at startup")
	demo := flag.String("demo", "", "load a built-in benchmark case (e.g. data_leak) instead of -log")
	scale := flag.Float64("scale", 1.0, "benign noise scale for -demo")
	maxHunts := flag.Int("max-hunts", 0, "max concurrent hunts before load shedding (0 = unlimited)")
	huntQueueTimeout := flag.Duration("hunt-queue-timeout", 0, "how long a hunt queues for a slot when -max-hunts is reached")
	huntTimeout := flag.Duration("hunt-timeout", 30*time.Second, "per-request hunt deadline (0 = no limit)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	rulesPath := flag.String("rules", "", "detection rule file (JSON) enabling the tactical layer and /v1/incidents")
	shards := flag.Int("shards", 0, "partition the store into N shards with scatter-gather hunts (0/1 = single store)")
	partitionBy := flag.String("partition-by", "host", "shard key: host, time, or hash (with -shards)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + segments); recovered on startup, survives crashes")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, batch, or off")
	segmentEvery := flag.Int("segment-every", 64, "flush a segment generation every N sealed batches with -data-dir")
	recoverCorrupt := flag.Bool("recover-corrupt", false, "with -data-dir: truncate mid-file WAL corruption to the last consistent prefix instead of refusing startup")
	flag.Parse()

	opts := threatraptor.DefaultOptions()
	opts.MaxConcurrentHunts = *maxHunts
	opts.HuntQueueTimeout = *huntQueueTimeout
	opts.Shards = *shards
	opts.PartitionBy = *partitionBy
	opts.DataDir = *dataDir
	opts.FsyncPolicy = *fsync
	opts.SegmentEvery = *segmentEvery
	opts.RecoverCorrupt = *recoverCorrupt
	if *rulesPath != "" {
		set, err := rules.LoadFile(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Rules = set
		log.Printf("loaded %d detection rules from %s", set.Len(), *rulesPath)
	}
	// The tactical and durability observers feed server metrics; the
	// server is built after the system, so bind them late (they only fire
	// once ingestion starts, well after newServer below).
	var srv *server
	opts.OnTacticalRound = func(d time.Duration, rs tactical.RoundStats) {
		if srv != nil {
			srv.observeTacticalRound(d, rs)
		}
	}
	opts.OnWALFsync = func(d time.Duration) {
		if srv != nil {
			srv.observeWALFsync(d)
		}
	}
	opts.OnSegmentFlush = func(fs stream.FlushStats) {
		if srv != nil {
			srv.observeSegmentFlush(fs)
		}
	}
	sys := threatraptor.New(opts)

	// A data dir that already holds persisted state wins over -demo/-log:
	// recover it rather than clobbering or refusing (the preload flags are
	// for seeding a fresh directory).
	if *dataDir != "" && segment.Exists(*dataDir) && (*demo != "" || *logPath != "") {
		log.Printf("data dir %s holds persisted state; ignoring -demo/-log and recovering it", *dataDir)
		*demo, *logPath = "", ""
	}

	// Serve liveness (and an honest 503 readiness) while the store loads:
	// replaying a large WAL can take a while, and orchestrators need
	// /healthz green and /readyz red during it. The handler swaps to the
	// full mux once the store is up.
	var handler atomic.Value
	handler.Store(recoveringHandler())
	hs := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	switch {
	case *demo != "":
		c := cases.ByID(*demo)
		if c == nil {
			var ids []string
			for _, cc := range cases.All() {
				ids = append(ids, cc.ID)
			}
			log.Fatalf("unknown case %q; available: %v", *demo, ids)
		}
		gen, err := c.Generate(*scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadLog(gen.Log); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded case %s: %d entities, %d events",
			c.ID, gen.Log.Stats().Entities, gen.Log.Stats().Events)
	case *logPath != "":
		f, err := os.Open(*logPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadAuditLog(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		f.Close()
		log.Printf("loaded %s", *logPath)
	default:
		// Start with an empty live store; /v1/ingest fills it. With a
		// durable data dir this is also the recovery path: Live replays
		// the WAL over the recovered segments before returning.
		if _, err := sys.Live(); err != nil {
			log.Fatal(err)
		}
		log.Print("started empty; POST /v1/ingest to add events")
	}
	if *dataDir != "" {
		// Open the durable session now even when a log was preloaded, so
		// the WAL captures every batch from the first ingest onward.
		if _, err := sys.Live(); err != nil {
			log.Fatal(err)
		}
		rs := sys.RecoveryStats()
		if rs.Recovered || rs.ReplayedRecords > 0 || rs.TornTailTruncated || rs.DroppedFrames > 0 {
			log.Printf("recovered %s: generation %d (%d segments), replayed %d WAL records (%d events, %d entities), torn tail truncated: %v, dropped frames: %d",
				*dataDir, rs.ManifestSeq, rs.Segments, rs.ReplayedRecords, rs.ReplayedEvents, rs.ReplayedEntities, rs.TornTailTruncated, rs.DroppedFrames)
		}
	}

	srv = newServer(sys, *huntTimeout)
	if sh := sys.ShardStore(); sh != nil {
		srv.registerShardMetrics(sh)
		log.Printf("store sharded %d ways by %s", *shards, *partitionBy)
	}
	srv.observeRecovery(sys.RecoveryStats())
	handler.Store(srv.routes())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%s: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// Flush and close the store after in-flight requests drain: a
		// durable session writes its final segment generation here, so a
		// clean restart replays nothing.
		if err := sys.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
}

// recoveringHandler serves while the store is still loading or a durable
// data dir is replaying its WAL: liveness is green, readiness — and every
// other endpoint — answers 503 "recovering".
func recoveringHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	})
	return mux
}

// system is the facade surface the daemon drives — satisfied by
// *threatraptor.System; tests substitute wrappers to force edge cases
// (overload, failures) that are timing-dependent against the real thing.
type system interface {
	Hunt(ctx context.Context, src string) (*engine.Result, engine.Stats, error)
	Explain(src string) (string, error)
	Ingest(r io.Reader) (stream.IngestStats, error)
	FlushStream() (stream.IngestStats, error)
	Live() (*stream.Session, error)
	Store() *engine.Store
	HuntsInFlight() int
	Incidents() ([]tactical.Incident, error)
	WatchIncidents(buf int) (*stream.IncidentSub, error)
	TacticalStats() tactical.Stats
}

// server wires the System facade to HTTP handlers and the metrics
// registry.
type server struct {
	sys         system
	huntTimeout time.Duration

	reg           *metrics.Registry
	huntSeconds   *metrics.Histogram
	huntErrors    *metrics.Counter
	huntSheds     *metrics.Counter
	ingests       *metrics.Counter
	eventsSealed  *metrics.Counter
	entitiesAdded *metrics.Counter
	firings       *metrics.Counter
	quarantines   *metrics.Counter
	watchesActive *metrics.Gauge

	alertsTagged   *metrics.Counter
	incidentsOpen  *metrics.Gauge
	tacticalRounds *metrics.Histogram

	walFsyncSeconds   *metrics.Histogram
	segmentsTotal     *metrics.Counter
	segmentFlushFails *metrics.Counter
	recoveryTruncated *metrics.Counter
	lastFlushNano     atomic.Int64

	// maxIngestBytes caps one /v1/ingest body; tests lower it.
	maxIngestBytes int64
}

func newServer(sys system, huntTimeout time.Duration) *server {
	reg := metrics.NewRegistry()
	s := &server{
		sys:         sys,
		huntTimeout: huntTimeout,
		reg:         reg,
		huntSeconds: reg.NewHistogram("threatraptor_hunt_duration_seconds",
			"Hunt latency (admission wait + execution); _count is total hunts.", nil),
		huntErrors: reg.NewCounter("threatraptor_hunt_errors_total",
			"Hunts that failed (parse, execution, timeout); excludes load sheds."),
		huntSheds: reg.NewCounter("threatraptor_hunt_rejections_total",
			"Hunts shed by admission control (HTTP 429)."),
		ingests: reg.NewCounter("threatraptor_ingests_total",
			"Successful /v1/ingest calls."),
		eventsSealed: reg.NewCounter("threatraptor_events_sealed_total",
			"Reduced events sealed and appended to the store."),
		entitiesAdded: reg.NewCounter("threatraptor_entities_added_total",
			"Entities first seen on the ingest path."),
		firings: reg.NewCounter("threatraptor_firings_total",
			"Standing-query matches delivered to watch streams."),
		quarantines: reg.NewCounter("threatraptor_quarantines_total",
			"Standing queries quarantined after consecutive failures."),
		watchesActive: reg.NewGauge("threatraptor_watches_active",
			"Standing-query streams currently connected."),
		alertsTagged: reg.NewCounter("threatraptor_alerts_tagged_total",
			"Events tagged by detection rules on the tactical path."),
		incidentsOpen: reg.NewGauge("threatraptor_incidents_open",
			"Tactical incidents currently open (after the latest round)."),
		tacticalRounds: reg.NewHistogram("threatraptor_tactical_round_seconds",
			"Per-sealed-batch tactical round latency (tagging + attribution + scoring).", nil),
		walFsyncSeconds: reg.NewHistogram("threatraptor_wal_fsync_seconds",
			"WAL fsync latency per appended frame (durable mode only).",
			[]float64{.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1}),
		segmentsTotal: reg.NewCounter("threatraptor_segments_total",
			"Segment files written across all committed flush generations."),
		segmentFlushFails: reg.NewCounter("threatraptor_segment_flush_failures_total",
			"Segment flushes that failed (the previous generation stayed live)."),
		recoveryTruncated: reg.NewCounter("threatraptor_recovery_truncated_frames_total",
			"WAL frames discarded during recovery: a torn tail counts one, mid-file corruption drops (with -recover-corrupt) count each."),
		maxIngestBytes: defaultMaxIngestBytes,
	}
	reg.NewGaugeFunc("threatraptor_last_segment_flush_seconds",
		"Seconds since the last committed segment flush (0 before the first).",
		func() float64 {
			last := s.lastFlushNano.Load()
			if last == 0 {
				return 0
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	reg.NewGaugeFunc("threatraptor_hunts_in_flight",
		"Admitted hunts currently running (0 when unlimited).",
		func() float64 { return float64(sys.HuntsInFlight()) })
	reg.NewGaugeFunc("threatraptor_snapshot_age_seconds",
		"Seconds since the store last published a snapshot.",
		func() float64 {
			st := sys.Store()
			if st == nil {
				return 0
			}
			return time.Since(st.Snapshot().PublishedAt).Seconds()
		})
	reg.NewGaugeFunc("threatraptor_store_events",
		"Events in the published store snapshot.",
		func() float64 {
			st := sys.Store()
			if st == nil {
				return 0
			}
			return float64(st.Snapshot().NextEventID - 1)
		})
	return s
}

// registerShardMetrics adds the sharded-store families (only when the
// store is partitioned): per-partition size and snapshot age, the hunt
// scatter fan-out distribution, and the coordinator's global-routing and
// rollback counters.
func (s *server) registerShardMetrics(sh *shard.Store) {
	s.reg.NewLabeledGaugeFunc("threatraptor_shard_events",
		"Events held per store partition.",
		func() []metrics.LabeledValue {
			ms := sh.Metrics()
			out := make([]metrics.LabeledValue, len(ms))
			for i, m := range ms {
				out[i] = metrics.LabeledValue{
					Labels: fmt.Sprintf(`shard="%d"`, m.Shard),
					Value:  float64(m.Events),
				}
			}
			return out
		})
	s.reg.NewLabeledGaugeFunc("threatraptor_shard_snapshot_age_seconds",
		"Seconds since each partition last published a snapshot.",
		func() []metrics.LabeledValue {
			ms := sh.Metrics()
			out := make([]metrics.LabeledValue, len(ms))
			for i, m := range ms {
				out[i] = metrics.LabeledValue{
					Labels: fmt.Sprintf(`shard="%d"`, m.Shard),
					Value:  m.SnapshotAge.Seconds(),
				}
			}
			return out
		})
	s.reg.NewLabeledGaugeFunc("threatraptor_hunt_fanout_total",
		"Scattered pattern data queries by how many partitions they touched (after routing prunes).",
		func() []metrics.LabeledValue {
			fan := sh.FanoutHistogram()
			out := make([]metrics.LabeledValue, 0, len(fan))
			for k, n := range fan {
				out = append(out, metrics.LabeledValue{
					Labels: fmt.Sprintf(`shards="%d"`, k),
					Value:  float64(n),
				})
			}
			return out
		})
	s.reg.NewGaugeFunc("threatraptor_shard_global_routed_total",
		"Pattern queries served by the global store instead of the partitions (var-len paths).",
		func() float64 { return float64(sh.GlobalRouted()) })
	s.reg.NewGaugeFunc("threatraptor_shard_rollbacks_total",
		"Fleet-wide append unwinds after a partition append failure.",
		func() float64 { return float64(sh.Rollbacks()) })
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/hunt", s.handleHunt)
	mux.HandleFunc("/v1/explain", s.handleExplain)
	mux.HandleFunc("/v1/watch", s.handleWatch)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/flush", s.handleFlush)
	mux.HandleFunc("/v1/incidents", s.handleIncidents)
	mux.HandleFunc("/v1/incidents/watch", s.handleIncidentsWatch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/metrics", s.reg.Handler())
	return mux
}

// maxQueryBytes bounds a posted TBQL query; defaultMaxIngestBytes bounds
// one /v1/ingest body (large audit streams split across multiple posts —
// the parser carries a partial trailing line between calls, so splitting
// anywhere is safe).
const (
	maxQueryBytes         = 1 << 20
	defaultMaxIngestBytes = 32 << 20
)

func readQuery(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a TBQL query as the request body", http.StatusMethodNotAllowed)
		return "", false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return "", false
	}
	if len(body) > maxQueryBytes {
		http.Error(w, "query too large", http.StatusRequestEntityTooLarge)
		return "", false
	}
	q := strings.TrimSpace(string(body))
	if q == "" {
		http.Error(w, "empty query", http.StatusBadRequest)
		return "", false
	}
	return q, true
}

// huntResponse is the JSON shape of a completed hunt.
type huntResponse struct {
	Columns       []string   `json:"columns"`
	Rows          [][]string `json:"rows"`
	MatchedEvents int        `json:"matched_events"`
	DataQueries   int        `json:"data_queries"`
	EmptyPattern  string     `json:"empty_pattern,omitempty"`
	DurationMS    float64    `json:"duration_ms"`
}

func (s *server) handleHunt(w http.ResponseWriter, r *http.Request) {
	q, ok := readQuery(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if s.huntTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.huntTimeout)
		defer cancel()
	}
	start := time.Now()
	res, stats, err := s.sys.Hunt(ctx, q)
	elapsed := time.Since(start)
	s.huntSeconds.Observe(elapsed.Seconds())
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrOverloaded):
			s.huntSheds.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, context.DeadlineExceeded):
			s.huntErrors.Inc()
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			s.huntErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	resp := huntResponse{
		Columns:       res.Set.Columns,
		Rows:          res.Set.Strings(),
		MatchedEvents: len(res.MatchedEvents),
		DataQueries:   stats.DataQueries,
		EmptyPattern:  stats.EmptyPatternID,
		DurationMS:    float64(elapsed.Microseconds()) / 1000,
	}
	if resp.Rows == nil {
		resp.Rows = [][]string{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, ok := readQuery(w, r)
	if !ok {
		return
	}
	out, err := s.sys.Explain(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

// watchEvent is one streamed standing-query delivery.
type watchEvent struct {
	Batch    int64    `json:"batch"`
	Columns  []string `json:"columns,omitempty"`
	Row      []string `json:"row,omitempty"`
	Terminal bool     `json:"terminal,omitempty"`
	Error    string   `json:"error,omitempty"`
}

func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q, ok := readQuery(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	live, err := s.sys.Live()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sub, err := live.Watch(q)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, stream.ErrSessionClosed) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.watchesActive.Inc()
	defer s.watchesActive.Dec()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	send := func(ev watchEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", eventName(ev), data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for {
		select {
		case <-r.Context().Done():
			// Client gone: deregister so the session stops evaluating the
			// query and its views are released.
			live.Unwatch(sub)
			// Unwatch closed sub.C; drain so fireLocked's best-effort sends
			// cannot have raced a buffered match we would strand.
			for range sub.C {
			}
			return
		case m, chanOpen := <-sub.C:
			if !chanOpen {
				// Quarantined (terminal already delivered) or session
				// closed: end the stream.
				return
			}
			ev := watchEvent{Batch: m.Batch, Terminal: m.Terminal}
			if m.Terminal {
				s.quarantines.Inc()
				if err := sub.Err(); err != nil {
					ev.Error = err.Error()
				}
				send(ev)
				return
			}
			ev.Columns = m.Columns
			ev.Row = make([]string, len(m.Row))
			for i := range m.Row {
				ev.Row[i] = m.Row[i].String()
			}
			if !send(ev) {
				live.Unwatch(sub)
				for range sub.C {
				}
				return
			}
			s.firings.Inc()
		}
	}
}

func eventName(ev watchEvent) string {
	if ev.Terminal {
		return "terminal"
	}
	return "match"
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST raw audit records as the request body", http.StatusMethodNotAllowed)
		return
	}
	// Cap the body: an unbounded read here would let one oversized (or
	// malicious) post balloon parser memory. Lines read before the cap
	// hit stay buffered in the parser and seal on the next call; the 413
	// tells the client to split the stream and resend from where it was
	// cut (a partial trailing line is safe — the parser buffers it).
	r.Body = http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	st, err := s.sys.Ingest(r.Body)
	s.eventsSealed.Add(uint64(st.EventsSealed))
	s.entitiesAdded.Add(uint64(st.EntitiesAdded))
	if err != nil {
		var pe *stream.ParseError
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &pe):
			// The valid lines around the corrupt record were ingested;
			// report both the stats and the rejection.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": pe.Error(), "stats": st,
			})
		case errors.As(err, &mbe):
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("ingest body exceeds %d bytes; split the stream into smaller posts", s.maxIngestBytes),
				"stats": st,
			})
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.ingests.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"stats": st})
}

func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to flush", http.StatusMethodNotAllowed)
		return
	}
	st, err := s.sys.FlushStream()
	s.eventsSealed.Add(uint64(st.EventsSealed))
	s.entitiesAdded.Add(uint64(st.EntitiesAdded))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stats": st})
}

// observeTacticalRound records one tactical round in the metrics; it is
// wired into Options.OnTacticalRound and runs on the ingestion path.
func (s *server) observeTacticalRound(d time.Duration, rs tactical.RoundStats) {
	s.tacticalRounds.Observe(d.Seconds())
	s.alertsTagged.Add(uint64(rs.Alerts))
	s.incidentsOpen.Set(int64(rs.Incidents))
}

// observeWALFsync records one WAL fsync in the latency histogram; wired
// into Options.OnWALFsync, it runs on the ingestion path in durable mode.
func (s *server) observeWALFsync(d time.Duration) {
	s.walFsyncSeconds.Observe(d.Seconds())
}

// observeSegmentFlush records one segment-flush attempt; wired into
// Options.OnSegmentFlush.
func (s *server) observeSegmentFlush(fs stream.FlushStats) {
	if fs.Err != nil {
		s.segmentFlushFails.Inc()
		return
	}
	s.segmentsTotal.Add(uint64(fs.Segments))
	s.lastFlushNano.Store(time.Now().UnixNano())
}

// observeRecovery folds what the durable open recovered into the metrics
// (no-op for the zero stats of a non-durable start).
func (s *server) observeRecovery(rs stream.RecoveryStats) {
	if rs.TornTailTruncated {
		s.recoveryTruncated.Inc()
	}
	s.recoveryTruncated.Add(uint64(rs.DroppedFrames))
}

// incidentsResponse is the JSON shape of /v1/incidents.
type incidentsResponse struct {
	Incidents []tactical.Incident `json:"incidents"`
	Stats     tactical.Stats      `json:"stats"`
}

func (s *server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the ranked incident list", http.StatusMethodNotAllowed)
		return
	}
	incs, err := s.sys.Incidents()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, stream.ErrTacticalDisabled) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	if incs == nil {
		incs = []tactical.Incident{}
	}
	writeJSON(w, http.StatusOK, incidentsResponse{Incidents: incs, Stats: s.sys.TacticalStats()})
}

// handleIncidentsWatch streams one JSON IncidentUpdate per alert-producing
// tactical round, as SSE (Accept: text/event-stream) or NDJSON, until the
// client disconnects.
func (s *server) handleIncidentsWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET to stream incident updates", http.StatusMethodNotAllowed)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	live, err := s.sys.Live()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sub, err := s.sys.WatchIncidents(0)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, stream.ErrTacticalDisabled):
			code = http.StatusNotFound
		case errors.Is(err, stream.ErrSessionClosed):
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.watchesActive.Inc()
	defer s.watchesActive.Dec()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	send := func(u stream.IncidentUpdate) bool {
		data, err := json.Marshal(u)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: incidents\ndata: %s\n\n", data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for {
		select {
		case <-r.Context().Done():
			live.UnwatchIncidents(sub)
			for range sub.C {
			}
			return
		case u, chanOpen := <-sub.C:
			if !chanOpen {
				// Session closed: end the stream.
				return
			}
			if !send(u) {
				live.UnwatchIncidents(sub)
				for range sub.C {
				}
				return
			}
		}
	}
}

func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.sys.Store() == nil {
		http.Error(w, "no store loaded", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
