// Tacticalhunt demonstrates the tactical detection layer: a Sigma-like
// rule set tags alert events as batches seal on the live stream, alerts
// are attributed to incidents through provenance reachability, and each
// incident is scored by the longest kill-chain-ordered alert sequence it
// contains — so the one real attack ranks above the false-positive noise
// without any per-alert triage.
package main

import (
	"bytes"
	"fmt"
	"log"

	"threatraptor"
	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/rules"
)

func main() {
	// The same rule set as examples/rules/demo.json, compiled in-process:
	// each rule is one operation set + entity predicates + a MITRE-style
	// tactic label that orders it along the kill chain.
	set, err := rules.Compile([]rules.Rule{
		{Name: "credential-file-read", Tactic: "credential-access", Technique: "T1003.008",
			Severity: 8, Ops: []string{"read"},
			Where: map[string]string{"object.kind": "file", "object.name": "/etc/*"}},
		{Name: "staging-write-tmp", Tactic: "collection", Technique: "T1074.001",
			Severity: 5, Ops: []string{"write"},
			Where: map[string]string{"object.kind": "file", "object.name": "/tmp/*"}},
		{Name: "outbound-connect", Tactic: "command-and-control", Technique: "T1071",
			Severity: 5, Ops: []string{"connect"},
			Where: map[string]string{"object.kind": "ip"}},
		{Name: "outbound-send", Tactic: "exfiltration", Technique: "T1048",
			Severity: 7, Ops: []string{"send"},
			Where: map[string]string{"object.kind": "ip"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := threatraptor.DefaultOptions()
	opts.Rules = set
	sys := threatraptor.New(opts)

	isub, err := sys.WatchIncidents(16)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the data_leak benchmark case as a live record stream: benign
	// traffic, then the tar→curl exfiltration chain, then more noise.
	c := cases.ByID("data_leak")
	sim := audit.NewSimulator(c.Seed, 1_700_000_000_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: 150})
	sim.Advance(5_000_000)
	c.Attack(sim)
	sim.Advance(5_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: 150})

	var buf bytes.Buffer
	if err := audit.WriteRecords(&buf, sim.Records()); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Ingest(&buf); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.FlushStream(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== per-round incident updates ===")
	for {
		select {
		case u := <-isub.C:
			fmt.Printf("batch %d: %d alerts tagged, %d new incidents, %d open\n",
				u.Batch, u.Alerts, u.NewIncidents, len(u.Incidents))
		default:
			goto drained
		}
	}
drained:

	incs, err := sys.Incidents()
	if err != nil {
		log.Fatal(err)
	}
	st := sys.TacticalStats()
	fmt.Printf("\n=== ranked incidents (%d alerts tagged over %d rounds) ===\n",
		st.AlertsTagged, st.Rounds)
	for _, inc := range incs {
		fmt.Printf("#%d root=%s chain=%d score=%d alerts=%d entities=%d\n",
			inc.ID, inc.RootEntity, inc.ChainLen, inc.ChainScore, inc.AlertCount, len(inc.Entities))
		for _, al := range inc.Alerts {
			fmt.Printf("   [%s/%s] %s %s -> %s (event %d)\n",
				al.Tactic, al.Rule, al.Op, al.Subject, al.Object, al.EventID)
		}
	}
	if len(incs) > 0 {
		top := incs[0]
		fmt.Printf("\ntop incident: chain length %d — the kill-chain DP ranks the real\n", top.ChainLen)
		fmt.Println("attack above single-alert noise because its alerts form an ordered")
		fmt.Println("credential-access → collection → command-and-control → exfiltration sequence.")
	}
}
