// Proactivehunt demonstrates TBQL as a proactive threat hunting tool when
// no OSCTI report is available (Section II): the analyst writes queries by
// hand, iterates, and falls back to the fuzzy search mode when exact
// search misses.
package main

import (
	"fmt"
	"log"

	"threatraptor"
	"threatraptor/internal/cases"
)

func main() {
	c := cases.ByID("password_crack")
	gen, err := c.Generate(1.0)
	if err != nil {
		log.Fatal(err)
	}
	sys := threatraptor.New(threatraptor.DefaultOptions())
	if err := sys.LoadLog(gen.Log); err != nil {
		log.Fatal(err)
	}

	hunt := func(title, query string) {
		fmt.Println("### " + title)
		fmt.Println(query)
		res, stats, err := sys.Hunt(nil, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--> %d rows, %d matched events, %d data queries\n",
			res.Set.Len(), len(res.MatchedEvents), stats.DataQueries)
		for _, row := range res.Set.Strings() {
			fmt.Printf("    %v\n", row)
		}
		fmt.Println()
	}

	// Hypothesis 1: has anything read the shadow file?
	hunt("Who read /etc/shadow?", `proc p read file f["%/etc/shadow%"]
return distinct p`)

	// Hypothesis 2: did whatever read the shadow file also write results
	// somewhere under /tmp? Chain two patterns on the same process.
	hunt("Shadow readers that staged output in /tmp", `proc p read file f1["%/etc/shadow%"] as e1
proc p write file f2["%/tmp/%"] as e2
with e1 before e2
return distinct p, f2`)

	// Hypothesis 3: information flow — is the unpacking tool connected to
	// any network endpoint within a few hops? The variable-length event
	// path pattern bridges the intermediate download process that a
	// report (or analyst) would omit.
	hunt("Flow from the unpacker toward any C2 (variable-length path)", `proc p["%unzip%"] ~>(1~4) ip i
return distinct p, i`)

	// Fuzzy mode: the analyst misremembers the cracker's name.
	fmt.Println("### Fuzzy search for a misremembered tool name (libfool.so)")
	als, err := sys.FuzzyHunt(nil, `proc p["%/tmp/libfool.so%"] read file f["%/etc/shadow%"] as e1
return distinct p, f`, true)
	if err != nil {
		log.Fatal(err)
	}
	for _, al := range als {
		fmt.Printf("--> alignment score %.2f: %v\n", al.Score, al.Entities)
	}
}
