// Quickstart reproduces the paper's Figure 2 end to end: an OSCTI report
// describing a data leakage attack is turned into a threat behavior graph,
// a TBQL query is synthesized from the graph, and the query is executed
// against system audit logs to recover the malicious events.
package main

import (
	"fmt"
	"log"

	"threatraptor"
	"threatraptor/internal/cases"
)

func main() {
	// The OSCTI report and audit log of the paper's running example
	// (case data_leak): the attack events are planted inside benign
	// background noise from 15 simulated users.
	c := cases.ByID("data_leak")
	gen, err := c.Generate(1.0)
	if err != nil {
		log.Fatal(err)
	}

	sys := threatraptor.New(threatraptor.DefaultOptions())
	if err := sys.LoadLog(gen.Log); err != nil {
		log.Fatal(err)
	}
	stats := gen.Log.Stats()
	fmt.Printf("audit log loaded: %d entities, %d events (%d are the attack)\n\n",
		stats.Entities, stats.Events, len(gen.AttackEventIDs))

	fmt.Println("=== OSCTI report ===")
	fmt.Println(c.Report)
	fmt.Println()

	// Step 1: threat behavior extraction.
	res := sys.ExtractBehaviorGraph(c.Report)
	fmt.Println("=== threat behavior graph ===")
	fmt.Print(res.Graph)
	fmt.Println()

	// Step 2: TBQL query synthesis.
	query, err := sys.SynthesizeQuery(res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== synthesized TBQL query ===")
	fmt.Println(query)
	fmt.Println()

	// Step 3: query execution (exact search mode).
	hits, execStats, err := sys.Hunt(nil, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== matched system entities ===")
	for _, row := range hits.Set.Strings() {
		for i, col := range hits.Set.Columns {
			fmt.Printf("  %-12s %s\n", col, row[i])
		}
	}
	fmt.Printf("\nmatched %d malicious events with %d data queries\n",
		len(hits.MatchedEvents), execStats.DataQueries)
}
