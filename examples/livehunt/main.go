// Livehunt demonstrates the streaming ingestion + standing-query
// subsystem: a standing TBQL query is registered over a live audit log
// file, the file grows while we watch — benign traffic first, then a data
// exfiltration — and the hunt fires the moment the malicious behavior
// seals, with no store rebuild and no batch re-run.
//
// With -data-dir the session is durable: the run persists its store (WAL
// + segments) and a second run over the same directory warm-starts from
// the recovered state instead of an empty store.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"threatraptor"
	"threatraptor/internal/audit"
)

// rec renders one wire-format audit record line.
func rec(r audit.Record) string { return r.Format() + "\n" }

func main() {
	dataDir := flag.String("data-dir", "", "durable data directory: persist this run's store and warm-start the next run from it")
	flag.Parse()

	dir, err := os.MkdirTemp("", "livehunt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "audit.log")

	// The monitoring agent's log starts with benign traffic.
	f, err := os.Create(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	benign := func(ts int64, pid int, exe, path string) string {
		return rec(audit.Record{Time: ts, Call: audit.SysRead, PID: pid, Exe: exe,
			User: "alice", FD: audit.FDFile, Path: path, Bytes: 512})
	}
	if _, err := f.WriteString(
		benign(1_000_000, 101, "/usr/bin/vim", "/home/alice/notes.txt") +
			benign(2_000_000, 102, "/usr/bin/python3", "/home/alice/report.py")); err != nil {
		log.Fatal(err)
	}

	// An analyst registers the standing hunt before anything bad happens.
	opts := threatraptor.DefaultOptions()
	opts.DataDir = *dataDir
	sys := threatraptor.New(opts)
	const hunt = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/stolen.tar%"] as evt2
proc p2["%/usr/bin/curl%"] read file f2 as evt3
proc p2 connect ip i1["203.0.113.66"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, f1, f2, p2, i1`
	sub, err := sys.Watch(hunt)
	if err != nil {
		log.Fatal(err)
	}
	if rs := sys.RecoveryStats(); rs.Recovered {
		fmt.Printf("warm start from %s: generation %d (%d segments), %d WAL records replayed\n\n",
			*dataDir, rs.ManifestSeq, rs.Segments, rs.ReplayedRecords)
	}
	fmt.Println("=== standing query registered ===")
	fmt.Println(hunt)
	fmt.Println()

	// Tail the log: same open file, each Ingest reads what was appended.
	tail, err := os.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer tail.Close()
	st, err := sys.Ingest(tail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("caught up: %d events parsed, %d sealed, %d matches — benign traffic only\n\n",
		st.EventsParsed, st.EventsSealed, st.Firings)

	// The attack happens live: the log grows while we watch.
	attacker := audit.Record{PID: 666, Exe: "/bin/tar", User: "mallory", Group: "users"}
	exfil := audit.Record{PID: 667, Exe: "/usr/bin/curl", User: "mallory", Group: "users"}
	steps := []string{
		rec(func(r audit.Record) audit.Record {
			r.Time, r.Call, r.FD, r.Path, r.Bytes = 10_000_000, audit.SysRead, audit.FDFile, "/etc/passwd", 4096
			return r
		}(attacker)),
		rec(func(r audit.Record) audit.Record {
			r.Time, r.Call, r.FD, r.Path, r.Bytes = 11_000_000, audit.SysWrite, audit.FDFile, "/tmp/stolen.tar", 4096
			return r
		}(attacker)),
		rec(func(r audit.Record) audit.Record {
			r.Time, r.Call, r.FD, r.Path, r.Bytes = 12_500_000, audit.SysRead, audit.FDFile, "/tmp/stolen.tar", 4096
			return r
		}(exfil)),
		rec(func(r audit.Record) audit.Record {
			r.Time, r.Call, r.FD = 13_000_000, audit.SysConnect, audit.FDIPv4
			r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto = "10.0.0.8", 49152, "203.0.113.66", 443, "tcp"
			return r
		}(exfil)),
		// Later benign traffic pushes the watermark past the attack.
		benign(30_000_000, 101, "/usr/bin/vim", "/home/alice/notes.txt"),
	}
	for _, line := range steps {
		if _, err := f.WriteString(line); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("=== attacker acts; log grows ===")
	st, err = sys.Ingest(tail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tail pass: %d events parsed, %d sealed into batch %d, watermark %dµs\n\n",
		st.EventsParsed, st.EventsSealed, st.Batch, st.Watermark)

	fmt.Println("=== standing query fired ===")
	for {
		select {
		case m := <-sub.C:
			fmt.Printf("match (batch %d):\n", m.Batch)
			for i, col := range m.Columns {
				fmt.Printf("  %-12s %s\n", col, m.Row[i].String())
			}
		default:
			goto drained
		}
	}
drained:

	// The same store answers ad-hoc hunts over everything ingested so far.
	if _, err := sys.FlushStream(); err != nil {
		log.Fatal(err)
	}
	res, stats, err := sys.Hunt(nil, `proc p read file f["%/etc/passwd%"] return p, f`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== ad-hoc hunt over the live store ===")
	for _, row := range res.Set.Strings() {
		fmt.Printf("  %v\n", row)
	}
	fmt.Printf("(%d data queries, %d rows scanned — no store rebuild at any point)\n",
		stats.DataQueries, stats.Rel.RowsScanned)

	// A durable session writes its final segment generation here; rerun
	// with the same -data-dir to watch the warm start.
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}
