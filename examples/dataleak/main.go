// Dataleak compares the four execution plans of the paper's RQ4 on the
// data_leak case: the scheduled TBQL plan against the monolithic SQL
// query on the relational backend, and the length-1 path TBQL plan
// against the monolithic Cypher query on the graph backend.
package main

import (
	"fmt"
	"log"
	"time"

	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

func main() {
	c := cases.ByID("data_leak")
	gen, err := c.Generate(2.0)
	if err != nil {
		log.Fatal(err)
	}
	store, err := engine.NewStore(gen.Log)
	if err != nil {
		log.Fatal(err)
	}
	en := &engine.Engine{Store: store}
	fmt.Printf("store: %d entities, %d events\n\n",
		store.Rel.Table("entities").Len(), store.Rel.Table("events").Len())

	graph := extract.New(extract.DefaultOptions()).Extract(c.Report).Graph

	// Query form (a): TBQL event patterns, scheduled plan.
	qa, _, err := synth.Synthesize(graph, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	aa, err := tbql.Analyze(qa)
	if err != nil {
		log.Fatal(err)
	}
	timeIt("TBQL (scheduled, PostgreSQL-style backend)", func() int {
		res, _, err := en.Execute(nil, aa)
		if err != nil {
			log.Fatal(err)
		}
		return res.Set.Len()
	})

	// Query form (b): one giant SQL statement.
	timeIt("SQL (monolithic)", func() int {
		rs, _, err := en.ExecuteMonolithicSQL(nil, aa)
		if err != nil {
			log.Fatal(err)
		}
		return rs.Len()
	})

	// Query form (c): TBQL length-1 path patterns, scheduled on the graph
	// backend.
	qc, _, err := synth.Synthesize(graph, synth.Options{Mode: synth.ModeLength1Paths})
	if err != nil {
		log.Fatal(err)
	}
	ac, err := tbql.Analyze(qc)
	if err != nil {
		log.Fatal(err)
	}
	timeIt("TBQL length-1 paths (scheduled, Neo4j-style backend)", func() int {
		res, _, err := en.Execute(nil, ac)
		if err != nil {
			log.Fatal(err)
		}
		return res.Set.Len()
	})

	// Query form (d): one giant Cypher statement.
	timeIt("Cypher (monolithic)", func() int {
		rs, _, err := en.ExecuteMonolithicCypher(nil, aa)
		if err != nil {
			log.Fatal(err)
		}
		return rs.Len()
	})
}

func timeIt(name string, run func() int) {
	start := time.Now()
	rows := run()
	fmt.Printf("%-52s %8v  (%d rows)\n", name, time.Since(start).Round(time.Microsecond), rows)
}
