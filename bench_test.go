package threatraptor

// One benchmark per table/figure of the paper's evaluation section. Run:
//
//	go test -bench=. -benchmem
//
// The experiment harness (cmd/experiments) prints the tables themselves;
// these benchmarks measure the steady-state cost of each table's hot path.

import (
	"testing"

	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/fuzzy"
	"threatraptor/internal/openie"
	"threatraptor/internal/provenance"
	"threatraptor/internal/reduction"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

func dataLeakCase(b *testing.B, scale float64) (*cases.Case, *cases.GeneratedLog) {
	b.Helper()
	c := cases.ByID("data_leak")
	gen, err := c.Generate(scale)
	if err != nil {
		b.Fatal(err)
	}
	return c, gen
}

func dataLeakAnalyzed(b *testing.B) (*engine.Engine, *tbql.Analyzed, *tbql.Analyzed) {
	b.Helper()
	c, gen := dataLeakCase(b, 1.0)
	store, err := engine.NewStore(gen.Log)
	if err != nil {
		b.Fatal(err)
	}
	graph := extract.New(extract.DefaultOptions()).Extract(c.Report).Graph
	qa, _, err := synth.Synthesize(graph, synth.Options{})
	if err != nil {
		b.Fatal(err)
	}
	aa, err := tbql.Analyze(qa)
	if err != nil {
		b.Fatal(err)
	}
	qc, _, err := synth.Synthesize(graph, synth.Options{Mode: synth.ModeLength1Paths})
	if err != nil {
		b.Fatal(err)
	}
	ac, err := tbql.Analyze(qc)
	if err != nil {
		b.Fatal(err)
	}
	return &engine.Engine{Store: store}, aa, ac
}

// BenchmarkTable5Extraction measures ThreatRaptor's threat behavior
// extraction over all 18 case reports (Table V's subject).
func BenchmarkTable5Extraction(b *testing.B) {
	ex := extract.New(extract.DefaultOptions())
	all := cases.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range all {
			ex.Extract(c.Report)
		}
	}
}

// BenchmarkTable5OpenIEBaseline measures the Stanford-Open-IE-style
// baseline on the same reports.
func BenchmarkTable5OpenIEBaseline(b *testing.B) {
	ie := openie.NewClauseIE(true)
	all := cases.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range all {
			ie.Extract(c.Report)
		}
	}
}

// BenchmarkTable6Hunt measures the end-to-end hunt (extract → synthesize →
// execute) on the data_leak case (Table VI's subject).
func BenchmarkTable6Hunt(b *testing.B) {
	c, gen := dataLeakCase(b, 1.0)
	sys := New(DefaultOptions())
	if err := sys.LoadLog(gen.Log); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.HuntOSCTI(nil, c.Report); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7Stages measures the three pipeline stages on the Figure 2
// report (Table VII's subject).
func BenchmarkTable7Stages(b *testing.B) {
	c := cases.ByID("data_leak")
	ex := extract.New(extract.DefaultOptions())
	b.Run("extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.Extract(c.Report)
		}
	})
	graph := ex.Extract(c.Report).Graph
	b.Run("synthesize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := synth.Synthesize(graph, synth.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable8QueryExecution measures the four query forms of RQ4 on
// the data_leak store.
func BenchmarkTable8QueryExecution(b *testing.B) {
	en, aa, ac := dataLeakAnalyzed(b)
	b.Run("tbql-scheduled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.Execute(nil, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sql-monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.ExecuteMonolithicSQL(nil, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tbql-len1-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.Execute(nil, ac); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cypher-monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.ExecuteMonolithicCypher(nil, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable8SchedulerAblation isolates the scheduler's contribution:
// the same per-pattern plan with pruning-score ordering and constraint
// feeding disabled.
func BenchmarkTable8SchedulerAblation(b *testing.B) {
	en, aa, _ := dataLeakAnalyzed(b)
	naive := &engine.Engine{Store: en.Store, DisableScheduling: true}
	b.Run("scheduled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.Execute(nil, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unscheduled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := naive.Execute(nil, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable9Fuzzy measures the fuzzy search mode and the Poirot
// baseline on the data_leak provenance graph.
func BenchmarkTable9Fuzzy(b *testing.B) {
	c, gen := dataLeakCase(b, 1.0)
	graph := extract.New(extract.DefaultOptions()).Extract(c.Report).Graph
	q, _, err := synth.Synthesize(graph, synth.Options{})
	if err != nil {
		b.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		b.Fatal(err)
	}
	qg, err := fuzzy.FromTBQL(a)
	if err != nil {
		b.Fatal(err)
	}
	prov := provenance.Build(gen.Log)
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fuzzy.NewSearcher(prov, qg, fuzzy.DefaultOptions(fuzzy.ModeExhaustive)).Search()
		}
	})
	b.Run("poirot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fuzzy.NewSearcher(prov, qg, fuzzy.DefaultOptions(fuzzy.ModeFirstAcceptable)).Search()
		}
	})
}

// BenchmarkTable10Conciseness measures query compilation (the formatter
// and the SQL/Cypher compilers that Table X counts).
func BenchmarkTable10Conciseness(b *testing.B) {
	en, aa, _ := dataLeakAnalyzed(b)
	b.Run("tbql-format", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbql.Format(aa.Query)
		}
	})
	b.Run("sql-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.CompileMonolithicSQL(en.Store, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cypher-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.CompileMonolithicCypher(en.Store, aa); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDataReduction measures the Section III-B reduction pass
// (ablation knob: the merge threshold).
func BenchmarkDataReduction(b *testing.B) {
	c := cases.ByID("data_leak")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen, err := c.Generate(1.0) // Generate includes reduction; rebuild raw
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		reduction.Reduce(gen.Log, reduction.DefaultConfig())
	}
}

// BenchmarkStoreLoad measures loading a reduced log into both backends.
func BenchmarkStoreLoad(b *testing.B) {
	_, gen := dataLeakCase(b, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.NewStore(gen.Log); err != nil {
			b.Fatal(err)
		}
	}
}
