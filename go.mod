module threatraptor

go 1.24
