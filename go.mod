module threatraptor

go 1.23
