package threatraptor

import (
	"strings"
	"testing"

	"threatraptor/internal/cases"
)

func loadCase(t *testing.T, id string) (*System, *cases.GeneratedLog) {
	t.Helper()
	c := cases.ByID(id)
	if c == nil {
		t.Fatalf("case %s missing", id)
	}
	gen, err := c.Generate(0.3)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(DefaultOptions())
	if err := sys.LoadLog(gen.Log); err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestEndToEndDataLeak(t *testing.T) {
	sys, gen := loadCase(t, "data_leak")
	c := cases.ByID("data_leak")

	query, hits, err := sys.HuntOSCTI(nil, c.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(query, `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"]`) {
		t.Errorf("unexpected synthesized query:\n%s", query)
	}
	if hits.Set.Len() != 1 {
		t.Fatalf("rows = %d: %v", hits.Set.Len(), hits.Set.Strings())
	}
	// Every matched event must be a ground-truth attack event.
	attack := map[int64]bool{}
	for _, id := range gen.AttackEventIDs {
		attack[id] = true
	}
	for ev := range hits.MatchedEvents {
		if !attack[ev] {
			t.Errorf("false positive event %d", ev)
		}
	}
	if len(hits.MatchedEvents) == 0 {
		t.Fatal("no events matched")
	}
}

func TestHuntWithoutLogFails(t *testing.T) {
	sys := New(DefaultOptions())
	if _, _, err := sys.Hunt(nil, "proc p read file f return f"); err == nil {
		t.Fatal("hunting before loading a log must fail")
	}
	if _, err := sys.FuzzyHunt(nil, "proc p read file f return f", true); err == nil {
		t.Fatal("fuzzy hunting before loading a log must fail")
	}
}

func TestLoadAuditLogFromStream(t *testing.T) {
	raw := strings.Join([]string{
		"ts=1700000000000000 call=read pid=9 exe=/bin/evil.sh fd=file path=/etc/shadow bytes=100",
		"ts=1700000001000000 call=sendto pid=9 exe=/bin/evil.sh fd=ipv4 src=10.0.0.1:9999 dst=6.6.6.6:443 proto=tcp bytes=100",
	}, "\n")
	sys := New(DefaultOptions())
	if err := sys.LoadAuditLog(strings.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.Hunt(nil, `proc p["%evil%"] read file f return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 1 || res.Set.Rows[0][0].S != "/etc/shadow" {
		t.Fatalf("got %v", res.Set.Strings())
	}
}

func TestFuzzyHuntToleratesTypos(t *testing.T) {
	sys, _ := loadCase(t, "data_leak")
	// "pasword" is a typo: exact search misses, fuzzy search aligns.
	query := `proc p1["%/bin/tar%"] read file f1["%/etc/pasword%"] as e1
return distinct p1, f1`
	exact, _, err := sys.Hunt(nil, query)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Set.Len() != 0 {
		t.Fatalf("exact search should miss the typo: %v", exact.Set.Strings())
	}
	als, err := sys.FuzzyHunt(nil, query, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(als) == 0 {
		t.Fatal("fuzzy search should align despite the typo")
	}
	found := false
	for _, al := range als {
		if al.Entities["f1"] == "/etc/passwd" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected /etc/passwd alignment: %+v", als)
	}
}

func TestSynthesisModes(t *testing.T) {
	c := cases.ByID("data_leak")
	gen, err := c.Generate(0.2)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SynthesisMode = 1 // length-1 paths
	sys := New(opts)
	if err := sys.LoadLog(gen.Log); err != nil {
		t.Fatal(err)
	}
	query, hits, err := sys.HuntOSCTI(nil, c.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(query, "->[") {
		t.Errorf("length-1 path syntax missing:\n%s", query)
	}
	if hits.Set.Len() != 1 {
		t.Fatalf("rows = %d", hits.Set.Len())
	}
}

// TestLiveIngestAndWatch drives the façade's streaming surface: Ingest
// tails a byte stream, Watch fires on a newly appended behavior, and
// FlushStream makes the store batch-equivalent for a subsequent Hunt.
func TestLiveIngestAndWatch(t *testing.T) {
	sys := New(DefaultOptions())
	sub, err := sys.Watch(`proc p["%/bin/tar%"] read file f["%/etc/shadow%"] return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	wire := "ts=1000000 call=read pid=7 exe=/bin/tar user=root fd=file path=/etc/shadow bytes=128\n" +
		"ts=9000000 call=read pid=8 exe=/usr/bin/vim user=alice fd=file path=/home/alice/x bytes=1\n"
	if _, err := sys.Ingest(strings.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C:
		if len(m.Row) != 2 || m.Row[0].S != "/bin/tar" || m.Row[1].S != "/etc/shadow" {
			t.Fatalf("match = %+v", m)
		}
	default:
		t.Fatal("standing query did not fire on the appended behavior")
	}
	if _, err := sys.FlushStream(); err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.Hunt(nil, `proc p read file f["%/home/alice/x%"] return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 1 {
		t.Fatalf("hunt over flushed stream = %v", res.Set.Strings())
	}
	// The stream owns the store: batch loads must be refused while live.
	if err := sys.LoadAuditLog(strings.NewReader(wire)); err == nil {
		t.Fatal("LoadAuditLog must fail while a live session is active")
	}
}
