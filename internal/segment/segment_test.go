package segment

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"threatraptor/internal/audit"
)

func testEntities() []*audit.Entity {
	f := audit.NewFileEntity("/etc/passwd", "root", "root")
	f.ID = 1
	p := audit.NewProcessEntity(42, "/usr/bin/scp", "alice", "users", "scp /etc/passwd out")
	p.ID = 2
	p.Proc.Host = "hostA"
	n := audit.NewNetConnEntity("10.0.0.1", 1234, "203.0.113.9", 443, "tcp")
	n.ID = 3
	return []*audit.Entity{f, p, n}
}

func testImage() *Image {
	ents := testEntities()
	return &Image{
		NextEventID: 3,
		MinTime:     100, MaxTime: 200,
		Nodes:    3,
		Entities: ents,
		Events: EventCols{
			ID: []int64{1, 2}, Subject: []int64{2, 2}, Object: []int64{1, 3},
			Start: []int64{100, 150}, End: []int64{110, 200},
			Amount: []int64{4096, 9000}, Failure: []int64{0, 0},
			Op: []uint8{uint8(audit.OpRead), uint8(audit.OpSend)},
		},
		Adj: AdjCSR{
			OutCounts: []int32{0, 2, 0}, Out: []int32{0, 1},
			InCounts: []int32{1, 0, 1}, In: []int32{0, 1},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	img := testImage()
	got, err := DecodeSegment(Encode(img))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.NextEventID != 3 || got.MinTime != 100 || got.MaxTime != 200 || got.Nodes != 3 {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Entities) != 3 {
		t.Fatalf("entities = %d, want 3", len(got.Entities))
	}
	if got.Entities[1].Proc == nil || got.Entities[1].Proc.ExeName != "/usr/bin/scp" ||
		got.Entities[1].Proc.PID != 42 || got.Entities[1].Proc.Host != "hostA" {
		t.Fatalf("proc entity mismatch: %+v", got.Entities[1])
	}
	if got.Entities[0].Key() != img.Entities[0].Key() || got.Entities[2].Key() != img.Entities[2].Key() {
		t.Fatal("entity keys changed across round trip")
	}
	if len(got.Events.ID) != 2 || got.Events.Op[1] != uint8(audit.OpSend) || got.Events.Amount[0] != 4096 {
		t.Fatalf("event columns mismatch: %+v", got.Events)
	}
	if len(got.Adj.Out) != 2 || got.Adj.Out[0] != 0 || got.Adj.OutCounts[1] != 2 || got.Adj.InCounts[2] != 1 {
		t.Fatalf("adjacency mismatch: %+v", got.Adj)
	}
}

func TestSegmentDetectsFlippedBit(t *testing.T) {
	data := Encode(testImage())
	for _, off := range []int{10, len(data) / 2, len(data) - 3} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if _, err := DecodeSegment(mut); err == nil {
			t.Fatalf("flip at %d: decode accepted corrupt segment", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

func TestSegmentTruncatedInput(t *testing.T) {
	data := Encode(testImage())
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeSegment(data[:cut]); err == nil {
			t.Fatalf("decode accepted truncation at %d", cut)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	ents := testEntities()
	evs := []audit.Event{
		{SubjectID: 2, ObjectID: 1, Op: audit.OpRead, StartTime: -5, EndTime: 10, DataAmount: 4096, FailureCode: 13},
	}
	rec, err := DecodeRecord(EncodeRecord(7, ents, evs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Seq != 7 || len(rec.Entities) != 3 || len(rec.Events) != 1 {
		t.Fatalf("record mismatch: %+v", rec)
	}
	if rec.Entities[2].Net.DstPort != 443 || rec.Entities[0].File.Path != "/etc" {
		t.Fatalf("entity fields mismatch")
	}
	ev := rec.Events[0]
	if ev.ID != 0 || ev.StartTime != -5 || ev.FailureCode != 13 || ev.Op != audit.OpRead {
		t.Fatalf("event mismatch: %+v", ev)
	}
}

func writeWAL(t *testing.T, dir string, recs ...[]byte) *WAL {
	t.Helper()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w
}

func walRecord(seq uint64) []byte {
	return EncodeRecord(seq, nil, []audit.Event{{SubjectID: 1, ObjectID: 2, Op: audit.OpRead, StartTime: int64(seq)}})
}

func TestWALScanFloorAndDedup(t *testing.T) {
	dir := t.TempDir()
	// seq 1, 2, 2 (retry superset), 3 — floor 1 drops the first.
	writeWAL(t, dir, walRecord(1), walRecord(2), walRecord(2), walRecord(3))
	data, err := ReadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ScanFrames(data, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.Records[0].Seq != 2 || res.Records[1].Seq != 3 {
		t.Fatalf("records = %+v", res.Records)
	}
	if res.TruncateAt != -1 || res.TornTail || res.Dropped != 0 {
		t.Fatalf("clean scan reported damage: %+v", res)
	}
}

func TestWALTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir, walRecord(1), walRecord(2))
	path := filepath.Join(dir, WALFileName)
	data, _ := os.ReadFile(path)
	for cut := len(data) - 1; cut > len(data)-10; cut-- {
		res, err := ScanFrames(data[:cut], 0, false)
		if err != nil {
			t.Fatalf("cut %d: torn tail misread as corruption: %v", cut, err)
		}
		if !res.TornTail || len(res.Records) != 1 || res.Records[0].Seq != 1 {
			t.Fatalf("cut %d: res = %+v", cut, res)
		}
		if res.TruncateAt < 0 || res.TruncateAt > int64(cut) {
			t.Fatalf("cut %d: bad TruncateAt %d", cut, res.TruncateAt)
		}
	}
	// Zero-filled tail (preallocated blocks after crash) is also torn.
	padded := append(append([]byte(nil), data...), make([]byte, 64)...)
	res, err := ScanFrames(padded, 0, false)
	if err != nil || !res.TornTail || len(res.Records) != 2 {
		t.Fatalf("zero tail: res=%+v err=%v", res, err)
	}
}

func TestWALMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir, walRecord(1), walRecord(2), walRecord(3))
	data, _ := os.ReadFile(filepath.Join(dir, WALFileName))
	mut := append([]byte(nil), data...)
	mut[12] ^= 0x01 // inside frame 1's payload, frames beyond it intact

	if _, err := ScanFrames(mut, 0, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not refused: %v", err)
	}
	res, err := ScanFrames(mut, 0, true)
	if err != nil {
		t.Fatalf("recover-corrupt: %v", err)
	}
	if res.Dropped == 0 || res.TruncateAt != 0 || len(res.Records) != 0 {
		t.Fatalf("recover-corrupt res = %+v", res)
	}
}

func TestManifestRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("Exists on empty dir")
	}
	m := &Manifest{Seq: 3, WALFloor: 17, Shards: 2, Partitioner: "hash",
		Segments: []SegmentRef{{Role: "global", File: SegmentFileName(3, "global")}}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists false after write")
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || got.WALFloor != 17 || got.Shards != 2 || got.Partitioner != "hash" ||
		len(got.Segments) != 1 || got.Segments[0].File != "seg-00000003-global.seg" {
		t.Fatalf("manifest = %+v", got)
	}

	path := filepath.Join(dir, ManifestFileName)
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt manifest not refused: %v", err)
	}
}

func TestRemoveStale(t *testing.T) {
	dir := t.TempDir()
	live := SegmentFileName(2, "global")
	stale := SegmentFileName(1, "global")
	for _, n := range []string{live, stale, ManifestFileName + ".tmp", "unrelated.txt"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m := &Manifest{Segments: []SegmentRef{{Role: "global", File: live}}}
	if err := RemoveStale(dir, m); err != nil {
		t.Fatal(err)
	}
	for n, want := range map[string]bool{live: true, stale: false, ManifestFileName + ".tmp": false, "unrelated.txt": true} {
		_, err := os.Stat(filepath.Join(dir, n))
		if got := err == nil; got != want {
			t.Errorf("%s present=%v, want %v", n, got, want)
		}
	}
}
