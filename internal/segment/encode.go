package segment

// Segment file format. A segment is a sequence of independently
// checksummed sections after an 8-byte header:
//
//	[magic "TRSG"][u32 version]
//	repeated: [u32 sectionID][u32 len][u32 crc32c(payload)][payload]
//
// Sections appear in fixed order (meta, entities, events, adjacency);
// all integers are little-endian. The ten entity string columns share
// one offsets array (10n+1 u32 values) and one byte blob, so decoding
// every string in the segment costs a single string conversion plus one
// header write per value.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"threatraptor/internal/audit"
	"threatraptor/internal/faultinject"
)

const (
	segMagic   = "TRSG"
	segVersion = 1

	secMeta      = 1
	secEntities  = 2
	secEvents    = 3
	secAdjacency = 4
)

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI64s(b []byte, vs []int64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func appendI32s(b []byte, vs []int32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return b
}

// entityStrCols returns the ten entity string columns in their fixed
// on-disk order.
func entityStrCols(c *EntityCols) [10][]string {
	return [10][]string{c.Name, c.Path, c.User, c.Group, c.Exe,
		c.Cmd, c.SrcIP, c.DstIP, c.Protocol, c.Host}
}

// appendStrCols encodes string columns as one shared offsets array (one
// leading 0 then a running end offset per value, column-major) followed
// by one concatenated blob.
func appendStrCols(b []byte, cols [10][]string) []byte {
	off := uint32(0)
	b = appendU32(b, off)
	for _, col := range cols {
		for _, s := range col {
			off += uint32(len(s))
			b = appendU32(b, off)
		}
	}
	for _, col := range cols {
		for _, s := range col {
			b = append(b, s...)
		}
	}
	return b
}

// appendSection frames payload (built since mark) as a section in place:
// the caller reserves the 12-byte header with beginSection, fills the
// payload, then endSection patches length and checksum.
func beginSection(b []byte, id uint32) ([]byte, int) {
	b = appendU32(b, id)
	b = appendU32(b, 0) // len, patched
	b = appendU32(b, 0) // crc, patched
	return b, len(b)
}

func endSection(b []byte, payloadStart int) []byte {
	payload := b[payloadStart:]
	binary.LittleEndian.PutUint32(b[payloadStart-8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[payloadStart-4:], crc32.Checksum(payload, castagnoli))
	return b
}

// Encode serializes an image into the segment file format. If
// img.EntityCols is nil and img.Entities is non-nil the columns are
// built first; a partition image (both nil) encodes an empty entities
// section.
func Encode(img *Image) []byte {
	cols := img.EntityCols
	if cols == nil && img.Entities != nil {
		cols = BuildEntityCols(img.Entities)
	}
	b := make([]byte, 0, encodedSizeHint(img, cols))
	b = append(b, segMagic...)
	b = appendU32(b, segVersion)

	// meta
	b, start := beginSection(b, secMeta)
	nEnt := 0
	if cols != nil {
		nEnt = len(cols.Kind)
	}
	b = appendI64s(b, []int64{img.NextEventID, img.MinTime, img.MaxTime,
		int64(nEnt), int64(len(img.Events.ID)), int64(img.Nodes)})
	b = endSection(b, start)

	// entities
	b, start = beginSection(b, secEntities)
	b = appendU32(b, uint32(nEnt))
	if cols != nil {
		b = append(b, cols.Kind...)
		b = appendI64s(b, cols.PID)
		b = appendI64s(b, cols.SrcPort)
		b = appendI64s(b, cols.DstPort)
		b = appendStrCols(b, entityStrCols(cols))
	}
	b = endSection(b, start)

	// events
	ev := &img.Events
	b, start = beginSection(b, secEvents)
	b = appendU32(b, uint32(len(ev.ID)))
	b = appendI64s(b, ev.ID)
	b = appendI64s(b, ev.Subject)
	b = appendI64s(b, ev.Object)
	b = appendI64s(b, ev.Start)
	b = appendI64s(b, ev.End)
	b = appendI64s(b, ev.Amount)
	b = appendI64s(b, ev.Failure)
	b = append(b, ev.Op...)
	b = endSection(b, start)

	// adjacency
	b, start = beginSection(b, secAdjacency)
	b = appendU32(b, uint32(len(img.Adj.OutCounts)))
	b = appendU32(b, uint32(len(img.Adj.Out)))
	b = appendU32(b, uint32(len(img.Adj.In)))
	b = appendI32s(b, img.Adj.OutCounts)
	b = appendI32s(b, img.Adj.Out)
	b = appendI32s(b, img.Adj.InCounts)
	b = appendI32s(b, img.Adj.In)
	b = endSection(b, start)

	return b
}

func encodedSizeHint(img *Image, cols *EntityCols) int {
	n := 64 + len(img.Events.ID)*57 + (len(img.Adj.Out)+len(img.Adj.In)+2*len(img.Adj.OutCounts))*4
	if cols != nil {
		n += len(cols.Kind)*70 + 1024
	}
	return n
}

// reader is a bounds-checked cursor over a decoded byte buffer; every
// read validates remaining length so mutated inputs produce typed
// errors, never panics or unbounded allocations.
type reader struct {
	b    []byte
	off  int
	file string
}

func (r *reader) fail(reason string) error {
	return &CorruptError{File: r.file, Offset: int64(r.off), Reason: reason}
}

func (r *reader) need(n int) error {
	if n < 0 || len(r.b)-r.off < n {
		return r.fail(fmt.Sprintf("need %d bytes, have %d", n, len(r.b)-r.off))
	}
	return nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *reader) i64s(n int) ([]int64, error) {
	raw, err := r.bytes(n * 8)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

func (r *reader) i32s(n int) ([]int32, error) {
	raw, err := r.bytes(n * 4)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

// section validates the next section frame (ID and checksum) and
// returns a cursor over its payload.
func (r *reader) section(wantID uint32) (*reader, error) {
	id, err := r.u32()
	if err != nil {
		return nil, err
	}
	if id != wantID {
		return nil, r.fail(fmt.Sprintf("section ID %d, want %d", id, wantID))
	}
	ln, err := r.u32()
	if err != nil {
		return nil, err
	}
	crc, err := r.u32()
	if err != nil {
		return nil, err
	}
	start := r.off
	payload, err := r.bytes(int(ln))
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, &CorruptError{File: r.file, Offset: int64(start), Reason: fmt.Sprintf("section %d checksum mismatch", wantID)}
	}
	return &reader{b: payload, file: r.file}, nil
}

// DecodeSegment parses and validates a segment file image. Every
// section checksum is verified and every count is bounds-checked
// against the remaining input before allocation, so arbitrary inputs
// return a typed error (wrapping ErrCorrupt) rather than panicking.
func DecodeSegment(data []byte) (*Image, error) {
	r := &reader{b: data, file: "segment"}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != segMagic {
		return nil, r.fail("bad magic")
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != segVersion {
		return nil, r.fail(fmt.Sprintf("unsupported segment version %d", ver))
	}

	meta, err := r.section(secMeta)
	if err != nil {
		return nil, err
	}
	m, err := meta.i64s(6)
	if err != nil {
		return nil, err
	}
	img := &Image{NextEventID: m[0], MinTime: m[1], MaxTime: m[2], Nodes: int(m[5])}
	nEnt, nEv := m[3], m[4]
	if nEnt < 0 || nEv < 0 || img.Nodes < 0 || img.NextEventID < 0 {
		return nil, meta.fail("negative meta count")
	}

	ents, err := r.section(secEntities)
	if err != nil {
		return nil, err
	}
	en, err := ents.u32()
	if err != nil {
		return nil, err
	}
	if int64(en) != nEnt {
		return nil, ents.fail("entity count disagrees with meta")
	}
	if en > 0 {
		n := int(en)
		// Cheapest possible row is ~29 bytes (kind + 3 int64s + offsets);
		// reject counts the input cannot hold before allocating.
		if err := ents.need(n * 29); err != nil {
			return nil, err
		}
		c := &EntityCols{}
		kind, err := ents.bytes(n)
		if err != nil {
			return nil, err
		}
		c.Kind = append([]uint8(nil), kind...)
		// The three int columns are adjacent on disk: decode them from one
		// slab, carved with capped capacities so appends never cross columns.
		ints, err := ents.i64s(3 * n)
		if err != nil {
			return nil, err
		}
		c.PID = ints[0*n : 1*n : 1*n]
		c.SrcPort = ints[1*n : 2*n : 2*n]
		c.DstPort = ints[2*n : 3*n : 3*n]
		// All ten string columns decode from one offsets array and one blob
		// copy into one header slab, carved per column with capped
		// capacities so appends never cross columns.
		offRaw, err := ents.bytes((10*n + 1) * 4)
		if err != nil {
			return nil, err
		}
		blobLen := binary.LittleEndian.Uint32(offRaw[10*n*4:])
		blobRaw, err := ents.bytes(int(blobLen))
		if err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(offRaw) != 0 {
			return nil, ents.fail("string offsets must start at 0")
		}
		blob := string(blobRaw)
		strs := make([]string, 10*n)
		prev := uint32(0)
		for i := range strs {
			end := binary.LittleEndian.Uint32(offRaw[(i+1)*4:])
			if end < prev || end > blobLen {
				return nil, ents.fail("string offsets not monotonic")
			}
			strs[i] = blob[prev:end]
			prev = end
		}
		for i, dst := range []*[]string{&c.Name, &c.Path, &c.User, &c.Group, &c.Exe,
			&c.Cmd, &c.SrcIP, &c.DstIP, &c.Protocol, &c.Host} {
			*dst = strs[i*n : (i+1)*n : (i+1)*n]
		}
		for i, k := range c.Kind {
			switch audit.EntityKind(k) {
			case audit.EntityFile, audit.EntityProcess, audit.EntityNetConn:
			default:
				return nil, ents.fail(fmt.Sprintf("entity %d has invalid kind %d", i+1, k))
			}
		}
		img.EntityCols = c
		img.Entities = buildEntities(c)
	}

	evs, err := r.section(secEvents)
	if err != nil {
		return nil, err
	}
	evn32, err := evs.u32()
	if err != nil {
		return nil, err
	}
	if int64(evn32) != nEv {
		return nil, evs.fail("event count disagrees with meta")
	}
	evn := int(evn32)
	if err := evs.need(evn * 57); err != nil {
		return nil, err
	}
	e := &img.Events
	// The seven int64 columns are adjacent on disk; decode into one slab.
	evInts, err := evs.i64s(7 * evn)
	if err != nil {
		return nil, err
	}
	for i, dst := range []*[]int64{&e.ID, &e.Subject, &e.Object, &e.Start, &e.End, &e.Amount, &e.Failure} {
		*dst = evInts[i*evn : (i+1)*evn : (i+1)*evn]
	}
	op, err := evs.bytes(evn)
	if err != nil {
		return nil, err
	}
	e.Op = append([]uint8(nil), op...)

	adj, err := r.section(secAdjacency)
	if err != nil {
		return nil, err
	}
	nodes, err := adj.u32()
	if err != nil {
		return nil, err
	}
	outLen, err := adj.u32()
	if err != nil {
		return nil, err
	}
	inLen, err := adj.u32()
	if err != nil {
		return nil, err
	}
	if int(nodes) != img.Nodes {
		return nil, adj.fail("adjacency node count disagrees with meta")
	}
	if err := adj.need(int(nodes)*8 + int(outLen)*4 + int(inLen)*4); err != nil {
		return nil, err
	}
	a := &img.Adj
	nN, nOut, nIn := int(nodes), int(outLen), int(inLen)
	adjInts, err := adj.i32s(2*nN + nOut + nIn)
	if err != nil {
		return nil, err
	}
	a.OutCounts = adjInts[:nN:nN]
	a.Out = adjInts[nN : nN+nOut : nN+nOut]
	a.InCounts = adjInts[nN+nOut : 2*nN+nOut : 2*nN+nOut]
	a.In = adjInts[2*nN+nOut : 2*nN+nOut+nIn : 2*nN+nOut+nIn]
	if err := validateImage(img); err != nil {
		return nil, err
	}
	return img, nil
}

// validateImage enforces the cross-section invariants a store restore
// relies on, so a decoded image can be adopted without re-checking.
func validateImage(img *Image) error {
	bad := func(reason string) error {
		return &CorruptError{File: "segment", Offset: 0, Reason: reason}
	}
	var sumOut, sumIn int64
	for _, c := range img.Adj.OutCounts {
		if c < 0 {
			return bad("negative adjacency count")
		}
		sumOut += int64(c)
	}
	for _, c := range img.Adj.InCounts {
		if c < 0 {
			return bad("negative adjacency count")
		}
		sumIn += int64(c)
	}
	if sumOut != int64(len(img.Adj.Out)) || sumIn != int64(len(img.Adj.In)) {
		return bad("adjacency counts disagree with flat list length")
	}
	nEdges := int32(len(img.Events.ID))
	for _, ei := range img.Adj.Out {
		if ei < 0 || ei >= nEdges {
			return bad("adjacency edge offset out of range")
		}
	}
	for _, ei := range img.Adj.In {
		if ei < 0 || ei >= nEdges {
			return bad("adjacency edge offset out of range")
		}
	}
	nodes := int64(img.Nodes)
	prev := int64(0)
	for i, id := range img.Events.ID {
		if id <= prev || id >= img.NextEventID {
			return bad("event IDs not ascending within the frontier")
		}
		prev = id
		if s := img.Events.Subject[i]; s < 1 || s > nodes {
			return bad("event subject out of range")
		}
		if o := img.Events.Object[i]; o < 1 || o > nodes {
			return bad("event object out of range")
		}
		if op := img.Events.Op[i]; op == uint8(audit.OpInvalid) || op > uint8(audit.OpReceive) {
			return bad("event op code out of range")
		}
	}
	if img.Entities != nil && len(img.Entities) > img.Nodes {
		return bad("more entities than graph nodes")
	}
	return nil
}

// SegmentFileName returns the file name for a flush generation and
// role, e.g. seg-00000007-global.seg.
func SegmentFileName(gen int64, role string) string {
	return fmt.Sprintf("seg-%08d-%s.seg", gen, role)
}

// WriteSegment encodes img and writes it to dir/name, fsyncing the file.
// The write goes through the FaultSegmentFlush point.
func WriteSegment(dir, name string, img *Image) (int64, error) {
	if err := faultinject.Hit(FaultSegmentFlush); err != nil {
		return 0, err
	}
	data := Encode(img)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	return int64(len(data)), f.Close()
}

// OpenSegment reads and decodes dir/name, verifying every checksum.
// Reads go through the FaultRecoveryRead point.
func OpenSegment(path string) (*Image, error) {
	if err := faultinject.Hit(FaultRecoveryRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, err := DecodeSegment(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.File = path
		}
		return nil, err
	}
	return img, nil
}
