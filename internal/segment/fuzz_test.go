package segment

import (
	"errors"
	"testing"

	"threatraptor/internal/audit"
)

// FuzzSegmentOpen throws arbitrary bytes at the segment decoder and
// asserts its crash-safety contract: never panic, never allocate from
// unvalidated counts, and either return a typed error or an image whose
// cross-section invariants hold (column lengths agree, adjacency offsets
// in range). Seeds are a valid encoding plus truncated, bit-flipped, and
// garbage mutations.
func FuzzSegmentOpen(f *testing.F) {
	valid := Encode(testImage())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x80
	f.Add(flip)
	f.Add([]byte("TSEG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeSegment(data)
		if err != nil {
			if img != nil {
				t.Fatal("error with non-nil image")
			}
			return
		}
		n := len(img.Events.ID)
		for _, col := range [][]int64{img.Events.Subject, img.Events.Object, img.Events.Start,
			img.Events.End, img.Events.Amount, img.Events.Failure} {
			if len(col) != n {
				t.Fatalf("event column length %d, want %d", len(col), n)
			}
		}
		if len(img.Events.Op) != n {
			t.Fatalf("op column length %d, want %d", len(img.Events.Op), n)
		}
		if len(img.Adj.OutCounts) != img.Nodes || len(img.Adj.InCounts) != img.Nodes {
			t.Fatalf("adjacency counts sized %d/%d for %d nodes",
				len(img.Adj.OutCounts), len(img.Adj.InCounts), img.Nodes)
		}
		for _, ei := range img.Adj.Out {
			if ei < 0 || int(ei) >= n {
				t.Fatalf("out-edge offset %d outside %d events", ei, n)
			}
		}
		if img.Entities != nil && len(img.Entities) != len(img.EntityCols.Kind) {
			t.Fatal("entity slice and columns disagree")
		}
	})
}

// FuzzWALScan throws arbitrary bytes at the WAL frame scanner (and,
// transitively, the record decoder) under both corruption policies and
// asserts: never panic, strict mode yields either a clean scan or an
// error wrapping ErrCorrupt, and recover-corrupt mode never fails — it
// must always degrade to a consistent prefix with a sane truncation
// offset. Seeds are real frame sequences plus torn and corrupt variants.
func FuzzWALScan(f *testing.F) {
	dir := f.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		f.Fatal(err)
	}
	ents := testEntities()
	for _, e := range ents {
		e.ID = 0
	}
	frames := [][]byte{
		EncodeRecord(1, ents, []audit.Event{{SubjectID: 2, ObjectID: 1, Op: audit.OpRead, StartTime: 5, EndTime: 9}}),
		EncodeRecord(2, nil, []audit.Event{{SubjectID: 2, ObjectID: 3, Op: audit.OpSend, DataAmount: 1 << 20}}),
		EncodeRecord(2, nil, nil), // equal-seq retry
		EncodeRecord(3, nil, []audit.Event{{SubjectID: 1, ObjectID: 2, Op: audit.OpWrite}}),
	}
	for _, fr := range frames {
		if err := w.Append(fr); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := ReadWAL(dir)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, uint64(0))
	f.Add(valid, uint64(2))
	f.Add(valid[:len(valid)-5], uint64(0)) // torn tail
	flip := append([]byte(nil), valid...)
	flip[10] ^= 0x04 // mid-file corruption
	f.Add(flip, uint64(0))
	f.Add(append(append([]byte(nil), valid...), make([]byte, 32)...), uint64(0)) // zero tail
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, floor uint64) {
		res, err := ScanFrames(data, floor, false)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("strict scan error does not wrap ErrCorrupt: %v", err)
		}
		if err == nil {
			checkScan(t, res, data, floor)
		}
		// Degraded mode must always produce a usable prefix.
		res, err = ScanFrames(data, floor, true)
		if err != nil {
			t.Fatalf("recover-corrupt scan failed: %v", err)
		}
		checkScan(t, res, data, floor)
	})
}

func checkScan(t *testing.T, res ScanResult, data []byte, floor uint64) {
	t.Helper()
	if res.TruncateAt < -1 || res.TruncateAt > int64(len(data)) {
		t.Fatalf("TruncateAt %d outside [-1, %d]", res.TruncateAt, len(data))
	}
	prev := floor
	for _, rec := range res.Records {
		if rec.Seq <= prev {
			t.Fatalf("record seq %d not above %d", rec.Seq, prev)
		}
		prev = rec.Seq
	}
}
