package segment

// Write-ahead log. Each sealed ingestion batch becomes one frame:
//
//	[u32 len][u32 crc32c(payload)][payload]
//
// The payload starts with the uvarint commit sequence number, then the
// batch's new entities and sealed events in a compact varint row
// encoding. Sequence semantics: a frame is written with seq = last
// committed + 1 BEFORE the in-memory apply; the writer only advances
// its committed seq after the apply succeeds, so a failed apply retries
// under the SAME seq with a superset batch — replay keeps the LAST of a
// consecutive equal-seq run and applies frames with seq above the
// manifest floor, which makes the write-then-apply protocol exactly-once
// across crashes at any point.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"threatraptor/internal/audit"
	"threatraptor/internal/faultinject"
)

// WALFileName is the WAL's name inside a data directory.
const WALFileName = "wal.log"

// FsyncAlways, FsyncBatch and FsyncOff are the WAL fsync policies:
// fsync after every appended frame, only at segment-flush boundaries
// (and clean shutdown), or never.
const (
	FsyncAlways = "always"
	FsyncBatch  = "batch"
	FsyncOff    = "off"
)

// ValidFsyncPolicy reports whether s names a known fsync policy.
func ValidFsyncPolicy(s string) bool {
	return s == FsyncAlways || s == FsyncBatch || s == FsyncOff
}

// WAL is an append-only frame log. It has a single writer (the
// ingestion session, under its lock).
type WAL struct {
	f    *os.File
	path string
	size int64
}

// OpenWAL opens (creating if absent) the WAL inside dir, positioned to
// append. The caller replays the existing content first via ReadWAL.
func OpenWAL(dir string) (*WAL, error) {
	path := filepath.Join(dir, WALFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, path: path, size: size}, nil
}

// Path returns the WAL file path.
func (w *WAL) Path() string { return w.path }

// Size returns the current file size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Append frames payload and writes it. On a write error the file is
// truncated back to its pre-append size so a failed append can never be
// misread later as mid-file corruption. The caller decides when to
// Sync per its fsync policy.
func (w *WAL) Append(payload []byte) error {
	if err := faultinject.Hit(FaultWALAppend); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32Checksum(payload))
	frame := append(hdr[:], payload...)
	n, err := w.f.WriteAt(frame, w.size)
	if err != nil {
		if n > 0 {
			// Best effort: remove the partial frame. If the truncate also
			// fails the torn-tail scan will discard it on recovery.
			_ = w.f.Truncate(w.size)
		}
		return err
	}
	w.size += int64(len(frame))
	return nil
}

// Sync fsyncs the log (through the FaultWALSync point, which fires
// after the frame write — a panic there models a crash with the frame
// durable but unapplied).
func (w *WAL) Sync() error {
	if err := faultinject.Hit(FaultWALSync); err != nil {
		return err
	}
	return w.f.Sync()
}

// Truncate cuts the log to size bytes (recovery discarding a torn or
// corrupt tail, or a segment flush resetting the log to empty).
func (w *WAL) Truncate(size int64) error {
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	w.size = size
	return nil
}

// Close fsyncs and closes the log.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadWAL reads the whole WAL file for replay (its size is bounded by
// the segment flush cadence). Missing file reads as empty. Goes through
// the FaultRecoveryRead point.
func ReadWAL(dir string) ([]byte, error) {
	if err := faultinject.Hit(FaultRecoveryRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, WALFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// Record is one decoded WAL frame: the batch the ingestion session was
// about to apply under commit sequence Seq. Events carry ID 0 (IDs are
// assigned at apply time, deterministically), entities carry their
// already-assigned table IDs.
type Record struct {
	Seq      uint64
	Entities []*audit.Entity
	Events   []audit.Event
}

// EncodeRecord serializes a record payload (the part inside a frame).
func EncodeRecord(seq uint64, entities []*audit.Entity, events []audit.Event) []byte {
	b := make([]byte, 0, 16+len(entities)*48+len(events)*24)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(entities)))
	for _, e := range entities {
		b = binary.AppendUvarint(b, uint64(e.ID))
		b = append(b, byte(e.Kind))
		switch e.Kind {
		case audit.EntityFile:
			b = appendStr(b, e.File.Name)
			b = appendStr(b, e.File.Path)
			b = appendStr(b, e.File.User)
			b = appendStr(b, e.File.Group)
			b = appendStr(b, e.File.Host)
		case audit.EntityProcess:
			b = binary.AppendVarint(b, int64(e.Proc.PID))
			b = appendStr(b, e.Proc.ExeName)
			b = appendStr(b, e.Proc.User)
			b = appendStr(b, e.Proc.Group)
			b = appendStr(b, e.Proc.CMD)
			b = appendStr(b, e.Proc.Host)
		case audit.EntityNetConn:
			b = appendStr(b, e.Net.SrcIP)
			b = binary.AppendVarint(b, int64(e.Net.SrcPort))
			b = appendStr(b, e.Net.DstIP)
			b = binary.AppendVarint(b, int64(e.Net.DstPort))
			b = appendStr(b, e.Net.Protocol)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(events)))
	for i := range events {
		ev := &events[i]
		b = binary.AppendUvarint(b, uint64(ev.SubjectID))
		b = binary.AppendUvarint(b, uint64(ev.ObjectID))
		b = append(b, byte(ev.Op))
		b = binary.AppendVarint(b, ev.StartTime)
		b = binary.AppendVarint(b, ev.EndTime)
		b = binary.AppendVarint(b, ev.DataAmount)
		b = binary.AppendVarint(b, int64(ev.FailureCode))
	}
	return b
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// varReader decodes the varint record encoding with bounds checks.
type varReader struct{ b []byte }

func (r *varReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *varReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *varReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(r.b))
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *varReader) byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("truncated byte")
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// DecodeRecord parses a frame payload. Counts are bounds-checked
// against the remaining input before allocation.
func DecodeRecord(payload []byte) (*Record, error) {
	r := &varReader{b: payload}
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	rec := &Record{Seq: seq}
	nEnt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nEnt > uint64(len(r.b))/2 {
		return nil, fmt.Errorf("entity count %d exceeds remaining input", nEnt)
	}
	if nEnt > 0 {
		rec.Entities = make([]*audit.Entity, 0, nEnt)
	}
	for i := uint64(0); i < nEnt; i++ {
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		kindB, err := r.byte()
		if err != nil {
			return nil, err
		}
		e := &audit.Entity{ID: int64(id), Kind: audit.EntityKind(kindB)}
		switch e.Kind {
		case audit.EntityFile:
			f := &audit.File{}
			for _, dst := range []*string{&f.Name, &f.Path, &f.User, &f.Group, &f.Host} {
				if *dst, err = r.str(); err != nil {
					return nil, err
				}
			}
			e.File = f
		case audit.EntityProcess:
			p := &audit.Process{}
			pid, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.PID = int(pid)
			for _, dst := range []*string{&p.ExeName, &p.User, &p.Group, &p.CMD, &p.Host} {
				if *dst, err = r.str(); err != nil {
					return nil, err
				}
			}
			e.Proc = p
		case audit.EntityNetConn:
			n := &audit.NetConn{}
			if n.SrcIP, err = r.str(); err != nil {
				return nil, err
			}
			sp, err := r.varint()
			if err != nil {
				return nil, err
			}
			n.SrcPort = int(sp)
			if n.DstIP, err = r.str(); err != nil {
				return nil, err
			}
			dp, err := r.varint()
			if err != nil {
				return nil, err
			}
			n.DstPort = int(dp)
			if n.Protocol, err = r.str(); err != nil {
				return nil, err
			}
			e.Net = n
		default:
			return nil, fmt.Errorf("entity %d has invalid kind %d", i, kindB)
		}
		rec.Entities = append(rec.Entities, e)
	}
	nEv, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nEv > uint64(len(r.b))/7 {
		return nil, fmt.Errorf("event count %d exceeds remaining input", nEv)
	}
	if nEv > 0 {
		rec.Events = make([]audit.Event, 0, nEv)
	}
	for i := uint64(0); i < nEv; i++ {
		var ev audit.Event
		subj, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		obj, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		opB, err := r.byte()
		if err != nil {
			return nil, err
		}
		ev.SubjectID, ev.ObjectID, ev.Op = int64(subj), int64(obj), audit.OpType(opB)
		if ev.StartTime, err = r.varint(); err != nil {
			return nil, err
		}
		if ev.EndTime, err = r.varint(); err != nil {
			return nil, err
		}
		if ev.DataAmount, err = r.varint(); err != nil {
			return nil, err
		}
		fc, err := r.varint()
		if err != nil {
			return nil, err
		}
		ev.FailureCode = int(fc)
		rec.Events = append(rec.Events, ev)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after record", len(r.b))
	}
	return rec, nil
}

// ScanResult is the outcome of scanning a WAL for replay.
type ScanResult struct {
	// Records are the replayable frames in order: floor-skipped and with
	// consecutive equal-seq runs collapsed to the last write (the
	// retried superset).
	Records []*Record
	// TruncateAt is the file offset the WAL should be truncated to
	// before reuse, or -1 if the file is fully consistent.
	TruncateAt int64
	// TornTail reports a partial final frame was discarded (crash during
	// append — expected, not corruption).
	TornTail bool
	// Dropped counts frames discarded to mid-file corruption under
	// recover-corrupt, and DroppedBytes the bytes cut with them.
	Dropped      int
	DroppedBytes int64
}

// ScanFrames parses a WAL image. Frames with seq <= floor are skipped
// (already covered by segments). A torn tail — the final frame extends
// past end-of-file, or fails its checksum with nothing after it, or the
// tail is all zero bytes — is truncated silently: that is the expected
// shape of a crash during append. A checksum failure with valid data
// beyond it is bit rot: ScanFrames returns a *CorruptError unless
// recoverCorrupt, which instead degrades to the consistent prefix and
// reports what was dropped.
func ScanFrames(data []byte, floor uint64, recoverCorrupt bool) (ScanResult, error) {
	res := ScanResult{TruncateAt: -1}
	var pending *Record
	flush := func() {
		if pending != nil && pending.Seq > floor {
			res.Records = append(res.Records, pending)
		}
		pending = nil
	}
	off := int64(0)
	size := int64(len(data))
	for off < size {
		rest := data[off:]
		if int64(len(rest)) < 8 {
			// Partial header at end of file: torn.
			res.TruncateAt, res.TornTail = off, true
			break
		}
		ln := int64(binary.LittleEndian.Uint32(rest[0:]))
		crc := binary.LittleEndian.Uint32(rest[4:])
		end := off + 8 + ln
		if ln == 0 && crc == 0 {
			// A zero header is either preallocated/zero-filled tail (torn)
			// or a zeroed region with real frames beyond (corruption).
			if allZero(rest) {
				res.TruncateAt, res.TornTail = off, true
				break
			}
			if !recoverCorrupt {
				return res, &CorruptError{File: "wal", Offset: off, Reason: "zeroed frame header with data beyond it"}
			}
			res.Dropped++
			res.DroppedBytes = size - off
			res.TruncateAt = off
			break
		}
		if end > size {
			// Frame claims more bytes than the file holds: torn tail.
			res.TruncateAt, res.TornTail = off, true
			break
		}
		payload := data[off+8 : end]
		if crc32Checksum(payload) != crc {
			if end == size {
				// Checksum failure on the very last frame: torn write.
				res.TruncateAt, res.TornTail = off, true
				break
			}
			if !recoverCorrupt {
				return res, &CorruptError{File: "wal", Offset: off, Reason: "frame checksum mismatch with valid data beyond it"}
			}
			res.Dropped++
			res.DroppedBytes = size - off
			res.TruncateAt = off
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// The frame checksummed clean but does not parse: structural
			// corruption, never torn.
			if !recoverCorrupt {
				return res, &CorruptError{File: "wal", Offset: off, Reason: err.Error()}
			}
			res.Dropped++
			res.DroppedBytes = size - off
			res.TruncateAt = off
			break
		}
		if pending != nil && rec.Seq != pending.Seq {
			flush()
		}
		pending = rec
		off = end
	}
	flush()
	return res, nil
}

func allZero(b []byte) bool {
	return len(bytes.Trim(b, "\x00")) == 0
}
