package segment

// The manifest is the single commit point of the durable store: a
// CRC-framed JSON document naming the live segment set, the sharding
// topology it was dumped under, and the WAL replay floor. It is always
// replaced atomically (tmp + fsync + rename + directory fsync), so a
// crash anywhere in a segment flush leaves either the old manifest or
// the new one — never a mix — and stale segment files from an aborted
// generation are garbage on disk that the next successful flush sweeps.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"threatraptor/internal/faultinject"
)

// ManifestFileName is the manifest's name inside a data directory.
const ManifestFileName = "MANIFEST"

const manifestVersion = 1

// SegmentRef names one live segment file and its role.
type SegmentRef struct {
	Role string `json:"role"`
	File string `json:"file"`
}

// Manifest describes the committed durable state of a data directory.
type Manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Seq is the flush generation; each successful segment flush
	// increments it and names its files seg-<seq>-<role>.seg.
	Seq int64 `json:"seq"`
	// WALFloor is the highest batch commit sequence covered by the
	// segments; WAL frames at or below it are skipped on replay and
	// eligible for garbage collection.
	WALFloor uint64 `json:"wal_floor_seq"`
	// Shards/Partitioner record the sharding topology (0/"" unsharded).
	Shards      int    `json:"shards,omitempty"`
	Partitioner string `json:"partitioner,omitempty"`
	// Segments is the live segment set.
	Segments []SegmentRef `json:"segments"`
}

// Exists reports whether dir holds a committed manifest — i.e. whether
// a previous session persisted state worth recovering.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFileName))
	return err == nil
}

// WriteManifest atomically replaces dir's manifest: the framed JSON is
// written to a temp file, fsynced, renamed over MANIFEST (through the
// FaultManifestRename point — the commit), and the directory fsynced.
func WriteManifest(dir string, m *Manifest) error {
	m.Version = manifestVersion
	doc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	framed := make([]byte, 0, len(doc)+8)
	framed = binary.LittleEndian.AppendUint32(framed, uint32(len(doc)))
	framed = binary.LittleEndian.AppendUint32(framed, crc32Checksum(doc))
	framed = append(framed, doc...)

	tmp := filepath.Join(dir, ManifestFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := faultinject.Hit(FaultManifestRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFileName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadManifest reads and validates dir's manifest. A missing manifest
// returns os.ErrNotExist; a damaged one returns a *CorruptError —
// manifest corruption is always fatal, recover-corrupt does not apply
// to the commit record itself.
func ReadManifest(dir string) (*Manifest, error) {
	if err := faultinject.Hit(FaultRecoveryRead); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, ManifestFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, &CorruptError{File: path, Offset: 0, Reason: "short manifest frame"}
	}
	ln := binary.LittleEndian.Uint32(data[0:])
	crc := binary.LittleEndian.Uint32(data[4:])
	if int(ln) != len(data)-8 {
		return nil, &CorruptError{File: path, Offset: 0, Reason: "manifest length disagrees with file size"}
	}
	doc := data[8:]
	if crc32Checksum(doc) != crc {
		return nil, &CorruptError{File: path, Offset: 8, Reason: "manifest checksum mismatch"}
	}
	var m Manifest
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, &CorruptError{File: path, Offset: 8, Reason: "manifest JSON: " + err.Error()}
	}
	if m.Version != manifestVersion {
		return nil, &CorruptError{File: path, Offset: 8, Reason: fmt.Sprintf("unsupported manifest version %d", m.Version)}
	}
	for _, ref := range m.Segments {
		if ref.File != filepath.Base(ref.File) || !strings.HasPrefix(ref.File, "seg-") {
			return nil, &CorruptError{File: path, Offset: 8, Reason: fmt.Sprintf("manifest references invalid segment file %q", ref.File)}
		}
	}
	return &m, nil
}

// RemoveStale deletes segment files in dir that the manifest does not
// reference — leftovers of flushes that crashed before their manifest
// commit, or segments superseded by a newer generation. Errors are
// returned but the sweep is best-effort: a failed unlink leaves garbage,
// not inconsistency.
func RemoveStale(dir string, m *Manifest) error {
	live := make(map[string]bool, len(m.Segments))
	for _, ref := range m.Segments {
		live[ref.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || live[name] {
			continue
		}
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") ||
			name == ManifestFileName+".tmp" {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
