// Package segment is the durable storage layer: a write-ahead log of
// sealed ingestion batches plus immutable, checksummed columnar segment
// files, tied together by an atomically-renamed manifest.
//
// The on-disk contract is crash consistency by construction. Every sealed
// batch is framed into the WAL (length-prefixed, CRC32C over the payload)
// before it is applied to the in-memory store, so a crash at any point
// loses at most the batch being written. Every K batches the published
// store snapshot is dumped as a segment file — a near-verbatim image of
// the typed column vectors, the entity table, and the graph adjacency
// arenas, each section independently checksummed — and the manifest is
// swapped (tmp + rename + directory fsync) to name the new live segment
// set and the WAL replay floor. Recovery validates checksums, restores
// the arenas directly (no log reparsing), and replays the WAL tail:
// a torn tail (crash mid-append) is truncated and ingestion continues,
// while a checksum failure with valid frames beyond it is bit rot and
// refuses startup unless the operator opts into degrading to the last
// consistent prefix.
package segment

import (
	"errors"
	"fmt"
	"hash/crc32"

	"threatraptor/internal/audit"
)

// Fault-point names for the faultinject harness, covering every disk
// transition of the durability path.
const (
	// FaultWALAppend fires before a WAL frame is written.
	FaultWALAppend = "segment/wal-append"
	// FaultWALSync fires inside WAL fsync, after the frame write — a
	// ModePanic here models a crash after the record is durable but
	// before the in-memory apply.
	FaultWALSync = "segment/wal-sync"
	// FaultSegmentFlush fires before a segment file is written.
	FaultSegmentFlush = "segment/segment-write"
	// FaultManifestRename fires before the manifest tmp file is renamed
	// over MANIFEST — the commit point of a flush.
	FaultManifestRename = "segment/manifest-rename"
	// FaultRecoveryRead fires on every recovery-time read (manifest,
	// segment, WAL).
	FaultRecoveryRead = "segment/recovery-read"
)

// ErrCorrupt is the sentinel wrapped by every checksum or structural
// validation failure, so callers can errors.Is regardless of which file
// or section failed.
var ErrCorrupt = errors.New("segment: corrupt data")

// CorruptError reports a validation failure at a byte offset of a
// durable file. It wraps ErrCorrupt.
type CorruptError struct {
	// File names what was being read ("wal", "segment", "manifest", or a
	// path).
	File string
	// Offset is the byte offset of the failed frame or section.
	Offset int64
	// Reason describes the failure.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("segment: corrupt %s at offset %d: %s", e.File, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// castagnoli is the CRC32C table used for every checksum on disk.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc32Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Image is the in-memory form of one segment: the decoded column
// vectors a store restores its arenas from directly. The store open path
// adopts the slices (zero-copy where the layout allows); an Image must
// not be reused after being handed to a store.
type Image struct {
	// NextEventID is the event-ID frontier at dump time.
	NextEventID int64
	// MinTime/MaxTime are the store's event-time bounds (µs).
	MinTime int64
	MaxTime int64
	// Nodes is the graph node count the adjacency arrays cover. For a
	// partition image this exceeds len(Entities): partitions hold every
	// entity but only their routed events.
	Nodes int
	// Entities is the dense entity slice (ID i at offset i-1), rebuilt
	// from EntityCols on decode. Nil for partition images, which share
	// the global image's entities.
	Entities []*audit.Entity
	// EntityCols are the decoded entity columns, kept so the relational
	// restore can adopt them without re-extracting from Entities. Nil for
	// partition images.
	EntityCols *EntityCols
	// Events are the event columns in ID order (a partition image holds
	// only its routed events, with gaps in the global ID sequence).
	Events EventCols
	// Adj is the graph adjacency in CSR form, per-node lists
	// time-sorted.
	Adj AdjCSR
}

// EntityCols are the columnarized entity attributes, one row per entity
// in ID order. Integer columns hold zero and string columns hold "" at
// rows whose kind does not carry the attribute.
type EntityCols struct {
	Kind                  []uint8
	PID, SrcPort, DstPort []int64
	Name, Path, User, Group, Exe, Cmd,
	SrcIP, DstIP, Protocol, Host []string
}

// EventCols are the columnarized event attributes, one row per event.
type EventCols struct {
	ID, Subject, Object, Start, End, Amount, Failure []int64
	Op                                               []uint8
}

// AdjCSR is graph adjacency in compressed-sparse-row form: node at
// offset i owns Out[sum(OutCounts[:i]) : +OutCounts[i]] (0-based edge
// arena offsets, time-sorted), and symmetrically for In.
type AdjCSR struct {
	OutCounts, Out, InCounts, In []int32
}

// RoleGlobal is the segment role of the full (unsharded-equivalent)
// store; shard partitions use PartitionRole.
const RoleGlobal = "global"

// PartitionRole names shard partition i's segment role ("p0", "p1", ...).
func PartitionRole(i int) string { return fmt.Sprintf("p%d", i) }

// RoleImage pairs a segment role with its image: role "global" is the
// full store, "p0".."pN-1" are shard partitions.
type RoleImage struct {
	Role  string
	Image *Image
}

// Topology records how a persisted store was sharded, so recovery can
// rebuild the same layout and refuse a mismatched configuration.
type Topology struct {
	// Shards is the partition count (0 for an unsharded store).
	Shards int
	// PartitionBy is the partitioner name ("hash", "host", ...); empty
	// for an unsharded store.
	PartitionBy string
}

// BuildEntityCols columnarizes a dense entity slice for encoding.
func BuildEntityCols(dense []*audit.Entity) *EntityCols {
	n := len(dense)
	c := &EntityCols{
		Kind: make([]uint8, n), PID: make([]int64, n), SrcPort: make([]int64, n), DstPort: make([]int64, n),
		Name: make([]string, n), Path: make([]string, n), User: make([]string, n), Group: make([]string, n),
		Exe: make([]string, n), Cmd: make([]string, n), SrcIP: make([]string, n), DstIP: make([]string, n),
		Protocol: make([]string, n), Host: make([]string, n),
	}
	for i, e := range dense {
		c.Kind[i] = uint8(e.Kind)
		switch e.Kind {
		case audit.EntityFile:
			f := e.File
			c.Name[i], c.Path[i], c.User[i], c.Group[i], c.Host[i] = f.Name, f.Path, f.User, f.Group, f.Host
		case audit.EntityProcess:
			p := e.Proc
			c.PID[i] = int64(p.PID)
			c.Exe[i], c.User[i], c.Group[i], c.Cmd[i], c.Host[i] = p.ExeName, p.User, p.Group, p.CMD, p.Host
		case audit.EntityNetConn:
			nc := e.Net
			c.SrcPort[i], c.DstPort[i] = int64(nc.SrcPort), int64(nc.DstPort)
			c.SrcIP[i], c.DstIP[i], c.Protocol[i] = nc.SrcIP, nc.DstIP, nc.Protocol
		}
	}
	return c
}

// buildEntities rebuilds the dense *Entity slice from decoded columns,
// slab-allocating the per-kind attribute structs.
func buildEntities(c *EntityCols) []*audit.Entity {
	n := len(c.Kind)
	var nf, np, nn int
	for _, k := range c.Kind {
		switch audit.EntityKind(k) {
		case audit.EntityFile:
			nf++
		case audit.EntityProcess:
			np++
		case audit.EntityNetConn:
			nn++
		}
	}
	slab := make([]audit.Entity, n)
	files := make([]audit.File, nf)
	procs := make([]audit.Process, np)
	nets := make([]audit.NetConn, nn)
	out := make([]*audit.Entity, n)
	fi, pi, ni := 0, 0, 0
	for i := 0; i < n; i++ {
		e := &slab[i]
		e.ID = int64(i) + 1
		e.Kind = audit.EntityKind(c.Kind[i])
		switch e.Kind {
		case audit.EntityFile:
			f := &files[fi]
			fi++
			f.Name, f.Path, f.User, f.Group, f.Host = c.Name[i], c.Path[i], c.User[i], c.Group[i], c.Host[i]
			e.File = f
		case audit.EntityProcess:
			p := &procs[pi]
			pi++
			p.PID = int(c.PID[i])
			p.ExeName, p.User, p.Group, p.CMD, p.Host = c.Exe[i], c.User[i], c.Group[i], c.Cmd[i], c.Host[i]
			e.Proc = p
		case audit.EntityNetConn:
			nc := &nets[ni]
			ni++
			nc.SrcIP, nc.DstIP, nc.Protocol = c.SrcIP[i], c.DstIP[i], c.Protocol[i]
			nc.SrcPort, nc.DstPort = int(c.SrcPort[i]), int(c.DstPort[i])
			e.Net = nc
		}
		out[i] = e
	}
	return out
}
