package tbql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex tokenizes TBQL source. Strings are double-quoted with backslash
// escapes; '//' starts a line comment.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(k tokKind, text string, pos int) { toks = append(toks, token{k, text, pos}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '_' || unicode.IsLetter(rune(c)):
			start := i
			for i < len(src) && (src[i] == '_' || unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			emit(tokIdent, src[start:i], start)
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			emit(tokNumber, src[start:i], start)
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) && !closed {
				switch src[i] {
				case '"':
					i++
					closed = true
				case '\\':
					if i+1 >= len(src) {
						return nil, fmt.Errorf("tbql: dangling escape at %d", i)
					}
					sb.WriteByte(src[i+1])
					i += 2
				default:
					sb.WriteByte(src[i])
					i++
				}
			}
			if !closed {
				return nil, fmt.Errorf("tbql: unterminated string at %d", start)
			}
			emit(tokString, sb.String(), start)
		default:
			start := i
			matched := false
			for _, op := range []string{"~>", "->", "&&", "||", "<=", ">=", "!=", "<>"} {
				if strings.HasPrefix(src[i:], op) {
					i += 2
					emit(tokSymbol, op, start)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '[', ']', '(', ')', ',', '.', '!', '=', '<', '>', '~', '-':
				i++
				emit(tokSymbol, string(c), start)
			default:
				return nil, fmt.Errorf("tbql: unexpected character %q at %d", c, i)
			}
		}
	}
	emit(tokEOF, "", len(src))
	return toks, nil
}
