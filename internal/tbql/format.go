package tbql

import (
	"fmt"
	"strings"
	"time"

	"threatraptor/internal/relational"
)

// Format renders a query back to concise TBQL text, one pattern per line.
// It is the inverse of Parse up to whitespace and sugar expansion, and is
// used by query synthesis and the conciseness evaluation (Table X).
func Format(q *Query) string {
	var b strings.Builder
	if q.GlobalWindow != nil {
		b.WriteString(formatWindow(q.GlobalWindow))
		b.WriteByte('\n')
	}
	for _, f := range q.GlobalFilters {
		b.WriteString(formatExpr(f))
		b.WriteByte('\n')
	}
	for _, p := range q.Patterns {
		b.WriteString(formatPattern(p))
		b.WriteByte('\n')
	}
	if len(q.Relations) > 0 {
		b.WriteString("with ")
		for i, r := range q.Relations {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatRelation(r))
		}
		b.WriteByte('\n')
	}
	b.WriteString("return ")
	if q.Return.Distinct {
		b.WriteString("distinct ")
	}
	for i, item := range q.Return.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.EntityID)
		if item.Attr != "" {
			b.WriteByte('.')
			b.WriteString(item.Attr)
		}
	}
	return b.String()
}

func formatPattern(p *Pattern) string {
	var b strings.Builder
	b.WriteString(formatEntity(p.Subject))
	b.WriteByte(' ')
	if p.Path != nil {
		b.WriteString(formatPath(p))
	} else {
		b.WriteString(formatOpExpr(p.Op))
	}
	b.WriteByte(' ')
	b.WriteString(formatEntity(p.Object))
	if p.ID != "" && !strings.HasPrefix(p.ID, "_evt") {
		b.WriteString(" as ")
		b.WriteString(p.ID)
		if p.IDFilter != nil {
			b.WriteByte('[')
			b.WriteString(formatExpr(p.IDFilter))
			b.WriteByte(']')
		}
	}
	if p.Window != nil {
		b.WriteByte(' ')
		b.WriteString(formatWindow(p.Window))
	}
	return b.String()
}

func formatEntity(e Entity) string {
	var b strings.Builder
	b.WriteString(string(e.Type))
	b.WriteByte(' ')
	b.WriteString(e.ID)
	if e.Filter != nil {
		b.WriteByte('[')
		b.WriteString(formatFilterSugar(e.Filter))
		b.WriteByte(']')
	}
	return b.String()
}

// formatFilterSugar prints a bare-value filter ("= value" on the empty
// column) as just the value, keeping the synthesized queries as concise as
// the paper's examples.
func formatFilterSugar(e relational.Expr) string {
	if bin, ok := e.(relational.BinOp); ok {
		if c, isCol := bin.L.(relational.ColRef); isCol && c.Column == "" && c.Qualifier == "" {
			if lit, isLit := bin.R.(relational.Lit); isLit && (bin.Op == "=" || bin.Op == "like") {
				return formatValue(lit.V)
			}
		}
	}
	return formatExpr(e)
}

func formatPath(p *Pattern) string {
	var b strings.Builder
	spec := p.Path
	if spec.MinLen == 1 && spec.MaxLen == 1 {
		b.WriteString("->")
	} else {
		b.WriteString("~>")
		switch {
		case spec.MinLen == 1 && spec.MaxLen == -1:
			// default bounds: no annotation
		case spec.MinLen == spec.MaxLen:
			fmt.Fprintf(&b, "(%d)", spec.MinLen)
		case spec.MaxLen == -1:
			fmt.Fprintf(&b, "(%d~)", spec.MinLen)
		case spec.MinLen == 1:
			fmt.Fprintf(&b, "(~%d)", spec.MaxLen)
		default:
			fmt.Fprintf(&b, "(%d~%d)", spec.MinLen, spec.MaxLen)
		}
	}
	if p.Op != nil {
		b.WriteByte('[')
		b.WriteString(formatOpExpr(p.Op))
		b.WriteByte(']')
	}
	return b.String()
}

func formatOpExpr(o *OpExpr) string {
	switch {
	case o == nil:
		return ""
	case o.Op != "":
		return o.Op
	case o.Not != nil:
		return "!" + formatOpExpr(o.Not)
	case o.And[0] != nil:
		return formatOpExpr(o.And[0]) + " && " + formatOpExpr(o.And[1])
	case o.Or[0] != nil:
		return formatOpExpr(o.Or[0]) + " || " + formatOpExpr(o.Or[1])
	}
	return ""
}

func formatWindow(w *Window) string {
	const layout = "2006-01-02 15:04:05"
	switch w.Kind {
	case WindRange:
		return fmt.Sprintf("from %q to %q", w.From.Format(layout), w.To.Format(layout))
	case WindAt:
		return fmt.Sprintf("at %q", w.From.Format(layout))
	case WindBefore:
		return fmt.Sprintf("before %q", w.To.Format(layout))
	case WindAfter:
		return fmt.Sprintf("after %q", w.From.Format(layout))
	case WindLast:
		return "last " + formatDuration(w.Dur)
	}
	return ""
}

func formatDuration(d time.Duration) string {
	switch {
	case d%(24*time.Hour) == 0:
		return fmt.Sprintf("%d day", d/(24*time.Hour))
	case d%time.Hour == 0:
		return fmt.Sprintf("%d hour", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%d min", d/time.Minute)
	default:
		return fmt.Sprintf("%d sec", d/time.Second)
	}
}

func formatRelation(r Relation) string {
	switch r.Kind {
	case RelAttr:
		return formatExpr(r.Attr)
	case RelBefore, RelAfter, RelWithin:
		kw := map[RelationKind]string{RelBefore: "before", RelAfter: "after", RelWithin: "within"}[r.Kind]
		if r.HasDur {
			return fmt.Sprintf("%s %s[%d-%d sec] %s", r.A, kw,
				r.LoDur/time.Second, r.HiDur/time.Second, r.B)
		}
		return fmt.Sprintf("%s %s %s", r.A, kw, r.B)
	}
	return ""
}

// formatExpr renders a relational expression in TBQL surface syntax.
func formatExpr(e relational.Expr) string {
	switch v := e.(type) {
	case relational.ColRef:
		if v.Qualifier != "" {
			return v.Qualifier + "." + v.Column
		}
		return v.Column
	case relational.Lit:
		return formatValue(v.V)
	case relational.UnOp:
		if bin, ok := v.E.(relational.BinOp); ok && bin.Op == "like" {
			return formatExpr(bin.L) + " != " + formatExpr(bin.R)
		}
		return "!(" + formatExpr(v.E) + ")"
	case relational.InList:
		var vals []string
		for _, ve := range v.Vals {
			vals = append(vals, formatExpr(ve))
		}
		neg := ""
		if v.Negate {
			neg = "not "
		}
		return formatExpr(v.E) + " " + neg + "in (" + strings.Join(vals, ", ") + ")"
	case relational.BinOp:
		op := v.Op
		switch op {
		case "and":
			return formatExpr(v.L) + " && " + formatExpr(v.R)
		case "or":
			return "(" + formatExpr(v.L) + " || " + formatExpr(v.R) + ")"
		case "like":
			op = "="
		}
		return formatExpr(v.L) + " " + op + " " + formatExpr(v.R)
	}
	return ""
}

func formatValue(v relational.Value) string {
	if v.K == relational.KindString {
		return `"` + strings.ReplaceAll(v.S, `"`, `\"`) + `"`
	}
	return v.String()
}
