package tbql

import (
	"testing"

	"threatraptor/internal/relational"
)

func TestGlobalFilterAppliesByAttribute(t *testing.T) {
	q, err := Parse(`user = "root"
proc p read file f return distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GlobalFilters) != 1 {
		t.Fatalf("global filters = %d", len(q.GlobalFilters))
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	// Both proc and file carry "user": both entities gain the filter.
	if a.Entities["p"].Filter == nil || a.Entities["f"].Filter == nil {
		t.Fatalf("global filter not distributed: p=%v f=%v",
			a.Entities["p"].Filter, a.Entities["f"].Filter)
	}
}

func TestGlobalFilterQualified(t *testing.T) {
	q, err := Parse(`p.pid = 42
proc p read file f return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Entities["p"].Filter == nil {
		t.Fatal("qualified global filter must reach p")
	}
	if a.Entities["f"].Filter != nil {
		t.Fatal("qualified global filter must not reach f")
	}
}

func TestGlobalFilterSkipsInapplicableKinds(t *testing.T) {
	// "dstip" only exists on network connections.
	q, err := Parse(`dstip = "1.2.3.4"
proc p connect ip i return distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Entities["p"].Filter != nil {
		t.Fatal("proc has no dstip; filter must not attach")
	}
	if a.Entities["i"].Filter == nil {
		t.Fatal("ip entity must receive the dstip filter")
	}
}

func TestGlobalFilterNoTargetFails(t *testing.T) {
	q, err := Parse(`dstip = "1.2.3.4"
proc p read file f return distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(q); err == nil {
		t.Fatal("a global filter applying to no entity must fail analysis")
	}
}

func TestGlobalFilterConjoinsWithLocal(t *testing.T) {
	q, err := Parse(`user = "root"
proc p["%/bin/tar%"] read file f return distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	// p's filter must now be (exename LIKE ...) AND (user = root): two
	// conjuncts.
	n := countConj(a.Entities["p"].Filter)
	if n != 2 {
		t.Fatalf("p filter conjuncts = %d, want 2", n)
	}
}

func countConj(e relational.Expr) int {
	if bin, ok := e.(relational.BinOp); ok && bin.Op == "and" {
		return countConj(bin.L) + countConj(bin.R)
	}
	return 1
}
