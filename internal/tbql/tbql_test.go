package tbql

import (
	"strings"
	"testing"
	"time"
)

// figure2Query is the synthesized TBQL query of the paper's Figure 2.
const figure2Query = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4["%/usr/bin/curl%"] connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

func TestParseFigure2(t *testing.T) {
	q, err := Parse(figure2Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 8 {
		t.Fatalf("patterns = %d, want 8", len(q.Patterns))
	}
	if len(q.Relations) != 7 {
		t.Fatalf("relations = %d, want 7", len(q.Relations))
	}
	if !q.Return.Distinct || len(q.Return.Items) != 9 {
		t.Fatalf("return = %+v", q.Return)
	}
	if q.Patterns[0].ID != "evt1" || q.Patterns[7].ID != "evt8" {
		t.Fatalf("pattern IDs wrong: %q %q", q.Patterns[0].ID, q.Patterns[7].ID)
	}
	if q.Patterns[7].Object.Type != EntIP {
		t.Fatalf("last object should be ip")
	}
}

func TestAnalyzeFigure2(t *testing.T) {
	q, err := Parse(figure2Query)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	// 9 distinct entities (p1 reused across evt1/evt2, etc.).
	if len(a.Entities) != 9 {
		t.Fatalf("entities = %d, want 9", len(a.Entities))
	}
	// Return sugar: bare p1 resolves to exename, f1 to name, i1 to dstip.
	wantAttrs := map[string]string{"p1": "exename", "f1": "name", "i1": "dstip"}
	for _, item := range a.ReturnItems {
		if want, ok := wantAttrs[item.EntityID]; ok && item.Attr != want {
			t.Errorf("return %s resolved to %q, want %q", item.EntityID, item.Attr, want)
		}
	}
	// Entity-ID reuse: p4 declared twice with the same filter conjoins.
	if a.Entities["p4"].Filter == nil {
		t.Error("p4 filter missing")
	}
}

func TestParseOpExpressions(t *testing.T) {
	q, err := Parse(`proc p[pid = 1 && exename = "%chrome.exe%"] read || write file f return f`)
	if err != nil {
		t.Fatal(err)
	}
	ops := q.Patterns[0].Op.Ops()
	if !ops["read"] || !ops["write"] || ops["execute"] {
		t.Fatalf("ops = %v", ops)
	}
	q, err = Parse(`proc p !read && !write file f return f`)
	if err != nil {
		t.Fatal(err)
	}
	ops = q.Patterns[0].Op.Ops()
	if ops["read"] || ops["write"] || !ops["execute"] {
		t.Fatalf("negated ops = %v", ops)
	}
}

func TestParseOpenAliasesToRead(t *testing.T) {
	q, err := Parse(`proc p open file f return f`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Patterns[0].Op.Ops()["read"] {
		t.Fatal("open must canonicalize to read")
	}
}

func TestParsePathPatterns(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
		finalOp  string
	}{
		{`proc p ~>[read] file f return f`, 1, -1, "read"},
		{`proc p ~>(2~4)[read] file f return f`, 2, 4, "read"},
		{`proc p ~>(2~)[read] file f return f`, 2, -1, "read"},
		{`proc p ~>(~4)[read] file f return f`, 1, 4, "read"},
		{`proc p ->[read] file f return f`, 1, 1, "read"},
		{`proc p ~> file f return f`, 1, -1, ""},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		p := q.Patterns[0]
		if p.Path == nil {
			t.Fatalf("%s: no path", c.src)
		}
		if p.Path.MinLen != c.min || p.Path.MaxLen != c.max {
			t.Errorf("%s: bounds (%d,%d), want (%d,%d)", c.src, p.Path.MinLen, p.Path.MaxLen, c.min, c.max)
		}
		if c.finalOp == "" && p.Op != nil {
			t.Errorf("%s: unexpected final op", c.src)
		}
		if c.finalOp != "" && (p.Op == nil || !p.Op.Ops()[c.finalOp]) {
			t.Errorf("%s: final op missing", c.src)
		}
	}
}

func TestParseWindows(t *testing.T) {
	q, err := Parse(`proc p read file f from "2018-04-06 11:00:00" to "2018-04-06 12:30:00" return f`)
	if err != nil {
		t.Fatal(err)
	}
	w := q.Patterns[0].Window
	if w == nil || w.Kind != WindRange {
		t.Fatalf("window = %+v", w)
	}
	if w.To.Sub(w.From) != 90*time.Minute {
		t.Fatalf("range = %v", w.To.Sub(w.From))
	}
	q, err = Parse(`last 2 hour proc p read file f return f`)
	if err != nil {
		t.Fatal(err)
	}
	if q.GlobalWindow == nil || q.GlobalWindow.Dur != 2*time.Hour {
		t.Fatalf("global window = %+v", q.GlobalWindow)
	}
}

func TestParseTemporalRelationWithDuration(t *testing.T) {
	q, err := Parse(`proc p read file f as e1
proc p write file g as e2
with e1 before[0-5 min] e2
return f, g`)
	if err != nil {
		t.Fatal(err)
	}
	r := q.Relations[0]
	if r.Kind != RelBefore || !r.HasDur || r.HiDur != 5*time.Minute {
		t.Fatalf("relation = %+v", r)
	}
}

func TestParseAttrRelation(t *testing.T) {
	q, err := Parse(`proc p1 read file f as e1
proc p2 write file g as e2
with p1.pid = p2.pid
return f, g`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Relations[0].Kind != RelAttr {
		t.Fatalf("relation = %+v", q.Relations[0])
	}
	if _, err := Analyze(q); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []string{
		`file f read proc p return p`,                                                     // file subject
		`proc p read file f return q`,                                                     // unknown return entity
		`proc p read file f return f.pid`,                                                 // wrong attribute
		`proc p[nosuch = "x"] read file f return f`,                                       // unknown filter attr
		`proc p read file p return p`,                                                     // entity type conflict
		`proc p read file f as e1 proc p write file g as e1 return f`,                     // dup pattern ID
		`proc p read file f as e1 with e1 before e9 return f`,                             // unknown rel pattern
		`proc p ~>(2~4) file f as e1 proc p read file g as e2 with e1 before e2 return f`, // temporal on path
		`proc p read && !read file f return f`,                                            // empty op set
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			continue // parse error also acceptable for malformed inputs
		}
		if _, err := Analyze(q); err == nil {
			t.Errorf("Analyze(%q) should fail", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`return f`,
		`proc p read file f`,              // missing return
		`proc p teleport file f return f`, // unknown op
		`proc p read file f as`,           // missing id
		`proc p ~>(4~2) file f return f`,  // invalid bounds
		`proc p read file f with e1 before return f`,
		`proc p read file f return f extra`,
		`proc p[pid = ] read file f return f`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	q, err := Parse(figure2Query)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(q)
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted query must reparse: %v\n%s", err, text)
	}
	if len(q2.Patterns) != len(q.Patterns) || len(q2.Relations) != len(q.Relations) {
		t.Fatalf("round trip lost structure:\n%s", text)
	}
	if _, err := Analyze(q2); err != nil {
		t.Fatalf("round-tripped query must analyze: %v", err)
	}
}

func TestFormatConcise(t *testing.T) {
	q, err := Parse(figure2Query)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(q)
	// The sugar forms must be preserved: bare values, bare return IDs.
	if strings.Contains(text, "exename =") || strings.Contains(text, "name =") {
		t.Errorf("default-attribute sugar lost:\n%s", text)
	}
	if strings.Contains(text, "p1.exename") {
		t.Errorf("return sugar lost:\n%s", text)
	}
}

func TestParseInList(t *testing.T) {
	q, err := Parse(`proc p[exename in ("%/bin/a%", "%/bin/b%")] read file f[name not in ("/tmp/x")] return f`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(q); err != nil {
		t.Fatal(err)
	}
}
