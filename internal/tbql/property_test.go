package tbql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"threatraptor/internal/relational"
)

// randomQuery generates a structurally valid random TBQL query.
func randomQuery(rng *rand.Rand) *Query {
	nPatterns := 1 + rng.Intn(5)
	q := &Query{}
	ops := []string{"read", "write", "execute", "connect", "send", "receive", "start", "rename"}
	objTypes := []EntityType{EntFile, EntProc, EntIP}

	type entdecl struct {
		id  string
		typ EntityType
	}
	var procs, objs []entdecl

	newProc := func() Entity {
		// Reuse an existing proc sometimes.
		if len(procs) > 0 && rng.Intn(2) == 0 {
			d := procs[rng.Intn(len(procs))]
			return Entity{Type: EntProc, ID: d.id}
		}
		id := fmt.Sprintf("p%d", len(procs)+1)
		procs = append(procs, entdecl{id, EntProc})
		e := Entity{Type: EntProc, ID: id}
		if rng.Intn(2) == 0 {
			e.Filter = relational.BinOp{
				Op: "like",
				L:  relational.ColRef{},
				R:  relational.Lit{V: relational.Str(fmt.Sprintf("%%/bin/x%d%%", rng.Intn(9)))},
			}
		}
		return e
	}
	newObj := func(typ EntityType) Entity {
		for _, d := range objs {
			if d.typ == typ && rng.Intn(3) == 0 {
				return Entity{Type: typ, ID: d.id}
			}
		}
		id := fmt.Sprintf("o%d", len(objs)+1)
		objs = append(objs, entdecl{id, typ})
		e := Entity{Type: typ, ID: id}
		if rng.Intn(2) == 0 {
			val := fmt.Sprintf("%%/tmp/f%d%%", rng.Intn(9))
			if typ == EntIP {
				val = fmt.Sprintf("10.0.0.%d", 1+rng.Intn(250))
			}
			e.Filter = relational.BinOp{Op: "like", L: relational.ColRef{}, R: relational.Lit{V: relational.Str(val)}}
			if typ == EntIP {
				e.Filter = relational.BinOp{Op: "=", L: relational.ColRef{}, R: relational.Lit{V: relational.Str(val)}}
			}
		}
		return e
	}

	for i := 0; i < nPatterns; i++ {
		objType := objTypes[rng.Intn(len(objTypes))]
		var op string
		switch objType {
		case EntIP:
			op = []string{"connect", "send", "receive"}[rng.Intn(3)]
		case EntProc:
			op = []string{"start", "end"}[rng.Intn(2)]
		default:
			op = ops[rng.Intn(4)]
		}
		patt := &Pattern{
			Subject: newProc(),
			Object:  newObj(objType),
			Op:      &OpExpr{Op: op},
			ID:      fmt.Sprintf("evt%d", i+1),
		}
		if rng.Intn(4) == 0 {
			patt.Path = &PathSpec{MinLen: 1, MaxLen: 1}
		}
		q.Patterns = append(q.Patterns, patt)
	}
	// Temporal chain over a random prefix of event patterns.
	for i := 0; i+1 < len(q.Patterns) && rng.Intn(2) == 0; i++ {
		q.Relations = append(q.Relations, Relation{
			Kind: RelBefore,
			A:    q.Patterns[i].ID,
			B:    q.Patterns[i+1].ID,
		})
	}
	q.Return.Distinct = true
	seen := map[string]bool{}
	for _, p := range q.Patterns {
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if !seen[id] {
				seen[id] = true
				q.Return.Items = append(q.Return.Items, Attr{EntityID: id})
			}
		}
	}
	return q
}

// TestFormatParseRoundTripProperty: Format(q) reparses and re-analyzes to
// the same structure for randomly generated queries.
func TestFormatParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		q := randomQuery(rng)
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: formatted query must parse: %v\n%s", i, err, text)
		}
		if len(q2.Patterns) != len(q.Patterns) {
			t.Fatalf("iteration %d: pattern count %d != %d\n%s", i, len(q2.Patterns), len(q.Patterns), text)
		}
		if len(q2.Relations) != len(q.Relations) {
			t.Fatalf("iteration %d: relation count %d != %d\n%s", i, len(q2.Relations), len(q.Relations), text)
		}
		a1, err := Analyze(q)
		if err != nil {
			t.Fatalf("iteration %d: original must analyze: %v\n%s", i, err, text)
		}
		a2, err := Analyze(q2)
		if err != nil {
			t.Fatalf("iteration %d: reparsed must analyze: %v\n%s", i, err, text)
		}
		if len(a1.Entities) != len(a2.Entities) {
			t.Fatalf("iteration %d: entity count %d != %d\n%s", i, len(a1.Entities), len(a2.Entities), text)
		}
		// Second format is a fixpoint.
		text2 := Format(q2)
		if text != text2 {
			t.Fatalf("iteration %d: Format is not a fixpoint:\n%s\nvs\n%s", i, text, text2)
		}
	}
}

// TestOpExprProperty: De Morgan behaviour of the op-expression evaluator.
func TestOpExprProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	atoms := []string{"read", "write", "execute", "connect"}
	var gen func(depth int) *OpExpr
	gen = func(depth int) *OpExpr {
		if depth == 0 || rng.Intn(3) == 0 {
			return &OpExpr{Op: atoms[rng.Intn(len(atoms))]}
		}
		switch rng.Intn(3) {
		case 0:
			return &OpExpr{Not: gen(depth - 1)}
		case 1:
			return &OpExpr{And: [2]*OpExpr{gen(depth - 1), gen(depth - 1)}}
		default:
			return &OpExpr{Or: [2]*OpExpr{gen(depth - 1), gen(depth - 1)}}
		}
	}
	universe := []string{"read", "write", "execute", "start", "end", "rename", "connect", "send", "receive"}
	for i := 0; i < 500; i++ {
		a, b := gen(3), gen(3)
		notAnd := (&OpExpr{Not: &OpExpr{And: [2]*OpExpr{a, b}}}).Ops()
		orNots := (&OpExpr{Or: [2]*OpExpr{{Not: a}, {Not: b}}}).Ops()
		for _, op := range universe {
			if notAnd[op] != orNots[op] {
				t.Fatalf("De Morgan violated for %q", op)
			}
		}
		// Double negation.
		if got, want := (&OpExpr{Not: &OpExpr{Not: a}}).Ops(), a.Ops(); !sameSet(got, want) {
			t.Fatal("double negation violated")
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestFormatStableUnderWhitespace: parsing is insensitive to extra spaces.
func TestFormatStableUnderWhitespace(t *testing.T) {
	src := `proc   p1["%/bin/tar%"]   read    file f1["%/etc/passwd%"]  as e1
	   return   distinct   p1 , f1`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 || len(q.Return.Items) != 2 {
		t.Fatalf("structure lost: %+v", q)
	}
	if !strings.Contains(Format(q), `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"]`) {
		t.Fatalf("format normalizes spacing:\n%s", Format(q))
	}
}
