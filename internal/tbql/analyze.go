package tbql

import (
	"fmt"

	"threatraptor/internal/audit"
	"threatraptor/internal/relational"
)

// EntityDecl is one logical entity after entity-ID-reuse resolution: the
// same ID used in multiple patterns denotes the same entity, and its
// filters are conjoined.
type EntityDecl struct {
	ID     string
	Type   EntityType
	Filter relational.Expr // nil when unconstrained
}

// Analyzed is a validated query with all syntactic sugars resolved.
type Analyzed struct {
	Query       *Query
	Entities    map[string]*EntityDecl
	EntityOrder []string       // first-use order
	PatternID   map[string]int // pattern ID -> index into Query.Patterns
	// Return items with default attributes filled in.
	ReturnItems []Attr
}

// Kind converts a TBQL entity type to the audit entity kind.
func (t EntityType) Kind() audit.EntityKind {
	switch t {
	case EntFile:
		return audit.EntityFile
	case EntProc:
		return audit.EntityProcess
	case EntIP:
		return audit.EntityNetConn
	}
	return audit.EntityInvalid
}

// eventAttrs are the attributes of system events addressable through a
// pattern ID (paper Table III).
var eventAttrs = map[string]string{
	"start_time": "start_time", "starttime": "start_time",
	"end_time": "end_time", "endtime": "end_time",
	"amount": "amount", "data_amount": "amount",
	"failure_code": "failure_code", "failurecode": "failure_code",
	"optype": "op", "op": "op",
}

// errSkipEntity marks a global filter as inapplicable to one entity.
var errSkipEntity = fmt.Errorf("tbql: filter does not apply to this entity")

// Analyze validates q and resolves its syntactic sugars: default
// attributes for bare values and bare return IDs, and entity ID reuse.
func Analyze(q *Query) (*Analyzed, error) {
	a := &Analyzed{
		Query:     q,
		Entities:  make(map[string]*EntityDecl),
		PatternID: make(map[string]int),
	}

	declare := func(e *Entity) error {
		kind := e.Type.Kind()
		filter, err := resolveEntityFilter(e, kind)
		if err != nil {
			return err
		}
		decl, exists := a.Entities[e.ID]
		if !exists {
			a.Entities[e.ID] = &EntityDecl{ID: e.ID, Type: e.Type, Filter: filter}
			a.EntityOrder = append(a.EntityOrder, e.ID)
			return nil
		}
		if decl.Type != e.Type {
			return fmt.Errorf("tbql: entity %s redeclared as %s (was %s)", e.ID, e.Type, decl.Type)
		}
		if filter != nil {
			if decl.Filter == nil {
				decl.Filter = filter
			} else {
				decl.Filter = relational.BinOp{Op: "and", L: decl.Filter, R: filter}
			}
		}
		return nil
	}

	for i, patt := range q.Patterns {
		if patt.Subject.Type != EntProc {
			return nil, fmt.Errorf("tbql: pattern %d: subject entity must be proc (events are initiated by processes)", i+1)
		}
		if err := declare(&patt.Subject); err != nil {
			return nil, err
		}
		if err := declare(&patt.Object); err != nil {
			return nil, err
		}
		if patt.ID == "" {
			patt.ID = fmt.Sprintf("_evt%d", i+1)
		}
		if _, dup := a.PatternID[patt.ID]; dup {
			return nil, fmt.Errorf("tbql: duplicate pattern ID %q", patt.ID)
		}
		a.PatternID[patt.ID] = i
		if patt.IDFilter != nil {
			if err := validateEventFilter(patt.IDFilter, patt.ID); err != nil {
				return nil, err
			}
		}
		if patt.Op != nil && len(patt.Op.Ops()) == 0 {
			return nil, fmt.Errorf("tbql: pattern %s: operation expression matches no operation", patt.ID)
		}
	}

	// Global attribute filters apply to every declared entity that carries
	// the referenced attribute (e.g. `user = "root"` constrains files and
	// processes alike); qualified filters apply to the named entity only.
	for _, gf := range q.GlobalFilters {
		applied := false
		for _, id := range a.EntityOrder {
			decl := a.Entities[id]
			kind := decl.Type.Kind()
			resolved, err := rewriteExpr(gf, func(c relational.ColRef) (relational.ColRef, error) {
				if c.Qualifier != "" && c.Qualifier != id {
					return c, errSkipEntity
				}
				col := c.Column
				if col == "" {
					col = audit.DefaultAttr(kind)
				}
				if !audit.HasAttr(kind, col) {
					return c, errSkipEntity
				}
				return relational.ColRef{Column: col}, nil
			})
			if err != nil {
				continue // filter does not apply to this entity kind
			}
			applied = true
			if decl.Filter == nil {
				decl.Filter = resolved
			} else {
				decl.Filter = relational.BinOp{Op: "and", L: decl.Filter, R: resolved}
			}
		}
		if !applied {
			return nil, fmt.Errorf("tbql: global filter applies to no declared entity")
		}
	}

	for _, rel := range q.Relations {
		if rel.Kind == RelAttr {
			if err := validateAttrRelation(a, rel.Attr); err != nil {
				return nil, err
			}
			continue
		}
		for _, id := range []string{rel.A, rel.B} {
			pi, ok := a.PatternID[id]
			if !ok {
				return nil, fmt.Errorf("tbql: temporal relation references unknown pattern %q", id)
			}
			if q.Patterns[pi].Path != nil && q.Patterns[pi].Path.MaxLen != 1 {
				return nil, fmt.Errorf("tbql: temporal relation on variable-length path pattern %q", id)
			}
		}
	}

	for _, item := range q.Return.Items {
		decl, ok := a.Entities[item.EntityID]
		if !ok {
			return nil, fmt.Errorf("tbql: return references unknown entity %q", item.EntityID)
		}
		attr := item.Attr
		if attr == "" {
			attr = audit.DefaultAttr(decl.Type.Kind()) // sugar
		}
		if !audit.HasAttr(decl.Type.Kind(), attr) {
			return nil, fmt.Errorf("tbql: entity %s (%s) has no attribute %q", item.EntityID, decl.Type, attr)
		}
		a.ReturnItems = append(a.ReturnItems, Attr{EntityID: item.EntityID, Attr: attr})
	}
	if len(a.ReturnItems) == 0 {
		return nil, fmt.Errorf("tbql: empty return clause")
	}
	return a, nil
}

// resolveEntityFilter fills default attribute names into bare-value
// comparisons and validates attribute names against the entity kind.
func resolveEntityFilter(e *Entity, kind audit.EntityKind) (relational.Expr, error) {
	if e.Filter == nil {
		return nil, nil
	}
	return rewriteExpr(e.Filter, func(c relational.ColRef) (relational.ColRef, error) {
		if c.Qualifier != "" && c.Qualifier != e.ID {
			return c, fmt.Errorf("tbql: filter on entity %s references %s", e.ID, c.Qualifier)
		}
		col := c.Column
		if col == "" {
			col = audit.DefaultAttr(kind)
		}
		if !audit.HasAttr(kind, col) {
			return c, fmt.Errorf("tbql: entity %s (%s) has no attribute %q", e.ID, e.Type, col)
		}
		return relational.ColRef{Column: col}, nil
	})
}

func validateEventFilter(e relational.Expr, pattID string) error {
	_, err := rewriteExpr(e, func(c relational.ColRef) (relational.ColRef, error) {
		if c.Qualifier != "" && c.Qualifier != pattID {
			return c, fmt.Errorf("tbql: event filter on %s references %s", pattID, c.Qualifier)
		}
		canon, ok := eventAttrs[c.Column]
		if !ok {
			return c, fmt.Errorf("tbql: unknown event attribute %q", c.Column)
		}
		return relational.ColRef{Column: canon}, nil
	})
	return err
}

func validateAttrRelation(a *Analyzed, e relational.Expr) error {
	_, err := rewriteExpr(e, func(c relational.ColRef) (relational.ColRef, error) {
		if c.Qualifier == "" {
			return c, fmt.Errorf("tbql: attribute relation requires qualified attributes")
		}
		decl, ok := a.Entities[c.Qualifier]
		if !ok {
			return c, fmt.Errorf("tbql: attribute relation references unknown entity %q", c.Qualifier)
		}
		if !audit.HasAttr(decl.Type.Kind(), c.Column) {
			return c, fmt.Errorf("tbql: entity %s has no attribute %q", c.Qualifier, c.Column)
		}
		return c, nil
	})
	return err
}

// rewriteExpr maps every column reference through fn, rebuilding the tree.
func rewriteExpr(e relational.Expr, fn func(relational.ColRef) (relational.ColRef, error)) (relational.Expr, error) {
	switch v := e.(type) {
	case relational.ColRef:
		return fn(v)
	case relational.Lit:
		return v, nil
	case relational.BinOp:
		l, err := rewriteExpr(v.L, fn)
		if err != nil {
			return nil, err
		}
		r, err := rewriteExpr(v.R, fn)
		if err != nil {
			return nil, err
		}
		return relational.BinOp{Op: v.Op, L: l, R: r}, nil
	case relational.UnOp:
		x, err := rewriteExpr(v.E, fn)
		if err != nil {
			return nil, err
		}
		return relational.UnOp{Op: v.Op, E: x}, nil
	case relational.InList:
		x, err := rewriteExpr(v.E, fn)
		if err != nil {
			return nil, err
		}
		vals := make([]relational.Expr, len(v.Vals))
		for i, ve := range v.Vals {
			w, err := rewriteExpr(ve, fn)
			if err != nil {
				return nil, err
			}
			vals[i] = w
		}
		return relational.InList{E: x, Vals: vals, Negate: v.Negate}, nil
	}
	return nil, fmt.Errorf("tbql: cannot rewrite %T", e)
}
