package tbql

import (
	"sort"

	"threatraptor/internal/qir"
	"threatraptor/internal/relational"
)

// Lower compiles an analyzed query's patterns into the shared logical-plan
// IR, one DataQuery per pattern. The IR is pure structure: predicate trees
// reference logical attribute names, windows stay symbolic (the engine
// resolves bounds-sensitive windows against the store when lowering to
// physical plans), and the scheduler's per-execution extras are left to
// the well-known parameter slots.
func Lower(a *Analyzed) []*qir.DataQuery {
	out := make([]*qir.DataQuery, len(a.Query.Patterns))
	for i, p := range a.Query.Patterns {
		dq := &qir.DataQuery{PatternID: p.ID}
		w := lowerWindow(patternWindow(a.Query, p))
		subj := a.Entities[p.Subject.ID].Filter
		obj := a.Entities[p.Object.ID].Filter
		if p.Path != nil {
			dq.Path = &qir.PathMatch{
				MinLen:     p.Path.MinLen,
				MaxLen:     p.Path.MaxLen,
				Ops:        LoweredOps(p.Op),
				ObjKind:    p.Object.Type.Kind(),
				SubjPred:   subj,
				ObjPred:    obj,
				HasEdgeVar: (p.Path.MinLen == 1 && p.Path.MaxLen == 1) || p.Op != nil,
			}
			if dq.Path.HasEdgeVar {
				dq.Path.EdgePred = p.IDFilter
				dq.Path.Window = w
			}
		} else {
			dq.Event = &qir.EventJoin{
				SubjPred:      subj,
				ObjPred:       obj,
				ObjKind:       string(p.Object.Type),
				Ops:           LoweredOps(p.Op),
				EventPred:     p.IDFilter,
				Window:        w,
				SubjConjuncts: conjunctCount(subj),
				ObjConjuncts:  conjunctCount(obj),
			}
		}
		out[i] = dq
	}
	return out
}

// patternWindow resolves the window that applies to a pattern: its own,
// else the query's global window.
func patternWindow(q *Query, p *Pattern) *Window {
	if p.Window != nil {
		return p.Window
	}
	return q.GlobalWindow
}

// LoweredOps flattens an operation expression to its sorted matching-op
// list, or nil when every operation matches (no constraint needed).
func LoweredOps(op *OpExpr) []string {
	if op == nil {
		return nil
	}
	set := op.Ops()
	if len(set) >= 9 {
		return nil
	}
	ops := make([]string, 0, len(set))
	for o := range set {
		ops = append(ops, o)
	}
	sort.Strings(ops)
	return ops
}

// lowerWindow converts a TBQL window to its symbolic IR form. "at t"
// resolves to the fixed day range here; the bounds-sensitive kinds stay
// symbolic.
func lowerWindow(w *Window) *qir.Window {
	if w == nil {
		return nil
	}
	switch w.Kind {
	case WindRange:
		return &qir.Window{Kind: qir.WindRange, FromUS: w.From.UnixMicro(), ToUS: w.To.UnixMicro()}
	case WindAt:
		lo := w.From.UnixMicro()
		return &qir.Window{Kind: qir.WindRange, FromUS: lo, ToUS: lo + 24*3600*1_000_000 - 1}
	case WindBefore:
		return &qir.Window{Kind: qir.WindBefore, ToUS: w.To.UnixMicro()}
	case WindAfter:
		return &qir.Window{Kind: qir.WindAfter, FromUS: w.From.UnixMicro()}
	case WindLast:
		return &qir.Window{Kind: qir.WindLast, DurUS: w.Dur.Microseconds()}
	}
	return nil
}

// conjunctCount counts top-level AND conjuncts of a filter; a nil filter
// counts as one (the always-true conjunct), matching the scheduler's
// pruning-score convention.
func conjunctCount(e relational.Expr) int {
	if e == nil {
		return 1
	}
	n := 0
	var walk func(relational.Expr)
	walk = func(e relational.Expr) {
		if bin, ok := e.(relational.BinOp); ok && bin.Op == "and" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		n++
	}
	walk(e)
	return n
}
