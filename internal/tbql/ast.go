// Package tbql implements the Threat Behavior Query Language of the
// ThreatRaptor paper (Grammar 1, Section III-D): a concise declarative
// language for hunting over system audit logging data. TBQL treats system
// entities (files, processes, network connections) and system events as
// first-class citizens, with explicit constructs for entity/event types,
// event operations, temporal/attribute relationships, and variable-length
// event path patterns.
package tbql

import (
	"time"

	"threatraptor/internal/relational"
)

// EntityType is a TBQL entity keyword.
type EntityType string

// The three entity types.
const (
	EntFile EntityType = "file"
	EntProc EntityType = "proc"
	EntIP   EntityType = "ip"
)

// Query is a parsed TBQL query.
type Query struct {
	// GlobalFilters apply to every event pattern.
	GlobalFilters []relational.Expr
	// GlobalWindow restricts every pattern's time range.
	GlobalWindow *Window
	Patterns     []*Pattern
	Relations    []Relation
	Return       Return
}

// Pattern is one TBQL pattern: an event pattern (Path == nil) or a
// variable-length event path pattern (Path != nil).
type Pattern struct {
	Subject Entity
	// Op is the operation expression of an event pattern, or the optional
	// final-hop operation of a path pattern.
	Op *OpExpr
	// Path is non-nil for the ⟨op_path⟩ syntax.
	Path *PathSpec
	// ID is the pattern identifier declared with "as" ("" when absent).
	ID string
	// IDFilter is the optional attribute filter after the pattern ID.
	IDFilter relational.Expr
	Object   Entity
	Window   *Window
}

// Entity is a typed entity reference with an optional attribute filter.
type Entity struct {
	Type   EntityType
	ID     string
	Filter relational.Expr // nil when absent
}

// PathSpec is the ⟨op_path⟩ rule: '~>' (graph search, any intermediate
// hops) or '->' with explicit length bounds.
type PathSpec struct {
	// MinLen/MaxLen bound the number of hops; MaxLen == -1 means
	// unbounded. The plain '->' form is MinLen == MaxLen == 1.
	MinLen int
	MaxLen int
}

// OpExpr is an operation expression tree over event operation keywords.
type OpExpr struct {
	// Exactly one of the fields below is set.
	Op  string  // leaf: "read", "write", ...
	Not *OpExpr // '!' op_exp
	And [2]*OpExpr
	Or  [2]*OpExpr
}

// Ops returns the set of operation keywords that satisfy the expression,
// evaluated over the closed op vocabulary.
func (o *OpExpr) Ops() map[string]bool {
	all := []string{"read", "write", "execute", "start", "end", "rename",
		"connect", "send", "receive"}
	out := make(map[string]bool)
	for _, op := range all {
		if o.matches(op) {
			out[op] = true
		}
	}
	return out
}

func (o *OpExpr) matches(op string) bool {
	switch {
	case o.Op != "":
		return o.Op == op
	case o.Not != nil:
		return !o.Not.matches(op)
	case o.And[0] != nil:
		return o.And[0].matches(op) && o.And[1].matches(op)
	case o.Or[0] != nil:
		return o.Or[0].matches(op) || o.Or[1].matches(op)
	}
	return false
}

// WindowKind distinguishes the ⟨wind⟩ alternatives.
type WindowKind uint8

// Window kinds.
const (
	WindRange  WindowKind = iota // from ... to ...
	WindAt                       // at t
	WindBefore                   // before t
	WindAfter                    // after t
	WindLast                     // last n unit
)

// Window is a time window filter.
type Window struct {
	Kind WindowKind
	From time.Time
	To   time.Time
	Dur  time.Duration // for WindLast
}

// RelationKind distinguishes the ⟨rel⟩ alternatives.
type RelationKind uint8

// Relation kinds.
const (
	RelBefore RelationKind = iota
	RelAfter
	RelWithin
	RelAttr
)

// Relation is one "with" constraint between patterns: a temporal order
// between two pattern IDs, or an attribute equation between entities.
type Relation struct {
	Kind RelationKind
	A, B string // pattern IDs for temporal kinds
	// Optional duration bounds for before/after/within ("[0-5 min]").
	LoDur, HiDur time.Duration
	HasDur       bool
	// Attr is the attribute relation expression for RelAttr.
	Attr relational.Expr
}

// Return is the projection clause.
type Return struct {
	Distinct bool
	Items    []Attr
}

// Attr is an attribute reference "entityID.attr"; Attr == "" means the
// default attribute of the entity (syntactic sugar).
type Attr struct {
	EntityID string
	Attr     string
}
