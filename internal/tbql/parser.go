package tbql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"threatraptor/internal/relational"
)

// opKeywords maps accepted operation keywords to their canonical form.
var opKeywords = map[string]string{
	"read": "read", "open": "read", "write": "write", "execute": "execute",
	"start": "start", "end": "end", "rename": "rename",
	"connect": "connect", "send": "send", "receive": "receive",
}

// Parse parses a TBQL query (Grammar 1).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("tbql: unexpected %q after query", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }
func (p *parser) advance()    { p.i++ }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) kw(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) peekKw(words ...string) bool {
	t := p.cur()
	if t.kind != tokIdent {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(t.text, w) {
			return true
		}
	}
	return false
}

func (p *parser) sym(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.sym(s) {
		return fmt.Errorf("tbql: expected %q, found %q at %d", s, p.cur().text, p.cur().pos)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("tbql: expected identifier, found %q at %d", t.text, t.pos)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	// Global filters: windows and attribute expressions before the first
	// pattern.
	for {
		switch {
		case p.peekKw("from", "at", "last"):
			w, err := p.parseWindow()
			if err != nil {
				return nil, err
			}
			q.GlobalWindow = w
		case p.peekKw("before", "after") && p.peek().kind == tokString:
			w, err := p.parseWindow()
			if err != nil {
				return nil, err
			}
			q.GlobalWindow = w
		case p.peekKw("file", "proc", "ip", "with", "return"):
			goto patterns
		case p.cur().kind == tokIdent:
			// Global attribute filter (e.g. hostname = "web01").
			e, err := p.parseAttrExpr()
			if err != nil {
				return nil, err
			}
			q.GlobalFilters = append(q.GlobalFilters, e)
		default:
			goto patterns
		}
	}
patterns:
	for p.peekKw("file", "proc", "ip") {
		patt, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, patt)
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("tbql: query must declare at least one pattern")
	}
	for p.kw("with") {
		for {
			rel, err := p.parseRelation()
			if err != nil {
				return nil, err
			}
			q.Relations = append(q.Relations, rel)
			if !p.sym(",") {
				break
			}
		}
	}
	if !p.kw("return") {
		return nil, fmt.Errorf("tbql: missing return clause at %d", p.cur().pos)
	}
	q.Return.Distinct = p.kw("distinct")
	for {
		a, err := p.parseReturnAttr()
		if err != nil {
			return nil, err
		}
		q.Return.Items = append(q.Return.Items, a)
		if !p.sym(",") {
			break
		}
	}
	return q, nil
}

func (p *parser) parsePattern() (*Pattern, error) {
	patt := &Pattern{}
	subj, err := p.parseEntity()
	if err != nil {
		return nil, err
	}
	patt.Subject = subj

	switch {
	case p.cur().kind == tokSymbol && (p.cur().text == "~>" || p.cur().text == "->"):
		path, op, err := p.parseOpPath()
		if err != nil {
			return nil, err
		}
		patt.Path, patt.Op = path, op
	default:
		op, err := p.parseOpExpr()
		if err != nil {
			return nil, err
		}
		patt.Op = op
	}

	obj, err := p.parseEntity()
	if err != nil {
		return nil, err
	}
	patt.Object = obj

	if p.kw("as") {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		patt.ID = id
		if p.sym("[") {
			e, err := p.parseAttrExpr()
			if err != nil {
				return nil, err
			}
			patt.IDFilter = e
			if err := p.expectSym("]"); err != nil {
				return nil, err
			}
		}
	}
	if p.peekKw("from", "at", "last") ||
		(p.peekKw("before", "after") && p.peek().kind == tokString) {
		w, err := p.parseWindow()
		if err != nil {
			return nil, err
		}
		patt.Window = w
	}
	return patt, nil
}

func (p *parser) parseEntity() (Entity, error) {
	var e Entity
	t := p.cur()
	switch {
	case p.kw("file"):
		e.Type = EntFile
	case p.kw("proc"):
		e.Type = EntProc
	case p.kw("ip"):
		e.Type = EntIP
	default:
		return e, fmt.Errorf("tbql: expected entity type (file/proc/ip), found %q at %d", t.text, t.pos)
	}
	id, err := p.ident()
	if err != nil {
		return e, err
	}
	e.ID = id
	if p.sym("[") {
		expr, err := p.parseAttrExpr()
		if err != nil {
			return e, err
		}
		e.Filter = expr
		if err := p.expectSym("]"); err != nil {
			return e, err
		}
	}
	return e, nil
}

// parseOpPath parses the ⟨op_path⟩ rule.
func (p *parser) parseOpPath() (*PathSpec, *OpExpr, error) {
	spec := &PathSpec{MinLen: 1, MaxLen: -1}
	switch {
	case p.sym("~>"):
		// defaults: arbitrary length
	case p.sym("->"):
		spec.MinLen, spec.MaxLen = 1, 1
	default:
		return nil, nil, fmt.Errorf("tbql: expected path operator at %d", p.cur().pos)
	}
	if p.sym("(") {
		spec.MinLen, spec.MaxLen = 1, -1
		sawLow := false
		if p.cur().kind == tokNumber {
			n, _ := strconv.Atoi(p.cur().text)
			p.advance()
			spec.MinLen = n
			spec.MaxLen = n
			sawLow = true
		}
		if p.sym("~") {
			spec.MaxLen = -1
			if p.cur().kind == tokNumber {
				m, _ := strconv.Atoi(p.cur().text)
				p.advance()
				spec.MaxLen = m
			}
			if !sawLow {
				spec.MinLen = 1
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, nil, err
		}
		if spec.MaxLen != -1 && spec.MaxLen < spec.MinLen {
			return nil, nil, fmt.Errorf("tbql: invalid path bounds (%d~%d)", spec.MinLen, spec.MaxLen)
		}
	}
	var op *OpExpr
	if p.sym("[") {
		e, err := p.parseOpExpr()
		if err != nil {
			return nil, nil, err
		}
		op = e
		if err := p.expectSym("]"); err != nil {
			return nil, nil, err
		}
	}
	return spec, op, nil
}

// Operation expression precedence: ||, &&, !, primary.
func (p *parser) parseOpExpr() (*OpExpr, error) {
	l, err := p.parseOpAnd()
	if err != nil {
		return nil, err
	}
	for p.sym("||") {
		r, err := p.parseOpAnd()
		if err != nil {
			return nil, err
		}
		l = &OpExpr{Or: [2]*OpExpr{l, r}}
	}
	return l, nil
}

func (p *parser) parseOpAnd() (*OpExpr, error) {
	l, err := p.parseOpUnary()
	if err != nil {
		return nil, err
	}
	for p.sym("&&") {
		r, err := p.parseOpUnary()
		if err != nil {
			return nil, err
		}
		l = &OpExpr{And: [2]*OpExpr{l, r}}
	}
	return l, nil
}

func (p *parser) parseOpUnary() (*OpExpr, error) {
	if p.sym("!") {
		e, err := p.parseOpUnary()
		if err != nil {
			return nil, err
		}
		return &OpExpr{Not: e}, nil
	}
	if p.sym("(") {
		e, err := p.parseOpExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSym(")")
	}
	t := p.cur()
	if t.kind == tokIdent {
		if canon, ok := opKeywords[strings.ToLower(t.text)]; ok {
			p.advance()
			return &OpExpr{Op: canon}, nil
		}
	}
	return nil, fmt.Errorf("tbql: expected operation keyword, found %q at %d", t.text, t.pos)
}

// parseAttrExpr parses the ⟨attr_exp⟩ rule into a relational.Expr. A bare
// value is represented as "= value" against the empty column name; the
// analyzer resolves it to the entity's default attribute.
func (p *parser) parseAttrExpr() (relational.Expr, error) {
	l, err := p.parseAttrAnd()
	if err != nil {
		return nil, err
	}
	for p.sym("||") {
		r, err := p.parseAttrAnd()
		if err != nil {
			return nil, err
		}
		l = relational.BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAttrAnd() (relational.Expr, error) {
	l, err := p.parseAttrUnary()
	if err != nil {
		return nil, err
	}
	for p.sym("&&") {
		r, err := p.parseAttrUnary()
		if err != nil {
			return nil, err
		}
		l = relational.BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAttrUnary() (relational.Expr, error) {
	if p.sym("!") {
		e, err := p.parseAttrUnary()
		if err != nil {
			return nil, err
		}
		return relational.UnOp{Op: "not", E: e}, nil
	}
	if p.sym("(") {
		e, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSym(")")
	}
	t := p.cur()
	switch t.kind {
	case tokString:
		// Bare value sugar: match against the default attribute.
		p.advance()
		return valueComparison(relational.ColRef{}, "=", relational.Str(t.text)), nil
	case tokNumber:
		p.advance()
		n, _ := strconv.ParseInt(t.text, 10, 64)
		return relational.BinOp{Op: "=", L: relational.ColRef{}, R: relational.Lit{V: relational.Int(n)}}, nil
	case tokIdent:
		attr, err := p.parseAttrRef()
		if err != nil {
			return nil, err
		}
		if p.kw("not") {
			if !p.kw("in") {
				return nil, fmt.Errorf("tbql: expected 'in' after 'not' at %d", p.cur().pos)
			}
			vals, err := p.parseValSet()
			if err != nil {
				return nil, err
			}
			return relational.InList{E: attr, Vals: vals, Negate: true}, nil
		}
		if p.kw("in") {
			vals, err := p.parseValSet()
			if err != nil {
				return nil, err
			}
			return relational.InList{E: attr, Vals: vals}, nil
		}
		for _, op := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
			if p.sym(op) {
				v, err := p.parseVal()
				if err != nil {
					return nil, err
				}
				if op == "!=" {
					op = "<>"
				}
				return valueComparison(attr, op, v), nil
			}
		}
		return nil, fmt.Errorf("tbql: expected comparison after attribute at %d", p.cur().pos)
	}
	return nil, fmt.Errorf("tbql: unexpected token %q at %d", t.text, t.pos)
}

// valueComparison maps '=' with a wildcard string to LIKE (and '<>' to NOT
// LIKE), keeping TBQL's "%" matching semantics.
func valueComparison(attr relational.ColRef, op string, v relational.Value) relational.Expr {
	lit := relational.Lit{V: v}
	if v.K == relational.KindString && strings.ContainsAny(v.S, "%_") {
		switch op {
		case "=":
			return relational.BinOp{Op: "like", L: attr, R: lit}
		case "<>":
			return relational.UnOp{Op: "not", E: relational.BinOp{Op: "like", L: attr, R: lit}}
		}
	}
	return relational.BinOp{Op: op, L: attr, R: lit}
}

func (p *parser) parseAttrRef() (relational.ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return relational.ColRef{}, err
	}
	if p.sym(".") {
		second, err := p.ident()
		if err != nil {
			return relational.ColRef{}, err
		}
		return relational.ColRef{Qualifier: first, Column: second}, nil
	}
	return relational.ColRef{Column: first}, nil
}

func (p *parser) parseVal() (relational.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return relational.Str(t.text), nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relational.Null(), err
		}
		return relational.Int(n), nil
	}
	return relational.Null(), fmt.Errorf("tbql: expected value, found %q at %d", t.text, t.pos)
}

func (p *parser) parseValSet() ([]relational.Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var vals []relational.Expr
	for {
		v, err := p.parseVal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, relational.Lit{V: v})
		if !p.sym(",") {
			break
		}
	}
	return vals, p.expectSym(")")
}

// Datetime layouts accepted in windows.
var dtLayouts = []string{
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	time.RFC3339,
}

func parseDatetime(s string) (time.Time, error) {
	for _, layout := range dtLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("tbql: cannot parse datetime %q", s)
}

func (p *parser) datetime() (time.Time, error) {
	t := p.cur()
	if t.kind != tokString {
		return time.Time{}, fmt.Errorf("tbql: expected quoted datetime, found %q at %d", t.text, t.pos)
	}
	p.advance()
	return parseDatetime(t.text)
}

func (p *parser) parseWindow() (*Window, error) {
	switch {
	case p.kw("from"):
		from, err := p.datetime()
		if err != nil {
			return nil, err
		}
		if !p.kw("to") {
			return nil, fmt.Errorf("tbql: expected 'to' in window at %d", p.cur().pos)
		}
		to, err := p.datetime()
		if err != nil {
			return nil, err
		}
		return &Window{Kind: WindRange, From: from, To: to}, nil
	case p.kw("at"):
		t, err := p.datetime()
		if err != nil {
			return nil, err
		}
		return &Window{Kind: WindAt, From: t}, nil
	case p.kw("before"):
		t, err := p.datetime()
		if err != nil {
			return nil, err
		}
		return &Window{Kind: WindBefore, To: t}, nil
	case p.kw("after"):
		t, err := p.datetime()
		if err != nil {
			return nil, err
		}
		return &Window{Kind: WindAfter, From: t}, nil
	case p.kw("last"):
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("tbql: expected number after 'last' at %d", t.pos)
		}
		p.advance()
		n, _ := strconv.Atoi(t.text)
		unit, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		return &Window{Kind: WindLast, Dur: time.Duration(n) * unit}, nil
	}
	return nil, fmt.Errorf("tbql: expected window at %d", p.cur().pos)
}

func (p *parser) parseUnit() (time.Duration, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return 0, fmt.Errorf("tbql: expected time unit, found %q at %d", t.text, t.pos)
	}
	p.advance()
	switch strings.ToLower(t.text) {
	case "sec", "second", "seconds", "s":
		return time.Second, nil
	case "min", "minute", "minutes", "m":
		return time.Minute, nil
	case "hour", "hours", "h":
		return time.Hour, nil
	case "day", "days", "d":
		return 24 * time.Hour, nil
	case "ms", "millisecond", "milliseconds":
		return time.Millisecond, nil
	}
	return 0, fmt.Errorf("tbql: unknown time unit %q at %d", t.text, t.pos)
}

func (p *parser) parseRelation() (Relation, error) {
	var rel Relation
	first, err := p.ident()
	if err != nil {
		return rel, err
	}
	if p.sym(".") {
		// Attribute relation: attr bop attr.
		second, err := p.ident()
		if err != nil {
			return rel, err
		}
		left := relational.ColRef{Qualifier: first, Column: second}
		var op string
		for _, o := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
			if p.sym(o) {
				op = o
				break
			}
		}
		if op == "" {
			return rel, fmt.Errorf("tbql: expected comparison in attribute relation at %d", p.cur().pos)
		}
		if op == "!=" {
			op = "<>"
		}
		right, err := p.parseAttrRef()
		if err != nil {
			return rel, err
		}
		rel.Kind = RelAttr
		rel.Attr = relational.BinOp{Op: op, L: left, R: right}
		return rel, nil
	}
	rel.A = first
	switch {
	case p.kw("before"):
		rel.Kind = RelBefore
	case p.kw("after"):
		rel.Kind = RelAfter
	case p.kw("within"):
		rel.Kind = RelWithin
	default:
		return rel, fmt.Errorf("tbql: expected before/after/within at %d", p.cur().pos)
	}
	if p.sym("[") {
		lo := p.cur()
		if lo.kind != tokNumber {
			return rel, fmt.Errorf("tbql: expected number in duration range at %d", lo.pos)
		}
		p.advance()
		if err := p.expectSym("-"); err != nil {
			return rel, err
		}
		hi := p.cur()
		if hi.kind != tokNumber {
			return rel, fmt.Errorf("tbql: expected number in duration range at %d", hi.pos)
		}
		p.advance()
		unit, err := p.parseUnit()
		if err != nil {
			return rel, err
		}
		loN, _ := strconv.Atoi(lo.text)
		hiN, _ := strconv.Atoi(hi.text)
		if hiN < loN {
			return rel, fmt.Errorf("tbql: invalid duration range [%d-%d]", loN, hiN)
		}
		rel.LoDur = time.Duration(loN) * unit
		rel.HiDur = time.Duration(hiN) * unit
		rel.HasDur = true
		if err := p.expectSym("]"); err != nil {
			return rel, err
		}
	}
	b, err := p.ident()
	if err != nil {
		return rel, err
	}
	rel.B = b
	return rel, nil
}

func (p *parser) parseReturnAttr() (Attr, error) {
	id, err := p.ident()
	if err != nil {
		return Attr{}, err
	}
	a := Attr{EntityID: id}
	if p.sym(".") {
		attr, err := p.ident()
		if err != nil {
			return Attr{}, err
		}
		a.Attr = attr
	}
	return a, nil
}
