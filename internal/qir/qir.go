// Package qir defines ThreatRaptor's shared logical-plan intermediate
// representation. TBQL analysis lowers each behavior-query pattern into
// one typed DataQuery — scans with predicate trees, symbolic time-window
// constraints, and path-pattern shapes — and both storage backends consume
// that IR directly: the relational engine lowers it to its physical
// nested-loop/vectorized plan, the graph engine to its traversal plan.
// Nothing on the execution path renders SQL or Cypher text or invokes a
// query parser; the text generators survive only behind EXPLAIN.
//
// Execution-time values that vary between runs of one compiled plan — the
// scheduler's entity binding sets and the standing-query delta floor — are
// not part of the IR. They occupy the three well-known parameter slots
// below and are bound per execution through relational.Params and
// graphdb.ExecParams.
package qir

import (
	"fmt"
	"strings"

	"threatraptor/internal/audit"
	"threatraptor/internal/relational"
)

// The parameter slots every lowered data query may use. Subject and
// object slots carry sorted unique entity-ID lists; the delta slot carries
// the standing-query event-ID floor.
const (
	SlotSubjIDs = 0 // subject entity binding set
	SlotObjIDs  = 1 // object entity binding set
	SlotDelta   = 2 // minimum event ID (delta join floor)
)

// WindowKind distinguishes how a window's bounds resolve.
type WindowKind uint8

// Window kinds. Only WindRange is independent of the store's time bounds;
// the others are bounds-sensitive, and plans compiled from them must be
// re-lowered when a live append moves the bounds.
const (
	WindRange  WindowKind = iota // fixed [FromUS, ToUS]
	WindBefore                   // [store min, ToUS]
	WindAfter                    // [FromUS, store max]
	WindLast                     // [store max - DurUS, store max]
)

// Window is a symbolic time-window constraint on an event pattern's
// start_time, in µs since epoch.
type Window struct {
	Kind   WindowKind
	FromUS int64
	ToUS   int64
	DurUS  int64
}

// Sensitive reports whether the window's bounds depend on the store's
// min/max event time.
func (w *Window) Sensitive() bool { return w != nil && w.Kind != WindRange }

// Bounds resolves the window against the store's time bounds.
func (w *Window) Bounds(minUS, maxUS int64) (lo, hi int64) {
	switch w.Kind {
	case WindRange:
		return w.FromUS, w.ToUS
	case WindBefore:
		return minUS, w.ToUS
	case WindAfter:
		return w.FromUS, maxUS
	case WindLast:
		return maxUS - w.DurUS, maxUS
	}
	return minUS, maxUS
}

// DataQuery is the logical plan of one TBQL pattern's data query. Exactly
// one of Event and Path is set.
type DataQuery struct {
	// PatternID is the TBQL pattern identifier the query was lowered from.
	PatternID string
	Event     *EventJoin
	Path      *PathMatch
}

// UsesGraph reports whether the query lowers to the graph backend.
func (q *DataQuery) UsesGraph() bool { return q.Path != nil }

// Window returns the query's time-window constraint (nil when none).
func (q *DataQuery) Window() *Window {
	if q.Event != nil {
		return q.Event.Window
	}
	return q.Path.Window
}

// EventJoin is the logical plan of an event pattern: the event scan joined
// to its subject and object entities on the outer-column bindings
// e.subject_id = s.id and e.object_id = o.id, with per-input predicate
// trees. Predicates use unqualified logical attribute names; backend
// lowering qualifies and maps them to physical columns.
type EventJoin struct {
	// SubjPred / ObjPred filter the subject / object entity (nil = true).
	SubjPred relational.Expr
	ObjPred  relational.Expr
	// ObjKind is the object's entity-kind literal (the subject is always
	// a process).
	ObjKind string
	// Ops constrains the event operation, sorted; nil = any operation.
	Ops []string
	// EventPred filters event attributes (canonical column names over the
	// event scan; nil = true).
	EventPred relational.Expr
	// Window bounds the event start_time (nil = none).
	Window *Window
	// SubjConjuncts / ObjConjuncts count declared constraints per side —
	// the selectivity estimate behind the join-anchor choice.
	SubjConjuncts int
	ObjConjuncts  int
}

// PathMatch is the logical plan of a path pattern (including single-hop
// patterns routed to the graph backend): a variable-length traversal from
// the subject process to the object, optionally ending in a typed hop that
// binds the event variable.
type PathMatch struct {
	// MinLen / MaxLen bound the hop count; MaxLen == -1 means unbounded.
	MinLen int
	MaxLen int
	// Ops types the final hop, sorted; nil = any. A typed final hop (or a
	// single-hop pattern) binds the event edge variable.
	Ops []string
	// ObjKind selects the object node's entity kind (label).
	ObjKind audit.EntityKind
	// SubjPred / ObjPred / EdgePred filter the endpoints and the bound
	// event edge (nil = true). EdgePred applies only when HasEdgeVar.
	SubjPred relational.Expr
	ObjPred  relational.Expr
	EdgePred relational.Expr
	// Window bounds the final hop's start_time; applies only when
	// HasEdgeVar (an untyped multi-hop traversal binds no event).
	Window *Window
	// HasEdgeVar reports whether the traversal binds an event edge
	// variable (and so returns event ID and times alongside endpoints).
	HasEdgeVar bool
}

// String renders the IR for EXPLAIN output.
func (q *DataQuery) String() string {
	var sb strings.Builder
	if q.Event != nil {
		e := q.Event
		fmt.Fprintf(&sb, "event_join %s {\n", q.PatternID)
		fmt.Fprintf(&sb, "  scan events e join entities s on e.subject_id = s.id [param s.id in ?subj]\n")
		fmt.Fprintf(&sb, "                join entities o on e.object_id = o.id [param o.id in ?obj]\n")
		fmt.Fprintf(&sb, "  s: kind = proc%s\n", predSuffix(e.SubjPred))
		fmt.Fprintf(&sb, "  o: kind = %s%s\n", e.ObjKind, predSuffix(e.ObjPred))
		fmt.Fprintf(&sb, "  e: op in %s%s [param e.id >= ?delta]\n", opsString(e.Ops), predSuffix(e.EventPred))
		if e.Window != nil {
			fmt.Fprintf(&sb, "  window: %s\n", e.Window)
		}
		fmt.Fprintf(&sb, "  anchor scores: subj=%d obj=%d\n}", e.SubjConjuncts, e.ObjConjuncts)
		return sb.String()
	}
	p := q.Path
	fmt.Fprintf(&sb, "path_match %s {\n", q.PatternID)
	hi := "∞"
	if p.MaxLen >= 0 {
		hi = fmt.Sprintf("%d", p.MaxLen)
	}
	fmt.Fprintf(&sb, "  traverse proc -> %s, hops %d..%s, final op in %s, edge var: %v\n",
		p.ObjKind, p.MinLen, hi, opsString(p.Ops), p.HasEdgeVar)
	fmt.Fprintf(&sb, "  s: kind = proc%s [param s.id in ?subj]\n", predSuffix(p.SubjPred))
	fmt.Fprintf(&sb, "  o: kind = %s%s [param o.id in ?obj]\n", p.ObjKind, predSuffix(p.ObjPred))
	if p.HasEdgeVar {
		fmt.Fprintf(&sb, "  e:%s [param e.id >= ?delta]\n", predSuffix(p.EdgePred))
	}
	if p.Window != nil {
		fmt.Fprintf(&sb, "  window: %s\n", p.Window)
	}
	sb.WriteString("}")
	return sb.String()
}

func (w *Window) String() string {
	switch w.Kind {
	case WindRange:
		return fmt.Sprintf("start_time in [%d, %d]", w.FromUS, w.ToUS)
	case WindBefore:
		return fmt.Sprintf("start_time in [store_min, %d]", w.ToUS)
	case WindAfter:
		return fmt.Sprintf("start_time in [%d, store_max]", w.FromUS)
	case WindLast:
		return fmt.Sprintf("start_time in [store_max - %dus, store_max]", w.DurUS)
	}
	return "unbounded"
}

func opsString(ops []string) string {
	if len(ops) == 0 {
		return "(any)"
	}
	return "(" + strings.Join(ops, "|") + ")"
}

func predSuffix(e relational.Expr) string {
	if e == nil {
		return ""
	}
	return " ∧ " + ExprString(e)
}

// ExprString renders a predicate tree in a neutral infix syntax for
// EXPLAIN output.
func ExprString(e relational.Expr) string {
	switch v := e.(type) {
	case relational.ColRef:
		if v.Qualifier != "" {
			return v.Qualifier + "." + v.Column
		}
		return v.Column
	case relational.Lit:
		if v.V.K == relational.KindString {
			return "'" + v.V.S + "'"
		}
		return v.V.String()
	case relational.Param:
		return fmt.Sprintf("?%d", v.Slot)
	case relational.ParamIDs:
		return fmt.Sprintf("%s in ?list%d", ExprString(v.E), v.Slot)
	case relational.UnOp:
		return "not (" + ExprString(v.E) + ")"
	case relational.InList:
		vals := make([]string, len(v.Vals))
		for i, x := range v.Vals {
			vals[i] = ExprString(x)
		}
		neg := ""
		if v.Negate {
			neg = "not "
		}
		return ExprString(v.E) + " " + neg + "in (" + strings.Join(vals, ", ") + ")"
	case relational.BinOp:
		return "(" + ExprString(v.L) + " " + v.Op + " " + ExprString(v.R) + ")"
	}
	return fmt.Sprintf("%v", e)
}
