package reduction

import (
	"math"
	"sort"

	"threatraptor/internal/audit"
)

// Streamer applies the data-reduction merge over a sliding watermark
// window, for live ingestion where the log never "finishes". Arriving
// events are buffered until the watermark (max observed start time minus an
// allowed lateness) passes them, then merged with exactly the batch Reduce
// algorithm; merged events are sealed — emitted as immutable output — once
// no event that respects the lateness bound could still merge into them.
//
// For an event stream whose arrival order matches start-time order (the
// normal shape of an audit log), Observe/Seal batches followed by a final
// Flush produce byte-for-byte the same event sequence as one batch
// Reduce over the concatenated log. Events later than the lateness bound
// are still ingested, but may stay unmerged where the batch run would have
// merged them.
type Streamer struct {
	cfg Config
	// latenessUS is how far behind the max observed start time the
	// watermark trails. Events arriving with a start time older than the
	// watermark are "too late": still processed, but without the ordering
	// guarantee that makes streaming merges match batch merges.
	latenessUS int64

	// arrivals buffers observed events not yet passed by the watermark,
	// in arrival order (the stable-sort tiebreak of batch Reduce).
	arrivals []audit.Event
	// pending holds merged events awaiting seal, in processing order.
	pending []audit.Event
	// open maps a (subject, object, op) key to the index in pending of
	// the last mergeable event for that key, exactly like batch Reduce.
	open map[mergeKey]int
	// maxSeen is the largest start time observed.
	maxSeen int64
}

// NewStreamer returns a streaming reducer. latenessUS below the merge
// threshold is raised to it: an event can attract merges for a full
// threshold after its end, so sealing earlier would diverge from batch
// reduction even for perfectly ordered streams.
func NewStreamer(cfg Config, latenessUS int64) *Streamer {
	if latenessUS < cfg.ThresholdUS {
		latenessUS = cfg.ThresholdUS
	}
	return &Streamer{cfg: cfg, latenessUS: latenessUS, open: make(map[mergeKey]int)}
}

// Observe buffers newly arrived events (IDs are ignored; Seal output is
// re-numbered by the caller) and advances the watermark clock.
func (st *Streamer) Observe(evs []audit.Event) {
	for i := range evs {
		if evs[i].StartTime > st.maxSeen {
			st.maxSeen = evs[i].StartTime
		}
	}
	st.arrivals = append(st.arrivals, evs...)
}

// Watermark returns the current watermark: events at or before it are
// eligible for merging, and merged events ending a threshold before it are
// sealed.
func (st *Streamer) Watermark() int64 {
	return st.maxSeen - st.latenessUS
}

// Pending reports how many events are buffered (arrived but unsealed).
func (st *Streamer) Pending() int { return len(st.arrivals) + len(st.pending) }

// Seal advances the pipeline to the current watermark and returns the
// newly sealed (immutable) merged events, in the exact order and with the
// same merge decisions batch Reduce would make. Returned events carry ID 0;
// the caller assigns store IDs sequentially.
func (st *Streamer) Seal() []audit.Event {
	return st.sealTo(st.Watermark())
}

// Flush seals everything regardless of the watermark — the end-of-stream
// (or end-of-test) barrier that makes streamed output equal batch output.
func (st *Streamer) Flush() []audit.Event {
	return st.sealTo(math.MaxInt64)
}

func (st *Streamer) sealTo(w int64) []audit.Event {
	// Move the arrivals the watermark has passed into the merge stage, in
	// start-time order with arrival-order tiebreak (matching the stable
	// sort of batch Reduce). Both sides keep their relative order; kept
	// aliases the arrivals prefix, which is safe because its write index
	// never passes the read index.
	var due []audit.Event
	kept := st.arrivals[:0]
	for _, ev := range st.arrivals {
		if ev.StartTime <= w {
			due = append(due, ev)
		} else {
			kept = append(kept, ev)
		}
	}
	st.arrivals = kept
	sort.SliceStable(due, func(a, b int) bool { return due[a].StartTime < due[b].StartTime })
	for i := range due {
		st.pending = mergeStep(st.pending, st.open, due[i], st.cfg.ThresholdUS)
	}

	// Seal the longest pending prefix that can no longer attract a merge:
	// any future in-lateness event starts at or after w, so a pending
	// event whose merge window (EndTime + threshold) ends before w is
	// final. Prefix-only sealing keeps ID assignment in processing order.
	n := 0
	for n < len(st.pending) {
		ev := &st.pending[n]
		if w != math.MaxInt64 && ev.EndTime+st.cfg.ThresholdUS >= w {
			break
		}
		n++
	}
	if n == 0 {
		return nil
	}
	sealed := make([]audit.Event, n)
	copy(sealed, st.pending[:n])
	for i := range sealed {
		sealed[i].ID = 0 // provisional parser IDs are meaningless here
	}
	st.pending = st.pending[n:]
	// Drop open chains that pointed into the sealed prefix and shift the
	// survivors down.
	for key, pos := range st.open {
		if pos < n {
			delete(st.open, key)
		} else {
			st.open[key] = pos - n
		}
	}
	return sealed
}
