package reduction

import (
	"math/rand"
	"testing"

	"threatraptor/internal/audit"
)

// randomOrderedEvents builds an event sequence in nondecreasing start-time
// order with clustered repeats, the shape that makes reduction merge.
func randomOrderedEvents(rng *rand.Rand, n int) []audit.Event {
	evs := make([]audit.Event, n)
	now := int64(1_000_000)
	for i := range evs {
		now += rng.Int63n(600_000) // 0–0.6 s advance: some gaps merge, some don't
		dur := rng.Int63n(50_000)
		fail := 0
		if rng.Intn(20) == 0 {
			fail = 5
		}
		evs[i] = audit.Event{
			ID:          int64(i + 1),
			SubjectID:   int64(1 + rng.Intn(3)),
			ObjectID:    int64(10 + rng.Intn(4)),
			Op:          audit.OpType(1 + rng.Intn(3)),
			StartTime:   now,
			EndTime:     now + dur,
			DataAmount:  rng.Int63n(4096),
			FailureCode: fail,
		}
	}
	return evs
}

// TestStreamerMatchesBatchReduce is the core streaming-reduction property:
// observing an ordered log in chunks and sealing per chunk, then flushing,
// yields exactly the batch Reduce output (same merges, same order, same
// times and amounts).
func TestStreamerMatchesBatchReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		evs := randomOrderedEvents(rng, n)

		batchLog := &audit.Log{Entities: audit.NewEntityTable(), Events: append([]audit.Event(nil), evs...)}
		Reduce(batchLog, DefaultConfig())

		st := NewStreamer(DefaultConfig(), 0)
		var streamed []audit.Event
		chunk := 1 + rng.Intn(50)
		for lo := 0; lo < len(evs); lo += chunk {
			hi := lo + chunk
			if hi > len(evs) {
				hi = len(evs)
			}
			st.Observe(evs[lo:hi])
			streamed = append(streamed, st.Seal()...)
		}
		streamed = append(streamed, st.Flush()...)

		if len(streamed) != len(batchLog.Events) {
			t.Fatalf("trial %d (n=%d chunk=%d): streamed %d events, batch %d",
				trial, n, chunk, len(streamed), len(batchLog.Events))
		}
		for i := range streamed {
			got, want := streamed[i], batchLog.Events[i]
			got.ID = want.ID // streamer output is un-numbered by contract
			if got != want {
				t.Fatalf("trial %d event %d:\n got %+v\nwant %+v", trial, i, got, want)
			}
		}
		if st.Pending() != 0 {
			t.Fatalf("trial %d: %d events left pending after Flush", trial, st.Pending())
		}
	}
}

// TestStreamerSealIsImmutable verifies the watermark contract: an event is
// sealed only once no in-lateness arrival can merge into it, so a
// just-inside-the-window late event still merges, while sealed output never
// changes.
func TestStreamerSealIsImmutable(t *testing.T) {
	cfg := Config{ThresholdUS: 1_000_000}
	st := NewStreamer(cfg, 1_000_000)

	ev := func(start, end int64) audit.Event {
		return audit.Event{SubjectID: 1, ObjectID: 2, Op: audit.OpRead, StartTime: start, EndTime: end, DataAmount: 1}
	}
	st.Observe([]audit.Event{ev(0, 100)})
	if got := st.Seal(); len(got) != 0 {
		t.Fatalf("event inside the merge window sealed early: %v", got)
	}
	// A second event 0.5 s later merges into the still-pending first.
	st.Observe([]audit.Event{ev(500_100, 500_200)})
	if got := st.Seal(); len(got) != 0 {
		t.Fatalf("merged event sealed while still mergeable: %v", got)
	}
	// Advancing the clock far past the merge window seals the merged pair.
	st.Observe([]audit.Event{ev(9_000_000, 9_000_010)})
	sealed := st.Seal()
	if len(sealed) != 1 {
		t.Fatalf("sealed %d events, want 1", len(sealed))
	}
	if sealed[0].StartTime != 0 || sealed[0].EndTime != 500_200 || sealed[0].DataAmount != 2 {
		t.Fatalf("sealed event is not the merged pair: %+v", sealed[0])
	}
	rest := st.Flush()
	if len(rest) != 1 || rest[0].StartTime != 9_000_000 {
		t.Fatalf("flush = %+v, want the clock event", rest)
	}
}

// TestStreamerWatermark checks the watermark arithmetic and the lateness
// floor at the merge threshold.
func TestStreamerWatermark(t *testing.T) {
	st := NewStreamer(Config{ThresholdUS: 1_000_000}, 0) // lateness raised to threshold
	st.Observe([]audit.Event{{StartTime: 5_000_000, EndTime: 5_000_000}})
	if got := st.Watermark(); got != 4_000_000 {
		t.Fatalf("watermark = %d, want 4000000", got)
	}
}
