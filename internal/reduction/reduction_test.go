package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threatraptor/internal/audit"
)

// buildLog makes a log with one process and one file plus the given events.
func buildLog(events []audit.Event) *audit.Log {
	log := audit.NewLog()
	p := log.Entities.Intern(audit.NewProcessEntity(1, "/bin/tar", "root", "root", ""))
	f := log.Entities.Intern(audit.NewFileEntity("/etc/passwd", "root", "root"))
	for _, ev := range events {
		if ev.SubjectID == 0 {
			ev.SubjectID = p.ID
		}
		if ev.ObjectID == 0 {
			ev.ObjectID = f.ID
		}
		log.Append(ev)
	}
	return log
}

func TestReduceMergesAdjacentSameKeyEvents(t *testing.T) {
	log := buildLog([]audit.Event{
		{Op: audit.OpRead, StartTime: 0, EndTime: 100, DataAmount: 4096},
		{Op: audit.OpRead, StartTime: 200, EndTime: 300, DataAmount: 4096},
		{Op: audit.OpRead, StartTime: 400, EndTime: 500, DataAmount: 1808},
	})
	res := Reduce(log, Config{ThresholdUS: 1_000_000})
	if res.After != 1 {
		t.Fatalf("after = %d, want 1", res.After)
	}
	ev := log.Events[0]
	if ev.StartTime != 0 || ev.EndTime != 500 {
		t.Errorf("merged window = [%d,%d], want [0,500]", ev.StartTime, ev.EndTime)
	}
	if ev.DataAmount != 4096+4096+1808 {
		t.Errorf("merged data = %d", ev.DataAmount)
	}
	if res.ReductionFactor() != 3 {
		t.Errorf("factor = %v, want 3", res.ReductionFactor())
	}
}

func TestReduceRespectsThreshold(t *testing.T) {
	log := buildLog([]audit.Event{
		{Op: audit.OpRead, StartTime: 0, EndTime: 100, DataAmount: 1},
		{Op: audit.OpRead, StartTime: 2_000_000, EndTime: 2_000_100, DataAmount: 1},
	})
	res := Reduce(log, Config{ThresholdUS: 1_000_000})
	if res.After != 2 {
		t.Fatalf("events beyond the threshold must not merge; after = %d", res.After)
	}
}

func TestReduceDoesNotMergeAcrossOps(t *testing.T) {
	log := buildLog([]audit.Event{
		{Op: audit.OpRead, StartTime: 0, EndTime: 10, DataAmount: 1},
		{Op: audit.OpWrite, StartTime: 20, EndTime: 30, DataAmount: 1},
		{Op: audit.OpRead, StartTime: 40, EndTime: 50, DataAmount: 1},
	})
	res := Reduce(log, DefaultConfig())
	// read(0) and read(40) share a key and are within threshold: the paper's
	// criteria compare each event to the previous mergeable event of the
	// same key, so they merge even with an interleaved write.
	if res.After != 2 {
		t.Fatalf("after = %d, want 2 (merged reads + write)", res.After)
	}
}

func TestReduceDoesNotMergeAcrossEntities(t *testing.T) {
	log := audit.NewLog()
	p := log.Entities.Intern(audit.NewProcessEntity(1, "/bin/tar", "", "", ""))
	f1 := log.Entities.Intern(audit.NewFileEntity("/a", "", ""))
	f2 := log.Entities.Intern(audit.NewFileEntity("/b", "", ""))
	log.Append(audit.Event{SubjectID: p.ID, ObjectID: f1.ID, Op: audit.OpRead, StartTime: 0, EndTime: 1})
	log.Append(audit.Event{SubjectID: p.ID, ObjectID: f2.ID, Op: audit.OpRead, StartTime: 2, EndTime: 3})
	if res := Reduce(log, DefaultConfig()); res.After != 2 {
		t.Fatalf("after = %d, want 2", res.After)
	}
}

func TestReducePreservesFailedEvents(t *testing.T) {
	log := buildLog([]audit.Event{
		{Op: audit.OpRead, StartTime: 0, EndTime: 10, DataAmount: 1},
		{Op: audit.OpRead, StartTime: 20, EndTime: 30, DataAmount: 1, FailureCode: -13},
		{Op: audit.OpRead, StartTime: 40, EndTime: 50, DataAmount: 1},
	})
	res := Reduce(log, DefaultConfig())
	if res.After != 3 {
		t.Fatalf("failed events must survive reduction; after = %d", res.After)
	}
}

func TestReduceOutOfOrderInput(t *testing.T) {
	log := buildLog([]audit.Event{
		{Op: audit.OpRead, StartTime: 400, EndTime: 500, DataAmount: 1},
		{Op: audit.OpRead, StartTime: 0, EndTime: 100, DataAmount: 1},
		{Op: audit.OpRead, StartTime: 200, EndTime: 300, DataAmount: 1},
	})
	res := Reduce(log, DefaultConfig())
	if res.After != 1 {
		t.Fatalf("reduction must sort by start time; after = %d", res.After)
	}
}

func TestReduceEmptyLog(t *testing.T) {
	log := audit.NewLog()
	res := Reduce(log, DefaultConfig())
	if res.Before != 0 || res.After != 0 || res.ReductionFactor() != 1 {
		t.Fatalf("empty log result = %+v", res)
	}
}

func TestReduceReassignsDenseIDs(t *testing.T) {
	log := buildLog([]audit.Event{
		{Op: audit.OpRead, StartTime: 0, EndTime: 1, DataAmount: 1},
		{Op: audit.OpRead, StartTime: 2, EndTime: 3, DataAmount: 1},
		{Op: audit.OpWrite, StartTime: 9_000_000, EndTime: 9_000_001, DataAmount: 1},
	})
	Reduce(log, DefaultConfig())
	for i, ev := range log.Events {
		if ev.ID != int64(i+1) {
			t.Fatalf("event %d has ID %d, want %d", i, ev.ID, i+1)
		}
	}
}

// Property: reduction preserves total data amount and never increases the
// event count; output start times are sorted.
func TestReduceInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]audit.Event, 0, n)
		tcur := int64(0)
		for i := 0; i < int(n); i++ {
			tcur += rng.Int63n(2_000_000)
			events = append(events, audit.Event{
				Op:         audit.OpType(1 + rng.Intn(2)), // read or write
				StartTime:  tcur,
				EndTime:    tcur + rng.Int63n(1000),
				DataAmount: rng.Int63n(8192),
			})
		}
		log := buildLog(events)
		var before int64
		for _, ev := range log.Events {
			before += ev.DataAmount
		}
		res := Reduce(log, DefaultConfig())
		var after int64
		last := int64(-1)
		for _, ev := range log.Events {
			after += ev.DataAmount
			if ev.StartTime < last {
				return false
			}
			last = ev.StartTime
		}
		return after == before && res.After <= res.Before && res.After == len(log.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReduceSimulatedWorkload(t *testing.T) {
	// A simulator-produced log of chunked transfers should reduce well;
	// the paper reports high reduction for file manipulations/transfers.
	s := audit.NewSimulator(99, 0)
	p := audit.Proc{PID: 1, Exe: "/bin/dd", User: "root"}
	for i := 0; i < 10; i++ {
		s.ReadFile(p, "/data/blob", 64*1024) // 16 chunks each
	}
	parser := audit.NewParser()
	for _, r := range s.Records() {
		if err := parser.Feed(&r); err != nil {
			t.Fatal(err)
		}
	}
	log := parser.Log()
	res := Reduce(log, DefaultConfig())
	if res.Before != 160 {
		t.Fatalf("before = %d, want 160", res.Before)
	}
	if res.After != 1 {
		t.Fatalf("after = %d, want 1 (all chunks within 1s)", res.After)
	}
}
