// Package reduction merges excessive system events before storage,
// following Section III-B of the ThreatRaptor paper (inspired by Xu et al.,
// "High fidelity data reduction for big data security dependency analyses",
// CCS 2016).
//
// The OS finishes a logical read/write task by distributing the data over
// multiple system calls, so audit logs contain many near-duplicate events
// between the same entity pair. Two events e1(u1,v1) and e2(u2,v2) with e1
// before e2 are merged when:
//
//	u1 == u2 && v1 == v2 && e1.Op == e2.Op &&
//	0 <= e2.StartTime - e1.EndTime <= threshold
//
// The merged event keeps e1's start time, e2's end time, and the summed
// data amount.
package reduction

import (
	"sort"

	"threatraptor/internal/audit"
)

// Config controls reduction behaviour.
type Config struct {
	// ThresholdUS is the maximum gap, in µs, between the end of one event
	// and the start of the next for them to merge. The paper chose 1 second
	// after experimenting with different thresholds.
	ThresholdUS int64
}

// DefaultConfig returns the paper's chosen configuration (1 s threshold).
func DefaultConfig() Config { return Config{ThresholdUS: 1_000_000} }

// Result summarizes one reduction run.
type Result struct {
	Before  int
	After   int
	Dropped int // Before - After
}

// ReductionFactor returns Before/After (1.0 when nothing merged).
func (r Result) ReductionFactor() float64 {
	if r.After == 0 {
		return 1
	}
	return float64(r.Before) / float64(r.After)
}

type mergeKey struct {
	subj, obj int64
	op        audit.OpType
}

// Reduce merges the events of log in place according to cfg and returns the
// summary. Event ordering by start time is preserved in the output, and
// failed events (FailureCode != 0) are never merged so that failure
// information survives reduction.
func Reduce(log *audit.Log, cfg Config) Result {
	before := len(log.Events)
	if before == 0 {
		return Result{}
	}

	// Process in start-time order; sort a copy of indexes to keep stability.
	idx := make([]int, before)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return log.Events[idx[a]].StartTime < log.Events[idx[b]].StartTime
	})

	// open holds, per (subject, object, op), the position in out of the
	// last mergeable event.
	open := make(map[mergeKey]int)
	out := make([]audit.Event, 0, before)

	for _, i := range idx {
		out = mergeStep(out, open, log.Events[i], cfg.ThresholdUS)
	}

	// Reassign sequential IDs so downstream storage sees a dense space.
	for i := range out {
		out[i].ID = int64(i + 1)
	}
	log.Events = out
	return Result{Before: before, After: len(out), Dropped: before - len(out)}
}

// mergeStep applies one event (in start-time order) to the merge state:
// out is the merged output so far, open maps each key to the position in
// out of its last mergeable event. This single function IS the paper's
// merge rule; the batch Reduce and the streaming Streamer both call it,
// so their outputs cannot diverge by construction.
func mergeStep(out []audit.Event, open map[mergeKey]int, ev audit.Event, thresholdUS int64) []audit.Event {
	key := mergeKey{ev.SubjectID, ev.ObjectID, ev.Op}
	if ev.FailureCode == 0 {
		if pos, ok := open[key]; ok {
			prev := &out[pos]
			gap := ev.StartTime - prev.EndTime
			if gap >= 0 && gap <= thresholdUS {
				prev.EndTime = ev.EndTime
				prev.DataAmount += ev.DataAmount
				return out
			}
		}
	}
	out = append(out, ev)
	if ev.FailureCode == 0 {
		open[key] = len(out) - 1
	} else {
		// A failed event breaks the merge chain for its key.
		delete(open, key)
	}
	return out
}
