package openie

import (
	"strings"

	"threatraptor/internal/nlp"
)

// ClauseIE is the Stanford-Open-IE-style baseline: it splits sentences
// into clauses at coordinations, commas, and relative pronouns, then emits
// one triple per clause verb using the nearest noun phrases on each side.
// All noun phrases become entity candidates.
type ClauseIE struct {
	pipe    *nlp.Pipeline
	protect bool
}

// NewClauseIE returns the clause-splitting baseline; protect toggles the
// "+ IOC Protection" variant.
func NewClauseIE(protect bool) *ClauseIE {
	return &ClauseIE{pipe: nlp.NewPipeline(), protect: protect}
}

// Name identifies the baseline in reports.
func (c *ClauseIE) Name() string {
	if c.protect {
		return "Stanford Open IE + IOC Protection"
	}
	return "Stanford Open IE"
}

// Extract runs the baseline over a document.
func (c *ClauseIE) Extract(text string) Output {
	toks := prepTokens(text, c.protect)
	sents := c.pipe.SplitSentencesTokens(toks)
	var out Output
	seenEnt := make(map[string]bool)
	for _, s := range sents {
		c.pipe.TagTokens(s.Tokens)
		for i := range s.Tokens {
			s.Tokens[i].Lemma = nlp.Lemma(s.Tokens[i].Text, s.Tokens[i].POS)
		}
		for _, clause := range splitClauses(s.Tokens) {
			for _, e := range npSpans(clause) {
				if !seenEnt[e] {
					seenEnt[e] = true
					out.Entities = append(out.Entities, e)
				}
			}
			out.Triples = append(out.Triples, clauseTriples(clause)...)
		}
	}
	return out
}

// splitClauses cuts a sentence at coordinating conjunctions, semicolons,
// commas followed by a verb-bearing segment, and relative pronouns.
func splitClauses(toks []nlp.Token) [][]nlp.Token {
	var clauses [][]nlp.Token
	start := 0
	flush := func(end int) {
		if end > start {
			clauses = append(clauses, toks[start:end])
		}
		start = end + 1
	}
	for i, t := range toks {
		switch {
		case t.POS == nlp.TagCconj:
			flush(i)
		case t.POS == nlp.TagPron && (strings.EqualFold(t.Text, "which") || strings.EqualFold(t.Text, "who")):
			flush(i)
		case t.Text == ";":
			flush(i)
		}
	}
	if start < len(toks) {
		clauses = append(clauses, toks[start:])
	}
	return clauses
}

// clauseTriples emits (nearest left NP, verb lemma, nearest right NP) for
// every verb in the clause.
func clauseTriples(toks []nlp.Token) []Triple {
	var out []Triple
	for i, t := range toks {
		if t.POS != nlp.TagVerb {
			continue
		}
		subj := nearestNP(toks, i, -1)
		obj := nearestNP(toks, i, +1)
		if subj == "" || obj == "" {
			continue
		}
		out = append(out, Triple{Subj: subj, Rel: t.Lemma, Obj: obj})
	}
	return out
}

// nearestNP returns the phrase of the noun-phrase closest to position i in
// the given direction.
func nearestNP(toks []nlp.Token, i, dir int) string {
	j := i + dir
	for j >= 0 && j < len(toks) {
		if toks[j].POS.IsNounLike() {
			// Expand to the containing NP.
			lo, hi := j, j
			for lo-1 >= 0 && isNPWord(toks[lo-1]) {
				lo--
			}
			for hi+1 < len(toks) && isNPWord(toks[hi+1]) {
				hi++
			}
			var words []string
			for k := lo; k <= hi; k++ {
				if toks[k].POS != nlp.TagDet {
					words = append(words, toks[k].Text)
				}
			}
			return strings.Join(words, " ")
		}
		if toks[j].POS == nlp.TagVerb {
			return "" // another clause
		}
		j += dir
	}
	return ""
}
