package openie

import (
	"strings"
	"testing"
)

const report = "The attacker used /bin/tar to read user credentials from /etc/passwd. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2."

func TestClauseIEWithoutProtectionShattersIOCs(t *testing.T) {
	out := NewClauseIE(false).Extract(report)
	for _, e := range out.Entities {
		if e == "/etc/passwd" || e == "/bin/tar" {
			t.Errorf("general tokenization should not preserve %q", e)
		}
	}
	if len(out.Entities) == 0 {
		t.Fatal("baseline should still extract noun phrases")
	}
}

func TestClauseIEWithProtectionRecoversSomeIOCs(t *testing.T) {
	out := NewClauseIE(true).Extract(report)
	found := false
	for _, e := range out.Entities {
		if strings.Contains(e, "/etc/passwd") || strings.Contains(e, "/bin/bzip2") {
			found = true
		}
	}
	if !found {
		t.Errorf("protection should recover some indicators: %v", out.Entities)
	}
}

func TestClauseIEEmitsTriples(t *testing.T) {
	out := NewClauseIE(true).Extract(report)
	if len(out.Triples) == 0 {
		t.Fatal("no triples extracted")
	}
	for _, tr := range out.Triples {
		if tr.Subj == "" || tr.Rel == "" || tr.Obj == "" {
			t.Errorf("malformed triple %+v", tr)
		}
	}
}

func TestExhaustiveIEEmitsOutput(t *testing.T) {
	out := NewExhaustiveIE(false).Extract(report)
	if len(out.Entities) == 0 {
		t.Fatal("no entities")
	}
	out = NewExhaustiveIE(true).Extract(report)
	if len(out.Triples) == 0 {
		t.Fatal("no triples with protection")
	}
}

func TestExhaustiveSlowerThanClause(t *testing.T) {
	// Shape requirement from Table VII: the exhaustive baseline does far
	// more work. Compare candidate workloads via a timing-free proxy:
	// triple counts explode combinatorially.
	ex := NewExhaustiveIE(false)
	cl := NewClauseIE(false)
	big := strings.Repeat(report+" ", 3)
	exOut := ex.Extract(big)
	clOut := cl.Extract(big)
	if len(exOut.Triples) < len(clOut.Triples) {
		t.Errorf("exhaustive enumeration should consider at least as many triples: %d vs %d",
			len(exOut.Triples), len(clOut.Triples))
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"abc", "abc", 0}, {"abc", "axc", 1},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBoundedSimilarity(t *testing.T) {
	if s := boundedSimilarity("abc", "abc"); s != 1 {
		t.Errorf("identical similarity = %v", s)
	}
	if s := boundedSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint similarity = %v", s)
	}
	if s := boundedSimilarity("", "abc"); s != 0 {
		t.Errorf("empty similarity = %v", s)
	}
}

func TestNames(t *testing.T) {
	if NewClauseIE(false).Name() == NewClauseIE(true).Name() {
		t.Error("protected variant must have a distinct name")
	}
	if NewExhaustiveIE(false).Name() == NewExhaustiveIE(true).Name() {
		t.Error("protected variant must have a distinct name")
	}
}
