package openie

import (
	"sort"
	"strings"

	"threatraptor/internal/nlp"
)

// ExhaustiveIE is the Open-IE-5-style baseline: for every verb it
// enumerates all candidate argument spans on both sides, scores each
// (subject, verb, object) combination, and keeps the best per verb. A
// final cross-candidate consistency pass compares every pair of candidate
// triples by string alignment, mirroring the heavy confidence machinery
// that makes Open IE 5 an order of magnitude slower than light-weight
// pipelines (Table VII of the paper).
type ExhaustiveIE struct {
	pipe    *nlp.Pipeline
	protect bool
	// MaxSpan bounds candidate argument length in tokens.
	MaxSpan int
}

// NewExhaustiveIE returns the exhaustive baseline; protect toggles the
// "+ IOC Protection" variant.
func NewExhaustiveIE(protect bool) *ExhaustiveIE {
	return &ExhaustiveIE{pipe: nlp.NewPipeline(), protect: protect, MaxSpan: 6}
}

// Name identifies the baseline in reports.
func (e *ExhaustiveIE) Name() string {
	if e.protect {
		return "Open IE 5 + IOC Protection"
	}
	return "Open IE 5"
}

type scoredTriple struct {
	Triple
	score float64
}

// Extract runs the baseline over a document.
func (e *ExhaustiveIE) Extract(text string) Output {
	toks := prepTokens(text, e.protect)
	sents := e.pipe.SplitSentencesTokens(toks)
	var out Output
	var candidates []scoredTriple
	seenEnt := make(map[string]bool)
	for _, s := range sents {
		e.pipe.TagTokens(s.Tokens)
		for i := range s.Tokens {
			s.Tokens[i].Lemma = nlp.Lemma(s.Tokens[i].Text, s.Tokens[i].POS)
		}
		for _, ent := range npSpans(s.Tokens) {
			if !seenEnt[ent] {
				seenEnt[ent] = true
				out.Entities = append(out.Entities, ent)
			}
		}
		candidates = append(candidates, e.sentenceCandidates(s.Tokens)...)
	}

	// Consistency pass: each candidate's confidence is adjusted by its
	// alignment with every other candidate (bounded edit similarity).
	for i := range candidates {
		var support float64
		for j := range candidates {
			if i == j {
				continue
			}
			support += boundedSimilarity(candidates[i].key(), candidates[j].key())
		}
		if len(candidates) > 1 {
			candidates[i].score += support / float64(len(candidates)-1)
		}
	}

	// Keep the best-scoring candidate per (sentence verb) — approximated
	// by deduplicating on (Rel, Subj) after sorting by score.
	sort.SliceStable(candidates, func(a, b int) bool {
		return candidates[a].score > candidates[b].score
	})
	seen := make(map[string]bool)
	for _, c := range candidates {
		k := c.Rel + "\x00" + c.Subj
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Triples = append(out.Triples, c.Triple)
	}
	return out
}

func (t scoredTriple) key() string { return t.Subj + " " + t.Rel + " " + t.Obj }

// sentenceCandidates enumerates (subject span, verb, object span)
// combinations around each verb.
func (e *ExhaustiveIE) sentenceCandidates(toks []nlp.Token) []scoredTriple {
	var cands []scoredTriple
	n := len(toks)
	for v := 0; v < n; v++ {
		if toks[v].POS != nlp.TagVerb {
			continue
		}
		for sl := 0; sl < v; sl++ {
			for sr := sl; sr < v && sr-sl < e.MaxSpan; sr++ {
				subj, sScore := spanPhrase(toks, sl, sr)
				if subj == "" {
					continue
				}
				for ol := v + 1; ol < n; ol++ {
					for or := ol; or < n && or-ol < e.MaxSpan; or++ {
						obj, oScore := spanPhrase(toks, ol, or)
						if obj == "" {
							continue
						}
						score := sScore + oScore -
							0.1*float64(v-sr) - 0.1*float64(ol-v)
						cands = append(cands, scoredTriple{
							Triple: Triple{Subj: subj, Rel: toks[v].Lemma, Obj: obj},
							score:  score,
						})
					}
				}
			}
		}
	}
	return cands
}

// spanPhrase renders a candidate argument span, scoring it by how
// noun-phrase-like it is. Spans containing verbs or punctuation are
// rejected.
func spanPhrase(toks []nlp.Token, lo, hi int) (string, float64) {
	var words []string
	var score float64
	for k := lo; k <= hi; k++ {
		switch {
		case toks[k].POS == nlp.TagVerb || toks[k].POS == nlp.TagPunct:
			return "", 0
		case toks[k].POS.IsNounLike():
			score += 1
		case toks[k].POS == nlp.TagDet:
			continue // dropped from the phrase
		default:
			score -= 0.5
		}
		words = append(words, toks[k].Text)
	}
	if score <= 0 {
		return "", 0
	}
	return strings.Join(words, " "), score / float64(hi-lo+1)
}

// boundedSimilarity is a normalized edit-distance similarity over prefixes
// capped at 24 bytes (the cap bounds the consistency pass's cost while
// keeping it meaningfully expensive).
func boundedSimilarity(a, b string) float64 {
	const cap = 24
	if len(a) > cap {
		a = a[:cap]
	}
	if len(b) > cap {
		b = b[:cap]
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	d := editDistance(a, b)
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	return 1 - float64(d)/float64(max)
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
