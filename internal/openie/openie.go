// Package openie implements two general-purpose open information
// extraction baselines, stand-ins for Stanford Open IE and Open IE 5 in
// the paper's RQ1/RQ3 comparison (Table V and Table VII).
//
// Both extract ⟨subject phrase, relation, object phrase⟩ triples from
// arbitrary English without any security-domain knowledge. They tokenize
// with the general-English tokenizer, so unprotected indicators shatter —
// which is exactly why the paper's specialized pipeline wins. Each
// baseline optionally runs with IOC protection applied first (the
// "+ IOC Protection" table rows).
package openie

import (
	"strings"

	"threatraptor/internal/ioc"
	"threatraptor/internal/nlp"
)

// Triple is one extracted open-domain relation.
type Triple struct {
	Subj, Rel, Obj string
}

// Output is an extraction result: the entity phrases and relation triples.
type Output struct {
	Entities []string
	Triples  []Triple
}

// Extractor is a generic open IE system.
type Extractor interface {
	Name() string
	Extract(text string) Output
}

// prepTokens tokenizes text in general-English mode, optionally applying
// IOC protection first and substituting indicators back into the matching
// placeholder tokens.
func prepTokens(text string, protect bool) []nlp.Token {
	if !protect {
		return nlp.TokenizeGeneral(text)
	}
	prot, recs := ioc.Protect(text)
	toks := nlp.TokenizeGeneral(prot)
	bySpan := make(map[int]ioc.IOC, len(recs))
	for _, r := range recs {
		bySpan[r.Offset] = r.IOC
	}
	for i := range toks {
		if toks[i].Text != ioc.DummyWord {
			continue
		}
		if ic, ok := bySpan[toks[i].Start]; ok {
			toks[i].Text = ic.Text
		}
	}
	return toks
}

// npSpans finds maximal noun-phrase spans over tagged tokens and returns
// their phrase texts (determiners dropped, like open IE arg extraction).
func npSpans(toks []nlp.Token) []string {
	var out []string
	i := 0
	for i < len(toks) {
		if !isNPWord(toks[i]) {
			i++
			continue
		}
		j := i
		var words []string
		for j < len(toks) && isNPWord(toks[j]) {
			if toks[j].POS != nlp.TagDet {
				words = append(words, toks[j].Text)
			}
			j++
		}
		if len(words) > 0 {
			out = append(out, strings.Join(words, " "))
		}
		i = j
	}
	return out
}

func isNPWord(t nlp.Token) bool {
	return t.POS.IsNounLike() || t.POS == nlp.TagDet || t.POS == nlp.TagAdj
}
