package synth

import (
	"strings"
	"testing"
	"time"

	"threatraptor/internal/extract"
	"threatraptor/internal/tbql"
)

// TestUserDefinedSynthesisPlan covers the paper's Section III-E tail: the
// user plan overwrites the default plan with a time window and extra
// return attributes the threat behavior graph does not carry.
func TestUserDefinedSynthesisPlan(t *testing.T) {
	g := extract.New(extract.DefaultOptions()).
		Extract("/bin/evil.sh read the shadow file /etc/shadow and sent the data to 6.6.6.6.").Graph
	win := &tbql.Window{Kind: tbql.WindLast, Dur: 2 * time.Hour}
	q, _, err := Synthesize(g, Options{
		Window: win,
		ReturnAttrs: map[tbql.EntityType][]string{
			tbql.EntProc: {"pid", "user"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.GlobalWindow != win {
		t.Fatal("user window not attached")
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatalf("user-plan query must analyze: %v\n%s", err, tbql.Format(q))
	}
	var attrs []string
	for _, item := range a.ReturnItems {
		attrs = append(attrs, item.EntityID+"."+item.Attr)
	}
	joined := strings.Join(attrs, " ")
	for _, want := range []string{"p1.exename", "p1.pid", "p1.user"} {
		if !strings.Contains(joined, want) {
			t.Errorf("return missing %s: %v", want, attrs)
		}
	}
	// The formatted query must round-trip with the window.
	text := tbql.Format(q)
	if !strings.Contains(text, "last 2 hour") {
		t.Errorf("window missing from text:\n%s", text)
	}
	if _, err := tbql.Parse(text); err != nil {
		t.Fatalf("user-plan text must reparse: %v\n%s", err, text)
	}
}

func TestUserPlanInvalidAttrRejected(t *testing.T) {
	g := extract.New(extract.DefaultOptions()).
		Extract("/bin/evil.sh read the file /etc/shadow there.").Graph
	q, _, err := Synthesize(g, Options{
		ReturnAttrs: map[tbql.EntityType][]string{
			tbql.EntFile: {"nosuchattr"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbql.Analyze(q); err == nil {
		t.Fatal("analysis must reject unknown user-plan attributes")
	}
}
