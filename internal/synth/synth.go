// Package synth implements ThreatRaptor's TBQL query synthesis
// (Section III-E): it turns a threat behavior graph into a runnable TBQL
// query through pre-synthesis screening, IOC relation mapping, TBQL
// pattern synthesis, pattern relationship synthesis, and return clause
// synthesis.
package synth

import (
	"fmt"
	"strings"

	"threatraptor/internal/extract"
	"threatraptor/internal/ioc"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// Mode selects the pattern syntax of the synthesized query.
type Mode uint8

// Synthesis modes. ModeEventPatterns is the default plan the paper's
// Figure 2 shows; ModeLength1Paths emits the semantically equivalent
// length-1 event path patterns (executed on the graph backend; query type
// (c) in RQ4); ModeVarLenPaths emits variable-length paths for bridging
// the semantic gap when intermediate processes are omitted in the text.
const (
	ModeEventPatterns Mode = iota
	ModeLength1Paths
	ModeVarLenPaths
)

// Options configures synthesis. Window and ReturnAttrs form the
// user-defined synthesis plan of the paper's Section III-E: they overwrite
// the default plan with attributes that the query subsystem supports but
// the threat behavior graph does not capture (e.g. a time window, extra
// return attributes).
type Options struct {
	Mode Mode
	// MaxPathLen bounds variable-length paths (ModeVarLenPaths);
	// 0 means unbounded.
	MaxPathLen int
	// Window, when set, becomes the synthesized query's global time
	// window.
	Window *tbql.Window
	// ReturnAttrs lists additional attributes to return per entity type,
	// beyond the default attribute (e.g. proc -> ["pid", "user"]).
	ReturnAttrs map[tbql.EntityType][]string
}

// Report records what pre-synthesis screening dropped.
type Report struct {
	DroppedNodes []string // IOC texts whose type is not captured by auditing
	DroppedEdges []string // edges whose relation maps to no operation
}

// capturedTypes are the IOC types observable by the system auditing
// component; nodes of other types (registry entries, URLs, hashes, CVEs)
// are screened out (Step 1).
var capturedTypes = map[ioc.Type]bool{
	ioc.TypeFilepathLinux: true,
	ioc.TypeFilepathWin:   true,
	ioc.TypeFilename:      true,
	ioc.TypePackage:       true,
	ioc.TypeIPv4:          true,
	ioc.TypeCIDR:          true,
}

// Synthesize builds a TBQL query from a threat behavior graph using the
// default synthesis plan. It fails only when screening leaves no edges.
func Synthesize(g *extract.Graph, opts Options) (*tbql.Query, *Report, error) {
	rep := &Report{}
	kept := make(map[int]bool) // node IDs surviving screening
	for _, n := range g.Nodes {
		if capturedTypes[n.Type] {
			kept[n.ID] = true
		} else {
			rep.DroppedNodes = append(rep.DroppedNodes, n.Text)
		}
	}

	s := &synthesizer{g: g, opts: opts, entityOf: make(map[roleKey]string)}
	q := &tbql.Query{}
	var offsets []int // source verb occurrence per synthesized pattern
	for _, e := range g.Edges {
		if !kept[e.From] || !kept[e.To] {
			continue
		}
		patt, ok := s.synthesizePattern(e)
		if !ok {
			from, to := g.Node(e.From), g.Node(e.To)
			rep.DroppedEdges = append(rep.DroppedEdges,
				fmt.Sprintf("%s -%s-> %s", from.Text, e.Verb, to.Text))
			continue
		}
		q.Patterns = append(q.Patterns, patt)
		offsets = append(offsets, e.Offset)
	}
	if len(q.Patterns) == 0 {
		return nil, rep, fmt.Errorf("synth: no synthesizable patterns in the threat behavior graph")
	}

	// Step 3: temporal relationships follow the ascending sequence numbers
	// (event patterns only; path patterns carry no temporal relations).
	// Edges extracted from the same relation verb occurrence describe one
	// attack step ("downloaded X from Y" yields both a file write and a
	// network receive); no order is imposed within a step, since the
	// underlying system events interleave.
	if opts.Mode != ModeVarLenPaths {
		groupStart := 0
		for i := 1; i < len(q.Patterns); i++ {
			if offsets[i] != offsets[groupStart] {
				q.Relations = append(q.Relations, tbql.Relation{
					Kind: tbql.RelBefore,
					A:    q.Patterns[groupStart].ID,
					B:    q.Patterns[i].ID,
				})
				groupStart = i
			}
		}
	}

	// Step 4: return all entity IDs in first-use order (default attributes
	// are inferred at execution — TBQL sugar), plus any user-plan extras.
	q.Return.Distinct = true
	seen := make(map[string]bool)
	for _, p := range q.Patterns {
		for _, side := range []tbql.Entity{p.Subject, p.Object} {
			if seen[side.ID] {
				continue
			}
			seen[side.ID] = true
			q.Return.Items = append(q.Return.Items, tbql.Attr{EntityID: side.ID})
			for _, attr := range opts.ReturnAttrs[side.Type] {
				q.Return.Items = append(q.Return.Items, tbql.Attr{EntityID: side.ID, Attr: attr})
			}
		}
	}
	q.GlobalWindow = opts.Window
	return q, rep, nil
}

type roleKey struct {
	node int
	typ  tbql.EntityType
}

type synthesizer struct {
	g        *extract.Graph
	opts     Options
	entityOf map[roleKey]string
	nProc    int
	nFile    int
	nIP      int
	nPatt    int
}

// entity returns (creating on first use) the TBQL entity for a node in a
// given role. The first use carries the attribute filter; later uses rely
// on the entity-ID-reuse sugar. Network connection entities are never
// reused: TBQL entity identity is the 5-tuple, and separate attack steps
// reaching the same address use separate connections, so each edge gets a
// fresh ip entity carrying the same dstip filter.
func (s *synthesizer) entity(nodeID int, typ tbql.EntityType) tbql.Entity {
	key := roleKey{nodeID, typ}
	if id, ok := s.entityOf[key]; ok && typ != tbql.EntIP {
		return tbql.Entity{Type: typ, ID: id}
	}
	var id string
	switch typ {
	case tbql.EntProc:
		s.nProc++
		id = fmt.Sprintf("p%d", s.nProc)
	case tbql.EntFile:
		s.nFile++
		id = fmt.Sprintf("f%d", s.nFile)
	case tbql.EntIP:
		s.nIP++
		id = fmt.Sprintf("i%d", s.nIP)
	}
	s.entityOf[key] = id
	node := s.g.Node(nodeID)
	return tbql.Entity{Type: typ, ID: id, Filter: attrFilter(node, typ)}
}

// attrFilter synthesizes the bare-value attribute filter (Step 2): file
// and process names are wrapped in wildcards; IPs match exactly.
func attrFilter(node *extract.Node, typ tbql.EntityType) relational.Expr {
	text := node.Text
	if typ == tbql.EntIP {
		return bareValue(cidrToPattern(text))
	}
	return bareValue("%" + text + "%")
}

// bareValue builds the parser's representation of the bare-value sugar.
func bareValue(v string) relational.Expr {
	lit := relational.Lit{V: relational.Str(v)}
	if strings.ContainsAny(v, "%_") {
		return relational.BinOp{Op: "like", L: relational.ColRef{}, R: lit}
	}
	return relational.BinOp{Op: "=", L: relational.ColRef{}, R: lit}
}

// cidrToPattern renders an IP or CIDR as a match pattern: /32 (or no
// mask) is exact; octet-aligned masks become prefix wildcards.
func cidrToPattern(text string) string {
	slash := strings.IndexByte(text, '/')
	if slash < 0 {
		return text
	}
	host := text[:slash]
	switch text[slash+1:] {
	case "32":
		return host
	case "24", "16", "8":
		keep := map[string]int{"24": 3, "16": 2, "8": 1}[text[slash+1:]]
		parts := strings.Split(host, ".")
		return strings.Join(parts[:keep], ".") + ".%"
	default:
		return host // approximate non-octet masks by the host address
	}
}

// synthesizePattern maps one threat behavior edge to a TBQL pattern.
func (s *synthesizer) synthesizePattern(e *extract.Edge) (*tbql.Pattern, bool) {
	to := s.g.Node(e.To)
	objType := objectType(to, e.Verb)
	op, ok := mapRelation(e.Verb, objType)
	if !ok {
		return nil, false
	}
	subj := s.entity(e.From, tbql.EntProc)
	obj := s.entity(e.To, objType)
	s.nPatt++
	patt := &tbql.Pattern{
		Subject: subj,
		Object:  obj,
		ID:      fmt.Sprintf("evt%d", s.nPatt),
		Op:      &tbql.OpExpr{Op: op},
	}
	switch s.opts.Mode {
	case ModeLength1Paths:
		patt.Path = &tbql.PathSpec{MinLen: 1, MaxLen: 1}
	case ModeVarLenPaths:
		max := s.opts.MaxPathLen
		if max == 0 {
			max = -1
		}
		patt.Path = &tbql.PathSpec{MinLen: 1, MaxLen: max}
	}
	return patt, true
}

// objectType decides the object entity type (Step 2): IP IOCs become
// network connections; process-creation verbs make the object a process;
// everything else is a file. The default plan prefers the file
// interpretation for execute-like verbs (the paper discusses this
// ambiguity in RQ2: "run" could be execute-file or start-process).
func objectType(node *extract.Node, verb string) tbql.EntityType {
	if node.Type == ioc.TypeIPv4 || node.Type == ioc.TypeCIDR {
		return tbql.EntIP
	}
	switch verb {
	case "start", "spawn", "launch":
		return tbql.EntProc
	}
	return tbql.EntFile
}

// relationMap maps (verb, object type) to the TBQL operation, encoding the
// paper's rule examples: "download" between two Filepath IOCs is a write
// (the process writes the file); "download" toward an IP is a receive
// (the process reads from the network).
var relationMap = map[tbql.EntityType]map[string]string{
	tbql.EntFile: {
		"read": "read", "open": "read", "access": "read", "scan": "read",
		"load": "read", "steal": "read", "crack": "read",
		"write": "write", "download": "write", "save": "write",
		"store": "write", "create": "write", "drop": "write",
		"copy": "write", "compress": "write", "encrypt": "write",
		"decrypt": "write", "extract": "write", "dump": "write",
		"gather": "write", "modify": "write", "inject": "write",
		"delete": "write", "upload": "read",
		"execute": "execute", "run": "execute", "launch": "execute",
		"rename": "rename",
	},
	tbql.EntProc: {
		"start": "start", "spawn": "start", "launch": "start",
		"execute": "start", "run": "start", "create": "start",
		"end": "end", "kill": "end",
	},
	tbql.EntIP: {
		"connect": "connect", "communicate": "connect", "visit": "connect",
		"request": "connect", "resolve": "connect",
		"send": "send", "upload": "send", "leak": "send",
		"transfer": "send", "exfiltrate": "send", "write": "send",
		"download": "receive", "receive": "receive", "read": "receive",
		"fetch": "receive", "get": "receive",
	},
}

// mapRelation returns the TBQL operation for an IOC relation verb and
// object type; ok=false drops the edge (screening, Step 1 tail).
func mapRelation(verb string, objType tbql.EntityType) (string, bool) {
	op, ok := relationMap[objType][verb]
	return op, ok
}
