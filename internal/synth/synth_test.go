package synth

import (
	"strings"
	"testing"

	"threatraptor/internal/extract"
	"threatraptor/internal/tbql"
)

const dataLeakReport = `As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After compression, the attacker used Gnu Privacy Guard (GnuPG) tool to encrypt the zipped file, which corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive information to /tmp/upload. Finally, the attacker leveraged the curl utility (/usr/bin/curl) to read the data from /tmp/upload. He leaked the gathered sensitive information back to the attacker C2 host by using /usr/bin/curl to connect to 192.168.29.128.`

func dataLeakGraph(t *testing.T) *extract.Graph {
	t.Helper()
	return extract.New(extract.DefaultOptions()).Extract(dataLeakReport).Graph
}

func TestSynthesizeFigure2(t *testing.T) {
	q, rep, err := Synthesize(dataLeakGraph(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DroppedNodes) != 0 || len(rep.DroppedEdges) != 0 {
		t.Fatalf("nothing should be screened out: %+v", rep)
	}
	if len(q.Patterns) != 8 {
		t.Fatalf("patterns = %d, want 8\n%s", len(q.Patterns), tbql.Format(q))
	}
	if len(q.Relations) != 7 {
		t.Fatalf("relations = %d, want 7", len(q.Relations))
	}
	if !q.Return.Distinct || len(q.Return.Items) != 9 {
		t.Fatalf("return = %+v", q.Return)
	}
	// The synthesized query must analyze and match Figure 2's structure.
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatalf("synthesized query must analyze: %v\n%s", err, tbql.Format(q))
	}
	if len(a.Entities) != 9 {
		t.Fatalf("entities = %d, want 9", len(a.Entities))
	}
	text := tbql.Format(q)
	for _, want := range []string{
		`proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1`,
		`proc p1 write file f2["%/tmp/upload.tar%"] as evt2`,
		// Unlike the paper's Figure 2 (which repeats p4's filter), the
		// synthesizer relies on entity-ID reuse for later occurrences.
		`proc p4 connect ip i1["192.168.29.128"] as evt8`,
		`with evt1 before evt2`,
		`return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("synthesized text missing %q:\n%s", want, text)
		}
	}
	// Round trip: the textual form reparses to the same structure.
	q2, err := tbql.Parse(text)
	if err != nil {
		t.Fatalf("synthesized text must parse: %v\n%s", err, text)
	}
	if len(q2.Patterns) != 8 || len(q2.Relations) != 7 {
		t.Fatalf("round trip mismatch:\n%s", text)
	}
}

func TestSynthesizeLength1Paths(t *testing.T) {
	q, _, err := Synthesize(dataLeakGraph(t), Options{Mode: ModeLength1Paths})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Patterns {
		if p.Path == nil || p.Path.MinLen != 1 || p.Path.MaxLen != 1 {
			t.Fatalf("pattern %s should be a length-1 path", p.ID)
		}
	}
	text := tbql.Format(q)
	if !strings.Contains(text, "->[read]") {
		t.Fatalf("length-1 path syntax missing:\n%s", text)
	}
	if _, err := tbql.Parse(text); err != nil {
		t.Fatalf("formatted path query must reparse: %v", err)
	}
}

func TestSynthesizeVarLenPaths(t *testing.T) {
	q, _, err := Synthesize(dataLeakGraph(t), Options{Mode: ModeVarLenPaths, MaxPathLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 0 {
		t.Fatal("path patterns must carry no temporal relations")
	}
	for _, p := range q.Patterns {
		if p.Path == nil || p.Path.MaxLen != 4 {
			t.Fatalf("pattern %s bounds wrong: %+v", p.ID, p.Path)
		}
	}
	if _, err := tbql.Analyze(q); err != nil {
		t.Fatal(err)
	}
}

func TestScreeningDropsUncapturedTypes(t *testing.T) {
	report := "/tmp/evil.sh downloaded instructions from badsite.ru there. /tmp/evil.sh connected to 10.8.7.6."
	g := extract.New(extract.DefaultOptions()).Extract(report).Graph
	q, rep, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundDomain := false
	for _, n := range rep.DroppedNodes {
		if n == "badsite.ru" {
			foundDomain = true
		}
	}
	if !foundDomain {
		t.Errorf("domain IOC should be screened out: %+v", rep)
	}
	for _, p := range q.Patterns {
		if f := p.Subject.Filter; f != nil && strings.Contains(tbql.Format(q), "badsite") {
			t.Errorf("screened node leaked into query:\n%s", tbql.Format(q))
		}
	}
}

func TestRelationMappingDependsOnObjectType(t *testing.T) {
	// "download" to a file is a write; "download" from an IP is a receive.
	if op, _ := mapRelation("download", tbql.EntFile); op != "write" {
		t.Errorf("download->file = %q, want write", op)
	}
	if op, _ := mapRelation("download", tbql.EntIP); op != "receive" {
		t.Errorf("download->ip = %q, want receive", op)
	}
	if _, ok := mapRelation("meditate", tbql.EntFile); ok {
		t.Error("unknown verbs must not map")
	}
}

func TestCIDRPatterns(t *testing.T) {
	cases := map[string]string{
		"192.168.29.128":    "192.168.29.128",
		"192.168.29.128/32": "192.168.29.128",
		"10.0.0.0/8":        "10.%",
		"10.20.0.0/16":      "10.20.%",
		"10.20.30.0/24":     "10.20.30.%",
		"10.0.0.0/12":       "10.0.0.0",
	}
	for in, want := range cases {
		if got := cidrToPattern(in); got != want {
			t.Errorf("cidrToPattern(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestProcessCreationSynthesizesProcObject(t *testing.T) {
	report := "/tmp/dropper.sh started the process /usr/bin/miner there. /usr/bin/miner connected to 10.1.1.1."
	g := extract.New(extract.DefaultOptions()).Extract(report).Graph
	q, _, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatalf("%v\n%s", err, g)
	}
	var started *tbql.Pattern
	for _, p := range q.Patterns {
		if p.Op != nil && p.Op.Ops()["start"] {
			started = p
		}
	}
	if started == nil {
		t.Fatalf("no start pattern:\n%s", tbql.Format(q))
	}
	if started.Object.Type != tbql.EntProc {
		t.Fatalf("start object should be proc, got %s", started.Object.Type)
	}
	// The started process must reuse the same entity ID as the later
	// connect pattern's subject.
	var connSubj string
	for _, p := range q.Patterns {
		if p.Object.Type == tbql.EntIP {
			connSubj = p.Subject.ID
		}
	}
	if connSubj != started.Object.ID {
		t.Errorf("process chain should reuse entity ID: start object %s vs connect subject %s\n%s",
			started.Object.ID, connSubj, tbql.Format(q))
	}
}

func TestSynthesizeEmptyGraphFails(t *testing.T) {
	if _, _, err := Synthesize(&extract.Graph{}, Options{}); err == nil {
		t.Fatal("empty graph must fail")
	}
}
