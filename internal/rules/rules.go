// Package rules implements a small Sigma-like detection rule engine over
// the audit event model: a rule names one or more operations, optional
// entity-field predicates on the subject and object, and a MITRE-style
// tactic/technique label. Rule files are JSON (see ParseJSON for the
// format; examples/rules/demo.json is a runnable reference).
//
// Rules are compiled once, up front: operation names become a bitmask
// over the dictionary-encoded audit.OpType codes, entity-kind predicates
// become audit.EntityKind code comparisons, and string predicates become
// closed matcher functions. Per-event tagging is therefore one AND
// against the op mask followed by direct code/attribute comparisons — no
// string matching against operation or kind names on the hot path — so a
// rule set can be evaluated against every event of a sealed batch without
// slowing ingestion (the tactical round runs off the pinned snapshot,
// after AppendBatch returns).
package rules

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"threatraptor/internal/audit"
)

// Rule is one detection rule as authored in the rule file.
type Rule struct {
	// Name uniquely identifies the rule; tagged alerts carry it.
	Name string `json:"name"`
	// Tactic is the MITRE ATT&CK-style tactic label (e.g.
	// "credential-access"); it orders alerts along the kill chain.
	Tactic string `json:"tactic"`
	// Technique is a free-form technique label (e.g. "T1003").
	Technique string `json:"technique,omitempty"`
	// Severity weights the rule 1..10 (0 defaults to 5).
	Severity int `json:"severity,omitempty"`
	// Ops lists the operations that trigger the rule ("read", "connect",
	// ...). Empty means any operation.
	Ops []string `json:"ops,omitempty"`
	// Where maps entity fields to string patterns, e.g.
	//
	//	{"object.name": "/etc/shadow", "subject.exename": "/tmp/*"}
	//
	// Keys are "subject.<attr>" or "object.<attr>" using the audit
	// attribute names (name/path/user/group, pid/exename/user/group/cmd,
	// srcip/srcport/dstip/dstport/protocol) plus the pseudo-attribute
	// "kind" ("file", "proc", "ip"). Values are exact strings unless they
	// use "*" at either end: "/tmp/*" (prefix), "*.so" (suffix),
	// "*passwd*" (substring). Every predicate must hold.
	Where map[string]string `json:"where,omitempty"`
}

// killChain is the MITRE ATT&CK enterprise tactic order the kill-chain
// scoring DP uses: an incident's alerts form a kill chain when their
// tactic ranks are non-decreasing along happens-before edges.
var killChain = []string{
	"initial-access",
	"execution",
	"persistence",
	"privilege-escalation",
	"defense-evasion",
	"credential-access",
	"discovery",
	"lateral-movement",
	"collection",
	"command-and-control",
	"exfiltration",
	"impact",
}

// TacticRank maps a tactic label to its kill-chain position. Unknown
// tactics rank after every known one (they still chain with each other
// and with anything earlier, just without an ordering of their own).
func TacticRank(tactic string) int {
	for i, t := range killChain {
		if t == tactic {
			return i
		}
	}
	return len(killChain)
}

// attrMatch is one compiled entity predicate.
type attrMatch struct {
	attr  string
	match func(string) bool
}

// compiled is one rule lowered to code comparisons.
type compiled struct {
	rule       Rule
	opMask     uint32           // OR of trigger op bits; ^0 = any op
	subjKind   audit.EntityKind // EntityInvalid = any
	objKind    audit.EntityKind
	subj, obj  []attrMatch
	tacticRank int
	severity   int
}

// Set is a compiled, immutable rule set, safe for concurrent use.
type Set struct {
	rules  []compiled
	opMask uint32 // OR of every rule's opMask
}

// ParseJSON compiles a JSON rule file: either a top-level array of rules
// or an object {"rules": [...]}.
func ParseJSON(data []byte) (*Set, error) {
	var raw []Rule
	if err := json.Unmarshal(data, &raw); err != nil {
		var wrapped struct {
			Rules []Rule `json:"rules"`
		}
		if err2 := json.Unmarshal(data, &wrapped); err2 != nil {
			return nil, fmt.Errorf("rules: %w", err)
		}
		raw = wrapped.Rules
	}
	return Compile(raw)
}

// LoadFile reads and compiles a JSON rule file from disk.
func LoadFile(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Compile lowers rules to a Set, validating names, operations, and
// predicate keys.
func Compile(rs []Rule) (*Set, error) {
	set := &Set{rules: make([]compiled, 0, len(rs))}
	seen := make(map[string]bool, len(rs))
	for i, r := range rs {
		if r.Name == "" {
			return nil, fmt.Errorf("rules: rule %d has no name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("rules: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Tactic == "" {
			return nil, fmt.Errorf("rules: rule %q has no tactic", r.Name)
		}
		c := compiled{
			rule:       r,
			tacticRank: TacticRank(r.Tactic),
			severity:   r.Severity,
		}
		if c.severity <= 0 {
			c.severity = 5
		} else if c.severity > 10 {
			c.severity = 10
		}
		if len(r.Ops) == 0 {
			c.opMask = ^uint32(0)
		} else {
			for _, name := range r.Ops {
				op, err := audit.ParseOp(name)
				if err != nil {
					return nil, fmt.Errorf("rules: rule %q: %w", r.Name, err)
				}
				c.opMask |= op.Bit()
			}
		}
		// Compile predicates in sorted key order so matching cost and
		// behavior don't depend on map iteration.
		keys := make([]string, 0, len(r.Where))
		for k := range r.Where {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			side, attr, ok := strings.Cut(key, ".")
			if !ok || (side != "subject" && side != "object") {
				return nil, fmt.Errorf("rules: rule %q: predicate key %q must be subject.<attr> or object.<attr>", r.Name, key)
			}
			val := r.Where[key]
			if attr == "kind" {
				kind, err := parseKind(val)
				if err != nil {
					return nil, fmt.Errorf("rules: rule %q: %w", r.Name, err)
				}
				if side == "subject" {
					c.subjKind = kind
				} else {
					c.objKind = kind
				}
				continue
			}
			m := attrMatch{attr: attr, match: compileMatcher(val)}
			if side == "subject" {
				c.subj = append(c.subj, m)
			} else {
				c.obj = append(c.obj, m)
			}
		}
		set.opMask |= c.opMask
		set.rules = append(set.rules, c)
	}
	return set, nil
}

// parseKind maps the TBQL entity type keywords to kind codes.
func parseKind(s string) (audit.EntityKind, error) {
	switch s {
	case "file":
		return audit.EntityFile, nil
	case "proc", "process":
		return audit.EntityProcess, nil
	case "ip", "netconn":
		return audit.EntityNetConn, nil
	}
	return audit.EntityInvalid, fmt.Errorf("unknown entity kind %q", s)
}

// compileMatcher closes over one string pattern: exact unless "*" marks a
// prefix, suffix, or substring match.
func compileMatcher(pat string) func(string) bool {
	pre := strings.HasSuffix(pat, "*")
	suf := strings.HasPrefix(pat, "*")
	switch {
	case pre && suf:
		mid := strings.Trim(pat, "*")
		return func(s string) bool { return strings.Contains(s, mid) }
	case pre:
		p := strings.TrimSuffix(pat, "*")
		return func(s string) bool { return strings.HasPrefix(s, p) }
	case suf:
		p := strings.TrimPrefix(pat, "*")
		return func(s string) bool { return strings.HasSuffix(s, p) }
	default:
		return func(s string) bool { return s == pat }
	}
}

// Len returns the number of compiled rules.
func (s *Set) Len() int { return len(s.rules) }

// OpMask returns the OR of every rule's trigger-operation bits; a sealed
// batch whose op bitmap doesn't intersect it cannot produce an alert.
func (s *Set) OpMask() uint32 { return s.opMask }

// Rule returns the i-th rule as authored.
func (s *Set) Rule(i int) *Rule { return &s.rules[i].rule }

// RuleTacticRank returns the i-th rule's kill-chain position.
func (s *Set) RuleTacticRank(i int) int { return s.rules[i].tacticRank }

// RuleSeverity returns the i-th rule's effective severity (1..10).
func (s *Set) RuleSeverity(i int) int { return s.rules[i].severity }

// Match appends to dst the indices of every rule matching the event and
// returns the extended slice. subj and obj are the event's entities (nil
// entities fail every predicate on that side).
func (s *Set) Match(ev *audit.Event, subj, obj *audit.Entity, dst []int) []int {
	opBit := ev.Op.Bit()
	for i := range s.rules {
		c := &s.rules[i]
		if c.opMask&opBit == 0 {
			continue
		}
		if !sideMatches(subj, c.subjKind, c.subj) {
			continue
		}
		if !sideMatches(obj, c.objKind, c.obj) {
			continue
		}
		dst = append(dst, i)
	}
	return dst
}

func sideMatches(e *audit.Entity, kind audit.EntityKind, preds []attrMatch) bool {
	if kind == audit.EntityInvalid && len(preds) == 0 {
		return true
	}
	if e == nil {
		return false
	}
	if kind != audit.EntityInvalid && e.Kind != kind {
		return false
	}
	for i := range preds {
		v, ok := e.Attr(preds[i].attr)
		if !ok || !preds[i].match(v) {
			return false
		}
	}
	return true
}
