package rules

import (
	"testing"

	"threatraptor/internal/audit"
)

// buildLog parses a small simulator run into a log and returns it.
func buildLog(t *testing.T, fill func(*audit.Simulator)) *audit.Log {
	t.Helper()
	sim := audit.NewSimulator(1, 1_700_000_000_000_000)
	fill(sim)
	log, err := audit.ParseRecords(sim.Records())
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// matchNames runs the set over every event and returns the matched rule
// names per event.
func matchNames(set *Set, log *audit.Log) [][]string {
	var out [][]string
	for i := range log.Events {
		ev := &log.Events[i]
		idxs := set.Match(ev, log.Entities.Lookup(ev.SubjectID), log.Entities.Lookup(ev.ObjectID), nil)
		var names []string
		for _, idx := range idxs {
			names = append(names, set.Rule(idx).Name)
		}
		out = append(out, names)
	}
	return out
}

func TestCompileAndMatch(t *testing.T) {
	set, err := Compile([]Rule{
		{Name: "etc-read", Tactic: "credential-access", Ops: []string{"read"},
			Where: map[string]string{"object.kind": "file", "object.name": "/etc/*"}},
		{Name: "tar-subject", Tactic: "collection", Ops: []string{"write"},
			Where: map[string]string{"subject.exename": "*tar*"}},
		{Name: "any-connect", Tactic: "command-and-control", Ops: []string{"connect"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("Len = %d, want 3", set.Len())
	}
	tar := audit.Proc{PID: 10, Exe: "/bin/tar", User: "u", Group: "g"}
	vim := audit.Proc{PID: 11, Exe: "/usr/bin/vim", User: "u", Group: "g"}
	log := buildLog(t, func(sim *audit.Simulator) {
		sim.ReadFile(tar, "/etc/passwd", 100)                       // etc-read
		sim.WriteFile(tar, "/tmp/out.tar", 100)                     // tar-subject
		sim.ReadFile(vim, "/home/u/x.txt", 100)                     // nothing
		sim.Connect(vim, "10.0.0.8", 50000, "10.0.0.1", 443, "tcp") // any-connect
	})
	got := matchNames(set, log)
	want := [][]string{{"etc-read"}, {"tar-subject"}, nil, {"any-connect"}}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("event %d matched %v, want %v", i, got[i], want[i])
			continue
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("event %d matched %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestMatcherForms(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"/etc/passwd", "/etc/passwd", true},
		{"/etc/passwd", "/etc/shadow", false},
		{"/tmp/*", "/tmp/payload.so", true},
		{"/tmp/*", "/var/tmp/x", false},
		{"*.so", "/tmp/libfoo.so", true},
		{"*.so", "/tmp/libfoo.txt", false},
		{"*passwd*", "/etc/passwd.bak", true},
		{"*passwd*", "/etc/group", false},
	}
	for _, c := range cases {
		if got := compileMatcher(c.pat)(c.s); got != c.want {
			t.Errorf("matcher(%q)(%q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestOpMaskGating(t *testing.T) {
	set, err := Compile([]Rule{
		{Name: "w", Tactic: "collection", Ops: []string{"write", "send"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := audit.OpWrite.Bit() | audit.OpSend.Bit()
	if set.OpMask() != want {
		t.Fatalf("OpMask = %b, want %b", set.OpMask(), want)
	}
	// An empty Ops list means any operation.
	set, err = Compile([]Rule{{Name: "any", Tactic: "impact"}})
	if err != nil {
		t.Fatal(err)
	}
	if set.OpMask() != ^uint32(0) {
		t.Fatalf("unconstrained OpMask = %b, want all ones", set.OpMask())
	}
}

func TestCompileErrors(t *testing.T) {
	bad := [][]Rule{
		{{Tactic: "impact"}}, // no name
		{{Name: "a", Tactic: "impact"}, {Name: "a", Tactic: "impact"}}, // dup
		{{Name: "a"}}, // no tactic
		{{Name: "a", Tactic: "impact", Ops: []string{"frob"}}},                          // bad op
		{{Name: "a", Tactic: "impact", Where: map[string]string{"path": "x"}}},          // no side
		{{Name: "a", Tactic: "impact", Where: map[string]string{"object.kind": "gpu"}}}, // bad kind
	}
	for i, rs := range bad {
		if _, err := Compile(rs); err == nil {
			t.Errorf("case %d: Compile accepted invalid rules %v", i, rs)
		}
	}
}

func TestTacticRank(t *testing.T) {
	if TacticRank("initial-access") != 0 {
		t.Fatal("initial-access should rank first")
	}
	if TacticRank("exfiltration") <= TacticRank("credential-access") {
		t.Fatal("exfiltration must rank after credential-access")
	}
	if TacticRank("made-up") != len(killChain) {
		t.Fatalf("unknown tactic rank = %d, want %d", TacticRank("made-up"), len(killChain))
	}
}

func TestSeverityDefaultsAndClamp(t *testing.T) {
	set, err := Compile([]Rule{
		{Name: "default", Tactic: "impact"},
		{Name: "clamped", Tactic: "impact", Severity: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.RuleSeverity(0); got != 5 {
		t.Fatalf("default severity = %d, want 5", got)
	}
	if got := set.RuleSeverity(1); got != 10 {
		t.Fatalf("clamped severity = %d, want 10", got)
	}
}

func TestParseJSONForms(t *testing.T) {
	array := `[{"name":"a","tactic":"impact","ops":["read"]}]`
	wrapped := `{"rules":[{"name":"a","tactic":"impact","ops":["read"]}]}`
	for _, src := range []string{array, wrapped} {
		set, err := ParseJSON([]byte(src))
		if err != nil {
			t.Fatalf("ParseJSON(%q): %v", src, err)
		}
		if set.Len() != 1 || set.Rule(0).Name != "a" {
			t.Fatalf("ParseJSON(%q) compiled %d rules", src, set.Len())
		}
	}
	if _, err := ParseJSON([]byte(`{"not json`)); err == nil {
		t.Fatal("ParseJSON accepted malformed input")
	}
}
