package engine

import (
	"sort"
	"sync"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/qir"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// patternPlan is one pattern's compiled data query: its logical-plan IR
// plus the lowered backend plans. Graph patterns lower eagerly to one
// traversal plan (parameters bind per execution); event patterns lower
// lazily to exactly two relational statements — the entity-anchored plan
// whose optional parameter predicates (binding sets, delta floor) prune
// themselves at execution, and the events-anchored catch-up plan delta
// rounds use so the scan starts at the floor. Every execution reuses a
// compiled physical plan and binds values — no text, no parsing, no
// per-binding-set cache, no per-extras-shape variants.
type patternPlan struct {
	usesGraph bool
	ir        *qir.DataQuery
	gq        *graphdb.Query
	// opMask is the OR of the op-code bits the pattern's bound event can
	// take (^0 when unconstrained): view catch-up skips its data query
	// entirely when a delta's batch op bitmap doesn't intersect it.
	opMask uint32

	mu       sync.Mutex
	rel      *relational.Prepared // entity-anchored, runtime-pruned params
	relDelta *relational.Prepared // events-anchored, for delta floors

	// view is the pattern's materialized match cache (standing queries;
	// nil until ExecuteDelta first materializes it). Guarded by the owning
	// queryPlan's viewMu.
	view *matView
}

// patternOpMask folds a pattern's admissible operations into an op-code
// bitmask. Only the bound (final-hop) event is constrained, so anything
// other than an event pattern or a single-hop path is unconstrained (^0)
// — as is an empty op list or an op keyword the audit model doesn't know.
func patternOpMask(ir *qir.DataQuery) uint32 {
	var ops []string
	switch {
	case ir.Event != nil:
		ops = ir.Event.Ops
	case ir.Path != nil && ir.Path.MinLen == 1 && ir.Path.MaxLen == 1:
		ops = ir.Path.Ops
	}
	if len(ops) == 0 {
		return ^uint32(0)
	}
	var mask uint32
	for _, name := range ops {
		op, err := audit.ParseOp(name)
		if err != nil {
			return ^uint32(0)
		}
		mask |= op.Bit()
	}
	return mask
}

// prepared returns the pattern's compiled relational plan, lowering and
// compiling it on first use against the owning queryPlan's fixed bounds
// (so lazy compilation on a reader goroutine never touches the writer's
// live Store bounds).
func (pp *patternPlan) prepared(s *Store, b timeBounds) (*relational.Prepared, error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.rel == nil {
		pr, err := s.Rel.Prepare(lowerEventStmt(b, pp.ir.Event))
		if err != nil {
			return nil, err
		}
		pp.rel = pr
	}
	return pp.rel, nil
}

// preparedDelta returns the pattern's events-anchored catch-up plan,
// lowering and compiling it on first use.
func (pp *patternPlan) preparedDelta(s *Store, b timeBounds) (*relational.Prepared, error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.relDelta == nil {
		pr, err := s.Rel.Prepare(lowerEventStmtDeltaAnchored(b, pp.ir.Event))
		if err != nil {
			return nil, err
		}
		pp.relDelta = pr
	}
	return pp.relDelta, nil
}

// queryPlan caches everything about an analyzed TBQL query that does not
// change between executions: the pruning-score order, the dependency
// levels for the parallel path, the per-pattern IR, and the lowered
// backend plans.
type queryPlan struct {
	order []int
	// levels partitions the scheduled order into dependency levels:
	// patterns within one level share no entity variable with each other,
	// so they cannot feed constraints to one another and may execute
	// concurrently; every pattern shares at least one entity variable
	// with some earlier level (or is in level 0).
	levels [][]int
	irs    []*qir.DataQuery
	pats   []patternPlan
	// cols caches the query's projected column labels (shared by every
	// delta round's result set).
	cols []string
	// windowSensitive marks plans whose lowered window conditions resolve
	// against the store's time bounds (LAST/BEFORE/AFTER); they are
	// re-lowered from the cached IR when a live append moves the bounds.
	// boundsEpoch records the bounds generation lowered against, and bounds
	// the actual bound values — lazy per-pattern lowering reuses them so
	// the whole plan is consistent with one epoch.
	windowSensitive bool
	boundsEpoch     uint64
	bounds          timeBounds

	// viewMu guards every pattern's materialized view (pats[i].view) —
	// ExecuteDelta holds it across catch-up and the view-backed join.
	viewMu sync.Mutex
	// viewsDisabled records that a view of this plan hit the row cap (or
	// proved unmaintainable): the whole query evaluates through the
	// recompute path and no view of the plan is maintained or charged
	// against the cap. The latch is not permanent: disabledGen remembers
	// the engine's view-release generation at fallback time, and the next
	// delta round retries materialization once other views have released
	// rows since (DropViews also re-arms directly). Under sustained cap
	// pressure with no releases, no retry — no per-round O(store) waste.
	viewsDisabled bool
	disabledGen   int64

	// Monolithic plans (the paper's RQ4 naive comparison), lowered lazily.
	monoMu     sync.Mutex
	monoSQL    *relational.Prepared
	monoSQLErr error
	monoCy     *graphdb.Query
	monoCyErr  error
}

type planKey struct {
	a     *tbql.Analyzed
	sched bool
}

// maxCachedQueryPlans bounds the per-engine plan cache; entries are keyed
// by *tbql.Analyzed identity, so callers that re-analyze per call (Hunt)
// miss and would otherwise grow the map without bound. On overflow the
// cache is flushed wholesale.
const maxCachedQueryPlans = 256

// planFor returns the cached plan for a, building it on first use. A
// cached plan whose lowered window conditions depend on the store's time
// bounds is re-lowered (from the cached IR, never from source) when a live
// append has moved the bounds; plans without such windows survive appends
// untouched. snap, when non-nil, is the execution's pinned snapshot: the
// plan's epoch and window bounds come from it, so a hunt racing an append
// gets a plan consistent with the store generation it reads (and never
// loads the writer-mutated live bounds). A nil snap (writer-synchronized
// paths: the monolithic RQ4 comparisons) uses the live bounds.
func (en *Engine) planFor(a *tbql.Analyzed, snap *Snapshot) *queryPlan {
	key := planKey{a: a, sched: !en.DisableScheduling}
	var epoch uint64
	var b timeBounds
	if snap != nil {
		epoch, b = snap.Epoch, snap.bounds()
	} else {
		epoch, b = en.Store.BoundsEpoch(), en.Store.bounds()
	}
	en.planMu.Lock()
	defer en.planMu.Unlock()
	prev := en.plans[key]
	if prev != nil && (!prev.windowSensitive || prev.boundsEpoch == epoch) {
		return prev
	}
	if len(en.plans) >= maxCachedQueryPlans {
		for _, old := range en.plans {
			en.releasePlanViews(old)
		}
		en.plans = nil
	}
	var irs []*qir.DataQuery
	if prev != nil {
		irs = prev.irs // bounds moved: recompile from the cached IR
	} else {
		irs = tbql.Lower(a)
	}
	p := &queryPlan{order: en.schedule(a), boundsEpoch: epoch, bounds: b, irs: irs, cols: returnColumns(a)}
	p.levels = dependencyLevels(a.Query.Patterns, p.order)
	p.pats = make([]patternPlan, len(irs))
	for i, ir := range irs {
		pp := &p.pats[i]
		pp.ir = ir
		pp.usesGraph = ir.UsesGraph()
		pp.opMask = patternOpMask(ir)
		if pp.usesGraph {
			pp.gq = lowerPathQuery(b, ir.Path)
		}
		if ir.Window().Sensitive() {
			p.windowSensitive = true
		}
	}
	if prev != nil {
		// Bounds-epoch recompile: materialized views of window-insensitive
		// patterns describe the same match set under the new plan, so they
		// migrate instead of rematerializing. Window-sensitive patterns'
		// match sets moved with the bounds: LAST-window views slide —
		// evict below the new lower bound, keep the frontier — and the
		// remaining sensitive kinds are released. A fallen-back plan stays
		// fallen back until DropViews re-arms it.
		prev.viewMu.Lock()
		p.viewsDisabled = prev.viewsDisabled
		for i := range prev.pats {
			old := &prev.pats[i]
			if old.view == nil {
				continue
			}
			if old.ir.Window().Sensitive() {
				if mv := en.migrateSensitiveView(old, b); mv != nil {
					p.pats[i].view = mv // LAST window: slide, don't rebuild
				} else {
					en.releaseViewRows(old.view.retained())
				}
			} else {
				p.pats[i].view = old.view
			}
			old.view = nil
		}
		prev.viewMu.Unlock()
	}
	if en.plans == nil {
		en.plans = make(map[planKey]*queryPlan)
	}
	en.plans[key] = p
	return p
}

// releasePlanViews returns every materialized row of the plan's views to
// the engine's accounting (called when a plan leaves the cache, and by
// DropViews, which also re-arms a fallen-back plan for a fresh try).
func (en *Engine) releasePlanViews(p *queryPlan) {
	p.viewMu.Lock()
	for i := range p.pats {
		if v := p.pats[i].view; v != nil {
			en.releaseViewRows(v.retained())
			p.pats[i].view = nil
		}
	}
	p.viewsDisabled = false
	p.viewMu.Unlock()
}

// DropViews releases the materialized pattern views cached for an
// analyzed query (both scheduling modes). The standing-query layer calls
// it when a subscription is removed, so long-lived sessions do not keep
// match caches for queries nobody watches; the plans themselves stay
// cached and the next ExecuteDelta rematerializes on demand.
func (en *Engine) DropViews(a *tbql.Analyzed) {
	en.planMu.Lock()
	defer en.planMu.Unlock()
	for _, sched := range []bool{false, true} {
		if p := en.plans[planKey{a: a, sched: sched}]; p != nil {
			en.releasePlanViews(p)
		}
	}
}

// monolithicSQL returns the plan's compiled monolithic statement, lowering
// it on first use.
func (p *queryPlan) monolithicSQL(s *Store, a *tbql.Analyzed) (*relational.Prepared, error) {
	p.monoMu.Lock()
	defer p.monoMu.Unlock()
	if p.monoSQL != nil || p.monoSQLErr != nil {
		return p.monoSQL, p.monoSQLErr
	}
	stmt, err := lowerMonolithicStmt(s, a)
	if err == nil {
		p.monoSQL, err = s.Rel.Prepare(stmt)
	}
	p.monoSQLErr = err
	return p.monoSQL, err
}

// monolithicCypher returns the plan's lowered monolithic graph query (the
// clause-at-a-time flag is set here, as the RQ4 comparison requires).
func (p *queryPlan) monolithicCypher(s *Store, a *tbql.Analyzed) (*graphdb.Query, error) {
	p.monoMu.Lock()
	defer p.monoMu.Unlock()
	if p.monoCy != nil || p.monoCyErr != nil {
		return p.monoCy, p.monoCyErr
	}
	q, err := lowerMonolithicCypher(s, a)
	if err == nil {
		q.ClauseAtATime = true
	}
	p.monoCy, p.monoCyErr = q, err
	return q, err
}

// schedule orders pattern indexes by descending pruning score
// (Section III-F): more declared constraints score higher; variable-length
// paths score lower the longer their maximum length.
func (en *Engine) schedule(a *tbql.Analyzed) []int {
	n := len(a.Query.Patterns)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if en.DisableScheduling {
		return order
	}
	scores := make([]int, n)
	for i, p := range a.Query.Patterns {
		scores[i] = en.pruningScore(a, p)
	}
	sort.SliceStable(order, func(x, y int) bool {
		return scores[order[x]] > scores[order[y]]
	})
	return order
}

func (en *Engine) pruningScore(a *tbql.Analyzed, p *tbql.Pattern) int {
	score := 0
	if f := a.Entities[p.Subject.ID].Filter; f != nil {
		score += countConjuncts(f)
	}
	if f := a.Entities[p.Object.ID].Filter; f != nil {
		score += countConjuncts(f)
	}
	if p.IDFilter != nil {
		score += countConjuncts(p.IDFilter)
	}
	if p.Op != nil && len(p.Op.Ops()) < 9 {
		score++
	}
	if windowOf(a.Query, p) != nil {
		score++
	}
	score *= 8 // constraints dominate path length
	if p.Path != nil {
		if p.Path.MaxLen < 0 {
			score -= 64
		} else {
			score -= p.Path.MaxLen
		}
	}
	return score
}

// dependencyLevels walks the scheduled order and assigns each pattern to
// the earliest level after every earlier pattern it shares an entity
// variable with: a pattern that shares nothing with anything before it
// lands in an existing level and runs concurrently with that level's
// patterns, while chained patterns serialize so the scheduler can feed
// bindings forward.
func dependencyLevels(patterns []*tbql.Pattern, order []int) [][]int {
	var levels [][]int
	entLevel := make(map[string]int) // entity var -> highest level seen
	for _, idx := range order {
		p := patterns[idx]
		lvl := 0
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if l, ok := entLevel[id]; ok && l+1 > lvl {
				lvl = l + 1
			}
		}
		for len(levels) <= lvl {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], idx)
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if l, ok := entLevel[id]; !ok || lvl > l {
				entLevel[id] = lvl
			}
		}
	}
	return levels
}
