package engine

import (
	"sort"

	"threatraptor/internal/tbql"
)

// patternPlan is one pattern's compiled data query: the static SQL or
// Cypher text parts, assembled with the scheduler's extras at run time.
// plain is the no-extras assembly, built once; cache keys the extra-bearing
// assemblies by binding set (see textcache.go).
type patternPlan struct {
	usesGraph bool
	sql       sqlPatternParts
	cy        cyPatternParts
	plain     string
	cache     *patternTextCache
}

// queryPlan caches everything about an analyzed TBQL query that does not
// change between executions: the pruning-score order, the dependency
// levels for the parallel path, and each pattern's compiled query text.
type queryPlan struct {
	order []int
	// levels partitions the scheduled order into dependency levels:
	// patterns within one level share no entity variable with each other,
	// so they cannot feed constraints to one another and may execute
	// concurrently; every pattern shares at least one entity variable
	// with some earlier level (or is in level 0).
	levels [][]int
	pats   []patternPlan
	// windowSensitive marks plans whose compiled texts bake in the
	// store's time bounds (LAST/BEFORE/AFTER windows resolve against
	// MinTime/MaxTime); they are recompiled when a live append moves the
	// bounds. boundsEpoch records the bounds generation compiled against.
	windowSensitive bool
	boundsEpoch     uint64
}

type planKey struct {
	a     *tbql.Analyzed
	sched bool
}

// maxCachedQueryPlans bounds the per-engine plan cache; entries are keyed
// by *tbql.Analyzed identity, so callers that re-analyze per call (Hunt)
// miss and would otherwise grow the map without bound. On overflow the
// cache is flushed wholesale.
const maxCachedQueryPlans = 256

// planFor returns the cached plan for a, building it on first use. A
// cached plan whose compiled window conditions depend on the store's time
// bounds is rebuilt when a live append has moved the bounds; plans without
// such windows survive appends untouched.
func (en *Engine) planFor(a *tbql.Analyzed) *queryPlan {
	key := planKey{a: a, sched: !en.DisableScheduling}
	epoch := en.Store.BoundsEpoch()
	en.planMu.Lock()
	defer en.planMu.Unlock()
	if p, ok := en.plans[key]; ok {
		if !p.windowSensitive || p.boundsEpoch == epoch {
			return p
		}
	}
	if len(en.plans) >= maxCachedQueryPlans {
		en.plans = nil
	}
	p := &queryPlan{order: en.schedule(a), boundsEpoch: epoch}
	p.levels = dependencyLevels(a.Query.Patterns, p.order)
	p.pats = make([]patternPlan, len(a.Query.Patterns))
	for i := range a.Query.Patterns {
		pp := &p.pats[i]
		pp.usesGraph = a.Query.Patterns[i].Path != nil
		if pp.usesGraph {
			pp.cy = compilePatternCypherParts(en.Store, a, i)
			pp.plain = pp.cy.assemble(nil)
		} else {
			pp.sql = compilePatternSQLParts(en.Store, a, i)
			pp.plain = pp.sql.assemble(nil)
		}
		pp.cache = &patternTextCache{}
		if w := windowOf(a.Query, a.Query.Patterns[i]); w != nil {
			switch w.Kind {
			case tbql.WindBefore, tbql.WindAfter, tbql.WindLast:
				p.windowSensitive = true
			}
		}
	}
	if en.plans == nil {
		en.plans = make(map[planKey]*queryPlan)
	}
	en.plans[key] = p
	return p
}

// schedule orders pattern indexes by descending pruning score
// (Section III-F): more declared constraints score higher; variable-length
// paths score lower the longer their maximum length.
func (en *Engine) schedule(a *tbql.Analyzed) []int {
	n := len(a.Query.Patterns)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if en.DisableScheduling {
		return order
	}
	scores := make([]int, n)
	for i, p := range a.Query.Patterns {
		scores[i] = en.pruningScore(a, p)
	}
	sort.SliceStable(order, func(x, y int) bool {
		return scores[order[x]] > scores[order[y]]
	})
	return order
}

func (en *Engine) pruningScore(a *tbql.Analyzed, p *tbql.Pattern) int {
	score := 0
	if f := a.Entities[p.Subject.ID].Filter; f != nil {
		score += countConjuncts(f)
	}
	if f := a.Entities[p.Object.ID].Filter; f != nil {
		score += countConjuncts(f)
	}
	if p.IDFilter != nil {
		score += countConjuncts(p.IDFilter)
	}
	if p.Op != nil && len(p.Op.Ops()) < 9 {
		score++
	}
	if windowOf(a.Query, p) != nil {
		score++
	}
	score *= 8 // constraints dominate path length
	if p.Path != nil {
		if p.Path.MaxLen < 0 {
			score -= 64
		} else {
			score -= p.Path.MaxLen
		}
	}
	return score
}

// dependencyLevels walks the scheduled order and assigns each pattern to
// the earliest level after every earlier pattern it shares an entity
// variable with: a pattern that shares nothing with anything before it
// lands in an existing level and runs concurrently with that level's
// patterns, while chained patterns serialize so the scheduler can feed
// bindings forward.
func dependencyLevels(patterns []*tbql.Pattern, order []int) [][]int {
	var levels [][]int
	entLevel := make(map[string]int) // entity var -> highest level seen
	for _, idx := range order {
		p := patterns[idx]
		lvl := 0
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if l, ok := entLevel[id]; ok && l+1 > lvl {
				lvl = l + 1
			}
		}
		for len(levels) <= lvl {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], idx)
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if l, ok := entLevel[id]; !ok || lvl > l {
				entLevel[id] = lvl
			}
		}
	}
	return levels
}
