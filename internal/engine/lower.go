package engine

// This file lowers the shared logical-plan IR (internal/qir) to the two
// backends' executable plan forms: relational statement ASTs (compiled by
// the relational planner into its physical nested-loop/vectorized plan)
// and graph query ASTs (consumed by the traversal matcher). No SQL or
// Cypher text is rendered and no parser runs anywhere in here — the
// scheduler's binding sets and the standing-query delta floor become
// parameter slots bound at execution.

import (
	"fmt"

	"threatraptor/internal/graphdb"
	"threatraptor/internal/qir"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

func colRef(alias, column string) relational.ColRef {
	return relational.ColRef{Qualifier: alias, Column: column}
}

func strLit(s string) relational.Lit { return relational.Lit{V: relational.Str(s)} }
func intLit(i int64) relational.Lit  { return relational.Lit{V: relational.Int(i)} }

func binOp(op string, l, r relational.Expr) relational.Expr {
	return relational.BinOp{Op: op, L: l, R: r}
}

// andChain conjoins conds left to right (the planner flattens the tree
// back into this conjunct order).
func andChain(conds []relational.Expr) relational.Expr {
	if len(conds) == 0 {
		return nil
	}
	e := conds[0]
	for _, c := range conds[1:] {
		e = relational.BinOp{Op: "and", L: e, R: c}
	}
	return e
}

// qualify returns pred with every column reference qualified by alias and
// its column name mapped through mapCol (nil = identity).
func qualify(pred relational.Expr, alias string, mapCol func(string) string) relational.Expr {
	switch v := pred.(type) {
	case relational.ColRef:
		col := v.Column
		if mapCol != nil {
			col = mapCol(col)
		}
		return relational.ColRef{Qualifier: alias, Column: col}
	case relational.Lit:
		return v
	case relational.BinOp:
		return relational.BinOp{Op: v.Op, L: qualify(v.L, alias, mapCol), R: qualify(v.R, alias, mapCol)}
	case relational.UnOp:
		return relational.UnOp{Op: v.Op, E: qualify(v.E, alias, mapCol)}
	case relational.InList:
		vals := make([]relational.Expr, len(v.Vals))
		for i, x := range v.Vals {
			vals[i] = qualify(x, alias, mapCol)
		}
		return relational.InList{E: qualify(v.E, alias, mapCol), Vals: vals, Negate: v.Negate}
	}
	return pred
}

// opsCond builds the operation constraint for an alias, or nil when any
// operation matches.
func opsCond(alias string, ops []string) relational.Expr {
	switch len(ops) {
	case 0:
		return nil
	case 1:
		return binOp("=", colRef(alias, "op"), strLit(ops[0]))
	}
	vals := make([]relational.Expr, len(ops))
	for i, op := range ops {
		vals[i] = strLit(op)
	}
	return relational.InList{E: colRef(alias, "op"), Vals: vals}
}

// eventSelect is the data-query projection shared by every event pattern:
// event ID, subject ID, object ID, start and end time.
func eventSelect() []relational.SelectItem {
	return []relational.SelectItem{
		{Expr: colRef("e", "id")},
		{Expr: colRef("s", "id")},
		{Expr: colRef("o", "id")},
		{Expr: colRef("e", "start_time")},
		{Expr: colRef("e", "end_time")},
	}
}

// lowerEventStmt lowers one event pattern's IR to a single relational
// statement AST carrying every parameter constraint as an optional,
// runtime-pruned conjunct: the subject/object binding sets (Optional
// ParamIDs — an unbound list constrains nothing and an index access
// planned from it falls back) and the standing-query delta floor (Prune
// Param — a zero floor deactivates the conjunct). One compiled plan thus
// serves all eight extras shapes the scheduler can produce, where the
// previous design compiled up to eight lazily-materialized variants. The
// join anchors on the statically more constrained entity side.
func lowerEventStmt(b timeBounds, ej *qir.EventJoin) *relational.SelectStmt {
	from := []relational.TableRef{
		{Table: "entities", Alias: "s"},
		{Table: "events", Alias: "e"},
		{Table: "entities", Alias: "o"},
	}
	if ej.ObjConjuncts > ej.SubjConjuncts {
		from[0], from[2] = from[2], from[0]
	}
	return &relational.SelectStmt{
		Select: eventSelect(),
		From:   from,
		Where:  andChain(eventConds(b, ej)),
		Limit:  -1,
	}
}

// lowerEventStmtDeltaAnchored lowers the same pattern anchored on the
// events table: the standing-query catch-up plan. With the delta floor at
// level 0, the relational scan-floor optimization starts the events scan
// at the binary-searched first new row (event IDs are dense and
// ascending), and the entities join via id-index probes — so a delta
// round's data query costs O(new events), however large the store is.
func lowerEventStmtDeltaAnchored(b timeBounds, ej *qir.EventJoin) *relational.SelectStmt {
	return &relational.SelectStmt{
		Select: eventSelect(),
		From: []relational.TableRef{
			{Table: "events", Alias: "e"},
			{Table: "entities", Alias: "s"},
			{Table: "entities", Alias: "o"},
		},
		Where: andChain(eventConds(b, ej)),
		Limit: -1,
	}
}

// eventConds builds the WHERE conjuncts shared by both anchorings of an
// event pattern. The delta floor leads so the floor-anchored plan attaches
// it to its level-0 scan. Windows resolve against the caller's fixed
// bounds (the pinned snapshot's, for concurrent executions).
func eventConds(b timeBounds, ej *qir.EventJoin) []relational.Expr {
	conds := []relational.Expr{
		binOp(">=", colRef("e", "id"), relational.Param{Slot: qir.SlotDelta, Prune: true}),
		binOp("=", colRef("e", "subject_id"), colRef("s", "id")),
		binOp("=", colRef("e", "object_id"), colRef("o", "id")),
		binOp("=", colRef("s", "kind"), strLit("proc")),
		binOp("=", colRef("o", "kind"), strLit(ej.ObjKind)),
	}
	if c := opsCond("e", ej.Ops); c != nil {
		conds = append(conds, c)
	}
	if ej.SubjPred != nil {
		conds = append(conds, qualify(ej.SubjPred, "s", sqlColumn))
	}
	if ej.ObjPred != nil {
		conds = append(conds, qualify(ej.ObjPred, "o", sqlColumn))
	}
	if ej.EventPred != nil {
		conds = append(conds, qualify(ej.EventPred, "e", nil))
	}
	if ej.Window != nil {
		lo, hi := ej.Window.Bounds(b.min, b.max)
		conds = append(conds,
			binOp(">=", colRef("e", "start_time"), intLit(lo)),
			binOp("<=", colRef("e", "start_time"), intLit(hi)))
	}
	conds = append(conds,
		relational.ParamIDs{E: colRef("s", "id"), Slot: qir.SlotSubjIDs, Optional: true},
		relational.ParamIDs{E: colRef("o", "id"), Slot: qir.SlotObjIDs, Optional: true})
	return conds
}

// lowerPathQuery lowers one path pattern's IR to a graph traversal plan.
// Binding sets and the delta floor stay out of the plan; they bind per
// execution through graphdb.ExecParams (variables "s", "o", "e").
func lowerPathQuery(b timeBounds, pm *qir.PathMatch) *graphdb.Query {
	subjLabel := LabelProcess
	objLabel := labelOf(pm.ObjKind)

	var pat graphdb.Pattern
	switch {
	case pm.MinLen == 1 && pm.MaxLen == 1:
		// Single hop (event pattern or length-1 path).
		pat = graphdb.Pattern{
			Nodes: []graphdb.NodePat{{Var: "s", Label: subjLabel}, {Var: "o", Label: objLabel}},
			Rels:  []graphdb.RelPat{{Var: "e", Types: pm.Ops, Dir: graphdb.DirOut, Min: 1, Max: 1}},
		}
	case pm.HasEdgeVar:
		// Variable-length information flow with a typed final hop: the
		// intermediate hops are direction-agnostic, the final hop lands on
		// the object and binds the event variable.
		hi := pm.MaxLen - 1
		if pm.MaxLen < 0 {
			hi = -1
		}
		pat = graphdb.Pattern{
			Nodes: []graphdb.NodePat{{Var: "s", Label: subjLabel}, {Var: "m"}, {Var: "o", Label: objLabel}},
			Rels: []graphdb.RelPat{
				{Dir: graphdb.DirBoth, Min: pm.MinLen - 1, Max: hi},
				{Var: "e", Types: pm.Ops, Dir: graphdb.DirOut, Min: 1, Max: 1},
			},
		}
	default:
		pat = graphdb.Pattern{
			Nodes: []graphdb.NodePat{{Var: "s", Label: subjLabel}, {Var: "o", Label: objLabel}},
			Rels:  []graphdb.RelPat{{Dir: graphdb.DirBoth, Min: pm.MinLen, Max: pm.MaxLen}},
		}
	}

	var conds []relational.Expr
	if pm.SubjPred != nil {
		conds = append(conds, qualify(pm.SubjPred, "s", nil))
	}
	if pm.ObjPred != nil {
		conds = append(conds, qualify(pm.ObjPred, "o", nil))
	}
	if pm.HasEdgeVar {
		if pm.EdgePred != nil {
			conds = append(conds, qualify(pm.EdgePred, "e", nil))
		}
		if pm.Window != nil {
			lo, hi := pm.Window.Bounds(b.min, b.max)
			conds = append(conds,
				binOp(">=", colRef("e", "start_time"), intLit(lo)),
				binOp("<=", colRef("e", "start_time"), intLit(hi)))
		}
	}

	ret := []graphdb.ReturnItem{{Var: "s", Prop: "id"}, {Var: "o", Prop: "id"}}
	if pm.HasEdgeVar {
		ret = []graphdb.ReturnItem{
			{Var: "e", Prop: "id"}, {Var: "s", Prop: "id"}, {Var: "o", Prop: "id"},
			{Var: "e", Prop: "start_time"}, {Var: "e", Prop: "end_time"},
		}
	}
	return &graphdb.Query{
		Patterns: []graphdb.Pattern{pat},
		Where:    andChain(conds),
		Return:   ret,
		Limit:    -1,
	}
}

// lowerMonolithicStmt lowers the whole query into one statement AST — the
// naive plan the paper compares against (query type (b) in RQ4): every
// pattern's joins and every filter woven into a single FROM/WHERE, entity
// tables first, the textbook declarative translation.
func lowerMonolithicStmt(s *Store, a *tbql.Analyzed) (*relational.SelectStmt, error) {
	q := a.Query
	var from []relational.TableRef
	var conds []relational.Expr
	seenEnt := make(map[string]bool)
	addEntity := func(id string) {
		if !seenEnt[id] {
			seenEnt[id] = true
			from = append(from, relational.TableRef{Table: "entities", Alias: id})
		}
	}
	for _, p := range q.Patterns {
		addEntity(p.Subject.ID)
		addEntity(p.Object.ID)
	}
	for i, p := range q.Patterns {
		if p.Path != nil && (p.Path.MinLen != 1 || p.Path.MaxLen != 1) {
			return nil, fmt.Errorf("engine: variable-length path patterns cannot compile to SQL")
		}
		ev := fmt.Sprintf("e%d", i+1)
		from = append(from, relational.TableRef{Table: "events", Alias: ev})
		conds = append(conds,
			binOp("=", colRef(ev, "subject_id"), relational.ColRef{Qualifier: p.Subject.ID, Column: "id"}),
			binOp("=", colRef(ev, "object_id"), relational.ColRef{Qualifier: p.Object.ID, Column: "id"}),
		)
		if c := opsCond(ev, tbql.LoweredOps(p.Op)); c != nil {
			conds = append(conds, c)
		}
		if p.IDFilter != nil {
			conds = append(conds, qualify(p.IDFilter, ev, nil))
		}
		if w := windowOf(q, p); w != nil {
			lo, hi := s.timeWindow(w)
			conds = append(conds,
				binOp(">=", colRef(ev, "start_time"), intLit(lo)),
				binOp("<=", colRef(ev, "start_time"), intLit(hi)))
		}
	}
	for _, id := range a.EntityOrder {
		decl := a.Entities[id]
		conds = append(conds, binOp("=", colRef(decl.ID, "kind"), strLit(kindLiteral(decl.Type))))
		if decl.Filter != nil {
			conds = append(conds, qualify(decl.Filter, decl.ID, sqlColumn))
		}
	}
	for _, rel := range q.Relations {
		c, err := temporalExpr(a, rel)
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
	}
	proj := make([]relational.SelectItem, len(a.ReturnItems))
	for i, item := range a.ReturnItems {
		proj[i] = relational.SelectItem{Expr: colRef(item.EntityID, sqlColumn(item.Attr))}
	}
	return &relational.SelectStmt{
		Distinct: q.Return.Distinct,
		Select:   proj,
		From:     from,
		Where:    andChain(conds),
		Limit:    -1,
	}, nil
}

// temporalExpr builds the comparison tree of one temporal or attribute
// relationship between pattern event aliases (shared by the monolithic SQL
// and Cypher lowerings, whose comparison semantics are identical).
func temporalExpr(a *tbql.Analyzed, rel tbql.Relation) (relational.Expr, error) {
	if rel.Kind == tbql.RelAttr {
		bin, ok := rel.Attr.(relational.BinOp)
		if !ok {
			return nil, fmt.Errorf("engine: unsupported attribute relation")
		}
		l, okL := bin.L.(relational.ColRef)
		r, okR := bin.R.(relational.ColRef)
		if !okL || !okR {
			return nil, fmt.Errorf("engine: unsupported attribute relation")
		}
		return binOp(bin.Op,
			colRef(l.Qualifier, sqlColumn(l.Column)),
			colRef(r.Qualifier, sqlColumn(r.Column))), nil
	}
	ai, ok := a.PatternID[rel.A]
	if !ok {
		return nil, fmt.Errorf("engine: unknown pattern %q", rel.A)
	}
	bi, ok := a.PatternID[rel.B]
	if !ok {
		return nil, fmt.Errorf("engine: unknown pattern %q", rel.B)
	}
	ea, eb := fmt.Sprintf("e%d", ai+1), fmt.Sprintf("e%d", bi+1)
	start := func(alias string) relational.Expr { return colRef(alias, "start_time") }
	gap := func(later, earlier string) relational.Expr {
		return binOp("-", start(later), start(earlier))
	}
	switch rel.Kind {
	case tbql.RelBefore, tbql.RelAfter:
		op, later, earlier := "<", eb, ea
		if rel.Kind == tbql.RelAfter {
			op, later, earlier = ">", ea, eb
		}
		base := binOp(op, start(ea), start(eb))
		if !rel.HasDur {
			return base, nil
		}
		return andChain([]relational.Expr{
			base,
			binOp(">=", gap(later, earlier), intLit(rel.LoDur.Microseconds())),
			binOp("<=", gap(later, earlier), intLit(rel.HiDur.Microseconds())),
		}), nil
	case tbql.RelWithin:
		if !rel.HasDur {
			return nil, fmt.Errorf("engine: within requires a duration range")
		}
		d := rel.HiDur.Microseconds()
		return binOp("and",
			binOp("<=", gap(ea, eb), intLit(d)),
			binOp("<=", gap(eb, ea), intLit(d))), nil
	}
	return nil, fmt.Errorf("engine: unsupported relation kind %v", rel.Kind)
}

// lowerMonolithicCypher lowers the whole query into one multi-MATCH graph
// query AST (query type (d) in RQ4), the way a Neo4j user writes it: one
// pattern per event pattern with its filters adjacent, labels repeated on
// every occurrence, and the temporal constraints conjoined at the end.
// The caller selects clause-at-a-time execution.
func lowerMonolithicCypher(s *Store, a *tbql.Analyzed) (*graphdb.Query, error) {
	q := a.Query
	filtered := make(map[string]bool) // entity filters emitted once
	node := func(id string) graphdb.NodePat {
		decl := a.Entities[id]
		return graphdb.NodePat{Var: id, Label: labelOf(decl.Type.Kind())}
	}
	gq := &graphdb.Query{Limit: -1, Distinct: q.Return.Distinct}
	var conds []relational.Expr
	for i, p := range q.Patterns {
		ev := fmt.Sprintf("e%d", i+1)
		isVar := p.Path != nil && (p.Path.MinLen != 1 || p.Path.MaxLen != 1)
		var rel graphdb.RelPat
		if isVar {
			rel = graphdb.RelPat{Dir: graphdb.DirBoth, Min: p.Path.MinLen, Max: p.Path.MaxLen}
		} else {
			rel = graphdb.RelPat{Var: ev, Types: tbql.LoweredOps(p.Op), Dir: graphdb.DirOut, Min: 1, Max: 1}
		}
		gq.Patterns = append(gq.Patterns, graphdb.Pattern{
			Nodes: []graphdb.NodePat{node(p.Subject.ID), node(p.Object.ID)},
			Rels:  []graphdb.RelPat{rel},
		})
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if decl := a.Entities[id]; decl.Filter != nil && !filtered[id] {
				filtered[id] = true
				conds = append(conds, qualify(decl.Filter, decl.ID, nil))
			}
		}
		if !isVar {
			if p.IDFilter != nil {
				conds = append(conds, qualify(p.IDFilter, ev, nil))
			}
			if w := windowOf(q, p); w != nil {
				lo, hi := s.timeWindow(w)
				conds = append(conds,
					binOp(">=", colRef(ev, "start_time"), intLit(lo)),
					binOp("<=", colRef(ev, "start_time"), intLit(hi)))
			}
		}
	}
	for _, rel := range q.Relations {
		c, err := temporalExpr(a, rel)
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
	}
	gq.Where = andChain(conds)
	for _, item := range a.ReturnItems {
		gq.Return = append(gq.Return, graphdb.ReturnItem{Var: item.EntityID, Prop: item.Attr})
	}
	return gq, nil
}
