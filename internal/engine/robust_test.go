package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/faultinject"
)

// TestHuntCancelledContext is the cancellation acceptance test: a hunt
// under an already-cancelled (or expired) context returns the context's
// error promptly, and the engine stays healthy afterwards.
func TestHuntCancelledContext(t *testing.T) {
	store, _ := dataLeakStore(t, 400)
	en := &Engine{Store: store}
	a := analyzed(t, dataLeakTBQL)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := en.Execute(ctx, a)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled hunt: got %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled hunt returned after %v; want prompt", el)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := en.Execute(dctx, a); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired hunt: got %v, want context.DeadlineExceeded", err)
	}
	if _, _, err := en.Hunt(dctx, dataLeakTBQL); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Hunt: got %v, want context.DeadlineExceeded", err)
	}
	if _, _, err := en.ExecuteDelta(dctx, a, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ExecuteDelta: got %v, want context.DeadlineExceeded", err)
	}

	// The engine is not poisoned: the same query still runs to completion.
	res, _, err := en.Execute(context.Background(), a)
	if err != nil {
		t.Fatalf("post-cancel execute: %v", err)
	}
	if len(res.Set.Rows) == 0 {
		t.Fatal("post-cancel execute found nothing")
	}
}

// TestExecutorPanicIsolated injects a panic into a pattern data query and
// asserts it surfaces as a typed *InternalError — with query text and
// stack — without poisoning the engine for subsequent hunts.
func TestExecutorPanicIsolated(t *testing.T) {
	store, _ := dataLeakStore(t, 400)
	en := &Engine{Store: store}
	a := analyzed(t, dataLeakTBQL)

	faultinject.Arm(faultinject.Plan{
		FaultExecutePattern: {Hits: []int{1}, Mode: faultinject.ModePanic},
	})
	t.Cleanup(faultinject.Disarm)
	_, _, err := en.Execute(nil, a)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("panicking execute: got %v (%T), want *InternalError", err, err)
	}
	if ie.Query == "" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError missing context: query=%q stack=%d bytes", ie.Query, len(ie.Stack))
	}
	faultinject.Disarm()

	// Not poisoned: the plan cache, views, and store still work.
	res, _, err := en.Execute(nil, a)
	if err != nil {
		t.Fatalf("post-panic execute: %v", err)
	}
	if len(res.Set.Rows) == 0 {
		t.Fatal("post-panic execute found nothing")
	}
}

// TestExecutorPanicIsolatedParallel does the same through the parallel
// plan, where the panic happens on a worker goroutine — exactly the place
// an unrecovered panic would kill the whole process.
func TestExecutorPanicIsolatedParallel(t *testing.T) {
	store, _ := dataLeakStore(t, 400)
	en := &Engine{Store: store}
	a := analyzed(t, dataLeakTBQL)

	faultinject.Arm(faultinject.Plan{
		FaultExecutePattern: {Hits: []int{2}, Mode: faultinject.ModePanic},
	})
	t.Cleanup(faultinject.Disarm)
	_, _, err := en.ExecuteParallel(nil, a)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("panicking parallel execute: got %v (%T), want *InternalError", err, err)
	}
	faultinject.Disarm()

	res, _, err := en.ExecuteParallel(nil, a)
	if err != nil {
		t.Fatalf("post-panic parallel execute: %v", err)
	}
	if len(res.Set.Rows) == 0 {
		t.Fatal("post-panic parallel execute found nothing")
	}
}

// storeSnap is the observable shape AppendBatch's rollback must restore.
type storeSnap struct {
	entRows, evRows  int
	nodes, edges     int
	logEvents        int
	nextID           int64
	minTime, maxTime int64
	epoch            uint64
}

func snapStore(s *Store) storeSnap {
	return storeSnap{
		entRows:   s.Rel.Table("entities").Len(),
		evRows:    s.Rel.Table("events").Len(),
		nodes:     s.Graph.NumNodes(),
		edges:     s.Graph.NumEdges(),
		logEvents: len(s.Log.Events),
		nextID:    s.NextEventID(),
		minTime:   s.MinTime,
		maxTime:   s.MaxTime,
		epoch:     s.BoundsEpoch(),
	}
}

// appendFaulted parses the simulator records through a store-sharing
// parser log (the live-ingest arrangement) and appends them in two
// batches. When faultPlan is non-nil, the second append is attempted once
// under the plan — it must fail and leave the store exactly at its
// pre-append snapshot — and then retried clean.
func appendFaulted(t *testing.T, recs []audit.Record, faultPlan faultinject.Plan, wantPanic bool) *Store {
	t.Helper()
	store, err := NewStore(audit.NewLog())
	if err != nil {
		t.Fatal(err)
	}
	plog := &audit.Log{Entities: store.Log.Entities}
	p := audit.NewParserWith(plog)

	half := len(recs) / 2
	feed := func(rs []audit.Record) ([]*audit.Entity, []audit.Event) {
		last := store.Log.Entities.MaxID()
		for i := range rs {
			if err := p.Feed(&rs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return store.Log.Entities.Since(last), plog.TakeEvents()
	}

	ents, evs := feed(recs[:half])
	if err := store.AppendBatch(ents, evs); err != nil {
		t.Fatalf("first append: %v", err)
	}

	ents, evs = feed(recs[half:])
	if faultPlan != nil {
		pre := snapStore(store)
		faultinject.Arm(faultPlan)
		err := store.AppendBatch(ents, evs)
		faultinject.Disarm()
		if err == nil {
			t.Fatal("faulted append succeeded; want failure")
		}
		if wantPanic {
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("panicked append: got %v (%T), want *InternalError", err, err)
			}
		} else if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("faulted append: got %v, want ErrInjected", err)
		}
		if got := snapStore(store); got != pre {
			t.Fatalf("rollback incomplete:\n pre  %+v\n post %+v", pre, got)
		}
	}
	if err := store.AppendBatch(ents, evs); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	return store
}

// TestAppendBatchRollback pins AppendBatch's atomicity: a failure at any
// fault point in the append path — error or panic, relational, graph, or
// log — leaves the store exactly as it was, and the retried batch
// converges on the same store a fault-free run builds.
func TestAppendBatchRollback(t *testing.T) {
	sim := audit.NewSimulator(42, 1_700_000_000_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 4, Actions: 150})
	recs := sim.Records()

	ref := appendFaulted(t, recs, nil, false)

	points := []string{
		FaultAppendEntitiesRel,
		FaultAppendEntitiesGraph,
		FaultAppendEventsRel,
		FaultAppendEventsGraph,
		FaultAppendLog,
	}
	for _, pt := range points {
		for _, mode := range []faultinject.Mode{faultinject.ModeError, faultinject.ModePanic} {
			name := pt
			if mode == faultinject.ModePanic {
				name += "/panic"
			}
			t.Run(name, func(t *testing.T) {
				t.Cleanup(faultinject.Disarm)
				got := appendFaulted(t, recs,
					faultinject.Plan{pt: {Hits: []int{1}, Mode: mode}},
					mode == faultinject.ModePanic)
				if a, b := snapStore(ref), snapStore(got); a != b {
					t.Fatalf("retried store diverges:\n ref %+v\n got %+v", a, b)
				}
				if !reflect.DeepEqual(ref.Log.Events, got.Log.Events) {
					t.Fatal("retried store's event log diverges from fault-free build")
				}
				refRows := huntRows(t, ref)
				gotRows := huntRows(t, got)
				if !reflect.DeepEqual(refRows, gotRows) {
					t.Fatalf("retried store answers differently:\n ref %v\n got %v", refRows, gotRows)
				}
			})
		}
	}
}

func huntRows(t *testing.T, s *Store) [][]string {
	t.Helper()
	en := &Engine{Store: s}
	res, _, err := en.Hunt(nil, `proc p read file f return distinct p, f`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Set.Strings()
}

// TestAdmission covers the concurrent-hunt semaphore: limit enforcement,
// immediate rejection with a zero queue timeout, timed-out queueing,
// context cancellation while queued, and the nil (unlimited) receiver.
func TestAdmission(t *testing.T) {
	ad := NewAdmission(1, 0)
	release, err := ad.Acquire(nil)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := ad.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	_, err = ad.Acquire(nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second acquire: got %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.Limit != 1 {
		t.Fatalf("second acquire: got %#v, want *OverloadedError{Limit: 1}", err)
	}
	release()
	release2, err := ad.Acquire(nil)
	if err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	release2()

	adq := NewAdmission(1, 20*time.Millisecond)
	hold, err := adq.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = adq.Acquire(nil)
	if !errors.As(err, &oe) || oe.Waited <= 0 {
		t.Fatalf("queued acquire: got %v, want *OverloadedError with Waited > 0", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := adq.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: got %v, want context.Canceled", err)
	}
	hold()

	var unlimited *Admission
	rel, err := unlimited.Acquire(nil)
	if err != nil {
		t.Fatalf("nil admission: %v", err)
	}
	rel()
	if NewAdmission(0, time.Second) != nil {
		t.Fatal("NewAdmission(0) should be nil (unlimited)")
	}
}
