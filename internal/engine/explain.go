package engine

// This file is the EXPLAIN/debug path: human-readable SQL and Cypher text
// rendered from analyzed queries so `tbql -explain` (and tests) can show
// what the compiled data queries are equivalent to. Nothing here runs on
// any Execute* path — execution lowers the logical-plan IR straight to
// backend plan ASTs (see lower.go); a test pins that no backend parser is
// ever invoked during execution.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// sqlColumn maps a TBQL attribute name to the relational column name.
func sqlColumn(attr string) string {
	if attr == "group" {
		return "grp"
	}
	return attr
}

// renderSQLExpr renders a resolved TBQL attribute expression as SQL
// against the given table alias.
func renderSQLExpr(e relational.Expr, alias string) string {
	switch v := e.(type) {
	case relational.ColRef:
		return alias + "." + sqlColumn(v.Column)
	case relational.Lit:
		return renderSQLValue(v.V)
	case relational.UnOp:
		return "NOT (" + renderSQLExpr(v.E, alias) + ")"
	case relational.InList:
		var vals []string
		for _, ve := range v.Vals {
			vals = append(vals, renderSQLExpr(ve, alias))
		}
		neg := ""
		if v.Negate {
			neg = "NOT "
		}
		return renderSQLExpr(v.E, alias) + " " + neg + "IN (" + strings.Join(vals, ", ") + ")"
	case relational.BinOp:
		switch v.Op {
		case "and":
			return "(" + renderSQLExpr(v.L, alias) + " AND " + renderSQLExpr(v.R, alias) + ")"
		case "or":
			return "(" + renderSQLExpr(v.L, alias) + " OR " + renderSQLExpr(v.R, alias) + ")"
		case "like":
			return renderSQLExpr(v.L, alias) + " LIKE " + renderSQLExpr(v.R, alias)
		default:
			return renderSQLExpr(v.L, alias) + " " + v.Op + " " + renderSQLExpr(v.R, alias)
		}
	}
	return "1"
}

func renderSQLValue(v relational.Value) string {
	if v.K == relational.KindString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// renderCypherExpr renders an expression against graph property names,
// with the variable name substituted for the qualifier.
func renderCypherExpr(e relational.Expr, variable string) string {
	switch v := e.(type) {
	case relational.ColRef:
		return variable + "." + v.Column
	case relational.Lit:
		return renderCypherValue(v.V)
	case relational.UnOp:
		return "NOT (" + renderCypherExpr(v.E, variable) + ")"
	case relational.InList:
		var vals []string
		for _, ve := range v.Vals {
			vals = append(vals, renderCypherExpr(ve, variable))
		}
		neg := ""
		if v.Negate {
			neg = "NOT "
		}
		return renderCypherExpr(v.E, variable) + " " + neg + "IN (" + strings.Join(vals, ", ") + ")"
	case relational.BinOp:
		switch v.Op {
		case "and":
			return "(" + renderCypherExpr(v.L, variable) + " AND " + renderCypherExpr(v.R, variable) + ")"
		case "or":
			return "(" + renderCypherExpr(v.L, variable) + " OR " + renderCypherExpr(v.R, variable) + ")"
		case "like":
			return renderCypherExpr(v.L, variable) + " LIKE " + renderCypherExpr(v.R, variable)
		default:
			return renderCypherExpr(v.L, variable) + " " + v.Op + " " + renderCypherExpr(v.R, variable)
		}
	}
	return "1"
}

func renderCypherValue(v relational.Value) string {
	if v.K == relational.KindString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// opsCondition renders the operation constraint for an op expression, or
// "" when every operation matches.
func opsCondition(op *tbql.OpExpr, alias string) string {
	if op == nil {
		return ""
	}
	ops := op.Ops()
	if len(ops) >= 9 {
		return ""
	}
	sorted := make([]string, 0, len(ops))
	for o := range ops {
		sorted = append(sorted, "'"+o+"'")
	}
	sort.Strings(sorted)
	if len(sorted) == 1 {
		return alias + ".op = " + sorted[0]
	}
	return alias + ".op IN (" + strings.Join(sorted, ", ") + ")"
}

// timeWindow resolves a TBQL window against a fixed pair of store time
// bounds, returning [lo, hi] in µs. Working from captured bounds keeps
// the text compilers (and through them Engine.Explain) off the live
// Store fields, which only the writer may read.
func (b timeBounds) timeWindow(w *tbql.Window) (int64, int64) {
	switch w.Kind {
	case tbql.WindRange:
		return w.From.UnixMicro(), w.To.UnixMicro()
	case tbql.WindAt:
		lo := w.From.UnixMicro()
		return lo, lo + 24*3600*1_000_000 - 1
	case tbql.WindBefore:
		return b.min, w.To.UnixMicro()
	case tbql.WindAfter:
		return w.From.UnixMicro(), b.max
	case tbql.WindLast:
		return b.max - w.Dur.Microseconds(), b.max
	}
	return b.min, b.max
}

// timeWindow resolves a TBQL window against the store's live time bounds
// (writer-side / static-store callers only).
func (s *Store) timeWindow(w *tbql.Window) (int64, int64) {
	return s.bounds().timeWindow(w)
}

// kindLiteral is the stored "kind" column value for an entity type.
func kindLiteral(t tbql.EntityType) string { return string(t) }

// inList renders "alias.id IN (...)" for a binding set, in sorted order
// for determinism.
func inList(alias string, ids []int64) string {
	var sb strings.Builder
	var scratch [20]byte
	sb.Grow(len(alias) + 10 + len(ids)*8)
	sb.WriteString(alias)
	sb.WriteString(".id IN (")
	for i, id := range ids {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.Write(strconv.AppendInt(scratch[:0], id, 10))
	}
	sb.WriteString(")")
	return sb.String()
}

// sqlPatternParts is the compiled static text of one pattern's SQL data
// query; only the scheduler's per-execution extras vary, so the engine
// compiles the parts once per analyzed query and assembles the final text
// with a couple of appends.
type sqlPatternParts struct {
	conds string // static conjuncts joined with AND
	// subjScore/objScore drive the anchor-side choice, which depends on
	// how many scheduler extras are fed in (see assemble).
	subjScore, objScore int
}

const (
	sqlSelect      = "SELECT e.id, s.id, o.id, e.start_time, e.end_time FROM "
	sqlFromSubject = "entities s, events e, entities o"
	sqlFromObject  = "entities o, events e, entities s"
)

// assemble builds the final query text: static conds plus the scheduler's
// extra constraints, anchored on the more constrained entity side. The
// anchor choice matches the pruning-power estimate the scheduler uses:
// the events table is reached through its subject/object index and the
// far entity through the id index.
func (pp *sqlPatternParts) assemble(extra []string) string {
	from := sqlFromSubject
	if pp.objScore > pp.subjScore+len(extra) {
		from = sqlFromObject
	}
	if len(extra) == 0 {
		return sqlSelect + from + " WHERE " + pp.conds
	}
	var sb strings.Builder
	n := len(sqlSelect) + len(from) + 7 + len(pp.conds)
	for _, ex := range extra {
		n += 5 + len(ex)
	}
	sb.Grow(n)
	sb.WriteString(sqlSelect)
	sb.WriteString(from)
	sb.WriteString(" WHERE ")
	sb.WriteString(pp.conds)
	for _, ex := range extra {
		sb.WriteString(" AND ")
		sb.WriteString(ex)
	}
	return sb.String()
}

// compilePatternSQLParts compiles the static text of one pattern's SQL
// data query (Section III-F): a three-way join of the two entity tables
// with the event table, with all filters in WHERE.
func compilePatternSQLParts(b timeBounds, a *tbql.Analyzed, idx int) sqlPatternParts {
	p := a.Query.Patterns[idx]
	var conds []string
	conds = append(conds,
		"e.subject_id = s.id",
		"e.object_id = o.id",
		"s.kind = 'proc'",
		fmt.Sprintf("o.kind = '%s'", kindLiteral(p.Object.Type)),
	)
	if c := opsCondition(p.Op, "e"); c != "" {
		conds = append(conds, c)
	}
	if f := a.Entities[p.Subject.ID].Filter; f != nil {
		conds = append(conds, renderSQLExpr(f, "s"))
	}
	if f := a.Entities[p.Object.ID].Filter; f != nil {
		conds = append(conds, renderSQLExpr(f, "o"))
	}
	if p.IDFilter != nil {
		conds = append(conds, renderSQLExpr(p.IDFilter, "e"))
	}
	if w := windowOf(a.Query, p); w != nil {
		lo, hi := b.timeWindow(w)
		conds = append(conds, fmt.Sprintf("e.start_time >= %d", lo),
			fmt.Sprintf("e.start_time <= %d", hi))
	}
	return sqlPatternParts{
		conds:     strings.Join(conds, " AND "),
		subjScore: countConjuncts(orTrue(a.Entities[p.Subject.ID].Filter)),
		objScore:  countConjuncts(orTrue(a.Entities[p.Object.ID].Filter)),
	}
}

// CompilePatternSQL compiles one TBQL event pattern into a small SQL data
// query. extra carries the scheduler's added constraints.
func CompilePatternSQL(s *Store, a *tbql.Analyzed, idx int, extra []string) string {
	parts := compilePatternSQLParts(s.bounds(), a, idx)
	return parts.assemble(extra)
}

func orTrue(e relational.Expr) relational.Expr {
	if e == nil {
		return relational.Lit{V: relational.Int(1)}
	}
	return e
}

func windowOf(q *tbql.Query, p *tbql.Pattern) *tbql.Window {
	if p.Window != nil {
		return p.Window
	}
	return q.GlobalWindow
}

// cyPatternParts is the compiled static text of one pattern's Cypher data
// query, assembled with the scheduler's extras per execution.
type cyPatternParts struct {
	match string // MATCH clause
	conds string // static WHERE conjuncts joined with AND ("" when none)
	ret   string // RETURN clause
}

func (pp *cyPatternParts) assemble(extra []string) string {
	var sb strings.Builder
	n := len(pp.match) + 8 + len(pp.conds) + 1 + len(pp.ret)
	for _, ex := range extra {
		n += 5 + len(ex)
	}
	sb.Grow(n)
	sb.WriteString(pp.match)
	if pp.conds != "" || len(extra) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(pp.conds)
		for i, ex := range extra {
			if pp.conds != "" || i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(ex)
		}
	}
	sb.WriteString(" ")
	sb.WriteString(pp.ret)
	return sb.String()
}

// compilePatternCypherParts compiles the static text of one TBQL pattern
// (event pattern, length-1 path, or variable-length path) as a Cypher
// data query on the graph backend.
func compilePatternCypherParts(b timeBounds, a *tbql.Analyzed, idx int) cyPatternParts {
	p := a.Query.Patterns[idx]
	subjLabel := LabelProcess
	objLabel := labelOf(p.Object.Type.Kind())

	var match string
	edgeVar := "e"
	min, max := 1, 1
	if p.Path != nil {
		min, max = p.Path.MinLen, p.Path.MaxLen
	}
	bounds := func(lo, hi int) string {
		if hi < 0 {
			return fmt.Sprintf("*%d..", lo)
		}
		return fmt.Sprintf("*%d..%d", lo, hi)
	}
	switch {
	case min == 1 && max == 1:
		// Single hop (event pattern or length-1 path).
		match = fmt.Sprintf("MATCH (s:%s)-[e%s]->(o:%s)", subjLabel, typeSuffix(p.Op), objLabel)
	case p.Op != nil:
		// Variable-length information flow with a typed final hop: the
		// intermediate hops are direction-agnostic, the final hop lands on
		// the object.
		hi := max - 1
		if max < 0 {
			hi = -1
		}
		match = fmt.Sprintf("MATCH (s:%s)-[%s]-(m)-[e%s]->(o:%s)",
			subjLabel, bounds(min-1, hi), typeSuffix(p.Op), objLabel)
		edgeVar = "e"
	default:
		match = fmt.Sprintf("MATCH (s:%s)-[%s]-(o:%s)", subjLabel, bounds(min, max), objLabel)
		edgeVar = ""
	}

	var conds []string
	if f := a.Entities[p.Subject.ID].Filter; f != nil {
		conds = append(conds, renderCypherExpr(f, "s"))
	}
	if f := a.Entities[p.Object.ID].Filter; f != nil {
		conds = append(conds, renderCypherExpr(f, "o"))
	}
	if p.IDFilter != nil && edgeVar != "" {
		conds = append(conds, renderCypherExpr(p.IDFilter, edgeVar))
	}
	if w := windowOf(a.Query, p); w != nil && edgeVar != "" {
		lo, hi := b.timeWindow(w)
		conds = append(conds, fmt.Sprintf("e.start_time >= %d", lo),
			fmt.Sprintf("e.start_time <= %d", hi))
	}

	ret := "RETURN s.id, o.id"
	if edgeVar != "" {
		ret = "RETURN e.id, s.id, o.id, e.start_time, e.end_time"
	}
	return cyPatternParts{match: match, conds: strings.Join(conds, " AND "), ret: ret}
}

// CompilePatternCypher compiles one TBQL pattern into a Cypher data
// query. extra carries the scheduler's added constraints.
func CompilePatternCypher(s *Store, a *tbql.Analyzed, idx int, extra []string) string {
	parts := compilePatternCypherParts(s.bounds(), a, idx)
	return parts.assemble(extra)
}

// typeSuffix renders the relationship type constraint ":read|write" for an
// op expression ("" when any op matches).
func typeSuffix(op *tbql.OpExpr) string {
	if op == nil {
		return ""
	}
	ops := op.Ops()
	if len(ops) >= 9 {
		return ""
	}
	sorted := make([]string, 0, len(ops))
	for o := range ops {
		sorted = append(sorted, o)
	}
	sort.Strings(sorted)
	return ":" + strings.Join(sorted, "|")
}

// CompileMonolithicSQL compiles the whole query into one giant SQL
// statement — the naive plan the paper compares against (query type (b) in
// RQ4): every pattern's joins and every filter woven into a single
// FROM/WHERE. The FROM list follows the textbook declarative translation —
// all entity tables, then all event tables — which is what a hand-written
// equivalent query looks like; the weaving of many joins and constraints
// is exactly what the paper blames for the monolithic plan's slowness.
func CompileMonolithicSQL(s *Store, a *tbql.Analyzed) (string, error) {
	return compileMonolithicSQL(s.bounds(), a)
}

func compileMonolithicSQL(b timeBounds, a *tbql.Analyzed) (string, error) {
	q := a.Query
	var from []string
	var conds []string
	seenEnt := make(map[string]bool)
	addEntity := func(id string) {
		if !seenEnt[id] {
			seenEnt[id] = true
			from = append(from, "entities "+id)
		}
	}
	for _, p := range q.Patterns {
		addEntity(p.Subject.ID)
		addEntity(p.Object.ID)
	}
	for i, p := range q.Patterns {
		if p.Path != nil && (p.Path.MinLen != 1 || p.Path.MaxLen != 1) {
			return "", fmt.Errorf("engine: variable-length path patterns cannot compile to SQL")
		}
		ev := fmt.Sprintf("e%d", i+1)
		from = append(from, "events "+ev)
		conds = append(conds,
			fmt.Sprintf("%s.subject_id = %s.id", ev, p.Subject.ID),
			fmt.Sprintf("%s.object_id = %s.id", ev, p.Object.ID),
		)
		if c := opsCondition(p.Op, ev); c != "" {
			conds = append(conds, c)
		}
		if p.IDFilter != nil {
			conds = append(conds, renderSQLExpr(p.IDFilter, ev))
		}
		if w := windowOf(q, p); w != nil {
			lo, hi := b.timeWindow(w)
			conds = append(conds, fmt.Sprintf("%s.start_time >= %d", ev, lo),
				fmt.Sprintf("%s.start_time <= %d", ev, hi))
		}
	}
	for _, id := range a.EntityOrder {
		decl := a.Entities[id]
		conds = append(conds, fmt.Sprintf("%s.kind = '%s'", decl.ID, kindLiteral(decl.Type)))
		if decl.Filter != nil {
			conds = append(conds, renderSQLExpr(decl.Filter, decl.ID))
		}
	}
	for _, rel := range q.Relations {
		c, err := temporalSQL(a, rel)
		if err != nil {
			return "", err
		}
		conds = append(conds, c)
	}
	var proj []string
	for _, item := range a.ReturnItems {
		proj = append(proj, item.EntityID+"."+sqlColumn(item.Attr))
	}
	distinct := ""
	if q.Return.Distinct {
		distinct = "DISTINCT "
	}
	return "SELECT " + distinct + strings.Join(proj, ", ") +
		" FROM " + strings.Join(from, ", ") +
		" WHERE " + strings.Join(conds, " AND "), nil
}

func temporalSQL(a *tbql.Analyzed, rel tbql.Relation) (string, error) {
	if rel.Kind == tbql.RelAttr {
		bin, ok := rel.Attr.(relational.BinOp)
		if !ok {
			return "", fmt.Errorf("engine: unsupported attribute relation")
		}
		l := bin.L.(relational.ColRef)
		r := bin.R.(relational.ColRef)
		return fmt.Sprintf("%s.%s %s %s.%s", l.Qualifier, sqlColumn(l.Column),
			bin.Op, r.Qualifier, sqlColumn(r.Column)), nil
	}
	ai, ok := a.PatternID[rel.A]
	if !ok {
		return "", fmt.Errorf("engine: unknown pattern %q", rel.A)
	}
	bi, ok := a.PatternID[rel.B]
	if !ok {
		return "", fmt.Errorf("engine: unknown pattern %q", rel.B)
	}
	ea, eb := fmt.Sprintf("e%d", ai+1), fmt.Sprintf("e%d", bi+1)
	switch rel.Kind {
	case tbql.RelBefore:
		base := fmt.Sprintf("%s.start_time < %s.start_time", ea, eb)
		if rel.HasDur {
			base += fmt.Sprintf(" AND %s.start_time - %s.start_time >= %d AND %s.start_time - %s.start_time <= %d",
				eb, ea, rel.LoDur.Microseconds(), eb, ea, rel.HiDur.Microseconds())
		}
		return base, nil
	case tbql.RelAfter:
		base := fmt.Sprintf("%s.start_time > %s.start_time", ea, eb)
		if rel.HasDur {
			base += fmt.Sprintf(" AND %s.start_time - %s.start_time >= %d AND %s.start_time - %s.start_time <= %d",
				ea, eb, rel.LoDur.Microseconds(), ea, eb, rel.HiDur.Microseconds())
		}
		return base, nil
	case tbql.RelWithin:
		dur := rel.HiDur.Microseconds()
		if !rel.HasDur {
			return "", fmt.Errorf("engine: within requires a duration range")
		}
		return fmt.Sprintf("(%s.start_time - %s.start_time <= %d AND %s.start_time - %s.start_time <= %d)",
			ea, eb, dur, eb, ea, dur), nil
	}
	return "", fmt.Errorf("engine: unsupported relation kind %v", rel.Kind)
}

// CompileMonolithicCypher compiles the whole query into one giant Cypher
// statement (query type (d) in RQ4), written the way a Neo4j user writes
// it: one MATCH per event pattern with its filters in an adjacent WHERE
// (labels repeated on every occurrence), and the temporal constraints
// conjoined onto the final clause.
func CompileMonolithicCypher(s *Store, a *tbql.Analyzed) (string, error) {
	return compileMonolithicCypher(s.bounds(), a)
}

func compileMonolithicCypher(b timeBounds, a *tbql.Analyzed) (string, error) {
	q := a.Query
	filtered := make(map[string]bool) // entity filters emitted once
	nodeRef := func(id string) string {
		decl := a.Entities[id]
		return fmt.Sprintf("(%s:%s)", id, labelOf(decl.Type.Kind()))
	}
	var clauses []string
	var lastConds []string
	for i, p := range q.Patterns {
		ev := fmt.Sprintf("e%d", i+1)
		subj := nodeRef(p.Subject.ID)
		obj := nodeRef(p.Object.ID)
		var pattern string
		isVar := p.Path != nil && (p.Path.MinLen != 1 || p.Path.MaxLen != 1)
		if isVar {
			hi := ""
			if p.Path.MaxLen >= 0 {
				hi = fmt.Sprintf("%d", p.Path.MaxLen)
			}
			pattern = fmt.Sprintf("%s-[*%d..%s]-%s", subj, p.Path.MinLen, hi, obj)
		} else {
			pattern = fmt.Sprintf("%s-[%s%s]->%s", subj, ev, typeSuffix(p.Op), obj)
		}
		var conds []string
		for _, id := range []string{p.Subject.ID, p.Object.ID} {
			if decl := a.Entities[id]; decl.Filter != nil && !filtered[id] {
				filtered[id] = true
				conds = append(conds, renderCypherExpr(decl.Filter, decl.ID))
			}
		}
		if !isVar {
			if p.IDFilter != nil {
				conds = append(conds, renderCypherExpr(p.IDFilter, ev))
			}
			if w := windowOf(q, p); w != nil {
				lo, hi := b.timeWindow(w)
				conds = append(conds, fmt.Sprintf("%s.start_time >= %d", ev, lo),
					fmt.Sprintf("%s.start_time <= %d", ev, hi))
			}
		}
		clause := "MATCH " + pattern
		if len(conds) > 0 {
			clause += " WHERE " + strings.Join(conds, " AND ")
		}
		clauses = append(clauses, clause)
		lastConds = conds
	}
	// Temporal and attribute relationships go on the final clause.
	var rels []string
	for _, rel := range q.Relations {
		c, err := temporalSQL(a, rel) // comparison syntax is shared
		if err != nil {
			return "", err
		}
		rels = append(rels, c)
	}
	if len(rels) > 0 {
		if len(lastConds) > 0 {
			clauses[len(clauses)-1] += " AND " + strings.Join(rels, " AND ")
		} else {
			clauses[len(clauses)-1] += " WHERE " + strings.Join(rels, " AND ")
		}
	}
	var proj []string
	for _, item := range a.ReturnItems {
		proj = append(proj, item.EntityID+"."+item.Attr)
	}
	distinct := ""
	if q.Return.Distinct {
		distinct = "DISTINCT "
	}
	return strings.Join(clauses, " ") + " RETURN " + distinct + strings.Join(proj, ", "), nil
}

// Explain renders a human-readable compilation report for an analyzed
// query: each pattern's logical-plan IR, the chosen physical plan, and the
// equivalent SQL/Cypher text. This is the only consumer of the text
// generators above — execution never renders or parses query text.
// Explain pins the latest published snapshot and resolves every window
// against its captured bounds, so it is safe to call concurrently with
// live ingestion (no session lock, no read of writer-mutated fields).
func (en *Engine) Explain(a *tbql.Analyzed) (string, error) {
	snap := en.Store.Snapshot()
	plan := en.planFor(a, snap)
	var sb strings.Builder
	sb.WriteString("--- per-pattern logical plans (IR) and physical plans ---\n")
	for i := range a.Query.Patterns {
		pp := &plan.pats[i]
		sb.WriteString(pp.ir.String())
		sb.WriteString("\n")
		if pp.usesGraph {
			parts := compilePatternCypherParts(plan.bounds, a, i)
			sb.WriteString("physical: graph traversal plan\n")
			sb.WriteString("  equivalent Cypher: " + parts.assemble(nil) + "\n")
		} else {
			pr, err := pp.prepared(en.Store, plan.bounds)
			if err != nil {
				return "", err
			}
			parts := compilePatternSQLParts(plan.bounds, a, i)
			sb.WriteString("physical: relational plan (runtime-pruned parameters)\n")
			sb.WriteString(indent(pr.Describe(), "  "))
			sb.WriteString("  equivalent SQL: " + parts.assemble(nil) + "\n")
		}
	}
	sb.WriteString("--- scheduled order ---\n")
	for _, idx := range plan.order {
		fmt.Fprintf(&sb, "%s ", a.Query.Patterns[idx].ID)
	}
	sb.WriteString("\n")
	if sql, err := compileMonolithicSQL(plan.bounds, a); err == nil {
		sb.WriteString("--- monolithic SQL (RQ4 comparison) ---\n" + sql + "\n")
	}
	if cy, err := compileMonolithicCypher(plan.bounds, a); err == nil {
		sb.WriteString("--- monolithic Cypher (RQ4 comparison) ---\n" + cy + "\n")
	}
	return sb.String(), nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
