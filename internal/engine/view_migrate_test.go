package engine

import (
	"fmt"
	"testing"

	"threatraptor/internal/audit"
)

// TestLastWindowViewMigration pins the sliding-frontier migration for
// LAST-window views: when an append moves the store's time bounds, the
// view carries over (evicting only the rows that slid below the new lower
// bound) instead of rematerializing, the delta results stay equal to the
// recompute oracle at every step, and once the window slides past the
// whole original timeline the retained rows drain back to the cap.
func TestLastWindowViewMigration(t *testing.T) {
	full, _ := dataLeakStore(t, 400)
	live, floor := appendHalves(t, full)

	// A LAST window that initially covers the entire timeline, with 10s
	// of slack.
	span := live.MaxTime - live.MinTime
	durSec := span/1_000_000 + 10
	durUS := durSec * 1_000_000
	a := analyzed(t, fmt.Sprintf("last %d second\n%s", durSec, dataLeakTBQL))

	viewEn := &Engine{Store: live}
	recompEn := &Engine{Store: live, ViewHighWater: -1}

	check := func(stage string, f int64) {
		t.Helper()
		got := deltaRows(t, viewEn, a, f)
		want := deltaRows(t, recompEn, a, f)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s:\nviews     %v\nrecompute %v", stage, got, want)
		}
	}

	check("initial round", floor)
	vs := viewEn.Views()
	if vs.Materializations == 0 || vs.CachedRows == 0 {
		t.Fatalf("view path did not materialize: %+v", vs)
	}
	if vs.WindowMigrations != 0 {
		t.Fatalf("no bounds move yet, but migrations = %d", vs.WindowMigrations)
	}
	matBefore, rowsBefore := vs.Materializations, vs.CachedRows

	// Jump the store max by half the timeline: the window's lower bound
	// lands mid-history and the early view rows must evict.
	dummy := func(startUS int64) []audit.Event {
		return []audit.Event{{
			SubjectID: live.Log.Events[0].SubjectID,
			ObjectID:  live.Log.Events[0].ObjectID,
			Op:        live.Log.Events[0].Op,
			StartTime: startUS,
			EndTime:   startUS + 1,
		}}
	}
	floor2 := live.NextEventID()
	if err := live.AppendBatch(nil, dummy(live.MaxTime+span/2+10_000_000)); err != nil {
		t.Fatal(err)
	}
	check("after half-span slide", floor2)
	vs = viewEn.Views()
	if vs.WindowMigrations == 0 {
		t.Fatalf("bounds moved but no LAST-window view migrated: %+v", vs)
	}
	if vs.Materializations != matBefore {
		t.Fatalf("migration must not rematerialize: materializations %d -> %d",
			matBefore, vs.Materializations)
	}
	if vs.CachedRows >= rowsBefore {
		t.Fatalf("half the timeline slid out but cached rows grew: %d -> %d",
			rowsBefore, vs.CachedRows)
	}

	// Slide the window entirely past the original timeline: every
	// original match evicts, results go empty, and the view accounting
	// drains with them.
	floor3 := live.NextEventID()
	if err := live.AppendBatch(nil, dummy(live.MaxTime+2*durUS)); err != nil {
		t.Fatal(err)
	}
	check("after full slide", floor3)
	vs = viewEn.Views()
	if vs.Materializations != matBefore {
		t.Fatalf("full slide rematerialized: %d -> %d", matBefore, vs.Materializations)
	}
	if res, _, err := viewEn.ExecuteDelta(nil, a, 1); err != nil {
		t.Fatal(err)
	} else if res.Set.Len() != 0 {
		t.Fatalf("window past the attack still returned %d rows", res.Set.Len())
	}
}
