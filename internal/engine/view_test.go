package engine

import (
	"fmt"
	"sort"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/tbql"
)

// deltaRows renders an ExecuteDelta result as sorted row strings.
func deltaRows(t *testing.T, en *Engine, a *tbql.Analyzed, floor int64) []string {
	t.Helper()
	res, _, err := en.ExecuteDelta(nil, a, floor)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range res.Set.Strings() {
		out = append(out, fmt.Sprint(row))
	}
	sort.Strings(out)
	return out
}

// appendHalves rebuilds a store's log in two halves through AppendBatch,
// returning the live store and the event-ID floor of the second half.
func appendHalves(t *testing.T, full *Store) (*Store, int64) {
	t.Helper()
	half := len(full.Log.Events) / 2
	liveLog := &audit.Log{
		Entities: full.Log.Entities,
		Events:   append([]audit.Event(nil), full.Log.Events[:half]...),
	}
	live, err := NewStore(liveLog)
	if err != nil {
		t.Fatal(err)
	}
	floor := live.NextEventID()
	if err := live.AppendBatch(nil, append([]audit.Event(nil), full.Log.Events[half:]...)); err != nil {
		t.Fatal(err)
	}
	return live, floor
}

// TestExecuteDeltaViewsMatchRecompute is the engine-level equivalence
// property: the materialized-view delta round returns exactly the
// recompute path's bindings, across floors, repeated appends, and both
// scheduling modes, with the view counters proving which path ran.
func TestExecuteDeltaViewsMatchRecompute(t *testing.T) {
	full, _ := dataLeakStore(t, 400)
	a := analyzed(t, dataLeakTBQL)

	for _, disableSched := range []bool{false, true} {
		live, floor := appendHalves(t, full)
		viewEn := &Engine{Store: live, DisableScheduling: disableSched}
		recompEn := &Engine{Store: live, DisableScheduling: disableSched, ViewHighWater: -1}

		for _, f := range []int64{floor, 1, floor + 50, live.NextEventID()} {
			got := deltaRows(t, viewEn, a, f)
			want := deltaRows(t, recompEn, a, f)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("sched=%v floor=%d:\nviews     %v\nrecompute %v", !disableSched, f, got, want)
			}
		}
		vs := viewEn.Views()
		if vs.Materializations == 0 || vs.CachedRows == 0 {
			t.Fatalf("view path did not materialize: %+v", vs)
		}
		if rs := recompEn.Views(); rs.Materializations != 0 || rs.CachedRows != 0 {
			t.Fatalf("ViewHighWater<0 must disable views: %+v", rs)
		}

		// A further append: views must catch up incrementally and stay
		// equivalent.
		extra := []audit.Event{{
			SubjectID: live.Log.Events[0].SubjectID,
			ObjectID:  live.Log.Events[0].ObjectID,
			Op:        live.Log.Events[0].Op,
			StartTime: live.MaxTime + 1000,
			EndTime:   live.MaxTime + 1001,
		}}
		floor2 := live.NextEventID()
		if err := live.AppendBatch(nil, extra); err != nil {
			t.Fatal(err)
		}
		got := deltaRows(t, viewEn, a, floor2)
		want := deltaRows(t, recompEn, a, floor2)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("post-append sched=%v:\nviews     %v\nrecompute %v", !disableSched, got, want)
		}
		if vs := viewEn.Views(); vs.DeltaMerges == 0 {
			t.Fatalf("second round should merge incrementally: %+v", vs)
		}

		// A delta whose op bitmap misses every pattern op (the query uses
		// read/write/connect only) must skip catch-up entirely — the
		// counter proves no catch-up data query ran — and stay equivalent.
		skipsBefore := viewEn.Views().CatchupSkips
		foreign := []audit.Event{{
			SubjectID: live.Log.Events[0].SubjectID,
			ObjectID:  live.Log.Events[0].ObjectID,
			Op:        audit.OpSend,
			StartTime: live.MaxTime + 2000,
			EndTime:   live.MaxTime + 2001,
		}}
		floor3 := live.NextEventID()
		if err := live.AppendBatch(nil, foreign); err != nil {
			t.Fatal(err)
		}
		got = deltaRows(t, viewEn, a, floor3)
		want = deltaRows(t, recompEn, a, floor3)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("foreign-op sched=%v:\nviews     %v\nrecompute %v", !disableSched, got, want)
		}
		if vs := viewEn.Views(); vs.CatchupSkips <= skipsBefore {
			t.Fatalf("foreign-op delta did not skip catch-up: skips %d -> %d", skipsBefore, vs.CatchupSkips)
		}
	}
}

// TestExecuteDeltaMatchedEventsEquivalent pins that the view path reports
// the same matched-event set as the recompute path (the RQ2 scoring
// surface).
func TestExecuteDeltaMatchedEventsEquivalent(t *testing.T) {
	full, _ := dataLeakStore(t, 300)
	a := analyzed(t, dataLeakTBQL)
	live, floor := appendHalves(t, full)
	viewEn := &Engine{Store: live}
	recompEn := &Engine{Store: live, ViewHighWater: -1}
	vres, _, err := viewEn.ExecuteDelta(nil, a, floor)
	if err != nil {
		t.Fatal(err)
	}
	rres, _, err := recompEn.ExecuteDelta(nil, a, floor)
	if err != nil {
		t.Fatal(err)
	}
	if len(vres.MatchedEvents) != len(rres.MatchedEvents) {
		t.Fatalf("matched events: views %d, recompute %d", len(vres.MatchedEvents), len(rres.MatchedEvents))
	}
	for ev := range rres.MatchedEvents {
		if !vres.MatchedEvents[ev] {
			t.Fatalf("event %d matched by recompute but not views", ev)
		}
	}
}

// TestViewHighWaterFallback pins the memory cap: with a cap too small for
// the first pattern's match set, every round takes the recompute path,
// results stay identical, and accounting never exceeds the cap.
func TestViewHighWaterFallback(t *testing.T) {
	full, _ := dataLeakStore(t, 300)
	a := analyzed(t, dataLeakTBQL)
	live, floor := appendHalves(t, full)
	capped := &Engine{Store: live, ViewHighWater: 1}
	oracle := &Engine{Store: live, ViewHighWater: -1}

	got := deltaRows(t, capped, a, floor)
	want := deltaRows(t, oracle, a, floor)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("capped engine diverged:\ncapped %v\noracle %v", got, want)
	}
	vs := capped.Views()
	if vs.Fallbacks == 0 {
		t.Fatalf("cap of 1 row must force the recompute fallback: %+v", vs)
	}
	// Falling back is all-or-nothing per query: the plan's views are
	// released wholesale (no orphaned rows charged against the cap) and
	// later rounds skip view maintenance entirely.
	if vs.CachedRows != 0 {
		t.Fatalf("fallen-back plan left %d rows accounted: %+v", vs.CachedRows, vs)
	}
	mat := vs.Materializations
	got = deltaRows(t, capped, a, floor)
	want = deltaRows(t, oracle, a, floor)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("capped engine diverged on round 2:\ncapped %v\noracle %v", got, want)
	}
	if vs2 := capped.Views(); vs2.Materializations != mat {
		t.Fatalf("fallen-back plan must not keep materializing: %+v -> %+v", vs, vs2)
	}
	// DropViews re-arms the plan; with the cap still too small it simply
	// falls back again without leaking accounting.
	capped.DropViews(a)
	deltaRows(t, capped, a, floor)
	if vs3 := capped.Views(); vs3.CachedRows != 0 {
		t.Fatalf("re-armed capped plan leaked %d rows", vs3.CachedRows)
	}
}

// TestViewCapReArmAfterRelease pins that the cap fallback is not a
// permanent sentence: a query that fell back under cap pressure retries
// materialization once another query's views release rows (here via
// DropViews, the path Unwatch takes).
func TestViewCapReArmAfterRelease(t *testing.T) {
	full, _ := dataLeakStore(t, 300)
	big := analyzed(t, dataLeakTBQL)
	small := analyzed(t, `proc p["%/usr/bin/gpg%"] read file f["%upload%"] as e1 return distinct p, f`)
	live, floor := appendHalves(t, full)

	// Measure the big query's footprint, then cap a fresh engine to it.
	sizer := &Engine{Store: live}
	deltaRows(t, sizer, big, floor)
	bigRows := int(sizer.Views().CachedRows)
	if bigRows == 0 {
		t.Fatal("big query materialized no rows")
	}

	en := &Engine{Store: live, ViewHighWater: bigRows}
	deltaRows(t, en, big, floor) // fills the cap
	deltaRows(t, en, small, floor)
	vs := en.Views()
	if vs.Fallbacks == 0 {
		t.Fatalf("small query should have hit the cap: %+v", vs)
	}
	// No release yet: the fallen-back plan must stay latched (no retry).
	mat := vs.Materializations
	deltaRows(t, en, small, floor)
	if vs2 := en.Views(); vs2.Materializations != mat {
		t.Fatalf("latched plan retried without headroom: %+v -> %+v", vs, vs2)
	}
	// Dropping the big query's views frees headroom; the small query's
	// next round re-arms and materializes.
	en.DropViews(big)
	deltaRows(t, en, small, floor)
	if vs3 := en.Views(); vs3.Materializations <= mat || vs3.CachedRows == 0 {
		t.Fatalf("released headroom should re-arm the fallen-back plan: %+v", vs3)
	}
}

// TestDropViewsReleasesRows pins eviction: dropping a query's views
// returns every cached row to the accounting, and the next delta round
// rematerializes from scratch.
func TestDropViewsReleasesRows(t *testing.T) {
	full, _ := dataLeakStore(t, 300)
	a := analyzed(t, dataLeakTBQL)
	live, floor := appendHalves(t, full)
	en := &Engine{Store: live}
	deltaRows(t, en, a, floor)
	before := en.Views()
	if before.CachedRows == 0 {
		t.Fatal("expected materialized rows")
	}
	en.DropViews(a)
	if vs := en.Views(); vs.CachedRows != 0 {
		t.Fatalf("DropViews left %d rows accounted", vs.CachedRows)
	}
	deltaRows(t, en, a, floor)
	after := en.Views()
	if after.Materializations <= before.Materializations {
		t.Fatal("round after DropViews should rematerialize")
	}
	if after.CachedRows != before.CachedRows {
		t.Fatalf("rematerialized accounting %d != original %d", after.CachedRows, before.CachedRows)
	}
}
