package engine

// This file splits the engine's state into an immutable published snapshot
// and a mutable tail. The store has exactly one writer (AppendBatch, plus
// the initial NewStore load) and many concurrent readers (hunts, delta
// rounds, view catch-up). Every sealed batch publishes a Snapshot through
// an atomic pointer; a reader pins the latest snapshot once at entry and
// runs entirely against it — bounded relational scans (relational.Snap),
// captured graph arenas (graphdb.View), the frozen entity slice, and the
// time bounds/epoch as of the capture — so no execution path takes a
// session-wide read lock and the writer never blocks readers.

import (
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
)

// Snapshot is one published generation of the store. All fields are
// immutable after publication; the embedded Snap/View read the backends'
// append-only arenas through captured headers, so a snapshot stays valid
// (and cheap — no row data is copied) however far the store grows past it.
type Snapshot struct {
	// Rel bounds relational scans to the captured row counts.
	Rel relational.Snap
	// Graph pins traversals to the captured node/edge arenas and adjacency.
	Graph graphdb.View
	// Entities is the frozen dense entity slice: entity ID i at offset i-1.
	// Attribute resolution (return projection, attribute relations) reads
	// it instead of the live intern maps, which the writer mutates.
	Entities []*audit.Entity
	// MinTime/MaxTime are the store's event-time bounds at capture (µs);
	// window-sensitive plans lower against them.
	MinTime int64
	MaxTime int64
	// Epoch is the bounds generation at capture — the plan-cache key that
	// decides whether a cached window-sensitive plan matches this snapshot.
	Epoch uint64
	// NextEventID is the event-ID frontier at capture: every stored event
	// has ID < NextEventID. View catch-up advances to exactly this frontier,
	// never past the pinned snapshot.
	NextEventID int64
	// PublishedAt timestamps the capture (drives the snapshot-age metric).
	PublishedAt time.Time
}

// publishSnapshot captures and atomically publishes the store's current
// state. Writer-side only: it must be mutually excluded with appends (it
// runs at the end of NewStore and at AppendBatch's success tail).
func (s *Store) publishSnapshot() {
	sn := &Snapshot{
		Entities:    s.Log.Entities.Dense(),
		MinTime:     s.MinTime,
		MaxTime:     s.MaxTime,
		Epoch:       s.epoch,
		NextEventID: s.nextEventID,
		PublishedAt: time.Now(),
	}
	sn.Rel.Capture(s.Rel)
	sn.Graph.Capture(s.Graph)
	s.snap.Store(sn)
}

// Snapshot returns the latest published snapshot (nil only for a Store
// that was never built through NewStore). Safe from any goroutine.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// EntityAttr resolves an entity attribute inside the snapshot, the
// concurrent-read counterpart of Store.EntityAttr. IDs past the captured
// frontier (or unknown) resolve to NULL.
func (sn *Snapshot) EntityAttr(id int64, attr string) relational.Value {
	if id < 1 || id > int64(len(sn.Entities)) {
		return relational.Null()
	}
	return entityAttrValue(sn.Entities[id-1], attr)
}

// timeBounds is a fixed pair of store time bounds against which TBQL
// windows resolve. Plans capture the bounds of the snapshot (or live
// store) they were lowered for, so window lowering never reads the
// writer-mutated Store fields from a reader goroutine.
type timeBounds struct {
	min, max int64
}

func (s *Store) bounds() timeBounds     { return timeBounds{s.MinTime, s.MaxTime} }
func (sn *Snapshot) bounds() timeBounds { return timeBounds{sn.MinTime, sn.MaxTime} }
