package engine

// This file splits the engine's state into an immutable published snapshot
// and a mutable tail. The store has exactly one writer (AppendBatch, plus
// the initial NewStore load) and many concurrent readers (hunts, delta
// rounds, view catch-up). Every sealed batch publishes a Snapshot through
// an atomic pointer; a reader pins the latest snapshot once at entry and
// runs entirely against it — bounded relational scans (relational.Snap),
// captured graph arenas (graphdb.View), the frozen entity slice, and the
// time bounds/epoch as of the capture — so no execution path takes a
// session-wide read lock and the writer never blocks readers.

import (
	"sort"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
)

// Snapshot is one published generation of the store. All fields are
// immutable after publication; the embedded Snap/View read the backends'
// append-only arenas through captured headers, so a snapshot stays valid
// (and cheap — no row data is copied) however far the store grows past it.
type Snapshot struct {
	// Rel bounds relational scans to the captured row counts.
	Rel relational.Snap
	// Graph pins traversals to the captured node/edge arenas and adjacency.
	Graph graphdb.View
	// Entities is the frozen dense entity slice: entity ID i at offset i-1.
	// Attribute resolution (return projection, attribute relations) reads
	// it instead of the live intern maps, which the writer mutates.
	Entities []*audit.Entity
	// MinTime/MaxTime are the store's event-time bounds at capture (µs);
	// window-sensitive plans lower against them.
	MinTime int64
	MaxTime int64
	// Epoch is the bounds generation at capture — the plan-cache key that
	// decides whether a cached window-sensitive plan matches this snapshot.
	Epoch uint64
	// NextEventID is the event-ID frontier at capture: every stored event
	// has ID < NextEventID. View catch-up advances to exactly this frontier,
	// never past the pinned snapshot.
	NextEventID int64
	// Events is the frozen event slice in ID order (event ID i at offset
	// i-1). The log's event arena is append-only and rollback only
	// truncates tail the snapshot never covered, so the captured header
	// stays valid; readers (provenance builds, tactical rounds) index it
	// directly instead of taking the session lock over the live Log.
	Events []audit.Event
	// PublishedAt timestamps the capture (drives the snapshot-age metric).
	PublishedAt time.Time

	// opBatches is the captured per-batch op-code bitmap index (see
	// Store.opBatches); OpMaskBetween folds it so view catch-up can skip
	// patterns whose operations never appeared in a delta.
	opBatches []batchOps
}

// publishSnapshot captures and atomically publishes the store's current
// state. Writer-side only: it must be mutually excluded with appends (it
// runs at the end of NewStore and at AppendBatch's success tail).
func (s *Store) publishSnapshot() {
	sn := &Snapshot{
		Entities:    s.Log.Entities.Dense(),
		MinTime:     s.MinTime,
		MaxTime:     s.MaxTime,
		Epoch:       s.epoch,
		NextEventID: s.nextEventID,
		Events:      s.Log.Events,
		PublishedAt: time.Now(),
		opBatches:   s.opBatches,
	}
	sn.Rel.Capture(s.Rel)
	sn.Graph.Capture(s.Graph)
	s.snap.Store(sn)
}

// Snapshot returns the latest published snapshot (nil only for a Store
// that was never built through NewStore). Safe from any goroutine.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// EntityAttr resolves an entity attribute inside the snapshot, the
// concurrent-read counterpart of Store.EntityAttr. IDs past the captured
// frontier (or unknown) resolve to NULL.
func (sn *Snapshot) EntityAttr(id int64, attr string) relational.Value {
	if id < 1 || id > int64(len(sn.Entities)) {
		return relational.Null()
	}
	return entityAttrValue(sn.Entities[id-1], attr)
}

// batchOps records one sealed batch's first event ID and the OR of its
// events' op-code bits (audit.OpType.Bit). The slice is append-only in
// batch order and entry i covers event IDs [startID_i, startID_i+1).
type batchOps struct {
	startID int64
	mask    uint32
}

// OpMaskBetween returns the OR of the op-code bits of every stored event
// with ID in [lo, hi), folded from the per-batch bitmap index (O(log
// batches + batches overlapped), no event scan). IDs below the first
// recorded batch resolve conservatively to all-ops.
func (sn *Snapshot) OpMaskBetween(lo, hi int64) uint32 {
	if lo >= hi {
		return 0
	}
	b := sn.opBatches
	// First batch whose range can overlap [lo, hi): the last entry with
	// startID <= lo.
	i := sort.Search(len(b), func(i int) bool { return b[i].startID > lo }) - 1
	if i < 0 {
		// lo predates the recorded batches; be conservative.
		return ^uint32(0)
	}
	var mask uint32
	for ; i < len(b) && b[i].startID < hi; i++ {
		mask |= b[i].mask
	}
	return mask
}

// timeBounds is a fixed pair of store time bounds against which TBQL
// windows resolve. Plans capture the bounds of the snapshot (or live
// store) they were lowered for, so window lowering never reads the
// writer-mutated Store fields from a reader goroutine.
type timeBounds struct {
	min, max int64
}

func (s *Store) bounds() timeBounds     { return timeBounds{s.MinTime, s.MaxTime} }
func (sn *Snapshot) bounds() timeBounds { return timeBounds{sn.MinTime, sn.MaxTime} }
