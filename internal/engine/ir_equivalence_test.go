package engine

import (
	"fmt"
	"sort"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/extract"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

// caseAnalyzed synthesizes and analyzes the TBQL query of one benchmark
// case, exactly as the end-to-end pipeline would.
func caseAnalyzed(t *testing.T, c *cases.Case) *tbql.Analyzed {
	t.Helper()
	graph := extract.New(extract.DefaultOptions()).Extract(c.Report).Graph
	q, _, err := synth.Synthesize(graph, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// legacyPatternRows executes one pattern through the legacy text path: the
// EXPLAIN-only SQL/Cypher generators render the query with the extras
// spliced as text, and the backend's parser-fed entry point runs it.
func legacyPatternRows(t *testing.T, store *Store, a *tbql.Analyzed, idx int, sp extrasSpec) [][5]int64 {
	t.Helper()
	var extra []string
	if len(sp.subj) > 0 {
		extra = append(extra, inList("s", sp.subj))
	}
	if len(sp.obj) > 0 {
		extra = append(extra, inList("o", sp.obj))
	}
	if sp.delta > 0 {
		extra = append(extra, fmt.Sprintf("e.id >= %d", sp.delta))
	}
	p := a.Query.Patterns[idx]
	var rows [][5]int64
	if p.Path != nil {
		cy := CompilePatternCypher(store, a, idx, extra)
		rs, err := store.Graph.Query(cy)
		if err != nil {
			t.Fatalf("legacy Cypher: %v\n%s", err, cy)
		}
		hasEvent := len(rs.Columns) == 5
		for _, row := range rs.Rows {
			var r [5]int64
			if hasEvent {
				for i := 0; i < 5; i++ {
					r[i] = row[i].I
				}
			} else {
				r[1], r[2] = row[0].I, row[1].I
			}
			rows = append(rows, r)
		}
		return rows
	}
	sql := CompilePatternSQL(store, a, idx, extra)
	rs, err := store.Rel.Query(sql)
	if err != nil {
		t.Fatalf("legacy SQL: %v\n%s", err, sql)
	}
	for _, row := range rs.Rows {
		rows = append(rows, [5]int64{row[0].I, row[1].I, row[2].I, row[3].I, row[4].I})
	}
	return rows
}

func sortedRows(rows [][5]int64) [][5]int64 {
	out := append([][5]int64(nil), rows...)
	sort.Slice(out, func(a, b int) bool {
		for k := 0; k < 5; k++ {
			if out[a][k] != out[b][k] {
				return out[a][k] < out[b][k]
			}
		}
		return false
	})
	return out
}

// bindingSample derives a small sorted unique binding set from a column of
// the pattern's unconstrained rows, as the scheduler would feed forward.
func bindingSample(rows [][5]int64, col, max int) []int64 {
	seen := map[int64]bool{}
	var ids []int64
	for _, r := range rows {
		if !seen[r[col]] {
			seen[r[col]] = true
			ids = append(ids, r[col])
		}
		if len(ids) >= max {
			break
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestIRGoldenEquivalence is the golden suite of the IR refactor: for the
// synthesized query of EVERY benchmark case — including all cases from the
// four DARPA TC case files (ClearScope, FiveDirections, THEIA, TRACE) —
// every pattern's IR-path data query must return exactly the legacy text
// path's rows, across every extras shape the scheduler can produce
// (binding sets on either or both sides, and the standing-query delta
// floor).
func TestIRGoldenEquivalence(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			gen, err := c.Generate(0.5)
			if err != nil {
				t.Fatal(err)
			}
			store, err := NewStore(gen.Log)
			if err != nil {
				t.Fatal(err)
			}
			a := caseAnalyzed(t, c)
			en := &Engine{Store: store}
			plan := en.planFor(a, nil)

			for idx, p := range a.Query.Patterns {
				// Unconstrained rows drive the binding-set samples.
				base, _, _, err := en.runPattern(nil, a, plan, idx, extrasSpec{})
				if err != nil {
					t.Fatal(err)
				}
				subj := bindingSample(base.rows, 1, 8)
				obj := bindingSample(base.rows, 2, 8)
				delta := int64(len(gen.Log.Events)/2 + 1)

				specs := []extrasSpec{
					{},
					{subj: subj},
					{obj: obj},
					{subj: subj, obj: obj},
				}
				// The delta floor applies only where the data query binds
				// an event: relational patterns and edge-var path queries
				// (ExecuteDelta routes everything else to full re-runs).
				if p.Path == nil || plan.pats[idx].ir.Path.HasEdgeVar {
					specs = append(specs, extrasSpec{delta: delta}, extrasSpec{subj: subj, delta: delta})
				}
				for si, sp := range specs {
					got, _, _, err := en.runPattern(nil, a, plan, idx, sp)
					if err != nil {
						t.Fatalf("pattern %s spec %d: %v", p.ID, si, err)
					}
					want := legacyPatternRows(t, store, a, idx, sp)
					g, w := sortedRows(got.rows), sortedRows(want)
					if len(g) != len(w) {
						t.Fatalf("pattern %s spec %d: IR %d rows, legacy %d rows", p.ID, si, len(g), len(w))
					}
					for i := range g {
						if g[i] != w[i] {
							t.Fatalf("pattern %s spec %d row %d: IR %v, legacy %v", p.ID, si, i, g[i], w[i])
						}
					}
				}
			}
		})
	}
}

// TestIRLiveAppendEquivalence covers the live/append scenario: a store
// built in two halves through AppendBatch must answer every case's
// synthesized query exactly like a store batch-built from the full log.
func TestIRLiveAppendEquivalence(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			gen, err := c.Generate(0.3)
			if err != nil {
				t.Fatal(err)
			}
			full, err := NewStore(gen.Log)
			if err != nil {
				t.Fatal(err)
			}
			half := len(gen.Log.Events) / 2
			liveLog := &audit.Log{
				Entities: gen.Log.Entities,
				Events:   append([]audit.Event(nil), gen.Log.Events[:half]...),
			}
			live, err := NewStore(liveLog)
			if err != nil {
				t.Fatal(err)
			}
			enLive := &Engine{Store: live}
			a := caseAnalyzed(t, c)

			// Execute against the half store first so cached plans must
			// survive (or correctly invalidate across) the append.
			if _, _, err := enLive.Execute(nil, a); err != nil {
				t.Fatal(err)
			}
			rest := append([]audit.Event(nil), gen.Log.Events[half:]...)
			if err := live.AppendBatch(nil, rest); err != nil {
				t.Fatal(err)
			}

			enFull := &Engine{Store: full}
			want, _, err := enFull.Execute(nil, a)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := enLive.Execute(nil, a)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(want.Set.Strings(), got.Set.Strings()) {
				t.Fatalf("live/append store differs from batch store:\n%v\n%v",
					want.Set.Strings(), got.Set.Strings())
			}

			// Golden delta leg: for every case, the materialized-view
			// delta round over the appended half must equal the recompute
			// path's round, row for row.
			floor := int64(half) + 1
			enRecomp := &Engine{Store: live, ViewHighWater: -1}
			vres, _, err := enLive.ExecuteDelta(nil, a, floor)
			if err != nil {
				t.Fatal(err)
			}
			rres, _, err := enRecomp.ExecuteDelta(nil, a, floor)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(vres.Set.Strings(), rres.Set.Strings()) {
				t.Fatalf("view delta round differs from recompute:\n%v\n%v",
					vres.Set.Strings(), rres.Set.Strings())
			}
		})
	}
}
