package engine

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/faultinject"
)

// truncatedOracle batch-builds a fresh store from the log's first n
// events and executes the query against it — the ground truth for what a
// hunt pinned at NextEventID n+1 must have seen.
func truncatedOracle(t *testing.T, log *audit.Log, n int, src string) [][]string {
	t.Helper()
	trunc := &audit.Log{
		Entities: log.Entities,
		Events:   append([]audit.Event(nil), log.Events[:n]...),
	}
	store, err := NewStore(trunc)
	if err != nil {
		t.Fatal(err)
	}
	en := &Engine{Store: store}
	res, _, err := en.Execute(nil, analyzed(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res.Set.Strings()
}

// TestConcurrentHuntsSnapshotConsistency is the snapshot-isolation soak
// (run under -race in CI): one appender grows the store batch by batch
// while hunters continuously pin the published snapshot and execute
// against it. Every hunt must return exactly the rows of a fresh store
// batch-built from the log truncated at that hunt's snapshot — no
// partial batches, no torn reads, no rows from the mutable tail.
func TestConcurrentHuntsSnapshotConsistency(t *testing.T) {
	gen, err := cases.ByID("data_leak").Generate(0.15)
	if err != nil {
		t.Fatal(err)
	}
	n := len(gen.Log.Events)
	initial := n / 4
	live, err := NewStore(&audit.Log{
		Entities: gen.Log.Entities,
		Events:   append([]audit.Event(nil), gen.Log.Events[:initial]...),
	})
	if err != nil {
		t.Fatal(err)
	}
	en := &Engine{Store: live}
	a := analyzed(t, dataLeakTBQL)

	// Warm the plan cache before the races start so lazy compilation is
	// also exercised from hunter goroutines at a later epoch.
	if _, _, err := en.Execute(nil, a); err != nil {
		t.Fatal(err)
	}

	const hunters = 4
	type observation struct {
		next int64
		rows [][]string
	}
	var (
		mu   sync.Mutex
		obs  []observation
		done = make(chan struct{})
		wg   sync.WaitGroup
	)
	for h := 0; h < hunters; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := en.Store.Snapshot()
				res, _, err := en.execute(nil, a, snap, nil)
				if err != nil {
					t.Errorf("concurrent hunt: %v", err)
					return
				}
				mu.Lock()
				obs = append(obs, observation{snap.NextEventID, res.Set.Strings()})
				mu.Unlock()
			}
		}()
	}

	// Pace the appender by hunter progress: on a single-CPU box the whole
	// append loop can otherwise finish before any hunter is scheduled,
	// leaving nothing interleaved to check.
	observations := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(obs)
	}
	const batches = 24
	per := (n - initial + batches - 1) / batches
	for i := initial; i < n; i += per {
		j := i + per
		if j > n {
			j = n
		}
		before := observations()
		batch := append([]audit.Event(nil), gen.Log.Events[i:j]...)
		if err := live.AppendBatch(nil, batch); err != nil {
			t.Fatal(err)
		}
		for deadline := time.Now().Add(time.Second); observations() == before && time.Now().Before(deadline); {
			runtime.Gosched()
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every observation at the same snapshot frontier must agree, and
	// each distinct frontier must match its truncation oracle.
	byNext := map[int64][][]string{}
	for _, o := range obs {
		if prev, ok := byNext[o.next]; ok {
			if !sameRows(prev, o.rows) {
				t.Fatalf("two hunts at frontier %d disagree:\n%v\n%v", o.next, prev, o.rows)
			}
			continue
		}
		byNext[o.next] = o.rows
	}
	if len(byNext) < 2 {
		t.Errorf("hunters only observed %d distinct frontiers; the soak interleaved nothing", len(byNext))
	}
	for next, rows := range byNext {
		want := truncatedOracle(t, gen.Log, int(next-1), dataLeakTBQL)
		if !sameRows(want, rows) {
			t.Fatalf("hunt at frontier %d diverged from truncated batch build:\n want %v\n got %v",
				next, want, rows)
		}
	}
}

// TestHuntNeverObservesPartialAppend pins the crash-consistency half of
// snapshot isolation: a hunt that pinned its snapshot before an append —
// including an append that fails midway, after the relational insert but
// before the graph insert — never sees a partial batch. The published
// snapshot only ever moves whole-batch-at-a-time.
func TestHuntNeverObservesPartialAppend(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	gen, err := cases.ByID("data_leak").Generate(0.1)
	if err != nil {
		t.Fatal(err)
	}
	n := len(gen.Log.Events)
	half := n / 2
	live, err := NewStore(&audit.Log{
		Entities: gen.Log.Entities,
		Events:   append([]audit.Event(nil), gen.Log.Events[:half]...),
	})
	if err != nil {
		t.Fatal(err)
	}
	en := &Engine{Store: live}
	a := analyzed(t, dataLeakTBQL)
	wantHalf := truncatedOracle(t, gen.Log, half, dataLeakTBQL)
	pinned := live.Snapshot()

	// A torn append: the relational event insert succeeds, the graph
	// insert fails, the batch rolls back. The pinned snapshot and the
	// published snapshot must both still answer exactly like the
	// pre-append store.
	faultinject.Arm(faultinject.Plan{
		FaultAppendEventsGraph: {Hits: []int{1}, Mode: faultinject.ModeError},
	})
	rest := append([]audit.Event(nil), gen.Log.Events[half:]...)
	if err := live.AppendBatch(nil, rest); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append under fault = %v, want injected error", err)
	}
	faultinject.Disarm()

	for name, snap := range map[string]*Snapshot{"pinned": pinned, "republished": live.Snapshot()} {
		if snap.NextEventID != int64(half)+1 {
			t.Fatalf("%s snapshot frontier = %d after failed append, want %d", name, snap.NextEventID, half+1)
		}
		res, _, err := en.execute(nil, a, snap, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(wantHalf, res.Set.Strings()) {
			t.Fatalf("%s snapshot saw rows of a rolled-back append:\n want %v\n got %v",
				name, wantHalf, res.Set.Strings())
		}
	}

	// The retried append succeeds; the old pinned snapshot still answers
	// at its frontier while a fresh pin sees the whole log.
	if err := live.AppendBatch(nil, rest); err != nil {
		t.Fatal(err)
	}
	res, _, err := en.execute(nil, a, pinned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(wantHalf, res.Set.Strings()) {
		t.Fatalf("pre-append pin drifted after the append landed:\n want %v\n got %v",
			wantHalf, res.Set.Strings())
	}
	wantFull := truncatedOracle(t, gen.Log, n, dataLeakTBQL)
	resFull, _, err := en.execute(nil, a, live.Snapshot(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(wantFull, resFull.Set.Strings()) {
		t.Fatalf("post-append snapshot wrong:\n want %v\n got %v", wantFull, resFull.Set.Strings())
	}
	if len(wantFull) == 0 {
		t.Fatal("full log found no attack; the comparison above is vacuous")
	}
}
