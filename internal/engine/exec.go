package engine

import (
	"fmt"
	"sort"

	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// Stats summarizes one TBQL execution.
type Stats struct {
	DataQueries  int // small SQL/Cypher queries issued
	PatternRows  int // total rows returned by data queries
	JoinBindings int // complete bindings found by the cross-pattern join
	// EmptyPatternID names the pattern whose data query matched nothing
	// and short-circuited the conjunction ("" when all patterns matched).
	// Surfacing it supports the paper's human-in-the-loop query revision:
	// the analyst removes or relaxes the excessive pattern.
	EmptyPatternID string
	Rel            relational.ExecStats
	Graph          graphdb.ExecStats
}

// Engine executes TBQL queries against a store.
type Engine struct {
	Store *Store
	// MaxInList bounds how many entity IDs the scheduler pushes into a
	// dependent data query as an IN constraint; larger binding sets are
	// left to the join phase. Zero selects the default of 2000.
	MaxInList int
	// DisableScheduling turns off pruning-score ordering and constraint
	// feeding (the ablation of the paper's core RQ4 optimization): data
	// queries run in declaration order without added constraints.
	DisableScheduling bool
}

// Result is the outcome of a scheduled TBQL execution: the projected
// return rows plus the audit event IDs that participated in at least one
// complete binding (the paper's RQ2 scores matched system events against
// ground truth).
type Result struct {
	Set           *relational.ResultSet
	MatchedEvents map[int64]bool
}

// patternRows is the result of one pattern's data query.
type patternRows struct {
	idx  int // pattern index
	rows [][5]int64
	// hasEvent is false for variable-length paths (no event/time columns).
	hasEvent bool
}

// Execute runs a TBQL query with the ThreatRaptor plan: each pattern
// compiles to a small data query (SQL for event patterns, Cypher for path
// patterns), the scheduler orders them by pruning score, feeds entity
// bindings forward as constraints, and a final in-engine join applies the
// temporal and attribute relationships.
func (en *Engine) Execute(a *tbql.Analyzed) (*Result, Stats, error) {
	var stats Stats
	order := en.schedule(a)

	bindings := make(map[string]map[int64]bool) // entity ID -> allowed rows
	results := make([]patternRows, len(a.Query.Patterns))
	maxIn := en.MaxInList
	if maxIn <= 0 {
		maxIn = 2000
	}

	for _, idx := range order {
		p := a.Query.Patterns[idx]
		var extraSQL, extraCy []string
		if !en.DisableScheduling {
			for _, side := range []struct{ id, alias string }{
				{p.Subject.ID, "s"}, {p.Object.ID, "o"},
			} {
				set := bindings[side.id]
				if set == nil || len(set) == 0 || len(set) > maxIn {
					continue
				}
				ids := sortedIDs(set)
				extraSQL = append(extraSQL, inList(side.alias, ids))
				extraCy = append(extraCy, inList(side.alias, ids))
			}
		}

		pr := patternRows{idx: idx, hasEvent: true}
		usesGraph := p.Path != nil
		if usesGraph {
			query := CompilePatternCypher(en.Store, a, idx, extraCy)
			rs, gs, err := en.Store.Graph.QueryStats(query)
			if err != nil {
				return nil, stats, fmt.Errorf("engine: pattern %s: %w", p.ID, err)
			}
			stats.Graph.NodesVisited += gs.NodesVisited
			stats.Graph.EdgesTraversed += gs.EdgesTraversed
			stats.Graph.IndexLookups += gs.IndexLookups
			pr.hasEvent = len(rs.Columns) == 5
			for _, row := range rs.Rows {
				var r [5]int64
				if pr.hasEvent {
					for i := 0; i < 5; i++ {
						r[i] = row[i].I
					}
				} else {
					r[1], r[2] = row[0].I, row[1].I
				}
				pr.rows = append(pr.rows, r)
			}
		} else {
			query := CompilePatternSQL(en.Store, a, idx, extraSQL)
			rs, qs, err := en.Store.Rel.QueryStats(query)
			if err != nil {
				return nil, stats, fmt.Errorf("engine: pattern %s: %w", p.ID, err)
			}
			stats.Rel.RowsScanned += qs.RowsScanned
			stats.Rel.IndexLookups += qs.IndexLookups
			for _, row := range rs.Rows {
				pr.rows = append(pr.rows, [5]int64{row[0].I, row[1].I, row[2].I, row[3].I, row[4].I})
			}
		}
		stats.DataQueries++
		stats.PatternRows += len(pr.rows)
		results[idx] = pr

		if len(pr.rows) == 0 {
			// A pattern with no matches empties the whole conjunction.
			stats.EmptyPatternID = p.ID
			return &Result{
				Set:           &relational.ResultSet{Columns: returnColumns(a)},
				MatchedEvents: map[int64]bool{},
			}, stats, nil
		}
		if !en.DisableScheduling {
			narrow(bindings, p.Subject.ID, pr.rows, 1)
			narrow(bindings, p.Object.ID, pr.rows, 2)
		}
	}

	res, joined, err := en.join(a, results)
	if err != nil {
		return nil, stats, err
	}
	stats.JoinBindings = joined
	return res, stats, nil
}

// schedule orders pattern indexes by descending pruning score
// (Section III-F): more declared constraints score higher; variable-length
// paths score lower the longer their maximum length.
func (en *Engine) schedule(a *tbql.Analyzed) []int {
	n := len(a.Query.Patterns)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if en.DisableScheduling {
		return order
	}
	scores := make([]int, n)
	for i, p := range a.Query.Patterns {
		scores[i] = en.pruningScore(a, p)
	}
	sort.SliceStable(order, func(x, y int) bool {
		return scores[order[x]] > scores[order[y]]
	})
	return order
}

func (en *Engine) pruningScore(a *tbql.Analyzed, p *tbql.Pattern) int {
	score := 0
	if f := a.Entities[p.Subject.ID].Filter; f != nil {
		score += countConjuncts(f)
	}
	if f := a.Entities[p.Object.ID].Filter; f != nil {
		score += countConjuncts(f)
	}
	if p.IDFilter != nil {
		score += countConjuncts(p.IDFilter)
	}
	if p.Op != nil && len(p.Op.Ops()) < 9 {
		score++
	}
	if windowOf(a.Query, p) != nil {
		score++
	}
	score *= 8 // constraints dominate path length
	if p.Path != nil {
		if p.Path.MaxLen < 0 {
			score -= 64
		} else {
			score -= p.Path.MaxLen
		}
	}
	return score
}

func countConjuncts(e relational.Expr) int {
	if bin, ok := e.(relational.BinOp); ok && bin.Op == "and" {
		return countConjuncts(bin.L) + countConjuncts(bin.R)
	}
	return 1
}

func sortedIDs(set map[int64]bool) []int64 {
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// narrow intersects the binding set of an entity with the IDs seen in a
// pattern's rows (column col).
func narrow(bindings map[string]map[int64]bool, entityID string, rows [][5]int64, col int) {
	seen := make(map[int64]bool, len(rows))
	for _, r := range rows {
		seen[r[col]] = true
	}
	prev, ok := bindings[entityID]
	if !ok {
		bindings[entityID] = seen
		return
	}
	for id := range prev {
		if !seen[id] {
			delete(prev, id)
		}
	}
}

func returnColumns(a *tbql.Analyzed) []string {
	cols := make([]string, len(a.ReturnItems))
	for i, item := range a.ReturnItems {
		cols[i] = item.EntityID + "." + item.Attr
	}
	return cols
}

// join combines per-pattern rows into complete bindings, enforcing shared
// entity identity, temporal relationships, attribute relationships, and
// global filters, then projects the return clause.
func (en *Engine) join(a *tbql.Analyzed, results []patternRows) (*Result, int, error) {
	q := a.Query
	rs := &relational.ResultSet{Columns: returnColumns(a)}
	matched := make(map[int64]bool)
	joined := 0

	// Join in ascending row-count order to keep intermediates small.
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return len(results[order[x]].rows) < len(results[order[y]].rows)
	})

	entityBind := make(map[string]int64)
	pattTimes := make(map[string][2]int64) // pattern ID -> start,end
	pattEvent := make(map[string]int64)    // pattern ID -> event row ID

	var resolveAttr func(c relational.ColRef) (relational.Value, error)
	resolveAttr = func(c relational.ColRef) (relational.Value, error) {
		id, ok := entityBind[c.Qualifier]
		if !ok {
			return relational.Null(), fmt.Errorf("engine: unbound entity %s", c.Qualifier)
		}
		return en.Store.EntityAttr(id, c.Column), nil
	}

	checkRelations := func() (bool, error) {
		for _, rel := range q.Relations {
			switch rel.Kind {
			case tbql.RelAttr:
				v, err := relational.EvalExpr(rel.Attr, resolveAttr)
				if err != nil {
					return false, err
				}
				if !v.Truthy() {
					return false, nil
				}
			default:
				ta, okA := pattTimes[rel.A]
				tb, okB := pattTimes[rel.B]
				if !okA || !okB {
					return false, fmt.Errorf("engine: temporal relation on pattern without event times")
				}
				if !temporalHolds(rel, ta[0], tb[0]) {
					return false, nil
				}
			}
		}
		return true, nil
	}

	var walk func(k int) error
	walk = func(k int) error {
		if k == len(order) {
			ok, err := checkRelations()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			joined++
			for _, ev := range pattEvent {
				matched[ev] = true
			}
			row := make([]relational.Value, len(a.ReturnItems))
			for i, item := range a.ReturnItems {
				row[i] = en.Store.EntityAttr(entityBind[item.EntityID], item.Attr)
			}
			rs.Rows = append(rs.Rows, row)
			return nil
		}
		pr := results[order[k]]
		p := q.Patterns[pr.idx]
		for _, r := range pr.rows {
			sPrev, sBound := entityBind[p.Subject.ID]
			if sBound && sPrev != r[1] {
				continue
			}
			oPrev, oBound := entityBind[p.Object.ID]
			if oBound && oPrev != r[2] {
				continue
			}
			if !sBound {
				entityBind[p.Subject.ID] = r[1]
			}
			if !oBound {
				entityBind[p.Object.ID] = r[2]
			}
			if pr.hasEvent {
				pattTimes[p.ID] = [2]int64{r[3], r[4]}
				pattEvent[p.ID] = r[0]
			}
			if err := walk(k + 1); err != nil {
				return err
			}
			delete(pattTimes, p.ID)
			delete(pattEvent, p.ID)
			if !sBound {
				delete(entityBind, p.Subject.ID)
			}
			if !oBound {
				delete(entityBind, p.Object.ID)
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, joined, err
	}

	if q.Return.Distinct {
		rs.Rows = dedupValueRows(rs.Rows)
	}
	return &Result{Set: rs, MatchedEvents: matched}, joined, nil
}

func temporalHolds(rel tbql.Relation, startA, startB int64) bool {
	switch rel.Kind {
	case tbql.RelBefore:
		if startA >= startB {
			return false
		}
		if rel.HasDur {
			d := startB - startA
			return d >= rel.LoDur.Microseconds() && d <= rel.HiDur.Microseconds()
		}
		return true
	case tbql.RelAfter:
		if startA <= startB {
			return false
		}
		if rel.HasDur {
			d := startA - startB
			return d >= rel.LoDur.Microseconds() && d <= rel.HiDur.Microseconds()
		}
		return true
	case tbql.RelWithin:
		d := startA - startB
		if d < 0 {
			d = -d
		}
		return d <= rel.HiDur.Microseconds()
	}
	return false
}

func dedupValueRows(rows [][]relational.Value) [][]relational.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, row := range rows {
		key := ""
		for _, v := range row {
			key += v.Key() + "\x00"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, row)
		}
	}
	return out
}

// ExecuteMonolithicSQL compiles the query into one giant SQL statement and
// runs it on the relational backend (query type (b) in RQ4).
func (en *Engine) ExecuteMonolithicSQL(a *tbql.Analyzed) (*relational.ResultSet, Stats, error) {
	var stats Stats
	sql, err := CompileMonolithicSQL(en.Store, a)
	if err != nil {
		return nil, stats, err
	}
	rs, qs, err := en.Store.Rel.QueryStats(sql)
	stats.DataQueries = 1
	stats.Rel = qs
	return rs, stats, err
}

// ExecuteMonolithicCypher compiles the query into one giant Cypher
// statement and runs it on the graph backend with the clause-at-a-time
// plan that production graph databases use for multi-MATCH statements
// (query type (d) in RQ4).
func (en *Engine) ExecuteMonolithicCypher(a *tbql.Analyzed) (*relational.ResultSet, Stats, error) {
	var stats Stats
	cy, err := CompileMonolithicCypher(en.Store, a)
	if err != nil {
		return nil, stats, err
	}
	q, err := graphdb.ParseQuery(cy)
	if err != nil {
		return nil, stats, err
	}
	q.ClauseAtATime = true
	rs, gs, err := en.Store.Graph.Exec(q)
	stats.DataQueries = 1
	stats.Graph = gs
	return rs, stats, err
}

// MatchEventsPerPattern returns the union of event IDs matched by each
// pattern's data query evaluated independently. This is the paper's RQ2
// scoring semantics ("the system events found by the event patterns in the
// synthesized TBQL query"): an excessive pattern that matches nothing does
// not empty the other patterns' findings.
func (en *Engine) MatchEventsPerPattern(a *tbql.Analyzed) (map[int64]bool, error) {
	matched := make(map[int64]bool)
	for idx, p := range a.Query.Patterns {
		if p.Path != nil {
			query := CompilePatternCypher(en.Store, a, idx, nil)
			rs, err := en.Store.Graph.Query(query)
			if err != nil {
				return nil, err
			}
			if len(rs.Columns) == 5 {
				for _, row := range rs.Rows {
					matched[row[0].I] = true
				}
			}
			continue
		}
		query := CompilePatternSQL(en.Store, a, idx, nil)
		rs, err := en.Store.Rel.Query(query)
		if err != nil {
			return nil, err
		}
		for _, row := range rs.Rows {
			matched[row[0].I] = true
		}
	}
	return matched, nil
}

// Hunt parses, analyzes, and executes TBQL source with the scheduled plan.
func (en *Engine) Hunt(src string) (*Result, Stats, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, Stats{}, err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return nil, Stats{}, err
	}
	return en.Execute(a)
}
