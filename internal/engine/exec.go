package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"threatraptor/internal/faultinject"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/qir"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// Stats summarizes one TBQL execution.
type Stats struct {
	DataQueries  int // small SQL/Cypher queries issued
	PatternRows  int // total rows returned by data queries
	JoinBindings int // complete bindings found by the cross-pattern join
	// EmptyPatternID names the pattern whose data query matched nothing
	// and short-circuited the conjunction ("" when all patterns matched).
	// Surfacing it supports the paper's human-in-the-loop query revision:
	// the analyst removes or relaxes the excessive pattern.
	EmptyPatternID string
	Rel            relational.ExecStats
	Graph          graphdb.ExecStats
}

// Engine executes TBQL queries against a store.
type Engine struct {
	Store *Store
	// MaxInList bounds how many entity IDs the scheduler pushes into a
	// dependent data query as an IN constraint; larger binding sets are
	// left to the join phase. Zero selects the default of 2000.
	MaxInList int
	// DisableScheduling turns off pruning-score ordering and constraint
	// feeding (the ablation of the paper's core RQ4 optimization): data
	// queries run in declaration order without added constraints.
	DisableScheduling bool
	// Parallel runs each dependency level's data queries in concurrent
	// goroutines (patterns in one level share no entity variable, so no
	// constraint can flow between them). The result set is identical to
	// the serial scheduled plan; only Stats.DataQueries can differ when a
	// pattern comes up empty, because a whole level completes before the
	// short-circuit is taken.
	Parallel bool
	// ViewHighWater caps the total rows the engine may hold in
	// materialized pattern views (the standing-query match caches): 0
	// selects DefaultViewHighWater, a negative value disables views
	// entirely. A query whose views would cross the cap evaluates through
	// the recompute path instead — delta rounds stay correct, just not
	// O(delta).
	ViewHighWater int

	planMu sync.Mutex
	plans  map[planKey]*queryPlan

	// Materialized-view accounting and counters (see view.go).
	viewRows             atomic.Int64
	viewReleaseGen       atomic.Int64
	viewMaterializations atomic.Int64
	viewDeltaMerges      atomic.Int64
	viewFallbacks        atomic.Int64
	viewCatchupSkips     atomic.Int64
	viewWindowMigrations atomic.Int64
	scratchPool          sync.Pool

	// huntMu guards the parse/analyze cache keyed by TBQL source text, so
	// repeat Hunt calls reuse one *tbql.Analyzed — which in turn keeps the
	// compiled query plans (IR and backend plan variants) hot across hunts.
	huntMu   sync.Mutex
	analyzed map[string]*tbql.Analyzed
}

// maxCachedAnalyzed bounds the Hunt source cache (flushed wholesale on
// overflow, like the other engine caches).
const maxCachedAnalyzed = 256

// Result is the outcome of a scheduled TBQL execution: the projected
// return rows plus the audit event IDs that participated in at least one
// complete binding (the paper's RQ2 scores matched system events against
// ground truth).
type Result struct {
	Set           *relational.ResultSet
	MatchedEvents map[int64]bool
}

// patternRows is the result of one pattern's data query.
type patternRows struct {
	idx  int // pattern index
	rows [][5]int64
	// hasEvent is false for variable-length paths (no event/time columns).
	hasEvent bool
}

// extrasSpec is everything that can vary in one pattern's data query
// between executions: the scheduler's subject/object binding sets (sorted
// unique ID slices), the standing-query delta floor (only events with
// ID >= delta match; 0 means no floor), and the pinned snapshot the
// execution reads (nil = live store, writer-synchronized paths only). The
// spec binds as parameter values on the pattern's one compiled plan (whose
// optional parameter predicates prune themselves when a spec field is
// unset) — nothing is rendered to text and no per-shape plan variant
// exists.
type extrasSpec struct {
	subj, obj []int64
	delta     int64
	snap      *Snapshot
}

// any reports whether the spec carries any constraint at all.
func (sp extrasSpec) any() bool {
	return len(sp.subj) > 0 || len(sp.obj) > 0 || sp.delta > 0
}

// runPattern executes one pattern's data query with the given extras spec
// (scheduler binding sets plus the delta floor), against the backend the
// pattern lowers to. Both backends consume the pattern's compiled plan
// directly; the extras bind as parameter values, so no query text is
// assembled and no parser runs.
func (en *Engine) runPattern(ctx context.Context, a *tbql.Analyzed, plan *queryPlan, idx int, sp extrasSpec) (patternRows, relational.ExecStats, graphdb.ExecStats, error) {
	p := a.Query.Patterns[idx]
	pr := patternRows{idx: idx, hasEvent: true}
	if err := ctxErr(ctx); err != nil {
		return pr, relational.ExecStats{}, graphdb.ExecStats{}, err
	}
	if err := faultinject.Hit(FaultExecutePattern); err != nil {
		return pr, relational.ExecStats{}, graphdb.ExecStats{}, fmt.Errorf("engine: pattern %s: %w", p.ID, err)
	}
	pp := &plan.pats[idx]
	if pp.usesGraph {
		var params *graphdb.ExecParams
		if sp.any() || sp.snap != nil {
			var gp graphdb.ExecParams
			var nb [2]graphdb.NodeBinding
			n := 0
			if len(sp.subj) > 0 {
				nb[n] = graphdb.NodeBinding{Var: "s", IDs: sp.subj}
				n++
			}
			if len(sp.obj) > 0 {
				nb[n] = graphdb.NodeBinding{Var: "o", IDs: sp.obj}
				n++
			}
			gp.Nodes = nb[:n]
			if sp.delta > 0 && pp.ir.Path.HasEdgeVar {
				// The graph executor's floor is a dense edge-arena offset,
				// which equals the event ID only when the store holds the
				// full 1..n ID space. A shard's sub-log has gaps, so the
				// global event-ID floor translates through the snapshot's
				// ID-ordered event slice (identity for dense stores).
				gp.EdgeVar = "e"
				gp.MinEdgeID = snapEdgeFloor(sp.snap, sp.delta)
			}
			if sp.snap != nil {
				gp.View = &sp.snap.Graph
			}
			params = &gp
		}
		rs, gs, err := en.Store.Graph.ExecWithCtx(ctx, pp.gq, params)
		if err != nil {
			return pr, relational.ExecStats{}, gs, fmt.Errorf("engine: pattern %s: %w", p.ID, err)
		}
		pr.hasEvent = len(rs.Columns) == 5
		pr.rows = make([][5]int64, 0, len(rs.Rows))
		for _, row := range rs.Rows {
			var r [5]int64
			if pr.hasEvent {
				for i := 0; i < 5; i++ {
					r[i] = row[i].I
				}
			} else {
				r[1], r[2] = row[0].I, row[1].I
			}
			pr.rows = append(pr.rows, r)
		}
		return pr, relational.ExecStats{}, gs, nil
	}
	var prep *relational.Prepared
	var err error
	if sp.delta > 0 {
		// Delta rounds anchor on the events table so the scan starts at
		// the floor instead of walking the entity anchor's history.
		prep, err = pp.preparedDelta(en.Store, plan.bounds)
	} else {
		prep, err = pp.prepared(en.Store, plan.bounds)
	}
	if err != nil {
		return pr, relational.ExecStats{}, graphdb.ExecStats{}, fmt.Errorf("engine: pattern %s: %w", p.ID, err)
	}
	var params relational.Params
	params.Lists[qir.SlotSubjIDs] = sp.subj
	params.Lists[qir.SlotObjIDs] = sp.obj
	params.Ints[qir.SlotDelta] = sp.delta
	if sp.snap != nil {
		params.Snap = &sp.snap.Rel
	}
	rs, qs, err := prep.QueryCtx(ctx, &params)
	if err != nil {
		return pr, qs, graphdb.ExecStats{}, fmt.Errorf("engine: pattern %s: %w", p.ID, err)
	}
	pr.rows = make([][5]int64, 0, len(rs.Rows))
	for _, row := range rs.Rows {
		pr.rows = append(pr.rows, [5]int64{row[0].I, row[1].I, row[2].I, row[3].I, row[4].I})
	}
	return pr, qs, graphdb.ExecStats{}, nil
}

// bindingSpec selects the scheduler's binding-set constraints for a
// pattern. Binding sets are kept as sorted unique ID slices — the
// representation both backends' membership checks and index probes
// consume directly as bound parameters.
func (en *Engine) bindingSpec(p *tbql.Pattern, bindings map[string][]int64, maxIn int) (subj, obj []int64) {
	if set := bindings[p.Subject.ID]; len(set) > 0 && len(set) <= maxIn {
		subj = set
	}
	if set := bindings[p.Object.ID]; len(set) > 0 && len(set) <= maxIn {
		obj = set
	}
	return subj, obj
}

func (en *Engine) maxIn() int {
	if en.MaxInList > 0 {
		return en.MaxInList
	}
	return 2000
}

// emptyResult is the short-circuit outcome when a pattern matches nothing.
func emptyResult(a *tbql.Analyzed) *Result {
	return &Result{
		Set:           &relational.ResultSet{Columns: returnColumns(a)},
		MatchedEvents: map[int64]bool{},
	}
}

// Execute runs a TBQL query with the ThreatRaptor plan: each pattern
// lowers to a small data query in the shared logical-plan IR (executed by
// the relational backend for event patterns, the graph backend for path
// patterns), the scheduler orders them by pruning score, feeds entity
// bindings forward as bound parameters, and a final in-engine join applies
// the temporal and attribute relationships. With Parallel set, independent
// patterns within one dependency level run concurrently.
//
// ctx cancels cooperatively: the executors poll it at pattern and level
// boundaries, relational batch boundaries, and graph DFS depth steps, and
// the call returns ctx.Err() promptly. A nil context never cancels. Panics
// anywhere in execution surface as a typed *InternalError instead of
// unwinding into the caller.
//
// Execute pins the latest published store snapshot at entry and runs
// entirely against it: every data query, attribute resolution, and window
// lowering reads that one frozen generation, so the call is safe to run
// concurrently with AppendBatch (and with other executions) without any
// session-wide lock.
func (en *Engine) Execute(ctx context.Context, a *tbql.Analyzed) (res *Result, stats Stats, err error) {
	defer guard(a, &err)
	return en.execute(ctx, a, en.Store.Snapshot(), nil)
}

// execute is Execute with an optional per-pattern delta floor: deltaFor
// (nil for none) returns the minimum event ID pattern idx may match, the
// hook standing queries use to join only new rows against history. Delta
// rounds run the serial scheduled plan with the delta-constrained patterns
// hoisted to the front: a floor over a small append usually matches
// nothing (short-circuiting the round after one data query) or a handful
// of rows whose bindings prune every later pattern.
func (en *Engine) execute(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, deltaFor func(idx int) int64) (*Result, Stats, error) {
	plan := en.planFor(a, snap)
	if en.Parallel && !en.DisableScheduling && deltaFor == nil {
		return en.executeLevels(ctx, a, snap, plan)
	}

	order := plan.order
	if deltaFor != nil {
		hoisted := make([]int, 0, len(order))
		for _, idx := range order {
			if deltaFor(idx) > 0 {
				hoisted = append(hoisted, idx)
			}
		}
		for _, idx := range order {
			if deltaFor(idx) <= 0 {
				hoisted = append(hoisted, idx)
			}
		}
		order = hoisted
	}

	var stats Stats
	bindings := make(map[string][]int64) // entity ID -> allowed IDs, sorted unique
	results := make([]patternRows, len(a.Query.Patterns))
	maxIn := en.maxIn()
	var scratch []int64

	for _, idx := range order {
		p := a.Query.Patterns[idx]
		sp := extrasSpec{snap: snap}
		if !en.DisableScheduling {
			sp.subj, sp.obj = en.bindingSpec(p, bindings, maxIn)
		}
		if deltaFor != nil {
			sp.delta = deltaFor(idx)
		}
		pr, qs, gs, err := en.runPattern(ctx, a, plan, idx, sp)
		if err != nil {
			return nil, stats, err
		}
		stats.Rel.RowsScanned += qs.RowsScanned
		stats.Rel.IndexLookups += qs.IndexLookups
		stats.Rel.HashJoinBuilds += qs.HashJoinBuilds
		stats.Graph.NodesVisited += gs.NodesVisited
		stats.Graph.EdgesTraversed += gs.EdgesTraversed
		stats.Graph.IndexLookups += gs.IndexLookups
		stats.DataQueries++
		stats.PatternRows += len(pr.rows)
		results[idx] = pr

		if len(pr.rows) == 0 {
			// A pattern with no matches empties the whole conjunction.
			stats.EmptyPatternID = p.ID
			return emptyResult(a), stats, nil
		}
		if !en.DisableScheduling {
			narrow(bindings, p.Subject.ID, pr.rows, 1, &scratch)
			narrow(bindings, p.Object.ID, pr.rows, 2, &scratch)
		}
	}

	res, joined, err := en.join(ctx, a, snap, results)
	if err != nil {
		return nil, stats, err
	}
	stats.JoinBindings = joined
	return res, stats, nil
}

// executeLevels is the parallel scheduled plan: the scheduler's order is
// partitioned into dependency levels, each level's patterns execute in
// concurrent goroutines (they share no entity variable, so no constraint
// could flow between them), and binding sets are narrowed between levels.
// Delta rounds never come here: execute() routes them through the serial
// plan, whose binding feed the hoisted delta patterns rely on.
func (en *Engine) executeLevels(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, plan *queryPlan) (*Result, Stats, error) {
	var stats Stats
	bindings := make(map[string][]int64)
	results := make([]patternRows, len(a.Query.Patterns))
	maxIn := en.maxIn()
	var scratch []int64

	type outcome struct {
		pr  patternRows
		rel relational.ExecStats
		gr  graphdb.ExecStats
		err error
	}
	for _, level := range plan.levels {
		outs := make([]outcome, len(level))
		levelSpec := func(idx int) extrasSpec {
			sp := extrasSpec{snap: snap}
			if !en.DisableScheduling {
				sp.subj, sp.obj = en.bindingSpec(a.Query.Patterns[idx], bindings, maxIn)
			}
			return sp
		}
		if len(level) == 1 {
			o := &outs[0]
			o.pr, o.rel, o.gr, o.err = en.runPattern(ctx, a, plan, level[0], levelSpec(level[0]))
		} else {
			var wg sync.WaitGroup
			for i, idx := range level {
				sp := levelSpec(idx)
				wg.Add(1)
				go func(i, idx int, sp extrasSpec) {
					defer wg.Done()
					// A worker panic would kill the process (the caller's
					// recover boundary cannot see it), so each worker has its
					// own, producing the same typed error.
					defer func() {
						if r := recover(); r != nil {
							outs[i].err = &InternalError{
								Query: "pattern " + a.Query.Patterns[idx].ID,
								Panic: r,
								Stack: debug.Stack(),
							}
						}
					}()
					o := &outs[i]
					o.pr, o.rel, o.gr, o.err = en.runPattern(ctx, a, plan, idx, sp)
				}(i, idx, sp)
			}
			wg.Wait()
		}
		empty := -1
		for i, idx := range level {
			o := &outs[i]
			if o.err != nil {
				return nil, stats, o.err
			}
			stats.Rel.RowsScanned += o.rel.RowsScanned
			stats.Rel.IndexLookups += o.rel.IndexLookups
			stats.Rel.HashJoinBuilds += o.rel.HashJoinBuilds
			stats.Graph.NodesVisited += o.gr.NodesVisited
			stats.Graph.EdgesTraversed += o.gr.EdgesTraversed
			stats.Graph.IndexLookups += o.gr.IndexLookups
			stats.DataQueries++
			stats.PatternRows += len(o.pr.rows)
			results[idx] = o.pr
			if len(o.pr.rows) == 0 && empty < 0 {
				empty = idx
			}
		}
		if empty >= 0 {
			stats.EmptyPatternID = a.Query.Patterns[empty].ID
			return emptyResult(a), stats, nil
		}
		if !en.DisableScheduling {
			for _, idx := range level {
				p := a.Query.Patterns[idx]
				narrow(bindings, p.Subject.ID, results[idx].rows, 1, &scratch)
				narrow(bindings, p.Object.ID, results[idx].rows, 2, &scratch)
			}
		}
	}

	res, joined, err := en.join(ctx, a, snap, results)
	if err != nil {
		return nil, stats, err
	}
	stats.JoinBindings = joined
	return res, stats, nil
}

// ExecuteParallel runs the scheduled plan with per-level concurrency
// regardless of the Parallel flag.
func (en *Engine) ExecuteParallel(ctx context.Context, a *tbql.Analyzed) (res *Result, stats Stats, err error) {
	defer guard(a, &err)
	snap := en.Store.Snapshot()
	return en.executeLevels(ctx, a, snap, en.planFor(a, snap))
}

// ExecuteDelta evaluates a query incrementally after an append: it returns
// the complete bindings that use at least one event with ID >= minEventID,
// joining each pattern's new rows against the full indexed history. On the
// materialized-view path (the default), each pattern's cached match set is
// brought up to the store frontier with one floored catch-up query —
// O(new events) — and a delta pattern's fresh rows join against the other
// patterns' cached sets, so a round costs O(delta), not O(store). When the
// ViewHighWater cap disables a view (or ViewHighWater < 0 disables views),
// the recompute path runs: one constrained execution per pattern (the
// standard delta-join rule). Both paths produce the same binding set; a
// binding with several new events appears once per delta pattern, so
// callers deduplicate firings. Queries containing a variable-length path
// pattern fall back to one full execution: even a typed path binds the
// event variable only on its final hop, so an ID floor would miss paths
// completed by a newly appended intermediate edge.
func (en *Engine) ExecuteDelta(ctx context.Context, a *tbql.Analyzed, minEventID int64) (res *Result, stats Stats, err error) {
	defer guard(a, &err)
	// One snapshot pins the whole round: the view catch-up frontier, every
	// data query, and the join all read the same store generation.
	snap := en.Store.Snapshot()
	if HasVarLenPath(a) {
		return en.execute(ctx, a, snap, nil)
	}
	plan := en.planFor(a, snap)
	if en.viewCap() > 0 {
		res, stats, ok, err := en.executeDeltaViews(ctx, a, snap, plan, minEventID)
		if err != nil {
			return nil, stats, err
		}
		if ok {
			return res, stats, nil
		}
	}
	return en.executeDeltaRecompute(ctx, a, snap, minEventID)
}

// executeDeltaRecompute is the pre-view delta join: every pattern takes a
// turn as the delta pattern and the others re-run their full data
// queries, narrowed by the scheduler's binding feed.
func (en *Engine) executeDeltaRecompute(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, minEventID int64) (*Result, Stats, error) {
	combined := &Result{
		Set:           &relational.ResultSet{Columns: returnColumns(a)},
		MatchedEvents: map[int64]bool{},
	}
	var total Stats
	for i := range a.Query.Patterns {
		i := i
		res, stats, err := en.execute(ctx, a, snap, func(idx int) int64 {
			if idx == i {
				return minEventID
			}
			return 0
		})
		if err != nil {
			return nil, total, err
		}
		total.DataQueries += stats.DataQueries
		total.PatternRows += stats.PatternRows
		total.JoinBindings += stats.JoinBindings
		total.Rel.RowsScanned += stats.Rel.RowsScanned
		total.Rel.IndexLookups += stats.Rel.IndexLookups
		total.Rel.HashJoinBuilds += stats.Rel.HashJoinBuilds
		total.Graph.NodesVisited += stats.Graph.NodesVisited
		total.Graph.EdgesTraversed += stats.Graph.EdgesTraversed
		total.Graph.IndexLookups += stats.Graph.IndexLookups
		combined.Set.Rows = append(combined.Set.Rows, res.Set.Rows...)
		for ev := range res.MatchedEvents {
			combined.MatchedEvents[ev] = true
		}
	}
	if a.Query.Return.Distinct {
		combined.Set.Rows = relational.DedupRows(combined.Set.Rows)
	}
	return combined, total, nil
}

// deltaScratch is the reusable per-round state of a view-backed delta
// join: the per-pattern result slots, the binding-set map, the narrow
// scratch, and the per-pattern filter output buffers. Pooled on the
// engine so steady-state standing-query rounds allocate almost nothing.
type deltaScratch struct {
	results  []patternRows
	bindings map[string][]int64
	ids      []int64
	bufs     [][][5]int64
}

func (en *Engine) acquireDeltaScratch(n int) *deltaScratch {
	sc, _ := en.scratchPool.Get().(*deltaScratch)
	if sc == nil {
		sc = &deltaScratch{bindings: make(map[string][]int64)}
	}
	if cap(sc.results) < n {
		sc.results = make([]patternRows, n)
		sc.bufs = make([][][5]int64, n)
	}
	sc.results = sc.results[:n]
	sc.bufs = sc.bufs[:n]
	return sc
}

func (en *Engine) releaseDeltaScratch(sc *deltaScratch) {
	for i := range sc.results {
		sc.results[i] = patternRows{}
	}
	clear(sc.bindings)
	en.scratchPool.Put(sc)
}

// HasVarLenPath reports whether any pattern is a variable-length path —
// the ExecuteDelta full-evaluation fallback criterion, shared with the
// standing-query layer (which seeds its dedup set for exactly these
// queries).
func HasVarLenPath(a *tbql.Analyzed) bool {
	for _, p := range a.Query.Patterns {
		if p.Path != nil && (p.Path.MinLen != 1 || p.Path.MaxLen != 1) {
			return true
		}
	}
	return false
}

func countConjuncts(e relational.Expr) int {
	if bin, ok := e.(relational.BinOp); ok && bin.Op == "and" {
		return countConjuncts(bin.L) + countConjuncts(bin.R)
	}
	return 1
}

// narrow intersects the binding set of an entity with the IDs seen in a
// pattern's rows (column col). Sets are sorted unique slices: the new IDs
// are sorted and deduplicated in place, and an existing set shrinks via a
// linear merge-intersection — no per-pattern hash maps. scratch is the
// execution's reusable ID buffer: a first-time binding keeps the buffer
// (ownership transfers into the map), an intersection returns it for the
// next call.
func narrow(bindings map[string][]int64, entityID string, rows [][5]int64, col int, scratch *[]int64) {
	ids := (*scratch)[:0]
	if cap(ids) < len(rows) {
		ids = make([]int64, 0, len(rows))
	}
	for _, r := range rows {
		ids = append(ids, r[col])
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	ids = dedupSorted(ids)
	prev, ok := bindings[entityID]
	if !ok {
		bindings[entityID] = ids
		*scratch = nil
		return
	}
	bindings[entityID] = intersectSorted(prev, ids)
	*scratch = ids
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(ids []int64) []int64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// intersectSorted writes the intersection of two sorted unique slices into
// a's prefix.
func intersectSorted(a, b []int64) []int64 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func returnColumns(a *tbql.Analyzed) []string {
	cols := make([]string, len(a.ReturnItems))
	for i, item := range a.ReturnItems {
		cols[i] = item.EntityID + "." + item.Attr
	}
	return cols
}

// join combines per-pattern rows into complete bindings, enforcing shared
// entity identity, temporal relationships, attribute relationships, and
// global filters, then projects the return clause. The 2-pattern case
// hash-joins on the shared entity variables; larger conjunctions use the
// backtracking walk. Entity attributes resolve through the pinned snapshot
// when one is given (concurrent executions must not probe the live intern
// maps, which the writer mutates).
func (en *Engine) join(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, results []patternRows) (*Result, int, error) {
	attrOf := en.Store.EntityAttr
	if snap != nil {
		attrOf = snap.EntityAttr
	}
	return joinRows(ctx, a, attrOf, results)
}

// joinRows is join with the attribute resolver abstracted: the sharded
// coordinator joins merged pattern rows with its global snapshot's
// resolver through the same code path (see JoinPatternRows).
func joinRows(ctx context.Context, a *tbql.Analyzed, attrOf func(id int64, attr string) relational.Value, results []patternRows) (*Result, int, error) {
	q := a.Query
	rs := &relational.ResultSet{Columns: returnColumns(a)}
	matched := make(map[int64]bool)
	joined := 0

	// Amortized cancellation checkpoint for the join loops: the outer rows
	// of the backtracking walk and the hash-join probe loop poll every 256
	// iterations (a nil context makes it a nil compare).
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var tick uint32
	checkCancel := func() error {
		if done == nil {
			return nil
		}
		if tick++; tick&255 != 1 {
			return nil
		}
		select {
		case <-done:
			return ctx.Err()
		default:
			return nil
		}
	}

	// Join in ascending row-count order to keep intermediates small.
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return len(results[order[x]].rows) < len(results[order[y]].rows)
	})

	entityBind := make(map[string]int64)
	pattTimes := make(map[string][2]int64) // pattern ID -> start,end
	pattEvent := make(map[string]int64)    // pattern ID -> event row ID

	var resolveAttr func(c relational.ColRef) (relational.Value, error)
	resolveAttr = func(c relational.ColRef) (relational.Value, error) {
		id, ok := entityBind[c.Qualifier]
		if !ok {
			return relational.Null(), fmt.Errorf("engine: unbound entity %s", c.Qualifier)
		}
		return attrOf(id, c.Column), nil
	}

	checkRelations := func() (bool, error) {
		for _, rel := range q.Relations {
			switch rel.Kind {
			case tbql.RelAttr:
				v, err := relational.EvalExpr(rel.Attr, resolveAttr)
				if err != nil {
					return false, err
				}
				if !v.Truthy() {
					return false, nil
				}
			default:
				ta, okA := pattTimes[rel.A]
				tb, okB := pattTimes[rel.B]
				if !okA || !okB {
					return false, fmt.Errorf("engine: temporal relation on pattern without event times")
				}
				if !temporalHolds(rel, ta[0], tb[0]) {
					return false, nil
				}
			}
		}
		return true, nil
	}

	// emit runs on every complete binding: relation checks, event
	// collection, and return projection. Shared by the hash join and the
	// backtracking walk.
	emit := func() error {
		ok, err := checkRelations()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		joined++
		for _, ev := range pattEvent {
			matched[ev] = true
		}
		row := make([]relational.Value, len(a.ReturnItems))
		for i, item := range a.ReturnItems {
			row[i] = attrOf(entityBind[item.EntityID], item.Attr)
		}
		rs.Rows = append(rs.Rows, row)
		return nil
	}

	// bindRow binds one pattern's row, returning false when it conflicts
	// with existing bindings, plus an undo closure.
	bindRow := func(pr patternRows, r [5]int64) (bool, func()) {
		p := q.Patterns[pr.idx]
		sPrev, sBound := entityBind[p.Subject.ID]
		if sBound && sPrev != r[1] {
			return false, nil
		}
		oPrev, oBound := entityBind[p.Object.ID]
		if oBound && oPrev != r[2] {
			return false, nil
		}
		if !sBound {
			entityBind[p.Subject.ID] = r[1]
		}
		// Re-check the object binding: binding the subject may have bound
		// the same variable when subject and object share it.
		oPrev, oBound = entityBind[p.Object.ID]
		if oBound && oPrev != r[2] {
			if !sBound {
				delete(entityBind, p.Subject.ID)
			}
			return false, nil
		}
		if !oBound {
			entityBind[p.Object.ID] = r[2]
		}
		if pr.hasEvent {
			pattTimes[p.ID] = [2]int64{r[3], r[4]}
			pattEvent[p.ID] = r[0]
		}
		return true, func() {
			if pr.hasEvent {
				delete(pattTimes, p.ID)
				delete(pattEvent, p.ID)
			}
			if !oBound {
				delete(entityBind, p.Object.ID)
			}
			if !sBound {
				delete(entityBind, p.Subject.ID)
			}
		}
	}

	runJoin := func() error {
		if len(order) == 2 {
			if ok, err := hashJoin2(q, results, order, bindRow, emit, checkCancel); ok {
				return err
			}
		}
		var walk func(k int) error
		walk = func(k int) error {
			if k == len(order) {
				return emit()
			}
			pr := results[order[k]]
			for _, r := range pr.rows {
				if err := checkCancel(); err != nil {
					return err
				}
				ok, undo := bindRow(pr, r)
				if !ok {
					continue
				}
				if err := walk(k + 1); err != nil {
					undo()
					return err
				}
				undo()
			}
			return nil
		}
		return walk(0)
	}
	if err := runJoin(); err != nil {
		return nil, joined, err
	}

	if q.Return.Distinct {
		rs.Rows = relational.DedupRows(rs.Rows)
	}
	return &Result{Set: rs, MatchedEvents: matched}, joined, nil
}

// hashJoin2 joins exactly two patterns on their shared entity variables:
// the smaller side is indexed by its shared-variable values, the larger
// side probes. Returns ok=false (and does nothing) when the patterns
// share no entity variable — the cross-product walk handles that case.
func hashJoin2(q *tbql.Query, results []patternRows, order []int,
	bindRow func(patternRows, [5]int64) (bool, func()), emit func() error,
	checkCancel func() error) (bool, error) {

	small, large := results[order[0]], results[order[1]]
	ps, pl := q.Patterns[small.idx], q.Patterns[large.idx]

	// Shared entity variables, as (column in small row, column in large
	// row) pairs; row columns 1 and 2 hold subject and object IDs. Up to
	// four pairs arise when a pattern uses one variable as both subject
	// and object (self-loop) on each side.
	type colPair struct{ s, l int }
	var shared []colPair
	for _, sc := range []struct {
		id  string
		col int
	}{{ps.Subject.ID, 1}, {ps.Object.ID, 2}} {
		if sc.id == pl.Subject.ID {
			shared = append(shared, colPair{sc.col, 1})
		}
		if sc.id == pl.Object.ID {
			shared = append(shared, colPair{sc.col, 2})
		}
	}
	if len(shared) == 0 {
		return false, nil
	}

	type key [4]int64
	keyOfSmall := func(r [5]int64) key {
		var k key
		for i, cp := range shared {
			k[i] = r[cp.s]
		}
		return k
	}
	keyOfLarge := func(r [5]int64) key {
		var k key
		for i, cp := range shared {
			k[i] = r[cp.l]
		}
		return k
	}

	idx := make(map[key][][5]int64, len(small.rows))
	for _, r := range small.rows {
		k := keyOfSmall(r)
		idx[k] = append(idx[k], r)
	}
	for _, rl := range large.rows {
		if err := checkCancel(); err != nil {
			return true, err
		}
		for _, rsm := range idx[keyOfLarge(rl)] {
			okS, undoS := bindRow(small, rsm)
			if !okS {
				continue
			}
			okL, undoL := bindRow(large, rl)
			if !okL {
				undoS()
				continue
			}
			err := emit()
			undoL()
			undoS()
			if err != nil {
				return true, err
			}
		}
	}
	return true, nil
}

func temporalHolds(rel tbql.Relation, startA, startB int64) bool {
	switch rel.Kind {
	case tbql.RelBefore:
		if startA >= startB {
			return false
		}
		if rel.HasDur {
			d := startB - startA
			return d >= rel.LoDur.Microseconds() && d <= rel.HiDur.Microseconds()
		}
		return true
	case tbql.RelAfter:
		if startA <= startB {
			return false
		}
		if rel.HasDur {
			d := startA - startB
			return d >= rel.LoDur.Microseconds() && d <= rel.HiDur.Microseconds()
		}
		return true
	case tbql.RelWithin:
		d := startA - startB
		if d < 0 {
			d = -d
		}
		return d <= rel.HiDur.Microseconds()
	}
	return false
}

// ExecuteMonolithicSQL lowers the query into one giant statement and runs
// it on the relational backend (query type (b) in RQ4). The statement is
// lowered to an AST and compiled once per plan — no SQL text, no parser.
func (en *Engine) ExecuteMonolithicSQL(ctx context.Context, a *tbql.Analyzed) (rs *relational.ResultSet, stats Stats, err error) {
	defer guard(a, &err)
	pr, err := en.planFor(a, nil).monolithicSQL(en.Store, a)
	if err != nil {
		return nil, stats, err
	}
	rs, qs, err := pr.QueryCtx(ctx, nil)
	stats.DataQueries = 1
	stats.Rel = qs
	return rs, stats, err
}

// ExecuteMonolithicCypher lowers the query into one giant multi-MATCH
// graph query and runs it with the clause-at-a-time plan that production
// graph databases use for multi-MATCH statements (query type (d) in RQ4).
func (en *Engine) ExecuteMonolithicCypher(ctx context.Context, a *tbql.Analyzed) (rs *relational.ResultSet, stats Stats, err error) {
	defer guard(a, &err)
	q, err := en.planFor(a, nil).monolithicCypher(en.Store, a)
	if err != nil {
		return nil, stats, err
	}
	rs, gs, err := en.Store.Graph.ExecWithCtx(ctx, q, nil)
	stats.DataQueries = 1
	stats.Graph = gs
	return rs, stats, err
}

// MatchEventsPerPattern returns the union of event IDs matched by each
// pattern's data query evaluated independently. This is the paper's RQ2
// scoring semantics ("the system events found by the event patterns in the
// synthesized TBQL query"): an excessive pattern that matches nothing does
// not empty the other patterns' findings.
func (en *Engine) MatchEventsPerPattern(ctx context.Context, a *tbql.Analyzed) (matched map[int64]bool, err error) {
	defer guard(a, &err)
	matched = make(map[int64]bool)
	snap := en.Store.Snapshot()
	plan := en.planFor(a, snap)
	for idx := range a.Query.Patterns {
		pr, _, _, err := en.runPattern(ctx, a, plan, idx, extrasSpec{snap: snap})
		if err != nil {
			return nil, err
		}
		if !pr.hasEvent {
			continue
		}
		for _, r := range pr.rows {
			matched[r[0]] = true
		}
	}
	return matched, nil
}

// Hunt parses, analyzes, and executes TBQL source with the scheduled
// plan. The analyzed form is cached by source text, so a repeat hunt
// reuses the compiled query plan (IR and backend plan variants) instead of
// re-parsing anything. ctx cancels the execution cooperatively (see
// Execute); a nil context never cancels.
func (en *Engine) Hunt(ctx context.Context, src string) (*Result, Stats, error) {
	a, err := en.analyzedFor(src)
	if err != nil {
		return nil, Stats{}, err
	}
	return en.Execute(ctx, a)
}

// analyzedFor returns the cached parse+analyze result for src.
func (en *Engine) analyzedFor(src string) (*tbql.Analyzed, error) {
	en.huntMu.Lock()
	if a, ok := en.analyzed[src]; ok {
		en.huntMu.Unlock()
		return a, nil
	}
	en.huntMu.Unlock()

	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return nil, err
	}

	en.huntMu.Lock()
	if len(en.analyzed) >= maxCachedAnalyzed {
		en.analyzed = nil
	}
	if en.analyzed == nil {
		en.analyzed = make(map[string]*tbql.Analyzed)
	}
	en.analyzed[src] = a
	en.huntMu.Unlock()
	return a, nil
}
