package engine

import (
	"fmt"
	"reflect"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/segment"
)

// roundTripStore dumps s to segment bytes, decodes them, and opens a
// fresh store from the image — the full durability round trip minus the
// filesystem.
func roundTripStore(t testing.TB, s *Store) *Store {
	t.Helper()
	img := DumpImage(s, true)
	got, err := segment.DecodeSegment(segment.Encode(img))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	table := audit.RestoreTable(got.Entities)
	s2, err := OpenStore(got, got.EntityCols, got.Entities, table)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s2
}

// assertStoresEquivalent compares the externally observable state of two
// stores: the event log, the ID frontier, the time bounds, and the
// results of the data_leak hunt over every execution path.
func assertStoresEquivalent(t *testing.T, want, got *Store) {
	t.Helper()
	if !reflect.DeepEqual(want.Log.Events, got.Log.Events) {
		t.Fatalf("event logs differ: %d vs %d events", len(want.Log.Events), len(got.Log.Events))
	}
	if want.nextEventID != got.nextEventID {
		t.Fatalf("nextEventID %d vs %d", want.nextEventID, got.nextEventID)
	}
	if want.MinTime != got.MinTime || want.MaxTime != got.MaxTime {
		t.Fatalf("bounds [%d,%d] vs [%d,%d]", want.MinTime, want.MaxTime, got.MinTime, got.MaxTime)
	}
	if w, g := want.Log.Entities.Len(), got.Log.Entities.Len(); w != g {
		t.Fatalf("entity counts %d vs %d", w, g)
	}
	for id := int64(1); id <= int64(want.Log.Entities.Len()); id++ {
		w, g := want.Log.Entities.Lookup(id), got.Log.Entities.Lookup(id)
		if w.Key() != g.Key() {
			t.Fatalf("entity %d key %q vs %q", id, w.Key(), g.Key())
		}
	}
	a := analyzed(t, dataLeakTBQL)
	resW, _, err := (&Engine{Store: want}).Execute(nil, a)
	if err != nil {
		t.Fatalf("execute original: %v", err)
	}
	resG, _, err := (&Engine{Store: got}).Execute(nil, a)
	if err != nil {
		t.Fatalf("execute restored: %v", err)
	}
	if fmt.Sprintf("%v", resW.Set) != fmt.Sprintf("%v", resG.Set) {
		t.Fatalf("scheduled results differ:\n%v\nvs\n%v", resW.Set, resG.Set)
	}
	if !reflect.DeepEqual(resW.MatchedEvents, resG.MatchedEvents) {
		t.Fatalf("matched events differ")
	}
	rsW, _, err := (&Engine{Store: want}).ExecuteMonolithicCypher(nil, a)
	if err != nil {
		t.Fatalf("cypher original: %v", err)
	}
	rsG, _, err := (&Engine{Store: got}).ExecuteMonolithicCypher(nil, a)
	if err != nil {
		t.Fatalf("cypher restored: %v", err)
	}
	if fmt.Sprintf("%v", rsW) != fmt.Sprintf("%v", rsG) {
		t.Fatalf("graph-path results differ:\n%v\nvs\n%v", rsW, rsG)
	}
}

func TestOpenStoreRoundTrip(t *testing.T) {
	gen, err := cases.ByID("data_leak").Generate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewStore(gen.Log)
	if err != nil {
		t.Fatal(err)
	}
	s2 := roundTripStore(t, s1)
	assertStoresEquivalent(t, s1, s2)
}

// TestOpenStoreThenAppend verifies a restored store accepts live appends
// exactly like the original: adopted columns relocate instead of
// clobbering shared buffers, restored indexes and adjacency extend, and
// new entities intern through the lazily hydrated table.
func TestOpenStoreThenAppend(t *testing.T) {
	gen, err := cases.ByID("data_leak").Generate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewStore(gen.Log)
	if err != nil {
		t.Fatal(err)
	}
	s2 := roundTripStore(t, s1)

	appendSame := func(s *Store) {
		t.Helper()
		tbl := s.Log.Entities
		p := tbl.InternProcessOn("hostZ", 9999, "/bin/tar", "mallory", "users", "tar cf /tmp/x /etc/passwd")
		f := tbl.InternFileOn("hostZ", "/etc/passwd", "root", "root")
		base := s.MaxTime + 1000
		evs := []audit.Event{
			{SubjectID: p.ID, ObjectID: f.ID, Op: audit.OpRead, StartTime: base, EndTime: base + 5, DataAmount: 123},
			{SubjectID: p.ID, ObjectID: f.ID, Op: audit.OpWrite, StartTime: base + 10, EndTime: base + 11},
		}
		if err := s.AppendBatch([]*audit.Entity{p, f}, evs); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	appendSame(s1)
	appendSame(s2)
	assertStoresEquivalent(t, s1, s2)

	// And a second round trip after the append captures the appended state.
	s3 := roundTripStore(t, s2)
	assertStoresEquivalent(t, s1, s3)
}

// BenchmarkStoreOpenSegment measures the segment-restore path —
// checksum-validated decode plus arena adoption — which must beat
// BenchmarkStoreLoadEngine (reloading the same log through the insert
// paths) by a wide margin: that gap is what bounds recovery time.
func BenchmarkStoreOpenSegment(b *testing.B) {
	gen, err := cases.ByID("data_leak").Generate(1.0)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewStore(gen.Log)
	if err != nil {
		b.Fatal(err)
	}
	data := segment.Encode(DumpImage(s, true))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := segment.DecodeSegment(data)
		if err != nil {
			b.Fatal(err)
		}
		table := audit.RestoreTable(img.Entities)
		if _, err := OpenStore(img, img.EntityCols, img.Entities, table); err != nil {
			b.Fatal(err)
		}
	}
}
