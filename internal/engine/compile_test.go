package engine

import (
	"strings"
	"testing"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// tinyStore builds a minimal store for compilation tests.
func tinyStore(t testing.TB) *Store {
	t.Helper()
	log := audit.NewLog()
	p := log.Entities.Intern(audit.NewProcessEntity(1, "/bin/tar", "root", "root", ""))
	f := log.Entities.Intern(audit.NewFileEntity("/etc/passwd", "root", "root"))
	g := log.Entities.Intern(audit.NewFileEntity("/tmp/out", "root", "root"))
	log.Append(audit.Event{SubjectID: p.ID, ObjectID: f.ID, Op: audit.OpRead, StartTime: 1_000_000, EndTime: 1_000_001})
	log.Append(audit.Event{SubjectID: p.ID, ObjectID: g.ID, Op: audit.OpWrite, StartTime: 2_000_000, EndTime: 2_000_001})
	store, err := NewStore(log)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func parse(t testing.TB, src string) *tbql.Analyzed {
	t.Helper()
	q, err := tbql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCompilePatternSQLParsesAndRuns(t *testing.T) {
	store := tinyStore(t)
	a := parse(t, `proc p["%tar%"] read file f["%passwd%"] as e1 return distinct p`)
	sql := CompilePatternSQL(store, a, 0, nil)
	rs, err := store.Rel.Query(sql)
	if err != nil {
		t.Fatalf("compiled SQL must run: %v\n%s", err, sql)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d\n%s", rs.Len(), sql)
	}
}

func TestCompilePatternSQLAnchorSwap(t *testing.T) {
	store := tinyStore(t)
	// Object heavily filtered, subject unfiltered: anchor on the object.
	a := parse(t, `proc p read file f[name = "/etc/passwd" && user = "root"] as e1 return distinct p`)
	sql := CompilePatternSQL(store, a, 0, nil)
	if !strings.HasPrefix(sql[strings.Index(sql, "FROM"):], "FROM entities o") {
		t.Errorf("expected object-anchored FROM:\n%s", sql)
	}
	// Subject filtered: anchor on the subject.
	a = parse(t, `proc p["%tar%"] read file f as e1 return distinct p`)
	sql = CompilePatternSQL(store, a, 0, nil)
	if !strings.Contains(sql, "FROM entities s") {
		t.Errorf("expected subject-anchored FROM:\n%s", sql)
	}
}

func TestCompilePatternSQLWindow(t *testing.T) {
	store := tinyStore(t)
	a := parse(t, `proc p read file f as e1 from "1970-01-01 00:00:01" to "1970-01-01 00:00:01" return distinct f`)
	sql := CompilePatternSQL(store, a, 0, nil)
	if !strings.Contains(sql, "e.start_time >= 1000000") ||
		!strings.Contains(sql, "e.start_time <= 1000000") {
		t.Errorf("window bounds missing:\n%s", sql)
	}
	rs, err := store.Rel.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("window should admit only the read event: %d rows", rs.Len())
	}
}

func TestCompileMonolithicSQLValid(t *testing.T) {
	store := tinyStore(t)
	a := parse(t, `proc p["%tar%"] read file f["%passwd%"] as e1
proc p write file g["%/tmp/%"] as e2
with e1 before[0-5 sec] e2
return distinct p, f, g`)
	sql, err := CompileMonolithicSQL(store, a)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := store.Rel.Query(sql)
	if err != nil {
		t.Fatalf("monolithic SQL must run: %v\n%s", err, sql)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d\n%s", rs.Len(), sql)
	}
	// Declarative FROM order: all entity tables precede the event tables.
	fromPart := sql[strings.Index(sql, "FROM"):strings.Index(sql, "WHERE")]
	if strings.Index(fromPart, "events") < strings.Index(fromPart, "entities g") {
		t.Errorf("naive translation lists entities before events:\n%s", fromPart)
	}
}

func TestCompileMonolithicSQLRejectsVarLen(t *testing.T) {
	store := tinyStore(t)
	a := parse(t, `proc p ~>(1~3) file f return distinct p`)
	if _, err := CompileMonolithicSQL(store, a); err == nil {
		t.Fatal("variable-length paths cannot compile to SQL")
	}
}

func TestCompileMonolithicCypherValid(t *testing.T) {
	store := tinyStore(t)
	a := parse(t, `proc p["%tar%"] read file f["%passwd%"] as e1
proc p write file g["%/tmp/%"] as e2
with e1 before e2
return distinct p, f, g`)
	cy, err := CompileMonolithicCypher(store, a)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(cy, "MATCH") != 2 {
		t.Errorf("one MATCH per pattern expected:\n%s", cy)
	}
	q, err := graphdb.ParseQuery(cy)
	if err != nil {
		t.Fatalf("compiled Cypher must parse: %v\n%s", err, cy)
	}
	rs, _, err := store.Graph.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d\n%s", rs.Len(), cy)
	}
}

func TestCompilePatternCypherVarLenForms(t *testing.T) {
	store := tinyStore(t)
	cases := []struct {
		src  string
		want string
	}{
		{`proc p ~>(2~4)[read] file f return distinct p`, "-[*1..3]-"},
		{`proc p ->[write] file f return distinct p`, "-[e:write]->"},
		{`proc p ~> file f return distinct p`, "-[*1..]-"},
	}
	for _, c := range cases {
		a := parse(t, c.src)
		cy := CompilePatternCypher(store, a, 0, nil)
		if !strings.Contains(cy, c.want) {
			t.Errorf("%s\ncompiled %q, want fragment %q", c.src, cy, c.want)
		}
		if _, err := graphdb.ParseQuery(cy); err != nil {
			t.Errorf("%s: compiled Cypher must parse: %v\n%s", c.src, err, cy)
		}
	}
}

func TestTemporalSQLForms(t *testing.T) {
	a := parse(t, `proc p read file f as e1
proc p write file g as e2
with e1 before[1-5 sec] e2
return distinct p`)
	c, err := temporalSQL(a, a.Query.Relations[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"e1.start_time < e2.start_time", ">= 1000000", "<= 5000000"} {
		if !strings.Contains(c, frag) {
			t.Errorf("missing %q in %q", frag, c)
		}
	}
	// within
	a = parse(t, `proc p read file f as e1
proc p write file g as e2
with e1 within[0-2 sec] e2
return distinct p`)
	if _, err := temporalSQL(a, a.Query.Relations[0]); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWindowKinds(t *testing.T) {
	store := tinyStore(t)
	mk := func(kind tbql.WindowKind, from, to time.Time, dur time.Duration) (int64, int64) {
		return store.timeWindow(&tbql.Window{Kind: kind, From: from, To: to, Dur: dur})
	}
	epoch1 := time.Unix(1, 0).UTC()
	if lo, hi := mk(tbql.WindRange, epoch1, epoch1, 0); lo != 1_000_000 || hi != 1_000_000 {
		t.Errorf("range window = [%d,%d]", lo, hi)
	}
	if lo, _ := mk(tbql.WindAfter, epoch1, time.Time{}, 0); lo != 1_000_000 {
		t.Errorf("after window lo = %d", lo)
	}
	if _, hi := mk(tbql.WindBefore, time.Time{}, epoch1, 0); hi != 1_000_000 {
		t.Errorf("before window hi = %d", hi)
	}
	if lo, hi := mk(tbql.WindLast, time.Time{}, time.Time{}, time.Second); hi != store.MaxTime || lo != store.MaxTime-1_000_000 {
		t.Errorf("last window = [%d,%d]", lo, hi)
	}
}

func TestInListRendering(t *testing.T) {
	got := inList("s", []int64{3, 1, 2})
	if got != "s.id IN (3, 1, 2)" {
		t.Errorf("inList = %q", got)
	}
}

func TestRenderSQLExprOperators(t *testing.T) {
	e := relational.BinOp{Op: "or",
		L: relational.BinOp{Op: "like", L: relational.ColRef{Column: "name"}, R: relational.Lit{V: relational.Str("%x%")}},
		R: relational.InList{E: relational.ColRef{Column: "group"}, Vals: []relational.Expr{relational.Lit{V: relational.Str("root")}}, Negate: true},
	}
	got := renderSQLExpr(e, "t")
	for _, frag := range []string{"t.name LIKE '%x%'", "t.grp NOT IN ('root')", " OR "} {
		if !strings.Contains(got, frag) {
			t.Errorf("missing %q in %q", frag, got)
		}
	}
	// Cypher keeps "group" as a property name.
	cy := renderCypherExpr(e, "n")
	if !strings.Contains(cy, "n.group") {
		t.Errorf("cypher render = %q", cy)
	}
}
