package engine

import (
	"runtime"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/extract"
	"threatraptor/internal/relational"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

// TestExecutionPathEquivalence guards the storage/executor refactor: the
// scheduled plan, the unscheduled ablation, the monolithic SQL plan, and
// the parallel per-level plan must return identical result sets (compared
// as sorted rows) for the TBQL query synthesized from every generated
// case's report.
func TestExecutionPathEquivalence(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			gen, err := c.Generate(0.5)
			if err != nil {
				t.Fatal(err)
			}
			store, err := NewStore(gen.Log)
			if err != nil {
				t.Fatal(err)
			}
			graph := extract.New(extract.DefaultOptions()).Extract(c.Report).Graph
			q, _, err := synth.Synthesize(graph, synth.Options{})
			if err != nil {
				t.Fatal(err)
			}
			a, err := tbql.Analyze(q)
			if err != nil {
				t.Fatal(err)
			}

			sched := &Engine{Store: store}
			res, _, err := sched.Execute(nil, a)
			if err != nil {
				t.Fatalf("scheduled: %v", err)
			}
			want := res.Set.Strings()

			unsched := &Engine{Store: store, DisableScheduling: true}
			ures, _, err := unsched.Execute(nil, a)
			if err != nil {
				t.Fatalf("unscheduled: %v", err)
			}
			if !sameRows(want, ures.Set.Strings()) {
				t.Errorf("unscheduled differs:\n%v\n%v", want, ures.Set.Strings())
			}

			pres, _, err := sched.ExecuteParallel(nil, a)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !sameRows(want, pres.Set.Strings()) {
				t.Errorf("parallel differs:\n%v\n%v", want, pres.Set.Strings())
			}
			if len(pres.MatchedEvents) != len(res.MatchedEvents) {
				t.Errorf("parallel matched %d events, scheduled %d",
					len(pres.MatchedEvents), len(res.MatchedEvents))
			}

			mres, _, err := sched.ExecuteMonolithicSQL(nil, a)
			if err != nil {
				// Variable-length path patterns cannot compile to one SQL
				// statement; that is the documented monolithic limitation,
				// not an equivalence failure.
				t.Logf("monolithic SQL not applicable: %v", err)
				return
			}
			if !sameRows(want, mres.Strings()) {
				t.Errorf("monolithic SQL differs:\n%v\n%v", want, mres.Strings())
			}
		})
	}
}

// TestBatchSizeEquivalence sweeps the vectorized executor's batch size
// across degenerate (1), tiny, and whole-table settings — so the case
// tables land on 0, 1, exactly-one-batch, batch±1, and many-batch
// boundaries — and forces the sharded scan path, asserting every
// configuration returns exactly the default configuration's results on
// the scheduled, parallel, and monolithic SQL plans.
func TestBatchSizeEquivalence(t *testing.T) {
	origBS, origShard := relational.BatchSize, relational.ShardMinRows
	defer func() {
		relational.BatchSize = origBS
		relational.ShardMinRows = origShard
	}()
	// The forced-sharding configuration needs GOMAXPROCS > 1 to actually
	// take the sharded path; make that true on single-CPU machines too.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}

	store, _ := dataLeakStore(t, 400)
	a := analyzed(t, dataLeakTBQL)

	execAll := func(en *Engine) [][][]string {
		t.Helper()
		res, _, err := en.Execute(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		pres, _, err := en.ExecuteParallel(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		mres, _, err := en.ExecuteMonolithicSQL(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		return [][][]string{res.Set.Strings(), pres.Set.Strings(), mres.Strings()}
	}

	want := execAll(&Engine{Store: store})
	if len(want[0]) == 0 {
		t.Fatal("default execution returned no rows; boundary sweep would be vacuous")
	}
	configs := []struct {
		name     string
		batch    int
		shardMin int
	}{
		{"batch1", 1, 1 << 30},
		{"batch2", 2, 1 << 30},
		{"batch7", 7, 1 << 30},
		{"batch64", 64, 1 << 30},
		{"wholeTable", 1 << 20, 1 << 30},
		{"sharded", 64, 64},
	}
	for _, cfg := range configs {
		relational.BatchSize = cfg.batch
		relational.ShardMinRows = cfg.shardMin
		// Fresh engine: plans cache fine (batch size is read per
		// execution), but a fresh one also exercises re-planning.
		got := execAll(&Engine{Store: store})
		for path := range want {
			if !sameRows(want[path], got[path]) {
				t.Errorf("%s path %d differs from default:\n%v\n%v",
					cfg.name, path, want[path], got[path])
			}
		}
	}
}

// TestParallelFlagEquivalence exercises the Parallel engine flag on the
// hand-written data_leak hunt, including the multi-level dependency chain.
func TestParallelFlagEquivalence(t *testing.T) {
	store, _ := dataLeakStore(t, 400)
	serial := &Engine{Store: store}
	parallel := &Engine{Store: store, Parallel: true}
	a := analyzed(t, dataLeakTBQL)

	sres, _, err := serial.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	pres, pstats, err := parallel.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(sres.Set.Strings(), pres.Set.Strings()) {
		t.Fatalf("parallel flag changed results:\n%v\n%v",
			sres.Set.Strings(), pres.Set.Strings())
	}
	if pstats.DataQueries != 8 {
		t.Fatalf("parallel data queries = %d, want 8", pstats.DataQueries)
	}
}

// TestHashJoinSelfLoopPatterns regression-tests the 2-pattern hash join
// when both patterns use one variable as subject and object: up to four
// shared column pairs arise, which must not overflow the join key.
func TestHashJoinSelfLoopPatterns(t *testing.T) {
	sim := audit.NewSimulator(99, 1_700_000_000_000_000)
	parent := audit.Proc{PID: 100, Exe: "/bin/parent", User: "u", Group: "g"}
	child := audit.Proc{PID: 101, Exe: "/bin/child", User: "u", Group: "g"}
	sim.StartProcess(parent, child)
	sim.Advance(1_000_000)
	sim.EndProcess(child)
	parser := audit.NewParser()
	for _, r := range sim.Records() {
		if err := parser.Feed(&r); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewStore(parser.Log())
	if err != nil {
		t.Fatal(err)
	}
	en := &Engine{Store: store}
	src := `proc p start proc p as e1
proc p end proc p as e2
return distinct p`
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	// Both patterns force subject == object; only the self-referential
	// end event (subject == object == child) can satisfy its pattern, and
	// the start event never has subject == object, so no binding exists.
	if res.Set.Len() != 0 {
		t.Fatalf("self-loop conjunction should not match: %v", res.Set.Strings())
	}
}

// TestDependencyLevels checks the level grouping: chained patterns
// serialize, unrelated patterns coalesce into the same level.
func TestDependencyLevels(t *testing.T) {
	src := `proc p1["%a%"] read file f1 as evt1
proc p1 write file f2 as evt2
proc p9["%z%"] read file f9 as evt3
return distinct p1`
	a := analyzed(t, src)
	order := []int{0, 1, 2}
	levels := dependencyLevels(a.Query.Patterns, order)
	if len(levels) != 2 {
		t.Fatalf("levels = %v, want 2 levels", levels)
	}
	// Pattern 2 shares nothing with pattern 0, so it joins level 0;
	// pattern 1 shares p1 with pattern 0 and must wait.
	if len(levels[0]) != 2 || levels[0][0] != 0 || levels[0][1] != 2 {
		t.Errorf("level 0 = %v, want [0 2]", levels[0])
	}
	if len(levels[1]) != 1 || levels[1][0] != 1 {
		t.Errorf("level 1 = %v, want [1]", levels[1])
	}
}
