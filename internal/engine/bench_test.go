package engine

import (
	"testing"

	"threatraptor/internal/cases"
	"threatraptor/internal/tbql"
)

// benchStore loads the generated data_leak case at the given scale.
func benchStore(b *testing.B, scale float64) *Store {
	b.Helper()
	gen, err := cases.ByID("data_leak").Generate(scale)
	if err != nil {
		b.Fatal(err)
	}
	store, err := NewStore(gen.Log)
	if err != nil {
		b.Fatal(err)
	}
	return store
}

func benchAnalyzed(b *testing.B) *tbql.Analyzed {
	b.Helper()
	q, err := tbql.Parse(dataLeakTBQL)
	if err != nil {
		b.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkExecuteScheduled measures the scheduled TBQL hot path
// (Section III-F / RQ4) on the data_leak case at scale 1.0.
func BenchmarkExecuteScheduled(b *testing.B) {
	store := benchStore(b, 1.0)
	en := &Engine{Store: store}
	a := benchAnalyzed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := en.Execute(nil, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteParallel measures the per-level parallel path on the
// same workload.
func BenchmarkExecuteParallel(b *testing.B) {
	store := benchStore(b, 1.0)
	en := &Engine{Store: store, Parallel: true}
	a := benchAnalyzed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := en.Execute(nil, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteUnscheduled is the scheduling ablation on the same
// workload (declaration order, no constraint feeding).
func BenchmarkExecuteUnscheduled(b *testing.B) {
	store := benchStore(b, 1.0)
	en := &Engine{Store: store, DisableScheduling: true}
	a := benchAnalyzed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := en.Execute(nil, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreLoadEngine measures NewStore: batch-loading the reduced
// log into the columnar relational backend and the graph arena.
func BenchmarkStoreLoadEngine(b *testing.B) {
	gen, err := cases.ByID("data_leak").Generate(1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewStore(gen.Log); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures the compilation spine itself on the data_leak
// query: "cold" lowers the analyzed query to IR and compiles every
// pattern's single runtime-pruned physical plan from a cold engine; "hit"
// measures the steady-state cost of reaching the compiled plans through
// the caches (what every execution pays before running a single data
// query). One plan now serves every extras shape the scheduler produces,
// so cold compile work no longer scales with the shapes a workload
// touches (previously up to eight lazily-compiled variants per pattern).
func BenchmarkCompile(b *testing.B) {
	store := benchStore(b, 1.0)
	a := benchAnalyzed(b)
	compileAll := func(en *Engine) {
		plan := en.planFor(a, nil)
		for i := range plan.pats {
			if plan.pats[i].usesGraph {
				continue
			}
			if _, err := plan.pats[i].prepared(en.Store, plan.bounds); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			compileAll(&Engine{Store: store})
		}
	})
	b.Run("hit", func(b *testing.B) {
		en := &Engine{Store: store}
		compileAll(en)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			compileAll(en)
		}
	})
}
