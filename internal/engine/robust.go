package engine

// This file is the robustness layer around query execution: the typed
// internal error that panic boundaries produce, the cooperative
// cancellation helper, the admission-control semaphore for concurrent
// hunts, and the names of the engine's fault-injection points.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// Fault-injection point names (see internal/faultinject). Disarmed they
// cost one atomic load; the chaos tests arm them to fail chosen hits.
const (
	// FaultAppendEntitiesRel fires before entity rows insert into the
	// relational backend.
	FaultAppendEntitiesRel = "engine/append/entities-rel"
	// FaultAppendEntitiesGraph fires before entity nodes insert into the
	// graph backend (after the relational insert — a torn-append probe).
	FaultAppendEntitiesGraph = "engine/append/entities-graph"
	// FaultAppendEventsRel fires before event rows insert into the
	// relational backend.
	FaultAppendEventsRel = "engine/append/events-rel"
	// FaultAppendEventsGraph fires before event edges insert into the
	// graph backend.
	FaultAppendEventsGraph = "engine/append/events-graph"
	// FaultAppendLog fires before the batch appends to the store's log.
	FaultAppendLog = "engine/append/log"
	// FaultExecutePattern fires at the head of every pattern data query —
	// inside the parallel plan's worker goroutines when Parallel is set,
	// which is exactly where an unisolated panic would kill the process.
	FaultExecutePattern = "engine/execute/pattern"
)

// InternalError is a panic during query execution, caught at the engine's
// per-query recover boundary and converted into an error so one poisoned
// query cannot take down the session (or the process, when the panic
// happened on an executor worker goroutine).
type InternalError struct {
	// Query is the TBQL text (or pattern identifier) being executed.
	Query string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured at the recover site.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("engine: internal error executing %q: %v", e.Query, e.Panic)
}

// guard is the per-query panic boundary: deferred at every public
// execution entry point, it converts a panic into an *InternalError
// carrying the query text and stack, and re-types a relational shard
// worker's captured panic (which arrives as an ordinary error — goroutine
// panics cannot cross recover boundaries) the same way. The query text is
// only formatted on the failure path.
func guard(a *tbql.Analyzed, errp *error) {
	if r := recover(); r != nil {
		if ie, ok := r.(*InternalError); ok {
			*errp = ie
			return
		}
		*errp = &InternalError{Query: tbql.Format(a.Query), Panic: r, Stack: debug.Stack()}
		return
	}
	var pe *relational.PanicError
	if errors.As(*errp, &pe) {
		*errp = &InternalError{Query: tbql.Format(a.Query), Panic: pe.Value, Stack: pe.Stack}
	}
}

// ctxErr is the engine-level cancellation checkpoint (pattern and level
// boundaries); a nil context is never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// ErrOverloaded is the sentinel every admission rejection wraps;
// errors.Is(err, ErrOverloaded) identifies load shedding regardless of
// the limit or wait that produced it.
var ErrOverloaded = errors.New("engine: overloaded")

// OverloadedError is an admission-control rejection: the concurrent-hunt
// limit was reached and no slot freed within the queue timeout.
type OverloadedError struct {
	// Limit is the configured concurrent-hunt cap.
	Limit int
	// Waited is how long the hunt queued before giving up (zero when the
	// queue timeout is zero — immediate rejection).
	Waited time.Duration
}

func (e *OverloadedError) Error() string {
	if e.Waited > 0 {
		return fmt.Sprintf("engine: overloaded: %d hunts in flight, no slot freed in %v", e.Limit, e.Waited)
	}
	return fmt.Sprintf("engine: overloaded: %d hunts in flight", e.Limit)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// Admission is a bounded concurrent-hunt semaphore with a queue timeout:
// up to limit hunts run at once, later arrivals wait at most queueTimeout
// for a slot and are then shed with an *OverloadedError instead of piling
// up behind a slow hunt. A nil *Admission admits everything (no limit).
type Admission struct {
	slots   chan struct{}
	timeout time.Duration
	limit   int
}

// NewAdmission builds a semaphore admitting limit concurrent hunts; a
// queued hunt waits at most queueTimeout for a slot (zero: reject
// immediately when full). limit <= 0 returns nil — unlimited admission.
func NewAdmission(limit int, queueTimeout time.Duration) *Admission {
	if limit <= 0 {
		return nil
	}
	return &Admission{slots: make(chan struct{}, limit), timeout: queueTimeout, limit: limit}
}

// Acquire takes a hunt slot, waiting up to the queue timeout. It returns
// the release function the caller must defer, or an *OverloadedError
// (wrapping ErrOverloaded) when no slot frees in time, or ctx.Err() when
// the caller's context is cancelled first.
func (ad *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if ad == nil {
		return func() {}, nil
	}
	select {
	case ad.slots <- struct{}{}:
		return func() { <-ad.slots }, nil
	default:
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if ad.timeout <= 0 {
		return nil, &OverloadedError{Limit: ad.limit}
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	start := time.Now()
	t := time.NewTimer(ad.timeout)
	defer t.Stop()
	select {
	case ad.slots <- struct{}{}:
		return func() { <-ad.slots }, nil
	case <-t.C:
		return nil, &OverloadedError{Limit: ad.limit, Waited: time.Since(start)}
	case <-done:
		return nil, ctx.Err()
	}
}

// InFlight reports how many hunt slots are currently held (0 for nil).
func (ad *Admission) InFlight() int {
	if ad == nil {
		return 0
	}
	return len(ad.slots)
}
