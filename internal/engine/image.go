package engine

// Segment dump and restore. DumpImage flattens a store into the columnar
// segment image (internal/segment) and OpenStore rebuilds a store from a
// decoded image by adopting the columns directly: the relational tables
// take the decoded vectors without replaying appendRow, indexes rebuild
// with counting sort, and the graph installs its node/edge arenas and
// CSR adjacency verbatim. Node properties are not materialized at all —
// they resolve lazily through the restored entity slab — which is what
// makes opening a segment several times cheaper than reloading the log.

import (
	"fmt"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
	"threatraptor/internal/segment"
)

// DumpImage flattens the store's current state into a segment image.
// withEntities controls whether the entity table is included: the global
// store dumps it, shard partition stores share the global image's
// entities and dump only their routed events and adjacency. Writer-side
// only (it reads the live arenas and re-sorts dirty adjacency).
func DumpImage(s *Store, withEntities bool) *segment.Image {
	img := &segment.Image{
		NextEventID: s.nextEventID,
		MinTime:     s.MinTime,
		MaxTime:     s.MaxTime,
	}
	if withEntities {
		img.Entities = s.Log.Entities.Dense()
		img.EntityCols = segment.BuildEntityCols(img.Entities)
	}
	evs := s.Log.Events
	n := len(evs)
	slab := make([]int64, 7*n)
	e := &img.Events
	e.ID, e.Subject, e.Object = slab[0:n:n], slab[n:2*n:2*n], slab[2*n:3*n:3*n]
	e.Start, e.End = slab[3*n:4*n:4*n], slab[4*n:5*n:5*n]
	e.Amount, e.Failure = slab[5*n:6*n:6*n], slab[6*n:7*n:7*n]
	e.Op = make([]uint8, n)
	for i := range evs {
		ev := &evs[i]
		e.ID[i], e.Subject[i], e.Object[i] = ev.ID, ev.SubjectID, ev.ObjectID
		e.Start[i], e.End[i] = ev.StartTime, ev.EndTime
		e.Amount[i], e.Failure[i] = ev.DataAmount, int64(ev.FailureCode)
		e.Op[i] = uint8(ev.Op)
	}
	img.Adj.OutCounts, img.Adj.Out, img.Adj.InCounts, img.Adj.In = s.Graph.DumpAdjacency()
	img.Nodes = len(img.Adj.OutCounts)
	return img
}

// OpenStore rebuilds a store from a decoded segment image. cols and
// dense are the entity columns and the dense entity slab — the image's
// own for a global store, the global image's for a shard partition
// (partition images carry no entities but their graphs hold every
// entity as a node). table becomes the store's entity table and may be
// shared across sibling partition stores.
func OpenStore(img *segment.Image, cols *segment.EntityCols, dense []*audit.Entity, table *audit.EntityTable) (*Store, error) {
	nEnt := len(dense)
	if cols == nil || len(cols.Kind) != nEnt {
		return nil, fmt.Errorf("engine: open: entity columns cover %d entities, slab has %d", colsLen(cols), nEnt)
	}
	if img.Nodes != nEnt {
		return nil, fmt.Errorf("engine: open: image has %d graph nodes for %d entities", img.Nodes, nEnt)
	}
	s := &Store{Rel: relational.NewDB(), Graph: graphdb.NewGraph(), Log: &audit.Log{Entities: table}}
	entTbl, evTbl, err := newStoreTables(s.Rel)
	if err != nil {
		return nil, err
	}
	if err := restoreEntityTable(entTbl, cols, nEnt); err != nil {
		return nil, err
	}
	if err := restoreEventTable(evTbl, &img.Events); err != nil {
		return nil, err
	}
	if err := restoreGraph(s.Graph, img, cols, dense); err != nil {
		return nil, err
	}

	// The row-major event log backs reduction lookups and future dumps.
	ev := &img.Events
	rows := len(ev.ID)
	s.Log.Events = make([]audit.Event, rows)
	for i := range s.Log.Events {
		s.Log.Events[i] = audit.Event{
			ID: ev.ID[i], SubjectID: ev.Subject[i], ObjectID: ev.Object[i],
			Op: audit.OpType(ev.Op[i]), StartTime: ev.Start[i], EndTime: ev.End[i],
			DataAmount: ev.Amount[i], FailureCode: int(ev.Failure[i]),
		}
	}
	s.MinTime, s.MaxTime = img.MinTime, img.MaxTime
	s.nextEventID = img.NextEventID
	if s.nextEventID < 1 {
		s.nextEventID = 1
	}
	if rows > 0 {
		// One conservative op-bitmap entry for the whole restored prefix;
		// batch granularity resumes with the first live append.
		var mask uint32
		for _, op := range ev.Op {
			mask |= audit.OpType(op).Bit()
		}
		s.opBatches = append(s.opBatches, batchOps{startID: ev.ID[0], mask: mask})
	}
	s.publishSnapshot()
	return s, nil
}

func colsLen(c *segment.EntityCols) int {
	if c == nil {
		return 0
	}
	return len(c.Kind)
}

// restoreEntityTable adopts the decoded entity columns into the
// relational entities table. NULL bitmaps are derived from the kind
// column — entityRow fills a fixed attribute set per kind, so nullness
// is a function of the kind alone. The string/int vectors are adopted
// (shared with sibling stores is safe: adopted slices have cap == len,
// so the first append relocates), the bitmaps are freshly allocated per
// column because appends mutate them in place.
func restoreEntityTable(t *relational.Table, cols *segment.EntityCols, n int) error {
	words := (n + 63) / 64
	isFile := make([]uint64, words)
	isProc := make([]uint64, words)
	isNet := make([]uint64, words)
	for i, k := range cols.Kind {
		switch audit.EntityKind(k) {
		case audit.EntityFile:
			isFile[i>>6] |= 1 << (uint(i) & 63)
		case audit.EntityProcess:
			isProc[i>>6] |= 1 << (uint(i) & 63)
		case audit.EntityNetConn:
			isNet[i>>6] |= 1 << (uint(i) & 63)
		default:
			return fmt.Errorf("engine: restore: entity %d has invalid kind %d", i+1, k)
		}
	}
	union := func(a, b []uint64) []uint64 {
		out := make([]uint64, words)
		for i := range out {
			out[i] = a[i] | b[i]
		}
		return out
	}
	// nullBits returns a private copy of the bitmap, or nil when no bit is
	// set — matching appendRow, which only allocates a bitmap once a NULL
	// actually lands in the column.
	nullBits := func(bm []uint64) []uint64 {
		for _, w := range bm {
			if w != 0 {
				return append([]uint64(nil), bm...)
			}
		}
		return nil
	}
	notFile := union(isProc, isNet)
	notProc := union(isFile, isNet)
	notNet := union(isFile, isProc)

	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i) + 1
	}
	kindCodes := make([]int32, n)
	var kindDict []string
	var codeOf [256]int32
	for i := range codeOf {
		codeOf[i] = -1
	}
	for i, k := range cols.Kind {
		if codeOf[k] < 0 {
			codeOf[k] = int32(len(kindDict))
			kindDict = append(kindDict, audit.EntityKind(k).String())
		}
		kindCodes[i] = codeOf[k]
	}

	err := t.RestoreColumns(n, []relational.RestoredColumn{
		{Ints: ids},
		{Codes: kindCodes, Dict: kindDict},
		{Strs: cols.Name, Nulls: nullBits(notFile)},
		{Strs: cols.Path, Nulls: nullBits(notFile)},
		{Strs: cols.User, Nulls: nullBits(isNet)},
		{Strs: cols.Group, Nulls: nullBits(isNet)},
		{Ints: cols.PID, Nulls: nullBits(notProc)},
		{Strs: cols.Exe, Nulls: nullBits(notProc)},
		{Strs: cols.Cmd, Nulls: nullBits(notProc)},
		{Strs: cols.SrcIP, Nulls: nullBits(notNet)},
		{Ints: cols.SrcPort, Nulls: nullBits(notNet)},
		{Strs: cols.DstIP, Nulls: nullBits(notNet)},
		{Ints: cols.DstPort, Nulls: nullBits(notNet)},
		{Strs: cols.Protocol, Nulls: nullBits(notNet)},
		{Strs: cols.Host, Nulls: nullBits(isNet)},
	})
	if err != nil {
		return err
	}
	// Declare the same indexes NewStore builds, deferred: the writer
	// materializes them before its first post-restore append, keeping
	// their construction off the recovery critical path.
	if err := t.RestoreIndexLazy("id", int64(n)); err != nil {
		return err
	}
	for _, col := range []string{"name", "exename", "dstip"} {
		if err := t.RestoreIndexLazy(col, 0); err != nil {
			return err
		}
	}
	return nil
}

// restoreEventTable adopts the decoded event columns into the relational
// events table: seven int columns zero-copy, the op column re-coded
// against a first-seen dictionary (same construction order InsertBatch
// would have produced).
func restoreEventTable(t *relational.Table, ev *segment.EventCols) error {
	rows := len(ev.ID)
	opCodes := make([]int32, rows)
	var opDict []string
	var codeOf [256]int32
	for i := range codeOf {
		codeOf[i] = -1
	}
	for i, op := range ev.Op {
		if codeOf[op] < 0 {
			codeOf[op] = int32(len(opDict))
			opDict = append(opDict, audit.OpType(op).String())
		}
		opCodes[i] = codeOf[op]
	}
	err := t.RestoreColumns(rows, []relational.RestoredColumn{
		{Ints: ev.ID},
		{Ints: ev.Subject},
		{Ints: ev.Object},
		{Codes: opCodes, Dict: opDict},
		{Ints: ev.Start},
		{Ints: ev.End},
		{Ints: ev.Amount},
		{Ints: ev.Failure},
	})
	if err != nil {
		return err
	}
	maxEnt := int64(0)
	for _, s := range ev.Subject {
		if s > maxEnt {
			maxEnt = s
		}
	}
	for _, o := range ev.Object {
		if o > maxEnt {
			maxEnt = o
		}
	}
	if err := t.RestoreIndexLazy("subject_id", maxEnt); err != nil {
		return err
	}
	if err := t.RestoreIndexLazy("object_id", maxEnt); err != nil {
		return err
	}
	return t.RestoreIndexLazy("op", 0)
}

// restoreGraph installs the graph arenas: bag-less nodes whose
// properties resolve through the entity slab, the typed event-edge
// arena, and the dumped CSR adjacency. The three property indexes
// NewStore builds (Process/exename, File/name, NetConn/dstip) are
// declared lazily — the first probing hunt materializes them.
func restoreGraph(g *graphdb.Graph, img *segment.Image, cols *segment.EntityCols, dense []*audit.Entity) error {
	labels := make([]string, len(cols.Kind))
	for i, k := range cols.Kind {
		labels[i] = labelOf(audit.EntityKind(k))
	}
	propFn := func(id int64, key string) (graphdb.Value, bool) {
		return entityPropValue(dense[id-1], key)
	}
	if err := g.RestoreNodes(labels, propFn); err != nil {
		return err
	}
	ev := &img.Events
	types := make([]string, len(ev.Op))
	for i, op := range ev.Op {
		types[i] = audit.OpType(op).String()
	}
	if err := g.RestoreEventEdges(ev.ID, ev.Subject, ev.Object, ev.Start, ev.End, ev.Amount, types); err != nil {
		return err
	}
	if err := g.RestoreAdjacency(img.Adj.OutCounts, img.Adj.Out, img.Adj.InCounts, img.Adj.In); err != nil {
		return err
	}
	g.RestorePropIndexLazy(LabelProcess, "exename")
	g.RestorePropIndexLazy(LabelFile, "name")
	g.RestorePropIndexLazy(LabelNetConn, "dstip")
	return nil
}

// entityPropValue resolves a graph node property from the backing
// entity, mirroring the key set entityProps materializes per kind: a
// key entityProps would not have set returns ok == false.
func entityPropValue(e *audit.Entity, key string) (relational.Value, bool) {
	switch e.Kind {
	case audit.EntityFile:
		switch key {
		case "name":
			return relational.Str(e.File.Name), true
		case "path":
			return relational.Str(e.File.Path), true
		case "user":
			return relational.Str(e.File.User), true
		case "group":
			return relational.Str(e.File.Group), true
		case "host":
			return relational.Str(e.File.Host), true
		}
	case audit.EntityProcess:
		switch key {
		case "pid":
			return relational.Int(int64(e.Proc.PID)), true
		case "exename":
			return relational.Str(e.Proc.ExeName), true
		case "user":
			return relational.Str(e.Proc.User), true
		case "group":
			return relational.Str(e.Proc.Group), true
		case "cmd":
			return relational.Str(e.Proc.CMD), true
		case "host":
			return relational.Str(e.Proc.Host), true
		}
	case audit.EntityNetConn:
		switch key {
		case "srcip":
			return relational.Str(e.Net.SrcIP), true
		case "srcport":
			return relational.Int(int64(e.Net.SrcPort)), true
		case "dstip":
			return relational.Str(e.Net.DstIP), true
		case "dstport":
			return relational.Int(int64(e.Net.DstPort)), true
		case "protocol":
			return relational.Str(e.Net.Protocol), true
		}
	}
	return relational.Value{}, false
}
