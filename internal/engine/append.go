package engine

// This file is the live append path: sealed event batches and newly
// interned entities are appended into both storage backends in place.
// Hash indexes and the graph's adjacency stay correct incrementally —
// relational inserts feed existing indexes row by row, graph appends keep
// the time-sorted adjacency order when events arrive in order and mark
// only the touched neighborhoods dirty when they do not — so ingest cost
// is proportional to the batch, never to the store.

import (
	"fmt"
	"runtime/debug"

	"threatraptor/internal/audit"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
)

// StoreMark captures a store's append frontier: everything AppendBatch
// can move. A multi-store coordinator (internal/shard) marks every
// partition before a fanned-out append; when one partition's append
// fails, the partitions that already committed unwind with Rollback so
// the fleet stays a consistent prefix — the per-store analogue of
// AppendBatch's own internal rollback.
type StoreMark struct {
	entLen, evLen int
	gMark         graphdb.Mark
	logLen        int
	nextID        int64
	opLen         int
	minT, maxT    int64
	epoch         uint64
}

// Mark captures the store's current append frontier. Writer-side only.
func (s *Store) Mark() StoreMark {
	return StoreMark{
		entLen: s.Rel.Table("entities").Len(),
		evLen:  s.Rel.Table("events").Len(),
		gMark:  s.Graph.Mark(),
		logLen: len(s.Log.Events),
		nextID: s.nextEventID,
		opLen:  len(s.opBatches),
		minT:   s.MinTime,
		maxT:   s.MaxTime,
		epoch:  s.epoch,
	}
}

// Rollback rewinds the store to a previously captured mark — table rows,
// graph arenas, the event log tail, the ID sequence, the op-bitmap index,
// and the time bounds/epoch — then republishes the snapshot so readers
// see the rewound generation. Writer-side only; the mark must be from
// this store with no intervening rollback past it.
func (s *Store) Rollback(m StoreMark) {
	s.opBatches = s.opBatches[:m.opLen]
	s.Log.Events = s.Log.Events[:m.logLen]
	s.Graph.Rollback(m.gMark)
	s.Rel.Table("events").TruncateRows(m.evLen)
	s.Rel.Table("entities").TruncateRows(m.entLen)
	s.nextEventID = m.nextID
	s.MinTime, s.MaxTime, s.epoch = m.minT, m.maxT, m.epoch
	s.publishSnapshot()
}

// AppendBatch appends newly interned entities and sealed (immutable)
// events to the relational backend, the graph backend, and the store's
// log. Events must carry 0 IDs or their final IDs; 0 IDs are assigned from
// the store's dense sequence. Entities must not already be stored (the
// caller tracks novelty, e.g. with audit.EntityTable.Since), and events
// may only reference stored or batch-new entities.
//
// AppendBatch is atomic: it either applies the whole batch or leaves the
// store exactly as it was. Contract violations are caught by an up-front
// validation pass before anything mutates; a failure (or panic) past that
// point rolls both backends back to their pre-append marks — table rows
// and index tails truncate, graph arenas and adjacency tails pop, and the
// event-ID sequence rewinds so a retried batch derives the same IDs. Time
// bounds and their epoch publish last, only on success. A panic mid-append
// resurfaces as a typed *InternalError after the rollback.
//
// AppendBatch is not safe to run concurrently with queries; the stream
// session serializes writers against readers.
func (s *Store) AppendBatch(entities []*audit.Entity, events []audit.Event) (err error) {
	entTbl := s.Rel.Table("entities")
	evTbl := s.Rel.Table("events")
	if entTbl == nil || evTbl == nil {
		return fmt.Errorf("engine: store tables missing")
	}

	// Validate the whole batch before touching either backend.
	batchNew := make(map[int64]bool, len(entities))
	for _, e := range entities {
		if s.Graph.Node(e.ID) != nil {
			return fmt.Errorf("engine: append: entity %d already stored", e.ID)
		}
		batchNew[e.ID] = true
	}
	for i := range events {
		ev := &events[i]
		for _, id := range [2]int64{ev.SubjectID, ev.ObjectID} {
			if !batchNew[id] && s.Graph.Node(id) == nil {
				return fmt.Errorf("engine: append: event references unknown entity %d", id)
			}
		}
	}

	// Pre-append marks: everything below must be unwound on failure.
	entMark := entTbl.Len()
	evMark := evTbl.Len()
	gMark := s.Graph.Mark()
	logMark := len(s.Log.Events)
	idMark := s.nextEventID
	opMark := len(s.opBatches)
	defer func() {
		r := recover()
		if r == nil && err == nil {
			return
		}
		// Roll back in reverse append order so every unwind pops tails.
		s.opBatches = s.opBatches[:opMark]
		s.Log.Events = s.Log.Events[:logMark]
		s.Graph.Rollback(gMark)
		evTbl.TruncateRows(evMark)
		entTbl.TruncateRows(entMark)
		s.nextEventID = idMark
		// IDs assigned into the caller's events this attempt stay: the
		// rewound sequence re-derives the same IDs on retry.
		if r != nil {
			err = &InternalError{Query: "append batch", Panic: r, Stack: debug.Stack()}
		}
	}()

	if len(entities) > 0 {
		if err := faultinject.Hit(FaultAppendEntitiesRel); err != nil {
			return err
		}
		w := len(entTbl.Schema)
		rows := make([][]relational.Value, len(entities))
		slab := make([]relational.Value, len(entities)*w)
		for i, e := range entities {
			rows[i] = entityRow(e, slab[i*w:(i+1)*w:(i+1)*w])
		}
		if err := entTbl.InsertBatch(rows); err != nil {
			return err
		}
		if err := faultinject.Hit(FaultAppendEntitiesGraph); err != nil {
			return err
		}
		s.Graph.ReserveNodes(len(entities))
		for _, e := range entities {
			s.Graph.AddNodeWithID(e.ID, labelOf(e.Kind), entityProps(e))
		}
	}

	if len(events) == 0 {
		s.publishSnapshot()
		return nil
	}
	// Time bounds (and their epoch) move only after both backends accept
	// the batch, so cached window-sensitive plans can never observe moved
	// bounds without an invalidating epoch bump.
	newMin, newMax := s.MinTime, s.MaxTime
	w := len(evTbl.Schema)
	rows := make([][]relational.Value, len(events))
	slab := make([]relational.Value, len(events)*w)
	var opMask uint32
	for i := range events {
		ev := &events[i]
		opMask |= ev.Op.Bit()
		if ev.ID == 0 {
			ev.ID = s.nextEventID
			s.nextEventID++
		} else if ev.ID >= s.nextEventID {
			s.nextEventID = ev.ID + 1
		}
		row := slab[i*w : (i+1)*w : (i+1)*w]
		row[0] = relational.Int(ev.ID)
		row[1] = relational.Int(ev.SubjectID)
		row[2] = relational.Int(ev.ObjectID)
		row[3] = relational.Str(ev.Op.String())
		row[4] = relational.Int(ev.StartTime)
		row[5] = relational.Int(ev.EndTime)
		row[6] = relational.Int(ev.DataAmount)
		row[7] = relational.Int(int64(ev.FailureCode))
		rows[i] = row
		if newMin == 0 || ev.StartTime < newMin {
			newMin = ev.StartTime
		}
		if ev.EndTime > newMax {
			newMax = ev.EndTime
		}
	}
	if err := faultinject.Hit(FaultAppendEventsRel); err != nil {
		return err
	}
	if err := evTbl.InsertBatch(rows); err != nil {
		return err
	}
	if err := faultinject.Hit(FaultAppendEventsGraph); err != nil {
		return err
	}
	s.Graph.ReserveEdges(len(events))
	for i := range events {
		ev := &events[i]
		// Event edges use the columnar attribute fields — no per-edge
		// property map is allocated on the ingest path.
		if _, err := s.Graph.AddEventEdge(ev.SubjectID, ev.ObjectID, ev.Op.String(),
			ev.ID, ev.StartTime, ev.EndTime, ev.DataAmount); err != nil {
			return fmt.Errorf("engine: append event %d: %w", ev.ID, err)
		}
	}
	if err := faultinject.Hit(FaultAppendLog); err != nil {
		return err
	}
	s.Log.Events = append(s.Log.Events, events...)
	s.opBatches = append(s.opBatches, batchOps{startID: events[0].ID, mask: opMask})
	if newMin != s.MinTime || newMax != s.MaxTime {
		s.MinTime, s.MaxTime = newMin, newMax
		s.epoch++
	}
	// Publish the new snapshot last: a batch becomes visible to concurrent
	// readers all at once, or (on any failure above) not at all — readers
	// keep the previous snapshot, which the rollback left fully intact.
	s.publishSnapshot()
	return nil
}
