// Package engine implements ThreatRaptor's TBQL query execution
// (Section III-F): system audit logging data is stored in both a
// relational backend (PostgreSQL stand-in) and a graph backend (Neo4j
// stand-in); TBQL patterns compile into small data queries through the
// shared logical-plan IR (internal/qir), each lowered to the owning
// backend's plan form with parameter slots; and a scheduler orders those
// data queries by estimated pruning power and semantic dependencies,
// feeding each query's results into the next as bound parameters.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
)

// Store holds one audit log replicated across the two database backends
// (Section III-B: data is replicated to support different query types and
// improve availability).
type Store struct {
	Rel   *relational.DB
	Graph *graphdb.Graph
	Log   *audit.Log
	// MinTime/MaxTime bound the stored events (µs), used to resolve
	// "last N unit" windows.
	MinTime int64
	MaxTime int64
	// epoch increments whenever AppendBatch moves the time bounds, so
	// cached query plans that baked the bounds into a window condition
	// (LAST/BEFORE/AFTER) know to recompile. Plain writes: appends and
	// queries are externally synchronized (the stream session's lock).
	epoch uint64
	// nextEventID is the ID the next appended event will take; appended
	// logs keep the dense 1..n space NewStore-built logs have.
	nextEventID int64
	// opBatches is the per-batch op-code bitmap index: one entry per
	// sealed batch (plus one for the initial load), recording the batch's
	// first event ID and the OR of its events' op bits. Append-only in
	// batch order; a failed batch truncates its entry before anything is
	// published, so snapshots capture a consistent prefix.
	opBatches []batchOps
	// snap is the latest published snapshot (see snapshot.go): written by
	// the single writer at every sealed-batch boundary, pinned by readers.
	snap atomic.Pointer[Snapshot]
}

// BoundsEpoch identifies the current MinTime/MaxTime generation.
func (s *Store) BoundsEpoch() uint64 { return s.epoch }

// NextEventID returns the ID the next appended event will be assigned —
// the delta floor standing queries evaluate against after an append.
func (s *Store) NextEventID() int64 { return s.nextEventID }

// Labels used in the graph backend.
const (
	LabelProcess = "Process"
	LabelFile    = "File"
	LabelNetConn = "NetConn"
)

func labelOf(k audit.EntityKind) string {
	switch k {
	case audit.EntityProcess:
		return LabelProcess
	case audit.EntityFile:
		return LabelFile
	case audit.EntityNetConn:
		return LabelNetConn
	}
	return "Unknown"
}

// newStoreTables creates the two relational tables every store carries,
// with their dictionary-encoded discriminator columns. Shared by the
// batch-load path (NewStore) and the segment-restore path (OpenStore) so
// the schemas can never drift apart.
func newStoreTables(db *relational.DB) (entities, events *relational.Table, err error) {
	entities, err = db.CreateTable("entities", relational.Schema{
		{Name: "id", Kind: relational.KindInt},
		{Name: "kind", Kind: relational.KindString},
		{Name: "name", Kind: relational.KindString},
		{Name: "path", Kind: relational.KindString},
		{Name: "user", Kind: relational.KindString},
		{Name: "grp", Kind: relational.KindString},
		{Name: "pid", Kind: relational.KindInt},
		{Name: "exename", Kind: relational.KindString},
		{Name: "cmd", Kind: relational.KindString},
		{Name: "srcip", Kind: relational.KindString},
		{Name: "srcport", Kind: relational.KindInt},
		{Name: "dstip", Kind: relational.KindString},
		{Name: "dstport", Kind: relational.KindInt},
		{Name: "protocol", Kind: relational.KindString},
		{Name: "host", Kind: relational.KindString},
	})
	if err != nil {
		return nil, nil, err
	}
	// The kind discriminator appears in every data query's WHERE; with at
	// most four distinct values it dictionary-encodes to int compares.
	if err = entities.DictEncode("kind"); err != nil {
		return nil, nil, err
	}
	events, err = db.CreateTable("events", relational.Schema{
		{Name: "id", Kind: relational.KindInt},
		{Name: "subject_id", Kind: relational.KindInt},
		{Name: "object_id", Kind: relational.KindInt},
		{Name: "op", Kind: relational.KindString},
		{Name: "start_time", Kind: relational.KindInt},
		{Name: "end_time", Kind: relational.KindInt},
		{Name: "amount", Kind: relational.KindInt},
		{Name: "failure_code", Kind: relational.KindInt},
	})
	if err != nil {
		return nil, nil, err
	}
	// Nine operation verbs at most: op scans compare codes, not strings.
	if err = events.DictEncode("op"); err != nil {
		return nil, nil, err
	}
	return entities, events, nil
}

// NewStore loads a parsed audit log into fresh relational and graph
// backends, creating indexes on the key attributes (file name, process
// executable name, destination IP) in both.
func NewStore(log *audit.Log) (*Store, error) {
	s := &Store{Rel: relational.NewDB(), Graph: graphdb.NewGraph(), Log: log}

	entities, events, err := newStoreTables(s.Rel)
	if err != nil {
		return nil, err
	}

	// Batch-load both backends with capacity preallocated from the log
	// sizes: column vectors, the graph arenas, and adjacency never grow
	// incrementally during the load. The three load streams are
	// independent and run concurrently: relational entities, relational
	// events (plus the time bounds), and the graph (nodes must precede
	// edges, so the graph keeps its own serial goroutine). Each stream
	// also builds its own indexes; the two relational index builders only
	// share the plan-cache mutex.
	all := log.Entities.All()
	var errEntities, errEvents, errGraph error
	var wg sync.WaitGroup
	wg.Add(3)

	go func() {
		defer wg.Done()
		// One slab backs every row: InsertBatch copies values into the
		// column vectors, so the rows are transient and need not be
		// individually allocated.
		entityRows := make([][]relational.Value, len(all))
		slab := make([]relational.Value, len(all)*len(entities.Schema))
		w := len(entities.Schema)
		for i, e := range all {
			entityRows[i] = entityRow(e, slab[i*w:(i+1)*w:(i+1)*w])
		}
		if errEntities = entities.InsertBatch(entityRows); errEntities != nil {
			return
		}
		for _, col := range []string{"id", "name", "exename", "dstip"} {
			if errEntities = entities.CreateIndex(col); errEntities != nil {
				return
			}
		}
	}()

	go func() {
		defer wg.Done()
		eventRows := make([][]relational.Value, len(log.Events))
		slab := make([]relational.Value, len(log.Events)*len(events.Schema))
		w := len(events.Schema)
		for i := range log.Events {
			ev := &log.Events[i]
			row := slab[i*w : (i+1)*w : (i+1)*w]
			row[0] = relational.Int(ev.ID)
			row[1] = relational.Int(ev.SubjectID)
			row[2] = relational.Int(ev.ObjectID)
			row[3] = relational.Str(ev.Op.String())
			row[4] = relational.Int(ev.StartTime)
			row[5] = relational.Int(ev.EndTime)
			row[6] = relational.Int(ev.DataAmount)
			row[7] = relational.Int(int64(ev.FailureCode))
			eventRows[i] = row
			if s.MinTime == 0 || ev.StartTime < s.MinTime {
				s.MinTime = ev.StartTime
			}
			if ev.EndTime > s.MaxTime {
				s.MaxTime = ev.EndTime
			}
		}
		if errEvents = events.InsertBatch(eventRows); errEvents != nil {
			return
		}
		for _, col := range []string{"subject_id", "object_id", "op"} {
			if errEvents = events.CreateIndex(col); errEvents != nil {
				return
			}
		}
	}()

	go func() {
		defer wg.Done()
		s.Graph.ReserveNodes(len(all))
		s.Graph.ReserveEdges(len(log.Events))
		for _, e := range all {
			s.Graph.AddNodeWithID(e.ID, labelOf(e.Kind), entityProps(e))
		}
		for i := range log.Events {
			ev := &log.Events[i]
			if _, err := s.Graph.AddEventEdge(ev.SubjectID, ev.ObjectID, ev.Op.String(),
				ev.ID, ev.StartTime, ev.EndTime, ev.DataAmount); err != nil {
				errGraph = fmt.Errorf("engine: event %d: %w", ev.ID, err)
				return
			}
		}
		s.Graph.CreateIndex(LabelProcess, "exename")
		s.Graph.CreateIndex(LabelFile, "name")
		s.Graph.CreateIndex(LabelNetConn, "dstip")
	}()

	wg.Wait()
	for _, err := range []error{errEntities, errEvents, errGraph} {
		if err != nil {
			return nil, err
		}
	}
	// Loaded logs usually carry the dense 1..n ID space, but a sharded
	// store's partitions load ID-ordered sub-logs with gaps; the next ID
	// and the op-bitmap batch anchor follow the actual IDs, not the count.
	s.nextEventID = 1
	if n := len(log.Events); n > 0 {
		s.nextEventID = log.Events[n-1].ID + 1
		var mask uint32
		for i := range log.Events {
			mask |= log.Events[i].Op.Bit()
		}
		s.opBatches = append(s.opBatches, batchOps{startID: log.Events[0].ID, mask: mask})
	}
	s.publishSnapshot()
	return s, nil
}

// entityRow fills row (of entities-schema width) for one entity.
func entityRow(e *audit.Entity, row []relational.Value) []relational.Value {
	for i := range row {
		row[i] = relational.Null()
	}
	row[0] = relational.Int(e.ID)
	row[1] = relational.Str(e.Kind.String())
	switch e.Kind {
	case audit.EntityFile:
		row[2] = relational.Str(e.File.Name)
		row[3] = relational.Str(e.File.Path)
		row[4] = relational.Str(e.File.User)
		row[5] = relational.Str(e.File.Group)
		row[14] = relational.Str(e.File.Host)
	case audit.EntityProcess:
		row[6] = relational.Int(int64(e.Proc.PID))
		row[7] = relational.Str(e.Proc.ExeName)
		row[4] = relational.Str(e.Proc.User)
		row[5] = relational.Str(e.Proc.Group)
		row[8] = relational.Str(e.Proc.CMD)
		row[14] = relational.Str(e.Proc.Host)
	case audit.EntityNetConn:
		row[9] = relational.Str(e.Net.SrcIP)
		row[10] = relational.Int(int64(e.Net.SrcPort))
		row[11] = relational.Str(e.Net.DstIP)
		row[12] = relational.Int(int64(e.Net.DstPort))
		row[13] = relational.Str(e.Net.Protocol)
	}
	return row
}

func entityProps(e *audit.Entity) graphdb.Props {
	p := graphdb.Props{}
	switch e.Kind {
	case audit.EntityFile:
		p["name"] = relational.Str(e.File.Name)
		p["path"] = relational.Str(e.File.Path)
		p["user"] = relational.Str(e.File.User)
		p["group"] = relational.Str(e.File.Group)
		p["host"] = relational.Str(e.File.Host)
	case audit.EntityProcess:
		p["pid"] = relational.Int(int64(e.Proc.PID))
		p["exename"] = relational.Str(e.Proc.ExeName)
		p["user"] = relational.Str(e.Proc.User)
		p["group"] = relational.Str(e.Proc.Group)
		p["cmd"] = relational.Str(e.Proc.CMD)
		p["host"] = relational.Str(e.Proc.Host)
	case audit.EntityNetConn:
		p["srcip"] = relational.Str(e.Net.SrcIP)
		p["srcport"] = relational.Int(int64(e.Net.SrcPort))
		p["dstip"] = relational.Str(e.Net.DstIP)
		p["dstport"] = relational.Int(int64(e.Net.DstPort))
		p["protocol"] = relational.Str(e.Net.Protocol)
	}
	return p
}

// EntityAttr returns the attribute value of a stored entity as a typed
// value (used for return projection and attribute relations). It reads the
// live intern maps, so it is writer-synchronized only; concurrent readers
// use Snapshot.EntityAttr.
func (s *Store) EntityAttr(id int64, attr string) relational.Value {
	e := s.Log.Entities.Lookup(id)
	if e == nil {
		return relational.Null()
	}
	return entityAttrValue(e, attr)
}

// entityAttrValue types an entity attribute: the numeric attributes stay
// ints, everything else is the string form, unknown attributes are NULL.
func entityAttrValue(e *audit.Entity, attr string) relational.Value {
	if attr == "pid" && e.Kind == audit.EntityProcess {
		return relational.Int(int64(e.Proc.PID))
	}
	if (attr == "srcport" || attr == "dstport") && e.Kind == audit.EntityNetConn {
		if attr == "srcport" {
			return relational.Int(int64(e.Net.SrcPort))
		}
		return relational.Int(int64(e.Net.DstPort))
	}
	v, ok := e.Attr(attr)
	if !ok {
		return relational.Null()
	}
	return relational.Str(v)
}
