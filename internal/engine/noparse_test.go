package engine

import (
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/graphdb"
	"threatraptor/internal/relational"
)

// TestExecutePathsInvokeNoParser pins the logical-plan IR refactor's core
// invariant: no relational or graph query parser runs on any Execute*
// path. Every pattern lowers to a backend plan AST; binding sets and delta
// floors bind as parameters. The text generators exist only behind
// EXPLAIN.
func TestExecutePathsInvokeNoParser(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	a := analyzed(t, dataLeakTBQL)
	aPath := analyzed(t, `proc p["%/bin/tar%"] ~>(1~3) file f["%upload%"] return distinct p, f`)

	en := &Engine{Store: store}
	enPar := &Engine{Store: store, Parallel: true}
	enUnsched := &Engine{Store: store, DisableScheduling: true}

	rel0, gr0 := relational.ParseCalls(), graphdb.ParseCalls()

	for _, run := range []func() error{
		func() error { _, _, err := en.Execute(nil, a); return err },
		func() error { _, _, err := en.ExecuteParallel(nil, a); return err },
		func() error { _, _, err := enPar.Execute(nil, a); return err },
		func() error { _, _, err := enUnsched.Execute(nil, a); return err },
		func() error { _, _, err := en.ExecuteDelta(nil, a, 1); return err },
		func() error { _, _, err := en.ExecuteMonolithicSQL(nil, a); return err },
		func() error { _, _, err := en.ExecuteMonolithicCypher(nil, a); return err },
		func() error { _, _, err := en.Execute(nil, aPath); return err },
		func() error { _, _, err := en.ExecuteDelta(nil, aPath, 1); return err },
		func() error { _, err := en.MatchEventsPerPattern(nil, a); return err },
		func() error { _, _, err := en.Hunt(nil, dataLeakTBQL); return err },
	} {
		if err := run(); err != nil {
			t.Fatal(err)
		}
	}

	if got := relational.ParseCalls(); got != rel0 {
		t.Errorf("execution invoked the SQL parser %d times", got-rel0)
	}
	if got := graphdb.ParseCalls(); got != gr0 {
		t.Errorf("execution invoked the Cypher parser %d times", got-gr0)
	}

	// The EXPLAIN path is the one place text still renders; it must not
	// have been exercised by the executions above, and exercising it now
	// must not require the executor (text renders parse nothing either —
	// parsing only happens if a caller feeds the text back to a backend).
	if _, err := en.Explain(a); err != nil {
		t.Fatal(err)
	}
}

// TestGraphEdgeIDsMatchEventIDs pins the invariant the standing-query
// delta floor relies on in the graph backend: every stored event's graph
// edge element ID equals its audit event ID, for batch-built and
// append-built stores alike. If ingest ever skips, reorders, or merges an
// event ID (or inserts a non-event edge), the graphdb MinEdgeID floor
// would silently misfilter — this test turns that into a loud failure.
func TestGraphEdgeIDsMatchEventIDs(t *testing.T) {
	check := func(name string, s *Store) {
		t.Helper()
		if n, m := s.Graph.NumEdges(), len(s.Log.Events); n != m {
			t.Fatalf("%s: %d edges, %d events", name, n, m)
		}
		for i := range s.Log.Events {
			ev := &s.Log.Events[i]
			e := s.Graph.Edge(ev.ID)
			if e == nil {
				t.Fatalf("%s: event %d has no edge with that element ID", name, ev.ID)
			}
			if id, ok := e.Prop("id"); !ok || id.I != ev.ID {
				t.Fatalf("%s: edge %d carries event id %v", name, ev.ID, id)
			}
			if e.From != ev.SubjectID || e.To != ev.ObjectID {
				t.Fatalf("%s: edge %d endpoints (%d,%d) != event (%d,%d)",
					name, ev.ID, e.From, e.To, ev.SubjectID, ev.ObjectID)
			}
		}
	}
	full, _ := dataLeakStore(t, 200)
	check("batch", full)

	half := len(full.Log.Events) / 2
	liveLog := &audit.Log{Entities: full.Log.Entities,
		Events: append([]audit.Event(nil), full.Log.Events[:half]...)}
	live, err := NewStore(liveLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.AppendBatch(nil, append([]audit.Event(nil), full.Log.Events[half:]...)); err != nil {
		t.Fatal(err)
	}
	check("append", live)
}
