package engine

// This file is the incremental materialized-view layer behind standing
// queries: every compiled pattern keeps a cached set of its match rows
// inside the engine plan cache, maintained incrementally as the store
// grows. Stores are append-only, so a view only ever receives insert
// deltas: new rows are found by running the pattern's events-anchored
// catch-up plan with an "e.id >= frontier" floor (O(new events) thanks to
// the relational scan-floor and the graph edge-suffix fast path) and
// merged into the cached set. ExecuteDelta then joins a delta pattern's
// fresh rows against the other patterns' materialized sets — read through
// sorted-ID binding intersection — instead of re-running their data
// queries, which makes a standing-query round O(delta) end to end.
//
// Window-insensitive views migrate across a bounds-epoch recompile
// untouched. Window-sensitive patterns ride the plan-invalidation
// machinery: LAST windows slide their frontier — the old view keeps its
// rows minus those below the new lower bound (see migrateSensitiveView) —
// while BEFORE/AFTER windows rematerialize from scratch. Total materialized rows are capped by Engine.ViewHighWater:
// a query that would exceed the cap falls back to the recompute path.

import (
	"context"
	"sort"

	"threatraptor/internal/qir"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// DefaultViewHighWater is the default cap on materialized view rows
// across the whole engine (one row is five int64s plus index entries —
// the default bounds view memory to a few tens of MB).
const DefaultViewHighWater = 1 << 20

// ViewStats counts materialized-view activity since the engine started.
type ViewStats struct {
	// Materializations counts full (from-scratch) view builds.
	Materializations int64
	// DeltaMerges counts incremental catch-up merges into existing views.
	DeltaMerges int64
	// Fallbacks counts ExecuteDelta rounds that used the recompute path
	// because a view was disabled by the ViewHighWater cap.
	Fallbacks int64
	// CachedRows is the current total of materialized rows.
	CachedRows int64
	// CatchupSkips counts catch-up data queries skipped because the
	// delta's batch op bitmap didn't intersect the pattern's operations.
	CatchupSkips int64
	// WindowMigrations counts LAST-window views carried across a
	// bounds-epoch recompile by sliding their frontier (evicting the rows
	// that fell below the new lower bound) instead of rematerializing.
	WindowMigrations int64
}

// Views reports the engine's materialized-view counters.
func (en *Engine) Views() ViewStats {
	return ViewStats{
		Materializations: en.viewMaterializations.Load(),
		DeltaMerges:      en.viewDeltaMerges.Load(),
		Fallbacks:        en.viewFallbacks.Load(),
		CachedRows:       en.viewRows.Load(),
		CatchupSkips:     en.viewCatchupSkips.Load(),
		WindowMigrations: en.viewWindowMigrations.Load(),
	}
}

// viewCap resolves the effective row cap: Engine.ViewHighWater, the
// default when zero, disabled entirely when negative.
func (en *Engine) viewCap() int {
	if en.ViewHighWater != 0 {
		return en.ViewHighWater
	}
	return DefaultViewHighWater
}

// reserveViewRows charges n rows against the cap; false means the cap
// would be exceeded and the caller must disable its view.
func (en *Engine) reserveViewRows(n int) bool {
	cap64 := int64(en.viewCap())
	for {
		cur := en.viewRows.Load()
		if cur+int64(n) > cap64 {
			return false
		}
		if en.viewRows.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

func (en *Engine) releaseViewRows(n int) {
	if n > 0 {
		en.viewRows.Add(-int64(n))
		// Headroom appeared: fallen-back plans may retry materialization
		// on their next round (they compare this generation against the
		// one they fell back under).
		en.viewReleaseGen.Add(1)
	}
}

// matView is one pattern's materialized match cache: every row the
// pattern's data query matches over the current store, sorted by event ID
// (rows carry [event, subject, object, start, end]; a pattern matches each
// event at most once, so event ID is a unique sort key), plus hash indexes
// from subject and object entity ID to row positions for the binding-set
// reads the scheduler does during a delta join.
type matView struct {
	rows    [][5]int64
	subjIdx map[int64][]int32
	objIdx  map[int64][]int32
	// upTo is the exclusive event-ID frontier: rows cover every event with
	// ID < upTo. Zero means not yet materialized.
	upTo int64
}

// retained reports how many rows the view holds against the engine cap.
func (v *matView) retained() int {
	if v == nil {
		return 0
	}
	return len(v.rows)
}

// indexRows adds rows[from:] to the subject/object indexes.
func (v *matView) indexRows(from int) {
	if v.subjIdx == nil {
		v.subjIdx = make(map[int64][]int32, len(v.rows)-from)
		v.objIdx = make(map[int64][]int32, len(v.rows)-from)
	}
	for i := from; i < len(v.rows); i++ {
		r := &v.rows[i]
		v.subjIdx[r[1]] = append(v.subjIdx[r[1]], int32(i))
		v.objIdx[r[2]] = append(v.objIdx[r[2]], int32(i))
	}
}

// evictBelow drops rows whose bound event's start_time (row column 3)
// fell below lo and rebuilds the positional indexes (row positions shift
// with the compaction). Rows stay sorted by event ID. Returns how many
// rows were evicted.
func (v *matView) evictBelow(lo int64) int {
	kept := v.rows[:0]
	for _, r := range v.rows {
		if r[3] >= lo {
			kept = append(kept, r)
		}
	}
	evicted := len(v.rows) - len(kept)
	if evicted == 0 {
		return 0
	}
	v.rows = kept
	v.subjIdx, v.objIdx = nil, nil
	v.indexRows(0)
	return evicted
}

// migrateSensitiveView tries to carry a window-sensitive pattern's view
// across a bounds-epoch recompile instead of releasing it for a full
// rematerialization. Only LAST windows on event patterns qualify: in an
// append-only store a LAST window slides monotonically — the upper bound
// tracks the store max, which no retained row exceeds (every covered
// event predates the old max), and the lower bound only ascends — so the
// old rows minus those below the new lower bound are exactly the new
// window's matches up to the old frontier, and the ordinary catch-up from
// upTo covers the rest under the new bounds. BEFORE/AFTER windows (whose
// sensitive bound is the store min/max edge) keep the conservative
// release-and-rematerialize path, as do graph patterns, whose window
// constrains the path's final hop rather than the row's own event.
// Returns nil when the view cannot migrate.
func (en *Engine) migrateSensitiveView(old *patternPlan, b timeBounds) *matView {
	v := old.view
	w := old.ir.Window()
	if v == nil || v.upTo == 0 || w.Kind != qir.WindLast || old.usesGraph {
		return nil
	}
	lo, _ := w.Bounds(b.min, b.max)
	en.releaseViewRows(v.evictBelow(lo))
	en.viewWindowMigrations.Add(1)
	return v
}

// since returns the suffix of rows whose event ID is >= floor (no copy —
// rows are sorted by event ID).
func (v *matView) since(floor int64) [][5]int64 {
	i := sort.Search(len(v.rows), func(i int) bool { return v.rows[i][0] >= floor })
	return v.rows[i:]
}

// filter returns the view rows whose subject/object IDs lie in the given
// sorted binding sets (nil = unconstrained; both nil returns the full set
// without copying). The read drives from the smaller bound set through
// the matching hash index — the sorted-ID analogue of the scheduler
// feeding binding sets into a data query's index multi-probe — and checks
// the other side by binary search in its sorted set. buf backs the output.
func (v *matView) filter(subj, obj []int64, buf [][5]int64) [][5]int64 {
	if subj == nil && obj == nil {
		return v.rows
	}
	drive, idx := subj, v.subjIdx
	other, otherCol := obj, 2
	if subj == nil || (obj != nil && len(obj) < len(subj)) {
		drive, idx = obj, v.objIdx
		other, otherCol = subj, 1
	}
	out := buf[:0]
	for _, id := range drive {
		for _, ri := range idx[id] {
			r := v.rows[ri]
			if other != nil && !relational.ContainsSortedInt64(other, r[otherCol]) {
				continue
			}
			out = append(out, r)
		}
	}
	return out
}

// sortRowsByEvent sorts pattern rows by their event ID.
func sortRowsByEvent(rows [][5]int64) {
	sort.Slice(rows, func(a, b int) bool { return rows[a][0] < rows[b][0] })
}

// disablePlanViewsLocked drops every view of the plan and marks the
// whole query fallen back: once one pattern cannot hold a view, the
// view-backed join can never run, so maintaining (and charging) the
// others would be pure waste. DropViews re-arms the plan. Callers hold
// plan.viewMu.
func (en *Engine) disablePlanViewsLocked(plan *queryPlan) {
	for i := range plan.pats {
		if v := plan.pats[i].view; v != nil {
			en.releaseViewRows(v.retained())
			plan.pats[i].view = nil
		}
	}
	plan.viewsDisabled = true
	plan.disabledGen = en.viewReleaseGen.Load()
}

// ensureViews brings every pattern's view up to the pinned snapshot's
// event frontier, materializing on first use and catch-up-merging
// afterwards. The frontier is the snapshot's NextEventID — NOT the live
// store's: reading the live frontier while an append is publishing would
// let a view claim coverage of events its bounded catch-up query (which
// scans only the snapshot) never saw, silently losing those rows from
// every later round. It returns false when the row cap is crossed — the
// plan's views are then dropped wholesale and the caller evaluates through
// the recompute path. Stats from the catch-up data queries accumulate into
// st. Callers hold plan.viewMu.
func (en *Engine) ensureViews(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, plan *queryPlan, st *Stats) (bool, error) {
	next := en.Store.NextEventID()
	if snap != nil {
		next = snap.NextEventID
	}
	for idx := range plan.pats {
		pp := &plan.pats[idx]
		v := pp.view
		if v == nil {
			v = &matView{}
			pp.view = v
		}
		if v.upTo >= next {
			continue
		}
		sp := extrasSpec{snap: snap}
		if v.upTo > 0 {
			// A catch-up query can only add rows whose bound event lies
			// in [upTo, next); if no event in that delta carries one of
			// the pattern's operations, the result is empty by
			// construction — advance the frontier without running it.
			if snap != nil && snap.OpMaskBetween(v.upTo, next)&pp.opMask == 0 {
				v.upTo = next
				en.viewCatchupSkips.Add(1)
				continue
			}
			sp.delta = v.upTo
		}
		pr, qs, gs, err := en.runPattern(ctx, a, plan, idx, sp)
		if err != nil {
			return false, err
		}
		st.DataQueries++
		st.PatternRows += len(pr.rows)
		st.Rel.RowsScanned += qs.RowsScanned
		st.Rel.IndexLookups += qs.IndexLookups
		st.Rel.HashJoinBuilds += qs.HashJoinBuilds
		st.Graph.NodesVisited += gs.NodesVisited
		st.Graph.EdgesTraversed += gs.EdgesTraversed
		st.Graph.IndexLookups += gs.IndexLookups
		if !pr.hasEvent || !en.reserveViewRows(len(pr.rows)) {
			// !hasEvent is defensive: a view without event IDs cannot
			// maintain its frontier (ExecuteDelta's var-len fallback
			// should make it unreachable). Either way the query falls
			// back to recompute as a whole.
			en.disablePlanViewsLocked(plan)
			return false, nil
		}
		sortRowsByEvent(pr.rows)
		if v.upTo == 0 {
			v.rows = pr.rows
			v.indexRows(0)
			en.viewMaterializations.Add(1)
		} else {
			fresh := len(v.rows)
			v.rows = append(v.rows, pr.rows...)
			v.indexRows(fresh)
			en.viewDeltaMerges.Add(1)
		}
		v.upTo = next
	}
	return true, nil
}

// executeDeltaViews is the materialized-view delta round: for each
// pattern, its fresh rows (event ID >= minEventID, read straight off the
// view) join against the other patterns' cached sets, with the
// scheduler's binding sets narrowing each read. Returns ok=false when a
// view is capped and the recompute path must run instead.
func (en *Engine) executeDeltaViews(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, plan *queryPlan, minEventID int64) (*Result, Stats, bool, error) {
	var stats Stats
	plan.viewMu.Lock()
	defer plan.viewMu.Unlock()
	if plan.viewsDisabled {
		if en.viewReleaseGen.Load() == plan.disabledGen {
			en.viewFallbacks.Add(1)
			return nil, stats, false, nil
		}
		// Rows were released since the fallback (another query dropped
		// its views): re-arm and retry materialization.
		plan.viewsDisabled = false
	}
	viewsOK, err := en.ensureViews(ctx, a, snap, plan, &stats)
	if err != nil {
		return nil, stats, false, err
	}
	if !viewsOK {
		en.viewFallbacks.Add(1)
		return nil, stats, false, nil
	}

	combined := &Result{
		Set:           &relational.ResultSet{Columns: plan.cols},
		MatchedEvents: map[int64]bool{},
	}
	sc := en.acquireDeltaScratch(len(plan.pats))
	defer en.releaseDeltaScratch(sc)
	maxIn := en.maxIn()

	for i := range plan.pats {
		deltaRows := plan.pats[i].view.since(minEventID)
		if len(deltaRows) == 0 {
			continue
		}
		// The delta pattern runs first (the recompute path hoists it the
		// same way); the remaining patterns follow the scheduled order,
		// reading their materialized sets narrowed by the binding feed.
		clear(sc.bindings)
		empty := false
		bind := func(idx int, rows [][5]int64) {
			p := a.Query.Patterns[idx]
			sc.results[idx] = patternRows{idx: idx, rows: rows, hasEvent: true}
			stats.PatternRows += len(rows)
			if !en.DisableScheduling {
				narrow(sc.bindings, p.Subject.ID, rows, 1, &sc.ids)
				narrow(sc.bindings, p.Object.ID, rows, 2, &sc.ids)
			}
		}
		bind(i, deltaRows)
		for _, idx := range plan.order {
			if idx == i {
				continue
			}
			var subj, obj []int64
			if !en.DisableScheduling {
				subj, obj = en.bindingSpec(a.Query.Patterns[idx], sc.bindings, maxIn)
			}
			v := plan.pats[idx].view
			rows := v.rows
			if subj != nil || obj != nil {
				rows = v.filter(subj, obj, sc.bufs[idx][:0])
				sc.bufs[idx] = rows[:0:cap(rows)] // retain the grown buffer
			}
			if len(rows) == 0 {
				empty = true
				break
			}
			bind(idx, rows)
		}
		if empty {
			continue
		}
		res, joined, err := en.join(ctx, a, snap, sc.results)
		if err != nil {
			return nil, stats, false, err
		}
		stats.JoinBindings += joined
		combined.Set.Rows = append(combined.Set.Rows, res.Set.Rows...)
		for ev := range res.MatchedEvents {
			combined.MatchedEvents[ev] = true
		}
	}
	if a.Query.Return.Distinct {
		combined.Set.Rows = relational.DedupRows(combined.Set.Rows)
	}
	return combined, stats, true, nil
}
