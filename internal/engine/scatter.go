package engine

// This file is the engine's scatter surface: the exported pieces a
// coordinator needs to run one query across several stores (see
// internal/shard). A sharded execution keeps the whole scheduled plan —
// pruning-score order, binding-set feed, final join — at the coordinator
// and only scatters the per-pattern data queries, so each piece of the
// single-store pipeline is exported at exactly that seam: ScatterPattern
// runs one pattern against one pinned snapshot, JoinPatternRows folds the
// merged per-pattern rows into complete bindings, and QueryMeta exposes
// the routing-relevant shape (op mask, window, host pins) the coordinator
// prunes shards with.

import (
	"context"
	"sort"

	"threatraptor/internal/qir"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// PatternRows is one pattern's data-query result rows in exported form:
// [event, subject, object, start, end] per row (only the subject/object
// columns are meaningful when HasEvent is false — variable-length paths
// bind no event).
type PatternRows struct {
	Idx      int
	Rows     [][5]int64
	HasEvent bool
}

// snapEdgeFloor translates a global event-ID delta floor into the
// snapshot's dense edge-arena floor: edges are appended one per event in
// ID order, so arena offset i (1-based) holds the snapshot's i-th event.
// For a store holding the dense 1..n ID space this is the identity.
func snapEdgeFloor(snap *Snapshot, delta int64) int64 {
	if snap == nil || delta <= 0 {
		return delta
	}
	i := sort.Search(len(snap.Events), func(i int) bool { return snap.Events[i].ID >= delta })
	return int64(i) + 1
}

// ScatterPattern executes pattern idx of a against the pinned snapshot
// with the given binding sets and delta floor — one shard's share of a
// scattered data query. The snapshot must belong to this engine's store;
// binding-set and delta parameters carry global entity and event IDs
// (shards store global IDs, so no remapping happens anywhere).
func (en *Engine) ScatterPattern(ctx context.Context, a *tbql.Analyzed, snap *Snapshot, idx int, subj, obj []int64, delta int64) (res PatternRows, stats Stats, err error) {
	defer guard(a, &err)
	plan := en.planFor(a, snap)
	pr, qs, gs, err := en.runPattern(ctx, a, plan, idx, extrasSpec{subj: subj, obj: obj, delta: delta, snap: snap})
	if err != nil {
		return PatternRows{Idx: idx}, stats, err
	}
	stats.DataQueries = 1
	stats.PatternRows = len(pr.rows)
	stats.Rel = qs
	stats.Graph = gs
	return PatternRows{Idx: pr.idx, Rows: pr.rows, HasEvent: pr.hasEvent}, stats, nil
}

// JoinPatternRows combines per-pattern rows into complete bindings with
// the engine's join (shared-entity identity, temporal and attribute
// relations, return projection). attrOf resolves entity attributes; a
// coordinator passes its global snapshot's resolver. results must hold
// one entry per query pattern, indexed by pattern.
func JoinPatternRows(ctx context.Context, a *tbql.Analyzed, attrOf func(id int64, attr string) relational.Value, results []PatternRows) (res *Result, joined int, err error) {
	defer guard(a, &err)
	inner := make([]patternRows, len(results))
	for i, pr := range results {
		inner[i] = patternRows{idx: pr.Idx, rows: pr.Rows, hasEvent: pr.HasEvent}
	}
	return joinRows(ctx, a, attrOf, inner)
}

// EmptyResult is the result of a conjunction short-circuited by a pattern
// that matched nothing, shared with coordinators that schedule their own
// scatter rounds.
func EmptyResult(a *tbql.Analyzed) *Result { return emptyResult(a) }

// ScheduleOrder returns the pruning-score pattern order for a — the same
// order a single-store scheduled execution uses.
func ScheduleOrder(a *tbql.Analyzed) []int {
	var en Engine
	return en.schedule(a)
}

// BindingSpec selects the scheduler's binding-set constraints for pattern
// idx out of the accumulated binding map (sorted unique ID slices),
// applying the engine's IN-list cap semantics. maxIn <= 0 selects the
// default cap.
func BindingSpec(a *tbql.Analyzed, idx int, bindings map[string][]int64, maxIn int) (subj, obj []int64) {
	var en Engine
	if maxIn > 0 {
		en.MaxInList = maxIn
	}
	return en.bindingSpec(a.Query.Patterns[idx], bindings, en.maxIn())
}

// Narrow intersects the binding sets of pattern idx's subject and object
// variables with the IDs seen in its rows — the coordinator-side binding
// feed between scattered patterns.
func Narrow(a *tbql.Analyzed, idx int, rows [][5]int64, bindings map[string][]int64, scratch *[]int64) {
	p := a.Query.Patterns[idx]
	narrow(bindings, p.Subject.ID, rows, 1, scratch)
	narrow(bindings, p.Object.ID, rows, 2, scratch)
}

// ReturnColumns returns the query's projected column labels.
func ReturnColumns(a *tbql.Analyzed) []string { return returnColumns(a) }

// PatternMeta is the routing-relevant shape of one pattern: everything a
// scatter coordinator needs to decide which shards the pattern's data
// query can possibly match on.
type PatternMeta struct {
	// OpMask is the OR of the op-code bits the pattern's bound event can
	// take (^0 when unconstrained); a shard whose stored ops don't
	// intersect it cannot contribute a row.
	OpMask uint32
	// Window is the pattern's time window (nil = unwindowed). Resolve its
	// bounds against the GLOBAL min/max; shards whose local time bounds
	// miss the resolved range are pruned.
	Window *qir.Window
	// UsesGraph marks graph-lowered (path) patterns.
	UsesGraph bool
	// VarLen marks variable-length paths (MinLen/MaxLen != 1); their
	// flows can cross arbitrarily many events, but each flow stays within
	// one store's adjacency.
	VarLen bool
	// SubjHost / ObjHost are non-empty when an equality literal pins the
	// subject / object entity to one host — a host-keyed partitioner then
	// routes the pattern to that host's shard alone.
	SubjHost string
	ObjHost  string
}

// QueryMeta derives the per-pattern routing metadata for a query from
// its lowered IR.
func QueryMeta(a *tbql.Analyzed) []PatternMeta {
	irs := tbql.Lower(a)
	metas := make([]PatternMeta, len(irs))
	for i, ir := range irs {
		m := &metas[i]
		m.OpMask = patternOpMask(ir)
		m.Window = ir.Window()
		m.UsesGraph = ir.UsesGraph()
		if ir.Path != nil {
			m.VarLen = ir.Path.MinLen != 1 || ir.Path.MaxLen != 1
			m.SubjHost = hostEquality(ir.Path.SubjPred)
			m.ObjHost = hostEquality(ir.Path.ObjPred)
		} else if ir.Event != nil {
			m.SubjHost = hostEquality(ir.Event.SubjPred)
			m.ObjHost = hostEquality(ir.Event.ObjPred)
		}
	}
	return metas
}

// hostEquality extracts the host a predicate pins its entity to with a
// top-level `host = "literal"` conjunct ("" when it doesn't).
func hostEquality(pred relational.Expr) string {
	switch v := pred.(type) {
	case relational.BinOp:
		if v.Op == "and" {
			if h := hostEquality(v.L); h != "" {
				return h
			}
			return hostEquality(v.R)
		}
		if v.Op == "=" {
			if h := hostEqSide(v.L, v.R); h != "" {
				return h
			}
			return hostEqSide(v.R, v.L)
		}
	}
	return ""
}

func hostEqSide(col, lit relational.Expr) string {
	c, ok := col.(relational.ColRef)
	if !ok || c.Column != "host" {
		return ""
	}
	l, ok := lit.(relational.Lit)
	if !ok || l.V.K != relational.KindString {
		return ""
	}
	return l.V.S
}
