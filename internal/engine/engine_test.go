package engine

import (
	"reflect"
	"sort"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/reduction"
	"threatraptor/internal/tbql"
)

// dataLeakStore simulates the data_leak attack planted inside benign
// background noise and loads the reduced log into a store.
func dataLeakStore(t testing.TB, benignActions int) (*Store, []int64) {
	t.Helper()
	sim := audit.NewSimulator(1234, 1_700_000_000_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 10, Actions: benignActions / 2})

	tar := audit.Proc{PID: 5001, Exe: "/bin/tar", User: "root", Group: "root", CMD: "tar cf /tmp/upload.tar /etc/passwd"}
	bzip := audit.Proc{PID: 5002, Exe: "/bin/bzip2", User: "root", Group: "root"}
	gpg := audit.Proc{PID: 5003, Exe: "/usr/bin/gpg", User: "root", Group: "root"}
	curl := audit.Proc{PID: 5004, Exe: "/usr/bin/curl", User: "root", Group: "root"}

	attackStart := len(sim.Records())
	sim.ReadFile(tar, "/etc/passwd", 3000)
	sim.WriteFile(tar, "/tmp/upload.tar", 3000)
	sim.Advance(2_000_000)
	sim.ReadFile(bzip, "/tmp/upload.tar", 3000)
	sim.WriteFile(bzip, "/tmp/upload.tar.bz2", 2000)
	sim.Advance(2_000_000)
	sim.ReadFile(gpg, "/tmp/upload.tar.bz2", 2000)
	sim.WriteFile(gpg, "/tmp/upload", 2200)
	sim.Advance(2_000_000)
	sim.ReadFile(curl, "/tmp/upload", 2200)
	sim.Connect(curl, "10.0.0.9", 45000, "192.168.29.128", 443, "tcp")
	sim.Send(curl, "10.0.0.9", 45000, "192.168.29.128", 443, "tcp", 2200)
	attackEnd := len(sim.Records())

	sim.GenerateBenign(audit.BenignConfig{Users: 10, Actions: benignActions / 2})

	parser := audit.NewParser()
	var attackKeys []string
	for i, r := range sim.Records() {
		if err := parser.Feed(&r); err != nil {
			t.Fatal(err)
		}
		if i >= attackStart && i < attackEnd {
			log := parser.Log()
			ev := log.Events[len(log.Events)-1]
			attackKeys = append(attackKeys,
				log.Subject(&ev).Key()+"|"+ev.Op.String()+"|"+log.Object(&ev).Key())
		}
	}
	log := parser.Log()
	reduction.Reduce(log, reduction.DefaultConfig())

	// After reduction, the attack events are those whose
	// subject|op|object key matches a recorded attack step.
	keySet := map[string]bool{}
	for _, k := range attackKeys {
		keySet[k] = true
	}
	var attackEventIDs []int64
	for i := range log.Events {
		ev := &log.Events[i]
		k := log.Subject(ev).Key() + "|" + ev.Op.String() + "|" + log.Object(ev).Key()
		if keySet[k] {
			attackEventIDs = append(attackEventIDs, ev.ID)
		}
	}

	store, err := NewStore(log)
	if err != nil {
		t.Fatal(err)
	}
	return store, attackEventIDs
}

const dataLeakTBQL = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

func analyzed(t testing.TB, src string) *tbql.Analyzed {
	t.Helper()
	q, err := tbql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestScheduledExecutionFindsAttack(t *testing.T) {
	store, _ := dataLeakStore(t, 400)
	en := &Engine{Store: store}
	res, stats, err := en.Execute(nil, analyzed(t, dataLeakTBQL))
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 1 {
		t.Fatalf("rows = %d, want 1: %v", res.Set.Len(), res.Set.Strings())
	}
	want := []string{"/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
		"/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload", "/usr/bin/curl",
		"192.168.29.128"}
	if !reflect.DeepEqual(res.Set.Strings()[0], want) {
		t.Fatalf("got %v", res.Set.Strings()[0])
	}
	if stats.DataQueries != 8 {
		t.Fatalf("data queries = %d, want 8", stats.DataQueries)
	}
	if len(res.MatchedEvents) != 8 {
		t.Fatalf("matched events = %d, want 8", len(res.MatchedEvents))
	}
}

func TestMatchedEventsAreTheAttack(t *testing.T) {
	store, attackIDs := dataLeakStore(t, 400)
	en := &Engine{Store: store}
	res, _, err := en.Execute(nil, analyzed(t, dataLeakTBQL))
	if err != nil {
		t.Fatal(err)
	}
	attackSet := map[int64]bool{}
	for _, id := range attackIDs {
		attackSet[id] = true
	}
	for ev := range res.MatchedEvents {
		if !attackSet[ev] {
			t.Errorf("matched benign event %d (false positive)", ev)
		}
	}
}

func TestMonolithicSQLEquivalence(t *testing.T) {
	store, _ := dataLeakStore(t, 300)
	en := &Engine{Store: store}
	a := analyzed(t, dataLeakTBQL)
	sched, _, err := en.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	mono, _, err := en.ExecuteMonolithicSQL(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(sched.Set.Strings(), mono.Strings()) {
		t.Fatalf("scheduled and monolithic SQL disagree:\n%v\n%v",
			sched.Set.Strings(), mono.Strings())
	}
}

func TestMonolithicCypherEquivalence(t *testing.T) {
	store, _ := dataLeakStore(t, 300)
	en := &Engine{Store: store}
	a := analyzed(t, dataLeakTBQL)
	sched, _, err := en.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	mono, _, err := en.ExecuteMonolithicCypher(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(sched.Set.Strings(), mono.Strings()) {
		t.Fatalf("scheduled and monolithic Cypher disagree:\n%v\n%v",
			sched.Set.Strings(), mono.Strings())
	}
}

func TestLength1PathExecution(t *testing.T) {
	store, _ := dataLeakStore(t, 300)
	en := &Engine{Store: store}
	src := `proc p1["%/bin/tar%"] ->[read] file f1["%/etc/passwd%"] as evt1
proc p1 ->[write] file f2["%/tmp/upload.tar%"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`
	res, stats, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 1 {
		t.Fatalf("rows = %d: %v", res.Set.Len(), res.Set.Strings())
	}
	if stats.Graph.EdgesTraversed == 0 {
		t.Fatal("length-1 paths must execute on the graph backend")
	}
	if stats.Rel.RowsScanned != 0 {
		t.Fatal("length-1 paths must not touch the relational backend")
	}
}

func TestVariableLengthPathExecution(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	en := &Engine{Store: store}
	// Information flow from tar to the C2 address spans 8 hops.
	src := `proc p["%/bin/tar%"] ~>(1~8)[connect] ip i["192.168.29.128"]
return distinct p, i`
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 1 {
		t.Fatalf("rows = %d: %v", res.Set.Len(), res.Set.Strings())
	}
	got := res.Set.Strings()[0]
	if got[0] != "/bin/tar" || got[1] != "192.168.29.128" {
		t.Fatalf("got %v", got)
	}
}

func TestVariableLengthTooShortFindsNothing(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	en := &Engine{Store: store}
	src := `proc p["%/bin/tar%"] ~>(1~2)[connect] ip i["192.168.29.128"]
return distinct p, i`
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 0 {
		t.Fatalf("2 hops cannot reach the C2: %v", res.Set.Strings())
	}
}

func TestTemporalOrderEnforced(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	en := &Engine{Store: store}
	// Reversed order must not match.
	src := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
with evt2 before evt1
return distinct p1`
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 0 {
		t.Fatalf("reversed temporal order must not match: %v", res.Set.Strings())
	}
}

func TestAttrRelation(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	en := &Engine{Store: store}
	src := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p2 write file f2["%/tmp/upload.tar%"] as evt2
with p1.pid = p2.pid
return distinct p1, p2`
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 1 {
		t.Fatalf("rows = %d: %v", res.Set.Len(), res.Set.Strings())
	}
	row := res.Set.Strings()[0]
	if row[0] != "/bin/tar" || row[1] != "/bin/tar" {
		t.Fatalf("pid equation should force the same process: %v", row)
	}
}

func TestEarlyExitOnEmptyPattern(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	en := &Engine{Store: store}
	src := `proc p1["%/bin/tar%"] read file f1["%/no/such/file%"] as evt1
proc p2 read file f2 as evt2
return distinct p2`
	res, stats, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 0 {
		t.Fatal("no rows expected")
	}
	// The scheduler runs the constrained pattern first; its empty result
	// short-circuits the unconstrained scan.
	if stats.DataQueries != 1 {
		t.Fatalf("data queries = %d, want 1 (early exit)", stats.DataQueries)
	}
}

func TestSchedulerOutperformsNaive(t *testing.T) {
	store, _ := dataLeakStore(t, 800)
	a := analyzed(t, dataLeakTBQL)
	sched := &Engine{Store: store}
	naive := &Engine{Store: store, DisableScheduling: true}
	_, ss, err := sched.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	_, ns, err := naive.Execute(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if ss.PatternRows > ns.PatternRows {
		t.Errorf("scheduling should not increase pattern rows: %d vs %d",
			ss.PatternRows, ns.PatternRows)
	}
	monoRows := func() int {
		_, ms, err := sched.ExecuteMonolithicSQL(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		return ms.Rel.RowsScanned
	}()
	if ss.Rel.RowsScanned >= monoRows {
		t.Errorf("scheduled plan should scan fewer rows than the monolithic query: %d vs %d",
			ss.Rel.RowsScanned, monoRows)
	}
}

func TestWindowFilter(t *testing.T) {
	store, _ := dataLeakStore(t, 200)
	en := &Engine{Store: store}
	// A window far in the past excludes everything.
	src := `proc p1["%/bin/tar%"] read file f1 from "2001-01-01" to "2001-01-02" return distinct p1`
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 0 {
		t.Fatalf("stale window must exclude all events: %v", res.Set.Strings())
	}
	// A "last N days" window that covers the log finds the reads.
	src = `last 3650 day proc p1["%/bin/tar%"] read file f1 return distinct f1`
	res, _, err = en.Hunt(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() == 0 {
		t.Fatal("covering window should match")
	}
}

func TestStoreReplication(t *testing.T) {
	store, _ := dataLeakStore(t, 100)
	ents := store.Rel.Table("entities").Len()
	evts := store.Rel.Table("events").Len()
	if store.Graph.NumNodes() != ents {
		t.Errorf("graph nodes %d != relational entities %d", store.Graph.NumNodes(), ents)
	}
	if store.Graph.NumEdges() != evts {
		t.Errorf("graph edges %d != relational events %d", store.Graph.NumEdges(), evts)
	}
	if store.MinTime == 0 || store.MaxTime <= store.MinTime {
		t.Errorf("time bounds wrong: [%d, %d]", store.MinTime, store.MaxTime)
	}
}

func TestEntityAttr(t *testing.T) {
	store, _ := dataLeakStore(t, 100)
	var procID int64
	for _, e := range store.Log.Entities.All() {
		if e.Kind == audit.EntityProcess && e.Proc.ExeName == "/bin/tar" {
			procID = e.ID
		}
	}
	if procID == 0 {
		t.Fatal("tar process not found")
	}
	if v := store.EntityAttr(procID, "exename"); v.S != "/bin/tar" {
		t.Errorf("exename = %v", v)
	}
	if v := store.EntityAttr(procID, "pid"); v.I != 5001 {
		t.Errorf("pid = %v (should be numeric)", v)
	}
	if v := store.EntityAttr(99999, "exename"); !v.IsNull() {
		t.Errorf("missing entity should be NULL, got %v", v)
	}
}

func sameRows(a, b [][]string) bool {
	key := func(rows [][]string) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			k := ""
			for _, c := range r {
				k += c + "\x00"
			}
			out[i] = k
		}
		sort.Strings(out)
		return out
	}
	return reflect.DeepEqual(key(a), key(b))
}
