package engine

import (
	"strconv"
	"sync"
)

// The scheduler re-assembles each pattern's data-query text per execution:
// the static parts are compiled once, but the IN-list extras derived from
// the current binding sets used to be rebuilt (and the resulting SQL
// re-hashed by the prepared-plan cache) on every repeat hunt. This file
// keys the assembled texts by the binding sets themselves — repeat hunts
// with the same bindings skip both the string build and the re-parse.

// extrasSpec is everything that can vary in one pattern's data query
// between executions: the scheduler's subject/object binding sets and the
// standing-query delta floor (only events with ID >= delta match; 0 means
// no floor).
type extrasSpec struct {
	subj, obj []int64
	delta     int64
}

func (sp extrasSpec) empty() bool {
	return len(sp.subj) == 0 && len(sp.obj) == 0 && sp.delta == 0
}

// render builds the extra condition strings (shared SQL/Cypher syntax).
func (sp extrasSpec) render() []string {
	var extras []string
	if len(sp.subj) > 0 {
		extras = append(extras, inList("s", sp.subj))
	}
	if len(sp.obj) > 0 {
		extras = append(extras, inList("o", sp.obj))
	}
	if sp.delta > 0 {
		extras = append(extras, "e.id >= "+strconv.FormatInt(sp.delta, 10))
	}
	return extras
}

// hash mixes the spec FNV-1a style. Collisions are resolved by the
// chain's full equality check, never by trusting the hash.
func (sp extrasSpec) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(sp.subj)))
	for _, id := range sp.subj {
		mix(uint64(id))
	}
	mix(uint64(len(sp.obj)))
	for _, id := range sp.obj {
		mix(uint64(id))
	}
	mix(uint64(sp.delta))
	return h
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cachedText is one assembled data-query text with the spec that produced
// it. Binding slices are copied in: the scheduler reuses its slices across
// executions.
type cachedText struct {
	subj, obj []int64
	delta     int64
	text      string
}

// maxCachedTexts bounds one pattern's cache; on overflow it is flushed
// wholesale (the working set of repeat hunts is tiny).
const maxCachedTexts = 256

// patternTextCache caches assembled query texts per pattern, keyed by
// extrasSpec. Safe for concurrent use: patterns in one dependency level
// assemble their texts on separate goroutines.
type patternTextCache struct {
	mu      sync.Mutex
	entries map[uint64][]*cachedText
	n       int
}

// get returns the cached text for spec, or "" on a miss. Equality of the
// binding sets is verified element-wise; binding sets are sorted unique
// slices, so equality is canonical.
func (c *patternTextCache) get(sp extrasSpec) string {
	h := sp.hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[h] {
		if e.delta == sp.delta && equalIDs(e.subj, sp.subj) && equalIDs(e.obj, sp.obj) {
			return e.text
		}
	}
	return ""
}

func (c *patternTextCache) put(sp extrasSpec, text string) {
	h := sp.hash()
	e := &cachedText{
		subj:  append([]int64(nil), sp.subj...),
		obj:   append([]int64(nil), sp.obj...),
		delta: sp.delta,
		text:  text,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n >= maxCachedTexts {
		c.entries = nil
		c.n = 0
	}
	if c.entries == nil {
		c.entries = make(map[uint64][]*cachedText)
	}
	c.entries[h] = append(c.entries[h], e)
	c.n++
}

// text returns the pattern's final data-query text for spec: the static
// plain text when no extras apply, the cached assembly when the same
// binding sets were fed before, and a fresh assembly (recorded for next
// time) otherwise.
func (pp *patternPlan) text(sp extrasSpec) string {
	if sp.empty() {
		return pp.plain
	}
	if t := pp.cache.get(sp); t != "" {
		return t
	}
	extras := sp.render()
	var t string
	if pp.usesGraph {
		t = pp.cy.assemble(extras)
	} else {
		t = pp.sql.assemble(extras)
	}
	pp.cache.put(sp, t)
	return t
}
