package ioc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func typesAndTexts(iocs []IOC) [][2]string {
	out := make([][2]string, len(iocs))
	for i, ic := range iocs {
		out[i] = [2]string{string(ic.Type), ic.Text}
	}
	return out
}

func TestExtractLinuxPaths(t *testing.T) {
	iocs := Extract("The attacker used /bin/tar to read /etc/passwd quickly.")
	want := [][2]string{
		{"FilepathLinux", "/bin/tar"},
		{"FilepathLinux", "/etc/passwd"},
	}
	if !reflect.DeepEqual(typesAndTexts(iocs), want) {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
}

func TestExtractTrailingPeriod(t *testing.T) {
	iocs := Extract("It wrote to /tmp/upload.tar. Then it stopped.")
	if len(iocs) != 1 || iocs[0].Text != "/tmp/upload.tar" {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
}

func TestExtractIPv4AndCIDR(t *testing.T) {
	iocs := Extract("connect to 192.168.29.128 and 10.0.0.0/8 but not 999.1.1.1")
	want := [][2]string{
		{"IPv4", "192.168.29.128"},
		{"CIDR", "10.0.0.0/8"},
	}
	if !reflect.DeepEqual(typesAndTexts(iocs), want) {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
}

func TestExtractWindowsPath(t *testing.T) {
	iocs := Extract(`Dropped C:\Windows\System32\evil.dll on the host.`)
	if len(iocs) != 1 || iocs[0].Type != TypeFilepathWin {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
	if iocs[0].Text != `C:\Windows\System32\evil.dll` {
		t.Fatalf("text = %q", iocs[0].Text)
	}
}

func TestExtractFilenamesAndHashes(t *testing.T) {
	iocs := Extract("payload.exe has MD5 d41d8cd98f00b204e9800998ecf8427e and ships in john.zip")
	got := typesAndTexts(iocs)
	want := [][2]string{
		{"Filename", "payload.exe"},
		{"MD5", "d41d8cd98f00b204e9800998ecf8427e"},
		{"Filename", "john.zip"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestExtractURLDomainEmailCVE(t *testing.T) {
	iocs := Extract("See https://evil.example.com/a?b=1 report at badsite.ru, mail admin@corp.com about CVE-2014-6271.")
	var types []string
	for _, ic := range iocs {
		types = append(types, string(ic.Type))
	}
	want := []string{"URL", "Domain", "Email", "CVE"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("types = %v (%v)", types, typesAndTexts(iocs))
	}
}

func TestExtractRegistry(t *testing.T) {
	iocs := Extract(`Persists via HKEY_LOCAL_MACHINE\Software\Run\evil key.`)
	if len(iocs) != 1 || iocs[0].Type != TypeRegistry {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
}

func TestExtractAndroidPackage(t *testing.T) {
	iocs := Extract("The process com.android.defcontainer opened MsgApp-instr.apk there.")
	got := typesAndTexts(iocs)
	want := [][2]string{
		{"Package", "com.android.defcontainer"},
		{"Filename", "MsgApp-instr.apk"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestExtractOverlapPrecedence(t *testing.T) {
	// The URL contains a domain; URL must win.
	iocs := Extract("visit http://evil.com/payload now")
	if len(iocs) != 1 || iocs[0].Type != TypeURL {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
	// A SHA256 must not also match as two MD5-length substrings.
	h := strings.Repeat("ab", 32)
	iocs = Extract("hash " + h + " found")
	if len(iocs) != 1 || iocs[0].Type != TypeSHA256 {
		t.Fatalf("got %v", typesAndTexts(iocs))
	}
}

func TestExtractOffsets(t *testing.T) {
	text := "read /etc/passwd and /tmp/x.tar now"
	for _, ic := range Extract(text) {
		if text[ic.Start:ic.End] != ic.Text {
			t.Errorf("offset mismatch for %q: %q", ic.Text, text[ic.Start:ic.End])
		}
	}
}

func TestExtractRejectsBadIPs(t *testing.T) {
	for _, s := range []string{"256.1.1.1", "01.2.3.4"} {
		for _, ic := range Extract("ip " + s + " here") {
			if ic.Type == TypeIPv4 || ic.Type == TypeCIDR {
				t.Errorf("%q must not extract as IP, got %v", s, ic)
			}
		}
	}
	// An invalid CIDR still yields the embedded valid IPv4.
	for _, ic := range Extract("ip 1.2.3.4/40 here") {
		if ic.Type == TypeCIDR {
			t.Errorf("/40 mask must not parse as CIDR: %v", ic)
		}
	}
}

func TestProtectRestore(t *testing.T) {
	text := "The attacker used /bin/tar to read /etc/passwd and connect to 192.168.29.128."
	prot, recs := Protect(text)
	if strings.Contains(prot, "/bin/tar") || strings.Contains(prot, "192.168") {
		t.Fatalf("IOCs leaked into protected text: %q", prot)
	}
	if got := strings.Count(prot, DummyWord); got != 3 {
		t.Fatalf("placeholders = %d, want 3: %q", got, prot)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if prot[r.Offset:r.Offset+len(DummyWord)] != DummyWord {
			t.Errorf("record offset %d does not point at a placeholder", r.Offset)
		}
	}
	if Restore(prot, recs) != text {
		t.Fatalf("restore mismatch:\n%q\n%q", Restore(prot, recs), text)
	}
}

func TestProtectNoIOCs(t *testing.T) {
	text := "Nothing suspicious here."
	prot, recs := Protect(text)
	if prot != text || recs != nil {
		t.Fatalf("no-op expected: %q %v", prot, recs)
	}
}

func TestProtectLegitimateSomething(t *testing.T) {
	// A pre-existing "something" must not confuse the replacement record.
	text := "He did something with /bin/tar."
	prot, recs := Protect(text)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if Restore(prot, recs) != text {
		t.Fatalf("restore mismatch: %q", Restore(prot, recs))
	}
}

// Property: Protect/Restore round-trips for ASCII text.
func TestProtectRestoreProperty(t *testing.T) {
	f := func(raw string) bool {
		text := strings.Map(func(r rune) rune {
			if r < 0x20 || r > 0x7e {
				return ' '
			}
			return r
		}, raw)
		prot, recs := Protect(text)
		return Restore(prot, recs) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtractDataLeakReport(t *testing.T) {
	// The paper's Figure 2 report must yield exactly its IOC list.
	text := `As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After compression, the attacker used Gnu Privacy Guard (GnuPG) tool to encrypt the zipped file, which corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive information to /tmp/upload. Finally, the attacker leveraged the curl utility (/usr/bin/curl) to read the data from /tmp/upload. He leaked the gathered sensitive information back to the attacker C2 host by using /usr/bin/curl to connect to 192.168.29.128.`
	want := map[string]int{
		"/bin/tar": 1, "/etc/passwd": 1, "/tmp/upload.tar": 2,
		"/bin/bzip2": 2, "/tmp/upload.tar.bz2": 2, "/usr/bin/gpg": 2,
		"/tmp/upload": 2, "/usr/bin/curl": 2, "192.168.29.128": 1,
	}
	got := map[string]int{}
	for _, ic := range Extract(text) {
		got[ic.Text]++
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}
