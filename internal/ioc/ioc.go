// Package ioc recognizes Indicators of Compromise (IOCs) in text with a
// set of regex rules, and implements IOC protection: replacing IOCs with a
// dummy word so general-purpose NLP components are not confused by the
// special characters (dots, slashes, underscores) inside indicators
// (Step 2 of Algorithm 1 in the ThreatRaptor paper).
//
// The rule set extends the open-source ioc-parser the paper builds on,
// e.g. distinguishing Linux and Windows file paths.
package ioc

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Type classifies an indicator.
type Type string

// Recognized IOC types.
const (
	TypeFilepathLinux Type = "FilepathLinux"
	TypeFilepathWin   Type = "FilepathWindows"
	TypeFilename      Type = "Filename"
	TypeIPv4          Type = "IPv4"
	TypeCIDR          Type = "CIDR"
	TypeURL           Type = "URL"
	TypeDomain        Type = "Domain"
	TypeEmail         Type = "Email"
	TypeMD5           Type = "MD5"
	TypeSHA1          Type = "SHA1"
	TypeSHA256        Type = "SHA256"
	TypeRegistry      Type = "Registry"
	TypeCVE           Type = "CVE"
	TypePackage       Type = "Package" // Android/Java package or APK name
)

// IOC is one recognized indicator with its byte span in the source text.
type IOC struct {
	Text  string
	Type  Type
	Start int
	End   int
}

// rule couples a compiled regex with its type and precedence (higher wins
// on overlaps).
type rule struct {
	re   *regexp.Regexp
	typ  Type
	prec int
}

var rules = []rule{
	{regexp.MustCompile(`\bCVE-\d{4}-\d{4,7}\b`), TypeCVE, 100},
	{regexp.MustCompile(`\bhttps?://[^\s"'<>\)]+`), TypeURL, 90},
	{regexp.MustCompile(`\b[A-Fa-f0-9]{64}\b`), TypeSHA256, 85},
	{regexp.MustCompile(`\b[A-Fa-f0-9]{40}\b`), TypeSHA1, 84},
	{regexp.MustCompile(`\b[A-Fa-f0-9]{32}\b`), TypeMD5, 83},
	{regexp.MustCompile(`\b(?:HKEY_[A-Z_]+|HKLM|HKCU|HKCR|HKU)\\[\w\\ .-]+`), TypeRegistry, 80},
	{regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}/\d{1,2}\b`), TypeCIDR, 75},
	{regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}\b`), TypeIPv4, 70},
	{regexp.MustCompile(`[\w.+-]+@[\w-]+(?:\.[\w-]+)+`), TypeEmail, 65},
	{regexp.MustCompile(`\b[A-Za-z]:\\(?:[^\\/:*?"<>|\r\n ]+\\)*[^\\/:*?"<>|\r\n ]+`), TypeFilepathWin, 60},
	// Linux path: at least one slash-separated component; excludes bare
	// "/" and trailing sentence periods (trimmed in post).
	{regexp.MustCompile(`(?:^|[\s"'(])((?:/[\w.+~-]+){1,})`), TypeFilepathLinux, 55},
	// Android/Java package names and APKs: com.example.app, MsgApp.apk.
	{regexp.MustCompile(`\b(?:[a-z][a-z0-9_]*\.){2,}[A-Za-z][A-Za-z0-9_]*\b`), TypePackage, 52},
	{regexp.MustCompile(`\b[\w-]+(?:\.[\w-]+)*\.(?:exe|dll|sh|py|tar|gz|bz2|zip|rar|7z|doc|docx|xls|xlsx|ppt|pdf|apk|jar|bat|ps1|vbs|so|bin|img|elf|iso|deb|rpm|msi|scr|tmp|dat|cfg|conf|log)\b`), TypeFilename, 50},
	{regexp.MustCompile(`\b(?:[a-z0-9][a-z0-9-]*\.)+(?:com|net|org|io|ru|cn|info|biz|xyz|onion|gov|edu|co|me|cc|top)\b`), TypeDomain, 45},
}

// candidate is one regex match before overlap resolution.
type candidate struct {
	IOC
	prec int
}

// Extract scans text for IOCs, resolving overlaps by precedence then by
// length (longest match wins), and returns them in source order.
func Extract(text string) []IOC {
	var cands []candidate
	for _, r := range rules {
		locs := r.re.FindAllStringSubmatchIndex(text, -1)
		for _, loc := range locs {
			start, end := loc[0], loc[1]
			// Rules with a capture group indicate the IOC is the group.
			if len(loc) >= 4 && loc[2] >= 0 {
				start, end = loc[2], loc[3]
			}
			raw := trimIOC(text[start:end])
			if raw == "" {
				continue
			}
			// Re-anchor after trimming.
			off := strings.Index(text[start:end], raw)
			s := start + off
			cand := IOC{Text: raw, Type: r.typ, Start: s, End: s + len(raw)}
			if cand.Type == TypeIPv4 || cand.Type == TypeCIDR {
				if !validIP(raw) {
					continue
				}
			}
			cands = append(cands, candidate{cand, r.prec})
		}
	}
	return resolveOverlaps(cands)
}

func resolveOverlaps(cands []candidate) []IOC {
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].prec != cands[b].prec {
			return cands[a].prec > cands[b].prec
		}
		return cands[a].End-cands[a].Start > cands[b].End-cands[b].Start
	})
	var chosen []IOC
	overlaps := func(a, b IOC) bool { return a.Start < b.End && b.Start < a.End }
	for _, c := range cands {
		ok := true
		for _, g := range chosen {
			if overlaps(c.IOC, g) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, c.IOC)
		}
	}
	sort.Slice(chosen, func(a, b int) bool { return chosen[a].Start < chosen[b].Start })
	return chosen
}

// trimIOC strips trailing sentence punctuation that regexes may capture.
func trimIOC(s string) string {
	s = strings.TrimRight(s, ".,;:!?)\"'")
	return s
}

func validIP(s string) bool {
	host := s
	if i := strings.IndexByte(s, '/'); i >= 0 {
		host = s[:i]
		bits, err := strconv.Atoi(s[i+1:])
		if err != nil || bits < 0 || bits > 32 {
			return false
		}
	}
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return false
		}
		if len(p) > 1 && p[0] == '0' {
			return false
		}
	}
	return true
}

// DummyWord is the placeholder substituted for IOCs during protection. The
// paper uses the word "something" because general dependency parsers treat
// it as an ordinary nominal.
const DummyWord = "something"

// Replacement records one protected IOC: its placeholder's byte offset in
// the protected text, and the original indicator.
type Replacement struct {
	Offset int // byte offset of the dummy word in the protected text
	IOC    IOC // the original indicator (offsets into the original text)
}

// Protect replaces every recognized IOC in text with DummyWord and returns
// the protected text plus the replacement record, in source order.
func Protect(text string) (string, []Replacement) {
	iocs := Extract(text)
	if len(iocs) == 0 {
		return text, nil
	}
	var b strings.Builder
	b.Grow(len(text))
	var recs []Replacement
	prev := 0
	for _, ic := range iocs {
		b.WriteString(text[prev:ic.Start])
		recs = append(recs, Replacement{Offset: b.Len(), IOC: ic})
		b.WriteString(DummyWord)
		prev = ic.End
	}
	b.WriteString(text[prev:])
	return b.String(), recs
}

// Restore undoes Protect, substituting original indicators back into the
// protected text (used in tests and by baselines that operate on raw
// strings rather than token streams).
func Restore(protected string, recs []Replacement) string {
	var b strings.Builder
	prev := 0
	for _, r := range recs {
		if r.Offset < prev || r.Offset+len(DummyWord) > len(protected) {
			continue
		}
		b.WriteString(protected[prev:r.Offset])
		b.WriteString(r.IOC.Text)
		prev = r.Offset + len(DummyWord)
	}
	b.WriteString(protected[prev:])
	return b.String()
}
