package fuzzy

import (
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/provenance"
	"threatraptor/internal/tbql"
)

// buildLog plants the tar->passwd->upload chain plus benign noise.
func buildLog(t testing.TB) *audit.Log {
	t.Helper()
	log := audit.NewLog()
	tar := log.Entities.Intern(audit.NewProcessEntity(100, "/bin/tar", "root", "root", ""))
	passwd := log.Entities.Intern(audit.NewFileEntity("/etc/passwd", "root", "root"))
	up := log.Entities.Intern(audit.NewFileEntity("/tmp/upload.tar", "root", "root"))
	curl := log.Entities.Intern(audit.NewProcessEntity(101, "/usr/bin/curl", "root", "root", ""))
	c2 := log.Entities.Intern(audit.NewNetConnEntity("10.0.0.5", 40000, "192.168.29.128", 443, "tcp"))
	vim := log.Entities.Intern(audit.NewProcessEntity(200, "/usr/bin/vim", "alice", "staff", ""))
	notes := log.Entities.Intern(audit.NewFileEntity("/home/alice/notes.txt", "alice", "staff"))

	log.Append(audit.Event{SubjectID: tar.ID, ObjectID: passwd.ID, Op: audit.OpRead, StartTime: 10, EndTime: 11})
	log.Append(audit.Event{SubjectID: tar.ID, ObjectID: up.ID, Op: audit.OpWrite, StartTime: 20, EndTime: 21})
	log.Append(audit.Event{SubjectID: curl.ID, ObjectID: up.ID, Op: audit.OpRead, StartTime: 30, EndTime: 31})
	log.Append(audit.Event{SubjectID: curl.ID, ObjectID: c2.ID, Op: audit.OpConnect, StartTime: 40, EndTime: 41})
	log.Append(audit.Event{SubjectID: vim.ID, ObjectID: notes.ID, Op: audit.OpWrite, StartTime: 50, EndTime: 51})
	return log
}

func queryGraph(t testing.TB, src string) *QueryGraph {
	t.Helper()
	q, err := tbql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := FromTBQL(a)
	if err != nil {
		t.Fatal(err)
	}
	return qg
}

const exactQuery = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
proc p1 write file f2["%/tmp/upload.tar%"] as e2
return distinct p1, f1, f2`

func TestExactAlignment(t *testing.T) {
	log := buildLog(t)
	prov := provenance.Build(log)
	qg := queryGraph(t, exactQuery)
	s := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	als := s.Search()
	if len(als) == 0 {
		t.Fatal("no alignment found")
	}
	al := als[0]
	if al.Score < 0.99 {
		t.Fatalf("score = %v, want ~1 for direct matches", al.Score)
	}
	// The aligned entities must be tar/passwd/upload.
	names := map[string]bool{}
	for _, id := range al.NodeMap {
		names[prov.DefaultName(id)] = true
	}
	for _, want := range []string{"/bin/tar", "/etc/passwd", "/tmp/upload.tar"} {
		if !names[want] {
			t.Errorf("missing aligned entity %q (got %v)", want, names)
		}
	}
	if len(al.Events) != 2 {
		t.Errorf("events = %v, want the 2 attack events", al.Events)
	}
}

func TestTypoToleranceInNodeAlignment(t *testing.T) {
	log := buildLog(t)
	prov := provenance.Build(log)
	// "pass_wd" is a typo for "passwd" — exact search would miss it.
	qg := queryGraph(t, `proc p1["%/bin/tar%"] read file f1["%/etc/pass_wd%"] as e1
return distinct p1, f1`)
	// The TBQL wildcard "_" is stripped with the "%"s, leaving a clean
	// fuzzy pattern. Inject the typo directly instead.
	qg.Nodes[1].Pattern = "/etc/pasword" // two edits from /etc/passwd
	s := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	als := s.Search()
	if len(als) == 0 {
		t.Fatal("typo in the IOC should still align via Levenshtein")
	}
}

func TestFlowPathSubstitutesForEdge(t *testing.T) {
	log := buildLog(t)
	prov := provenance.Build(log)
	// tar -> c2 has no direct event; the flow tar->upload->curl->c2 spans
	// 3 events. The fuzzy mode scores it by attacker influence.
	qg := queryGraph(t, `proc p1["%/bin/tar%"] connect ip i1["192.168.29.128"] as e1
return distinct p1, i1`)
	opts := DefaultOptions(ModeExhaustive)
	opts.ScoreThreshold = 0.3 // flow through one extra process scores 1/2
	s := NewSearcher(prov, qg, opts)
	als := s.Search()
	if len(als) == 0 {
		t.Fatal("flow path should substitute for the missing direct edge")
	}
	if als[0].Score >= 1 {
		t.Fatalf("indirect flow must score below a direct match: %v", als[0].Score)
	}
}

func TestFirstAcceptableStopsEarly(t *testing.T) {
	log := buildLog(t)
	prov := provenance.Build(log)
	qg := queryGraph(t, exactQuery)
	ex := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	exAls := ex.Search()
	fa := NewSearcher(prov, qg, DefaultOptions(ModeFirstAcceptable))
	faAls := fa.Search()
	if len(faAls) > 1 {
		t.Fatalf("first-acceptable must return at most one alignment, got %d", len(faAls))
	}
	if len(faAls) == 1 && len(exAls) >= 1 && fa.Iterations > ex.Iterations {
		t.Fatalf("Poirot mode must not iterate more than exhaustive: %d vs %d",
			fa.Iterations, ex.Iterations)
	}
}

func TestNoAlignmentBelowThreshold(t *testing.T) {
	log := buildLog(t)
	prov := provenance.Build(log)
	qg := queryGraph(t, `proc p1["%/bin/nonexistent%"] read file f1["%/no/file%"] as e1
return distinct p1, f1`)
	s := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	if als := s.Search(); len(als) != 0 {
		t.Fatalf("nothing should align: %+v", als)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("/etc/passwd", "/etc/passwd") != 1 {
		t.Error("identical strings")
	}
	if Similarity("/etc/passwd", "passwd") != 1 {
		t.Error("containment must score 1")
	}
	if s := Similarity("/etc/passwd", "/etc/pasword"); s < 0.6 || s >= 1 {
		t.Errorf("typo similarity = %v (must clear the default threshold)", s)
	}
	if s := Similarity("/bin/tar", "192.168.1.1"); s > 0.5 {
		t.Errorf("unrelated similarity = %v", s)
	}
	if Similarity("", "x") != 0 || Similarity("x", "") != 0 {
		t.Error("empty strings score 0")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"abc", "", 3}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2}, {"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestProvenanceGraph(t *testing.T) {
	log := buildLog(t)
	prov := provenance.Build(log)
	if prov.NumNodes() != 7 || prov.NumEdges() != 5 {
		t.Fatalf("graph = %d nodes %d edges", prov.NumNodes(), prov.NumEdges())
	}
	if prov.AvgDegree() <= 0 {
		t.Error("degree must be positive")
	}
	tar := log.Entities.LookupKey("p:/bin/tar#100")
	if tar == nil {
		t.Fatal("tar missing")
	}
	if len(prov.Fwd[tar.ID]) != 2 {
		t.Errorf("tar should initiate 2 events, got %d", len(prov.Fwd[tar.ID]))
	}
	if got := prov.DefaultName(tar.ID); got != "/bin/tar" {
		t.Errorf("DefaultName = %q", got)
	}
	if len(prov.Neighbors(tar.ID)) != 2 {
		t.Errorf("neighbors = %d", len(prov.Neighbors(tar.ID)))
	}
}
