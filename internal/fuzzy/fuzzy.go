// Package fuzzy implements ThreatRaptor's fuzzy search mode based on
// inexact graph pattern matching, extending Poirot (Milajerdi et al., CCS
// 2019). A TBQL query defines a query graph of entities and event
// patterns; node-level alignment matches IOC strings to stored entity
// attributes by Levenshtein similarity, and graph-level alignment matches
// the query subgraph against the system provenance graph, scoring
// candidate alignments by attacker influence (the number of compromised
// ancestor processes along connecting flows).
//
// Two search modes are provided: ModeFirstAcceptable reproduces Poirot
// (stop at the first alignment whose score passes the threshold), and
// ModeExhaustive is ThreatRaptor-Fuzzy (search all candidate alignments).
package fuzzy

import (
	"fmt"
	"sort"
	"strings"

	"threatraptor/internal/audit"
	"threatraptor/internal/provenance"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// Mode selects the search strategy.
type Mode uint8

// Search modes.
const (
	ModeExhaustive      Mode = iota // ThreatRaptor-Fuzzy
	ModeFirstAcceptable             // Poirot
)

// Options tunes the alignment search.
type Options struct {
	Mode Mode
	// NodeSimilarity is the minimum Levenshtein similarity for node-level
	// alignment (default 0.6). Exact containment always matches.
	NodeSimilarity float64
	// MaxPathLen bounds flow paths that substitute for a single query
	// edge (default 4 hops).
	MaxPathLen int
	// ScoreThreshold is the minimum graph alignment score Γ to accept
	// (default 0.7).
	ScoreThreshold float64
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions(mode Mode) Options {
	return Options{Mode: mode, NodeSimilarity: 0.6, MaxPathLen: 4, ScoreThreshold: 0.7}
}

// QueryNode is one entity of the query graph with its string constraint.
type QueryNode struct {
	ID      string
	Kind    audit.EntityKind
	Pattern string // constraint with wildcards stripped; "" = any
}

// QueryEdge is one event pattern between query nodes.
type QueryEdge struct {
	From, To int // indexes into Nodes
	Ops      map[string]bool
}

// QueryGraph is the subgraph of system events a TBQL query specifies.
type QueryGraph struct {
	Nodes []QueryNode
	Edges []QueryEdge
}

// FromTBQL converts an analyzed TBQL query into a query graph. Attribute
// filters contribute their string constants as node constraints.
func FromTBQL(a *tbql.Analyzed) (*QueryGraph, error) {
	qg := &QueryGraph{}
	index := make(map[string]int)
	for _, id := range a.EntityOrder {
		decl := a.Entities[id]
		index[id] = len(qg.Nodes)
		qg.Nodes = append(qg.Nodes, QueryNode{
			ID:      id,
			Kind:    decl.Type.Kind(),
			Pattern: constraintString(decl),
		})
	}
	for _, p := range a.Query.Patterns {
		var ops map[string]bool
		if p.Op != nil {
			ops = p.Op.Ops()
		}
		qg.Edges = append(qg.Edges, QueryEdge{
			From: index[p.Subject.ID],
			To:   index[p.Object.ID],
			Ops:  ops,
		})
	}
	if len(qg.Nodes) == 0 {
		return nil, fmt.Errorf("fuzzy: empty query graph")
	}
	return qg, nil
}

// constraintString extracts the first string literal of the entity filter
// with LIKE wildcards stripped.
func constraintString(decl *tbql.EntityDecl) string {
	if decl.Filter == nil {
		return ""
	}
	return strings.Trim(firstStringLit(decl.Filter), "%_")
}

func firstStringLit(e relational.Expr) string {
	switch v := e.(type) {
	case relational.Lit:
		if v.V.K == relational.KindString {
			return v.V.S
		}
	case relational.BinOp:
		if s := firstStringLit(v.L); s != "" {
			return s
		}
		return firstStringLit(v.R)
	case relational.UnOp:
		return firstStringLit(v.E)
	case relational.InList:
		if s := firstStringLit(v.E); s != "" {
			return s
		}
		for _, x := range v.Vals {
			if s := firstStringLit(x); s != "" {
				return s
			}
		}
	}
	return ""
}

// Alignment is one graph alignment: query node index -> entity ID (0 when
// unaligned), with its Γ score.
type Alignment struct {
	NodeMap []int64
	Score   float64
	// Events lists the audit event IDs covered by the aligned flows.
	Events []int64
}

// Searcher runs alignment search over one provenance graph.
type Searcher struct {
	Prov *provenance.Graph
	QG   *QueryGraph
	Opts Options
	// Candidates[i] lists entity IDs aligned to query node i.
	Candidates [][]int64
	// Iterations counts seed alignments explored (profiling, Table IX
	// discussion).
	Iterations int
}

// NewSearcher computes node-level alignment (candidate sets) eagerly.
func NewSearcher(prov *provenance.Graph, qg *QueryGraph, opts Options) *Searcher {
	if opts.NodeSimilarity == 0 {
		opts.NodeSimilarity = 0.6
	}
	if opts.MaxPathLen == 0 {
		opts.MaxPathLen = 4
	}
	if opts.ScoreThreshold == 0 {
		opts.ScoreThreshold = 0.7
	}
	s := &Searcher{Prov: prov, QG: qg, Opts: opts}
	s.Candidates = make([][]int64, len(qg.Nodes))
	for i, qn := range qg.Nodes {
		s.Candidates[i] = s.nodeCandidates(qn)
	}
	return s
}

// nodeCandidates performs node-level alignment for one query node.
func (s *Searcher) nodeCandidates(qn QueryNode) []int64 {
	var out []int64
	for _, e := range s.Prov.Entities() {
		if qn.Kind != audit.EntityInvalid && e.Kind != qn.Kind {
			continue
		}
		if qn.Pattern == "" {
			out = append(out, e.ID)
			continue
		}
		attr, _ := e.Attr(audit.DefaultAttr(e.Kind))
		if Similarity(attr, qn.Pattern) >= s.Opts.NodeSimilarity {
			out = append(out, e.ID)
		}
	}
	return out
}

// Search runs the graph alignment. In exhaustive mode it returns every
// accepted alignment; in first-acceptable mode at most one.
func (s *Searcher) Search() []Alignment {
	seed := s.seedNode()
	if seed < 0 {
		return nil
	}
	var out []Alignment
	for _, cand := range s.Candidates[seed] {
		s.Iterations++
		al := s.expand(seed, cand)
		if al.Score >= s.Opts.ScoreThreshold {
			out = append(out, al)
			if s.Opts.Mode == ModeFirstAcceptable {
				return out
			}
		}
	}
	return out
}

// seedNode picks the query node with the fewest (but nonzero) candidates.
func (s *Searcher) seedNode() int {
	best, bestN := -1, 0
	for i, c := range s.Candidates {
		if len(c) == 0 {
			continue
		}
		if best < 0 || len(c) < bestN {
			best, bestN = i, len(c)
		}
	}
	return best
}

// expand grows an alignment from a seed assignment by BFS over the query
// graph, greedily picking for each query edge the reachable candidate with
// the highest influence score. Query graphs can be disconnected (distinct
// attack stages whose IOCs never co-occur in a sentence); each remaining
// component is expanded from its own local seed.
func (s *Searcher) expand(seed int, seedEntity int64) Alignment {
	n := len(s.QG.Nodes)
	al := Alignment{NodeMap: make([]int64, n)}
	al.NodeMap[seed] = seedEntity

	visited := make([]bool, n)
	var total float64
	eventSet := make(map[int64]bool)

	total += s.expandComponent(seed, &al, visited, eventSet)
	for {
		next := s.componentSeed(visited)
		if next < 0 {
			break
		}
		// Align the local seed to its best candidate by trying each and
		// keeping the highest-scoring sub-expansion.
		bestScore := -1.0
		var bestAl Alignment
		var bestVisited []bool
		bestEvents := map[int64]bool{}
		for _, cand := range s.Candidates[next] {
			trial := Alignment{NodeMap: append([]int64(nil), al.NodeMap...)}
			trial.NodeMap[next] = cand
			tv := append([]bool(nil), visited...)
			te := map[int64]bool{}
			sc := s.expandComponent(next, &trial, tv, te)
			if sc > bestScore {
				bestScore, bestAl, bestVisited, bestEvents = sc, trial, tv, te
			}
		}
		if bestScore < 0 {
			// No candidates: mark the component visited and move on.
			s.markComponent(next, visited)
			continue
		}
		al.NodeMap = bestAl.NodeMap
		visited = bestVisited
		total += bestScore
		for ev := range bestEvents {
			eventSet[ev] = true
		}
	}

	if len(s.QG.Edges) > 0 {
		al.Score = total / float64(len(s.QG.Edges))
	} else if len(s.QG.Nodes) > 0 {
		al.Score = 1
	}
	for ev := range eventSet {
		al.Events = append(al.Events, ev)
	}
	sort.Slice(al.Events, func(a, b int) bool { return al.Events[a] < al.Events[b] })
	return al
}

// expandComponent walks the query-graph component containing start (whose
// node must already be aligned in al) and returns the sum of edge scores.
func (s *Searcher) expandComponent(start int, al *Alignment, visited []bool, eventSet map[int64]bool) float64 {
	type qedge struct {
		idx     int
		fromIdx int
		toIdx   int
		forward bool
	}
	visited[start] = true
	queue := []int{start}
	var order []qedge
	edgeSeen := make([]bool, len(s.QG.Edges))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for ei, e := range s.QG.Edges {
			if edgeSeen[ei] {
				continue
			}
			switch u {
			case e.From:
				edgeSeen[ei] = true
				order = append(order, qedge{ei, e.From, e.To, true})
				if !visited[e.To] {
					visited[e.To] = true
					queue = append(queue, e.To)
				}
			case e.To:
				edgeSeen[ei] = true
				order = append(order, qedge{ei, e.To, e.From, false})
				if !visited[e.From] {
					visited[e.From] = true
					queue = append(queue, e.From)
				}
			}
		}
	}

	var total float64
	for _, qe := range order {
		// Network connection nodes are not pinned on either side: the same
		// query IP node legitimately aligns to multiple 5-tuple connection
		// entities (Poirot's k:1 node alignment).
		fromEnts := []int64{al.NodeMap[qe.fromIdx]}
		if s.QG.Nodes[qe.fromIdx].Kind == audit.EntityNetConn {
			fromEnts = s.Candidates[qe.fromIdx]
		}
		fixed := al.NodeMap[qe.toIdx]
		if s.QG.Nodes[qe.toIdx].Kind == audit.EntityNetConn {
			fixed = 0
		}
		edge := s.QG.Edges[qe.idx]
		var bestScore, bestSim float64
		var bestEnt int64
		var bestEvs []int64
		for _, fromEnt := range fromEnts {
			if fromEnt == 0 {
				continue // upstream alignment failed
			}
			score, ent, evs, sim := s.bestFlow(fromEnt, qe.toIdx, edge, qe.forward, fixed)
			if score > bestScore || (score == bestScore && sim > bestSim) {
				bestScore, bestSim, bestEnt, bestEvs = score, sim, ent, evs
			}
		}
		if bestEnt != 0 && al.NodeMap[qe.toIdx] == 0 {
			al.NodeMap[qe.toIdx] = bestEnt
		}
		total += bestScore
		for _, ev := range bestEvs {
			eventSet[ev] = true
		}
	}
	return total
}

// componentSeed returns an unvisited query node with the fewest nonzero
// candidates, or -1 when every node is visited.
func (s *Searcher) componentSeed(visited []bool) int {
	best, bestN := -1, 0
	for i, c := range s.Candidates {
		if visited[i] || len(c) == 0 {
			continue
		}
		if best < 0 || len(c) < bestN {
			best, bestN = i, len(c)
		}
	}
	if best >= 0 {
		return best
	}
	for i := range s.Candidates {
		if !visited[i] {
			return i
		}
	}
	return -1
}

// markComponent marks start's whole component visited (used when it has no
// candidates at all).
func (s *Searcher) markComponent(start int, visited []bool) {
	visited[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range s.QG.Edges {
			for _, pair := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
				if pair[0] == u && !visited[pair[1]] {
					visited[pair[1]] = true
					queue = append(queue, pair[1])
				}
			}
		}
	}
}

// bestFlow finds the best-scoring flow realizing one query edge from one
// source entity toward a candidate of the target query node. A direct
// event with a matching operation scores 1; otherwise a flow path of up to
// MaxPathLen events scores 1/(distinct processes on the path). fixed pins
// the target entity when it is already aligned. The returned sim is the
// matched target's name similarity (2 for an exact match), used by the
// caller to choose among alternative source entities.
func (s *Searcher) bestFlow(from int64, toIdx int, edge QueryEdge, forward bool, fixed int64) (float64, int64, []int64, float64) {
	targets := make(map[int64]bool)
	if fixed != 0 {
		targets[fixed] = true
	} else {
		for _, c := range s.Candidates[toIdx] {
			targets[c] = true
		}
	}
	if len(targets) == 0 {
		return 0, 0, nil, 0
	}

	// Direct hit first: among all direct events with a matching operation,
	// prefer the target whose name best matches the query node's pattern
	// (an exact name match beats containment, so a fork artifact sharing
	// the parent's image does not shadow the real child process).
	var direct []provenance.EdgeRef
	if forward {
		direct = s.Prov.Fwd[from]
	} else {
		direct = s.Prov.Bwd[from]
	}
	pattern := s.QG.Nodes[toIdx].Pattern
	var directEnt, directEv int64
	directSim := -1.0
	for _, ref := range direct {
		ev := s.Prov.Event(ref.Event)
		if !targets[ref.Other] || (edge.Ops != nil && !edge.Ops[ev.Op.String()]) {
			continue
		}
		sim := 1.0
		if pattern != "" {
			name := s.Prov.DefaultName(ref.Other)
			if strings.EqualFold(name, pattern) {
				sim = 2
			} else {
				sim = Similarity(name, pattern)
			}
		}
		if sim > directSim {
			directSim, directEnt, directEv = sim, ref.Other, ev.ID
		}
	}
	if directEnt != 0 {
		return 1, directEnt, []int64{directEv}, directSim
	}

	// BFS for a flow path within MaxPathLen events, tracking the events
	// and the number of distinct processes traversed (attacker influence).
	// Candidate targets are ranked first by how well their name matches
	// the query node's pattern, then by influence score, so a nearby
	// vaguely-matching node never shadows the exactly-named one further
	// down the flow.
	type state struct {
		ent    int64
		depth  int
		events []int64
		procs  int
	}
	bestScore, bestSim, bestEnt := 0.0, -1.0, int64(0)
	var bestEvents []int64
	seen := map[int64]bool{from: true}
	queue := []state{{ent: from}}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if st.depth >= s.Opts.MaxPathLen {
			continue
		}
		for _, ref := range s.Prov.Neighbors(st.ent) {
			if seen[ref.Other] {
				continue
			}
			seen[ref.Other] = true
			ev := s.Prov.Event(ref.Event)
			next := state{
				ent:    ref.Other,
				depth:  st.depth + 1,
				events: append(append([]int64(nil), st.events...), ev.ID),
				procs:  st.procs,
			}
			if e := s.Prov.Entity(ref.Other); e != nil && e.Kind == audit.EntityProcess {
				next.procs++
			}
			if targets[ref.Other] {
				denom := next.procs
				if denom < 1 {
					denom = 1
				}
				score := 1 / float64(denom+1)
				sim := 1.0
				if pattern != "" {
					name := s.Prov.DefaultName(ref.Other)
					if strings.EqualFold(name, pattern) {
						sim = 2
					} else {
						sim = Similarity(name, pattern)
					}
				}
				if sim > bestSim || (sim == bestSim && score > bestScore) {
					bestSim, bestScore, bestEnt, bestEvents = sim, score, ref.Other, next.events
				}
			}
			queue = append(queue, next)
		}
	}
	return bestScore, bestEnt, bestEvents, bestSim
}

// Similarity is the node-level alignment metric: 1 for containment
// (either direction), otherwise a normalized Levenshtein similarity over
// the path basenames. Comparing basenames keeps long shared directory
// prefixes ("/usr/bin/...") from making every system binary look alike.
func Similarity(attr, pattern string) float64 {
	a, p := strings.ToLower(attr), strings.ToLower(pattern)
	if a == "" || p == "" {
		return 0
	}
	if strings.Contains(a, p) || strings.Contains(p, a) {
		return 1
	}
	// Basename similarity gates the match; full-path similarity can then
	// lift it (a typo inside the basename still leaves the directory part
	// nearly identical). Averaging keeps long shared directory prefixes
	// ("/usr/bin/...") from making every system binary look alike.
	base := levSim(baseName(a), baseName(p))
	full := levSim(a, p)
	return (base + full) / 2
}

func levSim(a, b string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	d := Levenshtein(a, b)
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	return 1 - float64(d)/float64(max)
}

func baseName(s string) string {
	if i := strings.LastIndexAny(s, "/\\"); i >= 0 && i+1 < len(s) {
		return s[i+1:]
	}
	return s
}

// Levenshtein computes the edit distance between two strings.
func Levenshtein(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
