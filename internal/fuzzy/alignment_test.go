package fuzzy

import (
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/provenance"
)

// multiConnLog models the same C2 address reached over several distinct
// 5-tuple connections (different source ports), plus a process chain where
// a fork artifact shares the parent's image.
func multiConnLog(t testing.TB) *audit.Log {
	t.Helper()
	log := audit.NewLog()
	stage1 := log.Entities.Intern(audit.NewProcessEntity(1, "/tmp/stage1", "root", "root", ""))
	stage2 := log.Entities.Intern(audit.NewProcessEntity(2, "/tmp/stage2", "root", "root", ""))
	forkChild := log.Entities.Intern(audit.NewProcessEntity(2, "/tmp/stage1", "root", "root", ""))
	c2a := log.Entities.Intern(audit.NewNetConnEntity("10.0.0.1", 4000, "6.6.6.6", 443, "tcp"))
	c2b := log.Entities.Intern(audit.NewNetConnEntity("10.0.0.1", 4001, "6.6.6.6", 443, "tcp"))

	// stage1 connects on one socket; fork; execve to stage2; stage2
	// connects on another socket to the same address.
	log.Append(audit.Event{SubjectID: stage1.ID, ObjectID: c2a.ID, Op: audit.OpConnect, StartTime: 10, EndTime: 11})
	log.Append(audit.Event{SubjectID: stage1.ID, ObjectID: forkChild.ID, Op: audit.OpStart, StartTime: 20, EndTime: 21})
	log.Append(audit.Event{SubjectID: stage1.ID, ObjectID: stage2.ID, Op: audit.OpStart, StartTime: 22, EndTime: 23})
	log.Append(audit.Event{SubjectID: stage2.ID, ObjectID: c2b.ID, Op: audit.OpConnect, StartTime: 30, EndTime: 31})
	return log
}

// TestNetConnNotPinned: one query IP node must align to both 5-tuple
// connection entities of the same destination address.
func TestNetConnNotPinned(t *testing.T) {
	log := multiConnLog(t)
	prov := provenance.Build(log)
	qg := queryGraph(t, `proc p1["%stage1%"] connect ip i1["6.6.6.6"] as e1
proc p2["%stage2%"] connect ip i1 as e2
return distinct p1, p2, i1`)
	s := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	als := s.Search()
	if len(als) == 0 {
		t.Fatal("both connect edges reach the same address via different sockets; the IP node must not pin")
	}
	if als[0].Score < 0.99 {
		t.Fatalf("both edges are direct hits: score = %v", als[0].Score)
	}
	// Both connect events are covered.
	if len(als[0].Events) < 2 {
		t.Fatalf("events = %v, want both connects", als[0].Events)
	}
}

// TestForkArtifactDoesNotShadowChild: the fork event's object shares the
// parent's image name; the exact-named execve child must win alignment.
func TestForkArtifactDoesNotShadowChild(t *testing.T) {
	log := multiConnLog(t)
	prov := provenance.Build(log)
	qg := queryGraph(t, `proc p1["%/tmp/stage1%"] start proc p2["%/tmp/stage2%"] as e1
return distinct p1, p2`)
	s := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	als := s.Search()
	if len(als) == 0 {
		t.Fatal("no alignment")
	}
	for i, qn := range qg.Nodes {
		if qn.ID == "p2" {
			if got := prov.DefaultName(als[0].NodeMap[i]); got != "/tmp/stage2" {
				t.Fatalf("p2 aligned to %q, want the execve child", got)
			}
		}
	}
}

// TestDisconnectedComponentsExpand: a query graph with two unconnected
// stages aligns both.
func TestDisconnectedComponentsExpand(t *testing.T) {
	log := audit.NewLog()
	a := log.Entities.Intern(audit.NewProcessEntity(1, "/bin/a", "", "", ""))
	fa := log.Entities.Intern(audit.NewFileEntity("/tmp/fa", "", ""))
	b := log.Entities.Intern(audit.NewProcessEntity(2, "/bin/b", "", "", ""))
	fb := log.Entities.Intern(audit.NewFileEntity("/tmp/fb", "", ""))
	log.Append(audit.Event{SubjectID: a.ID, ObjectID: fa.ID, Op: audit.OpRead, StartTime: 1, EndTime: 2})
	log.Append(audit.Event{SubjectID: b.ID, ObjectID: fb.ID, Op: audit.OpWrite, StartTime: 3, EndTime: 4})
	prov := provenance.Build(log)
	qg := queryGraph(t, `proc p1["%/bin/a%"] read file f1["%/tmp/fa%"] as e1
proc p2["%/bin/b%"] write file f2["%/tmp/fb%"] as e2
return distinct p1, p2`)
	s := NewSearcher(prov, qg, DefaultOptions(ModeExhaustive))
	als := s.Search()
	if len(als) == 0 {
		t.Fatal("disconnected query components must both expand")
	}
	if als[0].Score < 0.99 {
		t.Fatalf("score = %v, want ~1 (both edges direct)", als[0].Score)
	}
	named := map[string]string{}
	for i, qn := range qg.Nodes {
		if als[0].NodeMap[i] != 0 {
			named[qn.ID] = prov.DefaultName(als[0].NodeMap[i])
		}
	}
	if named["p1"] != "/bin/a" || named["p2"] != "/bin/b" {
		t.Fatalf("alignment = %v", named)
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"/usr/bin/tar":   "tar",
		"tar":            "tar",
		`C:\Users\x.exe`: "x.exe",
		"/ends/with/":    "/ends/with/",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
