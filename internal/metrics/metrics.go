// Package metrics is a minimal, dependency-free instrumentation library
// with Prometheus text exposition. It exists so the daemon
// (cmd/threatraptord) can export operational counters, gauges, and
// latency histograms without pulling a client library into the build:
// the whole exposition surface is the subset of the Prometheus text
// format (version 0.0.4) that counters, gauges, and cumulative
// histograms need.
//
// A Registry owns an ordered set of named metrics and renders them all
// with WritePrometheus (or serves them via Handler). Counters and gauges
// are single atomics; histograms use fixed upper-bound buckets with
// atomic per-bucket counts, so Observe on the hunt hot path costs a
// binary search plus two atomic adds. GaugeFunc covers values that are
// cheaper to read on scrape than to maintain (queue depth, snapshot
// age).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative histogram over fixed upper-bound buckets
// (Prometheus semantics: bucket le="x" counts observations <= x, and an
// implicit +Inf bucket counts everything).
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond hunts to multi-second overload tails.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LabeledValue is one sample of a labeled gauge: Labels is the rendered
// label set without braces (e.g. `shard="0"`), Value the sample.
type LabeledValue struct {
	Labels string
	Value  float64
}

// metric is one registered, renderable metric.
type metric struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	labeledFn func() []LabeledValue
	hist      *Histogram
}

// Registry holds named metrics and renders them in registration order.
// The zero value is unusable; use NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// NewLabeledGaugeFunc registers a gauge that renders one sample per
// LabeledValue returned by fn at scrape time (one HELP/TYPE header, one
// `name{labels} value` line each). fn must be safe for concurrent use.
// Use it for families whose cardinality is only known at runtime, like
// per-shard stats.
func (r *Registry) NewLabeledGaugeFunc(name, help string, fn func() []LabeledValue) {
	r.register(&metric{name: name, help: help, typ: "gauge", labeledFn: fn})
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (nil: DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.gauge.Value())
		case m.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
		case m.labeledFn != nil:
			for _, lv := range m.labeledFn() {
				fmt.Fprintf(&b, "%s{%s} %s\n", m.name, lv.Labels, formatFloat(lv.Value))
			}
		case m.hist != nil:
			var cum uint64
			for i, bound := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.hist.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(m.hist.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
