package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("tr_appends_total", "Sealed batches appended.")
	g := r.NewGauge("tr_queue_depth", "Hunts in flight.")
	r.NewGaugeFunc("tr_snapshot_age_seconds", "Age of the published snapshot.", func() float64 { return 1.5 })
	h := r.NewHistogram("tr_hunt_seconds", "Hunt latency.", []float64{0.1, 1})

	c.Add(3)
	g.Set(2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP tr_appends_total Sealed batches appended.",
		"# TYPE tr_appends_total counter",
		"tr_appends_total 3",
		"# TYPE tr_queue_depth gauge",
		"tr_queue_depth 2",
		"tr_snapshot_age_seconds 1.5",
		"# TYPE tr_hunt_seconds histogram",
		`tr_hunt_seconds_bucket{le="0.1"} 1`,
		`tr_hunt_seconds_bucket{le="1"} 2`,
		`tr_hunt_seconds_bucket{le="+Inf"} 3`,
		"tr_hunt_seconds_sum 5.55",
		"tr_hunt_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundary(t *testing.T) {
	// Prometheus buckets are <= upper bound: an observation exactly at a
	// bound lands in that bucket.
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2})
	h.Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("observation at bound not counted in its bucket:\n%s", b.String())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x", "")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", nil)
	c := r.NewCounter("c", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("lost updates: hist %d counter %d", h.Count(), c.Value())
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Fatalf("sum = %v, want ~8", got)
	}
}
