package audit

import (
	"strings"
	"testing"
)

func TestParserBuildsEventsAndInternsEntities(t *testing.T) {
	p := NewParser()
	recs := []Record{
		{Time: 10, Call: SysRead, PID: 101, Exe: "/bin/tar", User: "root", FD: FDFile, Path: "/etc/passwd", Bytes: 100},
		{Time: 20, Call: SysRead, PID: 101, Exe: "/bin/tar", User: "root", FD: FDFile, Path: "/etc/passwd", Bytes: 100},
		{Time: 30, Call: SysWrite, PID: 101, Exe: "/bin/tar", User: "root", FD: FDFile, Path: "/tmp/upload.tar", Bytes: 50},
		{Time: 40, Call: SysConnect, PID: 102, Exe: "/usr/bin/curl", FD: FDIPv4, SrcIP: "10.0.0.5", SrcPort: 40000, DstIP: "1.2.3.4", DstPort: 443, Proto: "tcp"},
	}
	for i := range recs {
		if err := p.Feed(&recs[i]); err != nil {
			t.Fatalf("Feed #%d: %v", i, err)
		}
	}
	log := p.Log()
	if got := len(log.Events); got != 4 {
		t.Fatalf("events = %d, want 4", got)
	}
	// /bin/tar#101 appears 3 times but must be interned once.
	// Entities: tar proc, passwd, upload.tar, curl proc, netconn = 5.
	if got := log.Entities.Len(); got != 5 {
		t.Fatalf("entities = %d, want 5", got)
	}
	if log.Events[0].SubjectID != log.Events[1].SubjectID {
		t.Error("same process must resolve to the same subject entity")
	}
	if log.Events[0].ObjectID != log.Events[1].ObjectID {
		t.Error("same file must resolve to the same object entity")
	}
	if log.Category(&log.Events[0]) != CatProcessToFile {
		t.Error("file read should be a ProcessToFile event")
	}
	if log.Category(&log.Events[3]) != CatProcessToNetwork {
		t.Error("connect should be a ProcessToNetwork event")
	}
	if log.Events[3].Op != OpConnect {
		t.Errorf("connect op = %v", log.Events[3].Op)
	}
}

func TestParserSkipsUnmonitoredSyscalls(t *testing.T) {
	p := NewParser()
	r := Record{Time: 1, Call: Syscall("mmap"), PID: 1, Exe: "/bin/x", FD: FDFile, Path: "/y"}
	if err := p.Feed(&r); err != nil {
		t.Fatalf("unmonitored syscalls must be skipped, not errors: %v", err)
	}
	if p.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", p.Skipped())
	}
	if len(p.Log().Events) != 0 {
		t.Fatal("skipped record must not produce an event")
	}
}

func TestParserProcessEvents(t *testing.T) {
	p := NewParser()
	recs := []Record{
		{Time: 1, Call: SysFork, PID: 100, Exe: "/bin/bash", FD: FDProc, ChildPID: 101, ChildExe: "/bin/bash"},
		{Time: 2, Call: SysExecve, PID: 100, Exe: "/bin/bash", FD: FDProc, ChildPID: 101, ChildExe: "/bin/tar", ChildCMD: "tar cf x"},
		{Time: 3, Call: SysExit, PID: 101, Exe: "/bin/tar", FD: FDProc},
	}
	for i := range recs {
		if err := p.Feed(&recs[i]); err != nil {
			t.Fatalf("Feed #%d: %v", i, err)
		}
	}
	log := p.Log()
	if len(log.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(log.Events))
	}
	if log.Events[0].Op != OpStart || log.Events[1].Op != OpStart {
		t.Error("fork/execve must map to start")
	}
	if log.Events[2].Op != OpEnd {
		t.Error("exit must map to end")
	}
	// exit's object is the exiting process itself.
	obj := log.Object(&log.Events[2])
	if obj.Proc == nil || obj.Proc.PID != 101 || obj.Proc.ExeName != "/bin/tar" {
		t.Errorf("exit object = %+v", obj)
	}
}

func TestParseStream(t *testing.T) {
	input := strings.Join([]string{
		"# audit log sample",
		"",
		"ts=100 call=read pid=5 exe=/bin/cat fd=file path=/etc/hosts bytes=64",
		"ts=200 call=sendto pid=5 exe=/bin/cat fd=ipv4 src=10.0.0.1:999 dst=8.8.8.8:53 proto=udp bytes=32",
	}, "\n")
	log, err := ParseStream(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(log.Events))
	}
	if log.Events[1].Op != OpSend {
		t.Errorf("op = %v, want send", log.Events[1].Op)
	}
}

func TestParseStreamReportsLineNumbers(t *testing.T) {
	input := "ts=1 call=read pid=1 exe=/bin/x fd=file path=/a\nts=borken call=read pid=1 exe=/x fd=file path=/a\n"
	_, err := ParseStream(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestParserMissingFields(t *testing.T) {
	p := NewParser()
	if err := p.Feed(&Record{Time: 1, Call: SysRead, PID: 1, Exe: "/x", FD: FDFile}); err == nil {
		t.Error("file record without path must fail")
	}
	if err := p.Feed(&Record{Time: 1, Call: SysFork, PID: 1, Exe: "/x", FD: FDProc}); err == nil {
		t.Error("fork record without child pid must fail")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	gen := func() []Record {
		s := NewSimulator(42, 1_700_000_000_000_000)
		s.GenerateBenign(BenignConfig{Users: 5, Actions: 50})
		return s.Records()
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic record count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSimulatorSplitsLargeTransfers(t *testing.T) {
	s := NewSimulator(1, 0)
	p := Proc{PID: 10, Exe: "/bin/tar", User: "root"}
	s.ReadFile(p, "/etc/passwd", 10000) // 4096+4096+1808 => 3 records
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (chunked)", len(recs))
	}
	var total int64
	last := int64(-1)
	for _, r := range recs {
		total += r.Bytes
		if r.Time <= last {
			t.Error("timestamps must be strictly increasing")
		}
		last = r.Time
		if r.Call != SysRead || r.Path != "/etc/passwd" {
			t.Errorf("unexpected record %+v", r)
		}
	}
	if total != 10000 {
		t.Fatalf("total bytes = %d, want 10000", total)
	}
}

func TestSimulatorRecordsParse(t *testing.T) {
	s := NewSimulator(7, 1_700_000_000_000_000)
	s.GenerateBenign(BenignConfig{Users: 3, Actions: 100})
	p := NewParser()
	for _, r := range s.Records() {
		line := r.Format()
		if err := p.FeedLine(line); err != nil {
			t.Fatalf("simulator output must parse: %q: %v", line, err)
		}
	}
	if len(p.Log().Events) == 0 {
		t.Fatal("no events parsed")
	}
	if p.Skipped() != 0 {
		t.Fatalf("simulator must only emit monitored syscalls, skipped=%d", p.Skipped())
	}
}

// TestFeedChunkPartialLines verifies that FeedChunk parses only complete
// lines and buffers a trailing partial line across arbitrary chunk splits,
// which is the invariant live tailing depends on.
func TestFeedChunkPartialLines(t *testing.T) {
	recs := []Record{
		{Time: 10, Call: SysRead, PID: 101, Exe: "/bin/tar", User: "root", FD: FDFile, Path: "/etc/passwd", Bytes: 100},
		{Time: 20, Call: SysWrite, PID: 101, Exe: "/bin/tar", User: "root", FD: FDFile, Path: "/tmp/upload.tar", Bytes: 50},
		{Time: 30, Call: SysConnect, PID: 102, Exe: "/usr/bin/curl", FD: FDIPv4, SrcIP: "10.0.0.5", SrcPort: 40000, DstIP: "1.2.3.4", DstPort: 443, Proto: "tcp"},
	}
	var sb strings.Builder
	if err := WriteRecords(&sb, recs); err != nil {
		t.Fatal(err)
	}
	wire := sb.String()

	// Every possible split point of the wire text, including mid-line.
	for cut := 0; cut <= len(wire); cut++ {
		p := NewParser()
		if err := p.FeedChunk([]byte(wire[:cut])); err != nil {
			t.Fatalf("cut %d first chunk: %v", cut, err)
		}
		if err := p.FeedChunk([]byte(wire[cut:])); err != nil {
			t.Fatalf("cut %d second chunk: %v", cut, err)
		}
		if got := len(p.Log().Events); got != len(recs) {
			t.Fatalf("cut %d: events = %d, want %d", cut, got, len(recs))
		}
		if p.PartialLen() != 0 {
			t.Fatalf("cut %d: %d partial bytes left after final newline", cut, p.PartialLen())
		}
	}
}

// TestFeedChunkBuffersTrailingPartialLine is the tail-of-a-live-file case:
// a chunk ending mid-record must not error, and FlushChunk completes it.
func TestFeedChunkBuffersTrailingPartialLine(t *testing.T) {
	full := (&Record{Time: 10, Call: SysRead, PID: 1, Exe: "/bin/cat", FD: FDFile, Path: "/etc/hosts", Bytes: 9}).Format()
	half := full[:len(full)/2]

	p := NewParser()
	if err := p.FeedChunk([]byte(half)); err != nil {
		t.Fatalf("partial line must be buffered, not parsed: %v", err)
	}
	if len(p.Log().Events) != 0 {
		t.Fatal("no event should be produced from a partial line")
	}
	if p.PartialLen() != len(half) {
		t.Fatalf("PartialLen = %d, want %d", p.PartialLen(), len(half))
	}
	// The rest of the line arrives, newline-terminated.
	if err := p.FeedChunk([]byte(full[len(half):] + "\n")); err != nil {
		t.Fatal(err)
	}
	if len(p.Log().Events) != 1 {
		t.Fatalf("events = %d, want 1", len(p.Log().Events))
	}

	// A final unterminated line is parsed by FlushChunk.
	if err := p.FeedChunk([]byte(full)); err != nil {
		t.Fatal(err)
	}
	if len(p.Log().Events) != 1 {
		t.Fatal("unterminated line must wait for FlushChunk")
	}
	if err := p.FlushChunk(); err != nil {
		t.Fatal(err)
	}
	if len(p.Log().Events) != 2 {
		t.Fatalf("events after flush = %d, want 2", len(p.Log().Events))
	}
}

func TestEntityTableSince(t *testing.T) {
	tab := NewEntityTable()
	a := tab.Intern(NewFileEntity("/a", "u", "g"))
	mark := tab.MaxID()
	if mark != a.ID {
		t.Fatalf("MaxID = %d, want %d", mark, a.ID)
	}
	b := tab.Intern(NewFileEntity("/b", "u", "g"))
	c := tab.Intern(NewProcessEntity(1, "/bin/sh", "u", "g", "sh"))
	tab.Intern(NewFileEntity("/a", "u", "g")) // re-intern: no new entity
	got := tab.Since(mark)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Since(%d) = %v", mark, got)
	}
	if len(tab.Since(tab.MaxID())) != 0 {
		t.Fatal("Since(MaxID) must be empty")
	}
}

// TestFeedChunkSurvivesMalformedLine: one bad record must not eat the
// rest of the chunk or break line framing — live tails keep going.
func TestFeedChunkSurvivesMalformedLine(t *testing.T) {
	good := func(ts int64, path string) string {
		return (&Record{Time: ts, Call: SysRead, PID: 1, Exe: "/bin/cat", FD: FDFile, Path: path, Bytes: 1}).Format()
	}
	chunk := good(1, "/a") + "\nts=notanumber call=read pid=1 exe=/bin/cat fd=file path=/bad\n" +
		good(2, "/b") + "\n" + good(3, "/c")[:10] // trailing partial
	p := NewParser()
	err := p.FeedChunk([]byte(chunk))
	if err == nil {
		t.Fatal("malformed line must surface an error")
	}
	if got := len(p.Log().Events); got != 2 {
		t.Fatalf("events = %d, want 2 (lines after the bad one must still parse)", got)
	}
	if p.PartialLen() != 10 {
		t.Fatalf("PartialLen = %d, want 10 (framing must survive the error)", p.PartialLen())
	}
	// The rest of the split line still completes cleanly.
	if err := p.FeedChunk([]byte(good(3, "/c")[10:] + "\n")); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Log().Events); got != 3 {
		t.Fatalf("events = %d, want 3", got)
	}
}
