package audit

import (
	"fmt"
	"math/rand"
)

// Simulator is a deterministic stand-in for a kernel auditing framework
// (Sysdig / Linux Audit / ETW). It emits raw Records for high-level system
// actions. Like a real kernel, it splits a single logical read/write task
// into multiple syscall records of partial data (the behaviour that
// motivates ThreatRaptor's data reduction, Section III-B), and it assigns
// monotonically increasing timestamps with configurable jitter.
//
// All randomness comes from the seeded source, so a given action sequence
// always yields the same records.
type Simulator struct {
	rng     *rand.Rand
	now     int64 // current clock, µs since epoch
	records []Record

	// ChunkSize is the number of bytes the kernel moves per read/write
	// syscall; a logical transfer of N bytes becomes ceil(N/ChunkSize)
	// records. Default 4096.
	ChunkSize int64
	// SyscallGapUS is the mean gap between consecutive syscalls of one
	// logical task, in µs. Default 120µs.
	SyscallGapUS int64
}

// NewSimulator returns a simulator whose clock starts at startUS
// (µs since epoch) and whose randomness is derived from seed.
func NewSimulator(seed int64, startUS int64) *Simulator {
	return &Simulator{
		rng:          rand.New(rand.NewSource(seed)),
		now:          startUS,
		ChunkSize:    4096,
		SyscallGapUS: 120,
	}
}

// Records returns the emitted records in order.
func (s *Simulator) Records() []Record { return s.records }

// Now returns the simulator clock in µs since epoch.
func (s *Simulator) Now() int64 { return s.now }

// Advance moves the clock forward by us microseconds.
func (s *Simulator) Advance(us int64) { s.now += us }

// step advances the clock by roughly SyscallGapUS with ±50% jitter.
func (s *Simulator) step() {
	jitter := s.SyscallGapUS/2 + s.rng.Int63n(s.SyscallGapUS+1)
	s.now += jitter
}

func (s *Simulator) emit(r Record) {
	r.Time = s.now
	s.records = append(s.records, r)
	s.step()
}

// Proc describes the acting process for simulated actions. Host is the
// machine the process runs on; empty emits the historical single-host
// wire format.
type Proc struct {
	PID   int
	Exe   string
	User  string
	Group string
	CMD   string
	Host  string
}

func (s *Simulator) base(p Proc, call Syscall, fd FDType) Record {
	return Record{Call: call, PID: p.PID, Exe: p.Exe, User: p.User, Group: p.Group, CMD: p.CMD, FD: fd, Host: p.Host}
}

// chunks splits total bytes into per-syscall amounts of at most ChunkSize.
func (s *Simulator) chunks(total int64) []int64 {
	if total <= 0 {
		return []int64{0}
	}
	var out []int64
	for total > 0 {
		n := s.ChunkSize
		if total < n {
			n = total
		}
		out = append(out, n)
		total -= n
	}
	return out
}

// ReadFile emits the syscall records for process p reading total bytes
// from path.
func (s *Simulator) ReadFile(p Proc, path string, total int64) {
	for _, n := range s.chunks(total) {
		r := s.base(p, SysRead, FDFile)
		r.Path = path
		r.Bytes = n
		s.emit(r)
	}
}

// WriteFile emits the syscall records for process p writing total bytes
// to path.
func (s *Simulator) WriteFile(p Proc, path string, total int64) {
	for _, n := range s.chunks(total) {
		r := s.base(p, SysWrite, FDFile)
		r.Path = path
		r.Bytes = n
		s.emit(r)
	}
}

// ExecuteFile emits an execve record of process p executing the program
// file at path.
func (s *Simulator) ExecuteFile(p Proc, path string) {
	r := s.base(p, SysExecve, FDFile)
	r.Path = path
	s.emit(r)
}

// RenameFile emits a rename record for path.
func (s *Simulator) RenameFile(p Proc, path string) {
	r := s.base(p, SysRename, FDFile)
	r.Path = path
	s.emit(r)
}

// StartProcess emits a fork+execve pair: parent p starts child.
func (s *Simulator) StartProcess(parent Proc, child Proc) {
	f := s.base(parent, SysFork, FDProc)
	f.ChildPID = child.PID
	f.ChildExe = parent.Exe // fork clones the parent image
	s.emit(f)
	e := s.base(parent, SysExecve, FDProc)
	e.ChildPID = child.PID
	e.ChildExe = child.Exe
	e.ChildCMD = child.CMD
	s.emit(e)
}

// EndProcess emits an exit record for p.
func (s *Simulator) EndProcess(p Proc) {
	r := s.base(p, SysExit, FDProc)
	s.emit(r)
}

// Connect emits a connect record from p to dst.
func (s *Simulator) Connect(p Proc, srcIP string, srcPort int, dstIP string, dstPort int, proto string) {
	r := s.base(p, SysConnect, FDIPv4)
	r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto = srcIP, srcPort, dstIP, dstPort, proto
	s.emit(r)
}

// Send emits the syscall records for p sending total bytes over the
// connection.
func (s *Simulator) Send(p Proc, srcIP string, srcPort int, dstIP string, dstPort int, proto string, total int64) {
	for _, n := range s.chunks(total) {
		r := s.base(p, SysSendto, FDIPv4)
		r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto = srcIP, srcPort, dstIP, dstPort, proto
		r.Bytes = n
		s.emit(r)
	}
}

// Receive emits the syscall records for p receiving total bytes from the
// connection.
func (s *Simulator) Receive(p Proc, srcIP string, srcPort int, dstIP string, dstPort int, proto string, total int64) {
	for _, n := range s.chunks(total) {
		r := s.base(p, SysRecvfrom, FDIPv4)
		r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto = srcIP, srcPort, dstIP, dstPort, proto
		r.Bytes = n
		s.emit(r)
	}
}

// BenignConfig controls background-noise generation: the benign activity of
// the >15 active users on the paper's testbed (file manipulation, text
// editing, software development).
type BenignConfig struct {
	Users     int   // number of simulated users; default 15
	Actions   int   // number of benign logical actions to emit
	MeanGapUS int64 // mean gap between logical actions; default 3000µs
	// Hosts, when non-empty, stamps each user's activity with a fleet
	// host (users are spread across hosts round-robin); empty keeps the
	// historical single-host (host-less) wire format.
	Hosts []string
}

var benignExes = []string{
	"/usr/bin/vim", "/usr/bin/gcc", "/usr/bin/make", "/usr/bin/python3",
	"/bin/cat", "/bin/cp", "/bin/grep", "/usr/bin/git", "/usr/bin/ssh",
	"/usr/bin/find", "/bin/ls", "/usr/bin/tail",
}

var benignDirs = []string{
	"/home/%s/src", "/home/%s/docs", "/home/%s/build", "/tmp/%s",
	"/var/tmp/%s", "/home/%s/notes",
}

var benignFileNames = []string{
	"main.c", "util.c", "notes.txt", "report.md", "Makefile", "data.csv",
	"out.log", "config.yaml", "test.py", "README", "draft.tex", "a.out",
}

// GenerateBenign emits cfg.Actions benign logical actions interleaved on
// the simulator clock. It is deterministic given the simulator seed.
func (s *Simulator) GenerateBenign(cfg BenignConfig) {
	if cfg.Users <= 0 {
		cfg.Users = 15
	}
	if cfg.MeanGapUS <= 0 {
		cfg.MeanGapUS = 3000
	}
	for i := 0; i < cfg.Actions; i++ {
		uid := s.rng.Intn(cfg.Users)
		user := fmt.Sprintf("user%02d", uid)
		exe := benignExes[s.rng.Intn(len(benignExes))]
		p := Proc{
			PID:   2000 + uid*100 + s.rng.Intn(40),
			Exe:   exe,
			User:  user,
			Group: "staff",
			CMD:   exe,
		}
		if len(cfg.Hosts) > 0 {
			p.Host = cfg.Hosts[uid%len(cfg.Hosts)]
		}
		dir := fmt.Sprintf(benignDirs[s.rng.Intn(len(benignDirs))], user)
		file := dir + "/" + benignFileNames[s.rng.Intn(len(benignFileNames))]
		switch s.rng.Intn(10) {
		case 0, 1, 2, 3: // read a file
			s.ReadFile(p, file, int64(1+s.rng.Intn(8))*2048)
		case 4, 5, 6: // write a file
			s.WriteFile(p, file, int64(1+s.rng.Intn(8))*2048)
		case 7: // run a tool
			child := Proc{PID: p.PID + 1 + s.rng.Intn(20), Exe: benignExes[s.rng.Intn(len(benignExes))], User: user, Group: "staff", Host: p.Host}
			child.CMD = child.Exe
			s.StartProcess(p, child)
		case 8: // fetch something over the network
			dst := fmt.Sprintf("10.1.%d.%d", s.rng.Intn(250), 1+s.rng.Intn(250))
			sport := 30000 + s.rng.Intn(20000)
			s.Connect(p, "10.0.0.7", sport, dst, 443, "tcp")
			s.Receive(p, "10.0.0.7", sport, dst, 443, "tcp", int64(1+s.rng.Intn(6))*4096)
		case 9: // read then write (edit)
			s.ReadFile(p, file, 4096)
			s.WriteFile(p, file, 4096)
		}
		s.Advance(s.rng.Int63n(2*cfg.MeanGapUS + 1))
	}
}
