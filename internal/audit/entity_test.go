package audit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEntityKeyUniqueness(t *testing.T) {
	a := NewFileEntity("/etc/passwd", "root", "root")
	b := NewFileEntity("/etc/passwd", "alice", "staff") // same identity, different owner
	c := NewFileEntity("/etc/shadow", "root", "root")
	if a.Key() != b.Key() {
		t.Errorf("same path should have same key: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == c.Key() {
		t.Errorf("different paths should differ: %q", a.Key())
	}

	p1 := NewProcessEntity(100, "/bin/tar", "root", "root", "tar cf x")
	p2 := NewProcessEntity(100, "/bin/tar", "root", "root", "tar xf y") // cmd not identifying
	p3 := NewProcessEntity(101, "/bin/tar", "root", "root", "")
	if p1.Key() != p2.Key() {
		t.Errorf("same exe+pid should match: %q vs %q", p1.Key(), p2.Key())
	}
	if p1.Key() == p3.Key() {
		t.Errorf("different pid should differ: %q", p1.Key())
	}

	n1 := NewNetConnEntity("10.0.0.1", 4000, "192.168.29.128", 443, "tcp")
	n2 := NewNetConnEntity("10.0.0.1", 4000, "192.168.29.128", 443, "udp")
	if n1.Key() == n2.Key() {
		t.Errorf("protocol is part of the 5-tuple: %q", n1.Key())
	}
}

func TestEntityKindsAreDistinctInKeys(t *testing.T) {
	// A file named like a process key must not collide across kinds.
	f := NewFileEntity("/bin/tar#100", "root", "root")
	p := NewProcessEntity(100, "/bin/tar", "root", "root", "")
	if f.Key() == p.Key() {
		t.Fatalf("cross-kind key collision: %q", f.Key())
	}
}

func TestEntityTableIntern(t *testing.T) {
	tab := NewEntityTable()
	a := tab.Intern(NewFileEntity("/etc/passwd", "root", "root"))
	b := tab.Intern(NewFileEntity("/etc/passwd", "root", "root"))
	if a != b {
		t.Fatal("intern should return the canonical entity")
	}
	if a.ID == 0 {
		t.Fatal("interned entity must receive an ID")
	}
	c := tab.Intern(NewFileEntity("/etc/shadow", "root", "root"))
	if c.ID == a.ID {
		t.Fatal("distinct entities must receive distinct IDs")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if got := tab.Lookup(a.ID); got != a {
		t.Fatal("Lookup by ID failed")
	}
	if got := tab.LookupKey(a.Key()); got != a {
		t.Fatal("LookupKey failed")
	}
	all := tab.All()
	if len(all) != 2 || all[0].ID > all[1].ID {
		t.Fatalf("All must return entities in ID order, got %v", all)
	}
}

func TestEntityAttrs(t *testing.T) {
	f := NewFileEntity("/tmp/upload.tar", "root", "wheel")
	cases := []struct {
		attr, want string
	}{
		{"name", "/tmp/upload.tar"},
		{"path", "/tmp"},
		{"user", "root"},
		{"group", "wheel"},
	}
	for _, c := range cases {
		got, ok := f.Attr(c.attr)
		if !ok || got != c.want {
			t.Errorf("file.Attr(%q) = %q, %v; want %q", c.attr, got, ok, c.want)
		}
	}
	if _, ok := f.Attr("pid"); ok {
		t.Error("file must not expose pid")
	}

	p := NewProcessEntity(42, "/usr/bin/curl", "bob", "staff", "curl http://x")
	if got, _ := p.Attr("pid"); got != "42" {
		t.Errorf("proc pid = %q", got)
	}
	if got, _ := p.Attr("exename"); got != "/usr/bin/curl" {
		t.Errorf("proc exename = %q", got)
	}
	if got, _ := p.Attr("cmd"); got != "curl http://x" {
		t.Errorf("proc cmd = %q", got)
	}

	n := NewNetConnEntity("10.0.0.5", 5555, "192.168.29.128", 443, "tcp")
	if got, _ := n.Attr("dstip"); got != "192.168.29.128" {
		t.Errorf("net dstip = %q", got)
	}
	if got, _ := n.Attr("srcport"); got != "5555" {
		t.Errorf("net srcport = %q", got)
	}
}

func TestDefaultAttr(t *testing.T) {
	if DefaultAttr(EntityFile) != "name" ||
		DefaultAttr(EntityProcess) != "exename" ||
		DefaultAttr(EntityNetConn) != "dstip" {
		t.Fatal("default attributes must match the paper (name/exename/dstip)")
	}
	if DefaultAttr(EntityInvalid) != "" {
		t.Fatal("invalid kind has no default attribute")
	}
}

func TestHasAttr(t *testing.T) {
	if !HasAttr(EntityProcess, "exename") || HasAttr(EntityProcess, "name") {
		t.Error("process attrs wrong")
	}
	if !HasAttr(EntityFile, "name") || HasAttr(EntityFile, "dstip") {
		t.Error("file attrs wrong")
	}
	if !HasAttr(EntityNetConn, "protocol") || HasAttr(EntityNetConn, "cmd") {
		t.Error("netconn attrs wrong")
	}
}

func TestFilePathDerivation(t *testing.T) {
	cases := []struct{ name, wantPath string }{
		{"/etc/passwd", "/etc"},
		{"/passwd", "/"},
		{"/a/b/c.txt", "/a/b"},
		{"relative.txt", "relative.txt"},
	}
	for _, c := range cases {
		f := NewFileEntity(c.name, "", "")
		if f.File.Path != c.wantPath {
			t.Errorf("path of %q = %q, want %q", c.name, f.File.Path, c.wantPath)
		}
	}
}

// Property: interning is idempotent and key-stable for arbitrary path
// strings.
func TestInternIdempotentProperty(t *testing.T) {
	tab := NewEntityTable()
	f := func(path string) bool {
		if path == "" {
			return true
		}
		name := "/" + strings.TrimLeft(path, "/")
		a := tab.Intern(NewFileEntity(name, "u", "g"))
		b := tab.Intern(NewFileEntity(name, "u", "g"))
		return a == b && a.ID == b.ID && a.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
