package audit

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	records := []Record{
		{Time: 1700000000000000, Call: SysRead, PID: 101, Exe: "/bin/tar", User: "root", Group: "root", FD: FDFile, Path: "/etc/passwd", Bytes: 4096},
		{Time: 1700000000000500, Call: SysWrite, PID: 101, Exe: "/bin/tar", FD: FDFile, Path: "/tmp/upload.tar", Bytes: 2048},
		{Time: 1700000000001000, Call: SysConnect, PID: 105, Exe: "/usr/bin/curl", FD: FDIPv4, SrcIP: "10.0.0.5", SrcPort: 38822, DstIP: "192.168.29.128", DstPort: 443, Proto: "tcp"},
		{Time: 1700000000002000, Call: SysExecve, PID: 100, Exe: "/bin/bash", CMD: "bash -c \"run me\"", FD: FDProc, ChildPID: 101, ChildExe: "/bin/tar", ChildCMD: "tar cf /tmp/upload.tar /etc/passwd"},
		{Time: 1700000000003000, Call: SysRead, PID: 9, Exe: "/usr/bin/weird name", FD: FDFile, Path: "/tmp/has space.txt", Bytes: 1, Ret: -13},
	}
	for _, want := range records {
		line := want.Format()
		got, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("ParseRecord(%q): %v", line, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n line %q\n got  %+v\n want %+v", line, got, want)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"ts=notanumber call=read pid=1 exe=/bin/x fd=file path=/a",
		"pid=1 exe=/bin/x fd=file path=/a",         // missing call
		"ts=1 call=read pid=x exe=a fd=file",       // bad pid
		`ts=1 call=read pid=1 exe="unclosed`,       // unterminated quote
		"ts=1 call=read pid=1 src=1.2.3.4 fd=ipv4", // missing port
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) should fail", line)
		}
	}
}

func TestParseRecordToleratesUnknownKeys(t *testing.T) {
	r, err := ParseRecord("ts=5 call=read pid=1 exe=/bin/cat fd=file path=/x newfield=hello bytes=7")
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != 7 || r.Path != "/x" {
		t.Fatalf("fields around unknown key lost: %+v", r)
	}
}

func TestOpForRecord(t *testing.T) {
	cases := []struct {
		call Syscall
		fd   FDType
		want OpType
		ok   bool
	}{
		{SysRead, FDFile, OpRead, true},
		{SysReadv, FDFile, OpRead, true},
		{SysWrite, FDFile, OpWrite, true},
		{SysWritev, FDFile, OpWrite, true},
		{SysExecve, FDFile, OpExecute, true},
		{SysRename, FDFile, OpRename, true},
		{SysExecve, FDProc, OpStart, true},
		{SysFork, FDProc, OpStart, true},
		{SysClone, FDProc, OpStart, true},
		{SysExit, FDProc, OpEnd, true},
		{SysConnect, FDIPv4, OpConnect, true},
		{SysRecvfrom, FDIPv4, OpReceive, true},
		{SysRecvmsg, FDIPv4, OpReceive, true},
		{SysSendto, FDIPv4, OpSend, true},
		{SysRead, FDIPv4, OpReceive, true},
		{SysWrite, FDIPv4, OpSend, true},
		{SysRename, FDIPv4, OpInvalid, false},
		{SysConnect, FDFile, OpInvalid, false},
	}
	for _, c := range cases {
		r := Record{Call: c.call, FD: c.fd}
		got, err := opForRecord(&r)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("opForRecord(%s,%s) = %v, %v; want %v", c.call, c.fd, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("opForRecord(%s,%s) should fail", c.call, c.fd)
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, name := range []string{"read", "write", "execute", "start", "end", "rename", "connect", "send", "receive"} {
		op, err := ParseOp(name)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", name, err)
		}
		if op.String() != name {
			t.Errorf("ParseOp(%q).String() = %q", name, op.String())
		}
	}
	if _, err := ParseOp("teleport"); err == nil {
		t.Error("ParseOp should reject unknown ops")
	}
	if _, err := ParseOp("invalid"); err == nil {
		t.Error("ParseOp must not accept the sentinel name")
	}
}

// Property: Format/ParseRecord round-trips for arbitrary printable paths.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(pid uint16, bytes uint32, raw string) bool {
		path := "/" + strings.Map(func(r rune) rune {
			if r < 0x20 || r > 0x7e {
				return -1
			}
			return r
		}, raw)
		want := Record{
			Time: 12345, Call: SysRead, PID: int(pid), Exe: "/bin/cat",
			FD: FDFile, Path: path, Bytes: int64(bytes),
		}
		line := want.Format()
		got, err := ParseRecord(line)
		return err == nil && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
