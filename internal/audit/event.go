package audit

import (
	"fmt"
	"time"
)

// OpType is the operation type of a system event (paper Table III plus the
// network verbs used by TBQL).
type OpType uint8

// Operation types. ProcessToFile events use read/write/execute/rename;
// ProcessToProcess events use start/end (execve, fork, clone); and
// ProcessToNetwork events use connect/send/receive (also matched by
// read/write in TBQL queries over network objects).
const (
	OpInvalid OpType = iota
	OpRead
	OpWrite
	OpExecute
	OpStart
	OpEnd
	OpRename
	OpConnect
	OpSend
	OpReceive
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpRead:    "read",
	OpWrite:   "write",
	OpExecute: "execute",
	OpStart:   "start",
	OpEnd:     "end",
	OpRename:  "rename",
	OpConnect: "connect",
	OpSend:    "send",
	OpReceive: "receive",
}

// String returns the TBQL keyword for the operation.
func (o OpType) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "invalid"
}

// Bit returns the operation's position in an op-code bitmask (one bit
// per OpType). Op sets — a sealed batch's operations, a pattern's
// admissible operations, a rule set's trigger operations — intersect with
// one AND instead of a string comparison per member.
func (o OpType) Bit() uint32 { return 1 << o }

// ParseOp converts a TBQL operation keyword to an OpType.
func ParseOp(s string) (OpType, error) {
	for i, n := range opNames {
		if n == s && OpType(i) != OpInvalid {
			return OpType(i), nil
		}
	}
	return OpInvalid, fmt.Errorf("audit: unknown operation %q", s)
}

// EventCategory classifies events by their object entity kind
// (paper Table I).
type EventCategory uint8

// The three event categories.
const (
	CatInvalid EventCategory = iota
	CatProcessToFile
	CatProcessToProcess
	CatProcessToNetwork
)

// String returns the category name.
func (c EventCategory) String() string {
	switch c {
	case CatProcessToFile:
		return "ProcessToFile"
	case CatProcessToProcess:
		return "ProcessToProcess"
	case CatProcessToNetwork:
		return "ProcessToNetwork"
	default:
		return "Invalid"
	}
}

// CategoryOf returns the event category for an object entity kind.
func CategoryOf(object EntityKind) EventCategory {
	switch object {
	case EntityFile:
		return CatProcessToFile
	case EntityProcess:
		return CatProcessToProcess
	case EntityNetConn:
		return CatProcessToNetwork
	default:
		return CatInvalid
	}
}

// Event is a system event ⟨subject, operation, object⟩ with the attributes
// of paper Table III. Times are microseconds since the Unix epoch.
type Event struct {
	ID          int64
	SubjectID   int64 // always a process entity
	ObjectID    int64 // file, process, or network connection entity
	Op          OpType
	StartTime   int64 // µs since epoch
	EndTime     int64 // µs since epoch
	DataAmount  int64 // bytes transferred, if applicable
	FailureCode int   // 0 on success
}

// Duration returns the event duration.
func (e *Event) Duration() time.Duration {
	return time.Duration(e.EndTime-e.StartTime) * time.Microsecond
}

// Log is a parsed system audit log: an entity table plus the ordered
// sequence of system events among those entities.
type Log struct {
	Entities *EntityTable
	Events   []Event
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{Entities: NewEntityTable()}
}

// Append adds an event, assigning its ID from the running sequence.
func (l *Log) Append(ev Event) {
	ev.ID = int64(len(l.Events) + 1)
	l.Events = append(l.Events, ev)
}

// TakeEvents returns the accumulated events and resets the log's event
// buffer, keeping the entity table. The live ingestion path drains a
// parser's log batch-by-batch: event IDs are provisional (the streaming
// reducer reassigns them at seal time).
func (l *Log) TakeEvents() []Event {
	evs := l.Events
	l.Events = nil
	return evs
}

// Subject returns the subject entity of ev.
func (l *Log) Subject(ev *Event) *Entity { return l.Entities.Lookup(ev.SubjectID) }

// Object returns the object entity of ev.
func (l *Log) Object(ev *Event) *Entity { return l.Entities.Lookup(ev.ObjectID) }

// Category returns the category of ev based on its object entity.
func (l *Log) Category(ev *Event) EventCategory {
	obj := l.Object(ev)
	if obj == nil {
		return CatInvalid
	}
	return CategoryOf(obj.Kind)
}

// Stats summarizes a log for reporting.
type Stats struct {
	Entities int
	Events   int
	ByCat    map[EventCategory]int
}

// Stats computes summary statistics over the log.
func (l *Log) Stats() Stats {
	s := Stats{Entities: l.Entities.Len(), Events: len(l.Events), ByCat: make(map[EventCategory]int)}
	for i := range l.Events {
		s.ByCat[l.Category(&l.Events[i])]++
	}
	return s
}
