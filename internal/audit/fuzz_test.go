package audit

import (
	"strings"
	"testing"
)

// FuzzParserFeedChunk feeds arbitrary byte streams through the chunked
// parser — split at an arbitrary point to exercise the partial-line
// buffer — and asserts the crash-safety invariants: no panic, and every
// event the parser does produce references interned entities. Seeds are
// simulator-rendered wire lines plus truncated and garbage mutations.
func FuzzParserFeedChunk(f *testing.F) {
	sim := NewSimulator(7, 1_700_000_000_000_000)
	sim.GenerateBenign(BenignConfig{Users: 2, Actions: 30})
	var b strings.Builder
	for _, r := range sim.Records() {
		b.WriteString(r.Format() + "\n")
	}
	seed := b.String()
	f.Add(seed, 10)
	f.Add(seed[:len(seed)/2], 3)                  // truncated mid-record
	f.Add(seed[:len(seed)-1], 0)                  // missing final newline
	f.Add(strings.ReplaceAll(seed, "=", ":"), 5)  // mangled key-value syntax
	f.Add("garbage\n\x00\xff\nnot a record\n", 1) // binary junk
	f.Add("time=oops call=read pid=x\n", 2)       // unparsable field values
	f.Add(strings.Repeat("a", 1<<12), 100)        // one huge unterminated line
	f.Fuzz(func(t *testing.T, data string, split int) {
		p := NewParser()
		mid := 0
		if len(data) > 0 {
			mid = split % len(data)
			if mid < 0 {
				mid += len(data)
			}
		}
		// Malformed-input errors are expected; panics and broken logs are
		// the failures this fuzz target hunts.
		p.FeedChunk([]byte(data[:mid]))
		p.FeedChunk([]byte(data[mid:]))
		p.FlushChunk()
		log := p.Log()
		for i := range log.Events {
			ev := &log.Events[i]
			if log.Subject(ev) == nil {
				t.Fatalf("event %d: subject %d not interned", i, ev.SubjectID)
			}
			if log.Object(ev) == nil {
				t.Fatalf("event %d: object %d not interned", i, ev.ObjectID)
			}
		}
	})
}
