// Package audit models system audit logging data: system entities (files,
// processes, network connections), system events (the interactions among
// entities), and the parsing of raw kernel audit records into both.
//
// The model follows Section III-A of the ThreatRaptor paper. A system event
// is the triple ⟨subject_entity, operation, object_entity⟩ where the subject
// is always a process and the object is a file, a process, or a network
// connection. Events are categorized by their object entity type into file
// events, process events, and network events.
package audit

import (
	"fmt"
	"strconv"
	"strings"
)

// EntityKind identifies the type of a system entity.
type EntityKind uint8

// The three system entity kinds captured by the auditing component.
const (
	EntityInvalid EntityKind = iota
	EntityFile
	EntityProcess
	EntityNetConn
)

// String returns the lowercase name of the kind ("file", "proc", "ip"),
// matching the TBQL entity type keywords.
func (k EntityKind) String() string {
	switch k {
	case EntityFile:
		return "file"
	case EntityProcess:
		return "proc"
	case EntityNetConn:
		return "ip"
	default:
		return "invalid"
	}
}

// File holds the attributes of a file entity (paper Table II).
type File struct {
	Name  string // absolute path; the unique identifier of the file
	Path  string // directory part of Name
	User  string
	Group string
	// Host names the machine the file lives on; empty on single-host
	// logs. A non-empty host joins the file's identity — /etc/passwd on
	// hostA and /etc/passwd on hostB are different entities.
	Host string
}

// Process holds the attributes of a process entity (paper Table II).
type Process struct {
	PID     int
	ExeName string // executable path, e.g. /bin/tar
	User    string
	Group   string
	CMD     string // full command line
	// Host names the machine the process runs on; empty on single-host
	// logs. Like File.Host it joins the identity, so PID collisions
	// across machines never merge.
	Host string
}

// NetConn holds the attributes of a network connection entity (paper
// Table II). The 5-tuple uniquely identifies the connection.
type NetConn struct {
	SrcIP    string
	SrcPort  int
	DstIP    string
	DstPort  int
	Protocol string // "tcp" or "udp"
}

// Entity is a system entity: exactly one of File, Proc, or Net is non-nil
// according to Kind. ID is assigned by the EntityTable when the entity is
// first observed and is stable for the lifetime of the log.
type Entity struct {
	ID   int64
	Kind EntityKind
	File *File
	Proc *Process
	Net  *NetConn
}

// Key returns the unique identifier string for the entity:
// absolute path for files, exename+pid for processes, and the 5-tuple for
// network connections (Section III-A).
func (e *Entity) Key() string {
	switch e.Kind {
	case EntityFile:
		if e.File.Host != "" {
			return "f:" + e.File.Host + "|" + e.File.Name
		}
		return "f:" + e.File.Name
	case EntityProcess:
		if e.Proc.Host != "" {
			return "p:" + e.Proc.Host + "|" + e.Proc.ExeName + "#" + strconv.Itoa(e.Proc.PID)
		}
		return "p:" + e.Proc.ExeName + "#" + strconv.Itoa(e.Proc.PID)
	case EntityNetConn:
		n := e.Net
		return fmt.Sprintf("n:%s:%d>%s:%d/%s", n.SrcIP, n.SrcPort, n.DstIP, n.DstPort, n.Protocol)
	default:
		return ""
	}
}

// Attr returns the named attribute of the entity as a string, or ok=false
// if the entity kind does not carry that attribute. Attribute names follow
// Table II ("name", "path", "user", "group", "pid", "exename", "cmd",
// "srcip", "srcport", "dstip", "dstport", "protocol").
func (e *Entity) Attr(name string) (string, bool) {
	switch e.Kind {
	case EntityFile:
		switch name {
		case "name":
			return e.File.Name, true
		case "path":
			return e.File.Path, true
		case "user":
			return e.File.User, true
		case "group":
			return e.File.Group, true
		case "host":
			return e.File.Host, true
		}
	case EntityProcess:
		switch name {
		case "pid":
			return strconv.Itoa(e.Proc.PID), true
		case "exename":
			return e.Proc.ExeName, true
		case "user":
			return e.Proc.User, true
		case "group":
			return e.Proc.Group, true
		case "cmd":
			return e.Proc.CMD, true
		case "host":
			return e.Proc.Host, true
		}
	case EntityNetConn:
		switch name {
		case "srcip":
			return e.Net.SrcIP, true
		case "srcport":
			return strconv.Itoa(e.Net.SrcPort), true
		case "dstip":
			return e.Net.DstIP, true
		case "dstport":
			return strconv.Itoa(e.Net.DstPort), true
		case "protocol":
			return e.Net.Protocol, true
		}
	}
	return "", false
}

// DefaultAttr returns the default attribute name used in security analysis
// for the entity kind: "name" for files, "exename" for processes, and
// "dstip" for network connections (TBQL syntactic sugar, Section III-D).
func DefaultAttr(k EntityKind) string {
	switch k {
	case EntityFile:
		return "name"
	case EntityProcess:
		return "exename"
	case EntityNetConn:
		return "dstip"
	default:
		return ""
	}
}

// Host returns the host the entity belongs to ("" for host-less entities:
// network connections, which are shared identities across hosts, and
// entities from single-host logs that never set one).
func (e *Entity) Host() string {
	switch e.Kind {
	case EntityFile:
		return e.File.Host
	case EntityProcess:
		return e.Proc.Host
	default:
		return ""
	}
}

// HasAttr reports whether the entity kind carries the named attribute.
func HasAttr(k EntityKind, name string) bool {
	var attrs []string
	switch k {
	case EntityFile:
		attrs = []string{"name", "path", "user", "group", "host"}
	case EntityProcess:
		attrs = []string{"pid", "exename", "user", "group", "cmd", "host"}
	case EntityNetConn:
		attrs = []string{"srcip", "srcport", "dstip", "dstport", "protocol"}
	}
	for _, a := range attrs {
		if a == name {
			return true
		}
	}
	return false
}

// String renders a short human-readable description of the entity.
func (e *Entity) String() string {
	v, _ := e.Attr(DefaultAttr(e.Kind))
	return fmt.Sprintf("%s(%d:%s)", e.Kind, e.ID, v)
}

// procKey and netKey are the comparable-struct identities behind the
// allocation-free intern paths: probing a Go map with a struct key builds
// no string, so the steady-state "entity already known" case — every
// record of a long-running stream after warm-up — costs two hash lookups
// and zero allocations.
type procKey struct {
	exe  string
	pid  int
	host string
}

type fileKey struct {
	name string
	host string
}

type netKey struct {
	srcIP   string
	srcPort int
	dstIP   string
	dstPort int
	proto   string
}

// EntityTable interns system entities by their unique key and assigns
// stable IDs. It is the in-memory registry produced by log parsing.
type EntityTable struct {
	byKey map[string]*Entity
	// Typed identity maps, maintained alongside byKey (see procKey).
	byProc map[procKey]*Entity
	byFile map[fileKey]*Entity
	byNet  map[netKey]*Entity
	next   int64
	// dense holds the entities in ID order at offset ID-1 (IDs are assigned
	// densely from 1). The slice is append-only, so a captured header is an
	// immutable prefix — the engine's published snapshots resolve entity
	// attributes through it without touching the intern maps. It is the
	// authoritative store: ID lookups index it directly, and the intern
	// maps are a key-probe acceleration rebuilt on demand (see hydrated).
	dense []*Entity
	// hydrated reports whether the intern maps cover dense. A table restored
	// from a durable segment starts unhydrated — opening a store never pays
	// for intern maps it may not need — and hydrates lazily on the first
	// key-based operation (Intern*, LookupKey), which only the single
	// ingestion writer performs.
	hydrated bool
}

// NewEntityTable returns an empty entity table.
func NewEntityTable() *EntityTable {
	return &EntityTable{
		byKey:    make(map[string]*Entity),
		byProc:   make(map[procKey]*Entity),
		byFile:   make(map[fileKey]*Entity),
		byNet:    make(map[netKey]*Entity),
		next:     1,
		hydrated: true,
	}
}

// RestoreTable builds a table over an already-ID-ordered dense entity
// slice (entity ID i at offset i-1), leaving the intern maps unbuilt
// until first key-based use. The segment recovery path uses it to adopt
// decoded entities without rebuilding maps the read path never touches.
func RestoreTable(dense []*Entity) *EntityTable {
	return &EntityTable{dense: dense, next: int64(len(dense)) + 1}
}

// ensureHydrated builds the intern maps from dense if they are missing.
// Writer-side only (callers hold the ingestion session's write lock).
func (t *EntityTable) ensureHydrated() {
	if t.hydrated {
		return
	}
	t.byKey = make(map[string]*Entity, len(t.dense))
	t.byProc = make(map[procKey]*Entity, len(t.dense))
	t.byFile = make(map[fileKey]*Entity)
	t.byNet = make(map[netKey]*Entity)
	for _, e := range t.dense {
		t.byKey[e.Key()] = e
		switch e.Kind {
		case EntityProcess:
			t.byProc[procKey{e.Proc.ExeName, e.Proc.PID, e.Proc.Host}] = e
		case EntityFile:
			t.byFile[fileKey{e.File.Name, e.File.Host}] = e
		case EntityNetConn:
			n := e.Net
			t.byNet[netKey{n.SrcIP, n.SrcPort, n.DstIP, n.DstPort, n.Protocol}] = e
		}
	}
	t.hydrated = true
}

// Intern returns the canonical entity for e's unique key, inserting e with a
// freshly assigned ID if the key has not been seen. The returned entity is
// the one stored in the table; the caller must not mutate identifying
// fields afterwards.
func (t *EntityTable) Intern(e *Entity) *Entity {
	t.ensureHydrated()
	key := e.Key()
	if got, ok := t.byKey[key]; ok {
		return got
	}
	e.ID = t.next
	t.next++
	t.byKey[key] = e
	t.dense = append(t.dense, e)
	switch e.Kind {
	case EntityProcess:
		t.byProc[procKey{e.Proc.ExeName, e.Proc.PID, e.Proc.Host}] = e
	case EntityFile:
		t.byFile[fileKey{e.File.Name, e.File.Host}] = e
	case EntityNetConn:
		n := e.Net
		t.byNet[netKey{n.SrcIP, n.SrcPort, n.DstIP, n.DstPort, n.Protocol}] = e
	}
	return e
}

// AdoptNew appends an entity that already carries the next dense ID —
// the WAL-replay path, where recorded entities arrive in their original
// intern order with their original IDs. The intern maps are updated only
// if already hydrated.
func (t *EntityTable) AdoptNew(e *Entity) error {
	if e.ID != t.next {
		return fmt.Errorf("audit: adopt entity ID %d, want next ID %d", e.ID, t.next)
	}
	t.next++
	t.dense = append(t.dense, e)
	if t.hydrated {
		t.byKey[e.Key()] = e
		switch e.Kind {
		case EntityProcess:
			t.byProc[procKey{e.Proc.ExeName, e.Proc.PID, e.Proc.Host}] = e
		case EntityFile:
			t.byFile[fileKey{e.File.Name, e.File.Host}] = e
		case EntityNetConn:
			n := e.Net
			t.byNet[netKey{n.SrcIP, n.SrcPort, n.DstIP, n.DstPort, n.Protocol}] = e
		}
	}
	return nil
}

// InternProcess interns a host-less process entity, allocating nothing
// when the process is already known — the parser's per-record hot path.
func (t *EntityTable) InternProcess(pid int, exe, user, group, cmd string) *Entity {
	return t.InternProcessOn("", pid, exe, user, group, cmd)
}

// InternProcessOn is InternProcess with the process pinned to a host.
func (t *EntityTable) InternProcessOn(host string, pid int, exe, user, group, cmd string) *Entity {
	t.ensureHydrated()
	if e, ok := t.byProc[procKey{exe, pid, host}]; ok {
		return e
	}
	e := NewProcessEntity(pid, exe, user, group, cmd)
	e.Proc.Host = host
	return t.Intern(e)
}

// InternFile is InternProcess for host-less file entities.
func (t *EntityTable) InternFile(name, user, group string) *Entity {
	return t.InternFileOn("", name, user, group)
}

// InternFileOn is InternFile with the file pinned to a host.
func (t *EntityTable) InternFileOn(host, name, user, group string) *Entity {
	t.ensureHydrated()
	if e, ok := t.byFile[fileKey{name, host}]; ok {
		return e
	}
	e := NewFileEntity(name, user, group)
	e.File.Host = host
	return t.Intern(e)
}

// InternNetConn is InternProcess for network connection entities.
func (t *EntityTable) InternNetConn(srcIP string, srcPort int, dstIP string, dstPort int, proto string) *Entity {
	t.ensureHydrated()
	if e, ok := t.byNet[netKey{srcIP, srcPort, dstIP, dstPort, proto}]; ok {
		return e
	}
	return t.Intern(NewNetConnEntity(srcIP, srcPort, dstIP, dstPort, proto))
}

// Lookup returns the entity with the given ID, or nil.
func (t *EntityTable) Lookup(id int64) *Entity {
	if id < 1 || id > int64(len(t.dense)) {
		return nil
	}
	return t.dense[id-1]
}

// LookupKey returns the entity with the given unique key, or nil.
func (t *EntityTable) LookupKey(key string) *Entity {
	t.ensureHydrated()
	return t.byKey[key]
}

// Len returns the number of distinct entities interned.
func (t *EntityTable) Len() int { return len(t.dense) }

// Since returns the entities with ID > after in ascending ID order: the
// entities interned since the caller last recorded MaxID. The live append
// path uses it to ship only new entities to the storage backends.
func (t *EntityTable) Since(after int64) []*Entity {
	if after < 0 {
		after = 0
	}
	if after >= int64(len(t.dense)) {
		return nil
	}
	return t.dense[after:]
}

// MaxID returns the highest entity ID assigned so far (0 when empty).
func (t *EntityTable) MaxID() int64 { return t.next - 1 }

// Dense returns the entities in ID order, entity ID i at offset i-1. The
// returned header is stable under concurrent interning (appends land
// beyond its length), so callers may capture it as an immutable snapshot
// of the first len(dense) entities.
func (t *EntityTable) Dense() []*Entity { return t.dense }

// All returns all entities in ascending ID order.
func (t *EntityTable) All() []*Entity {
	return append([]*Entity(nil), t.dense...)
}

// NewFileEntity builds a file entity from an absolute path. The Path
// attribute is the directory component.
func NewFileEntity(name, user, group string) *Entity {
	dir := name
	if i := strings.LastIndexByte(name, '/'); i > 0 {
		dir = name[:i]
	} else if i == 0 {
		dir = "/"
	}
	return &Entity{Kind: EntityFile, File: &File{Name: name, Path: dir, User: user, Group: group}}
}

// NewProcessEntity builds a process entity.
func NewProcessEntity(pid int, exe, user, group, cmd string) *Entity {
	return &Entity{Kind: EntityProcess, Proc: &Process{PID: pid, ExeName: exe, User: user, Group: group, CMD: cmd}}
}

// NewNetConnEntity builds a network connection entity from its 5-tuple.
func NewNetConnEntity(srcIP string, srcPort int, dstIP string, dstPort int, proto string) *Entity {
	return &Entity{Kind: EntityNetConn, Net: &NetConn{SrcIP: srcIP, SrcPort: srcPort, DstIP: dstIP, DstPort: dstPort, Protocol: proto}}
}
