package audit

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Syscall identifies a monitored system call (paper Table I).
type Syscall string

// The representative system calls processed by the auditing component.
const (
	SysRead     Syscall = "read"
	SysReadv    Syscall = "readv"
	SysWrite    Syscall = "write"
	SysWritev   Syscall = "writev"
	SysExecve   Syscall = "execve"
	SysRename   Syscall = "rename"
	SysFork     Syscall = "fork"
	SysClone    Syscall = "clone"
	SysExit     Syscall = "exit"
	SysConnect  Syscall = "connect"
	SysRecvfrom Syscall = "recvfrom"
	SysRecvmsg  Syscall = "recvmsg"
	SysSendto   Syscall = "sendto"
)

// FDType distinguishes the object a syscall operates on.
type FDType string

// Object descriptor types emitted by the kernel agent.
const (
	FDFile FDType = "file"
	FDIPv4 FDType = "ipv4"
	FDProc FDType = "proc"
)

// Record is one raw kernel audit record, the unit emitted by the monitoring
// agent (the Sysdig/Linux-Audit stand-in). It is a flat key=value line on
// the wire; see ParseRecord.
type Record struct {
	Time int64 // µs since epoch
	// Host names the machine the record was captured on. Empty for
	// single-host agents (the historical wire format); agents in a fleet
	// stamp every record so entities from different machines stay
	// distinct. Network connections are identified by their 5-tuple alone,
	// which is what lets a connect on one host and the matching accept on
	// another meet at the same entity.
	Host    string
	Call    Syscall // monitored system call
	PID     int     // acting process id
	Exe     string  // acting process executable
	User    string
	Group   string
	CMD     string // acting process command line
	FD      FDType // object descriptor type
	Path    string // object file path (FDFile)
	SrcIP   string // connection source (FDIPv4)
	SrcPort int
	DstIP   string
	DstPort int
	Proto   string
	// Child process fields for execve/fork/clone records (FDProc).
	ChildPID int
	ChildExe string
	ChildCMD string
	Bytes    int64 // data amount for read/write-style calls
	Ret      int   // kernel return code; non-zero marks failure
}

// Format renders the record as the key=value wire line produced by the
// monitoring agent. ParseRecord inverts it.
func (r *Record) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ts=%d call=%s pid=%d exe=%s", r.Time, r.Call, r.PID, quoteIfNeeded(r.Exe))
	if r.Host != "" {
		fmt.Fprintf(&b, " host=%s", quoteIfNeeded(r.Host))
	}
	if r.User != "" {
		fmt.Fprintf(&b, " user=%s", r.User)
	}
	if r.Group != "" {
		fmt.Fprintf(&b, " group=%s", r.Group)
	}
	if r.CMD != "" {
		fmt.Fprintf(&b, " cmd=%s", quoteIfNeeded(r.CMD))
	}
	fmt.Fprintf(&b, " fd=%s", r.FD)
	switch r.FD {
	case FDFile:
		fmt.Fprintf(&b, " path=%s", quoteIfNeeded(r.Path))
	case FDIPv4:
		fmt.Fprintf(&b, " src=%s:%d dst=%s:%d proto=%s", r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto)
	case FDProc:
		fmt.Fprintf(&b, " cpid=%d cexe=%s", r.ChildPID, quoteIfNeeded(r.ChildExe))
		if r.ChildCMD != "" {
			fmt.Fprintf(&b, " ccmd=%s", quoteIfNeeded(r.ChildCMD))
		}
	}
	if r.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", r.Bytes)
	}
	if r.Ret != 0 {
		fmt.Fprintf(&b, " ret=%d", r.Ret)
	}
	return b.String()
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"") {
		return strconv.Quote(s)
	}
	return s
}

// WriteRecords writes records as newline-delimited wire lines, the format
// ParseStream reads.
func WriteRecords(w io.Writer, records []Record) error {
	for i := range records {
		if _, err := io.WriteString(w, records[i].Format()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// ParseRecord parses one key=value audit line into a Record.
func ParseRecord(line string) (Record, error) {
	var r Record
	fields, err := splitFields(line)
	if err != nil {
		return r, err
	}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			return r, fmt.Errorf("audit: malformed field %q", f)
		}
		key, val := f[:eq], f[eq+1:]
		if len(val) > 1 && val[0] == '"' {
			uq, err := strconv.Unquote(val)
			if err != nil {
				return r, fmt.Errorf("audit: bad quoted value in %q: %v", f, err)
			}
			val = uq
		}
		switch key {
		case "ts":
			r.Time, err = strconv.ParseInt(val, 10, 64)
		case "host":
			r.Host = val
		case "call":
			r.Call = Syscall(val)
		case "pid":
			r.PID, err = strconv.Atoi(val)
		case "exe":
			r.Exe = val
		case "user":
			r.User = val
		case "group":
			r.Group = val
		case "cmd":
			r.CMD = val
		case "fd":
			r.FD = FDType(val)
		case "path":
			r.Path = val
		case "src":
			r.SrcIP, r.SrcPort, err = splitHostPort(val)
		case "dst":
			r.DstIP, r.DstPort, err = splitHostPort(val)
		case "proto":
			r.Proto = val
		case "cpid":
			r.ChildPID, err = strconv.Atoi(val)
		case "cexe":
			r.ChildExe = val
		case "ccmd":
			r.ChildCMD = val
		case "bytes":
			r.Bytes, err = strconv.ParseInt(val, 10, 64)
		case "ret":
			r.Ret, err = strconv.Atoi(val)
		default:
			// Unknown keys are tolerated so agents can add fields.
		}
		if err != nil {
			return r, fmt.Errorf("audit: bad value for %s in %q: %v", key, f, err)
		}
	}
	if r.Call == "" {
		return r, fmt.Errorf("audit: record missing call field: %q", line)
	}
	return r, nil
}

// splitFields splits a line on spaces, honoring double-quoted values.
func splitFields(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		inQuote := false
		for i < len(line) && (inQuote || line[i] != ' ') {
			switch line[i] {
			case '"':
				inQuote = !inQuote
			case '\\':
				if inQuote && i+1 < len(line) {
					i++
				}
			}
			i++
		}
		if inQuote {
			return nil, fmt.Errorf("audit: unterminated quote in %q", line)
		}
		fields = append(fields, line[start:i])
	}
	return fields, nil
}

func splitHostPort(s string) (string, int, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("audit: missing port in %q", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, err
	}
	return s[:i], port, nil
}

// opForRecord maps a syscall + object type to the event operation
// (paper Table I): ProcessToFile {read,readv,write,writev,execve,rename},
// ProcessToProcess {execve,fork,clone}, ProcessToNetwork
// {read,readv,recvfrom,recvmsg,sendto,write,writev,connect}.
func opForRecord(r *Record) (OpType, error) {
	switch r.FD {
	case FDFile:
		switch r.Call {
		case SysRead, SysReadv:
			return OpRead, nil
		case SysWrite, SysWritev:
			return OpWrite, nil
		case SysExecve:
			return OpExecute, nil
		case SysRename:
			return OpRename, nil
		}
	case FDProc:
		switch r.Call {
		case SysExecve, SysFork, SysClone:
			return OpStart, nil
		case SysExit:
			return OpEnd, nil
		}
	case FDIPv4:
		switch r.Call {
		case SysConnect:
			return OpConnect, nil
		case SysRead, SysReadv, SysRecvfrom, SysRecvmsg:
			return OpReceive, nil
		case SysWrite, SysWritev, SysSendto:
			return OpSend, nil
		}
	}
	return OpInvalid, fmt.Errorf("audit: syscall %q not monitored for fd type %q", r.Call, r.FD)
}
