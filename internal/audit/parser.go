package audit

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Parser converts raw audit records into a Log of system entities and
// system events, interning entities by their unique identifiers
// (Section III-A). A Parser is not safe for concurrent use.
type Parser struct {
	log *Log
	// skipped counts records for unmonitored syscalls (not errors).
	skipped int
	// partial buffers an incomplete trailing line between FeedChunk
	// calls: when tailing a live file the final line is frequently
	// half-written, so it is held back until its newline (or FlushChunk)
	// arrives instead of being parsed as a malformed record.
	partial []byte
}

// NewParser returns a parser accumulating into a fresh Log.
func NewParser() *Parser {
	return &Parser{log: NewLog()}
}

// NewParserWith returns a parser accumulating into the given log, so live
// ingestion can intern entities into an already-loaded store's entity
// table while draining events batch-by-batch.
func NewParserWith(log *Log) *Parser {
	return &Parser{log: log}
}

// Log returns the accumulated log.
func (p *Parser) Log() *Log { return p.log }

// Skipped returns the number of records ignored because their syscall is
// not monitored for the object type.
func (p *Parser) Skipped() int { return p.skipped }

// Feed converts one raw record into a system event and appends it to the
// log. Records whose syscall is not monitored are counted and skipped.
func (p *Parser) Feed(r *Record) error {
	op, err := opForRecord(r)
	if err != nil {
		p.skipped++
		return nil
	}
	// The typed intern paths allocate nothing when the entity is already
	// known — the steady state of a long-running stream. The record's host
	// (empty on single-host logs) joins process and file identity; network
	// connections stay host-less so a connect on one machine and the
	// matching accept on another intern the same entity.
	subj := p.log.Entities.InternProcessOn(r.Host, r.PID, r.Exe, r.User, r.Group, r.CMD)

	var obj *Entity
	switch r.FD {
	case FDFile:
		if r.Path == "" {
			return fmt.Errorf("audit: file record missing path: %+v", r)
		}
		obj = p.log.Entities.InternFileOn(r.Host, r.Path, r.User, r.Group)
	case FDProc:
		if r.ChildPID == 0 && r.Call != SysExit {
			return fmt.Errorf("audit: process record missing child pid: %+v", r)
		}
		cexe, cpid := r.ChildExe, r.ChildPID
		if r.Call == SysExit {
			cexe, cpid = r.Exe, r.PID
		}
		obj = p.log.Entities.InternProcessOn(r.Host, cpid, cexe, r.User, r.Group, r.ChildCMD)
	case FDIPv4:
		obj = p.log.Entities.InternNetConn(r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto)
	default:
		return fmt.Errorf("audit: unknown fd type %q", r.FD)
	}

	p.log.Append(Event{
		SubjectID:   subj.ID,
		ObjectID:    obj.ID,
		Op:          op,
		StartTime:   r.Time,
		EndTime:     r.Time,
		DataAmount:  r.Bytes,
		FailureCode: r.Ret,
	})
	return nil
}

// FeedLine parses one wire line and feeds the record.
func (p *Parser) FeedLine(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	r, err := ParseRecord(line)
	if err != nil {
		return err
	}
	return p.Feed(&r)
}

// FeedChunk consumes an arbitrary byte chunk of the newline-delimited wire
// stream: every complete line is parsed and fed, and a trailing partial
// line (no '\n' yet) is buffered until the next chunk completes it. This is
// the tail-safe entry point for live ingestion, where reads routinely stop
// mid-line.
//
// Unlike ParseStream, a malformed line does not stop the chunk: the
// remaining lines are still consumed (and the trailing partial still
// buffered) so the line framing of a long-lived tail survives one bad
// record, and the first error is returned after the chunk is processed.
func (p *Parser) FeedChunk(data []byte) error {
	var firstErr error
	feed := func(line string) {
		if err := p.FeedLine(line); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			p.partial = append(p.partial, data...)
			return firstErr
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(p.partial) > 0 {
			p.partial = append(p.partial, line...)
			full := string(p.partial)
			p.partial = p.partial[:0]
			feed(full)
			continue
		}
		feed(string(line))
	}
	return firstErr
}

// FlushChunk parses any buffered partial line as if it were complete. Call
// it at true end-of-input; while tailing a growing file, don't — the
// buffered bytes are the head of a line still being written.
func (p *Parser) FlushChunk() error {
	if len(p.partial) == 0 {
		return nil
	}
	line := string(p.partial)
	p.partial = p.partial[:0]
	return p.FeedLine(line)
}

// PartialLen reports how many bytes of an incomplete trailing line are
// buffered.
func (p *Parser) PartialLen() int { return len(p.partial) }

// ParseStream reads newline-delimited audit records from rd and returns the
// resulting log. Blank lines and '#' comments are ignored. Parsing stops at
// the first malformed record.
func ParseStream(rd io.Reader) (*Log, error) {
	p := NewParser()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := p.FeedLine(sc.Text()); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.Log(), nil
}

// ParseRecords converts a batch of records into a log.
func ParseRecords(records []Record) (*Log, error) {
	p := NewParser()
	for i := range records {
		if err := p.Feed(&records[i]); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return p.Log(), nil
}
