package stream

// Durable sessions: the WAL + segment + manifest layer (internal/segment)
// wired into the live ingestion path.
//
// Write path: every sealed batch is framed into the WAL *before* it is
// applied to the in-memory backend, under the same write lock, with the
// same replay-on-failure contract appends already have — a WAL error
// stashes the sealed events exactly like a failed append, and the retry
// rewrites the frame under the same commit sequence (replay keeps the
// last of an equal-seq run, so the retried superset wins). The committed
// sequence advances only after the in-memory apply succeeds.
//
// Flush path: every SegmentEvery sealed batches (and on clean Close) the
// backend dumps one columnar image per role (the single store, or the
// global store plus every shard partition), each image is written as an
// independently checksummed segment file, and one manifest commit names
// the new live set and the WAL replay floor. The manifest rename is the
// only commit point: a crash or error anywhere before it leaves the old
// generation fully intact — for a sharded store that means a partial
// flush (three of four partitions written) rolls back fleet-wide, since
// the orphaned files are never referenced and are swept later. Flush
// errors never fail ingestion; they surface through OnSegmentFlush and
// the WAL simply keeps growing until a flush succeeds.
//
// Recovery (OpenDurable): read the manifest, validate and decode every
// segment, rebuild the stores by direct arena restoration, then replay
// the WAL tail above the floor. A torn tail is truncated silently (the
// expected shape of a crash mid-append); mid-file corruption refuses
// startup unless RecoverCorrupt degrades to the last consistent prefix.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/segment"
)

// Durability configures the crash-safe storage layer of a session opened
// with OpenDurable. The zero value (empty Dir) means "not durable".
type Durability struct {
	// Dir is the data directory holding the WAL, segment files, and
	// manifest. Created if absent.
	Dir string
	// Fsync is the WAL fsync policy: segment.FsyncAlways (default — every
	// appended frame is durable before the batch applies), FsyncBatch
	// (fsync only at segment-flush boundaries and Close), or FsyncOff.
	Fsync string
	// SegmentEvery flushes a segment generation every N sealed batches
	// (default 64). Clean Close always flushes.
	SegmentEvery int
	// RecoverCorrupt opts into degraded recovery: mid-file WAL corruption
	// truncates to the last consistent prefix (reported in RecoveryStats)
	// instead of refusing startup. Segment and manifest corruption always
	// refuse — there is no prefix to degrade to.
	RecoverCorrupt bool
	// OnWALFsync, when set, observes every WAL fsync duration (metrics).
	OnWALFsync func(time.Duration)
	// OnSegmentFlush, when set, observes every segment flush attempt,
	// successful or not (metrics).
	OnSegmentFlush func(FlushStats)
}

func (d Durability) withDefaults() (Durability, error) {
	if d.Fsync == "" {
		d.Fsync = segment.FsyncAlways
	}
	if !segment.ValidFsyncPolicy(d.Fsync) {
		return d, fmt.Errorf("stream: unknown fsync policy %q (want always, batch, or off)", d.Fsync)
	}
	if d.SegmentEvery <= 0 {
		d.SegmentEvery = 64
	}
	return d, nil
}

// FlushStats summarizes one segment flush attempt.
type FlushStats struct {
	// ManifestSeq is the committed flush generation (0 when Err is set).
	ManifestSeq int64
	// Segments is how many segment files the generation holds.
	Segments int
	// Bytes is the total encoded size of the generation.
	Bytes int64
	// Took is the wall time of the whole flush.
	Took time.Duration
	// Err is the failure, if any; the previous generation stays live.
	Err error
}

// RecoveryStats reports what OpenDurable found and rebuilt.
type RecoveryStats struct {
	// Recovered is true when a committed manifest existed (segments were
	// loaded); false for a first start (possibly with a WAL-only replay).
	Recovered bool
	// ManifestSeq is the recovered flush generation.
	ManifestSeq int64
	// Segments is how many segment files were validated and restored.
	Segments int
	// WALFloor is the manifest's replay floor (frames at or below it were
	// skipped).
	WALFloor uint64
	// ReplayedRecords / ReplayedEvents / ReplayedEntities count the WAL
	// tail applied on top of the segments.
	ReplayedRecords  int
	ReplayedEvents   int
	ReplayedEntities int
	// TornTailTruncated is true when a partial final frame was discarded
	// (crash during append — expected, not corruption).
	TornTailTruncated bool
	// DroppedFrames counts consistent-looking data discarded past a
	// mid-file corruption under RecoverCorrupt (always 0 without it).
	DroppedFrames int
}

// DurableBackend is the backend surface a durable session additionally
// needs: dumping the full fleet state as role-tagged segment images, and
// naming the sharding topology the manifest records. Both the single
// engine backend and the sharded coordinator implement it.
type DurableBackend interface {
	Backend
	// DumpImages flattens every store of the fleet: role "global" first,
	// then "p0".."pN-1" for a sharded backend. Called under the session
	// write lock.
	DumpImages() []segment.RoleImage
	// Topology names the sharding layout for the manifest.
	Topology() segment.Topology
}

// durable is a session's durability state. All fields are guarded by the
// session write lock.
type durable struct {
	cfg         Durability
	wal         *segment.WAL
	backend     DurableBackend
	seq         uint64 // last batch sequence applied in memory
	manifestSeq int64  // last committed flush generation
	sinceFlush  int    // sealed batches since the last committed flush
}

// logBatch frames the batch into the WAL before the in-memory apply. The
// frame carries seq+1; seq itself advances only after the apply succeeds,
// so a failure anywhere here (or in the apply) retries under the same
// sequence.
func (d *durable) logBatch(entities []*audit.Entity, events []audit.Event) error {
	if err := d.wal.Append(segment.EncodeRecord(d.seq+1, entities, events)); err != nil {
		return err
	}
	if d.cfg.Fsync == segment.FsyncAlways {
		t0 := time.Now()
		if err := d.wal.Sync(); err != nil {
			return err
		}
		if d.cfg.OnWALFsync != nil {
			d.cfg.OnWALFsync(time.Since(t0))
		}
	}
	return nil
}

// flushSegmentsLocked dumps the backend as one segment generation and
// commits it. Errors leave the previous generation (and the whole WAL)
// intact and are reported only through OnSegmentFlush — a failed flush
// must not fail ingestion.
func (s *Session) flushSegmentsLocked() error {
	d := s.dur
	t0 := time.Now()
	report := func(st FlushStats) error {
		st.Took = time.Since(t0)
		if d.cfg.OnSegmentFlush != nil {
			d.cfg.OnSegmentFlush(st)
		}
		return st.Err
	}
	// Under the batch fsync policy the frames since the last flush have
	// never been synced; make them durable first, so even a flush that
	// fails past this point leaves every applied batch recoverable.
	if d.cfg.Fsync != segment.FsyncOff {
		ft := time.Now()
		if err := d.wal.Sync(); err != nil {
			return report(FlushStats{Err: err})
		}
		if d.cfg.OnWALFsync != nil {
			d.cfg.OnWALFsync(time.Since(ft))
		}
	}
	gen := d.manifestSeq + 1
	imgs := d.backend.DumpImages()
	refs := make([]segment.SegmentRef, 0, len(imgs))
	var bytes int64
	for _, ri := range imgs {
		name := segment.SegmentFileName(gen, ri.Role)
		n, err := segment.WriteSegment(d.cfg.Dir, name, ri.Image)
		if err != nil {
			// Files already written this generation are unreferenced
			// garbage; the next successful flush sweeps them.
			return report(FlushStats{Err: err})
		}
		bytes += n
		refs = append(refs, segment.SegmentRef{Role: ri.Role, File: name})
	}
	topo := d.backend.Topology()
	m := &segment.Manifest{
		Seq:         gen,
		WALFloor:    d.seq,
		Shards:      topo.Shards,
		Partitioner: topo.PartitionBy,
		Segments:    refs,
	}
	if err := segment.WriteManifest(d.cfg.Dir, m); err != nil {
		return report(FlushStats{Err: err})
	}
	// Committed: every applied batch is covered by the new generation
	// (floor == seq), so the whole WAL is garbage-collectable.
	d.manifestSeq = gen
	d.sinceFlush = 0
	if err := d.wal.Truncate(0); err != nil {
		// Not a consistency problem — stale frames at or below the floor
		// are skipped on replay — but worth surfacing.
		return report(FlushStats{ManifestSeq: gen, Segments: len(refs), Bytes: bytes, Err: err})
	}
	_ = segment.RemoveStale(d.cfg.Dir, m)
	return report(FlushStats{ManifestSeq: gen, Segments: len(refs), Bytes: bytes})
}

// OpenDurable opens a crash-safe session over cfg.Durability.Dir. When
// the directory holds a committed manifest, the fleet is rebuilt from the
// segment files via fromImages and the WAL tail above the manifest floor
// is replayed; otherwise fresh supplies an empty (or preloaded) backend
// and any leftover WAL from a crash before the first flush is replayed
// onto it. Both callbacks receive ownership of nothing until OpenDurable
// returns nil error.
//
// Corruption semantics: a damaged manifest or segment always refuses
// startup (*segment.CorruptError); a torn WAL tail is truncated silently;
// mid-file WAL corruption refuses startup unless Durability.RecoverCorrupt,
// which degrades to the last consistent prefix and reports the loss in
// RecoveryStats.
func OpenDurable(
	cfg Config,
	fresh func() (DurableBackend, error),
	fromImages func(imgs []segment.RoleImage, topo segment.Topology) (DurableBackend, error),
) (*Session, RecoveryStats, error) {
	var rs RecoveryStats
	dcfg, err := cfg.Durability.withDefaults()
	if err != nil {
		return nil, rs, err
	}
	if dcfg.Dir == "" {
		return nil, rs, fmt.Errorf("stream: OpenDurable needs Durability.Dir")
	}
	if err := os.MkdirAll(dcfg.Dir, 0o755); err != nil {
		return nil, rs, err
	}

	var backend DurableBackend
	var floor uint64
	var manifestSeq int64
	if segment.Exists(dcfg.Dir) {
		m, err := segment.ReadManifest(dcfg.Dir)
		if err != nil {
			return nil, rs, err
		}
		imgs := make([]segment.RoleImage, 0, len(m.Segments))
		for _, ref := range m.Segments {
			img, err := segment.OpenSegment(filepath.Join(dcfg.Dir, ref.File))
			if err != nil {
				return nil, rs, err
			}
			imgs = append(imgs, segment.RoleImage{Role: ref.Role, Image: img})
		}
		backend, err = fromImages(imgs, segment.Topology{Shards: m.Shards, PartitionBy: m.Partitioner})
		if err != nil {
			return nil, rs, err
		}
		rs.Recovered = true
		rs.ManifestSeq, rs.Segments, rs.WALFloor = m.Seq, len(imgs), m.WALFloor
		floor, manifestSeq = m.WALFloor, m.Seq
	} else {
		if backend, err = fresh(); err != nil {
			return nil, rs, err
		}
	}

	// Replay the WAL tail. The records re-enter through the same
	// AppendBatch path live ingestion uses, so IDs, indexes, adjacency,
	// and snapshots come out exactly as they would have without the crash.
	seq := floor
	data, err := segment.ReadWAL(dcfg.Dir)
	if err != nil {
		return nil, rs, err
	}
	truncateAt := int64(-1)
	if len(data) > 0 {
		res, err := segment.ScanFrames(data, floor, dcfg.RecoverCorrupt)
		if err != nil {
			return nil, rs, err
		}
		truncateAt = res.TruncateAt
		rs.TornTailTruncated = res.TornTail
		rs.DroppedFrames = res.Dropped
		for _, rec := range res.Records {
			for _, e := range rec.Entities {
				if err := backend.EntityTable().AdoptNew(e); err != nil {
					return nil, rs, fmt.Errorf("stream: wal replay seq %d: %w", rec.Seq, err)
				}
			}
			if err := backend.AppendBatch(rec.Entities, rec.Events); err != nil {
				return nil, rs, fmt.Errorf("stream: wal replay seq %d: %w", rec.Seq, err)
			}
			rs.ReplayedRecords++
			rs.ReplayedEvents += len(rec.Events)
			rs.ReplayedEntities += len(rec.Entities)
			seq = rec.Seq
		}
	}

	wal, err := segment.OpenWAL(dcfg.Dir)
	if err != nil {
		return nil, rs, err
	}
	if truncateAt >= 0 {
		if err := wal.Truncate(truncateAt); err != nil {
			wal.Close()
			return nil, rs, err
		}
	}

	// The session proper starts only now: the backend already holds the
	// recovered state, so NewWithBackend's entity frontier and tactical
	// catch-up round see it exactly like a preloaded store.
	s := NewWithBackend(backend, cfg)
	s.dur = &durable{
		cfg:         dcfg,
		wal:         wal,
		backend:     backend,
		seq:         seq,
		manifestSeq: manifestSeq,
	}
	return s, rs, nil
}
