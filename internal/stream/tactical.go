package stream

// The session-facing surface of the tactical detection layer: ranked
// incident listing and per-round incident update subscriptions. The
// analyzer itself lives in internal/tactical; this file only adapts it to
// the session's lifecycle (rounds run in advanceLocked, subscriptions
// close with the session).

import "threatraptor/internal/tactical"

// IncidentUpdate is one tactical round's outcome, delivered to incident
// subscriptions after a sealed batch tagged at least one alert.
type IncidentUpdate struct {
	// Batch is the sealed-batch sequence number that produced the round.
	Batch int64 `json:"batch"`
	// Alerts tagged and incidents opened by the round.
	Alerts       int `json:"alerts"`
	NewIncidents int `json:"new_incidents"`
	// Incidents is the full ranked incident list after the round.
	Incidents []tactical.Incident `json:"incidents"`
}

// IncidentSub is a registered incident-update subscription.
type IncidentSub struct {
	// C delivers one IncidentUpdate per alert-producing round. The
	// channel closes when the subscription is removed or the session
	// closes. A full channel drops the update (Dropped counts them)
	// rather than blocking ingestion — consumers can always re-sync from
	// Incidents().
	C <-chan IncidentUpdate

	id      int64
	c       chan IncidentUpdate
	dropped int
}

// Dropped reports updates discarded because the consumer lagged. Reads
// require no synchronization stronger than the delivery order guarantees:
// the counter only moves under the session write lock.
func (s *IncidentSub) Dropped() int { return s.dropped }

// TacticalEnabled reports whether the session runs tactical rounds (a
// rule set was configured).
func (s *Session) TacticalEnabled() bool { return s.tact != nil }

// Incidents returns the ranked incident list (copies; empty without a
// configured rule set). It takes no session lock: the analyzer guards its
// own state, so listing runs concurrently with ingestion.
func (s *Session) Incidents() []tactical.Incident {
	if s.tact == nil {
		return nil
	}
	return s.tact.Ranked()
}

// TacticalStats returns the analyzer's lifetime totals (zero without a
// configured rule set).
func (s *Session) TacticalStats() tactical.Stats {
	if s.tact == nil {
		return tactical.Stats{}
	}
	return s.tact.Stats()
}

// WatchIncidents registers an incident-update subscription. buf is the
// channel capacity (<=0 uses the session's MatchBuffer default).
func (s *Session) WatchIncidents(buf int) (*IncidentSub, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.tact == nil {
		return nil, ErrTacticalDisabled
	}
	if buf <= 0 {
		buf = s.cfg.MatchBuffer
	}
	s.nextIncSub++
	sub := &IncidentSub{id: s.nextIncSub, c: make(chan IncidentUpdate, buf)}
	sub.C = sub.c
	s.incSubs[sub.id] = sub
	return sub, nil
}

// UnwatchIncidents removes a subscription and closes its channel.
func (s *Session) UnwatchIncidents(sub *IncidentSub) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.incSubs[sub.id]; !ok {
		return
	}
	delete(s.incSubs, sub.id)
	close(sub.c)
}

// notifyIncidentSubsLocked fans one round's update out to every incident
// subscription. Callers hold the write lock. The ranked list is built
// once and shared — subscribers treat updates as read-only.
func (s *Session) notifyIncidentSubsLocked(rs tactical.RoundStats) {
	if len(s.incSubs) == 0 {
		return
	}
	upd := IncidentUpdate{
		Batch:        s.batch,
		Alerts:       rs.Alerts,
		NewIncidents: rs.NewIncidents,
		Incidents:    s.tact.Ranked(),
	}
	for _, sub := range s.incSubs {
		select {
		case sub.c <- upd:
		default:
			sub.dropped++
		}
	}
}
