package stream

import (
	"context"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/segment"
	"threatraptor/internal/tactical"
	"threatraptor/internal/tbql"
)

// Backend is the storage-and-execution surface a Session drives: the
// single engine store (the default, via New) or a sharded store
// coordinator (internal/shard, via NewWithBackend). The session's own
// logic — parsing, watermarked reduction, replay on failed appends,
// standing-query dedup/quarantine, tactical rounds — is identical over
// both; only where appends land and how queries execute differs.
//
// Writer methods (NextEventID, AppendBatch) are called under the
// session's write lock and need no internal synchronization against each
// other; the query methods must be safe to call concurrently with an
// append, which both implementations get by pinning published snapshots.
type Backend interface {
	// GlobalStore returns the authoritative store: the store itself for
	// the engine backend, the global (unsharded-equivalent) store for a
	// sharded one. Snapshot readers (provenance, fuzzy, debug) use it.
	GlobalStore() *engine.Store
	// EntityTable is the shared entity intern table the session's parser
	// writes into; entity IDs are global.
	EntityTable() *audit.EntityTable
	// NextEventID is the event-ID frontier (the next delta floor).
	NextEventID() int64
	// AppendBatch appends one sealed batch atomically (all stores move,
	// or none).
	AppendBatch(entities []*audit.Entity, events []audit.Event) error
	// Hunt parses, analyzes, and executes TBQL source.
	Hunt(ctx context.Context, src string) (*engine.Result, engine.Stats, error)
	// Execute runs an analyzed query (Watch's history seeding).
	Execute(ctx context.Context, a *tbql.Analyzed) (*engine.Result, engine.Stats, error)
	// ExecuteDelta evaluates a standing query against an appended delta.
	ExecuteDelta(ctx context.Context, a *tbql.Analyzed, minEventID int64) (*engine.Result, engine.Stats, error)
	// DropViews releases any per-query match caches (no-op backends ok).
	DropViews(a *tbql.Analyzed)
	// TacticalSource returns the tactical layer's view of current state;
	// called after each successful append, under the write lock.
	TacticalSource() tactical.Source
	// SetViewHighWater applies Config.ViewHighWater (no-op backends ok).
	SetViewHighWater(n int)
}

// engineBackend adapts the classic single store + engine pair.
type engineBackend struct {
	store *engine.Store
	en    *engine.Engine
}

// NewBackend wraps the classic single store + engine pair as a
// DurableBackend — what New uses internally, exported so OpenDurable
// callers can supply it from their fresh/fromImages callbacks.
func NewBackend(store *engine.Store, en *engine.Engine) DurableBackend {
	return engineBackend{store: store, en: en}
}

// DumpImages flattens the single store as the one "global" role.
func (b engineBackend) DumpImages() []segment.RoleImage {
	return []segment.RoleImage{{Role: segment.RoleGlobal, Image: engine.DumpImage(b.store, true)}}
}

// Topology reports the unsharded layout.
func (b engineBackend) Topology() segment.Topology { return segment.Topology{} }

func (b engineBackend) GlobalStore() *engine.Store      { return b.store }
func (b engineBackend) EntityTable() *audit.EntityTable { return b.store.Log.Entities }
func (b engineBackend) NextEventID() int64              { return b.store.NextEventID() }
func (b engineBackend) AppendBatch(entities []*audit.Entity, events []audit.Event) error {
	return b.store.AppendBatch(entities, events)
}
func (b engineBackend) Hunt(ctx context.Context, src string) (*engine.Result, engine.Stats, error) {
	return b.en.Hunt(ctx, src)
}
func (b engineBackend) Execute(ctx context.Context, a *tbql.Analyzed) (*engine.Result, engine.Stats, error) {
	return b.en.Execute(ctx, a)
}
func (b engineBackend) ExecuteDelta(ctx context.Context, a *tbql.Analyzed, minEventID int64) (*engine.Result, engine.Stats, error) {
	return b.en.ExecuteDelta(ctx, a, minEventID)
}
func (b engineBackend) DropViews(a *tbql.Analyzed) { b.en.DropViews(a) }
func (b engineBackend) TacticalSource() tactical.Source {
	return tactical.SnapSource{Snap: b.store.Snapshot()}
}
func (b engineBackend) SetViewHighWater(n int) { b.en.ViewHighWater = n }
