package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/reduction"
)

const dataLeakTBQL = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

// graphTBQL compiles to single-hop Cypher data queries.
const graphTBQL = `proc p1["%/bin/tar%"] ->[read] file f1["%/etc/passwd%"] as evt1
proc p1 ->[write] file f2["%/tmp/upload.tar%"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`

// varlenTBQL contains a variable-length path (information flow from tar
// to the exfiltration address), exercising the graph DFS and the standing
// query full-evaluation fallback.
const varlenTBQL = `proc p1["%/bin/tar%"] ~>(1~8)[connect] ip i1["192.168.29.128"]
return distinct p1, i1`

// dataLeakRecords regenerates the data_leak case's raw record stream (the
// same simulator run cases.GenerateRaw performs), scaled down.
func dataLeakRecords(t testing.TB, scale float64) []audit.Record {
	t.Helper()
	c := cases.ByID("data_leak")
	if c == nil {
		t.Fatal("data_leak case missing")
	}
	sim := audit.NewSimulator(c.Seed, 1_700_000_000_000_000)
	benign := int(float64(c.BenignActions) * scale)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: benign / 2})
	sim.Advance(5_000_000)
	c.Attack(sim)
	sim.Advance(5_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: benign - benign/2})
	return sim.Records()
}

// batchStore builds the reference store the batch way: parse everything,
// reduce once, load once.
func batchStore(t testing.TB, recs []audit.Record) *engine.Store {
	t.Helper()
	p := audit.NewParser()
	for i := range recs {
		if err := p.Feed(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	log := p.Log()
	reduction.Reduce(log, reduction.DefaultConfig())
	store, err := engine.NewStore(log)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func emptySession(t testing.TB, cfg Config) (*Session, *engine.Engine) {
	t.Helper()
	store, err := engine.NewStore(audit.NewLog())
	if err != nil {
		t.Fatal(err)
	}
	en := &engine.Engine{Store: store}
	return New(store, en, cfg), en
}

func huntStrings(t testing.TB, en *engine.Engine, src string) []string {
	t.Helper()
	res, _, err := en.Hunt(nil, src)
	if err != nil {
		t.Fatalf("hunt %q: %v", src, err)
	}
	var out []string
	for _, row := range res.Set.Strings() {
		out = append(out, strings.Join(row, "|"))
	}
	return out
}

func drainMatches(sub *Subscription) []string {
	var out []string
	for {
		select {
		case m, ok := <-sub.C:
			if !ok {
				return out
			}
			var parts []string
			for _, v := range m.Row {
				parts = append(parts, v.String())
			}
			out = append(out, strings.Join(parts, "|"))
		default:
			return out
		}
	}
}

// TestIncrementalVsBatchEquivalence is the acceptance property: N appends
// of size k followed by a hunt must equal one NewStore build over the
// concatenated log — across the relational path, the graph paths (single
// hop and variable length), and the standing-query path.
func TestIncrementalVsBatchEquivalence(t *testing.T) {
	recs := dataLeakRecords(t, 0.25)
	ref := batchStore(t, recs)
	refEngine := &engine.Engine{Store: ref}
	queries := []string{dataLeakTBQL, graphTBQL, varlenTBQL}

	for _, k := range []int{97, 512, 4096} {
		k := k
		t.Run(fmt.Sprintf("chunk=%d", k), func(t *testing.T) {
			sess, en := emptySession(t, Config{MatchBuffer: 4096})
			subs := make([]*Subscription, len(queries))
			for i, q := range queries {
				sub, err := sess.Watch(q)
				if err != nil {
					t.Fatal(err)
				}
				subs[i] = sub
			}
			for lo := 0; lo < len(recs); lo += k {
				hi := lo + k
				if hi > len(recs) {
					hi = len(recs)
				}
				if _, err := sess.IngestRecords(recs[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			st, err := sess.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if st.Pending != 0 {
				t.Fatalf("%d events still pending after Flush", st.Pending)
			}

			// The streamed store must equal the batch store event for
			// event (reduction included) and entity for entity.
			if got, want := len(sess.Store().Log.Events), len(ref.Log.Events); got != want {
				t.Fatalf("streamed store has %d events, batch %d", got, want)
			}
			for i := range ref.Log.Events {
				if sess.Store().Log.Events[i] != ref.Log.Events[i] {
					t.Fatalf("event %d differs:\n stream %+v\n batch  %+v",
						i, sess.Store().Log.Events[i], ref.Log.Events[i])
				}
			}
			if got, want := sess.Store().Log.Entities.Len(), ref.Log.Entities.Len(); got != want {
				t.Fatalf("streamed store has %d entities, batch %d", got, want)
			}
			if sess.Store().MinTime != ref.MinTime || sess.Store().MaxTime != ref.MaxTime {
				t.Fatalf("time bounds differ: stream [%d,%d] batch [%d,%d]",
					sess.Store().MinTime, sess.Store().MaxTime, ref.MinTime, ref.MaxTime)
			}

			// Hunts over the streamed store equal hunts over the batch
			// store, row for row.
			for _, q := range queries {
				got := huntStrings(t, en, q)
				want := huntStrings(t, refEngine, q)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("hunt diverged for %q:\n stream %v\n batch  %v", q, got, want)
				}
			}

			// Every batch-hunt binding was ingested after Watch, so the
			// standing queries must have fired exactly that set (matches
			// are deduplicated, order is batch-arrival dependent).
			for i, q := range queries {
				if err := subs[i].Err(); err != nil {
					t.Fatalf("subscription %q: %v", q, err)
				}
				if d := subs[i].Dropped(); d != 0 {
					t.Fatalf("subscription %q dropped %d matches", q, d)
				}
				got := drainMatches(subs[i])
				want := huntStrings(t, refEngine, q)
				sort.Strings(got)
				sort.Strings(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("standing query diverged for %q:\n fired %v\n batch %v", q, got, want)
				}
			}
		})
	}
}

// mixedTBQL joins a relational event pattern with a single-hop graph
// pattern, so one standing query exercises both backends' views at once.
const mixedTBQL = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 ->[write] file f2["%/tmp/upload.tar%"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`

// windowTBQL carries a bounds-sensitive LAST window, so every sealed
// batch moves the bounds epoch and forces the window-sensitive views to
// rematerialize through the plan-invalidation machinery.
const windowTBQL = `last 9 hour proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`

// TestMaterializedViewFiringEquivalence is the randomized append-schedule
// property behind the incremental-view layer: under identical random
// ingest schedules, a session evaluating standing queries through
// materialized views (the default), a session with views disabled
// (ViewHighWater < 0 — the recompute oracle), and a session whose tiny
// view cap forces the mid-flight fallback must deliver byte-identical
// firing sets for relational, graph single-hop, variable-length,
// mixed-backend, and window-epoch-invalidated queries.
func TestMaterializedViewFiringEquivalence(t *testing.T) {
	recs := dataLeakRecords(t, 0.2)
	queries := []string{dataLeakTBQL, graphTBQL, varlenTBQL, mixedTBQL, windowTBQL}

	type lane struct {
		name string
		cfg  Config
	}
	lanes := []lane{
		{"views", Config{MatchBuffer: 4096}},
		{"recompute", Config{MatchBuffer: 4096, ViewHighWater: -1}},
		{"capped", Config{MatchBuffer: 4096, ViewHighWater: 3}},
	}

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// One random schedule per seed, shared by every lane.
			rng := rand.New(rand.NewSource(seed))
			var cuts []int
			for lo := 0; lo < len(recs); {
				n := 1 + rng.Intn(700)
				if lo+n > len(recs) {
					n = len(recs) - lo
				}
				cuts = append(cuts, n)
				lo += n
			}

			fired := make(map[string][][]string) // lane -> per-query sorted firings
			for _, ln := range lanes {
				sess, en := emptySession(t, ln.cfg)
				subs := make([]*Subscription, len(queries))
				for i, q := range queries {
					sub, err := sess.Watch(q)
					if err != nil {
						t.Fatal(err)
					}
					subs[i] = sub
				}
				lo := 0
				for _, n := range cuts {
					if _, err := sess.IngestRecords(recs[lo : lo+n]); err != nil {
						t.Fatal(err)
					}
					lo += n
				}
				if _, err := sess.Flush(); err != nil {
					t.Fatal(err)
				}
				perQuery := make([][]string, len(queries))
				for i, sub := range subs {
					if err := sub.Err(); err != nil {
						t.Fatalf("lane %s query %d: %v", ln.name, i, err)
					}
					if d := sub.Dropped(); d != 0 {
						t.Fatalf("lane %s query %d dropped %d", ln.name, i, d)
					}
					got := drainMatches(sub)
					sort.Strings(got)
					perQuery[i] = got
				}
				fired[ln.name] = perQuery

				switch ln.name {
				case "views":
					if vs := en.Views(); vs.Materializations == 0 {
						t.Fatalf("views lane never materialized: %+v", vs)
					}
				case "recompute":
					if vs := en.Views(); vs.CachedRows != 0 {
						t.Fatalf("recompute lane cached rows: %+v", vs)
					}
				case "capped":
					if vs := en.Views(); vs.Fallbacks == 0 {
						t.Fatalf("capped lane never fell back: %+v", vs)
					}
				}
			}

			for i, q := range queries {
				base := fired["recompute"][i]
				for _, name := range []string{"views", "capped"} {
					if fmt.Sprint(fired[name][i]) != fmt.Sprint(base) {
						t.Fatalf("query %q: %s firings diverge from recompute:\n%s: %v\nrecompute: %v",
							q, name, name, fired[name][i], base)
					}
				}
			}
		})
	}
}

// TestUnwatchReleasesViews pins stream-side eviction: removing the last
// subscription for a query releases its materialized rows.
func TestUnwatchReleasesViews(t *testing.T) {
	recs := dataLeakRecords(t, 0.1)
	sess, en := emptySession(t, Config{MatchBuffer: 4096})
	sub, err := sess.Watch(dataLeakTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.IngestRecords(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if vs := en.Views(); vs.CachedRows == 0 {
		t.Fatalf("expected cached view rows while watched: %+v", vs)
	}
	sess.Unwatch(sub)
	if vs := en.Views(); vs.CachedRows != 0 {
		t.Fatalf("Unwatch left %d cached rows", vs.CachedRows)
	}
}

// TestStandingQueryFiresOnAppendedBehavior is the live-hunting acceptance
// path: a registered standing query over a tailed byte stream fires when a
// newly appended matching behavior seals — without any store rebuild.
func TestStandingQueryFiresOnAppendedBehavior(t *testing.T) {
	sess, _ := emptySession(t, DefaultConfig())
	storeBefore := sess.Store()

	const q = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 connect ip i1["10.9.9.9"] as evt2
with evt1 before evt2
return distinct p1, f1, i1`
	sub, err := sess.Watch(q)
	if err != nil {
		t.Fatal(err)
	}

	rec := func(ts int64, call audit.Syscall, fd audit.FDType, mut func(*audit.Record)) string {
		r := audit.Record{Time: ts, Call: call, PID: 300, Exe: "/bin/tar", User: "root", FD: fd}
		mut(&r)
		return r.Format() + "\n"
	}
	benign := rec(1_000_000, audit.SysRead, audit.FDFile, func(r *audit.Record) {
		r.PID, r.Exe, r.Path, r.Bytes = 100, "/usr/bin/vim", "/home/alice/notes.txt", 42
	})
	attack1 := rec(2_000_000, audit.SysRead, audit.FDFile, func(r *audit.Record) { r.Path, r.Bytes = "/etc/passwd", 2048 })
	attack2 := rec(3_500_000, audit.SysConnect, audit.FDIPv4, func(r *audit.Record) {
		r.SrcIP, r.SrcPort, r.DstIP, r.DstPort, r.Proto = "10.0.0.5", 40000, "10.9.9.9", 443, "tcp"
	})

	// Benign prefix: nothing fires.
	if _, err := sess.Ingest(bytes.NewBufferString(benign)); err != nil {
		t.Fatal(err)
	}
	if got := drainMatches(sub); len(got) != 0 {
		t.Fatalf("premature firing: %v", got)
	}

	// The attack arrives split mid-line across two reads, like a real
	// tail; a later clock record pushes the watermark past it.
	wire := attack1 + attack2
	half := len(attack1) + len(attack2)/2
	if _, err := sess.Ingest(bytes.NewBufferString(wire[:half])); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Ingest(bytes.NewBufferString(wire[half:])); err != nil {
		t.Fatal(err)
	}
	clock := rec(20_000_000, audit.SysRead, audit.FDFile, func(r *audit.Record) {
		r.PID, r.Exe, r.Path = 100, "/usr/bin/vim", "/home/alice/notes.txt"
	})
	st, err := sess.Ingest(bytes.NewBufferString(clock))
	if err != nil {
		t.Fatal(err)
	}
	if st.Firings != 1 {
		t.Fatalf("firings = %d, want 1 (stats: %+v)", st.Firings, st)
	}
	got := drainMatches(sub)
	if len(got) != 1 || got[0] != "/bin/tar|/etc/passwd|10.9.9.9" {
		t.Fatalf("matches = %v", got)
	}
	if sess.Store() != storeBefore {
		t.Fatal("store was rebuilt")
	}

	// Re-ingesting more benign traffic must not re-fire the same binding.
	more := rec(30_000_000, audit.SysRead, audit.FDFile, func(r *audit.Record) {
		r.PID, r.Exe, r.Path = 100, "/usr/bin/vim", "/home/alice/notes.txt"
	})
	if _, err := sess.Ingest(bytes.NewBufferString(more)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := drainMatches(sub); len(got) != 0 {
		t.Fatalf("duplicate firing after dedup: %v", got)
	}

	sess.Unwatch(sub)
	if sess.Subscriptions() != 0 {
		t.Fatal("Unwatch left the subscription registered")
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel must be closed after Unwatch")
	}
}

// TestSessionCloseAndReuse pins Close semantics: flush-then-refuse.
func TestSessionCloseAndReuse(t *testing.T) {
	sess, en := emptySession(t, DefaultConfig())
	line := (&audit.Record{Time: 1_000_000, Call: audit.SysRead, PID: 1, Exe: "/bin/cat",
		FD: audit.FDFile, Path: "/etc/hosts", Bytes: 10}).Format() + "\n"
	if _, err := sess.Ingest(bytes.NewBufferString(line)); err != nil {
		t.Fatal(err)
	}
	sub, err := sess.Watch(`proc p["%cat%"] read file f return f`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		// Close flushed the pending read event, which fires the query
		// before the channel closes — either a match then close, or just
		// close, is acceptable; drain to closure.
		for range sub.C {
		}
	}
	if _, err := sess.Ingest(bytes.NewBufferString(line)); err == nil {
		t.Fatal("ingest after Close must fail")
	}
	// The store outlives the session.
	if got := len(en.Store.Log.Events); got != 1 {
		t.Fatalf("store events = %d, want 1", got)
	}
}

// TestConcurrentHuntsDuringIngest drives hunts and subscription draining
// from other goroutines while the stream appends — the session's
// reader/writer locking under the race detector.
func TestConcurrentHuntsDuringIngest(t *testing.T) {
	recs := dataLeakRecords(t, 0.1)
	sess, _ := emptySession(t, Config{MatchBuffer: 4096})
	sub, err := sess.Watch(dataLeakTBQL)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 4)
	for g := 0; g < 3; g++ {
		go func() {
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				if _, _, err := sess.Hunt(nil, graphTBQL); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	go func() {
		for {
			select {
			case <-stop:
				errc <- nil
				return
			case <-sub.C:
			}
		}
	}()

	const k = 64
	for lo := 0; lo < len(recs); lo += k {
		hi := lo + k
		if hi > len(recs) {
			hi = len(recs)
		}
		if _, err := sess.IngestRecords(recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestVarLenStandingQueryFiresOnIntermediateEdge pins the ExecuteDelta
// fallback criterion: a typed variable-length path binds the event
// variable only on its final hop, so when a newly appended intermediate
// edge completes a path whose final hop is historical, only the
// full-evaluation fallback can fire it. The dedup seed taken at Watch
// time keeps pre-Watch paths from firing.
func TestVarLenStandingQueryFiresOnIntermediateEdge(t *testing.T) {
	sess, _ := emptySession(t, DefaultConfig())
	mk := func(r audit.Record) string { return r.Format() + "\n" }

	// History: curl connects to the exfil address (the path's final hop),
	// plus a clock record so it seals before Watch.
	history := mk(audit.Record{Time: 1_000_000, Call: audit.SysConnect, PID: 50, Exe: "/usr/bin/curl",
		User: "mallory", FD: audit.FDIPv4, SrcIP: "10.0.0.2", SrcPort: 40000, DstIP: "10.1.1.1", DstPort: 443, Proto: "tcp"}) +
		mk(audit.Record{Time: 10_000_000, Call: audit.SysRead, PID: 9, Exe: "/usr/bin/vim",
			User: "alice", FD: audit.FDFile, Path: "/home/a", Bytes: 1})
	if _, err := sess.Ingest(bytes.NewBufferString(history)); err != nil {
		t.Fatal(err)
	}

	const q = `proc p1["%/bin/tar%"] ~>(2~2)[connect] ip i1["10.1.1.1"]
return distinct p1, i1`
	sub, err := sess.Watch(q)
	if err != nil {
		t.Fatal(err)
	}

	// The path-completing intermediate edge arrives after Watch: tar
	// starts the curl process that made the historical connection.
	later := mk(audit.Record{Time: 15_000_000, Call: audit.SysExecve, PID: 40, Exe: "/bin/tar",
		User: "mallory", FD: audit.FDProc, ChildPID: 50, ChildExe: "/usr/bin/curl"}) +
		mk(audit.Record{Time: 40_000_000, Call: audit.SysRead, PID: 9, Exe: "/usr/bin/vim",
			User: "alice", FD: audit.FDFile, Path: "/home/a", Bytes: 1})
	if _, err := sess.Ingest(bytes.NewBufferString(later)); err != nil {
		t.Fatal(err)
	}
	got := drainMatches(sub)
	if len(got) != 1 || got[0] != "/bin/tar|10.1.1.1" {
		t.Fatalf("matches = %v, want the completed 2-hop path", got)
	}
}

// TestIngestSurvivesMalformedRecord: one corrupt line must not abort the
// call — surrounding lines land, and the error surfaces as *ParseError.
func TestIngestSurvivesMalformedRecord(t *testing.T) {
	sess, _ := emptySession(t, DefaultConfig())
	wire := "ts=1000000 call=read pid=1 exe=/bin/cat fd=file path=/a bytes=1\n" +
		"ts=notanumber call=read pid=1 exe=/bin/cat fd=file path=/bad\n" +
		"ts=2000000 call=read pid=1 exe=/bin/cat fd=file path=/b bytes=1\n"
	st, err := sess.Ingest(bytes.NewBufferString(wire))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if st.EventsParsed != 2 {
		t.Fatalf("EventsParsed = %d, want 2 (good lines around the bad one)", st.EventsParsed)
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(sess.Store().Log.Events); got != 2 {
		t.Fatalf("stored events = %d, want 2", got)
	}
}

// TestStandingQueryDedupHighWater pins the bounded-dedup semantics: when a
// subscription's firing-dedup set reaches Config.DedupHighWater it is
// flushed wholesale (DedupResets counts the flushes), so memory stays
// bounded on long watches and delivery degrades from exactly-once to
// at-least-once — a binding seen before the flush may fire again, but no
// new binding is ever lost.
func TestStandingQueryDedupHighWater(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DedupHighWater = 2
	sess, _ := emptySession(t, cfg)
	sub, err := sess.Watch(`proc p["%/bin/tar%"] read file f return distinct f`)
	if err != nil {
		t.Fatal(err)
	}

	feed := func(ts int64, path string) {
		r := audit.Record{Time: ts, Call: audit.SysRead, PID: 300, Exe: "/bin/tar",
			User: "root", FD: audit.FDFile, Path: path, Bytes: 64}
		if _, err := sess.Ingest(bytes.NewBufferString(r.Format() + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	// Events 10 s apart: each ingest seals the previous one (default 1 s
	// lateness), so every distinct file fires in its own batch. The
	// fourth event repeats the first file after the set has been flushed.
	feed(10_000_000, "/etc/passwd")
	feed(20_000_000, "/etc/shadow")
	feed(30_000_000, "/etc/hosts")
	feed(40_000_000, "/etc/passwd")
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	got := drainMatches(sub)
	want := []string{"/etc/passwd", "/etc/shadow", "/etc/hosts", "/etc/passwd"}
	if len(got) != len(want) {
		t.Fatalf("matches = %v, want %v (repeat after flush must re-fire)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %q, want %q", i, got[i], want[i])
		}
	}
	if n := sub.DedupResets(); n < 1 {
		t.Fatalf("DedupResets = %d, want >= 1", n)
	}
	if sub.seen.Len() > cfg.DedupHighWater {
		t.Fatalf("dedup set grew past the high-water cap: %d", sub.seen.Len())
	}
}
