// Package stream is ThreatRaptor's streaming ingestion and continuous
// hunting subsystem: an append-only audit stream is parsed incrementally,
// reduced over a sliding watermark window, appended batch-by-batch into
// the live storage backends, and evaluated against registered standing
// TBQL queries so hunts fire as behaviors appear — no store rebuild, no
// batch re-run.
//
// A Session wires four stages together:
//
//	raw bytes -> audit.Parser (chunked, partial-line safe)
//	          -> reduction.Streamer (watermarked merge; sealed = immutable)
//	          -> engine.Store.AppendBatch (incremental indexes/adjacency)
//	          -> standing queries (delta-constrained scheduled execution)
//
// Writers (Ingest, Flush) take the session's write lock, which serializes
// appends, standing-query evaluation, and the tactical round. Reads take
// no session lock at all: every read path — hunts, fuzzy search, explain,
// incident listing — pins the store's latest published snapshot (see
// engine.Snapshot) and reads only that frozen generation, so reads run
// concurrently with each other and with an in-flight append without ever
// seeing a torn batch.
//
// When a rule set is configured (Config.Tactical), each sealed batch also
// runs one tactical round (internal/tactical) against the published
// snapshot: the delta's events are tagged into alerts, attributed to
// incidents by backward reachability, and the ranked incident list plus
// per-round updates are exposed through Incidents and WatchIncidents.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/reduction"
	"threatraptor/internal/tactical"
)

// Fault-injection point names (see internal/faultinject).
const (
	// FaultParse fires inside Ingest after the input bytes are fed to the
	// parser, before the pipeline advances.
	FaultParse = "stream/parse"
	// FaultDeliver fires per standing-query evaluation in fireLocked,
	// after the engine's delta execution — the quarantine counter's probe.
	FaultDeliver = "stream/deliver"
)

// ErrSessionClosed is returned by Ingest, IngestRecords, Flush, and Watch
// once the session is closed.
var ErrSessionClosed = errors.New("stream: session closed")

// ErrTacticalDisabled is returned by WatchIncidents when the session has
// no configured rule set (Config.Tactical.Rules).
var ErrTacticalDisabled = errors.New("stream: tactical layer disabled (no rule set configured)")

// Config tunes a Session.
type Config struct {
	// ReductionThresholdUS is the data-reduction merge threshold in µs
	// (default 1 s, the paper's choice).
	ReductionThresholdUS int64
	// LatenessUS is how long the watermark trails the newest observed
	// event time, bounding how late an event may arrive and still merge.
	// Values below the threshold are raised to it. Default: threshold.
	LatenessUS int64
	// MatchBuffer is each subscription's channel capacity; when a
	// consumer lags further than this, matches are counted as dropped
	// rather than blocking ingestion. Default 256.
	MatchBuffer int
	// DedupHighWater caps each subscription's firing-dedup set so a
	// long-running watch cannot grow memory without bound. When the set
	// reaches the cap it is flushed wholesale (the idiom every engine
	// cache uses) and Subscription.DedupResets increments; after a flush
	// a binding first delivered before it may be delivered again if a
	// later batch re-derives it — delivery is exactly-once below the cap
	// and at-least-once beyond it, never lossy. Variable-length-path
	// subscriptions are exempt: their dedup set is seeded with pre-Watch
	// history (full re-evaluation needs it), so flushing it would
	// re-deliver that history as fresh alerts. Default 65536 distinct
	// firings; negative disables the cap.
	DedupHighWater int
	// QuarantineAfter is how many consecutive failed evaluations a
	// standing query survives before it is quarantined: its views are
	// dropped, Subscription.Err latches the last error, a terminal Match
	// (Terminal set) is delivered best-effort, and the channel closes. A
	// query that recovers before the threshold resets its failure count.
	// Default 3; negative disables quarantine (errors latch but the
	// subscription stays registered).
	QuarantineAfter int
	// ViewHighWater bounds the engine-side materialized pattern views that
	// make standing-query rounds O(delta): the total cached match rows
	// across all watched queries. 0 keeps the engine default
	// (engine.DefaultViewHighWater); a negative value disables the views,
	// forcing every delta round through the recompute path (the
	// correctness oracle the equivalence tests compare against). A query
	// whose views would cross the cap falls back to recompute on its own;
	// Unwatch releases a query's views immediately.
	ViewHighWater int
	// Tactical configures the detection layer: when Tactical.Rules is
	// non-nil, every sealed batch runs one tactical round against the
	// published snapshot (tagging, incident attribution, kill-chain
	// scoring — see internal/tactical). Nil rules disable the layer at
	// zero cost to the ingest path.
	Tactical tactical.Config
	// OnTacticalRound, when set, observes every tactical round's duration
	// and stats (the daemon feeds its metrics with it). Called under the
	// session write lock; keep it cheap.
	OnTacticalRound func(time.Duration, tactical.RoundStats)
	// Durability configures the crash-safe storage layer (WAL + segment
	// files, see OpenDurable). Ignored by New/NewWithBackend — only
	// OpenDurable activates it.
	Durability Durability
}

// DefaultConfig mirrors the batch pipeline's defaults.
func DefaultConfig() Config {
	return Config{ReductionThresholdUS: 1_000_000}
}

func (c Config) withDefaults() Config {
	if c.ReductionThresholdUS <= 0 {
		c.ReductionThresholdUS = 1_000_000
	}
	if c.LatenessUS < c.ReductionThresholdUS {
		c.LatenessUS = c.ReductionThresholdUS
	}
	if c.MatchBuffer <= 0 {
		c.MatchBuffer = 256
	}
	if c.DedupHighWater == 0 {
		c.DedupHighWater = 65536
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	return c
}

// IngestStats summarizes one Ingest (or Flush) call.
type IngestStats struct {
	// EventsParsed counts raw events parsed from the input this call.
	EventsParsed int
	// EventsSealed counts reduced events made immutable and appended to
	// the store this call.
	EventsSealed int
	// EntitiesAdded counts entities first seen this call.
	EntitiesAdded int
	// Pending counts events buffered behind the watermark (arrived,
	// unsealed).
	Pending int
	// PartialBuffered is the byte length of an incomplete trailing line
	// held for the next read — nonzero means the producer was caught
	// mid-write, which pollers should not mistake for idleness.
	PartialBuffered int
	// Watermark is the current watermark (µs since epoch).
	Watermark int64
	// Firings counts standing-query matches delivered this call.
	Firings int
	// AlertsTagged counts tactical alerts tagged this call (always 0
	// without a configured rule set).
	AlertsTagged int
	// IncidentsOpen is the number of open incidents after this call.
	IncidentsOpen int
	// Batch is the sealed-batch sequence number after this call.
	Batch int64
}

// Session is a live ingestion session over one engine store. Create it
// with New, feed it with Ingest, register standing queries with Watch.
type Session struct {
	mu  sync.RWMutex
	cfg Config

	backend Backend
	parser  *audit.Parser
	// parserLog shares the store's entity table but drains its events
	// into the reducer; its event IDs are provisional.
	parserLog *audit.Log
	reducer   *reduction.Streamer

	lastEntityID int64
	batch        int64
	closed       bool

	// replay holds a sealed batch whose store append failed: the reducer
	// has already drained it, so it would otherwise be lost. The next
	// advance retries it ahead of newly sealed events (AppendBatch rolls
	// back atomically, so the retry converges on the same store).
	replay []audit.Event

	subs    map[int64]*Subscription
	nextSub int64

	// dur is the durability state (nil for non-durable sessions): the
	// open WAL, the commit sequence, and the segment-flush cadence. Only
	// OpenDurable sets it. Guarded by the write lock like everything else
	// on the ingest path.
	dur *durable

	// tact is the tactical analyzer (nil without configured rules); its
	// rounds run under the write lock, its accessors lock internally.
	tact       *tactical.Analyzer
	incSubs    map[int64]*IncidentSub
	nextIncSub int64

	readBuf []byte
}

// New opens a live session over the given store and engine. The store may
// be freshly empty or already loaded from a batch log; either way the
// session appends to it in place.
func New(store *engine.Store, en *engine.Engine, cfg Config) *Session {
	return NewWithBackend(engineBackend{store: store, en: en}, cfg)
}

// NewWithBackend opens a live session over an arbitrary storage backend
// (a sharded store coordinator, or the classic store+engine pair New
// wraps). The session appends to the backend in place.
func NewWithBackend(b Backend, cfg Config) *Session {
	cfg = cfg.withDefaults()
	if cfg.ViewHighWater != 0 {
		b.SetViewHighWater(cfg.ViewHighWater)
	}
	parserLog := &audit.Log{Entities: b.EntityTable()}
	s := &Session{
		cfg:          cfg,
		backend:      b,
		parser:       audit.NewParserWith(parserLog),
		parserLog:    parserLog,
		reducer:      reduction.NewStreamer(reduction.Config{ThresholdUS: cfg.ReductionThresholdUS}, cfg.LatenessUS),
		lastEntityID: b.EntityTable().MaxID(),
		subs:         make(map[int64]*Subscription),
		incSubs:      make(map[int64]*IncidentSub),
		readBuf:      make([]byte, 64*1024),
	}
	if cfg.Tactical.Rules != nil {
		s.tact = tactical.NewAnalyzer(cfg.Tactical)
		// Adopt preloaded history: a store built before the session (batch
		// log, -demo) holds events no round has seen. One catch-up round
		// over the published state tags them, so Incidents reflects the
		// whole store rather than only live-ingested batches.
		if src := b.TacticalSource(); src.Frontier() > 1 {
			t0 := time.Now()
			rs := s.tact.RoundOn(src, 1)
			if cfg.OnTacticalRound != nil {
				cfg.OnTacticalRound(time.Since(t0), rs)
			}
		}
	}
	return s
}

// Store returns the live backend's authoritative store (reads require no
// ingest in flight). For a sharded backend this is the global store.
func (s *Session) Store() *engine.Store { return s.backend.GlobalStore() }

// Backend returns the session's storage backend.
func (s *Session) Backend() Backend { return s.backend }

// ParseError reports malformed wire records encountered during an Ingest
// that otherwise succeeded: the remaining lines were still parsed, the
// watermark advanced, and sealed batches were appended. A long-lived tail
// should log it and keep going; only non-ParseError errors are fatal to
// the stream.
type ParseError struct {
	// First is the first malformed-record error of the call.
	First error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("stream: malformed record skipped: %v", e.First)
}

// Unwrap exposes the underlying parse error.
func (e *ParseError) Unwrap() error { return e.First }

// Ingest reads every byte currently available from r (typically a file
// being tailed: the reader keeps its offset, EOF just means "caught up"),
// parses complete lines, advances the watermark, appends newly sealed
// batches to the store, and evaluates standing queries against the delta.
// A trailing partial line stays buffered for the next call.
//
// A malformed record does not abort the call: valid lines around it are
// still ingested, and the first such error is reported as a *ParseError
// alongside otherwise-complete stats.
func (s *Session) Ingest(r io.Reader) (IngestStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IngestStats{}, ErrSessionClosed
	}
	var parseErr error
	for {
		n, err := r.Read(s.readBuf)
		if n > 0 {
			if ferr := s.parser.FeedChunk(s.readBuf[:n]); ferr != nil && parseErr == nil {
				parseErr = ferr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return IngestStats{}, err
		}
	}
	if err := faultinject.Hit(FaultParse); err != nil {
		// Parsed records stay buffered in the parser log; the next call
		// picks them up — injected parse faults lose no input.
		return IngestStats{}, err
	}
	st, err := s.advanceLocked(false)
	if err != nil {
		return st, err
	}
	if parseErr != nil {
		return st, &ParseError{First: parseErr}
	}
	return st, nil
}

// IngestRecords feeds already-parsed records (for in-process producers
// such as simulators), then advances exactly like Ingest.
func (s *Session) IngestRecords(records []audit.Record) (IngestStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IngestStats{}, ErrSessionClosed
	}
	for i := range records {
		if err := s.parser.Feed(&records[i]); err != nil {
			return IngestStats{}, err
		}
	}
	return s.advanceLocked(false)
}

// Flush force-seals everything buffered — the trailing partial line, the
// arrival buffer, and every pending merge — and appends it to the store.
// After Flush the store equals a batch build over everything ingested.
func (s *Session) Flush() (IngestStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IngestStats{}, ErrSessionClosed
	}
	return s.advanceLocked(true)
}

// Close flushes, terminates every subscription (channels are closed), and
// marks the session unusable for further ingestion. The store remains
// queryable.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	_, err := s.advanceLocked(true)
	if s.dur != nil {
		// Clean shutdown: one final segment generation captures everything
		// applied, so the next open restores without replaying any WAL. A
		// failed flush keeps the WAL — recovery replays it instead.
		if s.dur.sinceFlush > 0 || s.dur.wal.Size() > 0 {
			if ferr := s.flushSegmentsLocked(); ferr != nil && err == nil {
				err = ferr
			}
		}
		if cerr := s.dur.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for id, sub := range s.subs {
		s.backend.DropViews(sub.analyzed)
		close(sub.c)
		delete(s.subs, id)
	}
	for id, sub := range s.incSubs {
		close(sub.c)
		delete(s.incSubs, id)
	}
	s.closed = true
	return err
}

// Hunt executes a TBQL query against the store's latest published
// snapshot. It takes no session lock: the engine pins the snapshot at
// entry and reads only that generation, so hunts run concurrently with
// each other and with an in-flight append — an appending batch becomes
// visible to hunts atomically when its snapshot publishes, never as a
// torn prefix. The context cancels the hunt cooperatively; nil means no
// cancellation.
func (s *Session) Hunt(ctx context.Context, src string) (*engine.Result, engine.Stats, error) {
	return s.backend.Hunt(ctx, src)
}

// advanceLocked moves parsed events through the reducer, appends whatever
// sealed, and fires standing queries. Callers hold the write lock.
func (s *Session) advanceLocked(flush bool) (IngestStats, error) {
	var st IngestStats
	if flush {
		if err := s.parser.FlushChunk(); err != nil {
			return st, err
		}
	}
	parsed := s.parserLog.TakeEvents()
	st.EventsParsed = len(parsed)
	s.reducer.Observe(parsed)

	var sealed []audit.Event
	if flush {
		sealed = s.reducer.Flush()
	} else {
		sealed = s.reducer.Seal()
	}
	st.EventsSealed = len(sealed)
	if len(s.replay) > 0 {
		// A previous append failed after the reducer drained these events;
		// retry them ahead of the newly sealed batch.
		sealed = append(s.replay, sealed...)
		s.replay = nil
	}
	newEntities := s.backend.EntityTable().Since(s.lastEntityID)
	st.EntitiesAdded = len(newEntities)

	if len(sealed) > 0 || len(newEntities) > 0 {
		deltaFloor := s.backend.NextEventID()
		if s.dur != nil {
			// Write-ahead: the batch must be durable (per the fsync policy)
			// before the in-memory apply. A WAL failure is handled exactly
			// like a failed append — the retry rewrites the frame under the
			// same commit sequence, and replay keeps the last of an
			// equal-seq run.
			if err := s.dur.logBatch(newEntities, sealed); err != nil {
				s.replay = sealed
				return st, err
			}
		}
		if err := s.backend.AppendBatch(newEntities, sealed); err != nil {
			// AppendBatch rolled back; stash the sealed events (the reducer
			// no longer holds them) and leave lastEntityID where it was so
			// the retry re-collects the same entity delta.
			s.replay = sealed
			return st, err
		}
		if s.dur != nil {
			// The apply committed; the WAL frame's sequence is now the
			// session's durable frontier.
			s.dur.seq++
		}
		s.lastEntityID = s.backend.EntityTable().MaxID()
		if len(sealed) > 0 {
			s.batch++
			st.Firings = s.fireLocked(deltaFloor)
			if s.tact != nil {
				// The tactical round runs strictly after the successful
				// append, against the batch's published state — never
				// inside AppendBatch, and never for a rolled-back batch
				// (a failed append returns above and replays later, so
				// the retried events are tagged exactly once).
				t0 := time.Now()
				rs := s.tact.RoundOn(s.backend.TacticalSource(), deltaFloor)
				st.AlertsTagged = rs.Alerts
				st.IncidentsOpen = rs.Incidents
				if rs.Alerts > 0 {
					s.notifyIncidentSubsLocked(rs)
				}
				if s.cfg.OnTacticalRound != nil {
					s.cfg.OnTacticalRound(time.Since(t0), rs)
				}
			}
			if s.dur != nil {
				if s.dur.sinceFlush++; s.dur.sinceFlush >= s.dur.cfg.SegmentEvery {
					// A failed flush must not fail ingestion: the error is
					// reported through OnSegmentFlush and the WAL keeps
					// growing until a flush succeeds.
					_ = s.flushSegmentsLocked()
				}
			}
		}
	}
	if s.tact != nil && st.AlertsTagged == 0 {
		st.IncidentsOpen = s.tact.Stats().Incidents
	}
	st.Pending = s.reducer.Pending()
	st.PartialBuffered = s.parser.PartialLen()
	st.Watermark = s.reducer.Watermark()
	st.Batch = s.batch
	return st, nil
}
