package stream

// Crash-safety tests for the durable session: clean-restart round trips,
// randomized fault-injected crash/recovery equivalence (single store and
// sharded), torn-tail truncation, and mid-file corruption semantics.
//
// The chaos harness models a crash as a ModePanic fault at one of the
// durability fault points: the panic unwinds out of the ingest call, the
// session is abandoned exactly as a killed process would leave it (WAL
// file handle open, in-memory state gone), and recovery opens a brand-new
// session from the directory. Records are crafted so one record seals as
// exactly one event — the recovered store's event count tells the driver
// where to resume feeding, and the final store must be equivalent to a
// never-crashed oracle session fed the full record sequence.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/segment"
	"threatraptor/internal/shard"
	"threatraptor/internal/tactical"
)

// chaosQuery joins the crafted read and write events through a shared
// process, so recovered relational rows, graph adjacency, and the entity
// table all participate in the equivalence hunt.
const chaosQuery = `proc p1 read file f1["%/etc/conf%"] as evt1
proc p1 write file f2["%/tmp/out%"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`

// chaosRecords crafts n records that each seal as exactly one reduced
// event: distinct objects defeat reduction merging, and 2 s spacing keeps
// records well apart. Subjects cycle over 7 processes so some process
// both reads /etc/conf* and writes /tmp/out*, giving chaosQuery rows.
func chaosRecords(n int) []audit.Record {
	recs := make([]audit.Record, n)
	base := int64(1_700_000_000_000_000)
	for i := range recs {
		r := audit.Record{
			Time: base + int64(i)*2_000_000,
			PID:  100 + i%7, Exe: fmt.Sprintf("/usr/bin/tool%d", i%7),
			User: "alice", Group: "users",
		}
		switch i % 3 {
		case 0:
			r.Call, r.FD, r.Path, r.Bytes = audit.SysRead, audit.FDFile, fmt.Sprintf("/etc/conf%d", i), 64
		case 1:
			r.Call, r.FD, r.Path, r.Bytes = audit.SysWrite, audit.FDFile, fmt.Sprintf("/tmp/out%d", i), 128
		default:
			r.Call, r.FD = audit.SysSendto, audit.FDIPv4
			r.SrcIP, r.SrcPort = "10.0.0.5", 40000+i
			r.DstIP, r.DstPort, r.Proto = fmt.Sprintf("203.0.113.%d", i%250+1), 443, "tcp"
			r.Bytes = 1 << 10
		}
		recs[i] = r
	}
	return recs
}

// durableConfig is the chaos tests' session config: tiny flush cadence so
// every run crosses several segment generations, tactical layer on so
// incident state participates in the equivalence.
func durableConfig(t testing.TB, dir string) Config {
	cfg := Config{Tactical: tactical.Config{Rules: chaosRules(t)}}
	cfg.Durability = Durability{Dir: dir, SegmentEvery: 4}
	return cfg
}

// openSingle opens a durable session over the classic single store.
func openSingle(t testing.TB, cfg Config) (*Session, RecoveryStats, error) {
	t.Helper()
	return OpenDurable(cfg,
		func() (DurableBackend, error) {
			store, err := engine.NewStore(audit.NewLog())
			if err != nil {
				return nil, err
			}
			return NewBackend(store, &engine.Engine{Store: store}), nil
		},
		func(imgs []segment.RoleImage, topo segment.Topology) (DurableBackend, error) {
			if topo.Shards != 0 {
				return nil, fmt.Errorf("unexpected sharded topology %+v", topo)
			}
			gimg := imgs[0].Image
			store, err := engine.OpenStore(gimg, gimg.EntityCols, gimg.Entities, audit.RestoreTable(gimg.Entities))
			if err != nil {
				return nil, err
			}
			return NewBackend(store, &engine.Engine{Store: store}), nil
		})
}

// openSharded opens a durable session over an n-way sharded store.
func openSharded(t testing.TB, cfg Config, n int) (*Session, RecoveryStats, error) {
	t.Helper()
	return OpenDurable(cfg,
		func() (DurableBackend, error) {
			return shard.New(audit.NewLog(), n, shard.ByHash())
		},
		func(imgs []segment.RoleImage, topo segment.Topology) (DurableBackend, error) {
			if topo.Shards != n {
				return nil, fmt.Errorf("recovered topology %+v, want %d shards", topo, n)
			}
			part, err := shard.ParsePartitioner(topo.PartitionBy)
			if err != nil {
				return nil, err
			}
			return shard.OpenImages(imgs, topo.Shards, part)
		})
}

// oracleSession builds the never-crashed reference: a non-durable session
// fed the same records through the same one-record-per-batch protocol.
func oracleSession(t testing.TB, recs []audit.Record) *Session {
	t.Helper()
	sess, _ := emptySession(t, Config{Tactical: tactical.Config{Rules: chaosRules(t)}})
	for i := range recs {
		if err := feedOne(sess, recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

// feedOne ingests one record and flushes it into its own sealed batch.
func feedOne(sess *Session, rec audit.Record) error {
	if _, err := sess.IngestRecords([]audit.Record{rec}); err != nil {
		return err
	}
	_, err := sess.Flush()
	return err
}

// sessionRows executes the chaos query on a session and returns its rows
// joined and sorted.
func sessionRows(t testing.TB, sess *Session) []string {
	t.Helper()
	res, _, err := sess.Hunt(nil, chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, row := range res.Set.Strings() {
		rows = append(rows, strings.Join(row, "|"))
	}
	sort.Strings(rows)
	return rows
}

// assertRecoveredEquals pins full store equivalence between a recovered
// session and the never-crashed oracle fed the same records: the event
// log (IDs, times, amounts — everything), the ID frontier, the entity
// table, hunt results, and the tactical incident ranking.
func assertRecoveredEquals(t *testing.T, sess, oracle *Session) {
	t.Helper()
	got, want := sess.Store(), oracle.Store()
	if !reflect.DeepEqual(got.Log.Events, want.Log.Events) {
		t.Fatalf("recovered event log diverges: %d events vs %d", len(got.Log.Events), len(want.Log.Events))
	}
	if got.NextEventID() != want.NextEventID() {
		t.Fatalf("recovered NextEventID %d, oracle %d", got.NextEventID(), want.NextEventID())
	}
	if gn, on := got.Log.Entities.Len(), want.Log.Entities.Len(); gn != on {
		t.Fatalf("recovered %d entities, oracle %d", gn, on)
	}
	for _, e := range want.Log.Entities.Dense() {
		ge := got.Log.Entities.Lookup(e.ID)
		if ge == nil || ge.Key() != e.Key() {
			t.Fatalf("entity %d diverges after recovery", e.ID)
		}
	}
	wantRows := sessionRows(t, oracle)
	if len(wantRows) == 0 {
		t.Fatal("oracle hunt returned no rows; equivalence would be vacuous")
	}
	if rows := sessionRows(t, sess); !reflect.DeepEqual(rows, wantRows) {
		t.Fatalf("hunt rows diverge after recovery:\ngot  %v\nwant %v", rows, wantRows)
	}
	wantInc, gotInc := incidentJSON(t, oracle), incidentJSON(t, sess)
	if !bytes.Equal(gotInc, wantInc) {
		t.Fatalf("incident ranking diverges after recovery:\ngot  %s\nwant %s", clipStr(gotInc), clipStr(wantInc))
	}
}

func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	recs := chaosRecords(30)
	cfg := durableConfig(t, dir)

	sess, rs, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Recovered {
		t.Fatalf("fresh directory reported recovery: %+v", rs)
	}
	for _, r := range recs[:20] {
		if err := feedOne(sess, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean shutdown flushed a final generation: recovery restores from
	// segments alone, with nothing to replay.
	sess2, rs2, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rs2.Recovered || rs2.ReplayedRecords != 0 || rs2.TornTailTruncated {
		t.Fatalf("clean restart stats: %+v", rs2)
	}
	assertRecoveredEquals(t, sess2, oracleSession(t, recs[:20]))

	// Warm start: the recovered session keeps ingesting where the old one
	// stopped, and a second restart sees the union.
	for _, r := range recs[20:] {
		if err := feedOne(sess2, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess2.Close(); err != nil {
		t.Fatal(err)
	}
	sess3, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredEquals(t, sess3, oracleSession(t, recs))
	sess3.Close()
}

// crashPoints are the fault points a chaos run schedules ingest-path
// panics at; FaultRecoveryRead is exercised separately during reopen.
var crashPoints = []string{
	segment.FaultWALAppend,
	segment.FaultWALSync,
	segment.FaultSegmentFlush,
	segment.FaultManifestRename,
}

// chaosRun drives one full crash/recovery schedule: feed records one at a
// time, crash at randomized fault points (ModePanic), recover from the
// directory, resume from the recovered event count, and finally compare
// against the never-crashed oracle. open is the session factory, so the
// same harness runs the single and sharded backends.
func chaosRun(t *testing.T, seed int64, open func(testing.TB, Config) (*Session, RecoveryStats, error)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	recs := chaosRecords(40)
	oracle := oracleSession(t, recs)

	sess, _, err := open(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for i := 0; i < len(recs); {
		if crashes < 6 && rng.Intn(3) == 0 {
			// Schedule a crash at a random upcoming hit of a random point.
			// Each fed record appends (and under FsyncAlways syncs) up to
			// two WAL frames, and flush batches write several segments, so
			// small hit numbers land within the next record or two.
			point := crashPoints[rng.Intn(len(crashPoints))]
			faultinject.Arm(faultinject.Plan{point: {Hits: []int{1 + rng.Intn(3)}, Mode: faultinject.ModePanic}})
		}
		panicked := func() (panicked bool) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			if err := feedOne(sess, recs[i]); err != nil {
				// No error-mode faults are scheduled here; anything
				// surfacing is a real bug.
				t.Errorf("record %d: %v", i, err)
			}
			return false
		}()
		faultinject.Disarm()
		if !panicked {
			i++
			continue
		}
		// "Crash": abandon the wedged session and recover from disk.
		// Sometimes a recovery-read crash is scheduled first — the open
		// must fail (or panic), and the retry with the fault disarmed must
		// succeed from the same directory.
		crashes++
		if rng.Intn(3) == 0 {
			faultinject.Arm(faultinject.Plan{segment.FaultRecoveryRead: {Hits: []int{1}, Mode: faultinject.ModePanic}})
			func() {
				defer func() { recover() }()
				if s2, _, err := open(t, cfg); err == nil {
					s2.Close()
					t.Error("recovery succeeded under an armed recovery-read panic")
				}
			}()
			faultinject.Disarm()
		}
		recovered, rs, err := open(t, cfg)
		if err != nil {
			t.Fatalf("recovery after crash %d: %v", crashes, err)
		}
		if rs.DroppedFrames != 0 {
			t.Fatalf("crash recovery dropped frames without corruption: %+v", rs)
		}
		sess = recovered
		// One record seals as one event, so the event count is the replay
		// frontier: resume feeding right after it.
		i = int(sess.Store().NextEventID() - 1)
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	assertRecoveredEquals(t, sess, oracle)
	if crashes == 0 {
		t.Log("schedule produced no crashes; equivalence still checked")
	}
	sess.Close()
}

func TestDurableChaosRestartEquivalence(t *testing.T) {
	defer faultinject.Disarm()
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			chaosRun(t, seed, openSingle)
		})
	}
}

func TestDurableChaosShardedEquivalence(t *testing.T) {
	defer faultinject.Disarm()
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			chaosRun(t, int64(100+n), func(tb testing.TB, cfg Config) (*Session, RecoveryStats, error) {
				return openSharded(tb, cfg, n)
			})
		})
	}
}

// TestDurableShardedPartialFlushRollsBack pins fleet-wide flush
// atomicity: a partition segment write that fails mid-generation must
// leave the previous manifest live, and recovery must restore the
// previous generation plus the full WAL tail — nothing from the aborted
// generation.
func TestDurableShardedPartialFlushRollsBack(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	recs := chaosRecords(8)

	sess, _, err := openSharded(t, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var flushErrs int
	sess.dur.cfg.OnSegmentFlush = func(st FlushStats) {
		if st.Err != nil {
			flushErrs++
		}
	}
	// Each flush writes global + p0 + p1 (three segment-write hits). The
	// first flush (after 4 batches) must succeed untouched; fail the
	// second flush's p1 write — hit 6.
	faultinject.Arm(faultinject.Plan{segment.FaultSegmentFlush: {Hits: []int{6}, Mode: faultinject.ModeError}})
	for _, r := range recs {
		if err := feedOne(sess, r); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Disarm()
	if flushErrs == 0 {
		t.Fatal("partial-flush fault never fired")
	}
	// Abandon without Close (a Close would flush a clean generation);
	// recovery must rebuild generation 1 plus the WAL tail = all 8
	// records, with the aborted generation's files ignored.
	recovered, rs, err := openSharded(t, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Recovered || rs.ReplayedRecords == 0 {
		t.Fatalf("expected segment restore plus WAL replay, got %+v", rs)
	}
	assertRecoveredEquals(t, recovered, oracleSession(t, recs))
	recovered.Close()
}

// writeWALPrefix builds a data dir whose WAL holds the given records with
// no manifest — the crash-before-first-flush shape the torn-tail and
// corruption tests mutate.
func writeWALPrefix(t *testing.T, dir string, recs []audit.Record) {
	t.Helper()
	cfg := Config{}
	cfg.Durability = Durability{Dir: dir, SegmentEvery: 1 << 30} // never flush
	sess, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := feedOne(sess, r); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close so the WAL keeps every frame and no segment
	// generation exists.
	if err := sess.dur.wal.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	recs := chaosRecords(9)
	writeWALPrefix(t, dir, recs)

	// Cut the final frame short: the classic crash-mid-append shape. The
	// torn frame is the last record's sealed event (its entity frame
	// landed separately, at ingest time).
	path := filepath.Join(dir, segment.WALFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := durableConfig(t, dir)
	sess, rs, err := openSingle(t, cfg)
	if err != nil {
		t.Fatalf("torn tail must recover silently, got %v", err)
	}
	if !rs.TornTailTruncated || rs.DroppedFrames != 0 {
		t.Fatalf("torn-tail stats: %+v", rs)
	}
	if got, want := int(sess.Store().NextEventID()-1), len(recs)-1; got != want {
		t.Fatalf("recovered %d events, want %d", got, want)
	}
	// Everything before the torn frame survived: the event log matches
	// the oracle over the surviving prefix (the last record's entities
	// were durable on their own, so only events are compared).
	oracle := oracleSession(t, recs[:len(recs)-1])
	if !reflect.DeepEqual(sess.Store().Log.Events, oracle.Store().Log.Events) {
		t.Fatal("surviving prefix diverges from oracle after torn-tail truncation")
	}
	if got, want := sessionRows(t, sess), sessionRows(t, oracle); !reflect.DeepEqual(got, want) {
		t.Fatalf("hunt rows diverge after torn-tail truncation:\ngot  %v\nwant %v", got, want)
	}
	// The truncated WAL is consistent: ingestion continues and a restart
	// replays cleanly.
	if err := feedOne(sess, recs[len(recs)-1]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	sess2, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredEquals(t, sess2, oracleSession(t, recs))
	sess2.Close()
}

func TestDurableMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	recs := chaosRecords(6)
	writeWALPrefix(t, dir, recs)

	// Flip a byte in the first frame's payload: its checksum fails with
	// valid frames beyond it — bit rot, not a torn tail.
	path := filepath.Join(dir, segment.WALFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := durableConfig(t, dir)
	if _, _, err := openSingle(t, cfg); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("mid-file corruption must refuse startup with ErrCorrupt, got %v", err)
	}

	// The operator opts into degraded recovery: the consistent prefix
	// loads, the loss is reported, and the session keeps working.
	cfg.Durability.RecoverCorrupt = true
	sess, rs, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DroppedFrames == 0 {
		t.Fatalf("degraded recovery reported no dropped frames: %+v", rs)
	}
	if got := int(sess.Store().NextEventID() - 1); got >= len(recs) {
		t.Fatalf("degraded recovery kept %d events despite corruption", got)
	}
	if err := feedOne(sess, chaosRecords(7)[6]); err != nil {
		t.Fatalf("ingest after degraded recovery: %v", err)
	}
	sess.Close()
}

func TestDurableCorruptSegmentRefusesStartup(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	sess, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range chaosRecords(8) {
		if err := feedOne(sess, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, m.Segments[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Segment corruption has no consistent prefix to degrade to: refused
	// even under RecoverCorrupt.
	cfg.Durability.RecoverCorrupt = true
	if _, _, err := openSingle(t, cfg); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("corrupt segment must refuse startup with ErrCorrupt, got %v", err)
	}
}

func TestDurableWALFaultRetriesInSession(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	sess, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := chaosRecords(8)
	if err := feedOne(sess, recs[0]); err != nil {
		t.Fatal(err)
	}
	// Hit 1 is the next ingest's entity frame; hit 2 is the Flush frame
	// carrying the sealed event. The injected error surfaces from Flush,
	// the sealed batch parks in the replay slot, and the next advance
	// rewrites the frame under the same sequence and applies it.
	faultinject.Arm(faultinject.Plan{segment.FaultWALAppend: {Hits: []int{2}, Mode: faultinject.ModeError}})
	if _, err := sess.IngestRecords(recs[1:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Flush(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("expected injected WAL error, got %v", err)
	}
	faultinject.Disarm()
	for _, r := range recs[2:] {
		if err := feedOne(sess, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	sess2, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredEquals(t, sess2, oracleSession(t, recs))
	sess2.Close()
}

func TestDurableFsyncPolicyAndCallbacks(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	var fsyncs int
	var flushes []FlushStats
	cfg.Durability.Fsync = segment.FsyncAlways
	cfg.Durability.OnWALFsync = func(time.Duration) { fsyncs++ }
	cfg.Durability.OnSegmentFlush = func(st FlushStats) { flushes = append(flushes, st) }
	sess, _, err := openSingle(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range chaosRecords(9) {
		if err := feedOne(sess, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if fsyncs == 0 {
		t.Fatal("fsync observer never called under FsyncAlways")
	}
	if len(flushes) < 2 {
		t.Fatalf("expected periodic + close flushes, got %d", len(flushes))
	}
	for _, st := range flushes {
		if st.Err != nil {
			t.Fatalf("flush failed: %v", st.Err)
		}
		if st.ManifestSeq == 0 || st.Segments != 1 || st.Bytes == 0 {
			t.Fatalf("flush stats: %+v", st)
		}
	}
	// Generations are strictly increasing and the manifest on disk names
	// the last one.
	for i := 1; i < len(flushes); i++ {
		if flushes[i].ManifestSeq != flushes[i-1].ManifestSeq+1 {
			t.Fatalf("non-monotonic generations: %+v", flushes)
		}
	}
	m, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != flushes[len(flushes)-1].ManifestSeq {
		t.Fatalf("manifest seq %d, last flush %d", m.Seq, flushes[len(flushes)-1].ManifestSeq)
	}

	// An unknown policy is rejected up front.
	bad := durableConfig(t, t.TempDir())
	bad.Durability.Fsync = "sometimes"
	if _, _, err := openSingle(t, bad); err == nil {
		t.Fatal("invalid fsync policy accepted")
	}
}
