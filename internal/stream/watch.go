package stream

import (
	"sync"

	"threatraptor/internal/engine"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/relational"
	"threatraptor/internal/tbql"
)

// Match is one standing-query firing: a complete binding's projected
// return row, delivered once (deduplicated against every prior firing of
// the same subscription).
type Match struct {
	// Batch is the sealed-batch sequence number whose append produced
	// the firing.
	Batch int64
	// Columns labels Row, in the query's RETURN order.
	Columns []string
	// Row is the projected return row.
	Row []relational.Value
	// Terminal marks the final delivery of a quarantined subscription:
	// the query failed Config.QuarantineAfter consecutive evaluations,
	// its views were dropped, and the channel closes after this match.
	// Terminal matches carry no row; Subscription.Err holds the cause.
	Terminal bool
}

// Subscription is one registered standing query. Matches arrive on C;
// the channel is closed by Unwatch or Session.Close.
type Subscription struct {
	// ID identifies the subscription within its session.
	ID int64
	// Query is the TBQL source as registered.
	Query string
	// C delivers matches. The channel is buffered (Config.MatchBuffer);
	// when the consumer lags past the buffer, matches are dropped and
	// counted rather than stalling ingestion.
	C <-chan Match

	c        chan Match
	analyzed *tbql.Analyzed
	seen     *relational.RowSet
	// seeded marks variable-length-path subscriptions, whose seen set was
	// pre-filled with the store's history at Watch time (their delta
	// evaluation is a full re-execution). Flushing a seeded set would
	// re-deliver all of pre-Watch history as fresh alerts, so the
	// DedupHighWater cap does not apply to them.
	seeded bool

	mu      sync.Mutex
	dropped int64
	resets  int64
	err     error
	// failures counts consecutive failed evaluations; quarantine trips
	// when it reaches Config.QuarantineAfter. A clean evaluation resets it.
	failures    int
	quarantined bool
}

// Dropped reports how many matches were discarded because C's buffer was
// full.
func (sub *Subscription) Dropped() int64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// DedupResets reports how many times the firing-dedup set hit
// Config.DedupHighWater and was flushed. A nonzero value means delivery
// degraded from exactly-once to at-least-once: bindings delivered before a
// flush may be delivered again if a later batch re-derives them.
func (sub *Subscription) DedupResets() int64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.resets
}

// Err returns the last evaluation error (nil when every batch evaluated
// cleanly). Below the quarantine threshold an erroring subscription stays
// registered and the error is overwritten by the next evaluation; once
// the subscription is quarantined the error latches permanently.
func (sub *Subscription) Err() error {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.err
}

// Quarantined reports whether the subscription was removed after
// Config.QuarantineAfter consecutive failed evaluations. Its channel is
// closed (after a best-effort Terminal match) and Err is latched.
func (sub *Subscription) Quarantined() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.quarantined
}

// Watch compiles a TBQL query and subscribes it to the stream: each
// sealed batch is evaluated incrementally (only new rows join against the
// indexed history) and previously unseen complete bindings are delivered
// on the returned subscription's channel. Matches fire only for bindings
// that use at least one event sealed after Watch — query history with
// Session.Hunt instead.
func (s *Session) Watch(src string) (*Subscription, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	a, err := tbql.Analyze(q)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.nextSub++
	c := make(chan Match, s.cfg.MatchBuffer)
	sub := &Subscription{
		ID:       s.nextSub,
		Query:    src,
		C:        c,
		c:        c,
		analyzed: a,
		seen:     relational.NewRowSet(),
	}
	// Queries with a variable-length path pattern evaluate by full
	// re-execution (ExecuteDelta's fallback), so seed the dedup set with
	// the current history — otherwise the first sealed batch would
	// deliver every pre-Watch binding as a fresh match.
	if engine.HasVarLenPath(a) {
		sub.seeded = true
		res, _, err := s.backend.Execute(nil, a)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Set.Rows {
			sub.seen.Add(row)
		}
	}
	s.subs[sub.ID] = sub
	return sub, nil
}

// Unwatch removes a subscription, closes its channel, and releases the
// engine's materialized views for its query (a long-lived session must
// not keep match caches for queries nobody watches). It is a no-op for
// subscriptions of other sessions or already-removed ones.
func (s *Session) Unwatch(sub *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.subs[sub.ID]; ok && cur == sub {
		delete(s.subs, sub.ID)
		s.backend.DropViews(sub.analyzed)
		close(sub.c)
	}
}

// Subscriptions returns how many standing queries are registered.
func (s *Session) Subscriptions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subs)
}

// fireLocked evaluates every standing query against the freshly appended
// batch (events with ID >= deltaFloor) and delivers new matches. Callers
// hold the write lock, which also serializes evaluation against the next
// append.
func (s *Session) fireLocked(deltaFloor int64) int {
	fired := 0
	for _, sub := range s.subs {
		// Bound the dedup set before evaluating so one batch's matches
		// dedup against a consistent set (see Config.DedupHighWater for
		// the at-least-once semantics past a flush). History-seeded sets
		// (variable-length-path queries) are exempt: flushing one would
		// re-deliver all pre-Watch matches as fresh alerts.
		if !sub.seeded && s.cfg.DedupHighWater > 0 && sub.seen.Len() >= s.cfg.DedupHighWater {
			sub.seen = relational.NewRowSet()
			sub.mu.Lock()
			sub.resets++
			sub.mu.Unlock()
		}
		res, _, err := s.backend.ExecuteDelta(nil, sub.analyzed, deltaFloor)
		if err == nil {
			err = faultinject.Hit(FaultDeliver)
		}
		if err != nil {
			sub.mu.Lock()
			sub.err = err
			sub.failures++
			trip := s.cfg.QuarantineAfter > 0 && sub.failures >= s.cfg.QuarantineAfter
			if trip {
				sub.quarantined = true
			}
			sub.mu.Unlock()
			if trip {
				// Quarantine: a persistently failing query must not keep
				// burning every batch. Drop its views, deliver a terminal
				// marker best-effort, and close the channel.
				delete(s.subs, sub.ID)
				s.backend.DropViews(sub.analyzed)
				select {
				case sub.c <- Match{Batch: s.batch, Terminal: true}:
				default:
				}
				close(sub.c)
			}
			continue
		}
		sub.mu.Lock()
		sub.err = nil
		sub.failures = 0
		sub.mu.Unlock()
		for _, row := range res.Set.Rows {
			if !sub.seen.Add(row) {
				continue
			}
			m := Match{Batch: s.batch, Columns: res.Set.Columns, Row: row}
			select {
			case sub.c <- m:
				fired++
			default:
				sub.mu.Lock()
				sub.dropped++
				sub.mu.Unlock()
			}
		}
	}
	return fired
}
