package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/engine"
	"threatraptor/internal/faultinject"
	"threatraptor/internal/rules"
	"threatraptor/internal/tactical"
)

// chaosRules compiles the rule set every chaos build tags with, so the
// fault-free and fault-injected incident lists can be compared.
func chaosRules(t testing.TB) *rules.Set {
	t.Helper()
	set, err := rules.Compile([]rules.Rule{
		{Name: "credential-file-read", Tactic: "credential-access", Severity: 8,
			Ops: []string{"read"}, Where: map[string]string{"object.kind": "file", "object.name": "/etc/*"}},
		{Name: "staging-write-tmp", Tactic: "collection",
			Ops: []string{"write"}, Where: map[string]string{"object.kind": "file", "object.name": "/tmp/*"}},
		{Name: "outbound-connect", Tactic: "command-and-control",
			Ops: []string{"connect"}, Where: map[string]string{"object.kind": "ip"}},
		{Name: "outbound-send", Tactic: "exfiltration", Severity: 7,
			Ops: []string{"send"}, Where: map[string]string{"object.kind": "ip"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// incidentJSON renders a session's ranked incidents byte-stably.
func incidentJSON(t testing.TB, sess *Session) []byte {
	t.Helper()
	b, err := tactical.MarshalIncidents(sess.Incidents())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSessionCatchesUpPreloadedHistory pins the catch-up round: a session
// opened over a store that was batch-built before it (the daemon's
// -log/-demo preload path) must tag the preloaded events at creation, and
// its incident list must equal the one-shot batch analysis of the same
// snapshot. An empty store costs no round.
func TestSessionCatchesUpPreloadedHistory(t *testing.T) {
	set := chaosRules(t)
	store := batchStore(t, dataLeakRecords(t, 0.1))
	var rounds int
	cfg := Config{
		Tactical:        tactical.Config{Rules: set},
		OnTacticalRound: func(_ time.Duration, _ tactical.RoundStats) { rounds++ },
	}
	sess := New(store, &engine.Engine{Store: store}, cfg)
	st := sess.TacticalStats()
	if st.Rounds != 1 || st.AlertsTagged == 0 || rounds != 1 {
		t.Fatalf("catch-up round missing: stats %+v, observer calls %d", st, rounds)
	}
	got := incidentJSON(t, sess)
	want, err := tactical.MarshalIncidents(tactical.Analyze(store.Snapshot(), tactical.Config{Rules: set}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("catch-up incidents != one-shot analysis:\ngot  %s\nwant %s", clipStr(got), clipStr(want))
	}

	empty, _ := emptySession(t, Config{Tactical: tactical.Config{Rules: set}})
	if st := empty.TacticalStats(); st.Rounds != 0 {
		t.Fatalf("empty store ran a catch-up round: %+v", st)
	}
}

func clipStr(b []byte) string {
	if len(b) > 400 {
		return string(b[:400]) + "..."
	}
	return string(b)
}

// readLine renders one read-syscall record as a wire line.
func readLine(ts int64, pid int, exe, path string) string {
	r := audit.Record{Time: ts, Call: audit.SysRead, PID: pid, Exe: exe,
		User: "root", FD: audit.FDFile, Path: path, Bytes: 10}
	return r.Format() + "\n"
}

// TestWatchClosedSession is the regression test for Watch missing the
// closed check: registering a standing query on a closed session must
// fail like Ingest and Flush do, not register a subscription that can
// never fire.
func TestWatchClosedSession(t *testing.T) {
	sess, _ := emptySession(t, DefaultConfig())
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Watch(`proc p read file f return f`); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Watch on closed session: got %v, want ErrSessionClosed", err)
	}
	if sess.Subscriptions() != 0 {
		t.Fatal("Watch on closed session registered a subscription")
	}
	if _, err := sess.Ingest(bytes.NewBufferString("x")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Ingest on closed session: got %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Flush(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Flush on closed session: got %v, want ErrSessionClosed", err)
	}
}

// TestQuarantineAfterConsecutiveFailures pins the quarantine contract: a
// standing query that fails QuarantineAfter consecutive evaluations is
// removed, its views are dropped, a terminal Match is delivered, the
// channel closes, and Err latches — while the session itself keeps
// ingesting and hunting.
func TestQuarantineAfterConsecutiveFailures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuarantineAfter = 3
	sess, en := emptySession(t, cfg)
	sub, err := sess.Watch(`proc p read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.Plan{
		FaultDeliver: {Hits: []int{1, 2, 3}, Mode: faultinject.ModeError},
	})
	t.Cleanup(faultinject.Disarm)

	// Each sealing ingest evaluates the standing query once (the watermark
	// lags, so the first ingests seal nothing); three consecutive injected
	// failures trip the quarantine.
	for i := 0; i < 8; i++ {
		line := readLine(int64(i+1)*2_000_000, 100+i, "/bin/cat", fmt.Sprintf("/data/f%d", i))
		if _, err := sess.Ingest(bytes.NewBufferString(line)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if !sub.Quarantined() {
		t.Fatalf("subscription not quarantined after %d failures (Err: %v)", faultinject.Count(FaultDeliver), sub.Err())
	}
	if err := sub.Err(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("latched Err = %v, want ErrInjected", err)
	}
	if sess.Subscriptions() != 0 {
		t.Fatal("quarantined subscription still registered")
	}
	if vs := en.Views(); vs.CachedRows != 0 {
		t.Fatalf("quarantine left %d cached view rows", vs.CachedRows)
	}
	// The channel delivers the terminal marker and then closes.
	sawTerminal := false
	for m := range sub.C {
		if m.Terminal {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("no terminal Match before channel close")
	}

	// The session is not poisoned: later ingests and hunts still work.
	faultinject.Disarm()
	if _, err := sess.Ingest(bytes.NewBufferString(readLine(60_000_000, 200, "/bin/cat", "/data/late"))); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Hunt(nil, `proc p read file f return p, f`); err != nil {
		t.Fatalf("post-quarantine hunt: %v", err)
	}
}

// TestFailureCountResetsOnRecovery: a single failed evaluation latches an
// error but a clean one clears it, so intermittent failures never
// quarantine.
func TestFailureCountResetsOnRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuarantineAfter = 2
	sess, _ := emptySession(t, cfg)
	sub, err := sess.Watch(`proc p read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	// Fail evaluations 1 and 3 — never two in a row.
	faultinject.Arm(faultinject.Plan{
		FaultDeliver: {Hits: []int{1, 3}, Mode: faultinject.ModeError},
	})
	t.Cleanup(faultinject.Disarm)
	for i := 0; i < 8; i++ {
		line := readLine(int64(i+1)*2_000_000, 100+i, "/bin/cat", fmt.Sprintf("/data/g%d", i))
		if _, err := sess.Ingest(bytes.NewBufferString(line)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if got := faultinject.Count(FaultDeliver); got < 4 {
		t.Fatalf("only %d evaluations ran; the recovery window was never exercised", got)
	}
	if sub.Quarantined() {
		t.Fatal("intermittent failures must not quarantine")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("Err after clean evaluation = %v, want nil", err)
	}
}

// TestSlowConsumerNeverStallsIngestion (run under -race in CI): a
// consumer that stops draining past Config.MatchBuffer only increments
// Dropped(); ingestion completes and every firing is accounted for as
// delivered or dropped.
func TestSlowConsumerNeverStallsIngestion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MatchBuffer = 2
	sess, _ := emptySession(t, cfg)
	sub, err := sess.Watch(`proc p read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		// Distinct (proc, file) pairs so every firing is a fresh binding.
		line := readLine(int64(i+1)*2_000_000, 300+i, fmt.Sprintf("/bin/tool%d", i), fmt.Sprintf("/data/f%d", i))
		if _, err := sess.Ingest(bytes.NewBufferString(line)); err != nil {
			t.Fatalf("ingest %d stalled or failed: %v", i, err)
		}
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	delivered := len(drainMatches(sub))
	dropped := int(sub.Dropped())
	if dropped == 0 {
		t.Fatalf("expected drops with MatchBuffer=2 and %d firings (delivered %d)", n, delivered)
	}
	if delivered+dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d firings", delivered, dropped, n)
	}
}

// TestUnwatchDuringActiveFiring (run under -race in CI): Unwatch racing a
// consuming goroutine and concurrent hunts against live ingestion is
// safe — the channel closes exactly once and nothing deadlocks.
func TestUnwatchDuringActiveFiring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MatchBuffer = 4
	sess, _ := emptySession(t, cfg)
	sub, err := sess.Watch(`proc p read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for range sub.C {
		}
	}()
	unwatched := make(chan struct{})
	go func() {
		defer wg.Done()
		<-unwatched
		sess.Unwatch(sub)
	}()
	const n = 30
	for i := 0; i < n; i++ {
		line := readLine(int64(i+1)*2_000_000, 300+i, fmt.Sprintf("/bin/tool%d", i), fmt.Sprintf("/data/f%d", i))
		if _, err := sess.Ingest(bytes.NewBufferString(line)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if i == n/2 {
			close(unwatched)
		}
	}
	if _, err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if sess.Subscriptions() != 0 {
		t.Fatal("subscription still registered after Unwatch")
	}
	// Ingestion after the unwatch still works (no lock left held).
	if _, err := sess.Ingest(bytes.NewBufferString(readLine(100_000_000, 999, "/bin/cat", "/data/last"))); err != nil {
		t.Fatal(err)
	}
}

// chaosBuild runs the fixed input through a session in chunks, retrying
// every failed call (injected faults leave the pipeline retryable), and
// returns the session with the store fully flushed. A nil plan builds the
// fault-free reference.
//
// While the build runs, a concurrent reader goroutine continuously pins
// the store's published snapshot and hunts against it — snapshot reads
// must stay consistent through injected append failures, rollbacks, and
// panics: the frontier never moves backwards and never lands between a
// batch's relational and graph halves (mid-append frontiers are whole
// batch numbers or nothing). Hunt errors are tolerated only when fault
// injection is armed and produced them.
func chaosBuild(t *testing.T, lines []string, chunks int, plan faultinject.Plan) (*Session, *engine.Engine) {
	t.Helper()
	cfg := DefaultConfig()
	// Tactical rounds run on every build so the chaos comparison also
	// covers alert tagging: a rolled-back append must never tag a phantom
	// alert (events are tagged exactly once, on the successful retry).
	cfg.Tactical = tactical.Config{Rules: chaosRules(t)}
	sess, en := emptySession(t, cfg)
	if _, err := sess.Watch(dataLeakTBQL); err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		faultinject.Arm(plan)
	}
	readerStop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var lastNext int64
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			snap := sess.Store().Snapshot()
			if snap.NextEventID < lastNext {
				t.Errorf("snapshot frontier moved backwards: %d after %d", snap.NextEventID, lastNext)
				return
			}
			lastNext = snap.NextEventID
			_, _, err := sess.Hunt(nil, dataLeakTBQL)
			if err != nil && !injectedHuntError(err) {
				t.Errorf("concurrent hunt during chaos build: %v", err)
				return
			}
		}
	}()
	defer func() {
		close(readerStop)
		readerWG.Wait()
	}()
	retry := func(op string, fn func() error) {
		for attempt := 1; ; attempt++ {
			err := fn()
			if err == nil {
				return
			}
			var pe *ParseError
			if errors.As(err, &pe) {
				return // parse warnings are not retryable failures
			}
			if attempt >= 64 {
				t.Fatalf("%s still failing after %d attempts: %v", op, attempt, err)
			}
		}
	}
	per := (len(lines) + chunks - 1) / chunks
	for i := 0; i < len(lines); i += per {
		j := i + per
		if j > len(lines) {
			j = len(lines)
		}
		// One buffer per chunk: a failed Ingest has already consumed the
		// bytes (they sit in the parser/reducer/replay), so the retry sees
		// the drained reader and just advances the pipeline.
		buf := bytes.NewBufferString(strings.Join(lines[i:j], ""))
		retry("ingest", func() error {
			_, err := sess.Ingest(buf)
			return err
		})
	}
	retry("flush", func() error {
		_, err := sess.Flush()
		return err
	})
	faultinject.Disarm()
	return sess, en
}

// injectedHuntError reports whether a concurrent hunt's failure traces
// back to fault injection: an injected error in the chain, or an engine
// panic boundary that caught an injected panic.
func injectedHuntError(err error) bool {
	if errors.Is(err, faultinject.ErrInjected) {
		return true
	}
	var ie *engine.InternalError
	if errors.As(err, &ie) {
		if pe, ok := ie.Panic.(error); ok && errors.Is(pe, faultinject.ErrInjected) {
			return true
		}
	}
	return false
}

// TestChaosRandomFaultSchedules replays randomized fault schedules —
// errors and panics across parse, append (both backends and the log),
// execute, and deliver — over a fixed input and asserts the surviving
// store is identical to the fault-free build and no lock was left held.
func TestChaosRandomFaultSchedules(t *testing.T) {
	recs := dataLeakRecords(t, 0.05)
	lines := make([]string, len(recs))
	for i := range recs {
		lines[i] = recs[i].Format() + "\n"
	}
	const chunks = 12
	ref, refEn := chaosBuild(t, lines, chunks, nil)
	refStore := ref.Store()
	refRows := huntStrings(t, refEn, dataLeakTBQL)
	if len(refRows) == 0 {
		t.Fatal("reference build found no attack; chaos comparison would be vacuous")
	}
	refIncs := incidentJSON(t, ref)
	refTact := ref.TacticalStats()
	if refTact.AlertsTagged == 0 || refTact.Incidents == 0 {
		t.Fatal("reference build tagged no alerts; phantom-alert comparison would be vacuous")
	}

	// Points that fire inside a recover boundary may panic; the stream's
	// own points are plain error returns on an unguarded path.
	panicOK := map[string]bool{
		engine.FaultAppendEntitiesRel:   true,
		engine.FaultAppendEntitiesGraph: true,
		engine.FaultAppendEventsRel:     true,
		engine.FaultAppendEventsGraph:   true,
		engine.FaultAppendLog:           true,
		engine.FaultExecutePattern:      true,
		FaultParse:                      false,
		FaultDeliver:                    false,
	}
	points := make([]string, 0, len(panicOK))
	for p := range panicOK {
		points = append(points, p)
	}

	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(faultinject.Disarm)
			rng := rand.New(rand.NewSource(seed))
			plan := faultinject.Plan{}
			for _, p := range points {
				if rng.Intn(2) == 0 {
					continue
				}
				nHits := 1 + rng.Intn(3)
				hits := make([]int, 0, nHits)
				for k := 0; k < nHits; k++ {
					hits = append(hits, 1+rng.Intn(8))
				}
				mode := faultinject.ModeError
				if panicOK[p] && rng.Intn(2) == 0 {
					mode = faultinject.ModePanic
				}
				plan[p] = faultinject.Trigger{Hits: hits, Mode: mode}
			}
			sess, en := chaosBuild(t, lines, chunks, plan)
			store := sess.Store()

			if !reflect.DeepEqual(refStore.Log.Events, store.Log.Events) {
				t.Fatalf("event log diverged from fault-free build: %d vs %d events",
					len(store.Log.Events), len(refStore.Log.Events))
			}
			if a, b := refStore.Graph.NumNodes(), store.Graph.NumNodes(); a != b {
				t.Fatalf("graph nodes diverged: %d vs %d", b, a)
			}
			if a, b := refStore.Graph.NumEdges(), store.Graph.NumEdges(); a != b {
				t.Fatalf("graph edges diverged: %d vs %d", b, a)
			}
			if a, b := refStore.NextEventID(), store.NextEventID(); a != b {
				t.Fatalf("event-ID sequence diverged: %d vs %d", b, a)
			}
			rows := huntStrings(t, en, dataLeakTBQL)
			if !reflect.DeepEqual(refRows, rows) {
				t.Fatalf("hunt diverged from fault-free build:\n ref %v\n got %v", refRows, rows)
			}
			// No phantom alerts or incidents: a rolled-back append was never
			// published, so its events are tagged exactly once (on the
			// successful retry) and the ranked incident list is byte-identical
			// to the fault-free build's.
			if tact := sess.TacticalStats(); tact.AlertsTagged != refTact.AlertsTagged {
				t.Fatalf("alerts tagged diverged: %d vs fault-free %d", tact.AlertsTagged, refTact.AlertsTagged)
			}
			if incs := incidentJSON(t, sess); !bytes.Equal(refIncs, incs) {
				t.Fatalf("ranked incidents diverged from fault-free build:\n ref %s\n got %s", refIncs, incs)
			}
			// No lock left held: a full ingest+flush+hunt cycle still runs.
			if _, err := sess.Ingest(bytes.NewBufferString(readLine(1_900_000_000_000_000, 9999, "/bin/cat", "/data/post"))); err != nil {
				t.Fatalf("post-chaos ingest: %v", err)
			}
			if _, err := sess.Flush(); err != nil {
				t.Fatalf("post-chaos flush: %v", err)
			}
			if _, _, err := sess.Hunt(nil, dataLeakTBQL); err != nil {
				t.Fatalf("post-chaos hunt: %v", err)
			}
		})
	}
}
