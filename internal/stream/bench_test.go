package stream

import (
	"fmt"
	"testing"

	"threatraptor/internal/audit"
	"threatraptor/internal/shard"
	"threatraptor/internal/tactical"
)

// shiftRecords copies template with every timestamp moved forward by
// offset, so repeated ingestion produces genuinely new (unmergeable,
// monotonically later) events.
func shiftRecords(template []audit.Record, dst []audit.Record, offset int64) []audit.Record {
	dst = append(dst[:0], template...)
	for i := range dst {
		dst[i].Time += offset
	}
	return dst
}

// benchSession builds a live session preloaded with the data_leak history.
func benchSession(b *testing.B, cfg Config) (*Session, []audit.Record) {
	b.Helper()
	recs := dataLeakRecords(b, 0.25)
	sess, _ := emptySession(b, cfg)
	if _, err := sess.IngestRecords(recs); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Flush(); err != nil {
		b.Fatal(err)
	}
	return sess, recs
}

// BenchmarkStreamIngest measures the live append path: each iteration
// ingests one 512-record chunk into a store that keeps growing across
// iterations, so a flat ns/op is direct evidence that per-event ingest
// cost stays sublinear in store size (no full re-sort or re-index per
// batch).
func BenchmarkStreamIngest(b *testing.B) {
	sess, recs := benchSession(b, DefaultConfig())
	template := recs[:512]
	span := template[len(template)-1].Time - template[0].Time + 10_000_000
	base := sess.Store().MaxTime + 10_000_000 - template[0].Time
	buf := make([]audit.Record, 0, len(template))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk := shiftRecords(template, buf, base+int64(i)*span)
		if _, err := sess.IngestRecords(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStandingQuery measures continuous evaluation: a registered
// standing query (the 8-pattern data_leak hunt) is re-evaluated
// incrementally against each sealed 64-record batch. Each pattern's
// materialized match view catches up with one floor-anchored data query
// over the new events, so a batch without matching behavior costs
// O(batch) regardless of how much history the store holds.
func BenchmarkStandingQuery(b *testing.B) {
	sess, recs := benchSession(b, Config{MatchBuffer: 16})
	if _, err := sess.Watch(dataLeakTBQL); err != nil {
		b.Fatal(err)
	}
	template := recs[:64]
	span := template[len(template)-1].Time - template[0].Time + 10_000_000
	base := sess.Store().MaxTime + 10_000_000 - template[0].Time
	buf := make([]audit.Record, 0, len(template))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk := shiftRecords(template, buf, base+int64(i)*span)
		if _, err := sess.IngestRecords(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentHunts measures snapshot-pinned hunt throughput:
// GOMAXPROCS goroutines each run the full 8-pattern data_leak hunt
// against a live session in a tight loop. Hunts take no session lock —
// each pins the store's published snapshot — so ns/op should improve
// with GOMAXPROCS instead of serializing the way the old reader-lock
// design did whenever a writer was queued.
func BenchmarkConcurrentHunts(b *testing.B) {
	sess, _ := benchSession(b, DefaultConfig())
	if _, _, err := sess.Hunt(nil, dataLeakTBQL); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := sess.Hunt(nil, dataLeakTBQL); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTacticalRound measures the tactical detection overhead on the
// live append path: the same 64-record chunked ingest as
// BenchmarkStandingQuery, but with a four-rule tactical layer tagging
// each sealed batch, attributing alerts through backward reachability,
// and rescoring the touched incidents. The delta vs BenchmarkStreamIngest
// is the per-batch cost of detection; alerts/op reports how much tagging
// work each round actually did.
func BenchmarkTacticalRound(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Tactical = tactical.Config{Rules: chaosRules(b)}
	sess, _ := benchSession(b, cfg)
	// A chunk where every fourth record matches a rule (a credential read
	// or a staging write among untagged reads), spread over a few
	// processes so attribution does real reachability work.
	template := make([]audit.Record, 64)
	for i := range template {
		r := audit.Record{Time: int64(i) * 250_000, PID: 9000 + i%8,
			Exe: fmt.Sprintf("/bin/tool%d", i%8), User: "root", FD: audit.FDFile, Bytes: 10}
		switch i % 4 {
		case 0:
			r.Call, r.Path = audit.SysRead, fmt.Sprintf("/etc/conf%d", i)
		case 2:
			r.Call, r.Path = audit.SysWrite, fmt.Sprintf("/tmp/stage%d", i)
		default:
			r.Call, r.Path = audit.SysRead, fmt.Sprintf("/home/u/f%d", i)
		}
		template[i] = r
	}
	span := template[len(template)-1].Time - template[0].Time + 10_000_000
	base := sess.Store().MaxTime + 10_000_000 - template[0].Time
	buf := make([]audit.Record, 0, len(template))
	startAlerts := sess.TacticalStats().AlertsTagged
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk := shiftRecords(template, buf, base+int64(i)*span)
		if _, err := sess.IngestRecords(chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := sess.Flush(); err != nil {
		b.Fatal(err)
	}
	st := sess.TacticalStats()
	b.ReportMetric(float64(st.AlertsTagged-startAlerts)/float64(b.N), "alerts/op")
	if st.AlertsTagged == startAlerts {
		b.Fatal("no alerts tagged; the tactical path was not exercised")
	}
}

// BenchmarkStandingQueryScale is the store-size sweep behind the O(delta)
// claim: the same 64-record standing-query round as BenchmarkStandingQuery,
// but with the pre-loaded history scaled 1×→8×. Near-flat ns/op across
// the sub-benchmarks is direct evidence that a delta round's cost depends
// on the batch, not the store (the pre-view design re-ran every pattern's
// data query per round, so its rounds grew linearly with history). The
// 8x-shardsN legs run the identical rounds against a sharded backend so
// the per-round cost of scatter coordination is visible next to the
// single-store number.
func BenchmarkStandingQueryScale(b *testing.B) {
	run := func(b *testing.B, mult int, sess *Session) {
		recs := dataLeakRecords(b, 0.25)
		span := recs[len(recs)-1].Time - recs[0].Time + 10_000_000
		buf := make([]audit.Record, 0, len(recs))
		for i := 0; i < mult; i++ {
			if _, err := sess.IngestRecords(shiftRecords(recs, buf, int64(i)*span)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sess.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Watch(dataLeakTBQL); err != nil {
			b.Fatal(err)
		}
		template := recs[:64]
		chunkSpan := template[len(template)-1].Time - template[0].Time + 10_000_000
		base := sess.Store().MaxTime + 10_000_000 - template[0].Time
		cbuf := make([]audit.Record, 0, len(template))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			chunk := shiftRecords(template, cbuf, base+int64(i)*chunkSpan)
			if _, err := sess.IngestRecords(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, mult := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dx", mult), func(b *testing.B) {
			sess, _ := emptySession(b, Config{MatchBuffer: 16})
			run(b, mult, sess)
		})
	}
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("8x-shards%d", n), func(b *testing.B) {
			sh, err := shard.New(audit.NewLog(), n, shard.ByHash())
			if err != nil {
				b.Fatal(err)
			}
			run(b, 8, NewWithBackend(sh, Config{MatchBuffer: 16}))
		})
	}
}
