// Package experiments regenerates every table of the paper's evaluation
// (Section IV): Table V (threat behavior extraction accuracy), Table VI
// (threat hunting accuracy), Table VII (extraction efficiency), Table VIII
// (query execution efficiency), Table IX (fuzzy search vs Poirot), and
// Table X (TBQL conciseness).
package experiments

import (
	"fmt"
	"time"

	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/fuzzy"
	"threatraptor/internal/openie"
	"threatraptor/internal/provenance"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

// PRF is a precision/recall/F1 triple.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

func prf(tp, fp, fn int) PRF {
	var p, r, f float64
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, F1: f}
}

// extractionOutput normalizes any approach's output for scoring.
type extractionOutput struct {
	entities  map[string]bool
	relations map[string]bool
}

func relKey(subj, verb, obj string) string { return subj + "|" + verb + "|" + obj }

// approach is one Table V contender.
type approach struct {
	Name string
	Run  func(report string) extractionOutput
}

func approaches() []approach {
	trOut := func(opts extract.Options) func(string) extractionOutput {
		ex := extract.New(opts)
		return func(report string) extractionOutput {
			res := ex.Extract(report)
			out := extractionOutput{entities: map[string]bool{}, relations: map[string]bool{}}
			for _, ic := range res.IOCs {
				out.entities[ic.Text] = true
			}
			for _, t := range res.Triplets {
				out.relations[relKey(t.Subj.Text, t.Verb, t.Obj.Text)] = true
			}
			return out
		}
	}
	oieOut := func(e openie.Extractor) func(string) extractionOutput {
		return func(report string) extractionOutput {
			res := e.Extract(report)
			out := extractionOutput{entities: map[string]bool{}, relations: map[string]bool{}}
			for _, ent := range res.Entities {
				out.entities[ent] = true
			}
			for _, t := range res.Triples {
				out.relations[relKey(t.Subj, t.Rel, t.Obj)] = true
			}
			return out
		}
	}
	return []approach{
		{"ThreatRaptor", trOut(extract.DefaultOptions())},
		{"ThreatRaptor - IOC Protection", trOut(extract.Options{IOCProtection: false})},
		{"Stanford Open IE", oieOut(openie.NewClauseIE(false))},
		{"Stanford Open IE + IOC Protection", oieOut(openie.NewClauseIE(true))},
		{"Open IE 5", oieOut(openie.NewExhaustiveIE(false))},
		{"Open IE 5 + IOC Protection", oieOut(openie.NewExhaustiveIE(true))},
	}
}

// Table5Row is one approach's aggregated extraction accuracy.
type Table5Row struct {
	Approach string
	Entity   PRF
	Relation PRF
}

// Table5 reproduces the paper's Table V: IOC entity and relation
// extraction precision/recall/F1, aggregated over all 18 cases.
func Table5() []Table5Row {
	all := cases.All()
	var rows []Table5Row
	for _, ap := range approaches() {
		var entTP, entFP, entFN, relTP, relFP, relFN int
		for _, c := range all {
			out := ap.Run(c.Report)
			wantEnt := map[string]bool{}
			for _, e := range c.Entities {
				wantEnt[e] = true
			}
			wantRel := map[string]bool{}
			for _, r := range c.Relations {
				wantRel[relKey(r.Subj, r.Verb, r.Obj)] = true
			}
			for e := range out.entities {
				if wantEnt[e] {
					entTP++
				} else {
					entFP++
				}
			}
			for e := range wantEnt {
				if !out.entities[e] {
					entFN++
				}
			}
			for r := range out.relations {
				if wantRel[r] {
					relTP++
				} else {
					relFP++
				}
			}
			for r := range wantRel {
				if !out.relations[r] {
					relFN++
				}
			}
		}
		rows = append(rows, Table5Row{
			Approach: ap.Name,
			Entity:   prf(entTP, entFP, entFN),
			Relation: prf(relTP, relFP, relFN),
		})
	}
	return rows
}

// Table6Row is one case's threat hunting accuracy.
type Table6Row struct {
	CaseID string
	TP     int
	FP     int
	FN     int
}

// Table6 reproduces the paper's Table VI: for each case, the system events
// found by the synthesized TBQL query's patterns, scored against the
// ground-truth malicious events.
func Table6(scale float64) ([]Table6Row, error) {
	ex := extract.New(extract.DefaultOptions())
	var rows []Table6Row
	for _, c := range cases.All() {
		gen, err := c.Generate(scale)
		if err != nil {
			return nil, err
		}
		store, err := engine.NewStore(gen.Log)
		if err != nil {
			return nil, err
		}
		en := &engine.Engine{Store: store}

		res := ex.Extract(c.Report)
		matched := map[int64]bool{}
		if q, _, err := synth.Synthesize(res.Graph, synth.Options{}); err == nil {
			a, err := tbql.Analyze(q)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.ID, err)
			}
			matched, err = en.MatchEventsPerPattern(nil, a)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.ID, err)
			}
		}

		attack := map[int64]bool{}
		for _, id := range gen.AttackEventIDs {
			attack[id] = true
		}
		row := Table6Row{CaseID: c.ID}
		for ev := range matched {
			if attack[ev] {
				row.TP++
			} else {
				row.FP++
			}
		}
		row.FN = len(attack) - row.TP
		rows = append(rows, row)
	}
	return rows, nil
}

// Table7Row is one case's stage timing (seconds).
type Table7Row struct {
	CaseID    string
	Extract   float64            // text -> entities & relations
	Graph     float64            // entities & relations -> graph
	Synth     float64            // graph -> TBQL
	Baselines map[string]float64 // baseline extraction times
}

// Table7 reproduces the paper's Table VII: per-stage extraction times for
// ThreatRaptor and total extraction times for the open IE baselines.
func Table7() []Table7Row {
	ex := extract.New(extract.DefaultOptions())
	exNoProt := extract.New(extract.Options{IOCProtection: false})
	baselines := []openie.Extractor{
		openie.NewClauseIE(false), openie.NewClauseIE(true),
		openie.NewExhaustiveIE(false), openie.NewExhaustiveIE(true),
	}
	var rows []Table7Row
	for _, c := range cases.All() {
		res := ex.Extract(c.Report)
		row := Table7Row{
			CaseID:    c.ID,
			Extract:   res.ExtractTime.Seconds(),
			Graph:     res.GraphTime.Seconds(),
			Baselines: map[string]float64{},
		}
		start := time.Now()
		if _, _, err := synth.Synthesize(res.Graph, synth.Options{}); err == nil {
			row.Synth = time.Since(start).Seconds()
		}
		startNP := time.Now()
		exNoProt.Extract(c.Report)
		row.Baselines["ThreatRaptor - IOC Protection"] = time.Since(startNP).Seconds()
		for _, b := range baselines {
			startB := time.Now()
			b.Extract(c.Report)
			row.Baselines[b.Name()] = time.Since(startB).Seconds()
		}
		rows = append(rows, row)
	}
	return rows
}

// Table8Row is one case's query execution times (seconds) for the four
// semantically equivalent query forms.
type Table8Row struct {
	CaseID   string
	Patterns int
	TBQL     Timing // (a) event patterns, scheduled, relational backend
	SQL      Timing // (b) monolithic SQL
	TBQLPath Timing // (c) length-1 path patterns, scheduled, graph backend
	Cypher   Timing // (d) monolithic Cypher
}

// Timing is a mean and standard deviation over rounds, in seconds.
type Timing struct {
	Mean float64
	Std  float64
}

func timeRounds(rounds int, run func() error) (Timing, error) {
	samples := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if err := run(); err != nil {
			return Timing{}, err
		}
		samples = append(samples, time.Since(start).Seconds())
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var varsum float64
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	std := 0.0
	if len(samples) > 1 {
		std = varsum / float64(len(samples)-1)
	}
	return Timing{Mean: mean, Std: sqrt(std)}, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Table8 reproduces the paper's Table VIII: execution time of the four
// query forms per case, averaged over the given number of rounds (the
// paper used 20).
func Table8(scale float64, rounds int) ([]Table8Row, error) {
	ex := extract.New(extract.DefaultOptions())
	var rows []Table8Row
	for _, c := range cases.All() {
		gen, err := c.Generate(scale)
		if err != nil {
			return nil, err
		}
		store, err := engine.NewStore(gen.Log)
		if err != nil {
			return nil, err
		}
		en := &engine.Engine{Store: store}
		graph := ex.Extract(c.Report).Graph

		qa, _, err := synth.Synthesize(graph, synth.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.ID, err)
		}
		aa, err := tbql.Analyze(qa)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.ID, err)
		}
		qc, _, err := synth.Synthesize(graph, synth.Options{Mode: synth.ModeLength1Paths})
		if err != nil {
			return nil, err
		}
		ac, err := tbql.Analyze(qc)
		if err != nil {
			return nil, err
		}

		row := Table8Row{CaseID: c.ID, Patterns: len(qa.Patterns)}
		if row.TBQL, err = timeRounds(rounds, func() error {
			_, _, err := en.Execute(nil, aa)
			return err
		}); err != nil {
			return nil, fmt.Errorf("%s tbql: %w", c.ID, err)
		}
		if row.SQL, err = timeRounds(rounds, func() error {
			_, _, err := en.ExecuteMonolithicSQL(nil, aa)
			return err
		}); err != nil {
			return nil, fmt.Errorf("%s sql: %w", c.ID, err)
		}
		if row.TBQLPath, err = timeRounds(rounds, func() error {
			_, _, err := en.Execute(nil, ac)
			return err
		}); err != nil {
			return nil, fmt.Errorf("%s tbql-path: %w", c.ID, err)
		}
		if row.Cypher, err = timeRounds(rounds, func() error {
			_, _, err := en.ExecuteMonolithicCypher(nil, aa)
			return err
		}); err != nil {
			return nil, fmt.Errorf("%s cypher: %w", c.ID, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table9Row is one case's fuzzy-search timing (seconds) for both modes.
type Table9Row struct {
	CaseID string
	Fuzzy  PhaseTimes // ThreatRaptor-Fuzzy (exhaustive)
	Poirot PhaseTimes // first-acceptable alignment
	// Alignments found by the exhaustive mode.
	Alignments int
}

// PhaseTimes split an execution into the paper's three phases.
type PhaseTimes struct {
	Loading       float64
	Preprocessing float64
	Searching     float64
}

// Table9 reproduces the paper's Table IX: fuzzy search mode vs Poirot,
// with loading, preprocessing, and searching times.
func Table9(scale float64) ([]Table9Row, error) {
	ex := extract.New(extract.DefaultOptions())
	var rows []Table9Row
	for _, c := range cases.All() {
		gen, err := c.Generate(scale)
		if err != nil {
			return nil, err
		}
		store, err := engine.NewStore(gen.Log)
		if err != nil {
			return nil, err
		}
		graph := ex.Extract(c.Report).Graph
		q, _, err := synth.Synthesize(graph, synth.Options{})
		if err != nil {
			return nil, err
		}
		a, err := tbql.Analyze(q)
		if err != nil {
			return nil, err
		}
		qg, err := fuzzy.FromTBQL(a)
		if err != nil {
			return nil, err
		}

		row := Table9Row{CaseID: c.ID}
		runMode := func(mode fuzzy.Mode) (PhaseTimes, int, error) {
			var pt PhaseTimes
			// Loading: pull entities and events out of the database
			// backend into memory.
			start := time.Now()
			if _, err := store.Rel.Query("SELECT * FROM entities"); err != nil {
				return pt, 0, err
			}
			if _, err := store.Rel.Query("SELECT * FROM events"); err != nil {
				return pt, 0, err
			}
			pt.Loading = time.Since(start).Seconds()
			// Preprocessing: build the provenance graph.
			start = time.Now()
			prov := provenance.Build(store.Log)
			pt.Preprocessing = time.Since(start).Seconds()
			// Searching: alignment search.
			start = time.Now()
			searcher := fuzzy.NewSearcher(prov, qg, fuzzy.DefaultOptions(mode))
			als := searcher.Search()
			pt.Searching = time.Since(start).Seconds()
			return pt, len(als), nil
		}
		var n int
		if row.Fuzzy, n, err = runMode(fuzzy.ModeExhaustive); err != nil {
			return nil, err
		}
		row.Alignments = n
		if row.Poirot, _, err = runMode(fuzzy.ModeFirstAcceptable); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table10Row is one case's query conciseness measurements.
type Table10Row struct {
	CaseID   string
	Patterns int
	// Chars excludes whitespace; Words splits on whitespace.
	TBQLChars, TBQLWords         int
	SQLChars, SQLWords           int
	TBQLPathChars, TBQLPathWords int
	CypherChars, CypherWords     int
}

// Table10 reproduces the paper's Table X: the size of the four
// semantically equivalent query forms.
func Table10() ([]Table10Row, error) {
	ex := extract.New(extract.DefaultOptions())
	var rows []Table10Row
	for _, c := range cases.All() {
		gen, err := c.Generate(0.02) // tiny store: only compilation needed
		if err != nil {
			return nil, err
		}
		store, err := engine.NewStore(gen.Log)
		if err != nil {
			return nil, err
		}
		graph := ex.Extract(c.Report).Graph
		qa, _, err := synth.Synthesize(graph, synth.Options{})
		if err != nil {
			return nil, err
		}
		aa, err := tbql.Analyze(qa)
		if err != nil {
			return nil, err
		}
		qc, _, err := synth.Synthesize(graph, synth.Options{Mode: synth.ModeLength1Paths})
		if err != nil {
			return nil, err
		}
		sql, err := engine.CompileMonolithicSQL(store, aa)
		if err != nil {
			return nil, err
		}
		cypher, err := engine.CompileMonolithicCypher(store, aa)
		if err != nil {
			return nil, err
		}
		tbqlText := tbql.Format(qa)
		pathText := tbql.Format(qc)

		row := Table10Row{CaseID: c.ID, Patterns: len(qa.Patterns)}
		row.TBQLChars, row.TBQLWords = measure(tbqlText)
		row.SQLChars, row.SQLWords = measure(sql)
		row.TBQLPathChars, row.TBQLPathWords = measure(pathText)
		row.CypherChars, row.CypherWords = measure(cypher)
		rows = append(rows, row)
	}
	return rows, nil
}

// measure counts non-whitespace characters and lexical words. A word is a
// maximal run of identifier/value characters (letters, digits, and the
// characters that appear inside names, paths, and wildcards), so a dense
// Cypher pattern like (p1:Process)-[e1:read]->(f1:File) counts its six
// identifiers rather than one whitespace-delimited blob.
func measure(s string) (chars, words int) {
	inWord := false
	for _, r := range s {
		isSpace := r == ' ' || r == '\t' || r == '\n' || r == '\r'
		if !isSpace {
			chars++
		}
		isWordChar := r == '_' || r == '%' || r == '/' || r == '.' || r == '\\' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if isWordChar && !inWord {
			words++
		}
		inWord = isWordChar
	}
	return chars, words
}
