package experiments

import "testing"

// The experiment harness at tiny scale: these tests pin the qualitative
// claims of every table (the "shape" the reproduction must preserve), so a
// regression in any subsystem that would change a paper-level conclusion
// fails CI rather than silently producing different tables.

func TestTable5Shape(t *testing.T) {
	rows := Table5()
	if len(rows) != 6 {
		t.Fatalf("approaches = %d, want 6", len(rows))
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Approach] = r
	}
	tr := byName["ThreatRaptor"]
	noProt := byName["ThreatRaptor - IOC Protection"]
	stanford := byName["Stanford Open IE"]
	openie5 := byName["Open IE 5"]

	if tr.Entity.F1 < 0.9 || tr.Relation.F1 < 0.9 {
		t.Errorf("ThreatRaptor F1 too low: %+v", tr)
	}
	if tr.Entity.F1 >= 1 || tr.Relation.F1 >= 1 {
		t.Errorf("benchmark must include known imperfections: %+v", tr)
	}
	if noProt.Entity.Recall >= 0.6 {
		t.Errorf("removing IOC protection must crater entity recall: %v", noProt.Entity.Recall)
	}
	if noProt.Relation.Recall >= 0.2 {
		t.Errorf("removing IOC protection must crater relation recall: %v", noProt.Relation.Recall)
	}
	for _, base := range []Table5Row{stanford, openie5} {
		if base.Entity.F1 >= tr.Entity.F1/2 {
			t.Errorf("%s entity F1 should be far below ThreatRaptor: %v", base.Approach, base.Entity.F1)
		}
		if base.Relation.F1 >= 0.05 {
			t.Errorf("%s relation F1 should be near zero: %v", base.Approach, base.Relation.F1)
		}
	}
	// Protection helps the baselines (entity recall), as in the paper.
	if byName["Stanford Open IE + IOC Protection"].Entity.Recall <= stanford.Entity.Recall {
		t.Error("IOC protection should lift the Stanford baseline's entity recall")
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := Table6(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("cases = %d", len(rows))
	}
	var tp, fp, fn int
	byCase := map[string]Table6Row{}
	for _, r := range rows {
		tp += r.TP
		fp += r.FP
		fn += r.FN
		byCase[r.CaseID] = r
	}
	if fp != 0 {
		t.Errorf("precision must be perfect (excessive patterns carry precise IOCs): FP=%d", fp)
	}
	recall := float64(tp) / float64(tp+fn)
	if recall < 0.85 || recall >= 1 {
		t.Errorf("total recall = %v, want high but imperfect", recall)
	}
	// The paper's specific failure cases.
	if r := byCase["tc_fivedirections_3"]; r.TP != 0 || r.FN == 0 {
		t.Errorf("tc_fivedirections_3 must have zero recall: %+v", r)
	}
	if r := byCase["tc_trace_3"]; r.TP != 0 || r.FN == 0 {
		t.Errorf("tc_trace_3 must have zero recall: %+v", r)
	}
	if r := byCase["tc_trace_1"]; r.FN == 0 {
		t.Errorf("tc_trace_1 must miss the process-creation events: %+v", r)
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8(0.15, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tbqlSum, sqlSum float64
	for _, r := range rows {
		tbqlSum += r.TBQL.Mean
		sqlSum += r.SQL.Mean
	}
	if tbqlSum >= sqlSum {
		t.Errorf("scheduled TBQL total (%v) must beat monolithic SQL (%v)", tbqlSum, sqlSum)
	}
}

func TestTable9Shape(t *testing.T) {
	rows, err := Table9(0.1)
	if err != nil {
		t.Fatal(err)
	}
	aligned := 0
	for _, r := range rows {
		if r.Alignments > 0 {
			aligned++
		}
	}
	if aligned < 15 {
		t.Errorf("fuzzy mode should align most cases: %d/18", aligned)
	}
	// tc_trace_4's reported behavior never happened: no alignment.
	for _, r := range rows {
		if r.CaseID == "tc_trace_4" && r.Alignments != 0 {
			t.Errorf("tc_trace_4 must not align: %+v", r)
		}
	}
}

func TestTable10Shape(t *testing.T) {
	rows, err := Table10()
	if err != nil {
		t.Fatal(err)
	}
	var tbqlCh, sqlCh, cypCh int
	for _, r := range rows {
		tbqlCh += r.TBQLChars
		sqlCh += r.SQLChars
		cypCh += r.CypherChars
		// Ordering holds per case, not just in aggregate.
		if !(r.TBQLChars < r.CypherChars && r.CypherChars < r.SQLChars) {
			t.Errorf("%s: conciseness ordering violated: tbql=%d cypher=%d sql=%d",
				r.CaseID, r.TBQLChars, r.CypherChars, r.SQLChars)
		}
	}
	if !(tbqlCh < cypCh && cypCh < sqlCh) {
		t.Errorf("aggregate ordering violated: %d %d %d", tbqlCh, cypCh, sqlCh)
	}
}

func TestReductionAblationShape(t *testing.T) {
	rows, err := ReductionAblation(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ThresholdMS != 0 || rows[0].Factor != 1 {
		t.Errorf("zero threshold must not merge: %+v", rows[0])
	}
	last := 0.0
	for _, r := range rows {
		if r.Factor < last {
			t.Errorf("reduction factor must be monotone in the threshold: %+v", rows)
		}
		last = r.Factor
		if !r.AttackEventsPreserved {
			t.Errorf("reduction must preserve attack steps at %dms", r.ThresholdMS)
		}
	}
	if rows[len(rows)-1].Factor <= 1.2 {
		t.Errorf("chunked transfers should reduce substantially: %+v", rows[len(rows)-1])
	}
}

func TestMergeAblation(t *testing.T) {
	rows := MergeAblation()
	for _, r := range rows {
		// The data_leak graph has 9 IOCs and 8 edges at every sane
		// threshold (no near-duplicate forms in the report).
		if r.Nodes != 9 || r.Edges != 8 {
			t.Errorf("threshold %v: graph %dx%d, want 9x8", r.Threshold, r.Nodes, r.Edges)
		}
	}
}

func TestSchedulerAblationShape(t *testing.T) {
	rows, err := SchedulerAblation(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sRows, uRows int
	for _, r := range rows {
		sRows += r.ScheduledRows
		uRows += r.UnscheduledRows
	}
	if sRows > uRows {
		t.Errorf("constraint feeding must not increase pattern rows: %d vs %d", sRows, uRows)
	}
}

func TestMeasure(t *testing.T) {
	chars, words := measure("proc p1 read file f1")
	if chars != 16 || words != 5 {
		t.Errorf("measure = %d chars %d words", chars, words)
	}
	chars, words = measure("(p1:Process)-[e1:read]->(f1:File)")
	if words != 6 {
		t.Errorf("dense Cypher pattern should count 6 identifiers, got %d", words)
	}
	if chars != 33 {
		t.Errorf("chars = %d", chars)
	}
	if c, w := measure(""); c != 0 || w != 0 {
		t.Errorf("empty = %d %d", c, w)
	}
}
