package experiments

import (
	"time"

	"threatraptor/internal/audit"
	"threatraptor/internal/cases"
	"threatraptor/internal/engine"
	"threatraptor/internal/extract"
	"threatraptor/internal/reduction"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

// ReductionRow is one threshold setting of the data-reduction ablation.
type ReductionRow struct {
	ThresholdMS int64
	Before      int
	After       int
	Factor      float64
	// AttackEventsPreserved verifies that reduction never merges away the
	// ground-truth attack steps (the paper chose 1 s because it reduces
	// well "with no false events generated").
	AttackEventsPreserved bool
}

// ReductionAblation sweeps the event-merge threshold over the data_leak
// workload (the paper's Section III-B experiment behind the 1 s choice).
func ReductionAblation(scale float64) ([]ReductionRow, error) {
	c := cases.ByID("data_leak")
	thresholds := []int64{0, 10, 100, 1000, 10_000, 60_000} // milliseconds
	var rows []ReductionRow
	for _, ms := range thresholds {
		log, attackKeys, err := c.GenerateRaw(scale)
		if err != nil {
			return nil, err
		}
		before := len(log.Events)
		res := reduction.Reduce(log, reduction.Config{ThresholdUS: ms * 1000})
		rows = append(rows, ReductionRow{
			ThresholdMS:           ms,
			Before:                before,
			After:                 res.After,
			Factor:                res.ReductionFactor(),
			AttackEventsPreserved: countAttackSteps(log, attackKeys) == len(attackKeys),
		})
	}
	return rows, nil
}

// countAttackSteps counts the distinct attack step keys still present.
func countAttackSteps(log *audit.Log, attackKeys map[string]bool) int {
	seen := make(map[string]bool)
	for i := range log.Events {
		ev := &log.Events[i]
		k := log.Subject(ev).Key() + "|" + ev.Op.String() + "|" + log.Object(ev).Key()
		if attackKeys[k] {
			seen[k] = true
		}
	}
	return len(seen)
}

// SchedulerRow compares the pruning-score scheduler against the
// declaration-order plan without constraint feeding.
type SchedulerRow struct {
	CaseID      string
	Scheduled   Timing
	Unscheduled Timing
	// Rows produced by the per-pattern data queries under each plan: the
	// scheduler's constraint feeding shrinks them.
	ScheduledRows   int
	UnscheduledRows int
}

// SchedulerAblation isolates the contribution of the paper's core RQ4
// optimization (pruning-power ordering + constraint feeding) on every
// case.
func SchedulerAblation(scale float64, rounds int) ([]SchedulerRow, error) {
	ex := extract.New(extract.DefaultOptions())
	var rows []SchedulerRow
	for _, c := range cases.All() {
		gen, err := c.Generate(scale)
		if err != nil {
			return nil, err
		}
		store, err := engine.NewStore(gen.Log)
		if err != nil {
			return nil, err
		}
		graph := ex.Extract(c.Report).Graph
		q, _, err := synth.Synthesize(graph, synth.Options{})
		if err != nil {
			return nil, err
		}
		a, err := tbql.Analyze(q)
		if err != nil {
			return nil, err
		}
		sched := &engine.Engine{Store: store}
		naive := &engine.Engine{Store: store, DisableScheduling: true}

		row := SchedulerRow{CaseID: c.ID}
		var sStats, nStats engine.Stats
		if row.Scheduled, err = timeRounds(rounds, func() error {
			var err error
			_, sStats, err = sched.Execute(nil, a)
			return err
		}); err != nil {
			return nil, err
		}
		if row.Unscheduled, err = timeRounds(rounds, func() error {
			var err error
			_, nStats, err = naive.Execute(nil, a)
			return err
		}); err != nil {
			return nil, err
		}
		row.ScheduledRows = sStats.PatternRows
		row.UnscheduledRows = nStats.PatternRows
		rows = append(rows, row)
	}
	return rows, nil
}

// MergeThresholdRow measures how the extraction merge-similarity gate
// affects node counts (an extraction-side design knob).
type MergeThresholdRow struct {
	Threshold float64
	Nodes     int
	Edges     int
	Seconds   float64
}

// MergeAblation sweeps the IOC-merge similarity threshold on the data_leak
// report.
func MergeAblation() []MergeThresholdRow {
	c := cases.ByID("data_leak")
	var rows []MergeThresholdRow
	for _, th := range []float64{0.5, 0.7, 0.8, 0.9, 0.99} {
		ex := extract.New(extract.Options{IOCProtection: true, MergeThreshold: th})
		start := time.Now()
		res := ex.Extract(c.Report)
		rows = append(rows, MergeThresholdRow{
			Threshold: th,
			Nodes:     len(res.Graph.Nodes),
			Edges:     len(res.Graph.Edges),
			Seconds:   time.Since(start).Seconds(),
		})
	}
	return rows
}
