package graphdb

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"threatraptor/internal/relational"
)

// ResultSet is the query output (shared shape with the relational engine).
type ResultSet = relational.ResultSet

// ExecStats counts the work done by one query execution.
type ExecStats struct {
	NodesVisited   int
	EdgesTraversed int
	IndexLookups   int
}

// Query parses and executes a Cypher-subset query.
func (g *Graph) Query(src string) (*ResultSet, error) {
	rs, _, err := g.QueryStats(src)
	return rs, err
}

// QueryStats is Query plus execution statistics.
func (g *Graph) QueryStats(src string) (*ResultSet, ExecStats, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return g.Exec(q)
}

// NodeBinding constrains one named node variable to membership in a
// sorted unique ID list.
type NodeBinding struct {
	Var string
	IDs []int64
}

// ExecParams carries one execution's bound parameters for a prepared
// Query: the TBQL engine binds the scheduler's entity binding sets and the
// standing-query delta floor here instead of splicing them into fresh
// query text.
type ExecParams struct {
	// Nodes constrains named node variables: a variable with a binding
	// may only match the listed node IDs. Anchor enumeration uses the
	// list directly when the variable anchors a pattern.
	Nodes []NodeBinding
	// MinEdgeID floors the edge IDs the named single-hop relationship
	// variable EdgeVar may bind (0 = unconstrained).
	MinEdgeID int64
	EdgeVar   string
	// View, when non-nil, pins the execution to a published snapshot of
	// the graph (see View): the matcher reads only the captured arenas and
	// adjacency, so the execution may run concurrently with the writer.
	// The view must have been captured from the graph being queried.
	View *View
}

// nodeBinding returns the ID list bound to a variable, or nil.
func (p *ExecParams) nodeBinding(varName string) []int64 {
	if p == nil {
		return nil
	}
	for i := range p.Nodes {
		if p.Nodes[i].Var == varName {
			return p.Nodes[i].IDs
		}
	}
	return nil
}

// matcher holds the state of one pattern-matching run.
type matcher struct {
	g      *Graph
	q      *Query
	params *ExecParams
	stats  ExecStats
	// view is non-nil for snapshot-pinned executions; vedges is the edge
	// arena the run reads (the view's captured header, or the live one),
	// bound once by bindStore so hot loops skip the mode branch.
	view   *View
	vedges []Edge
	nodes  map[string]int64 // node variable bindings
	edges  map[string]int64 // single-hop edge variable bindings
	rs     *ResultSet
	proj   []ReturnItem
	// conjuncts are the AND-split WHERE terms, evaluated eagerly as
	// bindings accumulate (predicate pushdown, as production graph
	// databases do).
	conjuncts []relational.Expr
	// windows are per-edge-variable [lo, hi] start_time bounds extracted
	// from the conjuncts; hops with a window binary-search the
	// time-sorted adjacency lists instead of scanning them.
	windows map[string][2]int64
	// visitedPool holds reusable edge-visited bitsets for var-length DFS:
	// one bitset per concurrently active traversal (nested var-length hops
	// stack), sized to the edge arena and handed back clean — the DFS
	// clears each bit on backtrack, so no reset pass is needed.
	visitedPool [][]uint64
	// capture, when set, replaces row emission: the clause-at-a-time
	// executor uses it to collect raw variable bindings.
	capture func() error
	// ctx/done drive cooperative cancellation: done caches ctx.Done() so
	// the checkpoints cost a nil compare when no cancellable context is
	// bound; tick amortizes the poll to every 64th step.
	ctx  context.Context
	done <-chan struct{}
	tick uint32
}

// bindStore points the matcher at the arenas it will read: the view's
// captured headers for a snapshot-pinned run, the live ones otherwise.
func (m *matcher) bindStore() {
	if m.view != nil {
		m.vedges = m.view.edges
		return
	}
	m.vedges = m.g.edges
}

// node, edgeAt, and the adjacency accessors below dispatch on the
// matcher's mode: live runs read the graph directly (writer-goroutine
// only, lock-free), view runs read the captured arenas.
func (m *matcher) node(id int64) *Node {
	if m.view != nil {
		return m.view.node(id)
	}
	return m.g.node(id)
}

// edgeAtID resolves a dense edge element ID against the bound arena.
func (m *matcher) edgeAtID(id int64) *Edge {
	if id < 1 || id > int64(len(m.vedges)) {
		return nil
	}
	return &m.vedges[id-1]
}

func (m *matcher) outOffsets(id int64) []int32 {
	if m.view != nil {
		return m.view.outOffsets(id)
	}
	return m.g.outOffsets(id)
}

func (m *matcher) inOffsets(id int64) []int32 {
	if m.view != nil {
		return m.view.inOffsets(id)
	}
	return m.g.inOffsets(id)
}

// checkCancel is the cooperative cancellation checkpoint, placed at anchor
// candidates, DFS depth steps, and edge-driven scan iterations — never per
// property comparison.
func (m *matcher) checkCancel() error {
	if m.done == nil {
		return nil
	}
	if m.tick++; m.tick&63 != 1 {
		return nil
	}
	select {
	case <-m.done:
		return m.ctx.Err()
	default:
		return nil
	}
}

func flattenConjuncts(e relational.Expr, acc []relational.Expr) []relational.Expr {
	if bin, ok := e.(relational.BinOp); ok && bin.Op == "and" {
		acc = flattenConjuncts(bin.L, acc)
		return flattenConjuncts(bin.R, acc)
	}
	return append(acc, e)
}

// pruneOK evaluates every WHERE conjunct that is already evaluable under
// the current partial bindings; a definite false prunes the branch.
// Conjuncts referencing unbound variables are skipped (they are re-checked
// at emit time).
func (m *matcher) pruneOK() bool {
	for _, c := range m.conjuncts {
		v, err := relational.EvalExpr(c, m.resolve)
		if err != nil {
			continue // not yet evaluable
		}
		if !v.Truthy() {
			return false
		}
	}
	return true
}

// Exec runs a parsed query.
func (g *Graph) Exec(q *Query) (*ResultSet, ExecStats, error) {
	return g.ExecWith(q, nil)
}

// ExecWith runs a parsed query with execution-time parameter bindings.
// The query itself stays immutable (and so can be prepared once and
// reused); the parameters vary per call. The clause-at-a-time execution
// model (multi-pattern queries with ClauseAtATime set — the naive RQ4
// comparison plan) does not support parameters.
func (g *Graph) ExecWith(q *Query, params *ExecParams) (*ResultSet, ExecStats, error) {
	return g.ExecWithCtx(nil, q, params)
}

// ExecWithCtx is ExecWith with cooperative cancellation: the matcher polls
// ctx.Done() at anchor candidates, variable-length DFS depth steps, and
// edge-driven scan iterations, returning ctx.Err() promptly once the
// context is cancelled. A nil or never-cancelled context adds no work.
func (g *Graph) ExecWithCtx(ctx context.Context, q *Query, params *ExecParams) (*ResultSet, ExecStats, error) {
	var view *View
	if params != nil {
		view = params.View
	}
	if view == nil {
		// Snapshot runs skip the lazy re-sort: their capture already
		// sorted, and sorting here would race with the concurrent writer.
		g.ensureAdjSorted()
	}
	if q.ClauseAtATime && len(q.Patterns) > 1 {
		if params != nil {
			return nil, ExecStats{}, fmt.Errorf("graphdb: parameters are not supported with clause-at-a-time execution")
		}
		return g.execClauseAtATime(q)
	}
	m := &matcher{
		g:      g,
		q:      q,
		params: params,
		view:   view,
		nodes:  make(map[string]int64),
		edges:  make(map[string]int64),
	}
	m.bindStore()
	if ctx != nil {
		m.ctx = ctx
		m.done = ctx.Done()
	}
	if q.Where != nil {
		m.conjuncts = flattenConjuncts(q.Where, nil)
		m.windows = timeWindows(m.conjuncts)
	}
	cols := make([]string, len(q.Return))
	for i, item := range q.Return {
		switch {
		case item.As != "":
			cols[i] = item.As
		case item.Prop != "":
			cols[i] = item.Var + "." + item.Prop
		default:
			cols[i] = item.Var
		}
	}
	m.rs = &ResultSet{Columns: cols}
	m.proj = q.Return

	if m.edgeDrivenOK() {
		if err := m.matchEdgeDriven(); err != nil {
			return nil, m.stats, err
		}
	} else if err := m.matchPattern(0, 0); err != nil {
		return nil, m.stats, err
	}

	rs := m.rs
	if q.Distinct {
		rs.Rows = dedupRows(rs.Rows)
	}
	if len(q.OrderBy) > 0 {
		if err := orderRows(rs, q); err != nil {
			return nil, m.stats, err
		}
	}
	if q.Limit >= 0 && len(rs.Rows) > q.Limit {
		rs.Rows = rs.Rows[:q.Limit]
	}
	return rs, m.stats, nil
}

// edgeDrivenOK reports whether the execution can be driven off the edge
// arena suffix instead of anchor enumeration: a single-pattern, single-hop
// outbound query whose floored edge variable (ExecParams.MinEdgeID) names
// the pattern's one relationship. Edge IDs are dense arena offsets, so
// "edges with ID >= floor" is a direct suffix slice — a standing-query
// delta round visits O(new edges), not O(anchor nodes), no matter how
// large the store has grown.
func (m *matcher) edgeDrivenOK() bool {
	if m.params == nil || m.params.MinEdgeID <= 0 || m.params.EdgeVar == "" {
		return false
	}
	if len(m.q.Patterns) != 1 {
		return false
	}
	pat := &m.q.Patterns[0]
	if len(pat.Nodes) != 2 || len(pat.Rels) != 1 {
		return false
	}
	rel := &pat.Rels[0]
	return !rel.IsVarLen() && rel.Dir == DirOut && rel.Var == m.params.EdgeVar
}

// matchEdgeDriven enumerates edges from the floor upward and binds each
// edge's endpoints against the pattern — semantically identical to the
// anchor-driven walk restricted to edges with ID >= MinEdgeID (WHERE is
// re-checked in full at emit), but linear in the number of new edges.
func (m *matcher) matchEdgeDriven() error {
	pat := &m.q.Patterns[0]
	rel := &pat.Rels[0]
	srcPat, dstPat := pat.Nodes[0], pat.Nodes[1]
	for ei := m.params.MinEdgeID - 1; ei < int64(len(m.vedges)); ei++ {
		if err := m.checkCancel(); err != nil {
			return err
		}
		e := &m.vedges[ei]
		m.stats.EdgesTraversed++
		if !typeMatches(rel.Types, e.Type) {
			continue
		}
		okS, boundS, err := m.bindNode(srcPat, e.From)
		if err != nil {
			return err
		}
		if !okS {
			continue
		}
		okD, boundD, err := m.bindNode(dstPat, e.To)
		if err == nil && okD {
			m.edges[rel.Var] = ei + 1
			if m.pruneOK() {
				err = m.emit()
			}
			delete(m.edges, rel.Var)
		}
		if boundD {
			delete(m.nodes, dstPat.Var)
		}
		if boundS {
			delete(m.nodes, srcPat.Var)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// matchPattern advances through pattern pi starting at node position ni.
// ni indexes q.Patterns[pi].Nodes; hop ni-1 connects node ni-1 to ni.
func (m *matcher) matchPattern(pi, ni int) error {
	if pi == len(m.q.Patterns) {
		return m.emit()
	}
	pat := &m.q.Patterns[pi]
	if ni == len(pat.Nodes) {
		return m.matchPattern(pi+1, 0)
	}
	np := pat.Nodes[ni]
	if ni == 0 {
		// Anchor: enumerate candidates for the first node of the pattern.
		cands, err := m.candidates(np)
		if err != nil {
			return err
		}
		for _, id := range cands {
			if err := m.checkCancel(); err != nil {
				return err
			}
			ok, bound, err := m.bindNode(np, id)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if !bound || m.pruneOK() {
				if err := m.matchHop(pi, ni); err != nil {
					return err
				}
			}
			if bound {
				delete(m.nodes, np.Var)
			}
		}
		return nil
	}
	return nil // unreachable: non-anchor nodes are matched by matchHop
}

// matchHop matches hop ni (connecting node ni to node ni+1) of pattern pi,
// then recurses.
func (m *matcher) matchHop(pi, ni int) error {
	pat := &m.q.Patterns[pi]
	if ni == len(pat.Rels) {
		return m.matchPattern(pi+1, 0)
	}
	rel := pat.Rels[ni]
	srcPat := pat.Nodes[ni]
	dstPat := pat.Nodes[ni+1]
	src := m.nodes[srcPat.Var] // anchors and prior hops guarantee binding
	if srcPat.Var == "" {
		return fmt.Errorf("cypher: internal: anonymous source nodes in mid-pattern are unsupported")
	}

	tryDst := func(edgeID int64, dst int64) error {
		ok, bound, err := m.bindNode(dstPat, dst)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		var edgeBound bool
		if rel.Var != "" && !rel.IsVarLen() {
			if _, exists := m.edges[rel.Var]; !exists {
				m.edges[rel.Var] = edgeID
				edgeBound = true
			} else if m.edges[rel.Var] != edgeID {
				if bound {
					delete(m.nodes, dstPat.Var)
				}
				return nil
			}
		}
		if (bound || edgeBound) && !m.pruneOK() {
			if edgeBound {
				delete(m.edges, rel.Var)
			}
			if bound {
				delete(m.nodes, dstPat.Var)
			}
			return nil
		}
		err = m.matchHop(pi, ni+1)
		if edgeBound {
			delete(m.edges, rel.Var)
		}
		if bound {
			delete(m.nodes, dstPat.Var)
		}
		return err
	}

	if !rel.IsVarLen() {
		adj := m.adjacent(src, rel.Dir)
		if rel.Var != "" && rel.Dir != DirBoth {
			// A declared time window narrows the sorted adjacency list to
			// the in-window span by binary search.
			if w, ok := m.windows[rel.Var]; ok {
				adj = windowSliceIn(m.vedges, adj, w[0], w[1])
			}
		}
		// The floor compares edge element IDs (ei+1) — exactly what a
		// "e.id >= N" WHERE conjunct compares, since resolve answers "id"
		// with the element ID. Callers flooring by an external ID space
		// (the TBQL engine's audit event IDs) rely on their own
		// element-ID == external-ID invariant; the engine pins its dense
		// event-ID mapping with TestGraphEdgeIDsMatchEventIDs.
		var edgeFloor int64
		if m.params != nil && rel.Var != "" && rel.Var == m.params.EdgeVar {
			edgeFloor = m.params.MinEdgeID
		}
		for _, ei := range adj {
			if int64(ei)+1 < edgeFloor {
				continue
			}
			e := &m.vedges[ei]
			m.stats.EdgesTraversed++
			if !typeMatches(rel.Types, e.Type) {
				continue
			}
			dst := e.To
			if e.To == src && rel.Dir != DirOut {
				dst = e.From
			} else if rel.Dir == DirIn {
				dst = e.From
			}
			if err := tryDst(int64(ei)+1, dst); err != nil {
				return err
			}
		}
		return nil
	}

	// Variable-length hop: edge-unique DFS from src, trying every node
	// reached within [Min, Max] hops as the destination. Edge uniqueness
	// is tracked in a pooled bitset over the edge arena instead of a
	// per-hop map: the DFS clears each bit when it backtracks, so the
	// bitset returns to the pool clean and one allocation serves every
	// traversal of the query.
	maxDepth := rel.Max
	if maxDepth < 0 {
		maxDepth = len(m.vedges) // bounded by edge-uniqueness anyway
	}
	used := m.acquireVisited()
	var dfs func(cur int64, depth int) error
	dfs = func(cur int64, depth int) error {
		// Depth-step cancellation checkpoint: a runaway var-length
		// traversal is exactly the hunt that must stay cancellable.
		if err := m.checkCancel(); err != nil {
			return err
		}
		if depth >= rel.Min {
			// A zero-length hop (Min=0) binds dst to src itself.
			if err := tryDst(0, cur); err != nil {
				return err
			}
		}
		if depth == maxDepth {
			return nil
		}
		for _, ei := range m.adjacent(cur, rel.Dir) {
			if used[ei>>6]&(1<<(uint(ei)&63)) != 0 {
				continue
			}
			e := &m.vedges[ei]
			m.stats.EdgesTraversed++
			if !typeMatches(rel.Types, e.Type) {
				continue
			}
			next := e.To
			if rel.Dir == DirIn {
				next = e.From
			} else if rel.Dir == DirBoth && e.To == cur {
				next = e.From
			}
			used[ei>>6] |= 1 << (uint(ei) & 63)
			err := dfs(next, depth+1)
			used[ei>>6] &^= 1 << (uint(ei) & 63)
			if err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(src, 0)
	m.releaseVisited(used)
	return err
}

// acquireVisited pops a clean edge bitset from the pool, or allocates one
// sized to the edge arena. Nested variable-length hops (one var-length
// relationship reached while another's DFS is on the stack) each take
// their own bitset, preserving per-hop edge-uniqueness semantics.
func (m *matcher) acquireVisited() []uint64 {
	if n := len(m.visitedPool); n > 0 {
		bs := m.visitedPool[n-1]
		m.visitedPool = m.visitedPool[:n-1]
		return bs
	}
	return make([]uint64, (len(m.vedges)+63)/64)
}

func (m *matcher) releaseVisited(bs []uint64) {
	m.visitedPool = append(m.visitedPool, bs)
}

// adjacent returns the candidate edge arena offsets from node id in the
// direction.
func (m *matcher) adjacent(id int64, dir Direction) []int32 {
	switch dir {
	case DirOut:
		return m.outOffsets(id)
	case DirIn:
		return m.inOffsets(id)
	default:
		out := m.outOffsets(id)
		in := m.inOffsets(id)
		both := make([]int32, 0, len(out)+len(in))
		both = append(both, out...)
		both = append(both, in...)
		return both
	}
}

// timeWindows extracts per-variable start_time bounds from literal
// comparison conjuncts ("e.start_time >= 123", in either operand order).
func timeWindows(conjuncts []relational.Expr) map[string][2]int64 {
	var windows map[string][2]int64
	narrow := func(name string, op string, k int64) {
		if windows == nil {
			windows = make(map[string][2]int64)
		}
		w, ok := windows[name]
		if !ok {
			w = [2]int64{math.MinInt64, math.MaxInt64}
		}
		switch op {
		case ">=":
			if k > w[0] {
				w[0] = k
			}
		case ">":
			if k+1 > w[0] {
				w[0] = k + 1
			}
		case "<=":
			if k < w[1] {
				w[1] = k
			}
		case "<":
			if k-1 < w[1] {
				w[1] = k - 1
			}
		}
		windows[name] = w
	}
	flip := map[string]string{">=": "<=", ">": "<", "<=": ">=", "<": ">"}
	for _, c := range conjuncts {
		bin, ok := c.(relational.BinOp)
		if !ok {
			continue
		}
		if _, cmp := flip[bin.Op]; !cmp {
			continue
		}
		if col, ok := bin.L.(relational.ColRef); ok && col.Column == "start_time" && col.Qualifier != "" {
			if lit, ok := bin.R.(relational.Lit); ok && lit.V.K == relational.KindInt {
				narrow(col.Qualifier, bin.Op, lit.V.I)
				continue
			}
		}
		if col, ok := bin.R.(relational.ColRef); ok && col.Column == "start_time" && col.Qualifier != "" {
			if lit, ok := bin.L.(relational.Lit); ok && lit.V.K == relational.KindInt {
				narrow(col.Qualifier, flip[bin.Op], lit.V.I)
			}
		}
	}
	return windows
}

func typeMatches(types []string, t string) bool {
	if len(types) == 0 {
		return true
	}
	for _, want := range types {
		if strings.EqualFold(want, t) {
			return true
		}
	}
	return false
}

// bindNode checks node constraints and binds the variable if new.
// ok reports whether the node satisfies the pattern; bound reports whether
// this call created the binding (the caller must remove it when
// backtracking).
func (m *matcher) bindNode(np NodePat, id int64) (ok, bound bool, err error) {
	n := m.node(id)
	if n == nil {
		return false, false, nil
	}
	m.stats.NodesVisited++
	if np.Label != "" && !strings.EqualFold(np.Label, n.Label) {
		return false, false, nil
	}
	for k, want := range np.Props {
		got, has := m.g.nodeProp(n, k)
		if !has || !got.Equal(want) {
			return false, false, nil
		}
	}
	if np.Var == "" {
		return true, false, nil
	}
	if ids := m.params.nodeBinding(np.Var); ids != nil && !containsID(ids, id) {
		return false, false, nil
	}
	if prev, exists := m.nodes[np.Var]; exists {
		return prev == id, false, nil
	}
	m.nodes[np.Var] = id
	return true, true, nil
}

// containsID binary-searches a sorted unique ID list.
func containsID(ids []int64, id int64) bool {
	return relational.ContainsSortedInt64(ids, id)
}

// candidates enumerates anchor candidates for a node pattern, preferring
// an explicit ID constraint in WHERE ("s.id IN (...)", fed forward by the
// TBQL scheduler), then a property index, then the label scan, then all
// nodes.
func (m *matcher) candidates(np NodePat) ([]int64, error) {
	if np.Var != "" {
		if id, bound := m.nodes[np.Var]; bound {
			return []int64{id}, nil
		}
		if ids := m.params.nodeBinding(np.Var); ids != nil {
			m.stats.IndexLookups++
			// The binding set and the label's ID list are both sorted:
			// galloping intersection drops wrong-label candidates here,
			// instead of a node lookup + label check per candidate inside
			// bindNode.
			if np.Label != "" {
				if lbl, ok := m.sortedLabelIDs(np.Label); ok {
					// Fresh slice: nested anchors (multi-pattern queries)
					// may still be iterating an earlier result.
					return intersectSortedIDs(ids, lbl, nil), nil
				}
			}
			return ids, nil
		}
		if ids, ok := m.idConstraint(np.Var); ok {
			m.stats.IndexLookups++
			return ids, nil
		}
	}
	if np.Label != "" {
		for prop, v := range np.Props {
			if ids, ok := m.lookupIndexed(np.Label, prop, v); ok {
				m.stats.IndexLookups++
				return ids, nil
			}
		}
		return m.labelIDs(np.Label), nil
	}
	if m.view != nil {
		return m.view.allNodeIDs(), nil
	}
	return m.g.AllNodeIDs(), nil
}

// sortedLabelIDs, lookupIndexed, and labelIDs dispatch the anchor index
// probes on the matcher's mode (view probes lock and trim; live probes
// are the writer-goroutine fast path).
func (m *matcher) sortedLabelIDs(label string) ([]int64, bool) {
	if m.view != nil {
		return m.view.sortedLabelIDs(label)
	}
	return m.g.sortedLabelIDs(label)
}

func (m *matcher) lookupIndexed(label, prop string, v Value) ([]int64, bool) {
	if m.view != nil {
		return m.view.lookupIndexed(label, prop, v)
	}
	return m.g.lookupIndexed(label, prop, v)
}

func (m *matcher) labelIDs(label string) []int64 {
	if m.view != nil {
		return m.view.labelIDs(label)
	}
	return m.g.byLabel[label]
}

// idConstraint scans the WHERE conjuncts for "var.id = n" or
// "var.id IN (n1, n2, ...)" with literal operands.
func (m *matcher) idConstraint(varName string) ([]int64, bool) {
	colMatches := func(e relational.Expr) bool {
		c, ok := e.(relational.ColRef)
		return ok && c.Qualifier == varName && (c.Column == "id" || c.Column == "")
	}
	for _, conj := range m.conjuncts {
		switch v := conj.(type) {
		case relational.BinOp:
			if v.Op == "=" && colMatches(v.L) {
				if lit, ok := v.R.(relational.Lit); ok && lit.V.K == relational.KindInt {
					return []int64{lit.V.I}, true
				}
			}
		case relational.InList:
			if v.Negate || !colMatches(v.E) {
				continue
			}
			ids := make([]int64, 0, len(v.Vals))
			allLit := true
			for _, ve := range v.Vals {
				lit, ok := ve.(relational.Lit)
				if !ok || lit.V.K != relational.KindInt {
					allLit = false
					break
				}
				ids = append(ids, lit.V.I)
			}
			if allLit {
				return ids, true
			}
		}
	}
	return nil, false
}

// emit evaluates WHERE against the complete bindings and projects a row.
func (m *matcher) emit() error {
	if m.capture != nil {
		return m.capture()
	}
	if m.q.Where != nil {
		v, err := relational.EvalExpr(m.q.Where, m.resolve)
		if err != nil {
			return err
		}
		if !v.Truthy() {
			return nil
		}
	}
	row := make([]Value, len(m.proj))
	for i, item := range m.proj {
		v, err := m.resolve(relational.ColRef{Qualifier: item.Var, Column: item.Prop})
		if err != nil {
			return err
		}
		row[i] = v
	}
	m.rs.Rows = append(m.rs.Rows, row)
	return nil
}

// resolve looks up var.prop against node and edge bindings. A reference
// with an empty prop yields the element ID. Nodes expose the pseudo-props
// "id" and "label"; edges expose "id" and "type".
func (m *matcher) resolve(c relational.ColRef) (Value, error) {
	name := c.Qualifier
	if name == "" {
		name = c.Column // bare variable in RETURN: id projection
		if id, ok := m.nodes[name]; ok {
			return relational.Int(id), nil
		}
		if id, ok := m.edges[name]; ok {
			return relational.Int(id), nil
		}
		return relational.Null(), fmt.Errorf("cypher: unknown variable %q", c.Column)
	}
	if id, ok := m.nodes[name]; ok {
		n := m.node(id)
		switch c.Column {
		case "", "id":
			return relational.Int(id), nil
		case "label":
			return relational.Str(n.Label), nil
		}
		if v, has := m.g.nodeProp(n, c.Column); has {
			return v, nil
		}
		return relational.Null(), nil
	}
	if id, ok := m.edges[name]; ok {
		e := m.edgeAtID(id)
		switch c.Column {
		case "", "id":
			return relational.Int(id), nil
		case "type":
			return relational.Str(e.Type), nil
		}
		if v, has := e.Prop(c.Column); has {
			return v, nil
		}
		return relational.Null(), nil
	}
	return relational.Null(), fmt.Errorf("cypher: unknown variable %q", name)
}

func dedupRows(rows [][]Value) [][]Value {
	return relational.DedupRows(rows)
}

func orderRows(rs *ResultSet, q *Query) error {
	keyIdx := make([]int, len(q.OrderBy))
	for i, item := range q.OrderBy {
		name := item.Var
		if item.Prop != "" {
			name = item.Var + "." + item.Prop
		}
		found := -1
		for j, label := range rs.Columns {
			if strings.EqualFold(label, name) {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("cypher: ORDER BY %q not in RETURN", name)
		}
		keyIdx[i] = found
	}
	var sortErr error
	sort.SliceStable(rs.Rows, func(a, b int) bool {
		for k, pos := range keyIdx {
			cmp, err := rs.Rows[a][pos].Compare(rs.Rows[b][pos])
			if err != nil {
				sortErr = err
				return false
			}
			if cmp != 0 {
				if q.OrderBy[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return sortErr
}
