package graphdb

// Segment restore: a graph is rebuilt from a durable columnar image by
// adopting arenas directly — node structs without property bags
// (properties resolve through a read-only callback into the restored
// entity slab), the edge arena from event columns, and adjacency as
// subslices of the dumped CSR arrays. Nothing here replays per-element
// inserts, which is what makes opening a segment-backed store cheap.

import "fmt"

// PropResolver resolves a property of a restored node by node ID. It
// must be pure and safe for concurrent use (it is called lock-free from
// live queries and published views alike); the graph installs it once
// at restore and never changes it.
type PropResolver func(id int64, key string) (Value, bool)

// nodeProp reads a node property: materialized bags win, and bag-less
// restored nodes (ID within the restored prefix) resolve through the
// installed resolver.
func (g *Graph) nodeProp(n *Node, key string) (Value, bool) {
	if n.Props != nil {
		v, ok := n.Props[key]
		return v, ok
	}
	if g.propFn != nil && n.ID >= 1 && n.ID <= int64(g.idxBase) {
		return g.propFn(n.ID, key)
	}
	return Value{}, false
}

// offsetOf resolves a node ID to its arena offset. Dense graphs (the
// engine's, restored or not) compute it; sparse graphs probe the index
// map, falling back to the restored dense prefix, which is never in the
// map.
func (g *Graph) offsetOf(id int64) (int32, bool) {
	if g.idsDense {
		if id < 1 || id > int64(len(g.nodes)) {
			return 0, false
		}
		return int32(id - 1), true
	}
	if i, ok := g.nodeIdx[id]; ok {
		return i, true
	}
	if id >= 1 && id <= int64(g.idxBase) {
		return int32(id - 1), true
	}
	return 0, false
}

// RestoreNodes installs the node arena for a restored graph: node i
// (ID i+1) gets labels[i] and a nil property bag resolved through
// propFn. The graph must be freshly created and empty.
func (g *Graph) RestoreNodes(labels []string, propFn PropResolver) error {
	if len(g.nodes) != 0 {
		return fmt.Errorf("graphdb: restore into non-empty graph")
	}
	n := len(labels)
	g.nodes = make([]Node, n)
	// Labels come from a tiny set (the engine restores three), so both
	// passes keep per-label state in a small slice — scanning it is a few
	// pointer compares (label strings are shared constants) — and touch
	// the byLabel map only once per distinct label at the end.
	type labelList struct {
		l   string
		c   int
		ids []int64
	}
	var perLabel []labelList
	last := 0
count:
	for _, l := range labels {
		if len(perLabel) > 0 && perLabel[last].l == l {
			perLabel[last].c++
			continue
		}
		for i := range perLabel {
			if perLabel[i].l == l {
				perLabel[i].c++
				last = i
				continue count
			}
		}
		last = len(perLabel)
		perLabel = append(perLabel, labelList{l: l, c: 1})
	}
	// The per-label ID lists are carved from one arena.
	arena := make([]int64, 0, n)
	for i := range perLabel {
		c := perLabel[i].c
		perLabel[i].ids = arena[len(arena) : len(arena) : len(arena)+c]
		arena = arena[:len(arena)+c]
	}
	for i, l := range labels {
		id := int64(i) + 1
		g.nodes[i] = Node{ID: id, Label: l}
		if perLabel[last].l != l {
			for j := range perLabel {
				if perLabel[j].l == l {
					last = j
					break
				}
			}
		}
		perLabel[last].ids = append(perLabel[last].ids, id)
	}
	for i := range perLabel {
		g.byLabel[perLabel[i].l] = perLabel[i].ids
	}
	g.out = make([][]int32, n)
	g.in = make([][]int32, n)
	g.nextNode = int64(n)
	g.idxBase = n
	g.propFn = propFn
	return nil
}

// RestoreEventEdges installs the edge arena from columnar event data:
// edge i (ID i+1) is the typed event edge for row i, exactly as
// AddEventEdge would have built it. Adjacency is installed separately
// by RestoreAdjacency.
func (g *Graph) RestoreEventEdges(evID, from, to, start, end, amount []int64, types []string) error {
	if len(g.edges) != 0 {
		return fmt.Errorf("graphdb: restore into non-empty edge arena")
	}
	n := len(evID)
	if len(from) != n || len(to) != n || len(start) != n || len(end) != n || len(amount) != n || len(types) != n {
		return fmt.Errorf("graphdb: restore edge columns disagree on length")
	}
	maxNode := int64(len(g.nodes))
	g.edges = make([]Edge, n)
	for i := 0; i < n; i++ {
		if from[i] < 1 || from[i] > maxNode || to[i] < 1 || to[i] > maxNode {
			return fmt.Errorf("graphdb: restored edge %d endpoints (%d -> %d) outside %d nodes", i, from[i], to[i], maxNode)
		}
		g.edges[i] = Edge{
			ID: int64(i) + 1, From: from[i], To: to[i], Type: types[i],
			startTime: start[i], endTime: end[i], amount: amount[i], evID: evID[i], typed: true,
		}
	}
	return nil
}

// RestoreAdjacency installs the adjacency lists from CSR arrays of edge
// arena offsets: node offset i owns out[sum(outCounts[:i]) :
// +outCounts[i]], time-sorted. The lists alias the flat arrays with
// capacity == length, so a later append relocates the list privately
// and never writes into a neighbor's range.
func (g *Graph) RestoreAdjacency(outCounts, out, inCounts, in []int32) error {
	n := len(g.nodes)
	if len(outCounts) != n || len(inCounts) != n {
		return fmt.Errorf("graphdb: adjacency counts cover %d/%d nodes, have %d", len(outCounts), len(inCounts), n)
	}
	nEdges := int32(len(g.edges))
	for _, ei := range out {
		if ei < 0 || ei >= nEdges {
			return fmt.Errorf("graphdb: adjacency edge offset %d outside %d edges", ei, nEdges)
		}
	}
	for _, ei := range in {
		if ei < 0 || ei >= nEdges {
			return fmt.Errorf("graphdb: adjacency edge offset %d outside %d edges", ei, nEdges)
		}
	}
	fill := func(dst [][]int32, counts, flat []int32) error {
		pos := int32(0)
		for i, c := range counts {
			if c < 0 || int64(pos)+int64(c) > int64(len(flat)) {
				return fmt.Errorf("graphdb: adjacency counts overrun flat list")
			}
			if c > 0 {
				dst[i] = flat[pos : pos+c : pos+c]
			}
			pos += c
		}
		if int(pos) != len(flat) {
			return fmt.Errorf("graphdb: adjacency counts sum %d, flat list has %d", pos, len(flat))
		}
		return nil
	}
	if err := fill(g.out, outCounts, out); err != nil {
		return err
	}
	return fill(g.in, inCounts, in)
}

// RestorePropIndexLazy declares a property index on (label, prop)
// without building it: the first probe materializes it via CreateIndex.
// Restores use this because building the value maps is the single most
// expensive part of reopening a store, while most recoveries serve
// their first hunt well after startup.
func (g *Graph) RestorePropIndexLazy(label, prop string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.lazyProp == nil {
		g.lazyProp = make(map[string]map[string]bool)
	}
	m := g.lazyProp[label]
	if m == nil {
		m = make(map[string]bool)
		g.lazyProp[label] = m
	}
	m[prop] = true
}

// DumpAdjacency flattens the adjacency lists to CSR arrays of edge
// arena offsets for a segment dump, re-sorting any dirty lists first so
// the dumped order is the canonical time order. Writer-side only.
func (g *Graph) DumpAdjacency() (outCounts, out, inCounts, in []int32) {
	g.ensureAdjSorted()
	flatten := func(adj [][]int32) ([]int32, []int32) {
		counts := make([]int32, len(adj))
		total := 0
		for i, l := range adj {
			counts[i] = int32(len(l))
			total += len(l)
		}
		flat := make([]int32, 0, total)
		for _, l := range adj {
			flat = append(flat, l...)
		}
		return counts, flat
	}
	outCounts, out = flatten(g.out)
	inCounts, in = flatten(g.in)
	return outCounts, out, inCounts, in
}
