package graphdb

import (
	"fmt"
	"sort"
	"strings"

	"threatraptor/internal/relational"
)

// execClauseAtATime implements the Neo4j-style plan for multi-pattern
// queries: each pattern is materialized on its own (anchored by a label
// scan or property index, filtered only by the WHERE conjuncts whose
// variables it binds), and clause results are then joined in declaration
// order on shared variables. Residual conjuncts (those spanning clauses,
// e.g. temporal constraints between event variables) run after the join.
func (g *Graph) execClauseAtATime(q *Query) (*ResultSet, ExecStats, error) {
	var stats ExecStats

	// Partition WHERE conjuncts by the clause whose variables cover them.
	var conjuncts []relational.Expr
	if q.Where != nil {
		conjuncts = flattenConjuncts(q.Where, nil)
	}
	clauseVars := make([]map[string]bool, len(q.Patterns))
	for i, pat := range q.Patterns {
		vars := make(map[string]bool)
		for _, np := range pat.Nodes {
			if np.Var != "" {
				vars[np.Var] = true
			}
		}
		for _, rp := range pat.Rels {
			if rp.Var != "" && !rp.IsVarLen() {
				vars[rp.Var] = true
			}
		}
		clauseVars[i] = vars
	}
	local := make([][]relational.Expr, len(q.Patterns))
	var residual []relational.Expr
	for _, c := range conjuncts {
		vars, err := exprVars(c)
		if err != nil {
			return nil, stats, err
		}
		placed := false
		for i := range q.Patterns {
			if coveredBy(vars, clauseVars[i]) {
				local[i] = append(local[i], c)
				placed = true
				break
			}
		}
		if !placed {
			residual = append(residual, c)
		}
	}

	// Materialize each clause independently.
	results := make([][]binding, len(q.Patterns))
	for i := range q.Patterns {
		rows, cs, err := g.materializeClause(q.Patterns[i], local[i])
		if err != nil {
			return nil, stats, err
		}
		stats.NodesVisited += cs.NodesVisited
		stats.EdgesTraversed += cs.EdgesTraversed
		stats.IndexLookups += cs.IndexLookups
		results[i] = rows
	}

	// Hash-join clause results in declaration order.
	joined := results[0]
	for i := 1; i < len(results); i++ {
		joined = hashJoin(joined, results[i])
		if len(joined) == 0 {
			break
		}
	}

	// Residual filter, projection, distinct, order, limit.
	cols := make([]string, len(q.Return))
	for j, item := range q.Return {
		switch {
		case item.As != "":
			cols[j] = item.As
		case item.Prop != "":
			cols[j] = item.Var + "." + item.Prop
		default:
			cols[j] = item.Var
		}
	}
	rs := &ResultSet{Columns: cols}
	for _, b := range joined {
		resolve := g.bindingResolver(b)
		ok := true
		for _, c := range residual {
			v, err := relational.EvalExpr(c, resolve)
			if err != nil {
				return nil, stats, err
			}
			if !v.Truthy() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make([]Value, len(q.Return))
		for j, item := range q.Return {
			v, err := resolve(relational.ColRef{Qualifier: item.Var, Column: item.Prop})
			if err != nil {
				return nil, stats, err
			}
			row[j] = v
		}
		rs.Rows = append(rs.Rows, row)
	}
	if q.Distinct {
		rs.Rows = dedupRows(rs.Rows)
	}
	if len(q.OrderBy) > 0 {
		if err := orderRows(rs, q); err != nil {
			return nil, stats, err
		}
	}
	if q.Limit >= 0 && len(rs.Rows) > q.Limit {
		rs.Rows = rs.Rows[:q.Limit]
	}
	return rs, stats, nil
}

// binding maps variable names to element IDs; "n:" keys are nodes and
// "e:" keys are edges.
type binding map[string]int64

// materializeClause runs one pattern standalone and captures every
// complete variable binding.
func (g *Graph) materializeClause(pat Pattern, conjuncts []relational.Expr) ([]binding, ExecStats, error) {
	sub := &Query{Patterns: []Pattern{pat}, Limit: -1}
	m := &matcher{
		g:         g,
		q:         sub,
		nodes:     make(map[string]int64),
		edges:     make(map[string]int64),
		conjuncts: conjuncts,
	}
	m.bindStore()
	var rows []binding
	m.capture = func() error {
		// Re-check local conjuncts at completion (pruneOK skips any that
		// were not yet evaluable mid-match).
		resolve := m.resolve
		for _, c := range conjuncts {
			v, err := relational.EvalExpr(c, resolve)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		b := make(binding, len(m.nodes)+len(m.edges))
		for k, v := range m.nodes {
			b["n:"+k] = v
		}
		for k, v := range m.edges {
			b["e:"+k] = v
		}
		rows = append(rows, b)
		return nil
	}
	if err := m.matchPattern(0, 0); err != nil {
		return nil, m.stats, err
	}
	return rows, m.stats, nil
}

// hashJoin joins two binding sets on their shared variables.
func hashJoin(left, right []binding) []binding {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	// Shared keys, from any representative rows.
	var shared []string
	for k := range left[0] {
		if _, ok := right[0][k]; ok {
			shared = append(shared, k)
		}
	}
	sort.Strings(shared)
	key := func(b binding) string {
		var sb strings.Builder
		for _, k := range shared {
			fmt.Fprintf(&sb, "%d|", b[k])
		}
		return sb.String()
	}
	index := make(map[string][]binding, len(left))
	for _, b := range left {
		index[key(b)] = append(index[key(b)], b)
	}
	var out []binding
	for _, rb := range right {
		for _, lb := range index[key(rb)] {
			merged := make(binding, len(lb)+len(rb))
			for k, v := range lb {
				merged[k] = v
			}
			for k, v := range rb {
				merged[k] = v
			}
			out = append(out, merged)
		}
	}
	return out
}

// bindingResolver adapts a joined binding to the expression evaluator.
func (g *Graph) bindingResolver(b binding) func(relational.ColRef) (Value, error) {
	return func(c relational.ColRef) (Value, error) {
		name := c.Qualifier
		if name == "" {
			name = c.Column
		}
		if id, ok := b["n:"+name]; ok {
			n := g.node(id)
			switch c.Column {
			case "", "id":
				return relational.Int(id), nil
			case "label":
				return relational.Str(n.Label), nil
			}
			if c.Qualifier == "" {
				return relational.Int(id), nil
			}
			if v, has := g.nodeProp(n, c.Column); has {
				return v, nil
			}
			return relational.Null(), nil
		}
		if id, ok := b["e:"+name]; ok {
			e := g.edgeByID(id)
			switch c.Column {
			case "", "id":
				return relational.Int(id), nil
			case "type":
				return relational.Str(e.Type), nil
			}
			if c.Qualifier == "" {
				return relational.Int(id), nil
			}
			if v, has := e.Prop(c.Column); has {
				return v, nil
			}
			return relational.Null(), nil
		}
		return relational.Null(), fmt.Errorf("cypher: unknown variable %q", name)
	}
}

// exprVars collects the variable qualifiers referenced by an expression.
func exprVars(e relational.Expr) (map[string]bool, error) {
	vars := make(map[string]bool)
	var visit func(relational.Expr) error
	visit = func(e relational.Expr) error {
		switch v := e.(type) {
		case relational.ColRef:
			name := v.Qualifier
			if name == "" {
				name = v.Column
			}
			vars[name] = true
		case relational.Lit:
		case relational.BinOp:
			if err := visit(v.L); err != nil {
				return err
			}
			return visit(v.R)
		case relational.UnOp:
			return visit(v.E)
		case relational.InList:
			if err := visit(v.E); err != nil {
				return err
			}
			for _, x := range v.Vals {
				if err := visit(x); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("cypher: unsupported expression %T", e)
		}
		return nil
	}
	if err := visit(e); err != nil {
		return nil, err
	}
	return vars, nil
}

func coveredBy(vars, clause map[string]bool) bool {
	for v := range vars {
		if !clause[v] {
			return false
		}
	}
	return true
}
