// Package graphdb is an in-process property graph database with a
// Cypher-subset query processor (MATCH with variable-length relationships,
// WHERE, RETURN DISTINCT, ORDER BY, LIMIT).
//
// It is the Neo4j stand-in for ThreatRaptor's graph storage backend
// (Section III-B): system entities are stored as nodes and system events as
// edges, and TBQL variable-length event path patterns are compiled into
// Cypher data queries executed here.
//
// Property values and WHERE expressions reuse the typed Value and
// expression AST of the relational engine so both backends share one
// comparison and LIKE semantics.
package graphdb

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"threatraptor/internal/relational"
)

// Value is the property value type (shared with the relational engine).
type Value = relational.Value

// Props is a node or edge property bag.
type Props map[string]Value

// Node is a labeled property node.
type Node struct {
	ID    int64
	Label string
	Props Props
}

// Edge is a typed, directed property edge. Event edges (the dominant
// population: one per audit event) carry their four attributes in the
// typed columnar fields below with a nil Props map — AddEventEdge inserts
// them without allocating any per-edge property bag. Generic edges keep
// the Props map.
type Edge struct {
	ID    int64
	From  int64
	To    int64
	Type  string
	Props Props // nil for event edges; see the typed fields
	// startTime caches the "start_time" property (math.MinInt64 when
	// absent) so adjacency lists can sort and binary-search by time
	// without a property-map lookup per edge.
	startTime int64
	// endTime, amount, and evID are the remaining event-edge attributes
	// ("end_time", "amount", "id"), valid when typed is set.
	endTime int64
	amount  int64
	evID    int64
	typed   bool
}

// Prop returns one edge property. Event edges resolve the four typed
// attributes from their columnar fields; generic edges consult the bag.
func (e *Edge) Prop(name string) (Value, bool) {
	if !e.typed {
		v, ok := e.Props[name]
		return v, ok
	}
	switch name {
	case "id":
		return relational.Int(e.evID), true
	case "start_time":
		if e.startTime != noStartTime {
			return relational.Int(e.startTime), true
		}
	case "end_time":
		return relational.Int(e.endTime), true
	case "amount":
		return relational.Int(e.amount), true
	}
	return Value{}, false
}

// noStartTime marks edges without a start_time property; they sort before
// every timestamped edge, matching NULL-sorts-first comparison semantics.
const noStartTime = math.MinInt64

// Graph stores nodes and edges in slice-backed arenas: node and edge
// structs live contiguously, adjacency is per-node []int32 arena offsets
// (CSR-style), and each node's outgoing/incoming edge list is kept sorted
// by the edges' start_time so windowed traversals binary-search to the
// first in-window edge instead of scanning the whole neighborhood.
type Graph struct {
	nodes   []Node
	nodeIdx map[int64]int32 // node ID -> arena offset
	edges   []Edge          // edge ID i lives at arena offset i-1
	out     [][]int32       // node arena offset -> outgoing edge offsets
	in      [][]int32       // node arena offset -> incoming edge offsets
	byLabel map[string][]int64
	// propIndex[label][prop][value] -> node IDs. Values are used as map
	// keys directly (the Value struct is comparable), so inserts and
	// probes allocate no key representation.
	propIndex map[string]map[string]map[Value][]int64
	// lazyProp registers (label, prop) pairs whose property index is
	// declared but not yet built: a segment restore defers the map
	// construction to the first probe (see ensurePropIndex), keeping
	// recovery O(arenas). Guarded by mu like propIndex.
	lazyProp map[string]map[string]bool
	nextNode int64
	// adjArena is the spare backing store new adjacency lists are carved
	// from (see appendAdj); it keeps per-edge ingest allocation-free for
	// the dominant low-degree nodes.
	adjArena []int32

	// dirtyOut/dirtyIn hold the node arena offsets whose adjacency list
	// received an out-of-time-order edge append; only those lists are
	// re-sorted lazily before the next query. Keeping the dirt per node
	// makes live ingestion sublinear: a late event re-sorts two
	// neighborhoods, not the whole graph.
	dirtyOut map[int32]struct{}
	dirtyIn  map[int32]struct{}
	sortMu   sync.Mutex

	// pubOut/pubIn are the published chunked adjacency copies handed to
	// views (see view.go): the outer slice holds one chunk of adjChunkSize
	// inner-list headers per adjChunkSize node offsets. Chunks are
	// copy-on-write — a publish clones only the chunks whose dirty bit is
	// set below, so publishing costs O(touched chunks), not O(nodes).
	pubOut, pubIn [][][]int32
	// dirtyPubOut/dirtyPubIn are bitsets over chunk indices: bit ci set
	// means live adjacency inside chunk ci changed (edge append, node
	// append, lazy re-sort, rollback) since the last publish, so pubOut/
	// pubIn chunk ci must be re-cloned. Writer-only, like the arenas.
	dirtyPubOut, dirtyPubIn []uint64

	// labelUnsorted marks labels whose byLabel list received an
	// out-of-order node ID. Until then the list is ascending-sorted
	// (AddNode assigns increasing IDs; stores mirror ascending entity IDs)
	// and anchor enumeration can merge-intersect it against the sorted
	// binding ID lists the TBQL scheduler feeds forward, instead of
	// checking each candidate's label one node lookup at a time.
	labelUnsorted map[string]bool

	// mu synchronizes the map structures (nodeIdx, byLabel, propIndex,
	// labelUnsorted) between the single writer and snapshot-view readers:
	// node inserts, rollbacks, and index builds take the write lock; view
	// probes take the read lock (see view.go). Live queries run on the
	// writer's own goroutine and need no locking; edge appends mutate no
	// map a view reads and stay lock-free.
	mu sync.RWMutex

	// idsDense records that every node's ID equals its arena offset + 1
	// (the engine mirrors dense ascending entity IDs). Views exploit it to
	// resolve nodes without the locked nodeIdx probe.
	idsDense bool

	// idxBase counts the restored dense node prefix that nodeIdx does NOT
	// cover: a segment restore installs nodes 1..idxBase without map
	// entries, and offsetOf computes their offsets. Zero for graphs built
	// by inserts.
	idxBase int
	// propFn resolves properties of restored bag-less nodes (see
	// PropResolver). Set once at restore, immutable, read lock-free.
	propFn PropResolver
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodeIdx:   make(map[int64]int32),
		byLabel:   make(map[string][]int64),
		propIndex: make(map[string]map[string]map[Value][]int64),
		idsDense:  true,
	}
}

// ReserveNodes preallocates arena capacity for n additional nodes. Growth
// follows relational.GrowCap so live append batches amortize to O(1)
// copies per element (a cold arena still gets exactly the requested size).
func (g *Graph) ReserveNodes(n int) {
	need := len(g.nodes) + n
	if cap(g.nodes) < need {
		grown := make([]Node, len(g.nodes), relational.GrowCap(cap(g.nodes), need))
		copy(grown, g.nodes)
		g.nodes = grown
	}
	growAdj := func(adj [][]int32) [][]int32 {
		if cap(adj) < need {
			grown := make([][]int32, len(adj), relational.GrowCap(cap(adj), need))
			copy(grown, adj)
			return grown
		}
		return adj
	}
	g.out = growAdj(g.out)
	g.in = growAdj(g.in)
}

// ReserveEdges preallocates arena capacity for n additional edges.
func (g *Graph) ReserveEdges(n int) {
	need := len(g.edges) + n
	if cap(g.edges) < need {
		grown := make([]Edge, len(g.edges), relational.GrowCap(cap(g.edges), need))
		copy(grown, g.edges)
		g.edges = grown
	}
}

func (g *Graph) addNode(id int64, label string, props Props) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id != int64(len(g.nodes))+1 {
		g.idsDense = false
	}
	ni := int32(len(g.nodes))
	g.nodeIdx[id] = ni
	g.nodes = append(g.nodes, Node{ID: id, Label: label, Props: props})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	markAdjChunkDirty(&g.dirtyPubOut, ni)
	markAdjChunkDirty(&g.dirtyPubIn, ni)
	if l := g.byLabel[label]; len(l) > 0 && l[len(l)-1] > id && !g.labelUnsorted[label] {
		if g.labelUnsorted == nil {
			g.labelUnsorted = make(map[string]bool)
		}
		g.labelUnsorted[label] = true
	}
	g.byLabel[label] = append(g.byLabel[label], id)
	if byProp, ok := g.propIndex[label]; ok {
		for prop, vals := range byProp {
			if v, has := props[prop]; has {
				vals[v] = append(vals[v], id)
			}
		}
	}
}

// AddNode inserts a node and returns its ID.
func (g *Graph) AddNode(label string, props Props) int64 {
	g.nextNode++
	id := g.nextNode
	g.addNode(id, label, props)
	return id
}

// AddNodeWithID inserts a node with a caller-chosen ID (used when mirroring
// entity IDs from the relational store). It panics on duplicate IDs.
func (g *Graph) AddNodeWithID(id int64, label string, props Props) {
	if _, dup := g.offsetOf(id); dup {
		panic(fmt.Sprintf("graphdb: duplicate node id %d", id))
	}
	if id > g.nextNode {
		g.nextNode = id
	}
	g.addNode(id, label, props)
}

// AddEdge inserts a directed edge and returns its ID. Both endpoints must
// exist.
func (g *Graph) AddEdge(from, to int64, typ string, props Props) (int64, error) {
	st := int64(noStartTime)
	if v, has := props["start_time"]; has && v.K == relational.KindInt {
		st = v.I
	}
	return g.addEdge(Edge{From: from, To: to, Type: typ, Props: props, startTime: st})
}

// AddEventEdge inserts a directed event edge carrying the four standard
// audit-event attributes (id, start_time, end_time, amount) in the edge's
// typed fields — no per-edge property map is allocated. This is the bulk
// ingest path for both store loading and live appends.
func (g *Graph) AddEventEdge(from, to int64, typ string, evID, start, end, amount int64) (int64, error) {
	return g.addEdge(Edge{
		From: from, To: to, Type: typ,
		startTime: start, endTime: end, amount: amount, evID: evID, typed: true,
	})
}

func (g *Graph) addEdge(e Edge) (int64, error) {
	fi, okF := g.offsetOf(e.From)
	ti, okT := g.offsetOf(e.To)
	if !okF || !okT {
		return 0, fmt.Errorf("graphdb: edge endpoints must exist (%d -> %d)", e.From, e.To)
	}
	st := e.startTime
	ei := int32(len(g.edges))
	e.ID = int64(ei) + 1
	g.edges = append(g.edges, e)
	if l := g.out[fi]; len(l) > 0 && g.edges[l[len(l)-1]].startTime > st {
		if g.dirtyOut == nil {
			g.dirtyOut = make(map[int32]struct{})
		}
		g.dirtyOut[fi] = struct{}{}
	}
	g.out[fi] = g.appendAdj(g.out[fi], ei)
	markAdjChunkDirty(&g.dirtyPubOut, fi)
	if l := g.in[ti]; len(l) > 0 && g.edges[l[len(l)-1]].startTime > st {
		if g.dirtyIn == nil {
			g.dirtyIn = make(map[int32]struct{})
		}
		g.dirtyIn[ti] = struct{}{}
	}
	g.in[ti] = g.appendAdj(g.in[ti], ei)
	markAdjChunkDirty(&g.dirtyPubIn, ti)
	return e.ID, nil
}

// Published adjacency is chunked so a snapshot publish clones only the
// chunks an append batch touched (audit batches touch few distinct
// neighborhoods) instead of re-copying one slice header per node.
const (
	adjChunkShift = 6 // 64 node offsets per chunk
	adjChunkSize  = 1 << adjChunkShift
)

// markAdjChunkDirty flags the published-adjacency chunk holding node
// offset ni as stale. Writer-only.
func markAdjChunkDirty(set *[]uint64, ni int32) {
	ci := uint32(ni) >> adjChunkShift
	w := ci >> 6
	for uint32(len(*set)) <= w {
		*set = append(*set, 0)
	}
	(*set)[w] |= 1 << (ci & 63)
}

// publishAdj refreshes and returns the published chunked copies of both
// adjacency directions. It must run writer-synchronized (Capture's
// contract): stale chunks are re-cloned from the live arrays, clean
// chunks are shared with every previously published view. The returned
// outer slices are immutable — the next publish builds fresh ones.
func (g *Graph) publishAdj() (out, in [][][]int32) {
	out = publishAdjChunks(&g.pubOut, g.out, g.dirtyPubOut)
	in = publishAdjChunks(&g.pubIn, g.in, g.dirtyPubIn)
	clear(g.dirtyPubOut)
	clear(g.dirtyPubIn)
	return out, in
}

func publishAdjChunks(pub *[][][]int32, live [][]int32, dirty []uint64) [][][]int32 {
	nchunks := (len(live) + adjChunkSize - 1) >> adjChunkShift
	old := *pub
	clean := true
	for _, w := range dirty {
		if w != 0 {
			clean = false
			break
		}
	}
	if clean && len(old) == nchunks {
		return old
	}
	isStale := func(ci int) bool {
		if ci >= len(old) {
			return true
		}
		return ci>>6 < len(dirty) && dirty[ci>>6]&(1<<(uint(ci)&63)) != 0
	}
	next := make([][][]int32, nchunks)
	copy(next, old)
	// All stale-chunk clones share one backing allocation: a 512-event
	// append batch can dirty dozens of chunks, and one allocation per
	// chunk would put per-batch alloc count back on an O(batch) slope.
	total := 0
	for ci := 0; ci < nchunks; ci++ {
		if isStale(ci) {
			end := (ci + 1) << adjChunkShift
			if end > len(live) {
				end = len(live)
			}
			total += end - ci<<adjChunkShift
		}
	}
	buf := make([][]int32, 0, total)
	for ci := 0; ci < nchunks; ci++ {
		if !isStale(ci) {
			continue
		}
		start := ci << adjChunkShift
		end := start + adjChunkSize
		if end > len(live) {
			end = len(live)
		}
		at := len(buf)
		buf = append(buf, live[start:end]...)
		next[ci] = buf[at:len(buf):len(buf)]
	}
	*pub = next
	return next
}

// appendAdj appends to an adjacency list. New lists are carved from the
// graph's shared arena at capacity 4 (low-degree nodes dominate audit
// graphs), so the dominant "first edge of a node" case allocates nothing;
// lists that outgrow their carve fall back to ordinary doubling.
func (g *Graph) appendAdj(l []int32, ei int32) []int32 {
	if cap(l) == 0 {
		l = carveList(&g.adjArena)
	}
	return append(l, ei)
}

// carveList cuts a len-0 cap-4 slice from the arena, refilling it in bulk
// when exhausted. Abandoned carve remainders (lists that grew past 4 and
// relocated) stay unreferenced inside old chunks — a bounded waste of at
// most 16 bytes per high-degree node.
func carveList(arena *[]int32) []int32 {
	a := *arena
	if cap(a) < 4 {
		a = make([]int32, 4096)
	}
	s := a[0:0:4]
	*arena = a[4:]
	return s
}

// ensureAdjSorted restores the by-start_time order of the adjacency lists
// touched by out-of-order inserts. Live queries call it once on entry;
// audit logs arrive mostly in time order, so in the steady state it is two
// map checks, and a late event costs two neighborhood sorts — never a
// whole-graph pass. The re-sort is copy-on-write: a freshly sorted array
// is swapped into the adjacency slot rather than sorting in place, so
// published views (which hold the old inner-list headers) keep reading the
// order they captured.
func (g *Graph) ensureAdjSorted() {
	g.sortMu.Lock()
	defer g.sortMu.Unlock()
	if len(g.dirtyOut) == 0 && len(g.dirtyIn) == 0 {
		return
	}
	sortList := func(l []int32) []int32 {
		s := append([]int32(nil), l...)
		sort.Slice(s, func(a, b int) bool {
			ea, eb := &g.edges[s[a]], &g.edges[s[b]]
			if ea.startTime != eb.startTime {
				return ea.startTime < eb.startTime
			}
			return s[a] < s[b]
		})
		return s
	}
	for fi := range g.dirtyOut {
		g.out[fi] = sortList(g.out[fi])
		markAdjChunkDirty(&g.dirtyPubOut, fi)
	}
	for ti := range g.dirtyIn {
		g.in[ti] = sortList(g.in[ti])
		markAdjChunkDirty(&g.dirtyPubIn, ti)
	}
	g.dirtyOut = nil
	g.dirtyIn = nil
}

// Mark captures the graph's append high-water marks so a failed batch
// append can be rolled back with Rollback.
type Mark struct {
	nodes    int
	edges    int
	nextNode int64
	idsDense bool
}

// Mark returns the current append high-water marks. Take it immediately
// before an append batch; no live query may run between Mark and Rollback
// (the append path is single-writer), though snapshot views published
// before the mark may be read throughout — they never cover the elements
// a rollback removes.
func (g *Graph) Mark() Mark {
	return Mark{nodes: len(g.nodes), edges: len(g.edges), nextNode: g.nextNode, idsDense: g.idsDense}
}

// Rollback removes every node and edge appended since the mark, restoring
// the arenas, adjacency lists, label lists, property indexes, and ID
// high-water mark. It relies on append-only tails: adjacency, label, and
// property-index lists only ever append between Mark and Rollback (lazy
// adjacency re-sorts happen on query entry, and queries are excluded), so
// the appended suffix of each list is exactly what must be popped.
func (g *Graph) Rollback(m Mark) {
	// Pop edges newest-first so each one sits at the tail of its
	// endpoints' adjacency lists when removed.
	for ei := len(g.edges) - 1; ei >= m.edges; ei-- {
		e := &g.edges[ei]
		fi, _ := g.offsetOf(e.From)
		if l := g.out[fi]; len(l) > 0 && l[len(l)-1] == int32(ei) {
			g.out[fi] = l[:len(l)-1]
			markAdjChunkDirty(&g.dirtyPubOut, fi)
		}
		ti, _ := g.offsetOf(e.To)
		if l := g.in[ti]; len(l) > 0 && l[len(l)-1] == int32(ei) {
			g.in[ti] = l[:len(l)-1]
			markAdjChunkDirty(&g.dirtyPubIn, ti)
		}
		*e = Edge{} // release Props/string references held by the arena
	}
	g.edges = g.edges[:m.edges]

	// Pop nodes newest-first: label and property-index lists appended the
	// IDs in insertion order, so each removed ID is a list tail. The map
	// mutations take the write lock so concurrent view probes never see a
	// half-popped index (the popped entries are all post-capture IDs, so
	// views lose nothing they covered).
	g.mu.Lock()
	for ni := len(g.nodes) - 1; ni >= m.nodes; ni-- {
		n := &g.nodes[ni]
		delete(g.nodeIdx, n.ID)
		if l := g.byLabel[n.Label]; len(l) > 0 && l[len(l)-1] == n.ID {
			if len(l) == 1 {
				delete(g.byLabel, n.Label)
			} else {
				g.byLabel[n.Label] = l[:len(l)-1]
			}
		}
		if byProp, ok := g.propIndex[n.Label]; ok {
			for prop, vals := range byProp {
				v, has := g.nodeProp(n, prop)
				if !has {
					continue
				}
				if l := vals[v]; len(l) > 0 && l[len(l)-1] == n.ID {
					if len(l) == 1 {
						delete(vals, v)
					} else {
						vals[v] = l[:len(l)-1]
					}
				}
			}
		}
		*n = Node{}
	}
	g.nodes = g.nodes[:m.nodes]
	g.out = g.out[:m.nodes]
	g.in = g.in[:m.nodes]
	g.nextNode = m.nextNode
	g.idsDense = m.idsDense
	g.mu.Unlock()

	// Dirty-list entries for removed nodes would make the next lazy
	// re-sort index past the truncated adjacency arrays; entries for
	// surviving nodes stay (re-sorting a clean list is harmless).
	g.sortMu.Lock()
	for fi := range g.dirtyOut {
		if int(fi) >= m.nodes {
			delete(g.dirtyOut, fi)
		}
	}
	for ti := range g.dirtyIn {
		if int(ti) >= m.nodes {
			delete(g.dirtyIn, ti)
		}
	}
	g.sortMu.Unlock()
}

// CreateIndex builds a property index on (label, prop) over existing and
// future nodes. It may be called from a reader goroutine (lazy builds
// triggered by a probe); the write lock excludes the writer's map and
// arena mutations for the duration.
func (g *Graph) CreateIndex(label, prop string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m := g.lazyProp[label]; m != nil {
		delete(m, prop)
	}
	byProp, ok := g.propIndex[label]
	if !ok {
		byProp = make(map[string]map[Value][]int64)
		g.propIndex[label] = byProp
	}
	if _, exists := byProp[prop]; exists {
		return
	}
	vals := make(map[Value][]int64)
	for _, id := range g.byLabel[label] {
		if v, has := g.nodeProp(g.node(id), prop); has {
			vals[v] = append(vals[v], id)
		}
	}
	byProp[prop] = vals
}

// node returns a pointer into the node arena, or nil. The pointer is
// valid until the next node insert (arena growth may relocate it).
func (g *Graph) node(id int64) *Node {
	i, ok := g.offsetOf(id)
	if !ok {
		return nil
	}
	return &g.nodes[i]
}

// edgeByID returns a pointer into the edge arena, or nil; edge IDs are
// dense (arena offset + 1), so this is a bounds check, not a map lookup.
func (g *Graph) edgeByID(id int64) *Edge {
	if id < 1 || id > int64(len(g.edges)) {
		return nil
	}
	return &g.edges[id-1]
}

// Node returns the node with the given ID, or nil. The pointer is valid
// until the next insert.
func (g *Graph) Node(id int64) *Node { return g.node(id) }

// Edge returns the edge with the given ID, or nil. The pointer is valid
// until the next insert.
func (g *Graph) Edge(id int64) *Edge { return g.edgeByID(id) }

// NumNodes and NumEdges report store sizes.
func (g *Graph) NumNodes() int { return len(g.nodes) }
func (g *Graph) NumEdges() int { return len(g.edges) }

// NodesByLabel returns the IDs of all nodes with the label.
func (g *Graph) NodesByLabel(label string) []int64 { return g.byLabel[label] }

// sortedLabelIDs returns the node IDs of the label when they are usable
// for sorted intersection: the label must resolve to exactly one stored
// label under the case-insensitive match bindNode applies (EqualFold),
// and that list must still be ascending-sorted (no out-of-order insert).
// Any ambiguity or mismatch returns ok=false and the caller falls back
// to per-candidate bindNode checks — never a semantic change, only a
// lost shortcut.
func (g *Graph) sortedLabelIDs(label string) ([]int64, bool) {
	found, ok := g.resolveLabelLocked(label)
	if !ok || g.labelUnsorted[found] {
		return nil, false
	}
	return g.byLabel[found], true
}

// resolveLabelLocked maps a query label to the unique stored label it
// case-insensitively matches, or ok=false on ambiguity. Callers must hold
// g.mu (any mode) or be the writer.
func (g *Graph) resolveLabelLocked(label string) (string, bool) {
	found, n := label, 0
	if _, ok := g.byLabel[label]; ok {
		n = 1
	}
	for stored := range g.byLabel {
		if stored != label && strings.EqualFold(stored, label) {
			found = stored
			n++
		}
	}
	return found, n == 1
}

// intersectSortedIDs writes into dst (reset to length 0) the values
// present in both sorted unique ID lists, iterating the smaller list and
// galloping through the larger: exponential probing from the last match
// position, then a binary search inside the bracketed window. For the
// skewed sizes anchor enumeration sees — a scheduler binding set of a few
// dozen IDs against a label list of many thousands — this costs
// O(small · log(gap)) instead of O(small + large).
func intersectSortedIDs(a, b, dst []int64) []int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	dst = dst[:0]
	lo := 0
	for _, v := range a {
		// Gallop: bracket the window [lo, lo+step] containing v, then
		// binary search for the first element >= v inside it.
		step := 1
		for lo+step < len(b) && b[lo+step] < v {
			step <<= 1
		}
		hi := lo + step
		if hi > len(b) {
			hi = len(b)
		}
		lo += relational.LowerBoundInt64(b[lo:hi], v)
		if lo >= len(b) {
			break
		}
		if b[lo] == v {
			dst = append(dst, v)
			lo++
		}
	}
	return dst
}

// AllNodeIDs returns every node ID in insertion order.
func (g *Graph) AllNodeIDs() []int64 {
	out := make([]int64, len(g.nodes))
	for i := range g.nodes {
		out[i] = g.nodes[i].ID
	}
	return out
}

// Out and In return the outgoing/incoming edge IDs of a node, ordered by
// the edges' start_time.
func (g *Graph) Out(id int64) []int64 { return g.edgeIDs(g.outOffsets(id)) }
func (g *Graph) In(id int64) []int64  { return g.edgeIDs(g.inOffsets(id)) }

func (g *Graph) edgeIDs(offsets []int32) []int64 {
	ids := make([]int64, len(offsets))
	for i, o := range offsets {
		ids[i] = int64(o) + 1
	}
	return ids
}

// outOffsets and inOffsets return adjacency as edge arena offsets.
func (g *Graph) outOffsets(id int64) []int32 {
	i, ok := g.offsetOf(id)
	if !ok {
		return nil
	}
	return g.out[i]
}

func (g *Graph) inOffsets(id int64) []int32 {
	i, ok := g.offsetOf(id)
	if !ok {
		return nil
	}
	return g.in[i]
}

// windowSlice narrows a time-sorted adjacency list to the edges whose
// start_time lies in [lo, hi], via binary search on both bounds.
func (g *Graph) windowSlice(adj []int32, lo, hi int64) []int32 {
	return windowSliceIn(g.edges, adj, lo, hi)
}

// windowSliceIn is windowSlice against an explicit edge arena (a view's
// captured arena, or the live one).
func windowSliceIn(edges []Edge, adj []int32, lo, hi int64) []int32 {
	start := sort.Search(len(adj), func(i int) bool {
		return edges[adj[i]].startTime >= lo
	})
	end := sort.Search(len(adj), func(i int) bool {
		return edges[adj[i]].startTime > hi
	})
	if start >= end {
		return nil
	}
	return adj[start:end]
}

// lookupIndexed returns node IDs where label.prop == v, and whether an
// index served the lookup. The probe takes the read lock: a lazily
// declared index may be materialized by any goroutine's first probe, so
// propIndex reads are no longer writer-exclusive.
func (g *Graph) lookupIndexed(label, prop string, v Value) ([]int64, bool) {
	g.ensurePropIndex(label, prop)
	g.mu.RLock()
	defer g.mu.RUnlock()
	byProp, ok := g.propIndex[label]
	if !ok {
		return nil, false
	}
	vals, ok := byProp[prop]
	if !ok {
		return nil, false
	}
	return vals[v], true
}

// ensurePropIndex materializes a lazily declared property index the
// first time it is probed.
func (g *Graph) ensurePropIndex(label, prop string) {
	g.mu.RLock()
	pending := g.lazyProp[label][prop]
	g.mu.RUnlock()
	if pending {
		g.CreateIndex(label, prop)
	}
}
