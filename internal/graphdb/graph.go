// Package graphdb is an in-process property graph database with a
// Cypher-subset query processor (MATCH with variable-length relationships,
// WHERE, RETURN DISTINCT, ORDER BY, LIMIT).
//
// It is the Neo4j stand-in for ThreatRaptor's graph storage backend
// (Section III-B): system entities are stored as nodes and system events as
// edges, and TBQL variable-length event path patterns are compiled into
// Cypher data queries executed here.
//
// Property values and WHERE expressions reuse the typed Value and
// expression AST of the relational engine so both backends share one
// comparison and LIKE semantics.
package graphdb

import (
	"fmt"

	"threatraptor/internal/relational"
)

// Value is the property value type (shared with the relational engine).
type Value = relational.Value

// Props is a node or edge property bag.
type Props map[string]Value

// Node is a labeled property node.
type Node struct {
	ID    int64
	Label string
	Props Props
}

// Edge is a typed, directed property edge.
type Edge struct {
	ID    int64
	From  int64
	To    int64
	Type  string
	Props Props
}

// Graph is the property graph store with adjacency lists and optional
// property indexes.
type Graph struct {
	nodes   map[int64]*Node
	edges   map[int64]*Edge
	out     map[int64][]int64 // node -> outgoing edge IDs
	in      map[int64][]int64 // node -> incoming edge IDs
	byLabel map[string][]int64
	// propIndex[label][prop][valueKey] -> node IDs
	propIndex map[string]map[string]map[string][]int64
	nextNode  int64
	nextEdge  int64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:     make(map[int64]*Node),
		edges:     make(map[int64]*Edge),
		out:       make(map[int64][]int64),
		in:        make(map[int64][]int64),
		byLabel:   make(map[string][]int64),
		propIndex: make(map[string]map[string]map[string][]int64),
	}
}

// AddNode inserts a node and returns its ID.
func (g *Graph) AddNode(label string, props Props) int64 {
	g.nextNode++
	id := g.nextNode
	n := &Node{ID: id, Label: label, Props: props}
	g.nodes[id] = n
	g.byLabel[label] = append(g.byLabel[label], id)
	if byProp, ok := g.propIndex[label]; ok {
		for prop, vals := range byProp {
			if v, has := props[prop]; has {
				vals[v.Key()] = append(vals[v.Key()], id)
			}
		}
	}
	return id
}

// AddNodeWithID inserts a node with a caller-chosen ID (used when mirroring
// entity IDs from the relational store). It panics on duplicate IDs.
func (g *Graph) AddNodeWithID(id int64, label string, props Props) {
	if _, dup := g.nodes[id]; dup {
		panic(fmt.Sprintf("graphdb: duplicate node id %d", id))
	}
	if id > g.nextNode {
		g.nextNode = id
	}
	n := &Node{ID: id, Label: label, Props: props}
	g.nodes[id] = n
	g.byLabel[label] = append(g.byLabel[label], id)
	if byProp, ok := g.propIndex[label]; ok {
		for prop, vals := range byProp {
			if v, has := props[prop]; has {
				vals[v.Key()] = append(vals[v.Key()], id)
			}
		}
	}
}

// AddEdge inserts a directed edge and returns its ID. Both endpoints must
// exist.
func (g *Graph) AddEdge(from, to int64, typ string, props Props) (int64, error) {
	if g.nodes[from] == nil || g.nodes[to] == nil {
		return 0, fmt.Errorf("graphdb: edge endpoints must exist (%d -> %d)", from, to)
	}
	g.nextEdge++
	id := g.nextEdge
	g.edges[id] = &Edge{ID: id, From: from, To: to, Type: typ, Props: props}
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id, nil
}

// CreateIndex builds a property index on (label, prop) over existing and
// future nodes.
func (g *Graph) CreateIndex(label, prop string) {
	byProp, ok := g.propIndex[label]
	if !ok {
		byProp = make(map[string]map[string][]int64)
		g.propIndex[label] = byProp
	}
	if _, exists := byProp[prop]; exists {
		return
	}
	vals := make(map[string][]int64)
	for _, id := range g.byLabel[label] {
		if v, has := g.nodes[id].Props[prop]; has {
			vals[v.Key()] = append(vals[v.Key()], id)
		}
	}
	byProp[prop] = vals
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id int64) *Node { return g.nodes[id] }

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id int64) *Edge { return g.edges[id] }

// NumNodes and NumEdges report store sizes.
func (g *Graph) NumNodes() int { return len(g.nodes) }
func (g *Graph) NumEdges() int { return len(g.edges) }

// NodesByLabel returns the IDs of all nodes with the label.
func (g *Graph) NodesByLabel(label string) []int64 { return g.byLabel[label] }

// AllNodeIDs returns every node ID (order unspecified).
func (g *Graph) AllNodeIDs() []int64 {
	out := make([]int64, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	return out
}

// Out and In return the outgoing/incoming edge IDs of a node.
func (g *Graph) Out(id int64) []int64 { return g.out[id] }
func (g *Graph) In(id int64) []int64  { return g.in[id] }

// lookupIndexed returns node IDs where label.prop == v, and whether an
// index served the lookup.
func (g *Graph) lookupIndexed(label, prop string, v Value) ([]int64, bool) {
	byProp, ok := g.propIndex[label]
	if !ok {
		return nil, false
	}
	vals, ok := byProp[prop]
	if !ok {
		return nil, false
	}
	return vals[v.Key()], true
}
