package graphdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestVarLengthAgainstBFSOracle cross-checks variable-length path matching
// against a straightforward BFS reachability oracle on random graphs.
// Edge-unique traversal and plain BFS agree on which nodes are reachable
// within k hops whenever k is at least the BFS distance (a shortest path
// never repeats an edge).
func TestVarLengthAgainstBFSOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g := NewGraph()
		n := 6 + rng.Intn(8)
		ids := make([]int64, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode("N", Props{"name": str(fmt.Sprintf("n%d", i))})
		}
		edges := 8 + rng.Intn(16)
		adj := make(map[int64][]int64)
		for i := 0; i < edges; i++ {
			a := ids[rng.Intn(n)]
			b := ids[rng.Intn(n)]
			if a == b {
				continue
			}
			if _, err := g.AddEdge(a, b, "x", nil); err != nil {
				t.Fatal(err)
			}
			adj[a] = append(adj[a], b)
		}

		start := ids[rng.Intn(n)]
		maxLen := 1 + rng.Intn(4)

		// Oracle: BFS distances.
		dist := map[int64]int{start: 0}
		queue := []int64{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if _, ok := dist[v]; !ok {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}

		rs, err := g.Query(fmt.Sprintf(
			`MATCH (s:N {name: 'n%d'})-[*1..%d]->(x) RETURN DISTINCT x.name`,
			indexOf(ids, start), maxLen))
		if err != nil {
			t.Fatal(err)
		}
		matched := map[string]bool{}
		for _, row := range rs.Rows {
			matched[row[0].S] = true
		}
		// Every node within BFS distance [1, maxLen] must be matched.
		for v, d := range dist {
			name := fmt.Sprintf("n%d", indexOf(ids, v))
			if d >= 1 && d <= maxLen && !matched[name] {
				t.Fatalf("trial %d: node %s at distance %d missing from *1..%d match",
					trial, name, d, maxLen)
			}
			// Matched nodes must be reachable at all (any distance, since
			// edge-unique walks can be longer than shortest paths).
		}
		for name := range matched {
			var id int64
			fmt.Sscanf(name, "n%d", &id)
			if _, ok := dist[ids[id]]; !ok {
				t.Fatalf("trial %d: matched unreachable node %s", trial, name)
			}
		}
	}
}

func indexOf(ids []int64, id int64) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return -1
}
