package graphdb

import (
	"testing"
)

// addTestEdge appends an event edge with the given start time and fails
// the test on error.
func addTestEdge(t *testing.T, g *Graph, from, to, start int64) int64 {
	t.Helper()
	id, err := g.AddEventEdge(from, to, "read", start, start, start, 1)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// offsets returns a copy of a view's outgoing adjacency for a node.
func offsets(v *View, id int64) []int32 {
	return append([]int32(nil), v.outOffsets(id)...)
}

// TestViewChunkedPublishIsolation exercises the chunked copy-on-write
// adjacency publication across its edge cases: a captured view must keep
// answering from the adjacency it froze while later appends, node growth
// across chunk boundaries, lazy re-sorts, and rollbacks mutate the live
// graph and publish newer views.
func TestViewChunkedPublishIsolation(t *testing.T) {
	g := NewGraph()
	// Span several chunks so clean-chunk sharing and per-chunk cloning
	// both happen: 3 full chunks plus a partial tail.
	n := int64(3*adjChunkSize + 7)
	for i := int64(0); i < n; i++ {
		g.AddNode("Node", nil)
	}
	// One edge inside each chunk region.
	e1 := addTestEdge(t, g, 1, 2, 100)
	mid := int64(adjChunkSize + 5)
	e2 := addTestEdge(t, g, mid, mid+1, 200)

	var v1 View
	v1.Capture(g)
	if got := offsets(&v1, 1); len(got) != 1 || got[0] != int32(e1-1) {
		t.Fatalf("v1 out(1) = %v, want [%d]", got, e1-1)
	}

	// Appends after the capture: a new edge on node 1's list, a new edge
	// on a fresh node past the old partial tail chunk, and an
	// out-of-order edge that dirties node mid's list.
	e3 := addTestEdge(t, g, 1, 3, 300)
	tail := g.AddNode("Node", nil)
	e4 := addTestEdge(t, g, tail, 1, 400)
	addTestEdge(t, g, mid, mid+2, 50) // out of order: before e2

	var v2 View
	v2.Capture(g)

	// v1 froze the pre-append adjacency everywhere.
	if got := offsets(&v1, 1); len(got) != 1 || got[0] != int32(e1-1) {
		t.Fatalf("v1 out(1) after appends = %v, want [%d]", got, e1-1)
	}
	if got := offsets(&v1, mid); len(got) != 1 || got[0] != int32(e2-1) {
		t.Fatalf("v1 out(mid) after appends = %v, want [%d]", got, e2-1)
	}
	if v1.node(tail) != nil {
		t.Fatalf("v1 resolves node %d added after its capture", tail)
	}

	// v2 sees the appends, with mid's list re-sorted by start time.
	if got := offsets(&v2, 1); len(got) != 2 || got[0] != int32(e1-1) || got[1] != int32(e3-1) {
		t.Fatalf("v2 out(1) = %v, want [%d %d]", got, e1-1, e3-1)
	}
	if got := offsets(&v2, mid); len(got) != 2 || got[1] != int32(e2-1) {
		t.Fatalf("v2 out(mid) = %v, want the out-of-order edge sorted first", got)
	}
	if got := offsets(&v2, tail); len(got) != 1 || got[0] != int32(e4-1) {
		t.Fatalf("v2 out(tail) = %v, want [%d]", got, e4-1)
	}

	// Roll back everything since v2's capture state and verify a capture
	// after the rollback stops covering the popped elements while v2
	// keeps its frozen answers.
	m := g.Mark()
	e5 := addTestEdge(t, g, 2, 1, 500)
	extra := g.AddNode("Node", nil)
	addTestEdge(t, g, extra, 2, 600)
	g.Rollback(m)

	var v3 View
	v3.Capture(g)
	if got := offsets(&v3, 2); len(got) != 0 {
		t.Fatalf("v3 out(2) = %v, want the rolled-back edge %d gone", got, e5-1)
	}
	if v3.node(extra) != nil {
		t.Fatalf("v3 resolves rolled-back node %d", extra)
	}
	if got := offsets(&v2, 1); len(got) != 2 {
		t.Fatalf("v2 out(1) drifted across rollback: %v", got)
	}

	// Unchanged chunks are shared between consecutive publishes; a fresh
	// append re-clones only its chunk.
	var v4 View
	v4.Capture(g)
	if &v3.out[2][0] != &v4.out[2][0] {
		t.Fatal("clean chunk was re-cloned between captures")
	}
	addTestEdge(t, g, 2, 3, 700)
	var v5 View
	v5.Capture(g)
	if &v5.out[2][0] != &v4.out[2][0] {
		t.Fatal("chunk 2 re-cloned though only chunk 0 changed")
	}
	if &v5.out[0][0] == &v4.out[0][0] {
		t.Fatal("chunk 0 shared though an edge was appended inside it")
	}
}
