package graphdb

// Snapshot-isolated reads over the append-only graph arenas.
//
// The graph has exactly one writer (the engine's append path) and many
// concurrent readers (hunts pinned to a published snapshot). Node and edge
// arenas are append-only — rollback only removes elements a published view
// never covered — so a view does not copy element data. Capturing a view
// freezes the node and edge slice headers at their current lengths and
// publishes the two adjacency directions as chunked copy-on-write arrays
// (adjChunkSize inner-list headers per chunk): only chunks whose
// neighborhoods changed since the previous publish are re-cloned, so a
// capture costs O(touched chunks) instead of O(nodes). The cloned
// inner-list headers are frozen, and because Capture sorts dirty lists
// first (copy-on-write: ensureAdjSorted swaps in freshly sorted arrays
// rather than sorting in place), every captured list is time-sorted and
// contains exactly the pre-capture edges. The writer's later appends land
// beyond the captured lengths or relocate the backing arrays (prefix
// preserved), so view reads touch no memory the writer mutates.
//
// The shared map structures (nodeIdx, byLabel, propIndex, labelUnsorted)
// are probed under the graph's RWMutex, which the writer takes for map
// mutations; list results are trimmed (sorted lists) or filtered (copies)
// to the view's node-ID high-water mark. Concurrent views assume node IDs
// are inserted in increasing order — the engine mirrors dense ascending
// entity IDs, so views over engine stores additionally resolve nodes with
// a direct offset computation instead of a map probe.
type View struct {
	g     *Graph
	nodes []Node
	edges []Edge
	// out and in are the published chunked adjacency copies: chunk
	// ni>>adjChunkShift holds node offset ni's inner-list header at slot
	// ni&(adjChunkSize-1). Clean chunks are shared across captures.
	out [][][]int32
	in  [][][]int32
	// maxNodeID is the node-ID high-water mark at capture: IDs above it
	// were assigned after the view and are filtered out of index probes.
	maxNodeID int64
	// dense records that node IDs were arena offset + 1 at capture, making
	// node resolution a bounds check instead of a locked map probe.
	dense bool
}

// Capture fills v with an immutable view of g taken at the current arena
// lengths. It must be called from the writer (or otherwise mutually
// excluded with appends); the view may then be queried from any goroutine
// concurrently with further appends, via ExecParams.View.
func (v *View) Capture(g *Graph) {
	g.ensureAdjSorted()
	v.g = g
	v.nodes = g.nodes
	v.edges = g.edges
	v.out, v.in = g.publishAdj()
	v.maxNodeID = g.nextNode
	v.dense = g.idsDense
}

// NumNodes and NumEdges report the captured arena sizes.
func (v *View) NumNodes() int { return len(v.nodes) }
func (v *View) NumEdges() int { return len(v.edges) }

// node resolves a node ID inside the view, or nil when the ID is unknown
// or was assigned after the capture.
func (v *View) node(id int64) *Node {
	off, ok := v.nodeOffset(id)
	if !ok {
		return nil
	}
	return &v.nodes[off]
}

// nodeOffset resolves a node ID to its arena offset inside the view.
func (v *View) nodeOffset(id int64) (int32, bool) {
	if v.dense {
		if id < 1 || id > int64(len(v.nodes)) {
			return 0, false
		}
		return int32(id - 1), true
	}
	v.g.mu.RLock()
	off, ok := v.g.nodeIdx[id]
	v.g.mu.RUnlock()
	if !ok && id >= 1 && id <= int64(v.g.idxBase) {
		// Restored dense prefix: never in nodeIdx, offset computed.
		off, ok = int32(id-1), true
	}
	if !ok || int(off) >= len(v.nodes) {
		return 0, false
	}
	return off, true
}

// outOffsets and inOffsets return the captured adjacency of a node.
func (v *View) outOffsets(id int64) []int32 {
	off, ok := v.nodeOffset(id)
	if !ok {
		return nil
	}
	return v.out[off>>adjChunkShift][off&(adjChunkSize-1)]
}

func (v *View) inOffsets(id int64) []int32 {
	off, ok := v.nodeOffset(id)
	if !ok {
		return nil
	}
	return v.in[off>>adjChunkShift][off&(adjChunkSize-1)]
}

// labelIDs returns the view's node IDs for a label. Sorted label lists
// trim to the captured prefix in place (the returned header is immutable
// after unlock); unsorted lists filter into a fresh slice under the lock.
func (v *View) labelIDs(label string) []int64 {
	g := v.g
	g.mu.RLock()
	defer g.mu.RUnlock()
	l := g.byLabel[label]
	if g.labelUnsorted[label] {
		out := make([]int64, 0, len(l))
		for _, id := range l {
			if id <= v.maxNodeID {
				out = append(out, id)
			}
		}
		return out
	}
	return trimSortedIDs(l, v.maxNodeID)
}

// sortedLabelIDs is the view-mode counterpart of Graph.sortedLabelIDs:
// the label's ascending ID list trimmed to the capture, or ok=false when
// the label is ambiguous under case folding or its list lost sortedness.
func (v *View) sortedLabelIDs(label string) ([]int64, bool) {
	g := v.g
	g.mu.RLock()
	defer g.mu.RUnlock()
	found, ok := g.resolveLabelLocked(label)
	if !ok || g.labelUnsorted[found] {
		return nil, false
	}
	return trimSortedIDs(g.byLabel[found], v.maxNodeID), true
}

// lookupIndexed probes a property index inside the view. The matching IDs
// are filtered into a fresh slice under the lock: property-index lists
// carry no sortedness flag, so the trim cannot assume order.
func (v *View) lookupIndexed(label, prop string, val Value) ([]int64, bool) {
	g := v.g
	g.ensurePropIndex(label, prop)
	g.mu.RLock()
	defer g.mu.RUnlock()
	byProp, ok := g.propIndex[label]
	if !ok {
		return nil, false
	}
	vals, ok := byProp[prop]
	if !ok {
		return nil, false
	}
	l := vals[val]
	out := make([]int64, 0, len(l))
	for _, id := range l {
		if id <= v.maxNodeID {
			out = append(out, id)
		}
	}
	return out, true
}

// allNodeIDs returns every captured node ID in insertion order.
func (v *View) allNodeIDs() []int64 {
	out := make([]int64, len(v.nodes))
	for i := range v.nodes {
		out[i] = v.nodes[i].ID
	}
	return out
}

// trimSortedIDs returns the prefix of an ascending ID list whose entries
// are <= maxID.
func trimSortedIDs(l []int64, maxID int64) []int64 {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] <= maxID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l[:lo]
}
