package graphdb

import (
	"reflect"
	"testing"

	"threatraptor/internal/relational"
)

func str(s string) Value { return relational.Str(s) }
func num(i int64) Value  { return relational.Int(i) }

// newAttackGraph builds the data_leak chain:
// tar -read-> passwd, tar -write-> upload.tar, bzip2 -read-> upload.tar,
// bzip2 -write-> upload.tar.bz2, gpg -read-> upload.tar.bz2,
// gpg -write-> upload, curl -read-> upload, curl -connect-> 192.168.29.128.
func newAttackGraph(t *testing.T) (*Graph, map[string]int64) {
	t.Helper()
	g := NewGraph()
	ids := map[string]int64{}
	addN := func(name, label string, props Props) {
		props["name"] = str(name)
		ids[name] = g.AddNode(label, props)
	}
	addN("tar", "Process", Props{"exename": str("/bin/tar"), "pid": num(100)})
	addN("passwd", "File", Props{"path": str("/etc/passwd")})
	addN("upload.tar", "File", Props{"path": str("/tmp/upload.tar")})
	addN("bzip2", "Process", Props{"exename": str("/bin/bzip2"), "pid": num(101)})
	addN("upload.tar.bz2", "File", Props{"path": str("/tmp/upload.tar.bz2")})
	addN("gpg", "Process", Props{"exename": str("/usr/bin/gpg"), "pid": num(102)})
	addN("upload", "File", Props{"path": str("/tmp/upload")})
	addN("curl", "Process", Props{"exename": str("/usr/bin/curl"), "pid": num(103)})
	addN("c2", "NetConn", Props{"dstip": str("192.168.29.128")})

	addE := func(from, to, typ string, ts int64) {
		if _, err := g.AddEdge(ids[from], ids[to], typ, Props{"start_time": num(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	addE("tar", "passwd", "read", 10)
	addE("tar", "upload.tar", "write", 20)
	addE("bzip2", "upload.tar", "read", 30)
	addE("bzip2", "upload.tar.bz2", "write", 40)
	addE("gpg", "upload.tar.bz2", "read", 50)
	addE("gpg", "upload", "write", 60)
	addE("curl", "upload", "read", 70)
	addE("curl", "c2", "connect", 80)
	return g, ids
}

func mustQuery(t *testing.T, g *Graph, src string) *ResultSet {
	t.Helper()
	rs, err := g.Query(src)
	if err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
	return rs
}

func TestSingleHopMatch(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `MATCH (p:Process)-[e:read]->(f:File) RETURN p.exename, f.path ORDER BY p.exename`)
	want := [][]string{
		{"/bin/bzip2", "/tmp/upload.tar"},
		{"/bin/tar", "/etc/passwd"},
		{"/usr/bin/curl", "/tmp/upload"},
		{"/usr/bin/gpg", "/tmp/upload.tar.bz2"},
	}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestInlinePropsAnchor(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `MATCH (p:Process {exename: '/bin/tar'})-[:write]->(f:File) RETURN f.path`)
	if rs.Len() != 1 || rs.Rows[0][0].S != "/tmp/upload.tar" {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestWhereLike(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `MATCH (p:Process)-[e]->(o) WHERE p.exename LIKE '%curl%' RETURN o.name ORDER BY o.name`)
	want := [][]string{{"c2"}, {"upload"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestEdgePropsInWhere(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `MATCH (p)-[e:read]->(f) WHERE e.start_time > 40 RETURN p.exename ORDER BY p.exename`)
	want := [][]string{{"/usr/bin/curl"}, {"/usr/bin/gpg"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestChainedPattern(t *testing.T) {
	g, _ := newAttackGraph(t)
	// tar writes a file that bzip2 reads.
	rs := mustQuery(t, g, `
	  MATCH (p1:Process)-[:write]->(f:File)<-[:read]-(p2:Process)
	  RETURN p1.exename, f.path, p2.exename ORDER BY f.path`)
	want := [][]string{
		{"/usr/bin/gpg", "/tmp/upload", "/usr/bin/curl"},
		{"/bin/tar", "/tmp/upload.tar", "/bin/bzip2"},
		{"/bin/bzip2", "/tmp/upload.tar.bz2", "/usr/bin/gpg"},
	}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestMultiplePatternsJoinOnVariable(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `
	  MATCH (p1:Process {exename: '/bin/tar'})-[:write]->(f:File)
	  MATCH (p2:Process)-[:read]->(f)
	  RETURN p2.exename`)
	if rs.Len() != 1 || rs.Rows[0][0].S != "/bin/bzip2" {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestVariableLengthPath(t *testing.T) {
	g, _ := newAttackGraph(t)
	// Information flow: from tar to the C2 connection is a 7-hop chain.
	rs := mustQuery(t, g, `
	  MATCH (p:Process {exename: '/bin/tar'})-[*1..7]->(c:NetConn)
	  RETURN DISTINCT c.dstip`)
	// The chain alternates direction (write forward, read is proc->file),
	// so a strictly directed walk cannot reach the C2 node.
	if rs.Len() != 0 {
		t.Fatalf("directed var-length should not reach c2: %v", rs.Strings())
	}
	// Undirected traversal follows the information flow.
	rs = mustQuery(t, g, `
	  MATCH (p:Process {exename: '/bin/tar'})-[*1..7]-(c:NetConn)
	  RETURN DISTINCT c.dstip`)
	if rs.Len() != 1 || rs.Rows[0][0].S != "192.168.29.128" {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestVariableLengthBounds(t *testing.T) {
	g := NewGraph()
	// Linear chain a -> b -> c -> d.
	var prev int64
	var ids []int64
	for i, name := range []string{"a", "b", "c", "d"} {
		id := g.AddNode("N", Props{"name": str(name)})
		ids = append(ids, id)
		if i > 0 {
			if _, err := g.AddEdge(prev, id, "next", nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	_ = ids
	cases := []struct {
		q    string
		want []string
	}{
		{`MATCH (s:N {name: 'a'})-[*]->(x) RETURN x.name ORDER BY x.name`, []string{"b", "c", "d"}},
		{`MATCH (s:N {name: 'a'})-[*2..3]->(x) RETURN x.name ORDER BY x.name`, []string{"c", "d"}},
		{`MATCH (s:N {name: 'a'})-[*2]->(x) RETURN x.name`, []string{"c"}},
		{`MATCH (s:N {name: 'a'})-[*..2]->(x) RETURN x.name ORDER BY x.name`, []string{"b", "c"}},
		{`MATCH (s:N {name: 'a'})-[*3..]->(x) RETURN x.name`, []string{"d"}},
	}
	for _, c := range cases {
		rs := mustQuery(t, g, c.q)
		var got []string
		for _, r := range rs.Strings() {
			got = append(got, r[0])
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s\n got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestVariableLengthTyped(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("N", Props{"name": str("a")})
	b := g.AddNode("N", Props{"name": str("b")})
	c := g.AddNode("N", Props{"name": str("c")})
	g.AddEdge(a, b, "read", nil)
	g.AddEdge(b, c, "write", nil)
	rs := mustQuery(t, g, `MATCH (s:N {name: 'a'})-[:read*1..3]->(x) RETURN x.name`)
	if rs.Len() != 1 || rs.Rows[0][0].S != "b" {
		t.Fatalf("typed var-length must stop at type change: %v", rs.Strings())
	}
}

func TestVariableLengthCycleTermination(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("N", Props{"name": str("a")})
	b := g.AddNode("N", Props{"name": str("b")})
	g.AddEdge(a, b, "x", nil)
	g.AddEdge(b, a, "x", nil) // cycle
	rs := mustQuery(t, g, `MATCH (s:N {name: 'a'})-[*]->(x) RETURN x.name ORDER BY x.name`)
	// Edge-unique traversal: a->b, a->b->a. Both reachable, then stop.
	want := [][]string{{"a"}, {"b"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestTypeAlternation(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `MATCH (p:Process {exename: '/usr/bin/curl'})-[e:read|connect]->(o) RETURN o.name ORDER BY o.name`)
	want := [][]string{{"c2"}, {"upload"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestDistinctAndLimit(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := mustQuery(t, g, `MATCH (p:Process)-[e]->(o) RETURN DISTINCT p.exename ORDER BY p.exename LIMIT 2`)
	want := [][]string{{"/bin/bzip2"}, {"/bin/tar"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestPropertyIndexUsed(t *testing.T) {
	g, _ := newAttackGraph(t)
	g.CreateIndex("Process", "exename")
	_, stats, err := g.QueryStats(`MATCH (p:Process {exename: '/bin/tar'})-[e]->(o) RETURN o.name`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLookups == 0 {
		t.Fatalf("anchor should use property index: %+v", stats)
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	g := NewGraph()
	g.CreateIndex("F", "name")
	g.AddNode("F", Props{"name": str("x")})
	ids, ok := g.lookupIndexed("F", "name", str("x"))
	if !ok || len(ids) != 1 {
		t.Fatalf("index not maintained: %v %v", ids, ok)
	}
}

func TestAddNodeWithID(t *testing.T) {
	g := NewGraph()
	g.AddNodeWithID(42, "F", Props{"name": str("x")})
	if g.Node(42) == nil {
		t.Fatal("node 42 missing")
	}
	id := g.AddNode("F", Props{})
	if id <= 42 {
		t.Fatalf("auto IDs must not collide with explicit IDs: %d", id)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate explicit ID must panic")
		}
	}()
	g.AddNodeWithID(42, "F", Props{})
}

func TestQueryErrors(t *testing.T) {
	g, _ := newAttackGraph(t)
	for _, q := range []string{
		`RETURN x`,         // no MATCH
		`MATCH (p) RETURN`, // empty return
		`MATCH (p)-[e]->(o) WHERE q.x = 1 RETURN p.name`,  // unknown var
		`MATCH (p)-[e]->(o) RETURN z.name`,                // unknown return var
		`MATCH (p)-[*2..1]->(o) RETURN p.name`,            // invalid bounds
		`MATCH (p RETURN p.name`,                          // malformed
		`MATCH (p)-[e]->(o) RETURN p.name ORDER BY o.bad`, // order key not projected
		`MATCH (p)-[e]->(o) RETURN p.name extra`,          // trailing garbage
	} {
		if _, err := g.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestEdgeEndpointsValidated(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddEdge(1, 2, "x", nil); err == nil {
		t.Fatal("edge to missing nodes must fail")
	}
}

func TestSameVarTwiceInPattern(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("N", Props{"name": str("a")})
	b := g.AddNode("N", Props{"name": str("b")})
	g.AddEdge(a, b, "x", nil)
	g.AddEdge(b, a, "y", nil)
	// (v)-[:x]->(w)-[:y]->(v): cycle back to the same node.
	rs := mustQuery(t, g, `MATCH (v:N)-[:x]->(w:N)-[:y]->(v) RETURN v.name, w.name`)
	if !reflect.DeepEqual(rs.Strings(), [][]string{{"a", "b"}}) {
		t.Fatalf("got %v", rs.Strings())
	}
}

// TestOutOfOrderAppendResortsOnlyDirtyLists: edges appended out of time
// order must be re-sorted lazily, and only the touched adjacency lists
// should be dirty — the live-append invariant.
func TestOutOfOrderAppendResortsOnlyDirtyLists(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("Process", Props{"exename": relational.Str("/bin/a")})
	b := g.AddNode("File", Props{"name": relational.Str("/tmp/b")})
	c := g.AddNode("File", Props{"name": relational.Str("/tmp/c")})

	ts := func(us int64) Props {
		return Props{"start_time": relational.Int(us), "end_time": relational.Int(us)}
	}
	// In-order edges to c: its lists must never be marked dirty.
	if _, err := g.AddEdge(a, c, "read", ts(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, c, "read", ts(20)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order edge to b (time 5 after time 10/20 went to a's out list).
	if _, err := g.AddEdge(a, b, "write", ts(5)); err != nil {
		t.Fatal(err)
	}
	if len(g.dirtyOut) != 1 {
		t.Fatalf("dirtyOut = %v, want exactly a's offset", g.dirtyOut)
	}
	if len(g.dirtyIn) != 0 {
		t.Fatalf("dirtyIn = %v, want empty (b got its first edge, c stayed ordered)", g.dirtyIn)
	}
	g.ensureAdjSorted()
	out := g.outOffsets(a)
	for i := 1; i < len(out); i++ {
		if g.edges[out[i-1]].startTime > g.edges[out[i]].startTime {
			t.Fatalf("a's out list unsorted after ensureAdjSorted: %v", out)
		}
	}
	if len(g.dirtyOut) != 0 || len(g.dirtyIn) != 0 {
		t.Fatal("dirty sets must be cleared")
	}
	// A windowed query over the re-sorted adjacency sees the early edge.
	rs, err := g.Query("MATCH (s:Process)-[e:write]->(o:File) WHERE e.start_time >= 0 AND e.start_time <= 7 RETURN o.name")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0].S != "/tmp/b" {
		t.Fatalf("windowed query after late append = %v", rs.Strings())
	}
}
