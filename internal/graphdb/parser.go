package graphdb

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"unicode"

	"threatraptor/internal/relational"
)

// parseCalls counts ParseQuery invocations. The TBQL engine's execution
// paths build query ASTs directly and must never come through the parser;
// a test pins that invariant by sampling this counter.
var parseCalls atomic.Uint64

// ParseCalls reports how many times ParseQuery has run in this process.
func ParseCalls() uint64 { return parseCalls.Load() }

// ParseQuery parses a Cypher-subset query:
//
//	MATCH (a:Process {exename: '/bin/tar'})-[e:read]->(b:File)
//	MATCH (b)-[*1..4]->(c:NetConn)
//	WHERE a.exename LIKE '%tar%' AND e.start_time < 100
//	RETURN DISTINCT a.exename, c.dstip
//	ORDER BY a.exename DESC
//	LIMIT 10
//
// Relationship patterns support single hops "-[v:type]->", reversed hops
// "<-[v:type]-", undirected hops "-[v:type]-", and variable-length spans
// "-[*]", "-[*n]", "-[*n..m]", "-[*n..]", "-[*..m]" (optionally typed).
// WHERE supports the same operators as the relational engine, with LIKE as
// a portability extension.
func ParseQuery(src string) (*Query, error) {
	parseCalls.Add(1)
	toks, err := lexCypher(src)
	if err != nil {
		return nil, err
	}
	p := &cypherParser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("cypher: unexpected %q after query", p.cur().text)
	}
	return q, nil
}

type ctoken struct {
	kind tokKind
	text string
	pos  int
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
)

func lexCypher(src string) ([]ctoken, error) {
	var toks []ctoken
	i := 0
	emit := func(k tokKind, text string, pos int) { toks = append(toks, ctoken{k, text, pos}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '_' || unicode.IsLetter(rune(c)):
			start := i
			for i < len(src) && (src[i] == '_' || unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			emit(tokIdent, src[start:i], start)
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			emit(tokNumber, src[start:i], start)
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("cypher: unterminated string at %d", start)
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			emit(tokString, sb.String(), start)
		default:
			start := i
			matched := false
			for _, op := range []string{"<=", ">=", "<>", "!=", "->", "<-", ".."} {
				if strings.HasPrefix(src[i:], op) {
					i += 2
					emit(tokSymbol, op, start)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '(', ')', '[', ']', '{', '}', ':', ',', '.', '-', '*', '=', '<', '>', '|', '+':
				i++
				emit(tokSymbol, string(c), start)
			default:
				return nil, fmt.Errorf("cypher: unexpected character %q at %d", c, i)
			}
		}
	}
	emit(tokEOF, "", i)
	return toks, nil
}

type cypherParser struct {
	toks []ctoken
	i    int
}

func (p *cypherParser) cur() ctoken { return p.toks[p.i] }
func (p *cypherParser) atEOF() bool { return p.cur().kind == tokEOF }
func (p *cypherParser) advance()    { p.i++ }

func (p *cypherParser) kw(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.advance()
		return true
	}
	return false
}

func (p *cypherParser) peekKw(word string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, word)
}

func (p *cypherParser) sym(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *cypherParser) expectSym(s string) error {
	if !p.sym(s) {
		return fmt.Errorf("cypher: expected %q, found %q at %d", s, p.cur().text, p.cur().pos)
	}
	return nil
}

func (p *cypherParser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("cypher: expected identifier, found %q at %d", t.text, t.pos)
	}
	p.advance()
	return t.text, nil
}

var cypherReserved = map[string]bool{
	"match": true, "where": true, "return": true, "distinct": true,
	"order": true, "by": true, "limit": true, "and": true, "or": true,
	"not": true, "like": true, "in": true, "as": true, "asc": true,
	"desc": true,
}

func (p *cypherParser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if !p.peekKw("match") {
		return nil, fmt.Errorf("cypher: query must start with MATCH")
	}
	// MATCH clauses may interleave with WHERE clauses (Cypher style); all
	// WHERE expressions are conjoined.
	for p.kw("match") {
		for {
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			q.Patterns = append(q.Patterns, pat)
			if !p.sym(",") {
				break
			}
		}
		if p.kw("where") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if q.Where == nil {
				q.Where = e
			} else {
				q.Where = relational.BinOp{Op: "and", L: q.Where, R: e}
			}
		}
	}
	if !p.kw("return") {
		return nil, fmt.Errorf("cypher: missing RETURN clause")
	}
	q.Distinct = p.kw("distinct")
	for {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Var: v}
		if p.sym(".") {
			prop, err := p.ident()
			if err != nil {
				return nil, err
			}
			item.Prop = prop
		}
		if p.kw("as") {
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			item.As = alias
		}
		q.Return = append(q.Return, item)
		if !p.sym(",") {
			break
		}
	}
	if p.peekKw("order") {
		p.advance()
		if !p.kw("by") {
			return nil, fmt.Errorf("cypher: expected BY after ORDER")
		}
		for {
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Var: v}
			if p.sym(".") {
				prop, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Prop = prop
			}
			if p.kw("desc") {
				item.Desc = true
			} else {
				p.kw("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("limit") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("cypher: LIMIT expects a number")
		}
		n, _ := strconv.Atoi(t.text)
		p.advance()
		q.Limit = n
	}
	return q, nil
}

func (p *cypherParser) parsePattern() (Pattern, error) {
	var pat Pattern
	node, err := p.parseNodePat()
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, node)
	for {
		rel, ok, err := p.parseRelPat()
		if err != nil {
			return pat, err
		}
		if !ok {
			break
		}
		node, err := p.parseNodePat()
		if err != nil {
			return pat, err
		}
		pat.Rels = append(pat.Rels, rel)
		pat.Nodes = append(pat.Nodes, node)
	}
	return pat, nil
}

func (p *cypherParser) parseNodePat() (NodePat, error) {
	var n NodePat
	if err := p.expectSym("("); err != nil {
		return n, err
	}
	t := p.cur()
	if t.kind == tokIdent && !cypherReserved[strings.ToLower(t.text)] {
		n.Var = t.text
		p.advance()
	}
	if p.sym(":") {
		label, err := p.ident()
		if err != nil {
			return n, err
		}
		n.Label = label
	}
	if p.sym("{") {
		n.Props = make(Props)
		for {
			key, err := p.ident()
			if err != nil {
				return n, err
			}
			if err := p.expectSym(":"); err != nil {
				return n, err
			}
			v, err := p.parseLiteral()
			if err != nil {
				return n, err
			}
			n.Props[key] = v
			if !p.sym(",") {
				break
			}
		}
		if err := p.expectSym("}"); err != nil {
			return n, err
		}
	}
	return n, p.expectSym(")")
}

// parseRelPat parses "-[...]->", "<-[...]-", or "-[...]-"; ok=false when the
// next token does not begin a relationship.
func (p *cypherParser) parseRelPat() (RelPat, bool, error) {
	var r RelPat
	r.Min, r.Max = 1, 1
	switch {
	case p.sym("<-"):
		r.Dir = DirIn
	case p.sym("-"):
		r.Dir = DirOut // provisional; decided by the closing arrow
	default:
		return r, false, nil
	}
	if err := p.expectSym("["); err != nil {
		return r, false, err
	}
	t := p.cur()
	if t.kind == tokIdent && !cypherReserved[strings.ToLower(t.text)] {
		r.Var = t.text
		p.advance()
	}
	if p.sym(":") {
		for {
			typ, err := p.ident()
			if err != nil {
				return r, false, err
			}
			r.Types = append(r.Types, strings.ToLower(typ))
			// Neo4j alternation: :a|b
			if !p.sym("|") {
				break
			}
		}
	}
	if p.sym("*") {
		r.Min, r.Max = 1, -1
		if p.cur().kind == tokNumber {
			n, _ := strconv.Atoi(p.cur().text)
			p.advance()
			r.Min, r.Max = n, n
			if p.sym("..") {
				r.Max = -1
				if p.cur().kind == tokNumber {
					m, _ := strconv.Atoi(p.cur().text)
					p.advance()
					r.Max = m
				}
			}
		} else if p.sym("..") {
			r.Min = 1
			r.Max = -1
			if p.cur().kind == tokNumber {
				m, _ := strconv.Atoi(p.cur().text)
				p.advance()
				r.Max = m
			}
		}
	}
	if err := p.expectSym("]"); err != nil {
		return r, false, err
	}
	switch {
	case r.Dir == DirIn:
		if err := p.expectSym("-"); err != nil {
			return r, false, err
		}
	case p.sym("->"):
		r.Dir = DirOut
	case p.sym("-"):
		r.Dir = DirBoth
	default:
		return r, false, fmt.Errorf("cypher: expected -> or - after relationship at %d", p.cur().pos)
	}
	if r.Max != -1 && r.Max < r.Min {
		return r, false, fmt.Errorf("cypher: invalid length bounds *%d..%d", r.Min, r.Max)
	}
	return r, true, nil
}

func (p *cypherParser) parseLiteral() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relational.Null(), err
		}
		return relational.Int(n), nil
	case tokString:
		p.advance()
		return relational.Str(t.text), nil
	}
	return relational.Null(), fmt.Errorf("cypher: expected literal, found %q at %d", t.text, t.pos)
}

// Expression grammar mirrors the SQL subset, producing relational.Expr.
func (p *cypherParser) parseExpr() (relational.Expr, error) { return p.parseOr() }

func (p *cypherParser) parseOr() (relational.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = relational.BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *cypherParser) parseAnd() (relational.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = relational.BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *cypherParser) parseNot() (relational.Expr, error) {
	if p.kw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return relational.UnOp{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *cypherParser) parseComparison() (relational.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.kw("not") {
		switch {
		case p.kw("like"):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return relational.UnOp{Op: "not", E: relational.BinOp{Op: "like", L: l, R: r}}, nil
		case p.kw("in"):
			vals, err := p.parseValueList()
			if err != nil {
				return nil, err
			}
			return relational.InList{E: l, Vals: vals, Negate: true}, nil
		default:
			return nil, fmt.Errorf("cypher: expected LIKE or IN after NOT")
		}
	}
	if p.kw("like") {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return relational.BinOp{Op: "like", L: l, R: r}, nil
	}
	if p.kw("in") {
		vals, err := p.parseValueList()
		if err != nil {
			return nil, err
		}
		return relational.InList{E: l, Vals: vals}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.sym(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return relational.BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *cypherParser) parseAdditive() (relational.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.sym("+"):
			op = "+"
		case p.sym("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = relational.BinOp{Op: op, L: l, R: r}
	}
}

func (p *cypherParser) parseValueList() ([]relational.Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var vals []relational.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, e)
		if !p.sym(",") {
			break
		}
	}
	return vals, p.expectSym(")")
}

func (p *cypherParser) parsePrimary() (relational.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return relational.Lit{V: relational.Int(n)}, nil
	case tokString:
		p.advance()
		return relational.Lit{V: relational.Str(t.text)}, nil
	case tokIdent:
		if cypherReserved[strings.ToLower(t.text)] {
			return nil, fmt.Errorf("cypher: unexpected keyword %q at %d", t.text, t.pos)
		}
		p.advance()
		if p.sym(".") {
			prop, err := p.ident()
			if err != nil {
				return nil, err
			}
			return relational.ColRef{Qualifier: t.text, Column: prop}, nil
		}
		return relational.ColRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectSym(")")
		}
	}
	return nil, fmt.Errorf("cypher: unexpected token %q at %d", t.text, t.pos)
}
