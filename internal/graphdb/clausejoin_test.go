package graphdb

import (
	"reflect"
	"sort"
	"testing"
)

// clauseQuery parses a query and switches on the clause-at-a-time plan.
func clauseQuery(t *testing.T, g *Graph, src string) *ResultSet {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	q.ClauseAtATime = true
	rs, _, err := g.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func sortedRows(rs *ResultSet) [][]string {
	rows := rs.Strings()
	sort.Slice(rows, func(a, b int) bool {
		return strSliceLess(rows[a], rows[b])
	})
	return rows
}

func strSliceLess(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// TestClauseAtATimeEquivalence verifies the Neo4j-style plan returns the
// same rows as the pipelined matcher on multi-MATCH queries.
func TestClauseAtATimeEquivalence(t *testing.T) {
	g, _ := newAttackGraph(t)
	queries := []string{
		`MATCH (p1:Process)-[e1:write]->(f:File) MATCH (p2:Process)-[e2:read]->(f) WHERE p1.exename LIKE '%tar%' RETURN DISTINCT p1.exename, f.path, p2.exename`,
		`MATCH (p:Process)-[e1:read]->(f1:File) MATCH (p)-[e2:write]->(f2:File) WHERE e1.start_time < e2.start_time RETURN DISTINCT p.exename, f1.path, f2.path`,
		`MATCH (p1:Process)-[e1:read]->(f1:File) MATCH (p2:Process)-[e2:connect]->(c:NetConn) WHERE p1.exename = p2.exename RETURN DISTINCT p1.exename, c.dstip`,
	}
	for _, src := range queries {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		pipelined, _, err := g.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		clause := clauseQuery(t, g, src)
		if !reflect.DeepEqual(sortedRows(pipelined), sortedRows(clause)) {
			t.Errorf("plans disagree for %s:\npipelined: %v\nclause:    %v",
				src, sortedRows(pipelined), sortedRows(clause))
		}
	}
}

// TestClauseAtATimeDoesMoreWork confirms the cost model: clause-at-a-time
// materializes every clause with a label scan, so it traverses more edges
// than the pipelined plan when filters are selective.
func TestClauseAtATimeDoesMoreWork(t *testing.T) {
	g, _ := newAttackGraph(t)
	src := `MATCH (p1:Process)-[e1:read]->(f1:File) WHERE p1.exename LIKE '%tar%' MATCH (p1)-[e2:write]->(f2:File) RETURN DISTINCT p1.exename, f2.path`
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	_, pipeStats, err := g.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := ParseQuery(src)
	q2.ClauseAtATime = true
	_, clauseStats, err := g.Exec(q2)
	if err != nil {
		t.Fatal(err)
	}
	if clauseStats.EdgesTraversed < pipeStats.EdgesTraversed {
		t.Errorf("clause-at-a-time should traverse at least as many edges: %d vs %d",
			clauseStats.EdgesTraversed, pipeStats.EdgesTraversed)
	}
}

func TestClauseAtATimeResidualConjuncts(t *testing.T) {
	g, _ := newAttackGraph(t)
	// The temporal constraint spans clauses: it must be residual-filtered
	// after the join, not dropped.
	rs := clauseQuery(t, g, `MATCH (p:Process)-[e1:read]->(f1:File) MATCH (p)-[e2:write]->(f2:File) WHERE e2.start_time < e1.start_time RETURN DISTINCT p.exename`)
	// In the attack graph every read precedes the same process's write, so
	// the reversed constraint matches nothing.
	if rs.Len() != 0 {
		t.Fatalf("reversed temporal constraint must eliminate all rows: %v", rs.Strings())
	}
}

func TestClauseAtATimeEmptyClause(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := clauseQuery(t, g, `MATCH (p:Process)-[e1:read]->(f1:File) MATCH (p)-[e2:rename]->(f2:File) RETURN p.exename`)
	if rs.Len() != 0 {
		t.Fatalf("an empty clause empties the join: %v", rs.Strings())
	}
}

func TestClauseAtATimeDistinctOrderLimit(t *testing.T) {
	g, _ := newAttackGraph(t)
	rs := clauseQuery(t, g, `MATCH (p:Process)-[e1:read]->(f1:File) MATCH (p)-[e2]->(o) RETURN DISTINCT p.exename ORDER BY p.exename LIMIT 2`)
	want := [][]string{{"/bin/bzip2"}, {"/bin/tar"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Fatalf("got %v", rs.Strings())
	}
}

func TestSinglePatternIgnoresClauseFlag(t *testing.T) {
	g, _ := newAttackGraph(t)
	q, err := ParseQuery(`MATCH (p:Process)-[e:connect]->(c:NetConn) RETURN p.exename`)
	if err != nil {
		t.Fatal(err)
	}
	q.ClauseAtATime = true // single pattern: pipelined path is used
	rs, _, err := g.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("got %v", rs.Strings())
	}
}
