package graphdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"threatraptor/internal/relational"
)

// TestIntersectSortedIDs drives the galloping intersection against the
// map-based oracle on random sorted unique lists of skewed sizes.
func TestIntersectSortedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	uniqueSorted := func(n, max int) []int64 {
		seen := map[int64]bool{}
		for len(seen) < n {
			seen[int64(rng.Intn(max))] = true
		}
		out := make([]int64, 0, n)
		for v := range seen {
			out = append(out, v)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	for trial := 0; trial < 200; trial++ {
		a := uniqueSorted(1+rng.Intn(20), 500)
		b := uniqueSorted(1+rng.Intn(400), 500)
		got := intersectSortedIDs(a, b, nil)
		inB := map[int64]bool{}
		for _, v := range b {
			inB[v] = true
		}
		var want []int64
		for _, v := range a {
			if inB[v] {
				want = append(want, v)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: a=%v b=%v got %v want %v", trial, a, b, got, want)
		}
	}
	if got := intersectSortedIDs(nil, []int64{1, 2}, nil); len(got) != 0 {
		t.Fatalf("empty small side: %v", got)
	}
}

// floorGraph builds a small two-label graph with typed event edges whose
// element IDs are dense 1..n, mirroring the engine's event-edge invariant.
func floorGraph(t *testing.T, nProcs, nFiles, nEdges int, rng *rand.Rand) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < nProcs; i++ {
		g.AddNode("Process", Props{"exename": relational.Str(fmt.Sprintf("/bin/p%d", i%5))})
	}
	for i := 0; i < nFiles; i++ {
		g.AddNode("File", Props{"name": relational.Str(fmt.Sprintf("/tmp/f%d", i%7))})
	}
	for i := 0; i < nEdges; i++ {
		typ := "read"
		if i%3 == 0 {
			typ = "write"
		}
		from := int64(1 + rng.Intn(nProcs))
		to := int64(nProcs + 1 + rng.Intn(nFiles))
		if _, err := g.AddEventEdge(from, to, typ, int64(i+1), int64(1000*(i+1)), int64(1000*(i+1)+1), 10); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestEdgeDrivenFloorMatchesAnchorDriven pins the delta fast path: a
// floored single-hop query answered by enumerating the edge-arena suffix
// must return exactly the rows of the anchor-driven walk with the same
// floor (which the multi-pattern shape still uses), under every floor and
// with binding sets attached.
func TestEdgeDrivenFloorMatchesAnchorDriven(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := floorGraph(t, 10, 12, 200, rng)

	q, err := ParseQuery(`MATCH (s:Process)-[e:read]->(o:File) WHERE o.name = '/tmp/f3' RETURN e.id, s.id, o.id`)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(params *ExecParams) []string {
		rs, _, err := g.ExecWith(q, params)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, r := range rs.Strings() {
			out = append(out, fmt.Sprint(r))
		}
		sort.Strings(out)
		return out
	}
	// The anchor-driven oracle: same floor, but EdgeVar routed through the
	// per-edge skip (edgeDrivenOK requires the floor, so disable it by
	// asking through a two-pattern query shape — instead, compare against
	// the unfloored run filtered by edge ID).
	all, _, err := g.ExecWith(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, floor := range []int64{1, 2, 57, 150, 200, 201} {
		got := rows(&ExecParams{EdgeVar: "e", MinEdgeID: floor})
		var want []string
		for _, r := range all.Rows {
			if r[0].I >= floor {
				s := make([]string, len(r))
				for i, v := range r {
					s[i] = v.String()
				}
				want = append(want, fmt.Sprint(s))
			}
		}
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("floor %d: edge-driven %v, want %v", floor, got, want)
		}
	}

	// With node binding sets on top of the floor (the scheduler's shape).
	subj := []int64{2, 3, 9}
	got := rows(&ExecParams{EdgeVar: "e", MinEdgeID: 50, Nodes: []NodeBinding{{Var: "s", IDs: subj}}})
	var want []string
	for _, r := range all.Rows {
		if r[0].I >= 50 && containsID(subj, r[1].I) {
			s := make([]string, len(r))
			for i, v := range r {
				s[i] = v.String()
			}
			want = append(want, fmt.Sprint(s))
		}
	}
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("floor+binding: edge-driven %v, want %v", got, want)
	}
}

// TestSortedLabelIntersectionAnchors pins that anchor enumeration through
// the label-list intersection returns the same matches as plain binding
// enumeration, and that an out-of-order node insert falls back cleanly.
func TestSortedLabelIntersectionAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := floorGraph(t, 8, 8, 60, rng)
	q, err := ParseQuery(`MATCH (s:Process)-[e:read]->(o:File) RETURN s.id, o.id`)
	if err != nil {
		t.Fatal(err)
	}
	// Binding list straddling both labels: intersection must trim it to
	// Process IDs (1..8) without changing the result.
	bind := []int64{1, 4, 9, 12, 16}
	objBind := []int64{9, 10, 11, 12, 13, 14, 15, 16, 999, 1000}
	withBinding := func() []string {
		rs, _, err := g.ExecWith(q, &ExecParams{Nodes: []NodeBinding{
			{Var: "s", IDs: bind}, {Var: "o", IDs: objBind}}})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, r := range rs.Strings() {
			out = append(out, fmt.Sprint(r))
		}
		sort.Strings(out)
		return out
	}
	sorted := withBinding()

	if _, ok := g.sortedLabelIDs("Process"); !ok {
		t.Fatal("Process label list should be sorted")
	}
	// Force the unsorted fallback with an out-of-order ID and re-check.
	g.AddNodeWithID(1000, "File", Props{"name": relational.Str("/tmp/late")})
	g.AddNodeWithID(999, "File", Props{"name": relational.Str("/tmp/later")})
	if _, ok := g.sortedLabelIDs("File"); ok {
		t.Fatal("File label list must be marked unsorted after out-of-order insert")
	}
	unsortedPath := withBinding()
	if fmt.Sprint(sorted) != fmt.Sprint(unsortedPath) {
		t.Fatalf("sorted-intersection %v != fallback %v", sorted, unsortedPath)
	}
}
