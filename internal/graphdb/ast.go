package graphdb

import "threatraptor/internal/relational"

// Cypher-subset abstract syntax tree.

// Query is a parsed MATCH ... WHERE ... RETURN statement.
type Query struct {
	Patterns []Pattern // comma-separated path patterns of all MATCH clauses
	Where    relational.Expr
	Distinct bool
	Return   []ReturnItem
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	// ClauseAtATime selects the Neo4j-style execution model for
	// multi-pattern queries: every pattern clause is materialized
	// independently (label scan plus expansion, with only its own WHERE
	// conjuncts), and the clause results are hash-joined on shared
	// variables afterwards. This is how production graph databases
	// frequently plan multi-MATCH statements, and it is the behaviour the
	// ThreatRaptor paper's monolithic-Cypher comparison exercises. The
	// default (false) pipelines bindings across clauses.
	ClauseAtATime bool
}

// ReturnItem is one projected property reference ("var.prop") with an
// optional alias.
type ReturnItem struct {
	Var  string
	Prop string
	As   string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Var  string
	Prop string
	Desc bool
}

// Pattern is a linear path: node, (rel, node)*.
type Pattern struct {
	Nodes []NodePat
	Rels  []RelPat // len(Rels) == len(Nodes)-1
}

// NodePat is "(var:Label {prop: value, ...})"; all parts optional.
type NodePat struct {
	Var   string
	Label string
	Props Props // inline equality constraints
}

// Direction of a relationship pattern.
type Direction uint8

// Relationship directions.
const (
	DirOut  Direction = iota // -[...]->
	DirIn                    // <-[...]-
	DirBoth                  // -[...]-
)

// RelPat is "-[var:TYPE*min..max]->". A nil VarLen means exactly one hop.
type RelPat struct {
	Var   string
	Types []string // empty = any type
	Dir   Direction
	// Variable-length bounds; Min=Max=1 for plain single-hop patterns.
	Min int
	Max int // -1 = unbounded
}

// IsVarLen reports whether the pattern spans other than exactly one hop.
func (r RelPat) IsVarLen() bool { return r.Min != 1 || r.Max != 1 }
