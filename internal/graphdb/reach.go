package graphdb

import "sort"

// EventEdgeRef surfaces one event edge incident to a node, for causality
// traversals (provenance back-tracking, tactical IIP extraction) that
// want the graph's time-sorted binary-searchable adjacency without going
// through the Cypher execution machinery.
type EventEdgeRef struct {
	// EventID is the audit event the edge mirrors.
	EventID int64
	// Other is the node at the far end of the edge.
	Other int64
	// Out reports the direction: true when the visited node is the
	// edge's source (the event's subject), false when it is the target
	// (the event's object).
	Out bool
	// Op is the event's operation keyword.
	Op string
	// Start and End are the event's time bounds in µs.
	Start, End int64
}

// VisitEventEdges calls fn for every event edge incident to node id whose
// start_time is <= maxStart — outgoing edges first, then incoming, each
// in ascending start_time order. Because every captured adjacency list is
// sorted by start_time, the bound is applied with one binary search per
// direction rather than a scan of the whole neighborhood. fn returning
// false stops the enumeration. Non-event (generic property) edges are
// skipped.
func (v *View) VisitEventEdges(id int64, maxStart int64, fn func(EventEdgeRef) bool) {
	if !v.visitDir(v.outOffsets(id), true, maxStart, fn) {
		return
	}
	v.visitDir(v.inOffsets(id), false, maxStart, fn)
}

func (v *View) visitDir(offs []int32, out bool, maxStart int64, fn func(EventEdgeRef) bool) bool {
	// First offset whose edge starts after the bound; the prefix before
	// it is exactly the in-bound edges.
	n := sort.Search(len(offs), func(i int) bool {
		return v.edges[offs[i]].startTime > maxStart
	})
	for _, off := range offs[:n] {
		e := &v.edges[off]
		if !e.typed {
			continue
		}
		other := e.To
		if !out {
			other = e.From
		}
		if !fn(EventEdgeRef{
			EventID: e.evID,
			Other:   other,
			Out:     out,
			Op:      e.Type,
			Start:   e.startTime,
			End:     e.endTime,
		}) {
			return false
		}
	}
	return true
}
