package graphdb

import (
	"fmt"
	"testing"

	"threatraptor/internal/relational"
)

// chainGraph builds n nodes n0 -> n1 -> ... -> n(n-1) linked by "hop"
// edges in time order.
func chainGraph(n int) *Graph {
	g := NewGraph()
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode("N", Props{"name": relational.Str(fmt.Sprintf("n%d", i))})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ids[i], ids[i+1], "hop", Props{"start_time": relational.Int(int64(i))})
	}
	return g
}

func exactDepthQuery(t testing.TB, depth int) *Query {
	q, err := ParseQuery(fmt.Sprintf(
		`MATCH (a:N {name: 'n0'})-[*%d..%d]->(x:N) RETURN x.name`, depth, depth))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestVarLenDFSConstantAllocs guards the visited-bitset traversal: the
// per-hop cost of a variable-length DFS must not allocate, so executions
// at depth 8 and depth 64 differ by at most the bitset sizing — with the
// old map-per-hop tracking, the deeper walk paid growing map allocations.
func TestVarLenDFSConstantAllocs(t *testing.T) {
	g := chainGraph(80)
	g.ensureAdjSorted()
	measure := func(depth int) float64 {
		q := exactDepthQuery(t, depth)
		// Warm once so lazy structures exist before measuring.
		if _, _, err := g.Exec(q); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, _, err := g.Exec(q); err != nil {
				t.Fatal(err)
			}
		})
	}
	shallow := measure(8)
	deep := measure(64)
	if deep-shallow > 4 {
		t.Fatalf("var-length DFS allocs grow with depth: %v at depth 8 vs %v at depth 64", shallow, deep)
	}
}

// BenchmarkVarLenDFS measures the edge-unique DFS over a 256-node chain
// (255 hops explored per execution, one anchored traversal).
func BenchmarkVarLenDFS(b *testing.B) {
	g := chainGraph(256)
	g.ensureAdjSorted()
	q := exactDepthQuery(b, 255)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, _, err := g.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatalf("rows = %d", rs.Len())
		}
	}
}
