// Package faultinject is a deterministic fault-injection harness for the
// robustness tests: production code threads named fault points through the
// hot paths (parse, append, execute, deliver), and a test arms a Plan that
// makes chosen hits of chosen points fail — as a returned error or as a
// panic — in a fully reproducible way.
//
// The harness is built to be free when idle: a disarmed Hit is a single
// atomic load and a nil return, so fault points can sit on paths that also
// run in benchmarks. Arming is test-only and globally serialized; the
// package is not meant to be armed by two tests at once (use t.Cleanup
// with Disarm).
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode selects how a triggered fault point fails.
type Mode int

const (
	// ModeError makes the fault point return an *InjectedError.
	ModeError Mode = iota
	// ModePanic makes the fault point panic with an *InjectedError,
	// exercising the recover boundaries.
	ModePanic
)

// Trigger schedules failures for one fault point.
type Trigger struct {
	// Hits lists the 1-based hit numbers that fail; every other hit of
	// the point passes. An empty list never fires.
	Hits []int
	// Mode selects error-return or panic.
	Mode Mode
}

// Plan maps fault-point names to their trigger schedules.
type Plan map[string]Trigger

// ErrInjected is the sentinel every injected failure wraps, so callers can
// errors.Is(err, faultinject.ErrInjected) regardless of point or hit.
var ErrInjected = errors.New("injected fault")

// InjectedError is the concrete failure produced by a triggered point.
type InjectedError struct {
	// Point is the fault-point name that fired.
	Point string
	// Hit is the 1-based hit number at which it fired.
	Hit int
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected fault at %s (hit %d)", e.Point, e.Hit)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

var (
	// armed gates the slow path; when false, Hit is one atomic load.
	armed atomic.Bool

	mu     sync.Mutex
	plan   Plan
	counts map[string]int
)

// Arm installs a plan, resetting all hit counts. It replaces any
// previously armed plan.
func Arm(p Plan) {
	mu.Lock()
	plan = p
	counts = make(map[string]int, len(p))
	mu.Unlock()
	armed.Store(p != nil)
}

// Disarm removes the plan; every fault point becomes a no-op again.
func Disarm() { Arm(nil) }

// Armed reports whether a plan is installed.
func Armed() bool { return armed.Load() }

// Hit records one pass through the named fault point. Disarmed it returns
// nil immediately. Armed, it increments the point's hit count and, if the
// plan schedules this hit, fails: ModeError returns an *InjectedError,
// ModePanic panics with one.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	tr, ok := plan[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	counts[name]++
	n := counts[name]
	mu.Unlock()
	for _, h := range tr.Hits {
		if h == n {
			err := &InjectedError{Point: name, Hit: n}
			if tr.Mode == ModePanic {
				panic(err)
			}
			return err
		}
	}
	return nil
}

// Count reports how many times the named point has been hit since Arm.
func Count(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return counts[name]
}
