package cases

import "threatraptor/internal/audit"

// The three multi-step intrusive attacks the paper's authors performed on
// their testbed, built on the Cyber Kill Chain framework and CVE.

// passwordCrack is "Password Cracking After Shellshock Penetration": the
// attacker penetrates via Shellshock, fetches the C2 address from image
// EXIF metadata on a cloud service, downloads a password cracker from the
// C2, and runs it against the shadow file.
func passwordCrack() *Case {
	const report = `The attacker penetrated into the victim host by exploiting the Shellshock vulnerability CVE-2014-6271. After the penetration, the compromised process /usr/sbin/apache2 downloaded the image /var/www/stego.jpg from 104.16.18.35. The C2 address was encoded in the image metadata. Then, the attacker used /usr/bin/wget to download the password cracker /tmp/john.zip from 162.125.6.6. The attacker leveraged /usr/bin/unzip to extract the cracking tool /tmp/libfoo.so from /tmp/john.zip. Finally, the attacker executed the tool there. /tmp/libfoo.so read the shadow file /etc/shadow and wrote the cracked credentials to /tmp/passwords.txt.`

	apache := audit.Proc{PID: 6001, Exe: "/usr/sbin/apache2", User: "www-data", Group: "www-data"}
	wget := audit.Proc{PID: 6002, Exe: "/usr/bin/wget", User: "www-data", Group: "www-data"}
	unzip := audit.Proc{PID: 6003, Exe: "/usr/bin/unzip", User: "www-data", Group: "www-data"}
	libfoo := audit.Proc{PID: 6004, Exe: "/tmp/libfoo.so", User: "www-data", Group: "www-data"}
	bash := audit.Proc{PID: 6000, Exe: "/bin/bash", User: "www-data", Group: "www-data"}

	return &Case{
		ID:     "password_crack",
		Name:   "Password Cracking After Shellshock Penetration",
		Report: report,
		Entities: []string{
			"CVE-2014-6271", "/usr/sbin/apache2", "/var/www/stego.jpg",
			"104.16.18.35", "/usr/bin/wget", "/tmp/john.zip", "162.125.6.6",
			"/usr/bin/unzip", "/tmp/libfoo.so", "/etc/shadow",
			"/tmp/passwords.txt",
		},
		Relations: []Relation{
			{"/usr/sbin/apache2", "download", "/var/www/stego.jpg"},
			{"/usr/sbin/apache2", "download", "104.16.18.35"},
			{"/usr/bin/wget", "download", "/tmp/john.zip"},
			{"/usr/bin/wget", "download", "162.125.6.6"},
			{"/usr/bin/unzip", "extract", "/tmp/libfoo.so"},
			{"/usr/bin/unzip", "extract", "/tmp/john.zip"},
			{"/tmp/libfoo.so", "read", "/etc/shadow"},
			{"/tmp/libfoo.so", "write", "/tmp/passwords.txt"},
		},
		BenignActions: 1200,
		Seed:          101,
		Attack: func(sim *audit.Simulator) {
			// Stage 1: EXIF beacon fetch.
			sim.Connect(apache, "10.0.0.3", 42100, "104.16.18.35", 443, "tcp")
			sim.Receive(apache, "10.0.0.3", 42100, "104.16.18.35", 443, "tcp", 90_000)
			sim.WriteFile(apache, "/var/www/stego.jpg", 90_000)
			sim.Advance(3_000_000)
			// Stage 2: cracker download.
			sim.Connect(wget, "10.0.0.3", 42101, "162.125.6.6", 80, "tcp")
			sim.Receive(wget, "10.0.0.3", 42101, "162.125.6.6", 80, "tcp", 400_000)
			sim.WriteFile(wget, "/tmp/john.zip", 400_000)
			sim.Advance(3_000_000)
			// Stage 3: unpack; the unzip READ of john.zip is the behavior
			// the synthesized "write" pattern cannot retrieve (the paper's
			// excessive-pattern anecdote).
			sim.ReadFile(unzip, "/tmp/john.zip", 400_000)
			sim.WriteFile(unzip, "/tmp/libfoo.so", 350_000)
			sim.Advance(3_000_000)
			// Stage 4: run the cracker (execve not described as a two-IOC
			// relation in the report).
			sim.StartProcess(bash, libfoo)
			sim.ExecuteFile(libfoo, "/tmp/libfoo.so")
			sim.ReadFile(libfoo, "/etc/shadow", 6_000)
			sim.WriteFile(libfoo, "/tmp/passwords.txt", 2_000)
		},
	}
}

// dataLeak is the paper's Figure 2 running example, "Data Leakage After
// Shellshock Penetration". The report is the exact Figure 2 text.
func dataLeak() *Case {
	const report = `After the lateral movement stage, the attacker attempts to steal valuable assets from the host. This stage mainly involves the behaviors of local and remote file system scanning activities, copying and compressing of important files, and transferring the files to its C2 host. The details of the data leakage attack are as follows. As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After compression, the attacker used Gnu Privacy Guard (GnuPG) tool to encrypt the zipped file, which corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive information to /tmp/upload. Finally, the attacker leveraged the curl utility (/usr/bin/curl) to read the data from /tmp/upload. He leaked the gathered sensitive information back to the attacker C2 host by using /usr/bin/curl to connect to 192.168.29.128.`

	find := audit.Proc{PID: 7000, Exe: "/usr/bin/find", User: "root", Group: "root"}
	tar := audit.Proc{PID: 7001, Exe: "/bin/tar", User: "root", Group: "root", CMD: "tar cf /tmp/upload.tar /etc/passwd"}
	bzip := audit.Proc{PID: 7002, Exe: "/bin/bzip2", User: "root", Group: "root"}
	gpg := audit.Proc{PID: 7003, Exe: "/usr/bin/gpg", User: "root", Group: "root"}
	curl := audit.Proc{PID: 7004, Exe: "/usr/bin/curl", User: "root", Group: "root"}

	return &Case{
		ID:     "data_leak",
		Name:   "Data Leakage After Shellshock Penetration",
		Report: report,
		Entities: []string{
			"/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
			"/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload",
			"/usr/bin/curl", "192.168.29.128",
		},
		Relations: []Relation{
			{"/bin/tar", "read", "/etc/passwd"},
			{"/bin/tar", "write", "/tmp/upload.tar"},
			{"/bin/bzip2", "read", "/tmp/upload.tar"},
			{"/bin/bzip2", "write", "/tmp/upload.tar.bz2"},
			{"/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"},
			{"/usr/bin/gpg", "write", "/tmp/upload"},
			{"/usr/bin/curl", "read", "/tmp/upload"},
			{"/usr/bin/curl", "connect", "192.168.29.128"},
		},
		BenignActions: 1500,
		Seed:          102,
		Attack: func(sim *audit.Simulator) {
			// File-system scanning: attack behavior mentioned only in the
			// narrative preamble, so the synthesized query misses it (the
			// paper reports 6/8 recall here for the same reason).
			sim.ReadFile(find, "/home/admin", 2_000)
			sim.ReadFile(find, "/home/admin/documents", 2_000)
			sim.Advance(2_000_000)
			sim.ReadFile(tar, "/etc/passwd", 3_000)
			sim.WriteFile(tar, "/tmp/upload.tar", 3_000)
			sim.Advance(2_000_000)
			sim.ReadFile(bzip, "/tmp/upload.tar", 3_000)
			sim.WriteFile(bzip, "/tmp/upload.tar.bz2", 2_000)
			sim.Advance(2_000_000)
			sim.ReadFile(gpg, "/tmp/upload.tar.bz2", 2_000)
			sim.WriteFile(gpg, "/tmp/upload", 2_200)
			sim.Advance(2_000_000)
			sim.ReadFile(curl, "/tmp/upload", 2_200)
			sim.Connect(curl, "10.0.0.3", 45000, "192.168.29.128", 443, "tcp")
			sim.Send(curl, "10.0.0.3", 45000, "192.168.29.128", 443, "tcp", 2_200)
		},
	}
}

// vpnFilter is the VPNFilter IoT malware case: stage 1 fetches the stage 2
// address from image EXIF data, downloads stage 2, and stage 2 opens a
// direct C2 connection.
func vpnFilter() *Case {
	const report = `The attacker seeks to maintain a direct connection to the victim host from the C2 server. After the initial penetration, the attacker used /bin/busybox to download the VPNFilter stage 1 malware /tmp/vpnfilter from the C2 server 94.185.80.82. /tmp/vpnfilter connected to the public image repository 217.12.202.40. It downloaded the image /tmp/photo.jpg from 217.12.202.40. The address of the stage 2 server was encoded in the image metadata. /tmp/vpnfilter then downloaded the stage 2 malware /tmp/vpnfilter2 from the stage 2 server 91.121.109.209. Finally, /tmp/vpnfilter started the stage 2 process /tmp/vpnfilter2. /tmp/vpnfilter2 connected to the C2 server 94.185.80.82.`

	busybox := audit.Proc{PID: 8000, Exe: "/bin/busybox", User: "root", Group: "root"}
	stage1 := audit.Proc{PID: 8001, Exe: "/tmp/vpnfilter", User: "root", Group: "root"}
	stage2 := audit.Proc{PID: 8002, Exe: "/tmp/vpnfilter2", User: "root", Group: "root"}

	return &Case{
		ID:     "vpnfilter",
		Name:   "VPNFilter",
		Report: report,
		Entities: []string{
			"/bin/busybox", "/tmp/vpnfilter", "94.185.80.82",
			"217.12.202.40", "/tmp/photo.jpg", "/tmp/vpnfilter2",
			"91.121.109.209",
		},
		Relations: []Relation{
			{"/bin/busybox", "download", "/tmp/vpnfilter"},
			{"/bin/busybox", "download", "94.185.80.82"},
			{"/tmp/vpnfilter", "connect", "217.12.202.40"},
			{"/tmp/vpnfilter", "download", "/tmp/photo.jpg"},
			{"/tmp/vpnfilter", "download", "217.12.202.40"},
			{"/tmp/vpnfilter", "download", "/tmp/vpnfilter2"},
			{"/tmp/vpnfilter", "download", "91.121.109.209"},
			{"/tmp/vpnfilter", "start", "/tmp/vpnfilter2"},
			{"/tmp/vpnfilter2", "connect", "94.185.80.82"},
		},
		BenignActions: 1200,
		Seed:          103,
		Attack: func(sim *audit.Simulator) {
			sim.Connect(busybox, "10.0.0.4", 42200, "94.185.80.82", 80, "tcp")
			sim.Receive(busybox, "10.0.0.4", 42200, "94.185.80.82", 80, "tcp", 300_000)
			sim.WriteFile(busybox, "/tmp/vpnfilter", 300_000)
			sim.Advance(3_000_000)
			sim.ExecuteFile(stage1, "/tmp/vpnfilter")
			sim.Connect(stage1, "10.0.0.4", 42201, "217.12.202.40", 443, "tcp")
			sim.Receive(stage1, "10.0.0.4", 42201, "217.12.202.40", 443, "tcp", 120_000)
			sim.WriteFile(stage1, "/tmp/photo.jpg", 120_000)
			sim.Advance(3_000_000)
			sim.Connect(stage1, "10.0.0.4", 42202, "91.121.109.209", 443, "tcp")
			sim.Receive(stage1, "10.0.0.4", 42202, "91.121.109.209", 443, "tcp", 500_000)
			sim.WriteFile(stage1, "/tmp/vpnfilter2", 500_000)
			sim.Advance(3_000_000)
			sim.StartProcess(stage1, stage2)
			sim.ExecuteFile(stage2, "/tmp/vpnfilter2")
			// Long-lived C2 heartbeat connections: many events with >1s
			// gaps so data reduction keeps them distinct (the paper
			// reports 178 TP for this case).
			for i := 0; i < 160; i++ {
				sim.Connect(stage2, "10.0.0.4", 42300+i, "94.185.80.82", 443, "tcp")
				sim.Advance(1_500_000)
			}
		},
	}
}

// lateralMovement is a two-host fleet scenario (not part of the paper's
// Table IV benchmark — see Extras): an attacker on host-a steals an SSH
// key, pivots to host-b over an SSH session, and exfiltrates a database
// from host-b. The two halves of the pivot meet at a single NetConn
// entity (the 5-tuple is host-agnostic), which is what lets a fleet-wide
// hunt join the connect on host-a with the receive on host-b even when
// the store is sharded by host.
func lateralMovement() *Case {
	const report = `The attacker first compromised workstation host-a and used /bin/bash to read the administrator SSH private key /home/admin/.ssh/id_rsa. Using the stolen key, the attacker launched /usr/bin/ssh to connect to the database server 10.0.0.12. On the server, /usr/sbin/sshd accepted the session and started an interactive /bin/bash shell for the attacker. The shell read /etc/passwd to enumerate accounts. Finally, the attacker used /usr/bin/scp to read the payroll database /var/db/payroll.db and connect to the external drop host 203.0.113.50, leaking the database contents.`

	bash := audit.Proc{PID: 9000, Exe: "/bin/bash", User: "admin", Group: "staff", Host: "host-a"}
	ssh := audit.Proc{PID: 9001, Exe: "/usr/bin/ssh", User: "admin", Group: "staff", CMD: "ssh admin@10.0.0.12", Host: "host-a"}
	sshd := audit.Proc{PID: 9100, Exe: "/usr/sbin/sshd", User: "root", Group: "root", Host: "host-b"}
	shell := audit.Proc{PID: 9101, Exe: "/bin/bash", User: "admin", Group: "staff", Host: "host-b"}
	scp := audit.Proc{PID: 9102, Exe: "/usr/bin/scp", User: "admin", Group: "staff", Host: "host-b"}

	return &Case{
		ID:     "lateral_movement",
		Name:   "Cross-Host Lateral Movement and Database Exfiltration",
		Report: report,
		Entities: []string{
			"/bin/bash", "/home/admin/.ssh/id_rsa", "/usr/bin/ssh",
			"10.0.0.12", "/usr/sbin/sshd", "/etc/passwd",
			"/usr/bin/scp", "/var/db/payroll.db", "203.0.113.50",
		},
		Relations: []Relation{
			{"/bin/bash", "read", "/home/admin/.ssh/id_rsa"},
			{"/usr/bin/ssh", "connect", "10.0.0.12"},
			{"/usr/sbin/sshd", "start", "/bin/bash"},
			{"/bin/bash", "read", "/etc/passwd"},
			{"/usr/bin/scp", "read", "/var/db/payroll.db"},
			{"/usr/bin/scp", "connect", "203.0.113.50"},
		},
		BenignActions: 1000,
		BenignHosts:   []string{"host-a", "host-b"},
		Seed:          109,
		Attack: func(sim *audit.Simulator) {
			// Host-a: credential theft and pivot. The connect (host-a)
			// and receive (host-b) share one 5-tuple, so they resolve to
			// the same NetConn entity across hosts.
			sim.ReadFile(bash, "/home/admin/.ssh/id_rsa", 3_200)
			sim.Advance(2_000_000)
			sim.Connect(ssh, "10.0.0.11", 47200, "10.0.0.12", 22, "tcp")
			sim.Send(ssh, "10.0.0.11", 47200, "10.0.0.12", 22, "tcp", 4_096)
			sim.Advance(500_000)
			// Host-b: session accept, interactive shell, exfiltration.
			sim.Receive(sshd, "10.0.0.11", 47200, "10.0.0.12", 22, "tcp", 4_096)
			sim.StartProcess(sshd, shell)
			sim.Advance(2_000_000)
			sim.ReadFile(shell, "/etc/passwd", 3_000)
			sim.Advance(2_000_000)
			sim.ReadFile(scp, "/var/db/payroll.db", 48_000)
			sim.Connect(scp, "10.0.0.12", 51310, "203.0.113.50", 443, "tcp")
			sim.Send(scp, "10.0.0.12", 51310, "203.0.113.50", 443, "tcp", 48_000)
		},
	}
}
