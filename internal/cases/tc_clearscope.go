package cases

import "threatraptor/internal/audit"

// The ClearScope performer ran Android: process executables are Android
// package names and the ground-truth events carry package-name subjects,
// which the paper calls out as a distinct IOC flavor its pipeline handles.

func tcClearscope1() *Case {
	const report = `The user clicked a phishing link in a malicious e-mail. The mail client com.android.email downloaded the malicious application /data/app/MsgApp.apk from 146.153.68.151. The process com.android.defcontainer opened /data/app/MsgApp.apk. Then com.android.defcontainer wrote the unpacked payload to /data/data/com.android.messaging/cache.bin. The payload process com.android.messaging read /data/data/com.android.messaging/cache.bin and connected to 146.153.68.151.`

	email := audit.Proc{PID: 2101, Exe: "com.android.email", User: "u0_a12", Group: "inet"}
	defc := audit.Proc{PID: 2102, Exe: "com.android.defcontainer", User: "system", Group: "system"}
	msg := audit.Proc{PID: 2103, Exe: "com.android.messaging", User: "u0_a31", Group: "inet"}

	return &Case{
		ID:     "tc_clearscope_1",
		Name:   "20180406 1500 ClearScope - Phishing E-mail Link",
		Report: report,
		Entities: []string{
			"com.android.email", "/data/app/MsgApp.apk", "146.153.68.151",
			"com.android.defcontainer", "/data/data/com.android.messaging/cache.bin",
			"com.android.messaging",
		},
		Relations: []Relation{
			{"com.android.email", "download", "/data/app/MsgApp.apk"},
			{"com.android.email", "download", "146.153.68.151"},
			{"com.android.defcontainer", "open", "/data/app/MsgApp.apk"},
			{"com.android.defcontainer", "write", "/data/data/com.android.messaging/cache.bin"},
			{"com.android.messaging", "read", "/data/data/com.android.messaging/cache.bin"},
			{"com.android.messaging", "connect", "146.153.68.151"},
		},
		BenignActions: 800,
		Seed:          201,
		Attack: func(sim *audit.Simulator) {
			sim.Connect(email, "10.0.2.15", 40100, "146.153.68.151", 443, "tcp")
			sim.Receive(email, "10.0.2.15", 40100, "146.153.68.151", 443, "tcp", 200_000)
			sim.WriteFile(email, "/data/app/MsgApp.apk", 200_000)
			sim.Advance(2_000_000)
			sim.ReadFile(defc, "/data/app/MsgApp.apk", 200_000)
			sim.WriteFile(defc, "/data/data/com.android.messaging/cache.bin", 80_000)
			sim.Advance(2_000_000)
			sim.ReadFile(msg, "/data/data/com.android.messaging/cache.bin", 80_000)
			sim.Connect(msg, "10.0.2.15", 40101, "146.153.68.151", 443, "tcp")
		},
	}
}

func tcClearscope2() *Case {
	const report = `The attacker exploited a backdoor in the Firefox browser on the device. The browser process org.mozilla.firefox connected to 128.55.12.167. It downloaded the Drakon implant /data/local/tmp/drakon.so from 128.55.12.167. Then org.mozilla.firefox executed /data/local/tmp/drakon.so.`

	firefox := audit.Proc{PID: 2201, Exe: "org.mozilla.firefox", User: "u0_a44", Group: "inet"}

	return &Case{
		ID:     "tc_clearscope_2",
		Name:   "20180411 1400 ClearScope - Firefox Backdoor w/ Drakon In-Memory",
		Report: report,
		Entities: []string{
			"org.mozilla.firefox", "128.55.12.167", "/data/local/tmp/drakon.so",
		},
		Relations: []Relation{
			{"org.mozilla.firefox", "connect", "128.55.12.167"},
			{"org.mozilla.firefox", "download", "/data/local/tmp/drakon.so"},
			{"org.mozilla.firefox", "download", "128.55.12.167"},
			{"org.mozilla.firefox", "execute", "/data/local/tmp/drakon.so"},
		},
		BenignActions: 800,
		Seed:          202,
		Attack: func(sim *audit.Simulator) {
			sim.Connect(firefox, "10.0.2.15", 40200, "128.55.12.167", 443, "tcp")
			sim.Receive(firefox, "10.0.2.15", 40200, "128.55.12.167", 443, "tcp", 150_000)
			sim.WriteFile(firefox, "/data/local/tmp/drakon.so", 150_000)
			sim.ExecuteFile(firefox, "/data/local/tmp/drakon.so")
		},
	}
}

func tcClearscope3() *Case {
	// A single-pattern case (the paper's Table X lists one pattern here).
	const report = `The malicious application com.android.lockwatch scanned the private contact database /data/data/com.android.providers.contacts/contacts2.db on the device.`

	lockwatch := audit.Proc{PID: 2301, Exe: "com.android.lockwatch", User: "u0_a66", Group: "inet"}

	return &Case{
		ID:     "tc_clearscope_3",
		Name:   "20180413 ClearScope",
		Report: report,
		Entities: []string{
			"com.android.lockwatch",
			"/data/data/com.android.providers.contacts/contacts2.db",
		},
		Relations: []Relation{
			{"com.android.lockwatch", "scan", "/data/data/com.android.providers.contacts/contacts2.db"},
		},
		BenignActions: 700,
		Seed:          203,
		Attack: func(sim *audit.Simulator) {
			sim.ReadFile(lockwatch, "/data/data/com.android.providers.contacts/contacts2.db", 40_000)
		},
	}
}
