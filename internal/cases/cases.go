// Package cases defines the evaluation benchmark of 18 attack cases
// (paper Table IV): 15 cases modeled after the DARPA Transparent Computing
// Engagement 3 release (ClearScope/FiveDirections/THEIA/TRACE performer
// systems) and the 3 multi-step intrusive attacks the authors performed
// themselves (password_crack, data_leak, vpnfilter).
//
// The released TC data is tens of gigabytes and gated, so each case here
// carries (a) an OSCTI-style attack report written in the register of the
// TC ground-truth descriptions, (b) hand-labeled ground-truth IOC entities
// and IOC relations for the report (Table V scoring), and (c) an attack
// generator that plants the described system events — including the
// deliberate report/log deviations the paper discusses (tc_trace_1's
// execute-vs-start ambiguity, the re-purposed indicators of
// tc_fivedirections_3 and tc_trace_3) — into deterministic benign
// background noise (Table VI/VIII workloads).
package cases

import (
	"threatraptor/internal/audit"
	"threatraptor/internal/reduction"
)

// Relation is one labeled ground-truth IOC relation triplet.
type Relation struct {
	Subj, Verb, Obj string
}

// Case is one benchmark attack case.
type Case struct {
	ID   string
	Name string
	// Report is the OSCTI attack description text.
	Report string
	// Entities are the labeled ground-truth IOC strings (unique).
	Entities []string
	// Relations are the labeled ground-truth IOC relation triplets.
	Relations []Relation
	// KnownEntityFPs are strings the extractor recognizes as indicators
	// but the annotator excludes (e.g. non-indicator addresses mentioned
	// in passing) — they count against entity precision in Table V.
	KnownEntityFPs []string
	// KnownRelationFNs are labeled relations the pipeline is known to
	// miss (e.g. nominalized relations with no verb) — they count against
	// relation recall in Table V.
	KnownRelationFNs []Relation
	// BenignActions scales the benign background noise generated around
	// the attack (split half before, half after).
	BenignActions int
	// BenignHosts, when non-empty, spreads the benign noise across these
	// fleet hosts (multi-host cases); empty keeps the historical
	// single-host (host-less) wire format.
	BenignHosts []string
	// Seed drives the deterministic simulator.
	Seed int64
	// Attack plants the malicious system events.
	Attack func(sim *audit.Simulator)
}

// GeneratedLog is a case's audit log with its attack ground truth.
type GeneratedLog struct {
	Log *audit.Log
	// AttackEventIDs are the post-reduction IDs of the ground-truth
	// malicious system events.
	AttackEventIDs []int64
}

// Simulate replays the case on a fresh simulator — benign noise, the
// attack, more benign noise — and returns the raw record stream plus the
// half-open index range [attackStart, attackEnd) of the attack's records.
// scale multiplies the benign volume.
func (c *Case) Simulate(scale float64) (recs []audit.Record, attackStart, attackEnd int) {
	if scale <= 0 {
		scale = 1
	}
	sim := audit.NewSimulator(c.Seed, 1_700_000_000_000_000)
	benign := int(float64(c.BenignActions) * scale)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: benign / 2, Hosts: c.BenignHosts})
	sim.Advance(5_000_000)

	attackStart = len(sim.Records())
	c.Attack(sim)
	attackEnd = len(sim.Records())

	sim.Advance(5_000_000)
	sim.GenerateBenign(audit.BenignConfig{Users: 15, Actions: benign - benign/2, Hosts: c.BenignHosts})
	return sim.Records(), attackStart, attackEnd
}

// GenerateRaw builds the case's audit log without data reduction: benign
// noise, the attack, more benign noise, parsing. It returns the parsed log
// plus the set of attack step keys (subject|op|object triples), which
// survive reduction unchanged. scale multiplies the benign volume.
func (c *Case) GenerateRaw(scale float64) (*audit.Log, map[string]bool, error) {
	records, attackStart, attackEnd := c.Simulate(scale)
	parser := audit.NewParser()
	attackKeys := make(map[string]bool)
	for i, r := range records {
		if err := parser.Feed(&r); err != nil {
			return nil, nil, err
		}
		if i >= attackStart && i < attackEnd {
			log := parser.Log()
			if n := len(log.Events); n > 0 {
				ev := &log.Events[n-1]
				attackKeys[eventKey(log, ev)] = true
			}
		}
	}
	return parser.Log(), attackKeys, nil
}

// Generate builds the case's audit log with the paper's default data
// reduction applied, mapping the attack ground truth to post-reduction
// event IDs.
func (c *Case) Generate(scale float64) (*GeneratedLog, error) {
	log, attackKeys, err := c.GenerateRaw(scale)
	if err != nil {
		return nil, err
	}
	reduction.Reduce(log, reduction.DefaultConfig())

	gen := &GeneratedLog{Log: log}
	for i := range log.Events {
		ev := &log.Events[i]
		if attackKeys[eventKey(log, ev)] {
			gen.AttackEventIDs = append(gen.AttackEventIDs, ev.ID)
		}
	}
	return gen, nil
}

// eventKey identifies an event by its semantic triple, stable across data
// reduction.
func eventKey(log *audit.Log, ev *audit.Event) string {
	return log.Subject(ev).Key() + "|" + ev.Op.String() + "|" + log.Object(ev).Key()
}

// All returns the 18 benchmark cases in the paper's Table IV order.
func All() []*Case {
	return []*Case{
		tcClearscope1(), tcClearscope2(), tcClearscope3(),
		tcFivedirections1(), tcFivedirections2(), tcFivedirections3(),
		tcTheia1(), tcTheia2(), tcTheia3(), tcTheia4(),
		tcTrace1(), tcTrace2(), tcTrace3(), tcTrace4(), tcTrace5(),
		passwordCrack(), dataLeak(), vpnFilter(),
	}
}

// Extras returns additional demonstration cases that are not part of the
// paper's Table IV benchmark (and so are excluded from All() and its
// Table V scoring), but are reachable through ByID and cmd/genlog.
func Extras() []*Case {
	return []*Case{lateralMovement()}
}

// ByID returns the named case (benchmark or extra), or nil.
func ByID(id string) *Case {
	for _, c := range All() {
		if c.ID == id {
			return c
		}
	}
	for _, c := range Extras() {
		if c.ID == id {
			return c
		}
	}
	return nil
}
