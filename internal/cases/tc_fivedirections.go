package cases

import "threatraptor/internal/audit"

// The FiveDirections performer ran Windows: file paths and executables use
// drive-letter syntax, exercising the Windows-path IOC rules.

func tcFivedirections1() *Case {
	const report = `The user opened a phishing e-mail with a malicious Excel attachment. The Excel process C:\Windows\office\excel.exe wrote the macro dropper C:\Users\victim\temp\dropper.ps1. The dropper process C:\Windows\System32\powershell.exe executed C:\Users\victim\temp\dropper.ps1. Then C:\Windows\System32\powershell.exe downloaded the payload C:\Users\victim\temp\payload.exe from 161.116.88.72. The payload process C:\Users\victim\temp\payload.exe scanned the folder C:\Users\victim\documents and wrote the collected files to C:\Users\victim\temp\stage.dat. Finally, C:\Users\victim\temp\payload.exe sent the staged data to 161.116.88.72.`

	excel := audit.Proc{PID: 3101, Exe: `C:\Windows\office\excel.exe`, User: "victim", Group: "users"}
	ps := audit.Proc{PID: 3102, Exe: `C:\Windows\System32\powershell.exe`, User: "victim", Group: "users"}
	payload := audit.Proc{PID: 3103, Exe: `C:\Users\victim\temp\payload.exe`, User: "victim", Group: "users"}

	return &Case{
		ID:     "tc_fivedirections_1",
		Name:   "20180409 1500 FiveDirections - Phishing E-mail w/ Excel Macro",
		Report: report,
		Entities: []string{
			`C:\Windows\office\excel.exe`, `C:\Users\victim\temp\dropper.ps1`,
			`C:\Windows\System32\powershell.exe`, `C:\Users\victim\temp\payload.exe`,
			"161.116.88.72", `C:\Users\victim\documents`,
			`C:\Users\victim\temp\stage.dat`,
		},
		Relations: []Relation{
			{`C:\Windows\office\excel.exe`, "write", `C:\Users\victim\temp\dropper.ps1`},
			{`C:\Windows\System32\powershell.exe`, "execute", `C:\Users\victim\temp\dropper.ps1`},
			{`C:\Windows\System32\powershell.exe`, "download", `C:\Users\victim\temp\payload.exe`},
			{`C:\Windows\System32\powershell.exe`, "download", "161.116.88.72"},
			{`C:\Users\victim\temp\payload.exe`, "scan", `C:\Users\victim\documents`},
			{`C:\Users\victim\temp\payload.exe`, "write", `C:\Users\victim\temp\stage.dat`},
			{`C:\Users\victim\temp\payload.exe`, "send", "161.116.88.72"},
		},
		BenignActions: 1500,
		Seed:          301,
		Attack: func(sim *audit.Simulator) {
			sim.WriteFile(excel, `C:\Users\victim\temp\dropper.ps1`, 4_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(ps, `C:\Users\victim\temp\dropper.ps1`)
			sim.Connect(ps, "10.0.1.20", 41100, "161.116.88.72", 443, "tcp")
			sim.Receive(ps, "10.0.1.20", 41100, "161.116.88.72", 443, "tcp", 250_000)
			sim.WriteFile(ps, `C:\Users\victim\temp\payload.exe`, 250_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(payload, `C:\Users\victim\temp\payload.exe`)
			// Staging loop: many distinct document reads and staging
			// writes with >1s gaps, so reduction keeps them (the paper
			// reports 51 TP for this case).
			for i := 0; i < 22; i++ {
				sim.ReadFile(payload, `C:\Users\victim\documents`, 30_000)
				sim.WriteFile(payload, `C:\Users\victim\temp\stage.dat`, 30_000)
				sim.Advance(1_500_000)
			}
			sim.Send(payload, "10.0.1.20", 41101, "161.116.88.72", 443, "tcp", 600_000)
		},
	}
}

func tcFivedirections2() *Case {
	const report = `The attacker exploited a backdoor in the Firefox browser. The browser process C:\Windows\firefox\firefox.exe connected to 128.55.12.110. It downloaded the Drakon implant C:\Users\victim\temp\drakon.dll from 128.55.12.110. Then C:\Windows\firefox\firefox.exe executed C:\Users\victim\temp\drakon.dll.`

	firefox := audit.Proc{PID: 3201, Exe: `C:\Windows\firefox\firefox.exe`, User: "victim", Group: "users"}

	return &Case{
		ID:     "tc_fivedirections_2",
		Name:   "20180411 1000 FiveDirections - Firefox Backdoor w/ Drakon In-Memory",
		Report: report,
		Entities: []string{
			`C:\Windows\firefox\firefox.exe`, "128.55.12.110",
			`C:\Users\victim\temp\drakon.dll`,
		},
		Relations: []Relation{
			{`C:\Windows\firefox\firefox.exe`, "connect", "128.55.12.110"},
			{`C:\Windows\firefox\firefox.exe`, "download", `C:\Users\victim\temp\drakon.dll`},
			{`C:\Windows\firefox\firefox.exe`, "download", "128.55.12.110"},
			{`C:\Windows\firefox\firefox.exe`, "execute", `C:\Users\victim\temp\drakon.dll`},
		},
		BenignActions: 1200,
		Seed:          302,
		Attack: func(sim *audit.Simulator) {
			sim.Connect(firefox, "10.0.1.20", 41200, "128.55.12.110", 443, "tcp")
			sim.Receive(firefox, "10.0.1.20", 41200, "128.55.12.110", 443, "tcp", 180_000)
			sim.WriteFile(firefox, `C:\Users\victim\temp\drakon.dll`, 180_000)
			sim.ExecuteFile(firefox, `C:\Users\victim\temp\drakon.dll`)
		},
	}
}

func tcFivedirections3() *Case {
	// The paper reports 0/0 precision and 0/3 recall here: the report's
	// indicators were re-purposed by the attacker, so the (correctly
	// extracted) patterns match nothing in the logs. The planted events
	// use the changed names.
	const report = `The malicious browser extension process C:\Users\victim\pass_mgr.exe dropped the implant C:\Users\victim\temp\drakon_dropper.exe. Then C:\Users\victim\pass_mgr.exe executed C:\Users\victim\temp\drakon_dropper.exe.`

	actual := audit.Proc{PID: 3301, Exe: `C:\Users\victim\passmgr.exe`, User: "victim", Group: "users"}

	return &Case{
		ID:     "tc_fivedirections_3",
		Name:   "20180412 1100 FiveDirections - Browser Extension w/ Drakon Dropper",
		Report: report,
		Entities: []string{
			`C:\Users\victim\pass_mgr.exe`, `C:\Users\victim\temp\drakon_dropper.exe`,
		},
		Relations: []Relation{
			{`C:\Users\victim\pass_mgr.exe`, "drop", `C:\Users\victim\temp\drakon_dropper.exe`},
			{`C:\Users\victim\pass_mgr.exe`, "execute", `C:\Users\victim\temp\drakon_dropper.exe`},
		},
		BenignActions: 800,
		Seed:          303,
		Attack: func(sim *audit.Simulator) {
			// Re-purposed indicators: different file names than reported.
			sim.WriteFile(actual, `C:\Users\victim\temp\dropper64.exe`, 90_000)
			sim.ExecuteFile(actual, `C:\Users\victim\temp\dropper64.exe`)
			sim.Connect(actual, "10.0.1.20", 41300, "128.55.12.110", 443, "tcp")
		},
	}
}
