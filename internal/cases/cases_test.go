package cases

import (
	"fmt"
	"testing"

	"threatraptor/internal/extract"
	"threatraptor/internal/synth"
	"threatraptor/internal/tbql"
)

func TestAllCasesWellFormed(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("cases = %d, want 18", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if c.ID == "" || c.Name == "" || c.Report == "" || c.Attack == nil {
			t.Errorf("case %q incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate case ID %q", c.ID)
		}
		seen[c.ID] = true
		if len(c.Entities) == 0 || len(c.Relations) == 0 {
			t.Errorf("case %q missing ground truth", c.ID)
		}
		if got := ByID(c.ID); got == nil || got.ID != c.ID {
			t.Errorf("ByID(%q) mismatch", c.ID)
		}
	}
	if ByID("nosuch") != nil {
		t.Error("ByID must return nil for unknown cases")
	}
}

func TestGenerateLogs(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			gen, err := c.Generate(0.2)
			if err != nil {
				t.Fatal(err)
			}
			if len(gen.AttackEventIDs) == 0 {
				t.Fatal("no attack events recorded")
			}
			if len(gen.Log.Events) <= len(gen.AttackEventIDs) {
				t.Fatalf("benign noise missing: %d events, %d attack",
					len(gen.Log.Events), len(gen.AttackEventIDs))
			}
			// Determinism.
			gen2, err := c.Generate(0.2)
			if err != nil {
				t.Fatal(err)
			}
			if len(gen2.Log.Events) != len(gen.Log.Events) ||
				len(gen2.AttackEventIDs) != len(gen.AttackEventIDs) {
				t.Fatal("generation must be deterministic")
			}
		})
	}
}

// TestExtractionMatchesGroundTruth verifies the pipeline recovers the
// labeled entities and relations from every report — the substance behind
// the Table V numbers.
func TestExtractionMatchesGroundTruth(t *testing.T) {
	ex := extract.New(extract.DefaultOptions())
	var entTP, entFP, entFN, relTP, relFP, relFN int
	for _, c := range All() {
		res := ex.Extract(c.Report)
		knownFP := map[string]bool{}
		for _, e := range c.KnownEntityFPs {
			knownFP[e] = true
		}
		knownFN := map[string]bool{}
		for _, r := range c.KnownRelationFNs {
			knownFN[r.Subj+"|"+r.Verb+"|"+r.Obj] = true
		}

		gotEnt := map[string]bool{}
		for _, ic := range res.IOCs {
			gotEnt[ic.Text] = true
		}
		wantEnt := map[string]bool{}
		for _, e := range c.Entities {
			wantEnt[e] = true
		}
		for e := range gotEnt {
			if wantEnt[e] {
				entTP++
				continue
			}
			entFP++
			if !knownFP[e] {
				t.Errorf("%s: spurious entity %q", c.ID, e)
			}
		}
		for e := range wantEnt {
			if !gotEnt[e] {
				entFN++
				t.Errorf("%s: missing entity %q", c.ID, e)
			}
		}

		gotRel := map[string]bool{}
		for _, tr := range res.Triplets {
			gotRel[tr.Subj.Text+"|"+tr.Verb+"|"+tr.Obj.Text] = true
		}
		wantRel := map[string]bool{}
		for _, r := range c.Relations {
			wantRel[r.Subj+"|"+r.Verb+"|"+r.Obj] = true
		}
		for r := range gotRel {
			if wantRel[r] {
				relTP++
			} else {
				relFP++
				t.Errorf("%s: spurious relation %q", c.ID, r)
			}
		}
		for r := range wantRel {
			if !gotRel[r] {
				relFN++
				if !knownFN[r] {
					t.Errorf("%s: missing relation %q", c.ID, r)
				}
			}
		}
	}
	t.Logf("entities: TP=%d FP=%d FN=%d; relations: TP=%d FP=%d FN=%d",
		entTP, entFP, entFN, relTP, relFP, relFN)
	if entFP == 0 || relFN == 0 {
		t.Error("the benchmark should include known imperfections (entity FP, relation FN)")
	}
}

// TestSynthesisFromReports verifies every report's graph synthesizes into
// a parsable, analyzable TBQL query.
func TestSynthesisFromReports(t *testing.T) {
	ex := extract.New(extract.DefaultOptions())
	for _, c := range All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			res := ex.Extract(c.Report)
			if len(res.Graph.Edges) == 0 {
				t.Fatalf("no edges extracted:\n%s", c.Report)
			}
			q, _, err := synth.Synthesize(res.Graph, synth.Options{})
			if err != nil {
				t.Fatal(err)
			}
			text := tbql.Format(q)
			q2, err := tbql.Parse(text)
			if err != nil {
				t.Fatalf("synthesized query must parse: %v\n%s", err, text)
			}
			if _, err := tbql.Analyze(q2); err != nil {
				t.Fatalf("synthesized query must analyze: %v\n%s", err, text)
			}
		})
	}
}

func ExampleByID() {
	c := ByID("data_leak")
	fmt.Println(c.Name)
	// Output: Data Leakage After Shellshock Penetration
}

// ExampleCase_Simulate shows the multi-host extra case: the pivot's
// connect and receive happen on different hosts but share one NetConn
// 5-tuple, which is the edge a fleet-wide (sharded) hunt joins across.
func ExampleCase_Simulate() {
	c := ByID("lateral_movement")
	records, start, end := c.Simulate(0) // 0 = default scale
	hosts := map[string]bool{}
	for _, r := range records {
		hosts[r.Host] = true
	}
	fmt.Println("hosts:", len(hosts), "attack records:", end-start)
	// Output: hosts: 2 attack records: 32
}

func TestExtrasNotInAll(t *testing.T) {
	ids := map[string]bool{}
	for _, c := range All() {
		ids[c.ID] = true
	}
	for _, c := range Extras() {
		if ids[c.ID] {
			t.Errorf("extra case %q must not be in All() (Table IV/V fidelity)", c.ID)
		}
		if got := ByID(c.ID); got == nil || got.ID != c.ID {
			t.Errorf("ByID(%q) must find the extra case", c.ID)
		}
		if _, err := c.Generate(0.25); err != nil {
			t.Errorf("extra case %q Generate: %v", c.ID, err)
		}
	}
}
