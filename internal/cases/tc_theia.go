package cases

import "threatraptor/internal/audit"

// The THEIA performer ran Linux; its traces are the densest in the paper's
// benchmark (the fuzzy-mode bottleneck discussion), so these cases carry
// the largest benign volumes.

func tcTheia1() *Case {
	const report = `The attacker exploited a backdoor in the Firefox browser. The browser process /usr/lib/firefox/firefox connected to 141.43.176.203. It downloaded the Drakon payload /home/admin/profile. Then /usr/lib/firefox/firefox executed the payload /home/admin/profile.`

	firefox := audit.Proc{PID: 4101, Exe: "/usr/lib/firefox/firefox", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_theia_1",
		Name:   "20180410 1400 THEIA - Firefox Backdoor w/ Drakon In-Memory",
		Report: report,
		Entities: []string{
			"/usr/lib/firefox/firefox", "141.43.176.203", "/home/admin/profile",
		},
		Relations: []Relation{
			{"/usr/lib/firefox/firefox", "connect", "141.43.176.203"},
			{"/usr/lib/firefox/firefox", "download", "/home/admin/profile"},
			{"/usr/lib/firefox/firefox", "execute", "/home/admin/profile"},
		},
		BenignActions: 4000,
		Seed:          401,
		Attack: func(sim *audit.Simulator) {
			sim.Connect(firefox, "10.0.3.7", 42100, "141.43.176.203", 443, "tcp")
			sim.WriteFile(firefox, "/home/admin/profile", 160_000)
			sim.ExecuteFile(firefox, "/home/admin/profile")
		},
	}
}

func tcTheia2() *Case {
	const report = `The user clicked a link in a phishing e-mail. The mail process /usr/bin/thunderbird downloaded the malicious script /home/admin/mail.sh from 104.228.117.212. Then /home/admin/mail.sh scanned the folder /home/admin/secret and sent the collected data to 104.228.117.212. The deletion of /home/admin/mail.sh by /home/admin/mail.sh followed.`

	tb := audit.Proc{PID: 4201, Exe: "/usr/bin/thunderbird", User: "admin", Group: "admin"}
	script := audit.Proc{PID: 4202, Exe: "/home/admin/mail.sh", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_theia_2",
		Name:   "20180410 1300 THEIA - Phishing Email w/ Link",
		Report: report,
		Entities: []string{
			"/usr/bin/thunderbird", "/home/admin/mail.sh", "104.228.117.212",
			"/home/admin/secret",
		},
		Relations: []Relation{
			{"/usr/bin/thunderbird", "download", "/home/admin/mail.sh"},
			{"/usr/bin/thunderbird", "download", "104.228.117.212"},
			{"/home/admin/mail.sh", "scan", "/home/admin/secret"},
			{"/home/admin/mail.sh", "send", "104.228.117.212"},
			// Nominalized relation ("the deletion of X by Y"): labeled by
			// the annotator but invisible to the verb-based extractor.
			{"/home/admin/mail.sh", "delete", "/home/admin/mail.sh"},
		},
		KnownRelationFNs: []Relation{
			{"/home/admin/mail.sh", "delete", "/home/admin/mail.sh"},
		},
		BenignActions: 2500,
		Seed:          402,
		Attack: func(sim *audit.Simulator) {
			sim.Receive(tb, "10.0.3.7", 42200, "104.228.117.212", 443, "tcp", 12_000)
			sim.WriteFile(tb, "/home/admin/mail.sh", 12_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(script, "/home/admin/mail.sh")
			// Exfiltration loop: many distinct scans and sends (the paper
			// reports 115 TP here).
			for i := 0; i < 55; i++ {
				sim.ReadFile(script, "/home/admin/secret", 20_000)
				sim.Send(script, "10.0.3.7", 42201, "104.228.117.212", 443, "tcp", 20_000)
				sim.Advance(1_500_000)
			}
		},
	}
}

func tcTheia3() *Case {
	const report = `The malicious extension process /home/admin/clean downloaded the dropper /var/tmp/nginx from 141.43.176.203. Then /home/admin/clean executed the dropper /var/tmp/nginx. The dropper process /var/tmp/nginx connected to 141.43.176.203.`

	clean := audit.Proc{PID: 4301, Exe: "/home/admin/clean", User: "admin", Group: "admin"}
	nginx := audit.Proc{PID: 4302, Exe: "/var/tmp/nginx", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_theia_3",
		Name:   "20180412 THEIA - Browser Extension w/ Drakon Dropper",
		Report: report,
		Entities: []string{
			"/home/admin/clean", "/var/tmp/nginx", "141.43.176.203",
		},
		Relations: []Relation{
			{"/home/admin/clean", "download", "/var/tmp/nginx"},
			{"/home/admin/clean", "download", "141.43.176.203"},
			{"/home/admin/clean", "execute", "/var/tmp/nginx"},
			{"/var/tmp/nginx", "connect", "141.43.176.203"},
		},
		BenignActions: 2000,
		Seed:          403,
		Attack: func(sim *audit.Simulator) {
			sim.Receive(clean, "10.0.3.7", 42300, "141.43.176.203", 443, "tcp", 85_000)
			sim.WriteFile(clean, "/var/tmp/nginx", 85_000)
			sim.ExecuteFile(clean, "/var/tmp/nginx")
			sim.ExecuteFile(nginx, "/var/tmp/nginx")
			sim.Connect(nginx, "10.0.3.7", 42301, "141.43.176.203", 443, "tcp")
		},
	}
}

func tcTheia4() *Case {
	const report = `The user saved the attachment of a phishing e-mail to the file /home/admin/eraseme. The mail process /usr/bin/thunderbird wrote the executable /home/admin/eraseme. Then /home/admin/eraseme connected to 141.43.176.203 and sent the collected files to 141.43.176.203.`

	tb := audit.Proc{PID: 4401, Exe: "/usr/bin/thunderbird", User: "admin", Group: "admin"}
	eraseme := audit.Proc{PID: 4402, Exe: "/home/admin/eraseme", User: "admin", Group: "admin"}

	return &Case{
		ID:     "tc_theia_4",
		Name:   "20180413 1400 THEIA - Phishing E-mail w/ Executable Attachment",
		Report: report,
		Entities: []string{
			"/home/admin/eraseme", "/usr/bin/thunderbird", "141.43.176.203",
		},
		Relations: []Relation{
			{"/usr/bin/thunderbird", "write", "/home/admin/eraseme"},
			{"/home/admin/eraseme", "connect", "141.43.176.203"},
			{"/home/admin/eraseme", "send", "141.43.176.203"},
		},
		BenignActions: 2500,
		Seed:          404,
		Attack: func(sim *audit.Simulator) {
			sim.WriteFile(tb, "/home/admin/eraseme", 70_000)
			sim.Advance(2_000_000)
			sim.ExecuteFile(eraseme, "/home/admin/eraseme")
			// Long-running beacon and exfiltration (the paper reports 421
			// TP; the connects and sends are all described in the text).
			for i := 0; i < 100; i++ {
				sim.Connect(eraseme, "10.0.3.7", 42400+i, "141.43.176.203", 443, "tcp")
				sim.Send(eraseme, "10.0.3.7", 42400+i, "141.43.176.203", 443, "tcp", 4_000)
				sim.Advance(1_500_000)
			}
		},
	}
}
